// Fig. 5 — impact of label-set size |L| and average degree d on the RLC
// index over ER- and BA-graphs (paper: |V| = 1M, d in 2..5, |L| in 8..36;
// here |V| scales via RLC_SCALE, default 20K).
//
// Expected shape: indexing time grows ~linearly in |L| and in d; index size
// grows with d everywhere and with |L| markedly on BA-graphs; query time is
// flat for ER, slightly rising for BA true-queries.

#include "bench_common.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"

int main() {
  using namespace rlc;
  using namespace rlc::bench;

  const double scale = ScaleFromEnv(0.01);
  const VertexId n = static_cast<VertexId>(1'000'000 * scale);
  const uint32_t queries = QueriesPerSet(200);
  const bool full = std::getenv("RLC_FULL") != nullptr;
  const std::vector<Label> label_sizes =
      full ? std::vector<Label>{8, 12, 16, 20, 24, 28, 32, 36}
           : std::vector<Label>{8, 16, 24, 36};
  const std::vector<uint32_t> degrees = {2, 3, 4, 5};

  std::printf(
      "== Fig. 5: |L| and d sweeps on ER/BA graphs, |V|=%u, k=2 ==\n", n);
  Table table({"Model", "d", "|L|", "IT (s)", "IS (MB)", "T-query (us)",
               "F-query (us)"});

  for (const bool ba : {false, true}) {
    for (const uint32_t d : degrees) {
      for (const Label labels : label_sizes) {
        Rng rng(9000 + d * 100 + labels + (ba ? 1 : 0));
        auto edges = ba ? BarabasiAlbertEdges(n, d, rng)
                        : ErdosRenyiEdges(n, static_cast<uint64_t>(n) * d, rng);
        AssignZipfLabels(&edges, labels, 2.0, rng);
        const DiGraph g(n, std::move(edges), labels);

        IndexerOptions options;
        options.k = 2;
        RlcIndexBuilder builder(g, options);
        const RlcIndex index = builder.Build();

        WorkloadOptions wopts;
        wopts.count = queries;
        wopts.constraint_length = 2;
        wopts.seed = 70 + d + labels;
        wopts.max_attempts = 150'000;
        wopts.fill_true_with_walks = true;
        const Workload w = GenerateWorkload(g, wopts);

        const double t_us =
            w.true_queries.empty() ? -1 : TimeRlcQueries(index, w.true_queries);
        const double f_us = w.false_queries.empty()
                                ? -1
                                : TimeRlcQueries(index, w.false_queries);
        table.AddRow({ba ? "BA" : "ER", std::to_string(d),
                      std::to_string(labels),
                      Fmt("%.2f", builder.stats().build_seconds),
                      Mb(index.MemoryBytes()),
                      t_us < 0 ? "n/a" : Fmt("%.0f", t_us),
                      f_us < 0 ? "n/a" : Fmt("%.0f", f_us)});
      }
    }
  }
  table.Print();
  return 0;
}
