// Micro-benchmarks (google-benchmark): minimum-repeat computation, kernel
// decomposition, index query latency, and online-traversal latency on a
// mid-size synthetic graph. These complement the per-table/figure harnesses
// with operation-level numbers.

#include <benchmark/benchmark.h>

#include "rlc/baselines/online_search.h"
#include "rlc/core/indexer.h"
#include "rlc/core/label_seq.h"
#include "rlc/engines/rlc_hybrid_engine.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/plain/plain_reach_index.h"
#include "rlc/util/rng.h"
#include "rlc/workload/query_gen.h"

namespace {

using namespace rlc;

std::vector<Label> RandomWord(size_t n, Label alphabet, uint64_t seed) {
  Rng rng(seed);
  std::vector<Label> w(n);
  for (auto& l : w) l = static_cast<Label>(rng.Below(alphabet));
  return w;
}

void BM_MinimumRepeat(benchmark::State& state) {
  const auto word = RandomWord(static_cast<size_t>(state.range(0)), 2, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinimumRepeatLength(word));
  }
}
BENCHMARK(BM_MinimumRepeat)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_DecomposeKernel(benchmark::State& state) {
  const auto word = RandomWord(static_cast<size_t>(state.range(0)), 2, 43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecomposeKernel(word));
  }
}
BENCHMARK(BM_DecomposeKernel)->Arg(4)->Arg(8)->Arg(16);

struct BenchFixture {
  DiGraph graph;
  RlcIndex index;
  PlainReachIndex plain;
  Workload workload;

  static const BenchFixture& Get() {
    static BenchFixture* fixture = [] {
      Rng rng(7);
      auto edges = ErdosRenyiEdges(20'000, 100'000, rng);
      AssignZipfLabels(&edges, 8, 2.0, rng);
      DiGraph g(20'000, std::move(edges), 8);
      RlcIndex idx = BuildRlcIndex(g, 2);
      PlainReachIndex plain = PlainReachIndex::Build(g);
      WorkloadOptions wopts;
      wopts.count = 200;
      Workload w = GenerateWorkload(g, wopts);
      return new BenchFixture{std::move(g), std::move(idx), std::move(plain),
                              std::move(w)};
    }();
    return *fixture;
  }
};

void BM_IndexQuery(benchmark::State& state) {
  const auto& f = BenchFixture::Get();
  const auto& queries =
      state.range(0) == 1 ? f.workload.true_queries : f.workload.false_queries;
  if (queries.empty()) {
    state.SkipWithError("empty query set");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    const RlcQuery& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(f.index.Query(q.s, q.t, q.constraint));
  }
}
BENCHMARK(BM_IndexQuery)->Arg(1)->Arg(0);

void BM_IndexQueryWithPrefilter(benchmark::State& state) {
  const auto& f = BenchFixture::Get();
  const auto& queries =
      state.range(0) == 1 ? f.workload.true_queries : f.workload.false_queries;
  if (queries.empty()) {
    state.SkipWithError("empty query set");
    return;
  }
  RlcHybridEngine engine(f.graph, f.index, &f.plain);
  size_t i = 0;
  for (auto _ : state) {
    const RlcQuery& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(
        engine.Evaluate(q.s, q.t, PathConstraint::RlcPlus(q.constraint)));
  }
}
BENCHMARK(BM_IndexQueryWithPrefilter)->Arg(1)->Arg(0);

void BM_PlainReachability(benchmark::State& state) {
  const auto& f = BenchFixture::Get();
  Rng rng(3);
  for (auto _ : state) {
    const auto s = static_cast<VertexId>(rng.Below(f.graph.num_vertices()));
    const auto t = static_cast<VertexId>(rng.Below(f.graph.num_vertices()));
    benchmark::DoNotOptimize(f.plain.Reachable(s, t));
  }
}
BENCHMARK(BM_PlainReachability);

void BM_OnlineBfs(benchmark::State& state) {
  const auto& f = BenchFixture::Get();
  const auto& queries =
      state.range(0) == 1 ? f.workload.true_queries : f.workload.false_queries;
  if (queries.empty()) {
    state.SkipWithError("empty query set");
    return;
  }
  OnlineSearcher searcher(f.graph);
  size_t i = 0;
  for (auto _ : state) {
    const RlcQuery& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(
        searcher.QueryBfsOnce(q.s, q.t, PathConstraint::RlcPlus(q.constraint)));
  }
}
BENCHMARK(BM_OnlineBfs)->Arg(1)->Arg(0);

void BM_OnlineBiBfs(benchmark::State& state) {
  const auto& f = BenchFixture::Get();
  const auto& queries =
      state.range(0) == 1 ? f.workload.true_queries : f.workload.false_queries;
  if (queries.empty()) {
    state.SkipWithError("empty query set");
    return;
  }
  OnlineSearcher searcher(f.graph);
  size_t i = 0;
  for (auto _ : state) {
    const RlcQuery& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(searcher.QueryBiBfsOnce(
        q.s, q.t, PathConstraint::RlcPlus(q.constraint)));
  }
}
BENCHMARK(BM_OnlineBiBfs)->Arg(1)->Arg(0);

}  // namespace

BENCHMARK_MAIN();
