// Micro-benchmarks (google-benchmark): minimum-repeat computation, kernel
// decomposition, index query latency, and online-traversal latency on a
// mid-size synthetic graph. These complement the per-table/figure harnesses
// with operation-level numbers.

#include <benchmark/benchmark.h>

#include "rlc/baselines/online_search.h"
#include "rlc/core/indexer.h"
#include "rlc/core/label_seq.h"
#include "rlc/engines/rlc_hybrid_engine.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/plain/plain_reach_index.h"
#include "rlc/util/rng.h"
#include "rlc/workload/query_gen.h"

namespace {

using namespace rlc;

std::vector<Label> RandomWord(size_t n, Label alphabet, uint64_t seed) {
  Rng rng(seed);
  std::vector<Label> w(n);
  for (auto& l : w) l = static_cast<Label>(rng.Below(alphabet));
  return w;
}

void BM_MinimumRepeat(benchmark::State& state) {
  const auto word = RandomWord(static_cast<size_t>(state.range(0)), 2, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinimumRepeatLength(word));
  }
}
BENCHMARK(BM_MinimumRepeat)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_DecomposeKernel(benchmark::State& state) {
  const auto word = RandomWord(static_cast<size_t>(state.range(0)), 2, 43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecomposeKernel(word));
  }
}
BENCHMARK(BM_DecomposeKernel)->Arg(4)->Arg(8)->Arg(16);

struct BenchFixture {
  DiGraph graph;
  RlcIndex index;         ///< sealed CSR layout (the default)
  RlcIndex index_nested;  ///< same entries, nested-vector layout
  PlainReachIndex plain;
  Workload workload;

  static const BenchFixture& Get() {
    static BenchFixture* fixture = [] {
      Rng rng(7);
      auto edges = ErdosRenyiEdges(20'000, 100'000, rng);
      AssignZipfLabels(&edges, 8, 2.0, rng);
      DiGraph g(20'000, std::move(edges), 8);
      IndexerOptions options;
      options.k = 2;
      options.seal = false;
      RlcIndexBuilder builder(g, options);
      RlcIndex nested = builder.Build();
      RlcIndex sealed = nested;  // copy, then flatten one of the two
      sealed.Seal();
      PlainReachIndex plain = PlainReachIndex::Build(g);
      WorkloadOptions wopts;
      wopts.count = 200;
      Workload w = GenerateWorkload(g, wopts);
      return new BenchFixture{std::move(g), std::move(sealed),
                              std::move(nested), std::move(plain),
                              std::move(w)};
    }();
    return *fixture;
  }
};

void BM_IndexQuery(benchmark::State& state) {
  const auto& f = BenchFixture::Get();
  const auto& queries =
      state.range(0) == 1 ? f.workload.true_queries : f.workload.false_queries;
  if (queries.empty()) {
    state.SkipWithError("empty query set");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    const RlcQuery& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(f.index.Query(q.s, q.t, q.constraint));
  }
}
BENCHMARK(BM_IndexQuery)->Arg(1)->Arg(0);

// The same workload against the build-time nested-vector layout: the gap to
// BM_IndexQuery is what Seal() buys on the query path.
void BM_IndexQueryNestedLayout(benchmark::State& state) {
  const auto& f = BenchFixture::Get();
  const auto& queries =
      state.range(0) == 1 ? f.workload.true_queries : f.workload.false_queries;
  if (queries.empty()) {
    state.SkipWithError("empty query set");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    const RlcQuery& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(f.index_nested.Query(q.s, q.t, q.constraint));
  }
}
BENCHMARK(BM_IndexQueryNestedLayout)->Arg(1)->Arg(0);

// QueryInterned is the hot path the hybrid engine drives (constraint already
// interned, no validation): layout effects show here undiluted. Arg: 0 =
// random pairs, 1 = hub-heavy pairs (endpoints with the largest entry
// lists, where the merge join and the galloping fallback do real work).
template <bool kSealed>
void BM_QueryInterned(benchmark::State& state) {
  const auto& f = BenchFixture::Get();
  const RlcIndex& index = kSealed ? f.index : f.index_nested;

  // Pre-intern every distinct workload constraint.
  std::vector<std::tuple<VertexId, VertexId, MrId>> probes;
  if (state.range(0) == 0) {
    // Serving-shaped traffic: enough uniformly random pairs that the entry
    // lists do not stay cache-resident between repeat visits.
    const MrId mr = index.FindMr(f.workload.true_queries.empty()
                                     ? LabelSeq{0}
                                     : f.workload.true_queries[0].constraint);
    Rng rng(11);
    for (int i = 0; i < 1 << 18; ++i) {
      probes.emplace_back(static_cast<VertexId>(rng.Below(f.graph.num_vertices())),
                          static_cast<VertexId>(rng.Below(f.graph.num_vertices())),
                          mr);
    }
  } else {
    // The 64 vertices with the largest Lout+Lin footprints, all pairs.
    std::vector<std::pair<uint64_t, VertexId>> sized;
    for (VertexId v = 0; v < f.graph.num_vertices(); ++v) {
      sized.push_back({f.index.Lout(v).size() + f.index.Lin(v).size(), v});
    }
    std::sort(sized.rbegin(), sized.rend());
    const MrId mr = index.FindMr(f.workload.true_queries.empty()
                                     ? LabelSeq{0}
                                     : f.workload.true_queries[0].constraint);
    for (size_t i = 0; i < 64 && i < sized.size(); ++i) {
      for (size_t j = 0; j < 64 && j < sized.size(); ++j) {
        probes.emplace_back(sized[i].second, sized[j].second, mr);
      }
    }
  }
  if (probes.empty()) {
    state.SkipWithError("no probes");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t, mr] = probes[i++ % probes.size()];
    benchmark::DoNotOptimize(index.QueryInterned(s, t, mr));
  }
}
BENCHMARK_TEMPLATE(BM_QueryInterned, true)->Arg(0)->Arg(1);
BENCHMARK_TEMPLATE(BM_QueryInterned, false)->Arg(0)->Arg(1);

// Full-index sweep (the shape of Summarize/WriteIndex/stats endpoints): the
// contiguous sealed buffers stream, the nested layout chases one heap block
// per vertex per side.
template <bool kSealed>
void BM_IndexScan(benchmark::State& state) {
  const auto& f = BenchFixture::Get();
  const RlcIndex& index = kSealed ? f.index : f.index_nested;
  for (auto _ : state) {
    uint64_t acc = 0;
    for (VertexId v = 0; v < index.num_vertices(); ++v) {
      for (const IndexEntry& e : index.Lout(v)) acc += e.hub_aid + e.mr;
      for (const IndexEntry& e : index.Lin(v)) acc += e.hub_aid + e.mr;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(index.NumEntries()));
}
BENCHMARK_TEMPLATE(BM_IndexScan, true);
BENCHMARK_TEMPLATE(BM_IndexScan, false);

void BM_IndexQueryWithPrefilter(benchmark::State& state) {
  const auto& f = BenchFixture::Get();
  const auto& queries =
      state.range(0) == 1 ? f.workload.true_queries : f.workload.false_queries;
  if (queries.empty()) {
    state.SkipWithError("empty query set");
    return;
  }
  RlcHybridEngine engine(f.graph, f.index, &f.plain);
  size_t i = 0;
  for (auto _ : state) {
    const RlcQuery& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(
        engine.Evaluate(q.s, q.t, PathConstraint::RlcPlus(q.constraint)));
  }
}
BENCHMARK(BM_IndexQueryWithPrefilter)->Arg(1)->Arg(0);

void BM_PlainReachability(benchmark::State& state) {
  const auto& f = BenchFixture::Get();
  Rng rng(3);
  for (auto _ : state) {
    const auto s = static_cast<VertexId>(rng.Below(f.graph.num_vertices()));
    const auto t = static_cast<VertexId>(rng.Below(f.graph.num_vertices()));
    benchmark::DoNotOptimize(f.plain.Reachable(s, t));
  }
}
BENCHMARK(BM_PlainReachability);

void BM_OnlineBfs(benchmark::State& state) {
  const auto& f = BenchFixture::Get();
  const auto& queries =
      state.range(0) == 1 ? f.workload.true_queries : f.workload.false_queries;
  if (queries.empty()) {
    state.SkipWithError("empty query set");
    return;
  }
  OnlineSearcher searcher(f.graph);
  size_t i = 0;
  for (auto _ : state) {
    const RlcQuery& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(
        searcher.QueryBfsOnce(q.s, q.t, PathConstraint::RlcPlus(q.constraint)));
  }
}
BENCHMARK(BM_OnlineBfs)->Arg(1)->Arg(0);

void BM_OnlineBiBfs(benchmark::State& state) {
  const auto& f = BenchFixture::Get();
  const auto& queries =
      state.range(0) == 1 ? f.workload.true_queries : f.workload.false_queries;
  if (queries.empty()) {
    state.SkipWithError("empty query set");
    return;
  }
  OnlineSearcher searcher(f.graph);
  size_t i = 0;
  for (auto _ : state) {
    const RlcQuery& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(searcher.QueryBiBfsOnce(
        q.s, q.t, PathConstraint::RlcPlus(q.constraint)));
  }
}
BENCHMARK(BM_OnlineBiBfs)->Arg(1)->Arg(0);

}  // namespace

BENCHMARK_MAIN();
