// Table III — overview of the evaluation graphs: |V|, |E|, |L|, loop count
// and triangle count. Prints the published numbers next to the generated
// surrogate's measured statistics, so the fidelity of the substitution is
// visible at a glance.

#include "bench_common.h"
#include "rlc/graph/stats.h"

int main() {
  using namespace rlc;
  using namespace rlc::bench;

  std::printf("== Table III: dataset overview (scaled surrogates) ==\n");

  Table table({"Dataset", "|V| paper", "|E| paper", "|L|", "Loops paper",
               "|V| built", "|E| built", "Loops built", "Triangles built"});
  for (const DatasetSpec& spec : SelectedDatasets()) {
    const DiGraph g = GetDataset(spec, EffectiveScale(spec, 0.01), /*seed=*/1);
    // Triangle counting is the slow part; skip it for very large builds.
    const bool with_triangles = g.num_edges() <= 5'000'000;
    const GraphStats s = ComputeStats(g, with_triangles);
    table.AddRow({spec.name, Human(spec.num_vertices), Human(spec.num_edges),
                  std::to_string(spec.num_labels), Human(spec.loop_count),
                  Human(s.num_vertices), Human(s.num_edges), Human(s.loop_count),
                  with_triangles ? Human(s.triangle_count) : "(skipped)"});
  }
  table.Print();
  std::printf(
      "\nNote: surrogates match |L|, degree-skew family, Zipf(2) labels and\n"
      "scaled |V|/|E|/loops; triangle counts emerge from the topology model.\n");
  return 0;
}
