// Table IV — indexing time (IT) and index size (IS) of the RLC index vs the
// extended transitive closure (ETC), k = 2.
//
// The paper's headline: ETC cannot be built within 24h for any graph except
// the smallest (AD), while the RLC index builds on all 13. We reproduce the
// shape with a per-dataset ETC budget (env RLC_ETC_MAX_EDGES, default 100K
// scaled edges): beyond it ETC is reported "-" exactly as in the paper.

#include "bench_common.h"
#include "rlc/baselines/etc_index.h"

int main() {
  using namespace rlc;
  using namespace rlc::bench;

  uint64_t etc_max_edges = 10'000;
  if (const char* env = std::getenv("RLC_ETC_MAX_EDGES")) {
    etc_max_edges = std::strtoull(env, nullptr, 10);
  }

  std::printf("== Table IV: indexing time and index size, k=2 ==\n");
  Table table({"Dataset", "|V|", "|E|", "RLC IT (s)", "RLC IS (MB)",
               "ETC IT (s)", "ETC IS (MB)", "IS ratio"});

  for (const DatasetSpec& spec : SelectedDatasets()) {
    const DiGraph g = GetDataset(spec, EffectiveScale(spec, 0.01), /*seed=*/2);

    IndexerOptions options;
    options.k = 2;
    RlcIndexBuilder builder(g, options);
    const RlcIndex index = builder.Build();
    const double rlc_it = builder.stats().build_seconds;
    const uint64_t rlc_is = index.MemoryBytes();

    std::string etc_it = "-", etc_is = "-", ratio = "-";
    if (g.num_edges() <= etc_max_edges) {
      EtcStats etc_stats;
      const EtcIndex etc = EtcIndex::Build(g, 2, &etc_stats);
      etc_it = Fmt("%.2f", etc_stats.build_seconds);
      etc_is = Mb(etc.MemoryBytes());
      ratio = Fmt("%.1fx", static_cast<double>(etc.MemoryBytes()) /
                               static_cast<double>(rlc_is));
    }
    table.AddRow({spec.name, Human(g.num_vertices()), Human(g.num_edges()),
                  Fmt("%.2f", rlc_it), Mb(rlc_is), etc_it, etc_is, ratio});
  }
  table.Print();
  std::printf(
      "\nNote: '-' = ETC exceeded the budget (paper: timed out after 24h /\n"
      "out of memory on every graph but AD). Raise RLC_ETC_MAX_EDGES to try.\n");
  return 0;
}
