// Table IV — indexing time (IT) and index size (IS) of the RLC index vs the
// extended transitive closure (ETC), k = 2 — extended with a build-thread
// sweep over the hub-batched parallel builder.
//
// The paper's headline: ETC cannot be built within 24h for any graph except
// the smallest (AD), while the RLC index builds on all 13. We reproduce the
// shape with a per-dataset ETC budget (env RLC_ETC_MAX_EDGES, default 100K
// scaled edges): beyond it ETC is reported "-" exactly as in the paper.
//
// RLC_THREADS="1,2,4" selects the sweep; each row reports the build wall
// time, throughput (entries/s) and the speedup over the single-thread build
// of the same dataset. Machine-readable results land in
// BENCH_table4_indexing.json (see bench_common.h JsonWriter).

#include "bench_common.h"
#include "rlc/baselines/etc_index.h"

int main() {
  using namespace rlc;
  using namespace rlc::bench;

  uint64_t etc_max_edges = 10'000;
  if (const char* env = std::getenv("RLC_ETC_MAX_EDGES")) {
    etc_max_edges = std::strtoull(env, nullptr, 10);
  }
  const std::vector<uint32_t> thread_counts = SelectedThreadCounts();
  JsonWriter json("table4_indexing");

  std::printf("== Table IV: indexing time and index size, k=2 ==\n");
  Table table({"Dataset", "|V|", "|E|", "thr", "RLC IT (s)", "speedup",
               "Mentry/s", "RLC IS (MB)", "ETC IT (s)", "ETC IS (MB)",
               "IS ratio"});

  for (const DatasetSpec& spec : SelectedDatasets()) {
    const DiGraph g = GetDataset(spec, EffectiveScale(spec, 0.01), /*seed=*/2);

    double single_thread_seconds = 0.0;
    for (const uint32_t threads : thread_counts) {
      IndexerOptions options;
      options.k = 2;
      options.num_threads = threads;
      RlcIndexBuilder builder(g, options);
      const RlcIndex index = builder.Build();
      const double rlc_it = builder.stats().build_seconds;
      const uint64_t rlc_is = index.MemoryBytes();
      const uint64_t entries = index.NumEntries();
      if (threads == thread_counts.front()) single_thread_seconds = rlc_it;
      const double speedup =
          rlc_it > 0 ? single_thread_seconds / rlc_it : 0.0;
      const double entries_per_s =
          rlc_it > 0 ? static_cast<double>(entries) / rlc_it : 0.0;

      // ETC comparison only once per dataset (it is single-threaded).
      std::string etc_it = "-", etc_is = "-", ratio = "-";
      if (threads == thread_counts.front() && g.num_edges() <= etc_max_edges) {
        EtcStats etc_stats;
        const EtcIndex etc = EtcIndex::Build(g, 2, &etc_stats);
        etc_it = Fmt("%.2f", etc_stats.build_seconds);
        etc_is = Mb(etc.MemoryBytes());
        ratio = Fmt("%.1fx", static_cast<double>(etc.MemoryBytes()) /
                                 static_cast<double>(rlc_is));
      }
      table.AddRow({spec.name, Human(g.num_vertices()), Human(g.num_edges()),
                    std::to_string(threads), Fmt("%.2f", rlc_it),
                    Fmt("%.2fx", speedup), Fmt("%.2f", entries_per_s / 1e6),
                    Mb(rlc_is), etc_it, etc_is, ratio});
      json.AddRecord()
          .Set("name", spec.name)
          .Set("threads", threads)
          .Set("wall_ms", rlc_it * 1e3)
          .Set("speedup", speedup)
          .Set("entries", entries)
          .Set("entries_per_s", entries_per_s)
          .Set("index_bytes", rlc_is)
          .Set("num_vertices", g.num_vertices())
          .Set("num_edges", g.num_edges());
    }
  }
  table.Print();
  std::printf(
      "\nNote: '-' = ETC exceeded the budget (paper: timed out after 24h /\n"
      "out of memory on every graph but AD). Raise RLC_ETC_MAX_EDGES to try.\n"
      "speedup is relative to the first entry of RLC_THREADS on each dataset.\n");
  return 0;
}
