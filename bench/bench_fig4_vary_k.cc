// Fig. 4 — RLC index performance on the TW (Twitter) and WG (Google)
// surrogates with recursive k in {2, 3, 4}: indexing time, index size and
// query time of 1000 true / 1000 false queries whose constraints have
// exactly k labels.
//
// Expected shape: indexing time and index size grow with k (time much
// faster than size), query time rises mildly.

#include "bench_common.h"

int main() {
  using namespace rlc;
  using namespace rlc::bench;

  const double scale = ScaleFromEnv(0.005);
  const uint32_t queries = QueriesPerSet();

  std::printf(
      "== Fig. 4: RLC index vs recursive k on TW and WG (scale %.4f) ==\n",
      scale);
  Table table({"Dataset", "k", "IT (s)", "IS (MB)", "Entries",
               "T-query (us)", "F-query (us)"});

  for (const char* name : {"TW", "WG"}) {
    const DatasetSpec spec = *FindDataset(name);
    const DiGraph g = GetDataset(spec, scale, /*seed=*/4);
    for (const uint32_t k : {2u, 3u, 4u}) {
      IndexerOptions options;
      options.k = k;
      RlcIndexBuilder builder(g, options);
      const RlcIndex index = builder.Build();

      WorkloadOptions wopts;
      wopts.count = queries;
      wopts.constraint_length = k;  // "recursive concatenation of k labels"
      wopts.seed = 40 + k;
      wopts.max_attempts = 200'000;
      wopts.fill_true_with_walks = true;
      const Workload w = GenerateWorkload(g, wopts);

      const double t_us =
          w.true_queries.empty() ? -1 : TimeRlcQueries(index, w.true_queries);
      const double f_us =
          w.false_queries.empty() ? -1 : TimeRlcQueries(index, w.false_queries);

      table.AddRow({name, std::to_string(k),
                    Fmt("%.2f", builder.stats().build_seconds),
                    Mb(index.MemoryBytes()), Human(index.NumEntries()),
                    t_us < 0 ? "n/a" : Fmt("%.0f", t_us),
                    f_us < 0 ? "n/a" : Fmt("%.0f", f_us)});
    }
  }
  table.Print();
  return 0;
}
