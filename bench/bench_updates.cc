// Dynamic-maintenance cost: edge-insert throughput, query ns/probe as the
// delta overlay grows, and reseal latency. Emits BENCH_updates.json.
//
// Protocol: build the static sealed index and measure the batched query
// baseline (0% delta). Then insert random new edges through the dynamic
// maintenance path until the pending-delta fraction crosses each checkpoint
// (1%, 5%, 10% of the sealed entry count), re-measuring the query path at
// every crossing — batched and scalar-interned, which must agree with each
// other, and answers may only flip false -> true as edges arrive
// (monotonicity; the harness aborts on a violation). Finally one forced
// reseal is timed and the post-reseal (0% delta again) rate recorded.
//
//   $ ./bench_updates [num_vertices num_edges num_probes iters]
//     defaults:          10000     40000     20000     3
//
// The acceptance ratio of interest (also a JSON summary field):
// ns/probe at the <= 5% checkpoint divided by the fully-sealed baseline.

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "rlc/core/dynamic_index.h"
#include "rlc/core/indexer.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/serve/query_batch.h"
#include "rlc/util/rng.h"
#include "rlc/util/timer.h"

using namespace rlc;

namespace {

double BestSeconds(int iters, const std::function<void()>& fn) {
  double best = 1e300;
  for (int i = 0; i < iters; ++i) {
    Timer t;
    fn();
    best = std::min(best, t.ElapsedSeconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const VertexId n = argc > 1 ? static_cast<VertexId>(std::atoi(argv[1])) : 10'000;
  const uint64_t m = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 40'000;
  const uint32_t num_probes =
      argc > 3 ? static_cast<uint32_t>(std::atoi(argv[3])) : 20'000;
  const int iters = argc > 4 ? std::atoi(argv[4]) : 3;
  const Label num_labels = 8;

  Rng rng(7);
  auto edges = ErdosRenyiEdges(n, m, rng);
  AssignZipfLabels(&edges, num_labels, 2.0, rng);
  const DiGraph g(n, std::move(edges), num_labels);
  std::printf("graph: |V|=%u |E|=%llu |L|=%u, %u probes x %d iters\n",
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()),
              g.num_labels(), num_probes, iters);

  Timer build_timer;
  IndexerOptions build_opts;
  build_opts.k = 2;
  RlcIndexBuilder builder(g, build_opts);
  ResealPolicy policy;
  policy.max_delta_ratio = 1e9;  // checkpoints reseal manually below
  DynamicRlcIndex dyn(g, builder.Build(), policy);
  const uint64_t sealed_entries = dyn.index().NumEntries();
  std::printf("index: %.2fs, %llu entries\n", build_timer.ElapsedSeconds(),
              static_cast<unsigned long long>(sealed_entries));

  // Length-2 oracle-classified workload over the *base* graph, shuffled.
  WorkloadOptions wopts;
  wopts.count = num_probes / 2;
  wopts.constraint_length = 2;
  wopts.fill_true_with_walks = true;
  Workload w = GenerateWorkload(g, wopts);
  std::vector<RlcQuery> log = w.true_queries;
  log.insert(log.end(), w.false_queries.begin(), w.false_queries.end());
  Rng shuffle_rng(17);
  for (size_t i = log.size(); i > 1; --i) {
    std::swap(log[i - 1], log[shuffle_rng.Below(i)]);
  }
  QueryBatch batch;
  for (const RlcQuery& q : log) batch.Add(q.s, q.t, q.constraint);
  std::printf("workload: %zu probes, %u templates\n", log.size(),
              batch.num_sequences());

  bench::JsonWriter json("updates");
  bool all_ok = true;
  std::vector<uint8_t> prev_answers;

  // One measurement of the current index state; verifies batched == scalar
  // and answer monotonicity against the previous checkpoint.
  auto measure = [&](const std::string& stage, double* batched_ns_out) {
    const RlcIndex& index = dyn.index();
    AnswerBatch batched;
    const double batched_secs =
        BestSeconds(iters, [&] { batched = ExecuteBatch(index, batch); });

    std::vector<MrId> mr_of(batch.num_sequences());
    for (uint32_t i = 0; i < batch.num_sequences(); ++i) {
      mr_of[i] = index.FindMr(batch.sequence(i));
    }
    const std::vector<BatchProbe>& probes = batch.probes();
    std::vector<uint8_t> scalar(probes.size());
    const double scalar_secs = BestSeconds(iters, [&] {
      for (size_t i = 0; i < probes.size(); ++i) {
        scalar[i] = index.QueryInterned(probes[i].s, probes[i].t,
                                        mr_of[probes[i].seq_id])
                        ? 1
                        : 0;
      }
    });

    bool agree = batched.answers == scalar;
    bool monotone = true;
    if (!prev_answers.empty()) {
      for (size_t i = 0; i < scalar.size(); ++i) {
        monotone = monotone && (prev_answers[i] <= scalar[i]);
      }
    }
    prev_answers = scalar;
    all_ok = all_ok && agree && monotone;

    const double batched_ns = batched_secs * 1e9 / static_cast<double>(log.size());
    const double scalar_ns = scalar_secs * 1e9 / static_cast<double>(log.size());
    std::printf(
        "%-14s: %8.1f ns/probe batched  %8.1f scalar  delta %6.2f%%  %s%s\n",
        stage.c_str(), batched_ns, scalar_ns, index.DeltaRatio() * 100.0,
        agree ? "ok" : "MISMATCH", monotone ? "" : " NON-MONOTONE");
    json.AddRecord()
        .Set("stage", stage)
        .Set("num_vertices", n)
        .Set("num_edges", m)
        .Set("probes", static_cast<uint64_t>(log.size()))
        .Set("delta_ratio", index.DeltaRatio())
        .Set("delta_entries", index.delta_entries())
        .Set("ns_per_probe_batched", batched_ns)
        .Set("ns_per_probe_scalar", scalar_ns)
        .Set("agree", agree)
        .Set("monotone", monotone);
    if (batched_ns_out != nullptr) *batched_ns_out = batched_ns;
  };

  double baseline_ns = 0.0;
  measure("delta_0", &baseline_ns);

  // Grow the overlay through the checkpoints, timing the inserts.
  Rng edge_rng(23);
  auto random_new_edge = [&] {
    for (;;) {
      const auto u = static_cast<VertexId>(edge_rng.Below(n));
      const auto v = static_cast<VertexId>(edge_rng.Below(n));
      const auto l = static_cast<Label>(edge_rng.Below(num_labels));
      if (!dyn.HasEdge(u, l, v)) return EdgeUpdate{u, l, v};
    }
  };
  const uint64_t insert_cap = std::max<uint64_t>(64, m / 5);
  double ns_at_5pct = baseline_ns;
  for (const double target : {0.01, 0.05, 0.10}) {
    uint64_t inserts = 0;
    Timer insert_timer;
    while (dyn.index().DeltaRatio() < target &&
           dyn.stats().edges_inserted < insert_cap) {
      const EdgeUpdate e = random_new_edge();
      dyn.InsertEdge(e.src, e.label, e.dst);
      ++inserts;
    }
    const double insert_secs = insert_timer.ElapsedSeconds();
    const double rate = inserts == 0
                            ? 0.0
                            : static_cast<double>(inserts) / insert_secs;
    std::printf("-> +%llu inserts (%.0f/s) to delta %.2f%%\n",
                static_cast<unsigned long long>(inserts), rate,
                dyn.index().DeltaRatio() * 100.0);
    json.AddRecord()
        .Set("stage", "inserts_to_" + std::to_string(target))
        .Set("inserts", inserts)
        .Set("insert_seconds", insert_secs)
        .Set("inserts_per_second", rate)
        .Set("delta_ratio", dyn.index().DeltaRatio());

    double ns = 0.0;
    char stage[32];
    std::snprintf(stage, sizeof(stage), "delta_%g", target);
    measure(stage, &ns);
    if (target == 0.05) ns_at_5pct = ns;
  }

  // Reseal latency: wall time of the synchronous fold (copy + merge +
  // signature recompute), then the post-reseal query rate.
  const double merge_before = dyn.stats().reseal_seconds;
  Timer reseal_timer;
  dyn.ForceReseal();
  const double reseal_wall = reseal_timer.ElapsedSeconds();
  const double merge_secs = dyn.stats().reseal_seconds - merge_before;
  std::printf("reseal: %.3fs wall (%.3fs merge)\n", reseal_wall, merge_secs);
  json.AddRecord()
      .Set("stage", "reseal")
      .Set("reseal_wall_seconds", reseal_wall)
      .Set("reseal_merge_seconds", merge_secs)
      .Set("entries_after", dyn.index().NumEntries());
  measure("post_reseal", nullptr);

  const double ratio = ns_at_5pct / baseline_ns;
  std::printf("ns/probe at <=5%% delta vs sealed baseline: %.2fx\n", ratio);
  json.AddRecord()
      .Set("stage", "summary")
      .Set("ratio_5pct_vs_sealed", ratio)
      .Set("edges_inserted", dyn.stats().edges_inserted)
      .Set("delta_entries_added", dyn.stats().delta_entries_added)
      .Set("kernels_examined", dyn.stats().kernels_examined)
      .Set("kernels_ruled_out", dyn.stats().kernels_ruled_out)
      .Set("all_ok", all_ok);

  if (!all_ok) {
    std::fprintf(stderr, "FAIL: answers disagree or went non-monotone\n");
    return 1;
  }
  return 0;
}
