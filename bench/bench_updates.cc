// Dynamic-maintenance cost: edge-insert/delete throughput, query ns/probe
// as the delta + tombstone overlays grow, and reseal latency. Emits
// BENCH_updates.json.
//
// Protocol, three phases over one graph:
//  1. inserts — build the static sealed index, measure the batched query
//     baseline (0% overlay), then insert random new edges until the
//     pending-mutation fraction crosses each checkpoint (1%, 5%, 10% of
//     the sealed entry count), re-measuring at every crossing. Batched and
//     scalar-interned answers must agree, and answers may only flip
//     false -> true while only inserts arrive (monotonicity; the harness
//     aborts on a violation). One forced reseal is timed.
//  2. deletes — from the resealed index, delete random present edges
//     through the same checkpoints (deltas from re-covers + tombstones),
//     recording deletes/s and ns/probe; monotonicity now runs in reverse
//     (answers may only flip true -> false). A second reseal is timed.
//  3. mixed churn — alternate inserts and deletes until ~10% of the base
//     edge count has been mutated, measuring ns/probe at the 5% and 10%
//     marks. The summary field `ratio_mixed_10pct_vs_sealed` is the
//     acceptance metric: mixed-churn ns/probe at <= 10% mutated edges
//     divided by the fully-sealed baseline.
//
//   $ ./bench_updates [num_vertices num_edges num_probes iters]
//     defaults:          10000     40000     20000     3

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "rlc/core/dynamic_index.h"
#include "rlc/core/indexer.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/serve/query_batch.h"
#include "rlc/util/rng.h"
#include "rlc/util/timer.h"

using namespace rlc;

namespace {

double BestSeconds(int iters, const std::function<void()>& fn) {
  double best = 1e300;
  for (int i = 0; i < iters; ++i) {
    Timer t;
    fn();
    best = std::min(best, t.ElapsedSeconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const VertexId n = argc > 1 ? static_cast<VertexId>(std::atoi(argv[1])) : 10'000;
  const uint64_t m = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 40'000;
  const uint32_t num_probes =
      argc > 3 ? static_cast<uint32_t>(std::atoi(argv[3])) : 20'000;
  const int iters = argc > 4 ? std::atoi(argv[4]) : 3;
  const Label num_labels = 8;

  Rng rng(7);
  auto edges = ErdosRenyiEdges(n, m, rng);
  AssignZipfLabels(&edges, num_labels, 2.0, rng);
  const DiGraph g(n, std::move(edges), num_labels);
  std::printf("graph: |V|=%u |E|=%llu |L|=%u, %u probes x %d iters\n",
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()),
              g.num_labels(), num_probes, iters);

  Timer build_timer;
  IndexerOptions build_opts;
  build_opts.k = 2;
  RlcIndexBuilder builder(g, build_opts);
  ResealPolicy policy;
  policy.max_delta_ratio = 1e9;  // checkpoints reseal manually below
  DynamicRlcIndex dyn(g, builder.Build(), policy);
  const uint64_t sealed_entries = dyn.index().NumEntries();
  std::printf("index: %.2fs, %llu entries\n", build_timer.ElapsedSeconds(),
              static_cast<unsigned long long>(sealed_entries));

  // Length-2 oracle-classified workload over the *base* graph, shuffled.
  WorkloadOptions wopts;
  wopts.count = num_probes / 2;
  wopts.constraint_length = 2;
  wopts.fill_true_with_walks = true;
  Workload w = GenerateWorkload(g, wopts);
  std::vector<RlcQuery> log = w.true_queries;
  log.insert(log.end(), w.false_queries.begin(), w.false_queries.end());
  Rng shuffle_rng(17);
  for (size_t i = log.size(); i > 1; --i) {
    std::swap(log[i - 1], log[shuffle_rng.Below(i)]);
  }
  QueryBatch batch;
  for (const RlcQuery& q : log) batch.Add(q.s, q.t, q.constraint);
  std::printf("workload: %zu probes, %u templates\n", log.size(),
              batch.num_sequences());

  bench::JsonWriter json("updates");
  bool all_ok = true;
  std::vector<uint8_t> prev_answers;

  // How answers are allowed to move between consecutive measurements:
  // +1 while only inserts arrive, -1 while only deletes arrive, 0 = any.
  int monotone_direction = +1;

  // One measurement of the current index state; verifies batched == scalar
  // and answer monotonicity against the previous checkpoint.
  auto measure = [&](const std::string& stage, double* batched_ns_out) {
    const RlcIndex& index = dyn.index();
    AnswerBatch batched;
    const double batched_secs =
        BestSeconds(iters, [&] { batched = ExecuteBatch(index, batch); });

    std::vector<MrId> mr_of(batch.num_sequences());
    for (uint32_t i = 0; i < batch.num_sequences(); ++i) {
      mr_of[i] = index.FindMr(batch.sequence(i));
    }
    const std::vector<BatchProbe>& probes = batch.probes();
    std::vector<uint8_t> scalar(probes.size());
    const double scalar_secs = BestSeconds(iters, [&] {
      for (size_t i = 0; i < probes.size(); ++i) {
        scalar[i] = index.QueryInterned(probes[i].s, probes[i].t,
                                        mr_of[probes[i].seq_id])
                        ? 1
                        : 0;
      }
    });

    bool agree = batched.answers == scalar;
    bool monotone = true;
    if (!prev_answers.empty() && monotone_direction != 0) {
      for (size_t i = 0; i < scalar.size(); ++i) {
        monotone = monotone && (monotone_direction > 0
                                    ? prev_answers[i] <= scalar[i]
                                    : prev_answers[i] >= scalar[i]);
      }
    }
    prev_answers = scalar;
    all_ok = all_ok && agree && monotone;

    const double batched_ns = batched_secs * 1e9 / static_cast<double>(log.size());
    const double scalar_ns = scalar_secs * 1e9 / static_cast<double>(log.size());
    std::printf(
        "%-16s: %8.1f ns/probe batched  %8.1f scalar  overlay %6.2f%%  %s%s\n",
        stage.c_str(), batched_ns, scalar_ns, index.DeltaRatio() * 100.0,
        agree ? "ok" : "MISMATCH", monotone ? "" : " NON-MONOTONE");
    json.AddRecord()
        .Set("stage", stage)
        .Set("num_vertices", n)
        .Set("num_edges", m)
        .Set("probes", static_cast<uint64_t>(log.size()))
        .Set("delta_ratio", index.DeltaRatio())
        .Set("delta_entries", index.delta_entries())
        .Set("tombstone_entries", index.tombstone_entries())
        .Set("ns_per_probe_batched", batched_ns)
        .Set("ns_per_probe_scalar", scalar_ns)
        .Set("agree", agree)
        .Set("monotone", monotone);
    if (batched_ns_out != nullptr) *batched_ns_out = batched_ns;
  };

  double baseline_ns = 0.0;
  measure("delta_0", &baseline_ns);

  // Mirror of the mutated graph's current edge set (deletes pick from it in
  // O(1) instead of re-materializing), plus the mutation pickers.
  Rng edge_rng(23);
  std::vector<Edge> edges_now = g.ToEdgeList();
  auto random_new_edge = [&] {
    for (;;) {
      const auto u = static_cast<VertexId>(edge_rng.Below(n));
      const auto v = static_cast<VertexId>(edge_rng.Below(n));
      const auto l = static_cast<Label>(edge_rng.Below(num_labels));
      if (!dyn.HasEdge(u, l, v)) return EdgeUpdate{u, l, v};
    }
  };
  auto do_insert = [&] {
    const EdgeUpdate e = random_new_edge();
    dyn.InsertEdge(e.src, e.label, e.dst);
    edges_now.push_back({e.src, e.dst, e.label});
  };
  auto do_delete = [&] {
    while (!edges_now.empty()) {
      const size_t pick = edge_rng.Below(edges_now.size());
      const Edge e = edges_now[pick];
      edges_now[pick] = edges_now.back();
      edges_now.pop_back();
      // The mirror may hold a parallel copy the graph deduplicated away;
      // retry until a real present edge is removed.
      if (dyn.DeleteEdge(e.src, e.label, e.dst)) return true;
    }
    return false;  // mirror drained (tiny CLI configs)
  };
  auto timed_reseal = [&](const std::string& stage) {
    const double merge_before = dyn.stats().reseal_seconds;
    Timer reseal_timer;
    dyn.ForceReseal();
    const double reseal_wall = reseal_timer.ElapsedSeconds();
    const double merge_secs = dyn.stats().reseal_seconds - merge_before;
    std::printf("%s: %.3fs wall (%.3fs merge)\n", stage.c_str(), reseal_wall,
                merge_secs);
    json.AddRecord()
        .Set("stage", stage)
        .Set("reseal_wall_seconds", reseal_wall)
        .Set("reseal_merge_seconds", merge_secs)
        .Set("entries_after", dyn.index().NumEntries());
  };

  // --- Phase 1: inserts through the overlay checkpoints. ---
  const uint64_t insert_cap = std::max<uint64_t>(64, m / 5);
  double ns_at_5pct = baseline_ns;
  for (const double target : {0.01, 0.05, 0.10}) {
    uint64_t inserts = 0;
    Timer insert_timer;
    while (dyn.index().DeltaRatio() < target &&
           dyn.stats().edges_inserted < insert_cap) {
      do_insert();
      ++inserts;
    }
    const double insert_secs = insert_timer.ElapsedSeconds();
    const double rate = inserts == 0
                            ? 0.0
                            : static_cast<double>(inserts) / insert_secs;
    std::printf("-> +%llu inserts (%.0f/s) to overlay %.2f%%\n",
                static_cast<unsigned long long>(inserts), rate,
                dyn.index().DeltaRatio() * 100.0);
    json.AddRecord()
        .Set("stage", "inserts_to_" + std::to_string(target))
        .Set("inserts", inserts)
        .Set("insert_seconds", insert_secs)
        .Set("inserts_per_second", rate)
        .Set("delta_ratio", dyn.index().DeltaRatio());

    double ns = 0.0;
    char stage[32];
    std::snprintf(stage, sizeof(stage), "delta_%g", target);
    measure(stage, &ns);
    if (target == 0.05) ns_at_5pct = ns;
  }

  // Reseal latency: wall time of the synchronous fold (copy + merge +
  // signature recompute), then the post-reseal query rate.
  timed_reseal("reseal");
  measure("post_reseal", nullptr);

  // --- Phase 2: deletes through the same checkpoints. Answers may now only
  // flip true -> false (deletes cannot create reachability). ---
  monotone_direction = -1;
  uint64_t total_deletes = 0;
  double total_delete_secs = 0.0;
  const uint64_t delete_cap = std::max<uint64_t>(64, m / 5);
  for (const double target : {0.01, 0.05, 0.10}) {
    uint64_t deletes = 0;
    Timer delete_timer;
    while (dyn.index().DeltaRatio() < target &&
           dyn.stats().edges_deleted < delete_cap) {
      if (!do_delete()) break;
      ++deletes;
    }
    const double delete_secs = delete_timer.ElapsedSeconds();
    total_deletes += deletes;
    total_delete_secs += delete_secs;
    const double rate =
        deletes == 0 ? 0.0 : static_cast<double>(deletes) / delete_secs;
    std::printf("-> -%llu deletes (%.0f/s) to overlay %.2f%%\n",
                static_cast<unsigned long long>(deletes), rate,
                dyn.index().DeltaRatio() * 100.0);
    json.AddRecord()
        .Set("stage", "deletes_to_" + std::to_string(target))
        .Set("deletes", deletes)
        .Set("delete_seconds", delete_secs)
        .Set("deletes_per_second", rate)
        .Set("delta_ratio", dyn.index().DeltaRatio())
        .Set("tombstone_entries", dyn.index().tombstone_entries());

    char stage[32];
    std::snprintf(stage, sizeof(stage), "tombstone_%g", target);
    measure(stage, nullptr);
  }
  timed_reseal("reseal_after_deletes");
  measure("post_delete_reseal", nullptr);

  // --- Phase 3: mixed churn toward 10% of the base edge count, measuring
  // at the 5% and 10% mutated-edge marks. Unlike the checkpointed phases
  // this one reseals at the default 10% policy threshold, so the measured
  // ns/probe is the steady state a production ResealPolicy would serve.
  // Each segment is additionally bounded by a wall-clock budget
  // (RLC_CHURN_SECONDS, total across segments): slow hardware reports the
  // mutated fraction it actually reached instead of running unbounded —
  // the acceptance metric is defined at <= 10% mutated edges either way.
  monotone_direction = 0;
  const char* churn_env = std::getenv("RLC_CHURN_SECONDS");
  const double churn_budget = churn_env != nullptr ? std::atof(churn_env) : 300.0;
  double ns_mixed_10pct = 0.0;
  double fraction_reached = 0.0;
  uint64_t churn = 0;
  uint64_t churn_reseals = 0;
  Timer churn_timer;
  for (const double target : {0.05, 0.10}) {
    const auto goal = static_cast<uint64_t>(target * static_cast<double>(m));
    while (churn < goal && churn_timer.ElapsedSeconds() < churn_budget) {
      if (churn % 2 == 0 || !do_delete()) {
        do_insert();
      }
      ++churn;
      if (dyn.index().DeltaRatio() > 0.10) {
        dyn.ForceReseal();
        ++churn_reseals;
      }
    }
    const double churn_secs = churn_timer.ElapsedSeconds();
    fraction_reached = static_cast<double>(churn) / static_cast<double>(m);
    std::printf("-> %llu mixed mutations (%.0f/s) = %.1f%% of base edges%s\n",
                static_cast<unsigned long long>(churn),
                static_cast<double>(churn) / churn_secs,
                fraction_reached * 100.0,
                churn < goal ? " [churn budget hit]" : "");
    json.AddRecord()
        .Set("stage", "churn_to_" + std::to_string(target))
        .Set("mutations", churn)
        .Set("churn_seconds", churn_secs)
        .Set("mutated_fraction", fraction_reached)
        .Set("reseals", churn_reseals)
        .Set("delta_ratio", dyn.index().DeltaRatio())
        .Set("tombstone_entries", dyn.index().tombstone_entries());

    char stage[32];
    std::snprintf(stage, sizeof(stage), "mixed_%g", target);
    measure(stage, &ns_mixed_10pct);  // last crossing (<= 10%) wins
    if (churn < goal) break;          // budget hit: 10% segment would lie
  }
  timed_reseal("reseal_after_churn");
  // The fully-sealed reference for the mixed-churn ratio is the *same*
  // logical index resealed to zero overlay: comparing against the pristine
  // baseline would conflate the overlay's query cost (what the dynamic
  // path adds) with the churn's entry growth (hub-compressed insert covers
  // accumulate redundant entries — a PR4 trade-off that resealing does not
  // undo; `entries_after` tracks it).
  double ns_churn_sealed = 0.0;
  measure("post_churn_reseal", &ns_churn_sealed);

  const double ratio = ns_at_5pct / baseline_ns;
  const double mixed_ratio = ns_mixed_10pct / ns_churn_sealed;
  const double deletes_per_second =
      total_delete_secs == 0.0
          ? 0.0
          : static_cast<double>(total_deletes) / total_delete_secs;
  std::printf("ns/probe at <=5%% insert overlay vs sealed baseline: %.2fx\n",
              ratio);
  std::printf("ns/probe at <=10%% mixed churn vs fully sealed:      %.2fx\n",
              mixed_ratio);
  json.AddRecord()
      .Set("stage", "summary")
      .Set("ratio_5pct_vs_sealed", ratio)
      .Set("ratio_mixed_10pct_vs_sealed", mixed_ratio)
      .Set("mixed_fraction_reached", fraction_reached)
      .Set("ns_mixed_10pct", ns_mixed_10pct)
      .Set("ns_churn_fully_sealed", ns_churn_sealed)
      .Set("ns_baseline_pristine", baseline_ns)
      .Set("deletes_per_second", deletes_per_second)
      .Set("edges_inserted", dyn.stats().edges_inserted)
      .Set("edges_deleted", dyn.stats().edges_deleted)
      .Set("delta_entries_added", dyn.stats().delta_entries_added)
      .Set("entries_suppressed", dyn.stats().entries_suppressed)
      .Set("pairs_recovered", dyn.stats().pairs_recovered)
      .Set("kernels_examined", dyn.stats().kernels_examined)
      .Set("kernels_ruled_out", dyn.stats().kernels_ruled_out)
      .Set("all_ok", all_ok);

  if (!all_ok) {
    std::fprintf(stderr, "FAIL: answers disagree or went non-monotone\n");
    return 1;
  }
  return 0;
}
