// Shared helpers for the per-table/figure benchmark harnesses.
//
// Conventions:
//  * Every harness runs in seconds at its default scale so the whole
//    bench/ directory can be executed in one sweep.
//  * RLC_SCALE (0 < s <= 1) scales dataset surrogates towards the paper's
//    full published sizes.
//  * RLC_DATASETS="AD,EP,..." restricts a harness to a subset of Table III
//    datasets ("all" = every dataset, the default).
//  * RLC_DATA_DIR=<dir> makes GetDataset() load the *real* SNAP/KONECT edge
//    list from <dir>/<abbrev>.txt instead of generating a surrogate.
//  * RLC_QUERIES overrides the per-set workload size (paper: 1000).

#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "rlc/baselines/online_search.h"
#include "rlc/core/indexer.h"
#include "rlc/graph/datasets.h"
#include "rlc/graph/edge_list_io.h"
#include "rlc/obs/metrics.h"
#include "rlc/util/simd.h"
#include "rlc/util/timer.h"
#include "rlc/workload/query_gen.h"

namespace rlc::bench {

inline uint32_t QueriesPerSet(uint32_t def = 1000) {
  const char* env = std::getenv("RLC_QUERIES");
  if (env != nullptr) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<uint32_t>(v);
  }
  return def;
}

/// Datasets selected via RLC_DATASETS (comma-separated abbreviations).
inline std::vector<DatasetSpec> SelectedDatasets() {
  const char* env = std::getenv("RLC_DATASETS");
  const auto& all = TableIIIDatasets();
  if (env == nullptr || std::string(env) == "all") return all;
  std::vector<DatasetSpec> picked;
  std::string list(env);
  size_t pos = 0;
  while (pos <= list.size()) {
    const size_t comma = list.find(',', pos);
    const std::string name =
        list.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    if (auto spec = FindDataset(name)) picked.push_back(*spec);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return picked.empty() ? all : picked;
}

/// Per-dataset effective scale for the full Table III suite. Unless the
/// user pins RLC_SCALE explicitly, the scale is additionally capped so that
/// the surrogate has at most RLC_TARGET_EDGES edges (default 25K): shrinking
/// |V| while holding the published average degree makes dense graphs
/// saturate (every pair reachable), so the heaviest datasets need smaller
/// relative scales to stay laptop-sized. Hardness *ordering* across
/// datasets is preserved (|V| grows suite-wide at fixed edge budget only
/// for the sparse graphs).
inline double EffectiveScale(const DatasetSpec& spec, double default_scale) {
  uint64_t target_edges = 25'000;
  if (const char* env = std::getenv("RLC_TARGET_EDGES")) {
    const auto v = std::strtoull(env, nullptr, 10);
    if (v > 0) target_edges = v;
  }
  if (std::getenv("RLC_SCALE") != nullptr) {
    return ScaleFromEnv(default_scale);  // explicit user choice wins
  }
  const double cap = static_cast<double>(target_edges) /
                     static_cast<double>(spec.num_edges);
  return std::min(default_scale, std::max(cap, 1e-6));
}

/// Real dataset file if RLC_DATA_DIR is set and the file exists, otherwise
/// a scaled surrogate (see DESIGN.md §2, substitution 1).
inline DiGraph GetDataset(const DatasetSpec& spec, double scale, uint64_t seed) {
  if (const char* dir = std::getenv("RLC_DATA_DIR")) {
    const std::string path = std::string(dir) + "/" + spec.name + ".txt";
    if (FILE* f = std::fopen(path.c_str(), "r")) {
      std::fclose(f);
      std::printf("# loading real dataset %s from %s\n", spec.name.c_str(),
                  path.c_str());
      return LoadEdgeListText(path);
    }
  }
  return MakeSurrogate(spec, scale, seed);
}

/// Git SHA the benchmark binary was configured from (CMake passes it via
/// RLC_BUILD_GIT_SHA; "unknown" outside a git checkout). Configure-time,
/// so a rebuild after new commits without re-running cmake can lag.
inline const char* BuildGitSha() {
#ifdef RLC_BUILD_GIT_SHA
  return RLC_BUILD_GIT_SHA;
#else
  return "unknown";
#endif
}

/// Compiler id + version, taken at compile time from the preprocessor.
inline std::string BuildCompiler() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

/// The CXX flags of the build configuration (CMake passes them via
/// RLC_BUILD_FLAGS).
inline const char* BuildFlags() {
#ifdef RLC_BUILD_FLAGS
  return RLC_BUILD_FLAGS;
#else
  return "unknown";
#endif
}

/// Machine-readable benchmark output: collects flat records and writes them
/// as a JSON array to BENCH_<harness>.json on destruction, so the perf
/// trajectory can be tracked across PRs without scraping the tables.
/// Output directory: RLC_BENCH_JSON_DIR (default: current directory).
///
/// The first record of every file is build provenance — git SHA, compiler,
/// flags, SIMD ISA — so a BENCH_*.json artifact is attributable to the
/// exact build that produced it.
///
///   JsonWriter json("table4_indexing");
///   json.AddRecord()
///       .Set("name", spec.name).Set("threads", threads)
///       .Set("wall_ms", seconds * 1e3).Set("entries_per_s", rate);
class JsonWriter {
 public:
  class Record {
   public:
    Record& Set(const std::string& key, const std::string& value) {
      return SetRaw(key, Quote(value));
    }
    Record& Set(const std::string& key, const char* value) {
      return SetRaw(key, Quote(value));
    }
    Record& Set(const std::string& key, bool value) {
      return SetRaw(key, value ? "true" : "false");
    }
    template <typename T>
      requires std::is_arithmetic_v<T>
    Record& Set(const std::string& key, T value) {
      char buf[64];
      if constexpr (std::is_floating_point_v<T>) {
        std::snprintf(buf, sizeof(buf), "%.8g", static_cast<double>(value));
      } else if constexpr (std::is_signed_v<T>) {
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
      } else {
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(value));
      }
      return SetRaw(key, buf);
    }

   private:
    friend class JsonWriter;
    Record& SetRaw(const std::string& key, std::string json_value) {
      fields_.emplace_back(key, std::move(json_value));
      return *this;
    }
    static std::string Quote(const std::string& s) {
      std::string out = "\"";
      for (const char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        if (c == '\n') {
          out += "\\n";
        } else {
          out += c;
        }
      }
      out += '"';
      return out;
    }
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  explicit JsonWriter(std::string harness) : harness_(std::move(harness)) {
    AddRecord()
        .Set("record", "provenance")
        .Set("harness", harness_)
        .Set("git_sha", BuildGitSha())
        .Set("compiler", BuildCompiler())
        .Set("build_flags", BuildFlags())
        .Set("simd", simd::KernelIsa());
  }
  ~JsonWriter() { Flush(); }
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  Record& AddRecord() {
    records_.emplace_back();
    return records_.back();
  }

  /// Appends one record per non-empty metric in `snap` (type "metric"):
  /// counters/gauges carry `value`; histograms carry count / mean_ns /
  /// p50_ns / p95_ns / p99_ns / max_ns. `source` distinguishes the global
  /// registry from per-service registries when a harness exports both.
  void AppendMetrics(const obs::MetricsSnapshot& snap,
                     const std::string& source = "global") {
    for (const auto& c : snap.counters) {
      if (c.value == 0) continue;
      AddRecord()
          .Set("record", "metric")
          .Set("source", source)
          .Set("metric", c.name)
          .Set("type", "counter")
          .Set("value", c.value);
    }
    for (const auto& g : snap.gauges) {
      if (g.value == 0) continue;
      AddRecord()
          .Set("record", "metric")
          .Set("source", source)
          .Set("metric", g.name)
          .Set("type", "gauge")
          .Set("value", g.value);
    }
    for (const auto& h : snap.histograms) {
      if (h.count == 0) continue;
      AddRecord()
          .Set("record", "metric")
          .Set("source", source)
          .Set("metric", h.name)
          .Set("type", "histogram")
          .Set("count", h.count)
          .Set("mean_ns", h.Mean())
          .Set("p50_ns", h.Percentile(0.50))
          .Set("p95_ns", h.Percentile(0.95))
          .Set("p99_ns", h.Percentile(0.99))
          .Set("max_ns", h.max);
    }
  }

  /// Writes BENCH_<harness>.json (idempotent; also run by the destructor).
  /// Every file automatically ends with the global metrics registry's
  /// "metric" records, so any harness that exercised instrumented code gets
  /// latency percentiles in its artifact for free.
  void Flush() {
    if (flushed_) return;
    flushed_ = true;
    AppendMetrics(obs::Registry::Global().Snapshot());
    const char* dir = std::getenv("RLC_BENCH_JSON_DIR");
    const std::string path =
        std::string(dir != nullptr ? dir : ".") + "/BENCH_" + harness_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "JsonWriter: cannot write %s\n", path.c_str());
      return;
    }
    out << "[\n";
    for (size_t r = 0; r < records_.size(); ++r) {
      out << "  {";
      for (size_t f = 0; f < records_[r].fields_.size(); ++f) {
        if (f > 0) out << ", ";
        out << Record::Quote(records_[r].fields_[f].first) << ": "
            << records_[r].fields_[f].second;
      }
      out << (r + 1 < records_.size() ? "},\n" : "}\n");
    }
    out << "]\n";
    std::printf("# wrote %s (%zu records)\n", path.c_str(), records_.size());
  }

 private:
  std::string harness_;
  std::vector<Record> records_;
  bool flushed_ = false;
};

/// Thread counts selected via RLC_THREADS (comma-separated, e.g. "1,4,8").
inline std::vector<uint32_t> SelectedThreadCounts(
    std::vector<uint32_t> def = {1, 2, 4}) {
  const char* env = std::getenv("RLC_THREADS");
  if (env == nullptr) return def;
  std::vector<uint32_t> picked;
  for (const char* p = env; *p != '\0';) {
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    if (end != p && v > 0) picked.push_back(static_cast<uint32_t>(v));
    // Skip to the next comma-separated token, ignoring malformed ones.
    while (*end != '\0' && *end != ',') ++end;
    p = (*end == ',') ? end + 1 : end;
  }
  return picked.empty() ? def : picked;
}

/// Minimal fixed-width table printer for paper-style output.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    PrintRow(headers_, width);
    std::string rule;
    for (size_t c = 0; c < width.size(); ++c) {
      rule += std::string(width[c], '-');
      if (c + 1 < width.size()) rule += "-+-";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) PrintRow(row, width);
  }

 private:
  static void PrintRow(const std::vector<std::string>& row,
                       const std::vector<size_t>& width) {
    std::string line;
    for (size_t c = 0; c < width.size(); ++c) {
      std::string cell = c < row.size() ? row[c] : "";
      cell.resize(width[c], ' ');
      line += cell;
      if (c + 1 < width.size()) line += " | ";
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string Human(uint64_t n) {
  char buf[64];
  if (n >= 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(n) / 1e6);
  } else if (n >= 10'000) {
    std::snprintf(buf, sizeof(buf), "%.1fK", static_cast<double>(n) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(n));
  }
  return buf;
}

inline std::string Mb(uint64_t bytes) {
  return Fmt("%.2f", static_cast<double>(bytes) / (1024.0 * 1024.0));
}

/// Total time (microseconds) to run every query in `set` on the RLC index.
inline double TimeRlcQueries(const RlcIndex& index,
                             const std::vector<RlcQuery>& set) {
  Timer t;
  uint64_t hits = 0;
  for (const RlcQuery& q : set) hits += index.Query(q.s, q.t, q.constraint);
  const double us = t.ElapsedMicros();
  // Consume `hits` so the loop cannot be optimized away.
  if (hits == UINT64_MAX) std::printf("impossible\n");
  return us;
}

enum class Traversal { kBfs, kBiBfs };

/// Total time (microseconds) for the online baseline over `set`, with a
/// per-set budget: returns -1 ("timeout") when the budget is exceeded.
inline double TimeOnlineQueries(const DiGraph& g, const std::vector<RlcQuery>& set,
                                Traversal method, double budget_seconds) {
  OnlineSearcher searcher(g);
  Timer t;
  for (const RlcQuery& q : set) {
    const auto pc = PathConstraint::RlcPlus(q.constraint);
    const CompiledConstraint cc(pc, g.num_labels());
    const bool got = method == Traversal::kBfs ? searcher.QueryBfs(q.s, q.t, cc)
                                               : searcher.QueryBiBfs(q.s, q.t, cc);
    if (got != q.expected) std::printf("!! baseline disagrees with oracle\n");
    if (t.ElapsedSeconds() > budget_seconds) return -1.0;
  }
  return t.ElapsedMicros();
}

inline std::string TimeCell(double us) {
  if (us < 0) return "timeout";
  return Fmt("%.0f", us);
}

}  // namespace rlc::bench
