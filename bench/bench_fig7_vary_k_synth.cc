// Fig. 7 (Appendix C) — impact of recursive k in {2,3,4} on ER- and
// BA-graphs with |V| = 125K (scaled), d = 5, |L| = 16.
//
// Expected shape: indexing time and index size rise steeply (exponentially
// in k); query time rises most for BA true-queries and ER false-queries.

#include "bench_common.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"

int main() {
  using namespace rlc;
  using namespace rlc::bench;

  const double scale = ScaleFromEnv(0.02);
  const VertexId n = static_cast<VertexId>(125'000 * scale);
  const uint32_t queries = QueriesPerSet(200);

  std::printf("== Fig. 7: recursive k sweep on ER/BA (|V|=%u, d=5, |L|=16) ==\n",
              n);
  Table table({"Model", "k", "IT (s)", "IS (MB)", "Entries", "T-query (us)",
               "F-query (us)"});

  for (const bool ba : {false, true}) {
    Rng rng(555 + (ba ? 1 : 0));
    auto edges = ba ? BarabasiAlbertEdges(n, 5, rng)
                    : ErdosRenyiEdges(n, static_cast<uint64_t>(n) * 5, rng);
    AssignZipfLabels(&edges, 16, 2.0, rng);
    const DiGraph g(n, std::move(edges), 16);

    for (const uint32_t k : {2u, 3u, 4u}) {
      IndexerOptions options;
      options.k = k;
      RlcIndexBuilder builder(g, options);
      const RlcIndex index = builder.Build();

      WorkloadOptions wopts;
      wopts.count = queries;
      wopts.constraint_length = k;
      wopts.seed = 600 + k;
      wopts.max_attempts = 150'000;
      wopts.fill_true_with_walks = true;
      const Workload w = GenerateWorkload(g, wopts);

      const double t_us =
          w.true_queries.empty() ? -1 : TimeRlcQueries(index, w.true_queries);
      const double f_us =
          w.false_queries.empty() ? -1 : TimeRlcQueries(index, w.false_queries);
      table.AddRow({ba ? "BA" : "ER", std::to_string(k),
                    Fmt("%.2f", builder.stats().build_seconds),
                    Mb(index.MemoryBytes()), Human(index.NumEntries()),
                    t_us < 0 ? "n/a" : Fmt("%.0f", t_us),
                    f_us < 0 ? "n/a" : Fmt("%.0f", f_us)});
    }
  }
  table.Print();
  return 0;
}
