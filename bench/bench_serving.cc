// Serving-layer throughput: scalar vs batched query execution, single index
// vs sharded service. Emits BENCH_serving.json.
//
// Modes measured over one mixed true/false workload (every mode must return
// identical answers — the harness aborts otherwise):
//
//   scalar_query         index.Query per probe (per-call validation+FindMr)
//   scalar_interned      index.QueryInterned per probe, MRs pre-resolved
//   batched_index        ExecuteBatch: grouped by MR + CSR prefetch
//   batched_index_fresh  ditto, batch re-assembled inside the timed region
//   scalar_service       ShardedRlcService::Query per probe
//   batched_service      ShardedRlcService::Execute
//
//   $ ./bench_serving [num_vertices num_edges num_probes iters shards]
//     defaults:            20000     100000    20000     5     4
//
// The interesting ratios (also emitted as a JSON record): batched_index vs
// scalar_query is the per-call-overhead amortization; batched_index vs
// scalar_interned isolates the CSR prefetch pipeline.
//
// Sharded phases also emit routing composition telemetry per mode —
// intra_shard_share (endpoints co-located, no composition needed) and
// skeleton hops per composed probe — plus a "memory" record comparing the
// aggregate per-shard index bytes against the whole-graph index (the
// ~1/N scaling claim) and a "community" record contrasting kHash vs
// kRangeOrdered locality on a planted-partition graph.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "bench_common.h"
#include "rlc/core/indexer.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/serve/sharded_service.h"
#include "rlc/util/failpoint.h"
#include "rlc/util/rng.h"
#include "rlc/util/timer.h"

using namespace rlc;

namespace {

double BestSeconds(int iters, const std::function<void()>& fn) {
  double best = 1e300;
  for (int i = 0; i < iters; ++i) {
    Timer t;
    fn();
    best = std::min(best, t.ElapsedSeconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const VertexId n = argc > 1 ? static_cast<VertexId>(std::atoi(argv[1])) : 20'000;
  const uint64_t m = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100'000;
  const uint32_t num_probes = argc > 3 ? static_cast<uint32_t>(std::atoi(argv[3])) : 20'000;
  const int iters = argc > 4 ? std::atoi(argv[4]) : 5;
  const uint32_t shards = argc > 5 ? static_cast<uint32_t>(std::atoi(argv[5])) : 4;
  const Label num_labels = 8;

  Rng rng(7);
  auto edges = ErdosRenyiEdges(n, m, rng);
  AssignZipfLabels(&edges, num_labels, 2.0, rng);
  const DiGraph g(n, std::move(edges), num_labels);
  std::printf("graph: |V|=%u |E|=%llu |L|=%u, %u probes x %d iters\n",
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()),
              g.num_labels(), num_probes, iters);

  Timer build_timer;
  const RlcIndex index = BuildRlcIndex(g, 2);
  std::printf("whole-graph index: %.2fs, %llu entries\n",
              build_timer.ElapsedSeconds(),
              static_cast<unsigned long long>(index.NumEntries()));

  // Workload: length-2 oracle-classified queries (the paper's protocol),
  // shuffled so true/false and constraint templates interleave.
  WorkloadOptions wopts;
  wopts.count = num_probes / 2;
  wopts.constraint_length = 2;
  wopts.fill_true_with_walks = true;
  Workload w = GenerateWorkload(g, wopts);
  std::vector<RlcQuery> log = w.true_queries;
  log.insert(log.end(), w.false_queries.begin(), w.false_queries.end());
  Rng shuffle_rng(17);
  for (size_t i = log.size(); i > 1; --i) {
    std::swap(log[i - 1], log[shuffle_rng.Below(i)]);
  }
  std::printf("workload: %zu probes (%zu true)\n", log.size(),
              w.true_queries.size());

  // Prepared-statement view of the log: distinct templates interned once.
  QueryBatch batch;
  for (const RlcQuery& q : log) {
    batch.Add(q.s, q.t, batch.InternSequence(q.constraint));
  }
  const std::vector<BatchProbe>& probes = batch.probes();
  std::vector<MrId> mr_of(batch.num_sequences());
  for (uint32_t i = 0; i < batch.num_sequences(); ++i) {
    mr_of[i] = index.FindMr(batch.sequence(i));
  }
  std::printf("templates: %u distinct\n", batch.num_sequences());

  // Reference answers (scalar validated path).
  std::vector<uint8_t> reference;
  reference.reserve(log.size());
  for (const RlcQuery& q : log) {
    reference.push_back(index.Query(q.s, q.t, q.constraint) ? 1 : 0);
  }

  bench::JsonWriter json("serving");
  bool all_agree = true;
  std::vector<double> ns_per_query;
  auto report = [&](const std::string& mode, uint32_t mode_shards,
                    double seconds, const std::vector<uint8_t>& answers,
                    const ServiceStats* stats) {
    bool agree = answers == reference;
    all_agree = all_agree && agree;
    const double ns = seconds * 1e9 / static_cast<double>(log.size());
    ns_per_query.push_back(ns);
    std::printf("%-20s: %8.1f ns/probe  %7.2f Mq/s  answers %s\n", mode.c_str(),
                ns, static_cast<double>(log.size()) / seconds / 1e6,
                agree ? "ok" : "MISMATCH");
    auto& rec = json.AddRecord()
                    .Set("mode", mode)
                    .Set("shards", mode_shards)
                    .Set("num_vertices", n)
                    .Set("num_edges", m)
                    .Set("probes", static_cast<uint64_t>(log.size()))
                    .Set("iters", iters)
                    .Set("ns_per_probe", ns)
                    .Set("agree", agree);
    if (stats != nullptr) {
      const double intra_share =
          stats->queries == 0
              ? 0.0
              : static_cast<double>(stats->intra_true + stats->intra_miss) /
                    static_cast<double>(stats->queries);
      std::printf("  %-18s  intra_shard_share %.3f, composed %llu, "
                  "skeleton hops %llu\n",
                  "", intra_share,
                  static_cast<unsigned long long>(stats->compose_probes),
                  static_cast<unsigned long long>(stats->compose_skeleton_hops));
      rec.Set("intra_true", stats->intra_true)
          .Set("cross_refuted", stats->cross_refuted)
          .Set("compose_probes", stats->compose_probes)
          .Set("compose_skeleton_hops", stats->compose_skeleton_hops)
          .Set("intra_shard_share", intra_share);
    }
  };

  // Per-mode routing telemetry: the service accumulates stats across every
  // iteration and mode, so report the per-run delta (the workload is
  // deterministic — each iteration adds identical counts).
  auto stats_delta = [&](const ServiceStats& before, const ServiceStats& after,
                         int runs) {
    ServiceStats d;
    d.queries = (after.queries - before.queries) / runs;
    d.intra_true = (after.intra_true - before.intra_true) / runs;
    d.intra_miss = (after.intra_miss - before.intra_miss) / runs;
    d.cross_refuted = (after.cross_refuted - before.cross_refuted) / runs;
    d.compose_probes = (after.compose_probes - before.compose_probes) / runs;
    d.compose_skeleton_hops =
        (after.compose_skeleton_hops - before.compose_skeleton_hops) / runs;
    return d;
  };

  // --- scalar_query ---
  std::vector<uint8_t> answers(log.size());
  double secs = BestSeconds(iters, [&] {
    for (size_t i = 0; i < log.size(); ++i) {
      answers[i] = index.Query(log[i].s, log[i].t, log[i].constraint) ? 1 : 0;
    }
  });
  report("scalar_query", 1, secs, answers, nullptr);

  // --- scalar_interned ---
  secs = BestSeconds(iters, [&] {
    for (size_t i = 0; i < probes.size(); ++i) {
      answers[i] =
          index.QueryInterned(probes[i].s, probes[i].t, mr_of[probes[i].seq_id])
              ? 1
              : 0;
    }
  });
  report("scalar_interned", 1, secs, answers, nullptr);

  // --- batched_index (prepared batch) ---
  AnswerBatch batch_answers;
  secs = BestSeconds(iters, [&] { batch_answers = ExecuteBatch(index, batch); });
  report("batched_index", 1, secs, batch_answers.answers, nullptr);
  const double batched_index_ns = ns_per_query.back();

  // --- batched_index_fresh (assembly inside the timed region) ---
  secs = BestSeconds(iters, [&] {
    QueryBatch fresh;
    for (const RlcQuery& q : log) fresh.Add(q.s, q.t, q.constraint);
    batch_answers = ExecuteBatch(index, fresh);
  });
  report("batched_index_fresh", 1, secs, batch_answers.answers, nullptr);

  // --- sharded service (scalar + batched) ---
  ServiceOptions options;
  options.partition.num_shards = shards;
  options.indexer.k = 2;
  Timer service_timer;
  ShardedRlcService service(g, options);
  std::printf("sharded service (%u shards): built in %.2fs, %.2f MB, "
              "boundary %llu/%u\n",
              shards, service_timer.ElapsedSeconds(),
              static_cast<double>(service.MemoryBytes()) / (1 << 20),
              static_cast<unsigned long long>(
                  service.partition().num_boundary_vertices()),
              g.num_vertices());

  ServiceStats before = service.stats();
  secs = BestSeconds(iters, [&] {
    for (size_t i = 0; i < log.size(); ++i) {
      answers[i] = service.Query(log[i].s, log[i].t, log[i].constraint) ? 1 : 0;
    }
  });
  ServiceStats scalar_stats = stats_delta(before, service.stats(), iters);
  report("scalar_service", shards, secs, answers, &scalar_stats);

  before = service.stats();
  secs = BestSeconds(iters, [&] { batch_answers = service.Execute(batch); });
  ServiceStats batched_stats = stats_delta(before, service.stats(), iters);
  report("batched_service", shards, secs, batch_answers.answers,
         &batched_stats);

  // --- resilience: shedding, deadlines, breaker trip + reclose ---
  // A dedicated small instance (its own metrics registry) so the throughput
  // telemetry above stays clean. The point is nonzero serve.shed /
  // serve.deadline_exceeded / serve.breaker.* records in the JSON: the
  // schema the degradation-ladder dashboards consume has to come from a
  // real overloaded/faulted run, not a hand-written fixture.
  {
    ServiceOptions ropts;
    ropts.partition.num_shards = shards;
    ropts.indexer.k = 2;
    ropts.max_batch_probes = 64;  // tiny admission high-water mark
    ropts.breaker.failure_threshold = 1;
    ropts.breaker.initial_backoff_ns = 1'000'000;  // recloses within the run
    ropts.breaker.max_backoff_ns = 8'000'000;
    ShardedRlcService resilience(g, ropts);

    // Shed: the full workload batch is far over the 64-probe mark.
    ExecuteLimits shed_limits;
    shed_limits.shed_as_status = true;
    const AnswerBatch shedded = resilience.Execute(batch, shed_limits);

    QueryBatch small;  // under the mark, for the fault phases
    for (size_t i = 0; i < 48 && i < log.size(); ++i) {
      small.Add(log[i].s, log[i].t, log[i].constraint);
    }
    ExecuteLimits expired;  // already-expired budget: every probe marked
    expired.batch_budget_ns = 1;
    resilience.Execute(small, expired);

    // One erroring pass trips every touched shard breaker
    // (failure_threshold=1, answers stay exact via index-free degraded
    // evaluation); clean traffic after the backoff recloses them.
    Failpoints::Instance().Parse("serve.shard.execute=error@p1");
    const AnswerBatch degraded = resilience.Execute(small);
    Failpoints::Instance().Clear();
    ::usleep(10'000);  // > initial_backoff + jitter
    const AnswerBatch healed = resilience.Execute(small);

    const ServiceStats rs = resilience.stats();
    bool resilient = shedded.num_shedded == batch.num_probes() &&
                     rs.shed > 0 && rs.deadline_exceeded > 0 &&
                     rs.breaker_opened > 0 && rs.breaker_reclosed > 0;
    for (size_t i = 0; i < small.num_probes(); ++i) {
      resilient = resilient && healed.answers[i] == reference[i] &&
                  (degraded.statuses[i] != ProbeStatus::kOk ||
                   degraded.answers[i] == reference[i]);
    }
    std::printf(
        "resilience: shed %llu, deadline_exceeded %llu, breaker opened "
        "%llu/reclosed %llu, degraded-exact %llu, recovery %s\n",
        static_cast<unsigned long long>(rs.shed),
        static_cast<unsigned long long>(rs.deadline_exceeded),
        static_cast<unsigned long long>(rs.breaker_opened),
        static_cast<unsigned long long>(rs.breaker_reclosed),
        static_cast<unsigned long long>(rs.breaker_degraded),
        resilient ? "ok" : "FAILED");
    json.AddRecord()
        .Set("record", "resilience")
        .Set("shards", shards)
        .Set("shed", rs.shed)
        .Set("deadline_exceeded", rs.deadline_exceeded)
        .Set("breaker_opened", rs.breaker_opened)
        .Set("breaker_reclosed", rs.breaker_reclosed)
        .Set("breaker_degraded", rs.breaker_degraded)
        .Set("recovered", resilient);
    json.AppendMetrics(resilience.metrics().Snapshot(), "resilience");
    all_agree = all_agree && resilient;
  }

  // --- per-shard composition attribution + per-stage latency percentiles ---
  // The routing pathology this harness watches for is "one shard's boundary
  // refutation stopped working": total compose_probes stays flat while one
  // shard's share spikes. Per-stage serve.stage.* histograms land in the
  // JSON via AppendMetrics (p50/p95/p99 per record).
  {
    const std::vector<uint64_t> per_shard = service.ShardComposeCounts();
    uint64_t compose_total = 0;
    for (const uint64_t c : per_shard) compose_total += c;
    for (uint32_t s = 0; s < per_shard.size(); ++s) {
      const double share =
          compose_total == 0 ? 0.0
                             : static_cast<double>(per_shard[s]) /
                                   static_cast<double>(compose_total);
      std::printf("shard %u: %llu composed probes (%.1f%% of composed)\n", s,
                  static_cast<unsigned long long>(per_shard[s]), share * 100.0);
      json.AddRecord()
          .Set("record", "shard_compose")
          .Set("shard", s)
          .Set("compose_probes", per_shard[s])
          .Set("compose_share", share);
    }
    json.AppendMetrics(service.metrics().Snapshot(), "service");
  }

  // --- memory: aggregate shard indexes vs the whole-graph index ---
  // The point of deleting the whole-graph tier: N shards should cost ~1/N
  // of the monolithic index (plus the boundary skeleton), not 1 + 1/N.
  {
    const uint64_t whole_bytes = index.MemoryBytes();
    uint64_t shard_bytes = 0;
    for (uint32_t s = 0; s < shards; ++s) {
      shard_bytes += service.shard_index(s).MemoryBytes();
    }
    const double ratio = whole_bytes == 0
                             ? 0.0
                             : static_cast<double>(shard_bytes) /
                                   static_cast<double>(whole_bytes);
    std::printf("memory: whole-graph index %.2f MB, %u-shard aggregate "
                "%.2f MB (%.3fx), service total %.2f MB\n",
                static_cast<double>(whole_bytes) / (1 << 20), shards,
                static_cast<double>(shard_bytes) / (1 << 20), ratio,
                static_cast<double>(service.MemoryBytes()) / (1 << 20));
    json.AddRecord()
        .Set("record", "memory")
        .Set("num_shards", shards)
        .Set("whole_index_bytes", whole_bytes)
        .Set("aggregate_shard_index_bytes", shard_bytes)
        .Set("service_bytes", service.MemoryBytes())
        .Set("shard_to_whole_ratio", ratio);
  }

  // --- community locality: kHash vs kRangeOrdered on a planted-partition
  // graph --- Membership is id-shuffled, so plain range sees no locality;
  // the ordering heuristic has to rediscover the communities. The record
  // pins that kRangeOrdered pushes intra_shard_share up (and composition
  // down) relative to hash on the same graph and workload.
  {
    Rng crng(29);
    auto cedges =
        PlantedPartitionEdges(n, m, std::max(2u, shards * 2), 0.9, crng);
    AssignZipfLabels(&cedges, num_labels, 2.0, crng);
    const DiGraph cg(n, std::move(cedges), num_labels);
    WorkloadOptions cwopts;
    cwopts.count = std::max<uint32_t>(num_probes / 4, 64);
    cwopts.constraint_length = 2;
    cwopts.fill_true_with_walks = true;
    const Workload cw = GenerateWorkload(cg, cwopts);
    QueryBatch cbatch;
    for (const auto* side : {&cw.true_queries, &cw.false_queries}) {
      for (const RlcQuery& q : *side) cbatch.Add(q.s, q.t, q.constraint);
    }
    const RlcIndex coracle = BuildRlcIndex(cg, 2);
    std::vector<uint8_t> cexpected;
    cexpected.reserve(cbatch.num_probes());
    for (const BatchProbe& p : cbatch.probes()) {
      cexpected.push_back(
          coracle.QueryInterned(p.s, p.t,
                                coracle.FindMr(cbatch.sequence(p.seq_id)))
              ? 1
              : 0);
    }
    for (const PartitionPolicy policy :
         {PartitionPolicy::kHash, PartitionPolicy::kRangeOrdered}) {
      ServiceOptions copts;
      copts.partition.num_shards = shards;
      copts.partition.policy = policy;
      copts.indexer.k = 2;
      ShardedRlcService cservice(cg, copts);
      const AnswerBatch got = cservice.Execute(cbatch);
      const bool agree = got.answers == cexpected;
      all_agree = all_agree && agree;
      const ServiceStats cs = cservice.stats();
      const double intra_share =
          cs.queries == 0 ? 0.0
                          : static_cast<double>(cs.intra_true + cs.intra_miss) /
                                static_cast<double>(cs.queries);
      const char* name =
          policy == PartitionPolicy::kHash ? "hash" : "range_ordered";
      std::printf("community/%-13s: intra_shard_share %.3f, composed %llu, "
                  "skeleton hops %llu, answers %s\n",
                  name, intra_share,
                  static_cast<unsigned long long>(cs.compose_probes),
                  static_cast<unsigned long long>(cs.compose_skeleton_hops),
                  agree ? "ok" : "MISMATCH");
      json.AddRecord()
          .Set("record", "community")
          .Set("policy", name)
          .Set("shards", shards)
          .Set("intra_shard_share", intra_share)
          .Set("compose_probes", cs.compose_probes)
          .Set("compose_skeleton_hops", cs.compose_skeleton_hops)
          .Set("agree", agree);

      // Composed-probe latency percentiles at equal shard count: the
      // nightly gate pins p95(hash) <= RATIO x p95(range_ordered) — hash
      // composes far more probes, and the batch-shared frontier cache is
      // what keeps its tail in the same regime. Re-run the batch so warm
      // rounds (frontier hits) dominate the histogram the way a steady
      // workload would — enough rounds that the one-off cold frontier
      // builds fall out of the p95 sample mass (< 5%).
      for (int warm = 0; warm < 12; ++warm) {
        const AnswerBatch again = cservice.Execute(cbatch);
        all_agree = all_agree && again.answers == cexpected;
      }
      const auto snapshot = cservice.metrics().Snapshot();
      const auto* hist = snapshot.FindHistogram("serve.stage.compose_probe_ns");
      const uint64_t p50 = hist == nullptr ? 0 : hist->Percentile(0.50);
      const uint64_t p95 = hist == nullptr ? 0 : hist->Percentile(0.95);
      const uint64_t samples = hist == nullptr ? 0 : hist->count;
      const ServiceStats warm_stats = cservice.stats();
      std::printf("compose_p95/%-11s: p50 %llu ns, p95 %llu ns (%llu composed, "
                  "frontier %llu hit / %llu miss)\n",
                  name, static_cast<unsigned long long>(p50),
                  static_cast<unsigned long long>(p95),
                  static_cast<unsigned long long>(samples),
                  static_cast<unsigned long long>(warm_stats.frontier_hits),
                  static_cast<unsigned long long>(warm_stats.frontier_misses));
      json.AddRecord()
          .Set("record", "compose_p95")
          .Set("policy", name)
          .Set("shards", shards)
          .Set("samples", samples)
          .Set("p50_ns", p50)
          .Set("p95_ns", p95)
          .Set("frontier_hits", warm_stats.frontier_hits)
          .Set("frontier_misses", warm_stats.frontier_misses);
    }
  }

  // --- summary ratios ---
  const double scalar_query_ns = ns_per_query[0];
  const double scalar_interned_ns = ns_per_query[1];
  std::printf("speedup batched_index vs scalar_query:    %.2fx\n",
              scalar_query_ns / batched_index_ns);
  std::printf("speedup batched_index vs scalar_interned: %.2fx\n",
              scalar_interned_ns / batched_index_ns);
  json.AddRecord()
      .Set("mode", "summary")
      .Set("shards", shards)
      .Set("speedup_batched_vs_scalar_query", scalar_query_ns / batched_index_ns)
      .Set("speedup_batched_vs_scalar_interned",
           scalar_interned_ns / batched_index_ns)
      .Set("all_agree", all_agree);

  if (!all_agree) {
    std::fprintf(stderr, "FAIL: modes disagree\n");
    return 1;
  }
  return 0;
}
