// Ablation — the design choices DESIGN.md calls out:
//  (1) pruning rules PR1/PR2/PR3 on/off: build time, entries, index size
//      (paper Appendix D reports the no-PR3 design is 32x slower to build
//      on AD; §VI credits the rules for both IT and IS gains);
//  (2) the vertex-ordering strategy (IN-OUT vs vertex-id vs random), the
//      2-hop-style choice §V-B motivates.
// Correctness of every variant is asserted against the default index.

#include "bench_common.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"

int main() {
  using namespace rlc;
  using namespace rlc::bench;

  const double scale = ScaleFromEnv(0.2);
  const DatasetSpec spec = *FindDataset("AD");
  const DiGraph g = GetDataset(spec, scale, /*seed=*/6);
  std::printf("== Ablation on AD surrogate: |V|=%u |E|=%llu, k=2 ==\n\n",
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()));

  struct Variant {
    const char* name;
    IndexerOptions options;
  };
  std::vector<Variant> variants;
  {
    IndexerOptions base;
    base.k = 2;
    Variant v{"PR1+PR2+PR3 (paper)", base};
    variants.push_back(v);
    v = {"PR1+PR2, no PR3", base};
    v.options.pr3 = false;
    variants.push_back(v);
    v = {"PR2 only", base};
    v.options.pr1 = false;
    v.options.pr3 = false;
    variants.push_back(v);
    v = {"PR1 only", base};
    v.options.pr2 = false;
    v.options.pr3 = false;
    variants.push_back(v);
    v = {"no pruning", base};
    v.options.pr1 = v.options.pr2 = v.options.pr3 = false;
    variants.push_back(v);
    v = {"random order", base};
    v.options.ordering = VertexOrdering::kRandom;
    variants.push_back(v);
    v = {"vertex-id order", base};
    v.options.ordering = VertexOrdering::kVertexId;
    variants.push_back(v);
    v = {"lazy KBS", base};
    v.options.strategy = KbsStrategy::kLazy;
    variants.push_back(v);
  }

  // Reference index + sample queries for the correctness cross-check.
  const RlcIndex reference = BuildRlcIndex(g, 2);
  WorkloadOptions wopts;
  wopts.count = QueriesPerSet(200);
  wopts.constraint_length = 2;
  wopts.max_attempts = 150'000;
  wopts.fill_true_with_walks = true;
  const Workload w = GenerateWorkload(g, wopts);

  Table table({"Variant", "IT (s)", "slowdown", "Entries", "IS (MB)",
               "PR1 prunes", "PR2 prunes", "correct"});
  double baseline_it = 0;
  for (const Variant& variant : variants) {
    RlcIndexBuilder builder(g, variant.options);
    const RlcIndex index = builder.Build();
    const IndexerStats& s = builder.stats();
    if (&variant == &variants.front()) baseline_it = s.build_seconds;

    bool correct = true;
    for (const auto* set : {&w.true_queries, &w.false_queries}) {
      for (const RlcQuery& q : *set) {
        correct &= (index.Query(q.s, q.t, q.constraint) == q.expected);
      }
    }
    table.AddRow({variant.name, Fmt("%.3f", s.build_seconds),
                  Fmt("%.1fx", s.build_seconds / baseline_it),
                  Human(index.NumEntries()), Mb(index.MemoryBytes()),
                  Human(s.pruned_pr1), Human(s.pruned_pr2),
                  correct ? "yes" : "NO"});
  }
  table.Print();
  return 0;
}
