// Fig. 6 — scalability of the RLC index in |V| for ER- and BA-graphs with
// d = 5, |L| = 16 (paper: |V| in 125K..2M; scaled by RLC_SCALE, default
// 1/20 of the paper's sizes).
//
// Expected shape: indexing time and index size grow with |V|; ER index size
// grows at a sharper rate than BA; false-query time > true-query time on
// ER, the reverse on BA.

#include "bench_common.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"

int main() {
  using namespace rlc;
  using namespace rlc::bench;

  const double scale = ScaleFromEnv(0.02);
  const uint32_t queries = QueriesPerSet(200);
  const Label labels = 16;
  const uint32_t d = 5;

  std::printf("== Fig. 6: scalability in |V| (d=5, |L|=16, k=2, scale %.4f) ==\n",
              scale);
  Table table({"Model", "|V|", "|E|", "IT (s)", "IS (MB)", "T-query (us)",
               "F-query (us)"});

  for (const uint64_t base : {125'000u, 250'000u, 500'000u, 1'000'000u,
                              2'000'000u}) {
    const VertexId n = static_cast<VertexId>(base * scale);
    for (const bool ba : {false, true}) {
      Rng rng(31'000 + base / 1000 + (ba ? 7 : 0));
      auto edges = ba ? BarabasiAlbertEdges(n, d, rng)
                      : ErdosRenyiEdges(n, static_cast<uint64_t>(n) * d, rng);
      AssignZipfLabels(&edges, labels, 2.0, rng);
      const DiGraph g(n, std::move(edges), labels);

      IndexerOptions options;
      options.k = 2;
      RlcIndexBuilder builder(g, options);
      const RlcIndex index = builder.Build();

      WorkloadOptions wopts;
      wopts.count = queries;
      wopts.constraint_length = 2;
      wopts.seed = base;
      wopts.max_attempts = 150'000;
      wopts.fill_true_with_walks = true;
      const Workload w = GenerateWorkload(g, wopts);

      const double t_us =
          w.true_queries.empty() ? -1 : TimeRlcQueries(index, w.true_queries);
      const double f_us =
          w.false_queries.empty() ? -1 : TimeRlcQueries(index, w.false_queries);
      table.AddRow({ba ? "BA" : "ER", Human(n), Human(g.num_edges()),
                    Fmt("%.2f", builder.stats().build_seconds),
                    Mb(index.MemoryBytes()),
                    t_us < 0 ? "n/a" : Fmt("%.0f", t_us),
                    f_us < 0 ? "n/a" : Fmt("%.0f", f_us)});
    }
  }
  table.Print();
  return 0;
}
