// Table V — speed-ups (SU) and workload-size break-even points (BEP) of the
// RLC index over the engine archetypes on the WN graph, with one k=3 index
// serving all four query shapes:
//   Q1 = a+, Q2 = (a b)+, Q3 = (a b c)+, Q4 = a+ b+ (extended, hybrid plan).
//
// SU  = median engine query time / median RLC query time.
// BEP = index build time / (t_engine - t_rlc) per query: the number of
//       queries after which building the index pays off.
//
// Reproduction scope: the RLC index wins by one to two orders of magnitude
// on every query shape, with finite break-even points. The paper's *extra*
// effect — SU growing monotonically with concatenation length, up to
// 3.8*10^7x — is driven by the original engines' interpretive and
// materialization overheads and is documented as not reproduced by these
// native archetypes (see EXPERIMENTS.md).

#include <algorithm>

#include "bench_common.h"
#include "rlc/automaton/dense_nfa.h"
#include "rlc/engines/frontier_engine.h"
#include "rlc/engines/recursive_join_engine.h"
#include "rlc/engines/rlc_hybrid_engine.h"
#include "rlc/engines/volcano_engine.h"

namespace {

using namespace rlc;

// a,b,c = the three most frequent Zipf labels.
std::vector<std::pair<std::string, PathConstraint>> PaperQueries() {
  return {
      {"Q1 a+", PathConstraint::RlcPlus(LabelSeq{0})},
      {"Q2 (a b)+", PathConstraint::RlcPlus(LabelSeq{0, 1})},
      {"Q3 (a b c)+", PathConstraint::RlcPlus(LabelSeq{0, 1, 2})},
      {"Q4 a+ b+", PathConstraint({ConstraintAtom{LabelSeq{0}, true},
                                   ConstraintAtom{LabelSeq{1}, true}})},
  };
}

// Samples endpoint pairs that *satisfy* the constraint by walking the graph
// along an accepting run of its NFA. Random pairs are almost always
// trivially false on scaled-down graphs (the search dies after a step or
// two), which would make longer constraints look cheaper; the paper's
// speed-ups reflect queries that perform real exploration, so the workload
// here is the satisfying pairs (plus their evaluation on every engine).
std::vector<std::pair<VertexId, VertexId>> SampleTruePairs(
    const DiGraph& g, const PathConstraint& c, uint32_t want, Rng& rng) {
  const Nfa nfa = Nfa::FromConstraint(c);
  const DenseNfa dense(nfa, g.num_labels());
  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (uint64_t attempt = 0; attempt < 400'000 && pairs.size() < want;
       ++attempt) {
    VertexId v = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const VertexId s = v;
    uint32_t q = dense.starts()[rng.Below(dense.starts().size())];
    for (int step = 0; step < 64; ++step) {
      if (dense.IsAccept(q) && step > 0 && rng.Bernoulli(0.3)) {
        pairs.push_back({s, v});
        break;
      }
      // Pick a random edge whose label has an NFA transition from q.
      const auto out = g.OutEdges(v);
      if (out.empty()) break;
      const LabeledNeighbor& nb = out[rng.Below(out.size())];
      const auto next = dense.Next(q, nb.label);
      if (next.empty()) {
        if (dense.IsAccept(q) && step > 0) pairs.push_back({s, v});
        break;
      }
      q = next[rng.Below(next.size())];
      v = nb.v;
    }
  }
  return pairs;
}

double MedianMicrosPerQuery(Engine& engine,
                            const std::vector<std::pair<VertexId, VertexId>>& pairs,
                            const PathConstraint& c, double budget_seconds,
                            bool* timed_out) {
  std::vector<double> times;
  Timer total;
  for (const auto& [s, t] : pairs) {
    Timer timer;
    (void)engine.Evaluate(s, t, c);
    times.push_back(timer.ElapsedMicros());
    if (total.ElapsedSeconds() > budget_seconds) {
      *timed_out = true;
      return -1;
    }
  }
  *timed_out = false;
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace

int main() {
  using namespace rlc::bench;

  const double scale = ScaleFromEnv(0.02);
  double budget_seconds = 20.0;
  if (const char* env = std::getenv("RLC_BASELINE_BUDGET_S")) {
    budget_seconds = std::strtod(env, nullptr);
  }

  const DatasetSpec spec = *FindDataset("WN");
  const DiGraph g = GetDataset(spec, scale, /*seed=*/5);
  std::printf(
      "== Table V: SU and BEP of the RLC index over engine archetypes ==\n"
      "graph: WN surrogate |V|=%u |E|=%llu, index k=3\n",
      g.num_vertices(), static_cast<unsigned long long>(g.num_edges()));

  IndexerOptions options;
  options.k = 3;
  RlcIndexBuilder builder(g, options);
  const RlcIndex index = builder.Build();
  const double build_us = builder.stats().build_seconds * 1e6;
  std::printf("index built in %.1f s, %s MB\n\n",
              builder.stats().build_seconds, Mb(index.MemoryBytes()).c_str());

  Rng rng(2024);
  const uint32_t num_pairs = QueriesPerSet(20);

  RecursiveJoinEngine sys1(g);
  VolcanoEngine sys2(g);
  FrontierEngine virtuoso(g);
  RlcHybridEngine rlc_engine(g, index);

  Table table({"Query", "Engine", "median (us)", "RLC (us)", "SU", "BEP"});
  for (const auto& [qname, constraint] : PaperQueries()) {
    // Half satisfying pairs (engines must traverse to the witness), half
    // uniform pairs (engines must exhaust the constrained search space).
    auto pairs = SampleTruePairs(g, constraint, num_pairs / 2, rng);
    while (pairs.size() < num_pairs) {
      pairs.push_back({static_cast<VertexId>(rng.Below(g.num_vertices())),
                       static_cast<VertexId>(rng.Below(g.num_vertices()))});
    }
    bool rlc_timeout = false;
    const double rlc_us = MedianMicrosPerQuery(rlc_engine, pairs, constraint,
                                               budget_seconds, &rlc_timeout);
    Engine* engines[] = {&sys1, &sys2, &virtuoso};
    for (Engine* engine : engines) {
      bool timed_out = false;
      const double engine_us = MedianMicrosPerQuery(*engine, pairs, constraint,
                                                    budget_seconds, &timed_out);
      std::string su = "-", bep = "-";
      if (!timed_out && engine_us > rlc_us) {
        su = Fmt("%.0fx", engine_us / rlc_us);
        bep = Human(static_cast<uint64_t>(build_us / (engine_us - rlc_us)) + 1);
      }
      table.AddRow({qname, engine->name(),
                    timed_out ? "timeout" : Fmt("%.1f", engine_us),
                    Fmt("%.2f", rlc_us), su, bep});
    }
  }
  table.Print();
  std::printf(
      "\nNote: Sys1/Sys2/Virtuoso are archetype reimplementations of the\n"
      "anonymized engines (see DESIGN.md §2). Reproduced: SU >> 1 for every\n"
      "engine and query shape, finite BEPs, and the fixpoint engine paying\n"
      "the most for recursion. Not reproduced (documented in EXPERIMENTS.md):\n"
      "the paper's monotone SU growth with concatenation length, which stems\n"
      "from the original engines' interpretive/materialization overheads\n"
      "rather than from the constrained search space itself.\n");
  return 0;
}
