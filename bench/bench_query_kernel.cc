// Query-kernel throughput: vertex-signature refutation, the hybrid
// intersection kernel, and parallel batch execution. Emits
// BENCH_query_kernel.json (first record = build provenance).
//
// Three probe mixes over one ER graph (defaults 20K vertices / 100K edges,
// the workload PR 1/PR 2 tracked):
//
//   negative90   90% oracle-false probes — the refute-fast target
//   positive90   90% oracle-true probes  — the signature overhead bound
//   skew         sources drawn from the vertices with the largest Lout
//                lists — exercises the gallop/block kernel selection
//
// Per mix the harness measures scalar QueryInterned and batched
// ExecuteBatch with signatures off/on (single thread, so any win is the
// kernel's, not parallelism), then a batched thread sweep (RLC_THREADS,
// default 1,2,4) with signatures on. Every mode must reproduce the scalar
// unsignatured answers bit for bit — the harness exits 1 otherwise.
//
// A second section microbenchmarks the raw intersection kernels from
// util/simd.h against std::set_intersection across length ratios.
//
//   $ ./bench_query_kernel [num_vertices num_edges num_probes iters]
//     defaults:               20000      100000    20000     5

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "rlc/core/indexer.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/obs/metrics.h"
#include "rlc/serve/query_batch.h"
#include "rlc/util/rng.h"
#include "rlc/util/simd.h"
#include "rlc/util/thread_pool.h"
#include "rlc/util/timer.h"

using namespace rlc;

namespace {

double BestSeconds(int iters, const std::function<void()>& fn) {
  double best = 1e300;
  for (int i = 0; i < iters; ++i) {
    Timer t;
    fn();
    best = std::min(best, t.ElapsedSeconds());
  }
  return best;
}

struct Mix {
  std::string name;
  std::vector<RlcQuery> probes;
};

/// Draws `count` probes from the true/false pools at the given true-share.
Mix MakeMix(const std::string& name, const Workload& w, double true_share,
            uint32_t count, uint64_t seed) {
  Mix mix;
  mix.name = name;
  Rng rng(seed);
  const uint32_t want_true =
      static_cast<uint32_t>(static_cast<double>(count) * true_share);
  for (uint32_t i = 0; i < count; ++i) {
    const bool pick_true = i < want_true;
    const auto& pool = pick_true ? w.true_queries : w.false_queries;
    mix.probes.push_back(pool[rng.Below(pool.size())]);
  }
  for (size_t i = mix.probes.size(); i > 1; --i) {
    std::swap(mix.probes[i - 1], mix.probes[rng.Below(i)]);
  }
  return mix;
}

/// Probes whose sources carry the largest Lout lists (hub-heavy skew).
Mix MakeSkewMix(const RlcIndex& index, const DiGraph& g, uint32_t count,
                uint64_t seed) {
  std::vector<VertexId> by_list(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) by_list[v] = v;
  std::sort(by_list.begin(), by_list.end(), [&](VertexId a, VertexId b) {
    return index.Lout(a).size() > index.Lout(b).size();
  });
  const size_t heads = std::min<size_t>(64, by_list.size());
  std::vector<LabelSeq> templates;
  for (MrId id = 0; id < index.mr_table().size() && templates.size() < 16;
       ++id) {
    if (index.mr_table().Get(id).size() <= index.k()) {
      templates.push_back(index.mr_table().Get(id));
    }
  }
  Mix mix;
  mix.name = "skew";
  Rng rng(seed);
  for (uint32_t i = 0; i < count && !templates.empty() && heads > 0; ++i) {
    RlcQuery q;
    q.s = by_list[rng.Below(heads)];
    q.t = static_cast<VertexId>(rng.Below(g.num_vertices()));
    q.constraint = templates[rng.Below(templates.size())];
    mix.probes.push_back(q);
  }
  return mix;
}

/// Sorted array of `n` distinct u32 drawn from [0, n * spread).
std::vector<uint32_t> SortedUnique(size_t n, uint32_t spread, Rng& rng) {
  std::vector<uint32_t> v;
  v.reserve(n);
  uint32_t cur = 0;
  for (size_t i = 0; i < n; ++i) {
    cur += 1 + static_cast<uint32_t>(rng.Below(spread));
    v.push_back(cur);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  const VertexId n =
      argc > 1 ? static_cast<VertexId>(std::atoi(argv[1])) : 20'000;
  const uint64_t m = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100'000;
  const uint32_t num_probes =
      argc > 3 ? static_cast<uint32_t>(std::atoi(argv[3])) : 20'000;
  const int iters = argc > 4 ? std::atoi(argv[4]) : 5;
  const Label num_labels = 8;

  Rng rng(7);
  auto edges = ErdosRenyiEdges(n, m, rng);
  AssignZipfLabels(&edges, num_labels, 2.0, rng);
  const DiGraph g(n, std::move(edges), num_labels);

  Timer build_timer;
  RlcIndex index = BuildRlcIndex(g, 2);
  std::printf("graph: |V|=%u |E|=%llu |L|=%u; index %.2fs, %llu entries, "
              "simd=%s\n",
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()),
              g.num_labels(), build_timer.ElapsedSeconds(),
              static_cast<unsigned long long>(index.NumEntries()),
              simd::KernelIsa());

  WorkloadOptions wopts;
  wopts.count = num_probes / 2;
  wopts.constraint_length = 2;
  wopts.fill_true_with_walks = true;
  const Workload w = GenerateWorkload(g, wopts);
  if (w.true_queries.empty() || w.false_queries.empty()) {
    std::fprintf(stderr, "workload generation produced an empty pool\n");
    return 1;
  }

  std::vector<Mix> mixes;
  mixes.push_back(MakeMix("negative90", w, 0.10, num_probes, 11));
  mixes.push_back(MakeMix("positive90", w, 0.90, num_probes, 13));
  mixes.push_back(MakeSkewMix(index, g, num_probes, 17));

  bench::JsonWriter json("query_kernel");
  bool all_agree = true;
  double negative_sig_off_ns = 0.0;
  double negative_sig_on_ns = 0.0;

  const std::vector<uint32_t> thread_counts = bench::SelectedThreadCounts();

  for (const Mix& mix : mixes) {
    // Reference: scalar validated queries on the unsignatured path.
    index.set_use_signatures(false);
    std::vector<uint8_t> reference;
    reference.reserve(mix.probes.size());
    for (const RlcQuery& q : mix.probes) {
      reference.push_back(index.Query(q.s, q.t, q.constraint) ? 1 : 0);
    }
    const uint64_t positives = static_cast<uint64_t>(
        std::count(reference.begin(), reference.end(), uint8_t{1}));
    std::printf("-- mix %-10s: %zu probes, %llu true\n", mix.name.c_str(),
                mix.probes.size(), static_cast<unsigned long long>(positives));

    QueryBatch batch;
    for (const RlcQuery& q : mix.probes) batch.Add(q.s, q.t, q.constraint);
    std::vector<MrId> mr_of(batch.num_sequences());
    for (uint32_t i = 0; i < batch.num_sequences(); ++i) {
      mr_of[i] = index.FindMr(batch.sequence(i));
    }
    const std::vector<BatchProbe>& probes = batch.probes();

    auto report = [&](const std::string& mode, bool signatures,
                      uint32_t threads, double seconds,
                      const std::vector<uint8_t>& answers) {
      const bool agree = answers == reference;
      all_agree = all_agree && agree;
      const double ns = seconds * 1e9 / static_cast<double>(probes.size());
      std::printf("   %-16s sig=%-3s threads=%u: %8.1f ns/probe %7.2f Mq/s "
                  "answers %s\n",
                  mode.c_str(), signatures ? "on" : "off", threads, ns,
                  static_cast<double>(probes.size()) / seconds / 1e6,
                  agree ? "ok" : "MISMATCH");
      json.AddRecord()
          .Set("mix", mix.name)
          .Set("mode", mode)
          .Set("signatures", signatures)
          .Set("threads", threads)
          .Set("probes", static_cast<uint64_t>(probes.size()))
          .Set("true_share",
               static_cast<double>(positives) /
                   static_cast<double>(probes.size()))
          .Set("ns_per_probe", ns)
          .Set("agree", agree);
      return ns;
    };

    std::vector<uint8_t> answers(probes.size());
    AnswerBatch ab;
    for (const bool signatures : {false, true}) {
      index.set_use_signatures(signatures);
      double secs = BestSeconds(iters, [&] {
        for (size_t i = 0; i < probes.size(); ++i) {
          answers[i] = index.QueryInterned(probes[i].s, probes[i].t,
                                           mr_of[probes[i].seq_id])
                           ? 1
                           : 0;
        }
      });
      report("scalar_interned", signatures, 1, secs, answers);

      secs = BestSeconds(iters, [&] { ab = ExecuteBatch(index, batch); });
      const double ns = report("batched", signatures, 1, secs, ab.answers);
      if (mix.name == "negative90") {
        (signatures ? negative_sig_on_ns : negative_sig_off_ns) = ns;
      }
    }

    // Thread sweep (signatures stay on): per-run pool so pool spin-up is
    // not in the timed region — the service keeps its pool alive the same
    // way.
    for (const uint32_t threads : thread_counts) {
      if (threads <= 1) continue;
      ThreadPool pool(threads);
      ExecuteOptions opts;
      opts.pool = &pool;
      const double secs =
          BestSeconds(iters, [&] { ab = ExecuteBatch(index, batch, opts); });
      report("batched", true, threads, secs, ab.answers);
    }
  }
  index.set_use_signatures(true);

  // --- raw intersection kernels across length ratios ---
  struct Ratio {
    size_t small;
    size_t large;
  };
  const std::vector<Ratio> ratios = {
      {4096, 4096}, {1024, 4096}, {256, 16384}, {64, 65536}, {8, 80000}};
  Rng krng(23);
  for (const Ratio& r : ratios) {
    // Disjoint arrays (odd vs even values) spanning the same value range:
    // the existence check must keep going until one side is exhausted,
    // which is the kernels' worst case and the common case for negative
    // probes that get past the signatures. Equal ranges (spread scaled by
    // the ratio) keep the skewed cases honest — the short array's elements
    // spread across the whole long array instead of its prefix.
    const uint32_t spread_a =
        static_cast<uint32_t>(std::max<size_t>(1, r.large * 8 / r.small));
    std::vector<uint32_t> a = SortedUnique(r.small, spread_a, krng);
    std::vector<uint32_t> b = SortedUnique(r.large, 8, krng);
    for (auto& x : a) x = x * 2 + 1;
    for (auto& x : b) x *= 2;
    const int reps = 2000;
    volatile bool sink = false;
    const double hybrid = BestSeconds(iters, [&] {
      for (int i = 0; i < reps; ++i) {
        sink = simd::HasCommonElement(a.data(), a.size(), b.data(), b.size());
      }
    });
    std::vector<uint32_t> scratch;
    const double stdlib = BestSeconds(iters, [&] {
      for (int i = 0; i < reps; ++i) {
        scratch.clear();
        std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                              std::back_inserter(scratch));
        sink = !scratch.empty();
      }
    });
    const double hybrid_ns = hybrid * 1e9 / reps;
    const double stdlib_ns = stdlib * 1e9 / reps;
    std::printf("kernel %5zu:%-6zu hybrid %9.1f ns  std::set_intersection "
                "%9.1f ns  (%.2fx)\n",
                r.small, r.large, hybrid_ns, stdlib_ns, stdlib_ns / hybrid_ns);
    json.AddRecord()
        .Set("mix", "kernel_disjoint")
        .Set("small", static_cast<uint64_t>(r.small))
        .Set("large", static_cast<uint64_t>(r.large))
        .Set("hybrid_ns", hybrid_ns)
        .Set("set_intersection_ns", stdlib_ns)
        .Set("speedup", stdlib_ns / hybrid_ns);
  }

  // --- metrics overhead on the refute-heavy hot path ---
  // The batched negative90 run is the kernel the observability budget is
  // written against: per-probe work is tens of nanoseconds, so any clock
  // read or shared-counter bounce inside the probe loop would show up
  // immediately. Budget: metrics-on within 3% ns/probe of metrics-off.
  {
    const Mix& mix = mixes.front();  // negative90
    QueryBatch batch;
    for (const RlcQuery& q : mix.probes) batch.Add(q.s, q.t, q.constraint);
    AnswerBatch ab;
    const bool was_enabled = obs::Enabled();
    // Interleave the two modes so frequency/noise drift lands on both
    // equally; best-of per mode rejects the slow outliers.
    double off_secs = 1e300;
    double on_secs = 1e300;
    for (int i = 0; i < std::max(iters, 3); ++i) {
      for (const bool on : {false, true}) {
        obs::SetEnabled(on);
        Timer t;
        ab = ExecuteBatch(index, batch);
        (on ? on_secs : off_secs) =
            std::min(on ? on_secs : off_secs, t.ElapsedSeconds());
      }
    }
    obs::SetEnabled(was_enabled);
    const double off_ns =
        off_secs * 1e9 / static_cast<double>(mix.probes.size());
    const double on_ns = on_secs * 1e9 / static_cast<double>(mix.probes.size());
    std::printf("metrics overhead (negative90 batched): off %.1f ns/probe, "
                "on %.1f ns/probe (%.2f%%)\n",
                off_ns, on_ns, (on_ns / off_ns - 1.0) * 100.0);
    json.AddRecord()
        .Set("record", "metrics_overhead")
        .Set("mix", mix.name)
        .Set("ns_per_probe_metrics_off", off_ns)
        .Set("ns_per_probe_metrics_on", on_ns)
        .Set("overhead_ratio", on_ns / off_ns);
  }

  const double signature_speedup = negative_sig_off_ns / negative_sig_on_ns;
  std::printf("signature speedup on negative90 (batched, 1 thread): %.2fx\n",
              signature_speedup);
  json.AddRecord()
      .Set("mix", "summary")
      .Set("signature_speedup_negative90", signature_speedup)
      .Set("all_agree", all_agree);

  if (!all_agree) {
    std::fprintf(stderr, "FAIL: modes disagree\n");
    return 1;
  }
  return 0;
}
