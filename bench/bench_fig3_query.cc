// Fig. 3 — execution time of 1000 true-queries and 1000 false-queries per
// dataset for BFS, BiBFS, ETC and the RLC index (k = 2, 2-label recursive
// concatenations).
//
// Expected shape (paper): the RLC index answers a 1000-query set in ~1ms,
// BFS/BiBFS take orders of magnitude longer and time out on the biggest
// graphs; ETC (where buildable) is close to the RLC index.

#include "bench_common.h"
#include "rlc/baselines/etc_index.h"

int main() {
  using namespace rlc;
  using namespace rlc::bench;

  const uint32_t queries = QueriesPerSet();
  double budget_seconds = 30.0;
  if (const char* env = std::getenv("RLC_BASELINE_BUDGET_S")) {
    budget_seconds = std::strtod(env, nullptr);
  }
  uint64_t etc_max_edges = 10'000;
  if (const char* env = std::getenv("RLC_ETC_MAX_EDGES")) {
    etc_max_edges = std::strtoull(env, nullptr, 10);
  }

  std::printf(
      "== Fig. 3: total execution time (us) of %u true / %u false queries "
      "(k=2) ==\n",
      queries, queries);
  Table table({"Dataset", "Set", "BFS (us)", "BiBFS (us)", "ETC (us)",
               "RLC (us)", "BiBFS/RLC"});

  for (const DatasetSpec& spec : SelectedDatasets()) {
    const DiGraph g = GetDataset(spec, EffectiveScale(spec, 0.01), /*seed=*/3);

    WorkloadOptions wopts;
    wopts.count = queries;
    wopts.constraint_length = 2;
    wopts.seed = 1000 + g.num_vertices();
    // Guard against degenerate surrogates where one class is too rare.
    wopts.max_attempts = 200'000;
    wopts.fill_true_with_walks = true;
    const Workload w = GenerateWorkload(g, wopts);

    const RlcIndex index = BuildRlcIndex(g, 2);
    const bool build_etc = g.num_edges() <= etc_max_edges;
    EtcIndex etc = build_etc ? EtcIndex::Build(g, 2) : EtcIndex::Build(DiGraph(), 2);

    for (const bool true_set : {true, false}) {
      const auto& set = true_set ? w.true_queries : w.false_queries;
      if (set.empty()) continue;
      const double bfs = TimeOnlineQueries(g, set, Traversal::kBfs, budget_seconds);
      const double bibfs =
          TimeOnlineQueries(g, set, Traversal::kBiBfs, budget_seconds);
      const double rlc = TimeRlcQueries(index, set);
      std::string etc_cell = "-";
      if (build_etc) {
        Timer t;
        uint64_t hits = 0;
        for (const RlcQuery& q : set) hits += etc.Query(q.s, q.t, q.constraint);
        etc_cell = Fmt("%.0f", t.ElapsedMicros());
        if (hits == UINT64_MAX) std::printf("impossible\n");
      }
      table.AddRow({spec.name, true_set ? "true" : "false", TimeCell(bfs),
                    TimeCell(bibfs), etc_cell, Fmt("%.0f", rlc),
                    bibfs < 0 ? ">" + Fmt("%.0fx", budget_seconds * 1e6 / rlc)
                              : Fmt("%.0fx", bibfs / rlc)});
    }
  }
  table.Print();
  return 0;
}
