// Structural validation of the reconstructed Fig. 1 and Fig. 2 graphs
// against every machine-checkable claim the paper makes about them.

#include "rlc/graph/paper_graphs.h"

#include <gtest/gtest.h>

#include "rlc/automaton/path_constraint.h"
#include "rlc/baselines/online_search.h"
#include "rlc/core/indexer.h"

namespace rlc {
namespace {

TEST(Fig1GraphTest, Cardinalities) {
  const DiGraph g = BuildFig1Graph();
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.num_edges(), 14u);
  EXPECT_EQ(g.num_labels(), 5u);
}

TEST(Fig1GraphTest, LabelMultiset) {
  const DiGraph g = BuildFig1Graph();
  std::vector<uint64_t> counts(g.num_labels(), 0);
  for (const Edge& e : g.ToEdgeList()) ++counts[e.label];
  EXPECT_EQ(counts[*g.FindLabel("knows")], 6u);
  EXPECT_EQ(counts[*g.FindLabel("worksFor")], 2u);
  EXPECT_EQ(counts[*g.FindLabel("holds")], 2u);
  EXPECT_EQ(counts[*g.FindLabel("debits")], 2u);
  EXPECT_EQ(counts[*g.FindLabel("credits")], 2u);
}

TEST(Fig1GraphTest, Example1Path) {
  // (A14, debits, E15, credits, A17, debits, E18, credits, A19)
  const DiGraph g = BuildFig1Graph();
  auto V = [&](const char* n) { return *g.FindVertex(n); };
  auto L = [&](const char* n) { return *g.FindLabel(n); };
  EXPECT_TRUE(g.HasEdge(V("A14"), V("E15"), L("debits")));
  EXPECT_TRUE(g.HasEdge(V("E15"), V("A17"), L("credits")));
  EXPECT_TRUE(g.HasEdge(V("A17"), V("E18"), L("debits")));
  EXPECT_TRUE(g.HasEdge(V("E18"), V("A19"), L("credits")));
}

TEST(Fig1GraphTest, SectionIIIPathsFromP10ToP16) {
  // "two paths from P10 to P16 having the label sequence (knows, knows,
  //  knows, knows) and (knows, knows, knows)".
  const DiGraph g = BuildFig1Graph();
  OnlineSearcher searcher(g);
  auto V = [&](const char* n) { return *g.FindVertex(n); };
  const Label k = *g.FindLabel("knows");
  // Fixed (non-recursive) concatenations of 3 and 4 knows:
  EXPECT_TRUE(searcher.QueryBfsOnce(
      V("P10"), V("P16"), PathConstraint::Fixed(LabelSeq{k, k, k})));
  EXPECT_TRUE(searcher.QueryBfsOnce(
      V("P10"), V("P16"), PathConstraint::Fixed(LabelSeq{k, k, k, k})));
}

TEST(Fig1GraphTest, Example2DepthFourSequencesFromP11) {
  // The four depth-4 sequences from P11 ending at P12: L1=(k,k,k,k),
  // L2=(k,k,k,w), L3=(w,k,k,k), L4=(w,k,k,w). Exactly these 4 length-4
  // walks from P11 land on P12.
  const DiGraph g = BuildFig1Graph();
  OnlineSearcher searcher(g);
  auto V = [&](const char* n) { return *g.FindVertex(n); };
  const Label k = *g.FindLabel("knows");
  const Label w = *g.FindLabel("worksFor");

  int hits = 0;
  for (Label a : {k, w}) {
    for (Label b : {k, w}) {
      for (Label c : {k, w}) {
        for (Label d : {k, w}) {
          const bool reaches = searcher.QueryBfsOnce(
              V("P11"), V("P12"), PathConstraint::Fixed(LabelSeq{a, b, c, d}));
          const bool expected = (b == k && c == k) && (a == k || a == w) &&
                                (d == k || d == w);
          // L1..L4 all have shape (?,k,k,?) per the example.
          EXPECT_EQ(reaches, expected)
              << "(" << a << " " << b << " " << c << " " << d << ")";
          hits += reaches;
        }
      }
    }
  }
  EXPECT_EQ(hits, 4);
}

TEST(Fig1GraphTest, InfinitePathsP11ToP13) {
  // |P(P11,P13)| is infinite: there must be a cycle on some P11->P13 path.
  // The P11 -> P12 -> P13 -> P11 knows-cycle provides it.
  const DiGraph g = BuildFig1Graph();
  auto V = [&](const char* n) { return *g.FindVertex(n); };
  const Label k = *g.FindLabel("knows");
  EXPECT_TRUE(g.HasEdge(V("P11"), V("P12"), k));
  EXPECT_TRUE(g.HasEdge(V("P12"), V("P13"), k));
  EXPECT_TRUE(g.HasEdge(V("P13"), V("P11"), k));
}

TEST(Fig2GraphTest, Cardinalities) {
  const DiGraph g = BuildFig2Graph();
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.num_edges(), 11u);
  EXPECT_EQ(g.num_labels(), 3u);
}

TEST(Fig2GraphTest, LabelMultisetMatchesFigure) {
  // Fig. 2 shows labels l1 x6, l2 x4, l3 x1.
  const DiGraph g = BuildFig2Graph();
  std::vector<uint64_t> counts(g.num_labels(), 0);
  for (const Edge& e : g.ToEdgeList()) ++counts[e.label];
  EXPECT_EQ(counts[*g.FindLabel("l1")], 6u);
  EXPECT_EQ(counts[*g.FindLabel("l2")], 4u);
  EXPECT_EQ(counts[*g.FindLabel("l3")], 1u);
}

TEST(Fig2GraphTest, Example4WitnessPath) {
  // (v3, l2, v4, l1, v1, l2, v3, l1, v6)
  const DiGraph g = BuildFig2Graph();
  auto V = [&](const char* n) { return *g.FindVertex(n); };
  auto L = [&](const char* n) { return *g.FindLabel(n); };
  EXPECT_TRUE(g.HasEdge(V("v3"), V("v4"), L("l2")));
  EXPECT_TRUE(g.HasEdge(V("v4"), V("v1"), L("l1")));
  EXPECT_TRUE(g.HasEdge(V("v1"), V("v3"), L("l2")));
  EXPECT_TRUE(g.HasEdge(V("v3"), V("v6"), L("l1")));
}

TEST(Fig2GraphTest, Example6PruningWitnessPaths) {
  const DiGraph g = BuildFig2Graph();
  auto V = [&](const char* n) { return *g.FindVertex(n); };
  auto L = [&](const char* n) { return *g.FindLabel(n); };
  // PR2 example path (v1, l2, v3, l1, v2).
  EXPECT_TRUE(g.HasEdge(V("v1"), V("v3"), L("l2")));
  EXPECT_TRUE(g.HasEdge(V("v3"), V("v2"), L("l1")));
  // PR3 example path (v2, l2, v5, l1, v1, l2, v3, l1, v2).
  EXPECT_TRUE(g.HasEdge(V("v2"), V("v5"), L("l2")));
  EXPECT_TRUE(g.HasEdge(V("v5"), V("v1"), L("l1")));
}

TEST(Fig2GraphTest, ParallelEdgesPresent) {
  // v2 -l1-> v5 and v2 -l2-> v5 (needed for (v1,l1) and (v1,(l2,l1)) in
  // Lout(v2)).
  const DiGraph g = BuildFig2Graph();
  auto V = [&](const char* n) { return *g.FindVertex(n); };
  EXPECT_TRUE(g.HasEdge(V("v2"), V("v5"), *g.FindLabel("l1")));
  EXPECT_TRUE(g.HasEdge(V("v2"), V("v5"), *g.FindLabel("l2")));
}

}  // namespace
}  // namespace rlc
