// Load-path robustness fuzz: every byte flip, truncation or garbage prefix
// applied to a valid index file of any supported format version (v1–v5)
// must either load successfully (the mutation missed everything that
// matters, e.g. padding it doesn't have — in practice: almost never) or
// throw a clean std::exception naming the source. Never UB, never a crash,
// never an abort — the property the hardened ReadIndex section/bounds
// checks exist for, enforced under ASan/UBSan by the sanitizer CI jobs.
//
// Tests named *Sweep* are registered as a separate slow-labeled ctest
// entry (nightly); the rest keep the per-PR suite fast.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "rlc/core/dynamic_index.h"
#include "rlc/core/index_io.h"
#include "rlc/core/indexer.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/util/rng.h"

namespace rlc {
namespace {

DiGraph TestGraph(uint64_t seed) {
  Rng rng(seed);
  auto edges = ErdosRenyiEdges(36, 110, rng);
  AssignZipfLabels(&edges, 3, 2.0, rng);
  return DiGraph(36, std::move(edges), 3);
}

RlcIndex BuildSealed(const DiGraph& g, uint32_t k = 2) {
  IndexerOptions options;
  options.k = k;
  RlcIndexBuilder builder(g, options);
  return builder.Build();
}

/// Valid serialized images of every format version: v1–v3 from a clean
/// sealed index (those versions refuse overlays), v4 with live delta
/// entries, v5 with deltas and tombstones, so every section kind is in the
/// fuzzed bytes.
std::vector<std::pair<uint32_t, std::string>> AllVersionImages(uint64_t seed) {
  const DiGraph g = TestGraph(seed);
  std::vector<std::pair<uint32_t, std::string>> images;
  const RlcIndex sealed = BuildSealed(g);
  for (uint32_t version = 1; version <= 3; ++version) {
    std::ostringstream os(std::ios::binary);
    WriteIndex(sealed, os, version);
    images.emplace_back(version, std::move(os).str());
  }

  DynamicRlcIndex dyn(g, BuildSealed(g), ResealPolicy{.max_delta_ratio = 1e9});
  Rng rng(seed ^ 0x5A5A);
  for (int i = 0; i < 8; ++i) {  // populate the delta overlay
    for (;;) {
      const auto u = static_cast<VertexId>(rng.Below(g.num_vertices()));
      const auto v = static_cast<VertexId>(rng.Below(g.num_vertices()));
      const auto l = static_cast<Label>(rng.Below(g.num_labels()));
      if (!dyn.HasEdge(u, l, v)) {
        dyn.InsertEdge(u, l, v);
        break;
      }
    }
  }
  {
    std::ostringstream os(std::ios::binary);
    WriteIndex(dyn.index(), os, 4);
    images.emplace_back(4, std::move(os).str());
  }
  // Delete base-graph edges (not the fresh delta inserts, whose deletion
  // would just cancel) so the v5 image carries real tombstone sections.
  const std::vector<Edge> base = g.ToEdgeList();
  dyn.DeleteEdge(base[0].src, base[0].label, base[0].dst);
  dyn.DeleteEdge(base[1].src, base[1].label, base[1].dst);
  {
    std::ostringstream os(std::ios::binary);
    WriteIndex(dyn.index(), os, kIndexFormatVersion);
    images.emplace_back(kIndexFormatVersion, std::move(os).str());
  }
  return images;
}

/// Loads mutated bytes: success and clean std::exception are both fine;
/// anything else (UB, abort) is caught by the sanitizers / the harness.
void TryLoad(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  try {
    const RlcIndex loaded = ReadIndex(in, "fuzzed");
    // A survivor must at least be internally consistent enough to answer.
    (void)loaded.NumEntries();
  } catch (const std::exception&) {
    // Clean rejection.
  }
}

void RunByteFlipFuzz(int flips_per_version, uint64_t seed) {
  for (const auto& [version, bytes] : AllVersionImages(seed)) {
    SCOPED_TRACE("version " + std::to_string(version));
    Rng rng(seed + version);
    for (int trial = 0; trial < flips_per_version; ++trial) {
      std::string mutated = bytes;
      const size_t offset = rng.Below(mutated.size());
      mutated[offset] =
          static_cast<char>(mutated[offset] ^ (1u << rng.Below(8)));
      TryLoad(mutated);
    }
    // Multi-byte corruption: whole random words, not just single bits —
    // exercises the count/offset bounds checks with large bogus values.
    for (int trial = 0; trial < flips_per_version / 2; ++trial) {
      std::string mutated = bytes;
      const size_t offset = rng.Below(mutated.size());
      for (size_t i = offset; i < mutated.size() && i < offset + 8; ++i) {
        mutated[i] = static_cast<char>(rng.Below(256));
      }
      TryLoad(mutated);
    }
  }
}

void RunTruncationFuzz(int cuts_per_version, uint64_t seed) {
  for (const auto& [version, bytes] : AllVersionImages(seed)) {
    SCOPED_TRACE("version " + std::to_string(version));
    Rng rng(seed * 31 + version);
    // Every short prefix length near the front (headers/counts), then
    // random cuts across the file.
    for (size_t cut = 0; cut < 64 && cut < bytes.size(); ++cut) {
      TryLoad(bytes.substr(0, cut));
    }
    for (int trial = 0; trial < cuts_per_version; ++trial) {
      TryLoad(bytes.substr(0, rng.Below(bytes.size())));
    }
  }
}

TEST(LoadFuzzTest, ByteFlipsEveryVersion) { RunByteFlipFuzz(120, 0x10AD); }

TEST(LoadFuzzTest, TruncationsEveryVersion) { RunTruncationFuzz(60, 0x70AD); }

TEST(LoadFuzzTest, GarbageAndEmptyInputs) {
  TryLoad("");
  TryLoad(std::string(1, '\0'));
  TryLoad("not an index file at all");
  Rng rng(0xBAD);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage(rng.Below(512), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.Below(256));
    TryLoad(garbage);
  }
  // Valid magic + bogus everything after it.
  const auto images = AllVersionImages(0x600D);
  for (int trial = 0; trial < 100; ++trial) {
    std::string mutated = images.back().second.substr(0, 16);
    mutated.resize(16 + rng.Below(256));
    for (size_t i = 12; i < mutated.size(); ++i) {
      mutated[i] = static_cast<char>(rng.Below(256));
    }
    TryLoad(mutated);
  }
}

TEST(LoadFuzzTest, SweepDeepByteFlips) { RunByteFlipFuzz(1200, 0xDEEF); }

TEST(LoadFuzzTest, SweepDeepTruncations) { RunTruncationFuzz(600, 0xCAFE); }

}  // namespace
}  // namespace rlc
