// Tests for graph statistics (Table III columns).

#include "rlc/graph/stats.h"

#include <gtest/gtest.h>

#include "rlc/graph/generators.h"
#include "rlc/util/rng.h"

namespace rlc {
namespace {

TEST(StatsTest, SelfLoops) {
  const DiGraph g(3, {{0, 0, 0}, {1, 2, 0}, {2, 2, 1}, {2, 2, 0}}, 2,
                  /*dedup_parallel=*/false);
  EXPECT_EQ(CountSelfLoops(g), 3u);
}

TEST(StatsTest, TriangleDirectedCycle) {
  // A directed 3-cycle is one undirected triangle.
  const DiGraph g(3, {{0, 1, 0}, {1, 2, 0}, {2, 0, 0}});
  EXPECT_EQ(CountTriangles(g), 1u);
}

TEST(StatsTest, TriangleIgnoresDirectionAndMultiplicity) {
  // All edges pointing "inward", plus parallel edges: still one triangle.
  const DiGraph g(3, {{1, 0, 0}, {2, 1, 0}, {0, 2, 0}, {0, 2, 1}}, 2,
                  /*dedup_parallel=*/false);
  EXPECT_EQ(CountTriangles(g), 1u);
}

TEST(StatsTest, TriangleSelfLoopsIgnored) {
  const DiGraph g(3, {{0, 1, 0}, {1, 2, 0}, {2, 0, 0}, {0, 0, 0}});
  EXPECT_EQ(CountTriangles(g), 1u);
}

TEST(StatsTest, CompleteGraphTriangles) {
  // K5 (directed both ways) has C(5,3) = 10 undirected triangles.
  std::vector<Edge> edges;
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = 0; v < 5; ++v) {
      if (u != v) edges.push_back({u, v, 0});
    }
  }
  const DiGraph g(5, std::move(edges));
  EXPECT_EQ(CountTriangles(g), 10u);
}

TEST(StatsTest, PathHasNoTriangles) {
  const DiGraph g(4, {{0, 1, 0}, {1, 2, 0}, {2, 3, 0}});
  EXPECT_EQ(CountTriangles(g), 0u);
}

// Brute-force cross-check on random graphs.
TEST(StatsTest, TrianglesMatchBruteForce) {
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const auto edges = ErdosRenyiEdges(20, 60, rng);
    const DiGraph g(20, edges);
    // Brute force on the undirected simple graph.
    bool adj[20][20] = {};
    for (const Edge& e : edges) {
      adj[e.src][e.dst] = adj[e.dst][e.src] = true;
    }
    uint64_t expected = 0;
    for (int a = 0; a < 20; ++a) {
      for (int b = a + 1; b < 20; ++b) {
        for (int c = b + 1; c < 20; ++c) {
          expected += (adj[a][b] && adj[b][c] && adj[a][c]);
        }
      }
    }
    EXPECT_EQ(CountTriangles(g), expected) << "trial " << trial;
  }
}

TEST(StatsTest, ComputeStatsAggregates) {
  const DiGraph g(4, {{0, 1, 0}, {1, 2, 1}, {2, 0, 0}, {3, 3, 2}}, 3);
  const GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_vertices, 4u);
  EXPECT_EQ(s.num_edges, 4u);
  EXPECT_EQ(s.num_labels, 3u);
  EXPECT_EQ(s.loop_count, 1u);
  EXPECT_EQ(s.triangle_count, 1u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 1.0);
  EXPECT_EQ(s.max_out_degree, 1u);
  EXPECT_EQ(s.max_in_degree, 1u);

  const GraphStats fast = ComputeStats(g, /*with_triangles=*/false);
  EXPECT_EQ(fast.triangle_count, 0u);
}

TEST(StatsTest, EmptyGraph) {
  const GraphStats s = ComputeStats(DiGraph());
  EXPECT_EQ(s.num_vertices, 0u);
  EXPECT_EQ(s.triangle_count, 0u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 0.0);
}

}  // namespace
}  // namespace rlc
