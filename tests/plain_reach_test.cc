// Tests for the plain 2-hop reachability index and its use as an RLC
// prefilter.

#include "rlc/plain/plain_reach_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "rlc/core/indexer.h"
#include "rlc/engines/rlc_hybrid_engine.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/graph/paper_graphs.h"
#include "rlc/util/rng.h"

namespace rlc {
namespace {

// Plain-reachability oracle: label-oblivious BFS.
bool BfsReachable(const DiGraph& g, VertexId s, VertexId t) {
  if (s == t) return true;
  std::vector<bool> visited(g.num_vertices(), false);
  std::vector<VertexId> queue{s};
  visited[s] = true;
  for (size_t head = 0; head < queue.size(); ++head) {
    for (const LabeledNeighbor& nb : g.OutEdges(queue[head])) {
      if (visited[nb.v]) continue;
      if (nb.v == t) return true;
      visited[nb.v] = true;
      queue.push_back(nb.v);
    }
  }
  return false;
}

TEST(PlainReachTest, Fig2AllPairs) {
  const DiGraph g = BuildFig2Graph();
  const PlainReachIndex index = PlainReachIndex::Build(g);
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    for (VertexId t = 0; t < g.num_vertices(); ++t) {
      EXPECT_EQ(index.Reachable(s, t), BfsReachable(g, s, t))
          << "s=" << s << " t=" << t;
    }
  }
}

class PlainReachSweepTest
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(PlainReachSweepTest, AgreesWithBfsOracle) {
  const auto [seed, ba] = GetParam();
  Rng rng(300 + seed);
  auto edges = ba ? BarabasiAlbertEdges(120, 3, rng)
                  : ErdosRenyiEdges(120, 360, rng);
  AssignZipfLabels(&edges, 3, 2.0, rng);
  const DiGraph g(120, std::move(edges), 3);

  PlainReachStats stats;
  const PlainReachIndex index = PlainReachIndex::Build(g, &stats);
  EXPECT_GT(stats.entries, 0u);
  EXPECT_GE(stats.build_seconds, 0.0);

  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    for (VertexId t = 0; t < g.num_vertices(); ++t) {
      ASSERT_EQ(index.Reachable(s, t), BfsReachable(g, s, t))
          << "seed=" << seed << " ba=" << ba << " s=" << s << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PlainReachSweepTest,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Bool()));

TEST(PlainReachTest, HubListsAreSorted) {
  Rng rng(9);
  auto edges = ErdosRenyiEdges(80, 240, rng);
  const DiGraph g(80, std::move(edges), 1);
  const PlainReachIndex index = PlainReachIndex::Build(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_TRUE(std::is_sorted(index.Lout(v).begin(), index.Lout(v).end()));
    EXPECT_TRUE(std::is_sorted(index.Lin(v).begin(), index.Lin(v).end()));
  }
}

TEST(PlainReachTest, PruningKeepsIndexSmallerThanClosure) {
  // On a strongly-connected-ish dense graph the pruned index must stay far
  // below the |V|^2 transitive closure.
  Rng rng(11);
  auto edges = ErdosRenyiEdges(200, 2000, rng);
  const DiGraph g(200, std::move(edges), 1);
  PlainReachStats stats;
  const PlainReachIndex index = PlainReachIndex::Build(g, &stats);
  EXPECT_GT(stats.pruned, 0u);
  EXPECT_LT(index.NumEntries(), 200ull * 200ull / 4);
  EXPECT_GT(index.MemoryBytes(), 0u);
}

TEST(PlainReachTest, EdgeCases) {
  const PlainReachIndex empty = PlainReachIndex::Build(DiGraph());
  EXPECT_EQ(empty.NumEntries(), 0u);

  const DiGraph single(1, {});
  const PlainReachIndex one = PlainReachIndex::Build(single);
  EXPECT_TRUE(one.Reachable(0, 0));  // s == t is trivially reachable
  EXPECT_THROW(one.Reachable(0, 5), std::invalid_argument);

  const DiGraph two(2, {{0, 1, 0}});
  const PlainReachIndex idx = PlainReachIndex::Build(two);
  EXPECT_TRUE(idx.Reachable(0, 1));
  EXPECT_FALSE(idx.Reachable(1, 0));
}

TEST(PlainReachTest, PrefilterPreservesEngineAnswers) {
  Rng rng(21);
  auto edges = ErdosRenyiEdges(100, 300, rng);
  AssignZipfLabels(&edges, 3, 2.0, rng);
  const DiGraph g(100, std::move(edges), 3);

  const RlcIndex index = BuildRlcIndex(g, 2);
  const PlainReachIndex plain = PlainReachIndex::Build(g);
  RlcHybridEngine bare(g, index);
  RlcHybridEngine filtered(g, index, &plain);

  for (int trial = 0; trial < 400; ++trial) {
    const auto s = static_cast<VertexId>(rng.Below(100));
    const auto t = static_cast<VertexId>(rng.Below(100));
    const Label a = static_cast<Label>(rng.Below(3));
    const Label b = static_cast<Label>(rng.Below(3));
    const auto c = PathConstraint::RlcPlus(a == b ? LabelSeq{a} : LabelSeq{a, b});
    ASSERT_EQ(bare.Evaluate(s, t, c), filtered.Evaluate(s, t, c))
        << "s=" << s << " t=" << t;
  }
}

}  // namespace
}  // namespace rlc
