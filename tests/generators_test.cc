// Tests for the ER/BA generators and label assignment.

#include "rlc/graph/generators.h"

#include <gtest/gtest.h>

#include <set>

#include "rlc/graph/digraph.h"
#include "rlc/graph/label_assign.h"

namespace rlc {
namespace {

TEST(ErdosRenyiTest, ExactEdgeCountNoLoopsNoDup) {
  Rng rng(1);
  const auto edges = ErdosRenyiEdges(50, 300, rng);
  EXPECT_EQ(edges.size(), 300u);
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const Edge& e : edges) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_LT(e.src, 50u);
    EXPECT_LT(e.dst, 50u);
    EXPECT_TRUE(seen.insert({e.src, e.dst}).second) << "duplicate pair";
  }
}

TEST(ErdosRenyiTest, RejectsImpossibleDensity) {
  Rng rng(1);
  EXPECT_THROW(ErdosRenyiEdges(3, 7, rng), std::invalid_argument);
  // Exactly n*(n-1) is the complete digraph and must succeed.
  EXPECT_EQ(ErdosRenyiEdges(3, 6, rng).size(), 6u);
}

TEST(ErdosRenyiTest, DeterministicInSeed) {
  Rng a(9), b(9), c(10), d(9);
  EXPECT_EQ(ErdosRenyiEdges(40, 100, a), ErdosRenyiEdges(40, 100, b));
  EXPECT_NE(ErdosRenyiEdges(40, 100, d), ErdosRenyiEdges(40, 100, c));
}

TEST(BarabasiAlbertTest, SeedCliqueAndAttachment) {
  Rng rng(3);
  const uint32_t m = 3;
  const VertexId n = 100;
  const auto edges = BarabasiAlbertEdges(n, m, rng);
  // Complete directed seed on m+1 vertices, then m edges per new vertex.
  const uint64_t expected = (m + 1) * m + (n - (m + 1)) * m;
  EXPECT_EQ(edges.size(), expected);
  // Seed is complete: every ordered pair among {0..m}.
  const DiGraph g(n, edges, 1, /*dedup_parallel=*/false);
  for (VertexId u = 0; u <= m; ++u) {
    for (VertexId v = 0; v <= m; ++v) {
      if (u != v) {
        EXPECT_TRUE(g.HasEdge(u, v, 0));
      }
    }
  }
  // Every non-seed vertex has out-degree exactly m.
  for (VertexId v = m + 1; v < n; ++v) {
    EXPECT_EQ(g.OutDegree(v), m);
  }
}

TEST(BarabasiAlbertTest, DegreeSkewExceedsErdosRenyi) {
  // The BA hubs should dominate: max total degree far above the average.
  Rng rng(5);
  const auto edges = BarabasiAlbertEdges(2000, 3, rng);
  const DiGraph g(2000, edges, 1, false);
  uint64_t max_deg = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_deg = std::max(max_deg, g.OutDegree(v) + g.InDegree(v));
  }
  const double avg = 2.0 * static_cast<double>(g.num_edges()) / g.num_vertices();
  EXPECT_GT(static_cast<double>(max_deg), 10.0 * avg);
}

TEST(BarabasiAlbertTest, RejectsBadParams) {
  Rng rng(1);
  EXPECT_THROW(BarabasiAlbertEdges(3, 3, rng), std::invalid_argument);
  EXPECT_THROW(BarabasiAlbertEdges(10, 0, rng), std::invalid_argument);
}

TEST(SelfLoopTest, AddsDistinctLoops) {
  Rng rng(1);
  std::vector<Edge> edges;
  AddRandomSelfLoops(&edges, 20, 5, rng);
  EXPECT_EQ(edges.size(), 5u);
  std::set<VertexId> vs;
  for (const Edge& e : edges) {
    EXPECT_EQ(e.src, e.dst);
    EXPECT_TRUE(vs.insert(e.src).second);
  }
  EXPECT_THROW(AddRandomSelfLoops(&edges, 3, 4, rng), std::invalid_argument);
}

TEST(LabelAssignTest, ZipfIsSkewedTowardLabelZero) {
  Rng rng(2);
  std::vector<Edge> edges(20000, Edge{0, 1, 99});
  AssignZipfLabels(&edges, 8, 2.0, rng);
  std::vector<uint64_t> counts(8, 0);
  for (const Edge& e : edges) {
    ASSERT_LT(e.label, 8u);
    ++counts[e.label];
  }
  // Zipf(2): P(0) ~ 0.66 of the mass over 8 labels; allow slack.
  EXPECT_GT(counts[0], edges.size() / 2);
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[3]);
}

TEST(LabelAssignTest, UniformCoversAlphabet) {
  Rng rng(2);
  std::vector<Edge> edges(5000, Edge{0, 1, 0});
  AssignUniformLabels(&edges, 4, rng);
  std::vector<uint64_t> counts(4, 0);
  for (const Edge& e : edges) ++counts[e.label];
  for (uint64_t c : counts) {
    EXPECT_GT(c, edges.size() / 8);  // each within 2x of fair share
    EXPECT_LT(c, edges.size() / 2);
  }
}

TEST(LabelAssignTest, RejectsEmptyAlphabet) {
  Rng rng(1);
  std::vector<Edge> edges = {{0, 1, 0}};
  EXPECT_THROW(AssignZipfLabels(&edges, 0, 2.0, rng), std::invalid_argument);
  EXPECT_THROW(AssignUniformLabels(&edges, 0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace rlc
