// Tests for alternation (LCR-style) constraints — the §II counterpart class
// the paper contrasts RLC queries with. Covers parsing, NFA semantics, the
// fundamental LCR ≠ RLC separation, and engine agreement.

#include <gtest/gtest.h>

#include "rlc/automaton/nfa.h"
#include "rlc/automaton/path_constraint.h"
#include "rlc/baselines/online_search.h"
#include "rlc/engines/frontier_engine.h"
#include "rlc/engines/recursive_join_engine.h"
#include "rlc/engines/rlc_hybrid_engine.h"
#include "rlc/engines/volcano_engine.h"
#include "rlc/core/indexer.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/graph/paper_graphs.h"
#include "rlc/util/rng.h"

namespace rlc {
namespace {

using Word = std::vector<Label>;

TEST(AlternationTest, ParseAndToString) {
  const DiGraph g(2, {{0, 1, 0}, {1, 0, 1}, {0, 0, 2}}, 3);
  const auto c = PathConstraint::Parse("(0|1)+", g);
  ASSERT_EQ(c.atoms().size(), 1u);
  EXPECT_TRUE(c.atoms()[0].alternation);
  EXPECT_TRUE(c.atoms()[0].plus);
  EXPECT_EQ(c.atoms()[0].seq, (LabelSeq{0, 1}));
  EXPECT_EQ(c.ToString(g), "(0|1)+");

  const auto mixed = PathConstraint::Parse("(0|1)+ (0 2)+", g);
  ASSERT_EQ(mixed.atoms().size(), 2u);
  EXPECT_TRUE(mixed.atoms()[0].alternation);
  EXPECT_FALSE(mixed.atoms()[1].alternation);
  EXPECT_EQ(mixed.ToString(g), "(0|1)+ (0 2)+");
}

TEST(AlternationTest, ParseErrors) {
  const DiGraph g(2, {{0, 1, 0}}, 2);
  EXPECT_THROW(PathConstraint::Parse("(0|)+", g), std::invalid_argument);
  EXPECT_THROW(PathConstraint::Parse("(|0)+", g), std::invalid_argument);
  EXPECT_THROW(PathConstraint::Parse("(0|9)+", g), std::invalid_argument);
}

TEST(AlternationTest, NfaSemantics) {
  // (a|b)+ accepts every non-empty word over {a,b} and nothing else.
  const Nfa nfa = Nfa::FromConstraint(PathConstraint::LcrPlus(LabelSeq{0, 1}));
  EXPECT_FALSE(nfa.Accepts(Word{}));
  EXPECT_TRUE(nfa.Accepts(Word{0}));
  EXPECT_TRUE(nfa.Accepts(Word{1}));
  EXPECT_TRUE(nfa.Accepts(Word{1, 0, 0, 1}));
  EXPECT_FALSE(nfa.Accepts(Word{2}));
  EXPECT_FALSE(nfa.Accepts(Word{0, 2, 1}));
}

TEST(AlternationTest, NonRecursiveAlternation) {
  // (a|b) without plus: exactly one step.
  const PathConstraint c({ConstraintAtom{LabelSeq{0, 1}, false, true}});
  const Nfa nfa = Nfa::FromConstraint(c);
  EXPECT_TRUE(nfa.Accepts(Word{0}));
  EXPECT_TRUE(nfa.Accepts(Word{1}));
  EXPECT_FALSE(nfa.Accepts(Word{0, 1}));
}

TEST(AlternationTest, LcrAndRlcSemanticsDiffer) {
  // The separation the paper's §II argues: (a b)+ (concatenation) requires
  // strict alternation of a and b; (a|b)+ (LCR) accepts any mix. The path
  // 0 -a-> 1 -a-> 2 satisfies the latter but not the former.
  const DiGraph g(3, {{0, 1, 0}, {1, 2, 0}}, 2);
  OnlineSearcher searcher(g);
  EXPECT_TRUE(searcher.QueryBfsOnce(0, 2, PathConstraint::LcrPlus(LabelSeq{0, 1})));
  EXPECT_FALSE(searcher.QueryBfsOnce(0, 2, PathConstraint::RlcPlus(LabelSeq{0, 1})));

  // Conversely a strict a-b-a-b path satisfies both.
  const DiGraph h(5, {{0, 1, 0}, {1, 2, 1}, {2, 3, 0}, {3, 4, 1}}, 2);
  OnlineSearcher hs(h);
  EXPECT_TRUE(hs.QueryBfsOnce(0, 4, PathConstraint::LcrPlus(LabelSeq{0, 1})));
  EXPECT_TRUE(hs.QueryBfsOnce(0, 4, PathConstraint::RlcPlus(LabelSeq{0, 1})));
}

TEST(AlternationTest, Fig1KnowsOrWorksFor) {
  // LCR query on the paper's Fig. 1: P10 reaches P16 under (knows|worksFor)+
  // and even under knows-only; A14 is not reachable from P10 under it
  // (requires a holds step).
  const DiGraph g = BuildFig1Graph();
  OnlineSearcher searcher(g);
  const LabelSeq kw{*g.FindLabel("knows"), *g.FindLabel("worksFor")};
  EXPECT_TRUE(searcher.QueryBfsOnce(*g.FindVertex("P10"), *g.FindVertex("P16"),
                                    PathConstraint::LcrPlus(kw)));
  EXPECT_FALSE(searcher.QueryBfsOnce(*g.FindVertex("P10"), *g.FindVertex("A14"),
                                     PathConstraint::LcrPlus(kw)));
}

TEST(AlternationTest, EnginesAgreeOnMixedConstraints) {
  Rng rng(41);
  auto edges = ErdosRenyiEdges(80, 320, rng);
  AssignZipfLabels(&edges, 3, 2.0, rng);
  const DiGraph g(80, std::move(edges), 3);
  const RlcIndex index = BuildRlcIndex(g, 2);

  // (a|b)+ (c)+ : alternation prefix, RLC-final atom — hybrid-plan capable.
  const PathConstraint mixed({ConstraintAtom{LabelSeq{0, 1}, true, true},
                              ConstraintAtom{LabelSeq{2}, true, false}});
  // Pure LCR constraint for the traversal engines.
  const PathConstraint lcr = PathConstraint::LcrPlus(LabelSeq{0, 2});

  OnlineSearcher oracle(g);
  RecursiveJoinEngine join_engine(g);
  VolcanoEngine volcano_engine(g);
  FrontierEngine frontier_engine(g);
  RlcHybridEngine rlc_engine(g, index);

  for (int trial = 0; trial < 150; ++trial) {
    const auto s = static_cast<VertexId>(rng.Below(80));
    const auto t = static_cast<VertexId>(rng.Below(80));
    {
      const bool expected = oracle.QueryBfsOnce(s, t, mixed);
      ASSERT_EQ(join_engine.Evaluate(s, t, mixed), expected);
      ASSERT_EQ(volcano_engine.Evaluate(s, t, mixed), expected);
      ASSERT_EQ(frontier_engine.Evaluate(s, t, mixed), expected);
      ASSERT_EQ(rlc_engine.Evaluate(s, t, mixed), expected);
    }
    {
      const bool expected = oracle.QueryBfsOnce(s, t, lcr);
      ASSERT_EQ(join_engine.Evaluate(s, t, lcr), expected);
      ASSERT_EQ(volcano_engine.Evaluate(s, t, lcr), expected);
      ASSERT_EQ(frontier_engine.Evaluate(s, t, lcr), expected);
    }
  }
}

TEST(AlternationTest, HybridRejectsAlternationFinalAtom) {
  const DiGraph g = BuildFig2Graph();
  const RlcIndex index = BuildRlcIndex(g, 2);
  RlcHybridEngine engine(g, index);
  EXPECT_THROW(engine.Evaluate(0, 1, PathConstraint::LcrPlus(LabelSeq{0, 1})),
               std::invalid_argument);
}

}  // namespace
}  // namespace rlc
