// Parallel build equivalence: the hub-batched speculative builder must
// produce an index *bit-identical* to the sequential Algorithm 2 — same
// entry lists in the same order, same MR-table ids, same counters — for
// every thread count and batch size, on the paper's Fig. 2 example and on
// seeded Erdős–Rényi graphs with Zipf-distributed labels. A metamorphic
// query batch then checks the observable behaviour end to end.

#include <gtest/gtest.h>

#include <algorithm>

#include "rlc/core/indexer.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/graph/paper_graphs.h"
#include "rlc/util/rng.h"
#include "rlc/workload/query_gen.h"

namespace rlc {
namespace {

DiGraph RandomGraph(VertexId n, uint64_t m, Label labels, uint64_t seed) {
  Rng rng(seed);
  auto edges = ErdosRenyiEdges(n, m, rng);
  AssignZipfLabels(&edges, labels, 2.0, rng);
  return DiGraph(n, std::move(edges), labels);
}

struct BuildResult {
  RlcIndex index;
  IndexerStats stats;
};

BuildResult BuildWith(const DiGraph& g, IndexerOptions options) {
  RlcIndexBuilder builder(g, options);
  RlcIndex index = builder.Build();
  return {std::move(index), builder.stats()};
}

void ExpectIdentical(const BuildResult& a, const BuildResult& b) {
  ASSERT_EQ(a.index.num_vertices(), b.index.num_vertices());
  ASSERT_EQ(a.index.NumEntries(), b.index.NumEntries());
  ASSERT_EQ(a.index.mr_table().size(), b.index.mr_table().size());
  for (MrId id = 0; id < a.index.mr_table().size(); ++id) {
    ASSERT_EQ(a.index.mr_table().Get(id), b.index.mr_table().Get(id))
        << "MR-table id " << id << " diverged";
  }
  for (VertexId v = 0; v < a.index.num_vertices(); ++v) {
    ASSERT_EQ(a.index.AccessId(v), b.index.AccessId(v));
    ASSERT_TRUE(std::ranges::equal(a.index.Lout(v), b.index.Lout(v)))
        << "Lout mismatch at v=" << v;
    ASSERT_TRUE(std::ranges::equal(a.index.Lin(v), b.index.Lin(v)))
        << "Lin mismatch at v=" << v;
  }
  // Every counter except wall time is thread-count independent.
  EXPECT_EQ(a.stats.entries_inserted, b.stats.entries_inserted);
  EXPECT_EQ(a.stats.pruned_pr1, b.stats.pruned_pr1);
  EXPECT_EQ(a.stats.pruned_pr2, b.stats.pruned_pr2);
  EXPECT_EQ(a.stats.pruned_duplicate, b.stats.pruned_duplicate);
  EXPECT_EQ(a.stats.kernel_search_states, b.stats.kernel_search_states);
  EXPECT_EQ(a.stats.kernel_bfs_runs, b.stats.kernel_bfs_runs);
  EXPECT_EQ(a.stats.kernel_bfs_visits, b.stats.kernel_bfs_visits);
}

IndexerOptions Opts(uint32_t k, uint32_t threads, uint32_t batch = 0) {
  IndexerOptions options;
  options.k = k;
  options.num_threads = threads;
  options.batch_size = batch;
  return options;
}

TEST(ParallelBuildTest, Fig2GraphAllThreadCounts) {
  const DiGraph g = BuildFig2Graph();
  const BuildResult seq = BuildWith(g, Opts(2, 1));
  for (const uint32_t threads : {2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectIdentical(seq, BuildWith(g, Opts(2, threads)));
  }
}

TEST(ParallelBuildTest, BatchSizeDoesNotMatter) {
  const DiGraph g = RandomGraph(90, 350, 3, 1234);
  const BuildResult seq = BuildWith(g, Opts(2, 1));
  for (const uint32_t batch : {1u, 2u, 7u, 64u, 1000u}) {
    SCOPED_TRACE("batch=" + std::to_string(batch));
    ExpectIdentical(seq, BuildWith(g, Opts(2, 4, batch)));
  }
}

TEST(ParallelBuildTest, RandomGraphsSeveralSeeds) {
  for (const uint64_t seed : {7u, 8u, 9u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const DiGraph g = RandomGraph(120, 480, 4, seed);
    const BuildResult seq = BuildWith(g, Opts(2, 1));
    ExpectIdentical(seq, BuildWith(g, Opts(2, 2)));
    ExpectIdentical(seq, BuildWith(g, Opts(2, 8)));
  }
}

TEST(ParallelBuildTest, HigherKAndDenseGraph) {
  // Dense graphs with k=3 stress PR1/PR3 interplay: most speculative
  // attempts are only decidable at commit time.
  const DiGraph g = RandomGraph(60, 500, 2, 42);
  ExpectIdentical(BuildWith(g, Opts(3, 1)), BuildWith(g, Opts(3, 4)));
}

TEST(ParallelBuildTest, LazyStrategyMatches) {
  const DiGraph g = RandomGraph(50, 200, 2, 77);
  IndexerOptions seq = Opts(3, 1);
  seq.strategy = KbsStrategy::kLazy;
  IndexerOptions par = Opts(3, 4);
  par.strategy = KbsStrategy::kLazy;
  ExpectIdentical(BuildWith(g, seq), BuildWith(g, par));
}

TEST(ParallelBuildTest, PruningAblationsMatch) {
  // The speculative hints take different paths when PR1 or PR3 is off;
  // every ablation configuration must still commit identically.
  const DiGraph g = RandomGraph(70, 260, 3, 5);
  for (const bool pr1 : {true, false}) {
    for (const bool pr3 : {true, false}) {
      SCOPED_TRACE("pr1=" + std::to_string(pr1) + " pr3=" + std::to_string(pr3));
      IndexerOptions seq = Opts(2, 1);
      seq.pr1 = pr1;
      seq.pr3 = pr3;
      IndexerOptions par = seq;
      par.num_threads = 4;
      par.batch_size = 16;
      ExpectIdentical(BuildWith(g, seq), BuildWith(g, par));
    }
  }
}

TEST(ParallelBuildTest, MetamorphicQueryBatchAgrees) {
  // End-to-end observable equivalence on a larger graph: a mixed workload
  // of true/false queries answers identically from sequential and parallel
  // builds (sealed and unsealed).
  const DiGraph g = RandomGraph(200, 900, 4, 99);
  const BuildResult seq = BuildWith(g, Opts(2, 1));
  IndexerOptions unsealed_par = Opts(2, 4, 32);
  unsealed_par.seal = false;
  const BuildResult par = BuildWith(g, Opts(2, 4, 32));
  const BuildResult par_unsealed = BuildWith(g, unsealed_par);
  EXPECT_TRUE(seq.index.sealed());
  EXPECT_FALSE(par_unsealed.index.sealed());

  Rng rng(4242);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto s = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const auto t = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const LabelSeq c = RandomPrimitiveSeq(1 + trial % 2, 4, rng);
    const bool expected = seq.index.Query(s, t, c);
    ASSERT_EQ(expected, par.index.Query(s, t, c))
        << "s=" << s << " t=" << t << " c=" << c.ToString();
    ASSERT_EQ(expected, par_unsealed.index.Query(s, t, c))
        << "s=" << s << " t=" << t << " c=" << c.ToString();
  }
}

TEST(ParallelBuildTest, VertexIdAndRandomOrderings) {
  // The equivalence argument nowhere depends on the IN-OUT order; check the
  // ablation orderings too.
  const DiGraph g = RandomGraph(80, 300, 3, 13);
  for (const VertexOrdering ordering :
       {VertexOrdering::kVertexId, VertexOrdering::kRandom}) {
    IndexerOptions seq = Opts(2, 1);
    seq.ordering = ordering;
    IndexerOptions par = seq;
    par.num_threads = 3;
    ExpectIdentical(BuildWith(g, seq), BuildWith(g, par));
  }
}

TEST(ParallelBuildTest, ZeroThreadsMeansHardware) {
  const DiGraph g = RandomGraph(40, 120, 2, 3);
  ExpectIdentical(BuildWith(g, Opts(2, 1)), BuildWith(g, Opts(2, 0)));
}

TEST(ParallelBuildTest, EmptyAndTinyGraphs) {
  ExpectIdentical(BuildWith(DiGraph(), Opts(2, 1)),
                  BuildWith(DiGraph(), Opts(2, 4)));
  const DiGraph one(1, {{0, 0, 0}}, 1);  // single self-loop
  ExpectIdentical(BuildWith(one, Opts(2, 1)), BuildWith(one, Opts(2, 4)));
}

}  // namespace
}  // namespace rlc
