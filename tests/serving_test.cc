// Serving-subsystem correctness: the partitioner's structural invariants,
// and — the load-bearing property — that ShardedRlcService answers are
// bit-identical to a whole-graph RlcIndex for every probe, on the paper's
// worked-example graphs and on random ER graphs, for every partition
// policy, with empty shards and all-boundary partitions — with no
// whole-graph structure anywhere (cross-shard probes compose over the
// boundary skeleton). The batched executors must match the scalar paths.
// The dedicated partition-sweep differential lives in composition_test.cc.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "rlc/core/indexer.h"
#include "rlc/core/mr_cache.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/graph/paper_graphs.h"
#include "rlc/serve/partitioner.h"
#include "rlc/serve/query_batch.h"
#include "rlc/serve/sharded_service.h"
#include "rlc/util/rng.h"
#include "rlc/workload/query_gen.h"

namespace rlc {
namespace {

DiGraph RandomGraph(VertexId n, uint64_t m, Label labels, uint64_t seed) {
  Rng rng(seed);
  auto edges = ErdosRenyiEdges(n, m, rng);
  AssignZipfLabels(&edges, labels, 2.0, rng);
  return DiGraph(n, std::move(edges), labels);
}

/// Query constraints worth probing: every MR the whole-graph index recorded
/// (these produce the true answers) plus random primitive sequences (mostly
/// unknown, exercising the all-false paths).
std::vector<LabelSeq> ProbeSequences(const DiGraph& g, const RlcIndex& index,
                                     uint32_t k, uint64_t seed) {
  std::vector<LabelSeq> seqs;
  const MrTable& mrs = index.mr_table();
  for (MrId id = 0; id < mrs.size() && id < 24; ++id) {
    if (mrs.Get(id).size() <= k) seqs.push_back(mrs.Get(id));
  }
  if (g.num_labels() >= 2) {
    Rng rng(seed);
    for (int i = 0; i < 8; ++i) {
      seqs.push_back(RandomPrimitiveSeq(1 + i % k, g.num_labels(), rng));
    }
  }
  return seqs;
}

/// Core equivalence check: service answers == whole-graph index answers on
/// `trials` random probes over the sequence pool, scalar and batched.
void ExpectServiceMatchesIndex(const DiGraph& g, const RlcIndex& index,
                               ShardedRlcService& service, int trials,
                               uint64_t seed) {
  const auto seqs = ProbeSequences(g, index, service.k(), seed);
  if (g.num_vertices() == 0 || seqs.empty()) return;
  Rng rng(seed ^ 0xABCD);
  QueryBatch batch;
  std::vector<uint8_t> expected;
  for (int i = 0; i < trials; ++i) {
    const auto s = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const auto t = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const LabelSeq& c = seqs[rng.Below(seqs.size())];
    const bool want = index.QueryInterned(s, t, index.FindMr(c));
    ASSERT_EQ(want, service.Query(s, t, c))
        << "scalar mismatch s=" << s << " t=" << t << " c=" << c.ToString();
    batch.Add(s, t, c);
    expected.push_back(want ? 1 : 0);
  }
  const AnswerBatch answers = service.Execute(batch);
  ASSERT_EQ(answers.answers.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i], answers.answers[i]) << "batched mismatch at " << i;
  }
}

ServiceOptions Opts(uint32_t shards, PartitionPolicy policy, uint32_t k = 2) {
  ServiceOptions options;
  options.partition.num_shards = shards;
  options.partition.policy = policy;
  options.indexer.k = k;
  options.build_threads = 2;
  return options;
}

TEST(PartitionerTest, StructuralInvariants) {
  const DiGraph g = RandomGraph(120, 480, 4, 11);
  for (const PartitionPolicy policy :
       {PartitionPolicy::kHash, PartitionPolicy::kRange}) {
    PartitionerOptions options;
    options.num_shards = 5;
    options.policy = policy;
    const GraphPartition p = GraphPartition::Build(g, options);
    ASSERT_EQ(p.num_shards(), 5u);

    // Every vertex appears exactly once, and the id maps round-trip.
    uint64_t vertices = 0;
    for (uint32_t s = 0; s < p.num_shards(); ++s) {
      const ShardInfo& shard = p.shard(s);
      ASSERT_EQ(shard.graph.num_vertices(), shard.global_of.size());
      ASSERT_EQ(shard.graph.num_labels(), g.num_labels());
      vertices += shard.graph.num_vertices();
      for (VertexId local = 0; local < shard.graph.num_vertices(); ++local) {
        const VertexId global = p.GlobalOf(s, local);
        EXPECT_EQ(p.ShardOf(global), s);
        EXPECT_EQ(p.LocalOf(global), local);
      }
    }
    EXPECT_EQ(vertices, g.num_vertices());

    // Intra + cross edges partition the edge set.
    uint64_t intra = 0;
    for (uint32_t s = 0; s < p.num_shards(); ++s) {
      intra += p.shard(s).graph.num_edges();
    }
    EXPECT_EQ(intra + p.cross_edges().size(), g.num_edges());

    // Boundary flags match the cross edges, masks cover their labels.
    std::vector<uint8_t> expect_boundary(g.num_vertices(), 0);
    for (const Edge& e : p.cross_edges()) {
      EXPECT_NE(p.ShardOf(e.src), p.ShardOf(e.dst));
      expect_boundary[e.src] = expect_boundary[e.dst] = 1;
      EXPECT_TRUE(p.shard(p.ShardOf(e.src)).out_cross_labels.MayContain(e.label));
      EXPECT_TRUE(p.shard(p.ShardOf(e.dst)).in_cross_labels.MayContain(e.label));
      EXPECT_TRUE(p.QuotientReaches(p.ShardOf(e.src), p.ShardOf(e.dst)));
    }
    uint64_t boundary = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(p.IsBoundary(v), expect_boundary[v] != 0);
      boundary += expect_boundary[v];
    }
    EXPECT_EQ(boundary, p.num_boundary_vertices());
  }
}

TEST(PartitionerTest, SingleShardHasNoBoundary) {
  const DiGraph g = RandomGraph(60, 200, 3, 5);
  PartitionerOptions options;
  options.num_shards = 1;
  const GraphPartition p = GraphPartition::Build(g, options);
  EXPECT_EQ(p.cross_edges().size(), 0u);
  EXPECT_EQ(p.num_boundary_vertices(), 0u);
  EXPECT_FALSE(p.QuotientReaches(0, 0));
  EXPECT_EQ(p.shard(0).graph.num_edges(), g.num_edges());
}

TEST(PartitionerTest, RejectsBadShardCounts) {
  const DiGraph g = RandomGraph(10, 20, 2, 1);
  PartitionerOptions options;
  options.num_shards = 0;
  EXPECT_THROW(GraphPartition::Build(g, options), std::invalid_argument);
  options.num_shards = GraphPartition::kMaxShards + 1;
  EXPECT_THROW(GraphPartition::Build(g, options), std::invalid_argument);
}

TEST(ServingTest, MatchesWholeGraphOnPaperGraphs) {
  for (const DiGraph& g : {BuildFig1Graph(), BuildFig2Graph()}) {
    const RlcIndex index = BuildRlcIndex(g, 2);
    for (const PartitionPolicy policy :
         {PartitionPolicy::kHash, PartitionPolicy::kRange}) {
      for (const uint32_t shards : {2u, 3u}) {
        SCOPED_TRACE("shards=" + std::to_string(shards));
        ShardedRlcService service(g, Opts(shards, policy));
        // Exhaustive vertex pairs on these tiny graphs, every recorded MR.
        const MrTable& mrs = index.mr_table();
        for (MrId id = 0; id < mrs.size(); ++id) {
          if (mrs.Get(id).size() > 2) continue;
          for (VertexId s = 0; s < g.num_vertices(); ++s) {
            for (VertexId t = 0; t < g.num_vertices(); ++t) {
              ASSERT_EQ(index.QueryInterned(s, t, id),
                        service.Query(s, t, mrs.Get(id)))
                  << "s=" << s << " t=" << t << " c=" << mrs.Get(id).ToString();
            }
          }
        }
      }
    }
  }
}

TEST(ServingTest, MatchesWholeGraphOnErGraphs) {
  for (const uint64_t seed : {21u, 22u}) {
    const DiGraph g = RandomGraph(150, 600, 4, seed);
    const RlcIndex index = BuildRlcIndex(g, 2);
    for (const PartitionPolicy policy :
         {PartitionPolicy::kHash, PartitionPolicy::kRange,
          PartitionPolicy::kRangeOrdered}) {
      for (const uint32_t shards : {1u, 2u, 4u, 7u}) {
        SCOPED_TRACE("seed=" + std::to_string(seed) +
                     " shards=" + std::to_string(shards));
        ShardedRlcService service(g, Opts(shards, policy));
        ExpectServiceMatchesIndex(g, index, service, 1500, seed);
      }
    }
  }
}

TEST(ServingTest, ParallelExecuteMatchesForEveryThreadCount) {
  // The batched executor's fan-out must be invisible: answers and stats
  // identical for every exec_threads / chunk size — shard kernel jobs and
  // composed-probe jobs both.
  const DiGraph g = RandomGraph(150, 600, 4, 23);
  const RlcIndex index = BuildRlcIndex(g, 2);
  ServiceStats reference_stats;
  bool have_reference = false;
  for (const uint32_t threads : {1u, 2u, 5u}) {
    for (const size_t chunk : {size_t{3}, size_t{8192}}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " chunk=" + std::to_string(chunk));
      ServiceOptions options = Opts(4, PartitionPolicy::kHash);
      options.exec_threads = threads;
      options.exec_probes_per_job = chunk;
      ShardedRlcService service(g, options);
      ExpectServiceMatchesIndex(g, index, service, 800, 23);
      if (!have_reference) {
        reference_stats = service.stats();
        have_reference = true;
      } else {
        // Deterministic routing: telemetry equal across thread counts.
        EXPECT_EQ(reference_stats.intra_true, service.stats().intra_true);
        EXPECT_EQ(reference_stats.intra_miss, service.stats().intra_miss);
        EXPECT_EQ(reference_stats.cross_refuted,
                  service.stats().cross_refuted);
        EXPECT_EQ(reference_stats.compose_probes,
                  service.stats().compose_probes);
        EXPECT_EQ(reference_stats.compose_skeleton_hops,
                  service.stats().compose_skeleton_hops);
        EXPECT_EQ(reference_stats.compose_expanded,
                  service.stats().compose_expanded);
        EXPECT_EQ(reference_stats.batch_groups, service.stats().batch_groups);
      }
    }
  }
}

TEST(ServingTest, EmptyShardsAreHarmless) {
  // Range policy with more shards than the block count leaves the tail
  // shards empty; hash with 8 shards on 5 vertices leaves some empty too.
  const DiGraph g(5, {{0, 1, 0}, {1, 2, 1}, {2, 3, 0}, {3, 4, 1}, {4, 0, 0}}, 2);
  const RlcIndex index = BuildRlcIndex(g, 2);
  for (const PartitionPolicy policy :
       {PartitionPolicy::kHash, PartitionPolicy::kRange}) {
    ShardedRlcService service(g, Opts(8, policy));
    uint32_t empty = 0;
    for (uint32_t s = 0; s < 8; ++s) {
      empty += service.partition().shard(s).graph.num_vertices() == 0;
    }
    EXPECT_GT(empty, 0u);
    ExpectServiceMatchesIndex(g, index, service, 400, 77);
  }
}

TEST(ServingTest, AllBoundaryPartition) {
  // Bipartite halves with only cross-shard edges under the range policy:
  // every vertex is boundary and every shard graph is edgeless.
  std::vector<Edge> edges;
  for (VertexId v = 0; v < 5; ++v) {
    edges.push_back({v, static_cast<VertexId>(5 + v), 0});
    edges.push_back({static_cast<VertexId>(5 + v), (v + 1) % 5, 1});
  }
  const DiGraph g(10, std::move(edges), 2);
  const RlcIndex index = BuildRlcIndex(g, 2);
  ShardedRlcService service(g, Opts(2, PartitionPolicy::kRange));
  EXPECT_EQ(service.partition().num_boundary_vertices(), 10u);
  EXPECT_EQ(service.partition().shard(0).graph.num_edges(), 0u);
  EXPECT_EQ(service.partition().shard(1).graph.num_edges(), 0u);
  ExpectServiceMatchesIndex(g, index, service, 500, 31);
}

TEST(ServingTest, RangeOrderedPolicyMatches) {
  const DiGraph g = RandomGraph(100, 350, 3, 9);
  const RlcIndex index = BuildRlcIndex(g, 2);
  for (const OrderHeuristic h :
       {OrderHeuristic::kDegree, OrderHeuristic::kReverseDegree,
        OrderHeuristic::kGreatestConstraintFirst}) {
    ServiceOptions options = Opts(3, PartitionPolicy::kRangeOrdered);
    options.partition.ordering = h;
    ShardedRlcService service(g, options);
    ExpectServiceMatchesIndex(g, index, service, 800, 9);
  }
}

TEST(ServingTest, BoundaryRefutationIsExact) {
  // Two range shards joined by a single label-0 cross edge: a (1)+ query
  // across shards is refutable from the label masks alone, and the stats
  // must show it never reached the composition engine.
  std::vector<Edge> edges = {{0, 1, 1}, {1, 2, 1}, {2, 3, 0},
                             {3, 4, 1}, {4, 5, 1}};
  const DiGraph g(6, std::move(edges), 2);
  ShardedRlcService service(g, Opts(2, PartitionPolicy::kRange));
  EXPECT_FALSE(service.Query(0, 4, LabelSeq{1}));
  EXPECT_EQ(service.stats().cross_refuted, 1u);
  EXPECT_EQ(service.stats().compose_probes, 0u);
  // The label-0 cross query must not be refuted by the masks (it is the
  // one label that does cross) and resolves via composition.
  EXPECT_FALSE(service.Query(0, 4, LabelSeq{0}));
  EXPECT_EQ(service.stats().compose_probes, 1u);
}

TEST(ServingTest, StatsAccountForEveryProbe) {
  const DiGraph g = RandomGraph(120, 500, 3, 15);
  ShardedRlcService service(g, Opts(4, PartitionPolicy::kHash));
  Rng rng(4);
  QueryBatch batch;
  for (int i = 0; i < 300; ++i) {
    service.Query(static_cast<VertexId>(rng.Below(120)),
                  static_cast<VertexId>(rng.Below(120)),
                  RandomPrimitiveSeq(1 + i % 2, 3, rng));
    batch.Add(static_cast<VertexId>(rng.Below(120)),
              static_cast<VertexId>(rng.Below(120)),
              RandomPrimitiveSeq(1 + i % 2, 3, rng));
  }
  service.Execute(batch);
  const ServiceStats& stats = service.stats();
  EXPECT_EQ(stats.queries, 600u);
  EXPECT_EQ(stats.batches, 1u);
  // Every probe ends in exactly one terminal bucket.
  EXPECT_EQ(stats.queries,
            stats.intra_true + stats.cross_refuted + stats.compose_probes);
  // Misses are the subset of same-shard probes that continued past step 1.
  EXPECT_LE(stats.intra_true, stats.queries);
}

TEST(ServingTest, BatchValidation) {
  const DiGraph g = RandomGraph(30, 90, 3, 2);
  const RlcIndex index = BuildRlcIndex(g, 2);
  ShardedRlcService service(g, Opts(2, PartitionPolicy::kHash));

  QueryBatch empty_seq;
  empty_seq.Add(0, 1, LabelSeq{});
  EXPECT_THROW(service.Execute(empty_seq), std::invalid_argument);
  EXPECT_THROW(ExecuteBatch(index, empty_seq), std::invalid_argument);

  QueryBatch non_primitive;
  non_primitive.Add(0, 1, LabelSeq{1, 1});
  EXPECT_THROW(service.Execute(non_primitive), std::invalid_argument);

  QueryBatch too_long;
  too_long.Add(0, 1, LabelSeq{0, 1, 2});
  EXPECT_THROW(service.Execute(too_long), std::invalid_argument);

  QueryBatch bad_vertex;
  bad_vertex.Add(0, 99, LabelSeq{1});
  EXPECT_THROW(service.Execute(bad_vertex), std::invalid_argument);
  EXPECT_THROW(ExecuteBatch(index, bad_vertex), std::invalid_argument);

  QueryBatch bad_seq_id;
  bad_seq_id.Add(0, 1, /*seq_id=*/3);
  EXPECT_THROW(service.Execute(bad_seq_id), std::invalid_argument);

  EXPECT_THROW(service.Query(0, 99, LabelSeq{1}), std::invalid_argument);
  EXPECT_THROW(service.Query(0, 1, LabelSeq{1, 1}), std::invalid_argument);
}

TEST(ServingTest, SingleIndexBatchMatchesScalar) {
  const DiGraph g = RandomGraph(140, 560, 4, 33);
  const RlcIndex index = BuildRlcIndex(g, 2);
  Rng rng(6);
  QueryBatch batch;
  std::vector<uint8_t> expected;
  const auto seqs = ProbeSequences(g, index, 2, 33);
  for (int i = 0; i < 1200; ++i) {
    const auto s = static_cast<VertexId>(rng.Below(140));
    const auto t = static_cast<VertexId>(rng.Below(140));
    const LabelSeq& c = seqs[rng.Below(seqs.size())];
    batch.Add(s, t, c);
    expected.push_back(index.Query(s, t, c) ? 1 : 0);
  }
  const AnswerBatch answers = ExecuteBatch(index, batch);
  ASSERT_EQ(answers.answers, expected);
  // One executed group per distinct *recorded* sequence.
  EXPECT_GT(answers.num_groups, 0u);
  EXPECT_LE(answers.num_groups, batch.num_sequences());

  // ClearProbes keeps the interned templates usable.
  QueryBatch reuse = batch;
  reuse.ClearProbes();
  EXPECT_EQ(reuse.num_probes(), 0u);
  EXPECT_EQ(reuse.num_sequences(), batch.num_sequences());
  reuse.Add(1, 2, /*seq_id=*/0);
  EXPECT_EQ(ExecuteBatch(index, reuse).answers.size(), 1u);
}

TEST(ServingTest, QueryGroupInternedMatchesScalar) {
  const DiGraph g = RandomGraph(160, 640, 4, 44);
  IndexerOptions options;
  options.k = 2;
  options.seal = false;
  RlcIndexBuilder builder(g, options);
  RlcIndex nested = builder.Build();
  RlcIndex sealed = nested;
  sealed.Seal();

  Rng rng(8);
  std::vector<VertexPair> probes;
  for (int i = 0; i < 600; ++i) {
    probes.push_back({static_cast<VertexId>(rng.Below(160)),
                      static_cast<VertexId>(rng.Below(160))});
  }
  std::vector<uint8_t> sealed_ans(probes.size());
  std::vector<uint8_t> nested_ans(probes.size());
  for (MrId mr : {MrId{0}, MrId{1}, kInvalidMrId}) {
    sealed.QueryGroupInterned(mr, probes, sealed_ans);
    nested.QueryGroupInterned(mr, probes, nested_ans);
    for (size_t i = 0; i < probes.size(); ++i) {
      ASSERT_EQ(sealed_ans[i], sealed.QueryInterned(probes[i].s, probes[i].t, mr))
          << "mr=" << mr << " i=" << i;
      ASSERT_EQ(sealed_ans[i], nested_ans[i]);
    }
  }
}

TEST(ServingTest, MrCacheMatchesFindMr) {
  const DiGraph g = RandomGraph(80, 320, 3, 3);
  const RlcIndex index = BuildRlcIndex(g, 2);
  MrCache cache(index);
  Rng rng(12);
  for (int i = 0; i < 200; ++i) {
    const LabelSeq seq = RandomPrimitiveSeq(1 + i % 2, 3, rng);
    EXPECT_EQ(cache.Get(seq), index.FindMr(seq));
    EXPECT_EQ(cache.Get(seq), index.FindMr(seq));  // memoized hit
  }
  EXPECT_GT(cache.size(), 0u);
  EXPECT_LE(cache.size(), 200u);
}

TEST(ServingTest, ParallelShardBuildsAreDeterministic) {
  const DiGraph g = RandomGraph(130, 520, 4, 55);
  ServiceOptions sequential = Opts(4, PartitionPolicy::kHash);
  sequential.build_threads = 1;
  ServiceOptions parallel = Opts(4, PartitionPolicy::kHash);
  parallel.build_threads = 4;
  ShardedRlcService a(g, sequential);
  ShardedRlcService b(g, parallel);
  for (uint32_t s = 0; s < 4; ++s) {
    ASSERT_EQ(a.shard_index(s).NumEntries(), b.shard_index(s).NumEntries());
    ASSERT_EQ(a.shard_index(s).mr_table().size(),
              b.shard_index(s).mr_table().size());
  }
  Rng rng(14);
  for (int i = 0; i < 500; ++i) {
    const auto s = static_cast<VertexId>(rng.Below(130));
    const auto t = static_cast<VertexId>(rng.Below(130));
    const LabelSeq c = RandomPrimitiveSeq(1 + i % 2, 4, rng);
    ASSERT_EQ(a.Query(s, t, c), b.Query(s, t, c));
  }
}

/// Shared driver for the live-update differential: apply random *mixed*
/// insert/delete batches and, after each, re-check the service (scalar +
/// batched) against a fresh whole-graph index built on the mutated graph.
void RunUpdateDifferential(ServiceOptions options, uint64_t seed) {
  const VertexId n = 150;
  const Label labels = 3;
  std::vector<Edge> base_edges;
  {
    Rng rng(seed);
    base_edges = ErdosRenyiEdges(n, 600, rng);
    AssignZipfLabels(&base_edges, labels, 2.0, rng);
  }
  const DiGraph g(n, base_edges, labels);
  ShardedRlcService service(g, options);

  Rng rng(seed ^ 0x5EED);
  // Mirror of the mutated graph's edge set. The DiGraph deduplicates exact
  // parallel copies (and the service deletes all copies of a triple), so
  // the mirror starts deduplicated too.
  std::vector<Edge> mutated_edges = base_edges;
  std::sort(mutated_edges.begin(), mutated_edges.end());
  mutated_edges.erase(
      std::unique(mutated_edges.begin(), mutated_edges.end()),
      mutated_edges.end());
  uint64_t applied_total = 0;
  uint64_t deleted_total = 0;
  for (int batch = 0; batch < 3; ++batch) {
    std::vector<EdgeUpdate> updates;
    // Four deletes of currently-present edges lead the batch.
    for (int i = 0; i < 4; ++i) {
      const size_t pick = rng.Below(mutated_edges.size());
      const Edge e = mutated_edges[pick];
      mutated_edges.erase(mutated_edges.begin() +
                          static_cast<ptrdiff_t>(pick));
      updates.push_back({e.src, e.label, e.dst, EdgeOp::kDelete});
      ++deleted_total;
    }
    // Eight inserts of new edges follow; none may collide with the first
    // deleted edge (reserved for the no-op delete below).
    const EdgeUpdate reserved = updates[0];
    while (updates.size() < 12) {
      const auto u = static_cast<VertexId>(rng.Below(n));
      const auto v = static_cast<VertexId>(rng.Below(n));
      const auto l = static_cast<Label>(rng.Below(labels));
      if (u == reserved.src && l == reserved.label && v == reserved.dst) {
        continue;
      }
      if (std::find(mutated_edges.begin(), mutated_edges.end(),
                    Edge{u, v, l}) != mutated_edges.end()) {
        continue;
      }
      mutated_edges.push_back({u, v, l});
      updates.push_back({u, l, v});
    }
    // Two no-ops ride along: re-inserting one of this batch's own inserts
    // and re-deleting the already-deleted reserved edge.
    updates.push_back(updates[4]);
    updates.push_back(reserved);

    ASSERT_EQ(service.ApplyUpdates(updates), 12u);
    applied_total += 12;
    ASSERT_EQ(service.stats().updates_applied, applied_total);
    ASSERT_EQ(service.stats().updates_deleted, deleted_total);
    ASSERT_EQ(service.stats().updates_duplicate, uint64_t(2 * (batch + 1)));

    const DiGraph mutated(n, mutated_edges, labels);
    const RlcIndex fresh = BuildRlcIndex(mutated, options.indexer.k);
    ExpectServiceMatchesIndex(mutated, fresh, service, 400, seed + batch);
  }
  EXPECT_GT(service.stats().updates_cross, 0u);

  // Drain any background reseals and re-check: the swap must not change a
  // single answer.
  service.FinishReseals();
  const DiGraph mutated(n, mutated_edges, labels);
  const RlcIndex fresh = BuildRlcIndex(mutated, options.indexer.k);
  ExpectServiceMatchesIndex(mutated, fresh, service, 400, seed + 99);
}

TEST(ServingTest, ApplyUpdatesMatchesRebuiltIndexHybrid) {
  RunUpdateDifferential(Opts(4, PartitionPolicy::kHash), 111);
}

TEST(ServingTest, ApplyUpdatesMatchesRebuiltIndexRange) {
  RunUpdateDifferential(Opts(3, PartitionPolicy::kRange), 222);
}

TEST(ServingTest, ApplyUpdatesMatchesRebuiltIndexRangeOrdered) {
  RunUpdateDifferential(Opts(4, PartitionPolicy::kRangeOrdered), 333);
}

TEST(ServingTest, ApplyUpdatesWithBackgroundResealsAndExecThreads) {
  ServiceOptions options = Opts(4, PartitionPolicy::kHash);
  options.exec_threads = 4;
  options.exec_probes_per_job = 32;
  options.reseal.background = true;
  options.reseal.min_delta_entries = 1;
  options.reseal.max_delta_ratio = 1e-6;  // reseal on (nearly) every insert
  RunUpdateDifferential(options, 444);
}

TEST(ServingTest, ApplyUpdatesRejectsBadBatchWithoutApplyingAnything) {
  const DiGraph g = RandomGraph(60, 240, 3, 555);
  ShardedRlcService service(g, Opts(3, PartitionPolicy::kHash));
  // A valid new edge followed by an invalid one: the batch must be rejected
  // atomically — nothing applied, no stats movement.
  Rng rng(556);
  EdgeUpdate fresh{};
  for (;;) {
    fresh = {static_cast<VertexId>(rng.Below(60)),
             static_cast<Label>(rng.Below(3)),
             static_cast<VertexId>(rng.Below(60))};
    if (!g.HasEdge(fresh.src, fresh.dst, fresh.label)) break;
  }
  const std::vector<EdgeUpdate> bad_vertex = {fresh, {60, 0, 1}};
  EXPECT_THROW(service.ApplyUpdates(bad_vertex), std::invalid_argument);
  const std::vector<EdgeUpdate> bad_label = {fresh, {0, 3, 1}};
  EXPECT_THROW(service.ApplyUpdates(bad_label), std::invalid_argument);
  EXPECT_EQ(service.stats().updates_applied, 0u);
  EXPECT_EQ(service.stats().updates_duplicate, 0u);
  // The service still answers exactly like the unmutated whole-graph index.
  const RlcIndex fresh_index = BuildRlcIndex(g, 2);
  ExpectServiceMatchesIndex(g, fresh_index, service, 200, 557);
}

TEST(ServingTest, RoutingIsStableAcrossFirstUpdate) {
  // PR 4 built a plain 2-hop prefilter into the hybrid fallback and
  // silently dropped it on the first applied update — identical queries
  // changed cost model mid-flight. The prefilter is now gone for good:
  // this test pins that the same probe set routes identically (same
  // per-category stat deltas) before and after updates begin, and answers
  // stay exact either way. The hybrid *engine* keeps its optional
  // prefilter for static deployments (engines_test).
  const DiGraph g = RandomGraph(120, 460, 3, 777);
  ShardedRlcService service(g, Opts(4, PartitionPolicy::kHash));

  std::vector<RlcQuery> probes;
  Rng rng(778);
  for (int i = 0; i < 200; ++i) {
    probes.push_back({static_cast<VertexId>(rng.Below(120)),
                      static_cast<VertexId>(rng.Below(120)),
                      RandomPrimitiveSeq(1 + i % 2, 3, rng), false});
  }
  auto run_probes = [&] {
    const ServiceStats before = service.stats();
    for (const RlcQuery& q : probes) service.Query(q.s, q.t, q.constraint);
    const ServiceStats& after = service.stats();
    return std::tuple(after.intra_true - before.intra_true,
                      after.cross_refuted - before.cross_refuted,
                      after.compose_probes - before.compose_probes);
  };
  const auto before_update = run_probes();

  // A no-op batch (duplicate insert + delete of an absent edge) must not
  // change routing at all.
  const Edge base_edge = g.ToEdgeList().front();
  EdgeUpdate absent{};
  for (;;) {
    absent = {static_cast<VertexId>(rng.Below(120)),
              static_cast<Label>(rng.Below(3)),
              static_cast<VertexId>(rng.Below(120))};
    if (!g.HasEdge(absent.src, absent.dst, absent.label)) break;
  }
  absent.op = EdgeOp::kDelete;
  const std::vector<EdgeUpdate> noop = {
      {base_edge.src, base_edge.label, base_edge.dst}, absent};
  ASSERT_EQ(service.ApplyUpdates(noop), 0u);
  EXPECT_EQ(before_update, run_probes());

  // A real mutation pair that cancels out (insert then delete of the same
  // new edge) restores the exact pre-update graph: identical probes must
  // route through the same categories with the same counts — no dropped
  // shortcut, no behavior cliff after update #1.
  absent.op = EdgeOp::kInsert;
  const std::vector<EdgeUpdate> churn = {
      absent, {absent.src, absent.label, absent.dst, EdgeOp::kDelete}};
  ASSERT_EQ(service.ApplyUpdates(churn), 2u);
  EXPECT_EQ(before_update, run_probes());

  // And answers stay exact against the unmutated oracle.
  const RlcIndex fresh = BuildRlcIndex(g, 2);
  ExpectServiceMatchesIndex(g, fresh, service, 300, 779);
}

TEST(ServingTest, WorkloadAnswersMatchOracle) {
  // End-to-end: the generated workload's oracle answers must come back
  // from the batched sharded path.
  const DiGraph g = RandomGraph(200, 800, 4, 66);
  WorkloadOptions wopts;
  wopts.count = 150;
  wopts.constraint_length = 2;
  const Workload w = GenerateWorkload(g, wopts);
  ShardedRlcService service(g, Opts(4, PartitionPolicy::kHash));
  QueryBatch batch;
  std::vector<uint8_t> expected;
  for (const auto* set : {&w.true_queries, &w.false_queries}) {
    for (const RlcQuery& q : *set) {
      batch.Add(q.s, q.t, q.constraint);
      expected.push_back(q.expected ? 1 : 0);
    }
  }
  const AnswerBatch answers = service.Execute(batch);
  ASSERT_EQ(answers.answers, expected);
}

}  // namespace
}  // namespace rlc
