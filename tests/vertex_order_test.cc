// Property tests for the locality-aware vertex orderings (serve/
// vertex_order.h) and the kRangeOrdered partition policy built on them.
//
//   1. Every heuristic returns a bijective permutation on every graph
//      shape it will meet (ER, BA, community, edgeless, single vertex).
//   2. Orderings are deterministic for a fixed (graph, heuristic, seed) —
//      ties break by seeded hash then id, never by container order.
//   3. The point of the exercise: on a community-structured graph whose
//      ids are shuffled, kRangeOrdered recovers the communities and cuts
//      measurably fewer cross edges than hash partitioning (a ratio
//      bound, not an absolute — generator randomness stays in play).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/serve/partitioner.h"
#include "rlc/serve/vertex_order.h"
#include "rlc/util/rng.h"

namespace rlc {
namespace {

constexpr OrderHeuristic kAllHeuristics[] = {
    OrderHeuristic::kDegree, OrderHeuristic::kReverseDegree,
    OrderHeuristic::kGreatestConstraintFirst};

DiGraph CommunityGraph(VertexId n, uint64_t m, uint32_t communities,
                       uint64_t seed,
                       std::vector<uint32_t>* membership = nullptr) {
  Rng rng(seed);
  auto edges = PlantedPartitionEdges(n, m, communities, 0.9, rng, membership);
  AssignZipfLabels(&edges, 3, 2.0, rng);
  return DiGraph(n, std::move(edges), 3);
}

void ExpectPermutation(const std::vector<VertexId>& order, VertexId n) {
  ASSERT_EQ(order.size(), n);
  std::vector<uint8_t> seen(n, 0);
  for (const VertexId v : order) {
    ASSERT_LT(v, n);
    ASSERT_FALSE(seen[v]) << "vertex " << v << " placed twice";
    seen[v] = 1;
  }
}

TEST(VertexOrderTest, EveryHeuristicIsABijection) {
  Rng rng(0xA0);
  auto er = ErdosRenyiEdges(120, 480, rng);
  AssignZipfLabels(&er, 3, 2.0, rng);
  auto ba = BarabasiAlbertEdges(90, 3, rng);
  AssignZipfLabels(&ba, 3, 2.0, rng);
  const DiGraph graphs[] = {
      DiGraph(120, std::move(er), 3), DiGraph(90, std::move(ba), 3),
      CommunityGraph(100, 500, 5, 0xA1),
      DiGraph(7, {}, 2),  // edgeless: ordering must still cover everyone
      DiGraph(1, {}, 1)};
  for (const DiGraph& g : graphs) {
    for (const OrderHeuristic h : kAllHeuristics) {
      SCOPED_TRACE(static_cast<int>(h));
      const auto order = ComputeVertexOrder(g, h, 42);
      ExpectPermutation(order, g.num_vertices());
      // InvertOrder is the true inverse.
      const auto rank = InvertOrder(order);
      for (VertexId r = 0; r < g.num_vertices(); ++r) {
        EXPECT_EQ(rank[order[r]], r);
      }
    }
  }
}

TEST(VertexOrderTest, DeterministicForFixedSeed) {
  const DiGraph g = CommunityGraph(150, 700, 6, 0xB0);
  for (const OrderHeuristic h : kAllHeuristics) {
    SCOPED_TRACE(static_cast<int>(h));
    const auto first = ComputeVertexOrder(g, h, 7);
    const auto second = ComputeVertexOrder(g, h, 7);
    EXPECT_EQ(first, second);
    // A different seed still yields a valid permutation (it may or may
    // not differ — ties are all the seed touches).
    ExpectPermutation(ComputeVertexOrder(g, h, 8), g.num_vertices());
  }
}

TEST(VertexOrderTest, DegreeHeuristicsSortByDegree) {
  const DiGraph g = CommunityGraph(80, 400, 4, 0xC0);
  const auto degree = [&](VertexId v) {
    return g.OutEdges(v).size() + g.InEdges(v).size();
  };
  const auto deg = ComputeVertexOrder(g, OrderHeuristic::kDegree, 1);
  for (size_t i = 1; i < deg.size(); ++i) {
    EXPECT_GE(degree(deg[i - 1]), degree(deg[i])) << "rank " << i;
  }
  const auto rdeg = ComputeVertexOrder(g, OrderHeuristic::kReverseDegree, 1);
  for (size_t i = 1; i < rdeg.size(); ++i) {
    EXPECT_LE(degree(rdeg[i - 1]), degree(rdeg[i])) << "rank " << i;
  }
}

TEST(VertexOrderTest, RangeOrderedCutsFewerCrossEdgesOnCommunities) {
  // Membership is id-shuffled by the generator, so plain range and hash
  // both cut ~(1 - 1/S) of the edges. GCF-ordered range partitioning has
  // to rediscover the planted blocks and keep most edges intra-shard.
  const uint32_t kShards = 4;
  uint64_t hash_cross_total = 0, ordered_cross_total = 0, edges_total = 0;
  for (const uint64_t seed : {0xD1ull, 0xD2ull, 0xD3ull}) {
    const DiGraph g = CommunityGraph(240, 1600, kShards, seed);
    PartitionerOptions hash_opts;
    hash_opts.num_shards = kShards;
    hash_opts.policy = PartitionPolicy::kHash;
    const GraphPartition hashed = GraphPartition::Build(g, hash_opts);

    PartitionerOptions ordered_opts;
    ordered_opts.num_shards = kShards;
    ordered_opts.policy = PartitionPolicy::kRangeOrdered;
    ordered_opts.ordering = OrderHeuristic::kGreatestConstraintFirst;
    const GraphPartition ordered = GraphPartition::Build(g, ordered_opts);

    hash_cross_total += hashed.cross_edges().size();
    ordered_cross_total += ordered.cross_edges().size();
    edges_total += g.num_edges();
  }
  ASSERT_GT(hash_cross_total, 0u);
  const double ratio = static_cast<double>(ordered_cross_total) /
                       static_cast<double>(hash_cross_total);
  // Hash cuts ~75% of edges at 4 shards; the planted intra fraction is
  // 90%, so a perfect recovery would land near ratio 0.13. Assert a loose
  // bound that still rules out "no locality recovered at all".
  EXPECT_LT(ratio, 0.7) << "ordered cross " << ordered_cross_total << " / "
                        << edges_total << " edges vs hash cross "
                        << hash_cross_total;
}

}  // namespace
}  // namespace rlc
