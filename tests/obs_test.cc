// Tests for the obs/ metrics subsystem: bucket geometry, percentile
// accuracy against a sorted-sample oracle, conservation of counts under
// concurrent recording + snapshotting, registry naming rules, snapshot
// determinism, exporters, the runtime kill switch, and the span ring.
//
// The concurrency tests double as the TSan surface for the primitives: the
// CI TSan job runs this binary, so any non-atomic access in Counter /
// Gauge / Histogram / SpanRing shows up as a data-race report there.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "rlc/obs/metrics.h"
#include "rlc/obs/trace.h"
#include "rlc/util/rng.h"

namespace rlc::obs {
namespace {

// ---- bucket geometry ----

TEST(HistogramBuckets, SmallValuesAreExact) {
  for (uint64_t v = 0; v < Histogram::kSub; ++v) {
    EXPECT_EQ(Histogram::BucketOf(v), v);
    EXPECT_EQ(Histogram::BucketLower(static_cast<uint32_t>(v)), v);
    EXPECT_EQ(Histogram::BucketUpper(static_cast<uint32_t>(v)), v);
  }
}

TEST(HistogramBuckets, LowerUpperBracketEveryBucket) {
  for (uint32_t b = 0; b < Histogram::kNumBuckets; ++b) {
    const uint64_t lo = Histogram::BucketLower(b);
    const uint64_t hi = Histogram::BucketUpper(b);
    ASSERT_LE(lo, hi);
    EXPECT_EQ(Histogram::BucketOf(lo), b) << "bucket " << b;
    EXPECT_EQ(Histogram::BucketOf(hi), b) << "bucket " << b;
    if (b + 1 < Histogram::kNumBuckets) {
      EXPECT_EQ(hi + 1, Histogram::BucketLower(b + 1)) << "gap after " << b;
    }
  }
}

TEST(HistogramBuckets, MonotoneAndClamped) {
  uint32_t prev = 0;
  for (uint64_t v = 0; v < 1u << 16; ++v) {
    const uint32_t b = Histogram::BucketOf(v);
    ASSERT_GE(b, prev);
    ASSERT_LT(b, Histogram::kNumBuckets);
    prev = b;
  }
  EXPECT_EQ(Histogram::BucketOf(UINT64_MAX), Histogram::kNumBuckets - 1);
}

TEST(HistogramBuckets, RelativeWidthIsBounded) {
  // Above the exact range every bucket spans <= 12.5% of its lower bound.
  for (uint32_t b = Histogram::kSub; b < Histogram::kNumBuckets; ++b) {
    const double lo = static_cast<double>(Histogram::BucketLower(b));
    const double hi = static_cast<double>(Histogram::BucketUpper(b));
    EXPECT_LE((hi - lo) / lo, 0.125 + 1e-9) << "bucket " << b;
  }
}

// ---- single-threaded recording / snapshot ----

TEST(Histogram, CountsSumMaxExact) {
  Histogram h;
  uint64_t sum = 0;
  const std::vector<uint64_t> values = {0, 1, 7, 8, 100, 1000, 123456, 1u << 30};
  for (const uint64_t v : values) {
    h.Record(v);
    sum += v;
  }
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, values.size());
  EXPECT_EQ(s.sum, sum);
  EXPECT_EQ(s.max, uint64_t{1} << 30);
  uint64_t bucket_total = 0;
  for (const uint64_t c : s.buckets) bucket_total += c;
  EXPECT_EQ(bucket_total, values.size());

  h.Reset();
  const HistogramSnapshot z = h.Snapshot();
  EXPECT_EQ(z.count, 0u);
  EXPECT_EQ(z.sum, 0u);
  EXPECT_EQ(z.max, 0u);
}

TEST(Histogram, PercentileMatchesSortedOracleWithinOneBucket) {
  // Log-uniform latencies: the regime the bucket scheme is designed for.
  Histogram h;
  Rng rng(42);
  std::vector<uint64_t> values;
  for (int i = 0; i < 20'000; ++i) {
    const double exp = 4.0 + rng.NextDouble() * 26.0;  // 2^4 .. 2^30
    values.push_back(static_cast<uint64_t>(std::pow(2.0, exp)));
    h.Record(values.back());
  }
  std::sort(values.begin(), values.end());
  const HistogramSnapshot s = h.Snapshot();
  for (const double q : {0.50, 0.90, 0.95, 0.99}) {
    const uint64_t oracle =
        values[static_cast<size_t>(std::ceil(q * double(values.size()))) - 1];
    const uint64_t est = s.Percentile(q);
    // The estimate must land inside the oracle's bucket (midpoint answer),
    // i.e. within one bucket width ~ 12.5% relative error.
    const uint32_t oracle_bucket = Histogram::BucketOf(oracle);
    EXPECT_GE(est, Histogram::BucketLower(oracle_bucket)) << "q=" << q;
    EXPECT_LE(est, Histogram::BucketUpper(oracle_bucket)) << "q=" << q;
    const double rel =
        std::abs(double(est) - double(oracle)) / double(oracle);
    EXPECT_LE(rel, 0.125 + 1e-9) << "q=" << q;
  }
  // p100 answers from the max's bucket, never past the tracked max.
  const uint32_t max_bucket = Histogram::BucketOf(values.back());
  EXPECT_GE(s.Percentile(1.0), Histogram::BucketLower(max_bucket));
  EXPECT_LE(s.Percentile(1.0), values.back());
}

TEST(Histogram, PercentileEmptyAndSingle) {
  Histogram h;
  EXPECT_EQ(h.Snapshot().Percentile(0.5), 0u);
  h.Record(1000);
  const HistogramSnapshot s = h.Snapshot();
  // One sample: every quantile answers from 1000's bucket [960, 1023],
  // clamped to the tracked max.
  EXPECT_GE(s.Percentile(0.5), 960u);
  EXPECT_LE(s.Percentile(0.5), 1000u);
}

// ---- concurrency: conservation under hammering ----

TEST(Histogram, ConcurrentRecordersConserveTotals) {
  Histogram h;
  Counter recorded;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> workers;
  std::atomic<bool> stop{false};

  // Snapshotters race the recorders; their snapshots must never see a
  // bucket total larger than what has been recorded, and must render
  // without crashing. (Exactness is only promised at quiescence.)
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const HistogramSnapshot s = h.Snapshot();
      uint64_t bucket_total = 0;
      for (const uint64_t c : s.buckets) bucket_total += c;
      EXPECT_LE(bucket_total, uint64_t{kThreads} * kPerThread);
    }
  });
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(rng.Below(1u << 20));
        recorded.Inc();
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_relaxed);
  snapshotter.join();

  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(recorded.Value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(s.count, uint64_t{kThreads} * kPerThread);
  uint64_t bucket_total = 0;
  for (const uint64_t c : s.buckets) bucket_total += c;
  EXPECT_EQ(bucket_total, s.count);
}

TEST(Counter, ConcurrentAddsAreExact) {
  Counter c;
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Inc();
        g.Add(2);
        g.Sub(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.Value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(g.Value(), int64_t{kThreads} * kPerThread);
}

// ---- registry ----

TEST(Registry, NameCollisionAcrossKindsThrows) {
  Registry reg;
  reg.GetCounter("x");
  EXPECT_THROW(reg.GetGauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.GetHistogram("x"), std::invalid_argument);
  reg.GetHistogram("h");
  EXPECT_THROW(reg.GetCounter("h"), std::invalid_argument);
  // Same kind re-interns to the same object.
  EXPECT_EQ(&reg.GetCounter("x"), &reg.GetCounter("x"));
}

TEST(Registry, SnapshotIsSortedAndDeterministic) {
  Registry reg;
  reg.GetCounter("z.last").Add(3);
  reg.GetCounter("a.first").Add(1);
  reg.GetGauge("m.middle").Set(-7);
  reg.GetHistogram("lat").Record(100);

  const MetricsSnapshot s1 = reg.Snapshot();
  const MetricsSnapshot s2 = reg.Snapshot();
  ASSERT_EQ(s1.counters.size(), 2u);
  EXPECT_EQ(s1.counters[0].name, "a.first");
  EXPECT_EQ(s1.counters[1].name, "z.last");
  EXPECT_EQ(s1.ToJson(), s2.ToJson());
  EXPECT_EQ(s1.ToPrometheusText(), s2.ToPrometheusText());

  EXPECT_EQ(s1.FindCounter("a.first")->value, 1u);
  EXPECT_EQ(s1.FindGauge("m.middle")->value, -7);
  EXPECT_EQ(s1.FindHistogram("lat")->count, 1u);
  EXPECT_EQ(s1.FindCounter("nope"), nullptr);

  reg.ResetValues();
  const MetricsSnapshot z = reg.Snapshot();
  EXPECT_EQ(z.FindCounter("z.last")->value, 0u);  // name survives the reset
  EXPECT_EQ(z.FindHistogram("lat")->count, 0u);
}

TEST(Registry, ExportersRenderRegisteredMetrics) {
  Registry reg;
  reg.GetCounter("c.one").Add(5);
  reg.GetGauge("g.depth").Set(3);
  reg.GetHistogram("h.lat_ns").Record(1234);
  const MetricsSnapshot s = reg.Snapshot();

  const std::string json = s.ToJson();
  EXPECT_NE(json.find("\"c.one\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"g.depth\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"h.lat_ns\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\""), std::string::npos) << json;

  const std::string prom = s.ToPrometheusText();
  EXPECT_NE(prom.find("rlc_c_one 5"), std::string::npos) << prom;
  EXPECT_NE(prom.find("rlc_g_depth 3"), std::string::npos) << prom;
  EXPECT_NE(prom.find("rlc_h_lat_ns_count 1"), std::string::npos) << prom;
  EXPECT_NE(prom.find("quantile=\"0.99\""), std::string::npos) << prom;
}

TEST(Registry, GlobalIsStable) {
  Registry& a = Registry::Global();
  Registry& b = Registry::Global();
  EXPECT_EQ(&a, &b);
  Counter& c = a.GetCounter("obs_test.global_probe");
  c.Inc();
  EXPECT_GE(b.Snapshot().FindCounter("obs_test.global_probe")->value, 1u);
}

// ---- kill switch ----

TEST(KillSwitch, PrimitivesAlwaysCount) {
  // The runtime switch gates instrumentation *sites*, not the primitives:
  // functional accounting (ServiceStats) must stay exact with metrics off.
  const bool was = Enabled();
  SetEnabled(false);
  EXPECT_FALSE(Enabled());
  Counter c;
  c.Inc();
  EXPECT_EQ(c.Value(), 1u);
  Histogram h;
  h.Record(10);
  EXPECT_EQ(h.Snapshot().count, 1u);
  SetEnabled(true);
  EXPECT_TRUE(Enabled() == kMetricsCompiledIn);
  SetEnabled(was);
}

TEST(KillSwitch, ScopedSpanDisarmedWhenDisabled) {
  const bool was = Enabled();
  Histogram h;
  SetEnabled(false);
  {
    ScopedSpan span(h, "off");
  }
  EXPECT_EQ(h.Snapshot().count, 0u);
  SetEnabled(true);
  {
    ScopedSpan span(h, "on");
  }
  EXPECT_EQ(h.Snapshot().count, kMetricsCompiledIn ? 1u : 0u);
  SetEnabled(was);
}

// ---- span ring ----

TEST(SpanRing, RecordsAndFormats) {
  SpanRing& ring = SpanRing::Global();
  const uint64_t before = ring.total_recorded();
  ring.Record("obs_test.span", 123, 456);
  EXPECT_EQ(ring.total_recorded(), before + 1);
  const std::vector<SpanEvent> recent = ring.Recent(8);
  ASSERT_FALSE(recent.empty());
  bool found = false;
  for (const SpanEvent& e : recent) {
    found = found || std::string(e.name) == "obs_test.span";
  }
  EXPECT_TRUE(found);
  EXPECT_NE(DumpRecentSpans(8).find("obs_test.span"), std::string::npos);
}

TEST(SpanRing, ConcurrentRecordersKeepTotal) {
  SpanRing& ring = SpanRing::Global();
  const uint64_t before = ring.total_recorded();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> workers;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      // Torn events are acceptable; reading must just be race-free.
      (void)ring.Recent(64);
    }
  });
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        ring.Record("obs_test.hammer", static_cast<uint64_t>(i), 1);
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(ring.total_recorded(), before + uint64_t{kThreads} * kPerThread);
}

}  // namespace
}  // namespace rlc::obs
