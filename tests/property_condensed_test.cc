// Property tests for Theorem 2 (the condensed property, Definition 5):
// with all pruning rules active, no entry (s,L) ∈ Lin(t) (or (t,L) ∈
// Lout(s)) may be derivable through a common hub via Case 1. Also checks
// that pruning monotonically shrinks the index and that disabling rules
// leaves a super-set index.

#include <gtest/gtest.h>

#include "rlc/core/indexer.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/graph/paper_graphs.h"
#include "rlc/util/rng.h"

namespace rlc {
namespace {

DiGraph RandomGraph(VertexId n, uint64_t m, Label labels, uint64_t seed,
                    bool ba = false) {
  Rng rng(seed);
  auto edges = ba ? BarabasiAlbertEdges(n, static_cast<uint32_t>(m), rng)
                  : ErdosRenyiEdges(n, m, rng);
  AssignZipfLabels(&edges, labels, 2.0, rng);
  return DiGraph(n, std::move(edges), labels);
}

// Checks Definition 5 for every entry of the index. An entry (s,L) ∈ Lin(t)
// (or (t,L) ∈ Lout(s)) is redundant when a Case-1 witness pair
// (u,L) ∈ Lout(s) ∧ (u,L) ∈ Lin(t) exists *other than the entry itself*:
// pairs through u == s (resp. u == t) reuse the tested entry as one half
// (together with a self-cycle entry, e.g. (v1,l1) ∈ Lout(v1) in the paper's
// own Table II) and do not make it removable.
void ExpectCondensed(const DiGraph& g, const RlcIndex& index) {
  for (VertexId t = 0; t < g.num_vertices(); ++t) {
    for (const IndexEntry& e : index.Lin(t)) {
      const VertexId s = index.VertexOfAid(e.hub_aid);
      if (s == t) continue;  // self entries have no two-sided witness issue
      for (const IndexEntry& out_e : index.Lout(s)) {
        if (out_e.mr != e.mr) continue;
        if (index.VertexOfAid(out_e.hub_aid) == s) continue;  // degenerate
        EXPECT_FALSE(index.HasInEntry(t, out_e.hub_aid, e.mr))
            << "redundant Lin entry: t=" << t << " hub s=" << s << " via u_aid="
            << out_e.hub_aid << " mr=" << index.mr_table().Get(e.mr).ToString();
      }
    }
    for (const IndexEntry& e : index.Lout(t)) {
      const VertexId target = index.VertexOfAid(e.hub_aid);
      if (target == t) continue;
      for (const IndexEntry& out_e : index.Lout(t)) {
        if (out_e.mr != e.mr || out_e.hub_aid == e.hub_aid) continue;
        if (index.VertexOfAid(out_e.hub_aid) == target) continue;  // degenerate
        EXPECT_FALSE(index.HasInEntry(target, out_e.hub_aid, e.mr))
            << "redundant Lout entry: s=" << t << " hub t=" << target
            << " via u_aid=" << out_e.hub_aid;
      }
    }
  }
}

TEST(CondensedTest, Fig2IndexIsCondensed) {
  const DiGraph g = BuildFig2Graph();
  const RlcIndex index = BuildRlcIndex(g, 2);
  ExpectCondensed(g, index);
}

class CondensedSweepTest : public ::testing::TestWithParam<
                               std::tuple<int /*seed*/, int /*k*/, bool /*ba*/>> {};

TEST_P(CondensedSweepTest, IndexIsCondensed) {
  const auto [seed, k, ba] = GetParam();
  const DiGraph g = ba ? RandomGraph(100, 3, 3, 400 + seed, true)
                       : RandomGraph(100, 400, 3, 400 + seed);
  const RlcIndex index = BuildRlcIndex(g, static_cast<uint32_t>(k));
  ExpectCondensed(g, index);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CondensedSweepTest,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(1, 2, 3),
                                            ::testing::Bool()));

TEST(PruningEffectTest, RulesShrinkTheIndex) {
  const DiGraph g = RandomGraph(150, 600, 3, 99);

  auto build = [&](bool pr1, bool pr2, bool pr3) {
    IndexerOptions options;
    options.k = 2;
    options.pr1 = pr1;
    options.pr2 = pr2;
    options.pr3 = pr3;
    RlcIndexBuilder builder(g, options);
    return builder.Build().NumEntries();
  };

  const uint64_t all_on = build(true, true, true);
  const uint64_t no_pr3 = build(true, true, false);
  const uint64_t no_pr1 = build(false, true, false);
  const uint64_t none = build(false, false, false);

  // PR3 only prunes traversal, not recorded entries (the entries it skips
  // are exactly those PR1/PR2 would reject), so entry counts match.
  EXPECT_EQ(all_on, no_pr3);
  // Dropping PR1 (and with it snapshot-based dedup) must not shrink the
  // index; in practice it grows substantially.
  EXPECT_GE(no_pr1, all_on);
  EXPECT_GE(none, no_pr1 / 2);  // sanity: none is in the same ballpark
  EXPECT_GT(none, all_on);
}

TEST(PruningEffectTest, Pr2AloneKeepsHalfMatrixShape) {
  // With only PR2, every entry's hub precedes the vertex in access order.
  const DiGraph g = RandomGraph(60, 240, 3, 7);
  IndexerOptions options;
  options.k = 2;
  options.pr1 = false;
  options.pr3 = false;
  RlcIndexBuilder builder(g, options);
  const RlcIndex index = builder.Build();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const IndexEntry& e : index.Lout(v)) {
      EXPECT_LE(e.hub_aid, index.AccessId(v));
    }
    for (const IndexEntry& e : index.Lin(v)) {
      EXPECT_LE(e.hub_aid, index.AccessId(v));
    }
  }
}

TEST(PruningEffectTest, StatsAccountForPrunes) {
  const DiGraph g = RandomGraph(80, 320, 3, 13);
  IndexerOptions options;
  options.k = 2;
  RlcIndexBuilder builder(g, options);
  const RlcIndex index = builder.Build();
  const IndexerStats& s = builder.stats();
  EXPECT_EQ(s.entries_inserted, index.NumEntries());
  EXPECT_GT(s.pruned_pr1, 0u);
  EXPECT_GT(s.pruned_pr2, 0u);
  EXPECT_EQ(s.pruned_duplicate, 0u);  // PR1 active -> dup path unused
}

}  // namespace
}  // namespace rlc
