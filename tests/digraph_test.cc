// Unit tests for the CSR digraph and the builder.

#include "rlc/graph/digraph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "rlc/graph/graph_builder.h"

namespace rlc {
namespace {

TEST(DiGraphTest, EmptyGraph) {
  const DiGraph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.num_labels(), 0u);
}

TEST(DiGraphTest, BasicAdjacency) {
  const DiGraph g(3, {{0, 1, 0}, {0, 2, 1}, {1, 2, 0}, {2, 0, 2}}, 3);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.num_labels(), 3u);

  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(2), 2u);
  EXPECT_EQ(g.OutDegree(2), 1u);
  EXPECT_EQ(g.InDegree(0), 1u);

  const auto out0 = g.OutEdges(0);
  ASSERT_EQ(out0.size(), 2u);
  EXPECT_EQ(out0[0], (LabeledNeighbor{1, 0}));  // sorted by (label, dst)
  EXPECT_EQ(out0[1], (LabeledNeighbor{2, 1}));

  const auto in2 = g.InEdges(2);
  ASSERT_EQ(in2.size(), 2u);
  EXPECT_EQ(in2[0], (LabeledNeighbor{1, 0}));
  EXPECT_EQ(in2[1], (LabeledNeighbor{0, 1}));
}

TEST(DiGraphTest, LabelInference) {
  const DiGraph g(2, {{0, 1, 7}});
  EXPECT_EQ(g.num_labels(), 8u);  // max label + 1
}

TEST(DiGraphTest, NumLabelsOverride) {
  const DiGraph g(2, {{0, 1, 0}}, 5);
  EXPECT_EQ(g.num_labels(), 5u);
}

TEST(DiGraphTest, RejectsOutOfRangeEdges) {
  EXPECT_THROW(DiGraph(2, {{0, 2, 0}}), std::invalid_argument);
  EXPECT_THROW(DiGraph(2, {{5, 0, 0}}), std::invalid_argument);
}

TEST(DiGraphTest, DedupParallelEdges) {
  const std::vector<Edge> edges = {{0, 1, 0}, {0, 1, 0}, {0, 1, 1}};
  const DiGraph deduped(2, edges, 2, /*dedup_parallel=*/true);
  EXPECT_EQ(deduped.num_edges(), 2u);
  const DiGraph kept(2, edges, 2, /*dedup_parallel=*/false);
  EXPECT_EQ(kept.num_edges(), 3u);
}

TEST(DiGraphTest, SelfLoops) {
  const DiGraph g(2, {{0, 0, 0}, {0, 1, 1}}, 2);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(0), 1u);
  EXPECT_TRUE(g.HasEdge(0, 0, 0));
}

TEST(DiGraphTest, HasEdge) {
  const DiGraph g(3, {{0, 1, 0}, {1, 2, 1}}, 2);
  EXPECT_TRUE(g.HasEdge(0, 1, 0));
  EXPECT_FALSE(g.HasEdge(0, 1, 1));
  EXPECT_FALSE(g.HasEdge(1, 0, 0));
  EXPECT_THROW(g.HasEdge(0, 9, 0), std::invalid_argument);
}

TEST(DiGraphTest, LabelRangeLookup) {
  const DiGraph g(4, {{0, 1, 0}, {0, 2, 0}, {0, 3, 1}, {1, 0, 1}}, 2);
  const auto zeros = g.OutEdgesWithLabel(0, 0);
  ASSERT_EQ(zeros.size(), 2u);
  EXPECT_EQ(zeros[0].v, 1u);
  EXPECT_EQ(zeros[1].v, 2u);
  const auto ones = g.OutEdgesWithLabel(0, 1);
  ASSERT_EQ(ones.size(), 1u);
  EXPECT_EQ(ones[0].v, 3u);
  EXPECT_TRUE(g.OutEdgesWithLabel(1, 0).empty());
  const auto in_ones = g.InEdgesWithLabel(0, 1);
  ASSERT_EQ(in_ones.size(), 1u);
  EXPECT_EQ(in_ones[0].v, 1u);
}

TEST(DiGraphTest, ToEdgeListRoundTrip) {
  std::vector<Edge> edges = {{2, 0, 1}, {0, 1, 0}, {1, 2, 2}};
  const DiGraph g(3, edges, 3);
  auto out = g.ToEdgeList();
  std::sort(edges.begin(), edges.end());
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, edges);
}

TEST(DiGraphTest, MemoryBytesNonZero) {
  const DiGraph g(3, {{0, 1, 0}});
  EXPECT_GT(g.MemoryBytes(), 0u);
}

TEST(DiGraphTest, NamesRequireCorrectCount) {
  DiGraph g(2, {{0, 1, 0}});
  EXPECT_THROW(g.SetVertexNames({"a"}), std::invalid_argument);
  g.SetVertexNames({"a", "b"});
  EXPECT_EQ(g.VertexName(1), "b");
  EXPECT_EQ(*g.FindVertex("a"), 0u);
  EXPECT_FALSE(g.FindVertex("zzz").has_value());
}

TEST(GraphBuilderTest, NamedConstruction) {
  GraphBuilder b;
  b.AddEdge("a", "b", "x");
  b.AddEdge("b", "c", "y");
  b.AddEdge("a", "c", "x");
  const DiGraph g = b.Build();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.num_labels(), 2u);
  EXPECT_TRUE(g.has_vertex_names());
  EXPECT_TRUE(g.has_label_names());
  EXPECT_TRUE(g.HasEdge(*g.FindVertex("a"), *g.FindVertex("c"), *g.FindLabel("x")));
  EXPECT_EQ(g.LabelName(*g.FindLabel("y")), "y");
}

TEST(GraphBuilderTest, IdConstructionGrowsVertexCount) {
  GraphBuilder b;
  b.AddEdge(0, 5, 1);
  const DiGraph g = b.Build();
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.num_labels(), 2u);
  EXPECT_FALSE(g.has_vertex_names());
}

TEST(GraphBuilderTest, VertexInterningIsStable) {
  GraphBuilder b;
  const VertexId a1 = b.Vertex("a");
  const VertexId bb = b.Vertex("b");
  const VertexId a2 = b.Vertex("a");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, bb);
}

TEST(GraphBuilderTest, ClearResets) {
  GraphBuilder b;
  b.AddEdge("a", "b", "x");
  b.Clear();
  EXPECT_EQ(b.num_vertices(), 0u);
  b.AddEdge("c", "d", "y");
  const DiGraph g = b.Build();
  EXPECT_EQ(g.num_vertices(), 2u);
  EXPECT_TRUE(g.FindVertex("a") == std::nullopt);
}

TEST(GraphBuilderTest, DedupControl) {
  GraphBuilder b;
  b.AddEdge(0, 1, 0);
  b.AddEdge(0, 1, 0);
  EXPECT_EQ(b.Build(/*dedup_parallel=*/false).num_edges(), 2u);
}

}  // namespace
}  // namespace rlc
