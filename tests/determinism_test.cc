// Determinism and reuse contracts: rebuilding the same graph must yield a
// bit-identical index; const query paths must be safe under concurrent use.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "rlc/baselines/online_search.h"
#include "rlc/core/indexer.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/util/rng.h"
#include "rlc/workload/query_gen.h"

namespace rlc {
namespace {

DiGraph TestGraph(uint64_t seed) {
  Rng rng(seed);
  auto edges = BarabasiAlbertEdges(150, 3, rng);
  AssignZipfLabels(&edges, 4, 2.0, rng);
  return DiGraph(150, std::move(edges), 4);
}

void ExpectIdentical(const RlcIndex& a, const RlcIndex& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.mr_table().size(), b.mr_table().size());
  for (MrId id = 0; id < a.mr_table().size(); ++id) {
    ASSERT_EQ(a.mr_table().Get(id), b.mr_table().Get(id));
  }
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    ASSERT_EQ(a.AccessId(v), b.AccessId(v));
    ASSERT_TRUE(std::ranges::equal(a.Lout(v), b.Lout(v)))
        << "Lout mismatch at v=" << v;
    ASSERT_TRUE(std::ranges::equal(a.Lin(v), b.Lin(v)))
        << "Lin mismatch at v=" << v;
  }
}

TEST(DeterminismTest, RepeatedBuildsAreBitIdentical) {
  const DiGraph g = TestGraph(77);
  const RlcIndex a = BuildRlcIndex(g, 2);
  const RlcIndex b = BuildRlcIndex(g, 2);
  ExpectIdentical(a, b);
}

TEST(DeterminismTest, LazyBuildsAreBitIdentical) {
  const DiGraph g = TestGraph(78);
  IndexerOptions options;
  options.k = 2;
  options.strategy = KbsStrategy::kLazy;
  RlcIndexBuilder ba(g, options);
  RlcIndexBuilder bb(g, options);
  const RlcIndex a = ba.Build();
  const RlcIndex b = bb.Build();
  ExpectIdentical(a, b);
}

TEST(DeterminismTest, EdgeInsertionOrderIrrelevant) {
  // The CSR sorts adjacency, so shuffling the input edge list must not
  // change the built index.
  const DiGraph g = TestGraph(79);
  auto edges = g.ToEdgeList();
  Rng rng(5);
  for (size_t i = edges.size(); i > 1; --i) {
    std::swap(edges[i - 1], edges[rng.Below(i)]);
  }
  const DiGraph shuffled(g.num_vertices(), std::move(edges), g.num_labels());
  ExpectIdentical(BuildRlcIndex(g, 2), BuildRlcIndex(shuffled, 2));
}

TEST(ConcurrencyTest, ParallelConstQueriesAreSafe) {
  // RlcIndex::Query is const and stateless; hammer it from many threads and
  // verify every thread sees oracle-consistent answers.
  const DiGraph g = TestGraph(80);
  const RlcIndex index = BuildRlcIndex(g, 2);

  WorkloadOptions wopts;
  wopts.count = 100;
  wopts.max_attempts = 500'000;
  wopts.fill_true_with_walks = true;
  const Workload w = GenerateWorkload(g, wopts);

  std::atomic<int> mismatches{0};
  auto worker = [&] {
    for (int round = 0; round < 50; ++round) {
      for (const auto* set : {&w.true_queries, &w.false_queries}) {
        for (const RlcQuery& q : *set) {
          if (index.Query(q.s, q.t, q.constraint) != q.expected) {
            mismatches.fetch_add(1);
          }
        }
      }
    }
  };
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrencyTest, ParallelIndexBuildsAreIndependent) {
  // Separate builders on separate graphs must not interfere.
  std::vector<RlcIndex> results;
  results.reserve(4);
  std::vector<std::thread> threads;
  std::vector<std::optional<RlcIndex>> slots(4);
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([i, &slots] {
      const DiGraph g = TestGraph(90 + static_cast<uint64_t>(i % 2));
      slots[static_cast<size_t>(i)] = BuildRlcIndex(g, 2);
    });
  }
  for (auto& t : threads) t.join();
  // Builders with the same seed graph agree; different seeds differ.
  ExpectIdentical(*slots[0], *slots[2]);
  ExpectIdentical(*slots[1], *slots[3]);
  EXPECT_NE(slots[0]->NumEntries(), 0u);
}

}  // namespace
}  // namespace rlc
