// Property suite for Theorem 3 (soundness and completeness of the RLC
// index): across random graph families, recursion bounds and seeds, the
// index must answer exactly like the NFA-guided online oracle for
//  (a) uniformly sampled queries, and
//  (b) "path-derived" queries (constraints read off actual walks, which are
//      biased towards true answers and exercise completeness).
// The ETC baseline and the PR-ablation builds are held to the same bar.

#include <gtest/gtest.h>

#include <tuple>

#include "rlc/baselines/etc_index.h"
#include "rlc/baselines/online_search.h"
#include "rlc/core/indexer.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/util/rng.h"
#include "rlc/workload/query_gen.h"

namespace rlc {
namespace {

struct GraphConfig {
  bool ba;  // Barabási–Albert vs Erdős–Rényi
  VertexId n;
  uint64_t m;       // ER edge count / BA edges-per-vertex
  Label labels;
  uint64_t loops;   // injected self-loops
};

DiGraph MakeGraph(const GraphConfig& cfg, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges =
      cfg.ba ? BarabasiAlbertEdges(cfg.n, static_cast<uint32_t>(cfg.m), rng)
             : ErdosRenyiEdges(cfg.n, cfg.m, rng);
  if (cfg.loops > 0) AddRandomSelfLoops(&edges, cfg.n, cfg.loops, rng);
  AssignZipfLabels(&edges, cfg.labels, 2.0, rng);
  return DiGraph(cfg.n, std::move(edges), cfg.labels);
}

// Reads the label sequence of a random walk of the given length and returns
// (start, end, MR) — if the MR fits in k it is a guaranteed-true query.
struct WalkQuery {
  VertexId s, t;
  LabelSeq mr;
  bool valid;
};

WalkQuery SampleWalkQuery(const DiGraph& g, uint32_t max_len, uint32_t k,
                          Rng& rng) {
  WalkQuery wq{0, 0, {}, false};
  if (g.num_vertices() == 0) return wq;
  const VertexId start = static_cast<VertexId>(rng.Below(g.num_vertices()));
  std::vector<Label> word;
  VertexId v = start;
  const uint32_t len = 1 + static_cast<uint32_t>(rng.Below(max_len));
  for (uint32_t i = 0; i < len; ++i) {
    const auto out = g.OutEdges(v);
    if (out.empty()) break;
    const auto& nb = out[rng.Below(out.size())];
    word.push_back(nb.label);
    v = nb.v;
  }
  if (word.empty()) return wq;
  // MinimumRepeat guarantees word == mr^z, so the walk witnesses (s, v, mr+)
  // whenever the MR fits the recursion bound.
  const auto mr = MinimumRepeat(word);
  if (mr.size() > k) return wq;
  wq.s = start;
  wq.t = v;
  wq.mr = LabelSeq(std::span<const Label>(mr));
  wq.valid = true;
  return wq;
}

class SoundnessTest : public ::testing::TestWithParam<
                          std::tuple<int /*cfg*/, int /*k*/, int /*seed*/>> {
 protected:
  static GraphConfig Config(int id) {
    switch (id) {
      case 0: return {false, 60, 240, 3, 4};    // small dense ER + loops
      case 1: return {false, 200, 500, 4, 0};   // sparse ER
      case 2: return {true, 80, 3, 3, 2};       // BA, skewed, loops
      case 3: return {true, 150, 2, 6, 0};      // BA, more labels
      case 4: return {false, 30, 250, 2, 6};    // tiny very dense, 2 labels
      default: return {false, 50, 100, 3, 0};
    }
  }
};

TEST_P(SoundnessTest, IndexAgreesWithOracleEverywhere) {
  const auto [cfg_id, k, seed] = GetParam();
  const GraphConfig cfg = Config(cfg_id);
  const DiGraph g = MakeGraph(cfg, 1000 + seed);

  const RlcIndex index = BuildRlcIndex(g, static_cast<uint32_t>(k));
  OnlineSearcher oracle(g);
  Rng rng(77 + seed);

  int true_seen = 0;
  // Uniform random queries.
  for (int trial = 0; trial < 400; ++trial) {
    const auto s = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const auto t = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const uint32_t len = 1 + static_cast<uint32_t>(rng.Below(k));
    const LabelSeq c = RandomPrimitiveSeq(len, g.num_labels(), rng);
    const bool expected = oracle.QueryBfsOnce(s, t, PathConstraint::RlcPlus(c));
    true_seen += expected;
    ASSERT_EQ(index.Query(s, t, c), expected)
        << "cfg=" << cfg_id << " k=" << k << " s=" << s << " t=" << t
        << " c=" << c.ToString();
  }
  // Path-derived queries (guaranteed true; stress completeness).
  for (int trial = 0; trial < 400; ++trial) {
    const WalkQuery wq =
        SampleWalkQuery(g, 3 * static_cast<uint32_t>(k), static_cast<uint32_t>(k), rng);
    if (!wq.valid) continue;
    ASSERT_TRUE(index.Query(wq.s, wq.t, wq.mr))
        << "walk-derived query must be true: s=" << wq.s << " t=" << wq.t
        << " c=" << wq.mr.ToString();
    ++true_seen;
  }
  EXPECT_GT(true_seen, 0) << "test vacuous: no true queries sampled";
}

TEST_P(SoundnessTest, EtcAgreesWithOracle) {
  const auto [cfg_id, k, seed] = GetParam();
  const DiGraph g = MakeGraph(Config(cfg_id), 1000 + seed);

  const EtcIndex etc = EtcIndex::Build(g, static_cast<uint32_t>(k));
  OnlineSearcher oracle(g);
  Rng rng(901 + seed);
  for (int trial = 0; trial < 250; ++trial) {
    const auto s = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const auto t = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const uint32_t len = 1 + static_cast<uint32_t>(rng.Below(k));
    const LabelSeq c = RandomPrimitiveSeq(len, g.num_labels(), rng);
    const bool expected = oracle.QueryBfsOnce(s, t, PathConstraint::RlcPlus(c));
    ASSERT_EQ(etc.Query(s, t, c), expected)
        << "ETC mismatch: s=" << s << " t=" << t << " c=" << c.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SoundnessTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(0, 1)));

// The pruning-rule ablations must preserve correctness (they only change
// index size / build time). PR3 is auto-disabled when PR1/PR2 are off.
class AblationSoundnessTest
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool>> {};

TEST_P(AblationSoundnessTest, PrunedVariantsStayCorrect) {
  const auto [pr1, pr2, pr3] = GetParam();
  const DiGraph g = MakeGraph({false, 70, 280, 3, 3}, 555);

  IndexerOptions options;
  options.k = 2;
  options.pr1 = pr1;
  options.pr2 = pr2;
  options.pr3 = pr3;
  RlcIndexBuilder builder(g, options);
  const RlcIndex index = builder.Build();

  OnlineSearcher oracle(g);
  Rng rng(42);
  for (int trial = 0; trial < 300; ++trial) {
    const auto s = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const auto t = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const LabelSeq c = RandomPrimitiveSeq(1 + (trial % 2), g.num_labels(), rng);
    ASSERT_EQ(index.Query(s, t, c),
              oracle.QueryBfsOnce(s, t, PathConstraint::RlcPlus(c)))
        << "pr1=" << pr1 << " pr2=" << pr2 << " pr3=" << pr3;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AblationSoundnessTest,
                         ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                                            ::testing::Bool()));

// Degenerate graphs.
TEST(SoundnessEdgeCasesTest, EmptyGraph) {
  const DiGraph g(0, {});
  const RlcIndex index = BuildRlcIndex(g, 2);
  EXPECT_EQ(index.NumEntries(), 0u);
}

TEST(SoundnessEdgeCasesTest, SingleVertexNoEdges) {
  const DiGraph g(1, {});
  const RlcIndex index = BuildRlcIndex(g, 2);
  EXPECT_EQ(index.NumEntries(), 0u);
  EXPECT_FALSE(index.Query(0, 0, LabelSeq{0}));
}

TEST(SoundnessEdgeCasesTest, SelfLoopOnly) {
  const DiGraph g(1, {{0, 0, 0}}, 2);
  const RlcIndex index = BuildRlcIndex(g, 2);
  EXPECT_TRUE(index.Query(0, 0, LabelSeq{0}));
  EXPECT_FALSE(index.Query(0, 0, LabelSeq{1}));
  EXPECT_FALSE(index.Query(0, 0, LabelSeq{0, 1}));
}

TEST(SoundnessEdgeCasesTest, TwoVertexMultiEdge) {
  // Parallel edges with different labels plus a back edge.
  const DiGraph g(2, {{0, 1, 0}, {0, 1, 1}, {1, 0, 0}}, 2);
  const RlcIndex index = BuildRlcIndex(g, 2);
  EXPECT_TRUE(index.Query(0, 1, LabelSeq{0}));
  EXPECT_TRUE(index.Query(0, 1, LabelSeq{1}));
  EXPECT_TRUE(index.Query(1, 0, LabelSeq{0}));
  EXPECT_TRUE(index.Query(0, 0, LabelSeq{0}));       // 0->1->0 on label 0
  EXPECT_TRUE(index.Query(1, 1, LabelSeq{0}));
  EXPECT_TRUE(index.Query(1, 1, LabelSeq{0, 1}));    // 1-0->0-1->1
  EXPECT_FALSE(index.Query(1, 0, LabelSeq{1}));
  EXPECT_FALSE(index.Query(0, 0, LabelSeq{1}));
}

TEST(SoundnessEdgeCasesTest, DisconnectedComponents) {
  const DiGraph g(4, {{0, 1, 0}, {2, 3, 0}}, 1);
  const RlcIndex index = BuildRlcIndex(g, 2);
  EXPECT_TRUE(index.Query(0, 1, LabelSeq{0}));
  EXPECT_TRUE(index.Query(2, 3, LabelSeq{0}));
  EXPECT_FALSE(index.Query(0, 3, LabelSeq{0}));
  EXPECT_FALSE(index.Query(2, 1, LabelSeq{0}));
}

TEST(SoundnessEdgeCasesTest, LongCycleNeedsManyKernelLaps) {
  // Directed 6-cycle labeled (a b a b a b): (a b)+ holds around the cycle.
  std::vector<Edge> edges;
  for (VertexId v = 0; v < 6; ++v) {
    edges.push_back({v, static_cast<VertexId>((v + 1) % 6), static_cast<Label>(v % 2)});
  }
  const DiGraph g(6, std::move(edges), 2);
  const RlcIndex index = BuildRlcIndex(g, 2);
  OnlineSearcher oracle(g);
  for (VertexId s = 0; s < 6; ++s) {
    for (VertexId t = 0; t < 6; ++t) {
      for (const LabelSeq& c :
           {LabelSeq{0}, LabelSeq{1}, LabelSeq{0, 1}, LabelSeq{1, 0}}) {
        ASSERT_EQ(index.Query(s, t, c),
                  oracle.QueryBfsOnce(s, t, PathConstraint::RlcPlus(c)))
            << "s=" << s << " t=" << t << " c=" << c.ToString();
      }
    }
  }
}

}  // namespace
}  // namespace rlc
