// Tests for the Table III dataset surrogate registry.

#include "rlc/graph/datasets.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "rlc/graph/stats.h"

namespace rlc {
namespace {

TEST(DatasetsTest, RegistryMatchesTableIII) {
  const auto& specs = TableIIIDatasets();
  ASSERT_EQ(specs.size(), 13u);
  EXPECT_EQ(specs.front().name, "AD");
  EXPECT_EQ(specs.back().name, "WF");
  // Spot-check a few published values.
  const auto wn = FindDataset("WN");
  ASSERT_TRUE(wn.has_value());
  EXPECT_EQ(wn->full_name, "Web-NotreDame");
  EXPECT_EQ(wn->num_vertices, 325'000u);
  EXPECT_EQ(wn->num_edges, 1'400'000u);
  EXPECT_EQ(wn->num_labels, 8u);
  EXPECT_EQ(wn->loop_count, 27'000u);
  const auto lj = FindDataset("LiveJournal");
  ASSERT_TRUE(lj.has_value());
  EXPECT_EQ(lj->num_labels, 50u);
  // Sorted by |E| as in the paper.
  for (size_t i = 1; i < specs.size(); ++i) {
    EXPECT_LE(specs[i - 1].num_edges, specs[i].num_edges);
  }
}

TEST(DatasetsTest, UnknownNameReturnsNullopt) {
  EXPECT_FALSE(FindDataset("nope").has_value());
}

TEST(DatasetsTest, SurrogateMatchesScaledShape) {
  const auto spec = *FindDataset("AD");
  const double scale = 0.2;
  const DiGraph g = MakeSurrogate(spec, scale, 42);
  // |V| and |E| within a factor ~2 of the scaled spec (BA quantizes d).
  EXPECT_NEAR(static_cast<double>(g.num_vertices()), spec.num_vertices * scale,
              spec.num_vertices * scale * 0.1);
  EXPECT_GT(g.num_edges(), spec.num_edges * scale / 2);
  EXPECT_LT(g.num_edges(), spec.num_edges * scale * 2);
  EXPECT_EQ(g.num_labels(), spec.num_labels);
  // Loop count scales too (AD has 4K loops at full size).
  const uint64_t loops = CountSelfLoops(g);
  EXPECT_GT(loops, 0u);
  EXPECT_NEAR(static_cast<double>(loops), spec.loop_count * scale,
              spec.loop_count * scale * 0.5 + 2);
}

TEST(DatasetsTest, SurrogateDeterministicInSeed) {
  const auto spec = *FindDataset("EP");
  const DiGraph a = MakeSurrogate(spec, 0.01, 7);
  const DiGraph b = MakeSurrogate(spec, 0.01, 7);
  EXPECT_EQ(a.ToEdgeList(), b.ToEdgeList());
  const DiGraph c = MakeSurrogate(spec, 0.01, 8);
  EXPECT_NE(a.ToEdgeList(), c.ToEdgeList());
}

TEST(DatasetsTest, ErSurrogate) {
  // The ER path of MakeSurrogate, exercised with a custom spec.
  const DatasetSpec spec{"XX", "CustomUniform", 200'000, 600'000, 5,
                         100,  true,            TopologyModel::kErdosRenyi};
  const DiGraph g = MakeSurrogate(spec, 0.01, 3);
  EXPECT_EQ(g.num_vertices(), 2000u);
  EXPECT_EQ(g.num_labels(), 5u);
  EXPECT_GT(g.num_edges(), 5900u);
}

TEST(DatasetsTest, ScaleValidation) {
  const auto spec = *FindDataset("AD");
  EXPECT_THROW(MakeSurrogate(spec, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(MakeSurrogate(spec, 1.5, 1), std::invalid_argument);
}

TEST(DatasetsTest, ScaleFromEnv) {
  unsetenv("RLC_SCALE");
  EXPECT_DOUBLE_EQ(ScaleFromEnv(0.25), 0.25);
  setenv("RLC_SCALE", "0.5", 1);
  EXPECT_DOUBLE_EQ(ScaleFromEnv(0.25), 0.5);
  setenv("RLC_SCALE", "7.0", 1);  // clamped to 1.0
  EXPECT_DOUBLE_EQ(ScaleFromEnv(0.25), 1.0);
  setenv("RLC_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(ScaleFromEnv(0.25), 0.25);
  unsetenv("RLC_SCALE");
}

}  // namespace
}  // namespace rlc
