// Tests for text and binary graph I/O.

#include "rlc/graph/edge_list_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "rlc/graph/graph_builder.h"

namespace rlc {
namespace {

TEST(EdgeListTextTest, NumericThreeColumn) {
  std::istringstream in("# comment\n0 1 0\n1 2 1\n\n2 0 0\n");
  const DiGraph g = ReadEdgeListText(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.num_labels(), 2u);
  EXPECT_TRUE(g.HasEdge(1, 2, 1));
}

TEST(EdgeListTextTest, NumericTwoColumnDefaultsLabelZero) {
  std::istringstream in("0 1\n1 2\n");
  const DiGraph g = ReadEdgeListText(in);
  EXPECT_EQ(g.num_labels(), 1u);
  EXPECT_TRUE(g.HasEdge(0, 1, 0));
}

TEST(EdgeListTextTest, SnapStyleCommentsAndGaps) {
  // SNAP files use '#' headers and may skip vertex ids.
  std::istringstream in("# Nodes: 5 Edges: 2\n0 4 1\n2 3 0\n");
  const DiGraph g = ReadEdgeListText(in);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.OutDegree(1), 0u);
}

TEST(EdgeListTextTest, NamedTokens) {
  std::istringstream in("alice bob knows\nbob carol worksFor\n");
  const DiGraph g = ReadEdgeListText(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_TRUE(g.has_vertex_names());
  EXPECT_TRUE(
      g.HasEdge(*g.FindVertex("alice"), *g.FindVertex("bob"), *g.FindLabel("knows")));
}

TEST(EdgeListTextTest, RejectsMixedNumericAndNamed) {
  std::istringstream in("0 1 0\nalice bob knows\n");
  EXPECT_THROW(ReadEdgeListText(in), std::runtime_error);
}

TEST(EdgeListTextTest, RejectsShortLines) {
  std::istringstream in("0\n");
  EXPECT_THROW(ReadEdgeListText(in), std::runtime_error);
}

TEST(EdgeListTextTest, MissingFileThrows) {
  EXPECT_THROW(LoadEdgeListText("/nonexistent/path/graph.txt"), std::runtime_error);
}

TEST(EdgeListTextTest, WriteReadRoundTripNumeric) {
  const DiGraph g(4, {{0, 1, 2}, {1, 2, 0}, {3, 0, 1}}, 3);
  std::stringstream buf;
  WriteEdgeListText(g, buf);
  const DiGraph h = ReadEdgeListText(buf);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  auto a = g.ToEdgeList();
  auto b = h.ToEdgeList();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(EdgeListTextTest, WriteReadRoundTripNamed) {
  GraphBuilder builder;
  builder.AddEdge("a", "b", "x");
  builder.AddEdge("b", "a", "y");
  const DiGraph g = builder.Build();
  std::stringstream buf;
  WriteEdgeListText(g, buf);
  const DiGraph h = ReadEdgeListText(buf);
  EXPECT_TRUE(h.has_vertex_names());
  EXPECT_TRUE(
      h.HasEdge(*h.FindVertex("b"), *h.FindVertex("a"), *h.FindLabel("y")));
}

TEST(GraphBinaryTest, RoundTrip) {
  const DiGraph g(5, {{0, 1, 0}, {1, 2, 3}, {4, 4, 1}}, 4);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  WriteGraphBinary(g, buf);
  const DiGraph h = ReadGraphBinary(buf);
  EXPECT_EQ(h.num_vertices(), 5u);
  EXPECT_EQ(h.num_edges(), 3u);
  EXPECT_EQ(h.num_labels(), 4u);
  EXPECT_TRUE(h.HasEdge(4, 4, 1));
}

TEST(GraphBinaryTest, BadMagicRejected) {
  std::stringstream buf;
  buf << "garbage data that is not a graph";
  EXPECT_THROW(ReadGraphBinary(buf), std::runtime_error);
}

TEST(GraphBinaryTest, TruncationRejected) {
  const DiGraph g(3, {{0, 1, 0}, {1, 2, 0}});
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  WriteGraphBinary(g, buf);
  const std::string full = buf.str();
  std::stringstream cut(full.substr(0, full.size() - 5),
                        std::ios::in | std::ios::binary);
  EXPECT_THROW(ReadGraphBinary(cut), std::runtime_error);
}

}  // namespace
}  // namespace rlc
