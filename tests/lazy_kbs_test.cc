// Tests for the lazy KBS strategy (paper §IV): the lazy-built index must be
// exactly as sound and complete as the eager one, and the suffix-form
// kernel decomposition backing it must mirror the prefix form.

#include <gtest/gtest.h>

#include "rlc/baselines/online_search.h"
#include "rlc/core/indexer.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/graph/paper_graphs.h"
#include "rlc/workload/query_gen.h"

namespace rlc {
namespace {

using L = std::vector<Label>;

TEST(SuffixDecompositionTest, MirrorsPrefixForm) {
  // (b a b a b): suffix form = head (b) ∘ (a b)^2.
  const auto kt = DecomposeKernelSuffix(L{1, 0, 1, 0, 1});
  ASSERT_TRUE(kt.has_value());
  EXPECT_EQ(kt->kernel, (L{0, 1}));
  EXPECT_EQ(kt->tail, (L{1}));  // head, a proper suffix of the kernel
  EXPECT_EQ(kt->repetitions, 2u);
}

TEST(SuffixDecompositionTest, PureRepetition) {
  const auto kt = DecomposeKernelSuffix(L{0, 1, 0, 1});
  ASSERT_TRUE(kt.has_value());
  EXPECT_EQ(kt->kernel, (L{0, 1}));
  EXPECT_TRUE(kt->tail.empty());
}

TEST(SuffixDecompositionTest, NoKernel) {
  EXPECT_FALSE(DecomposeKernelSuffix(L{0, 1}).has_value());
  EXPECT_FALSE(DecomposeKernelSuffix(L{0, 1, 1}).has_value());
}

TEST(SuffixDecompositionTest, RandomPropertyHeadIsSuffix) {
  Rng rng(77);
  for (int trial = 0; trial < 3000; ++trial) {
    const size_t n = 2 + rng.Below(10);
    L seq(n);
    for (auto& l : seq) l = static_cast<Label>(rng.Below(2));
    const auto kt = DecomposeKernelSuffix(seq);
    const auto fwd = DecomposeKernel(L(seq.rbegin(), seq.rend()));
    EXPECT_EQ(kt.has_value(), fwd.has_value());
    if (!kt.has_value()) continue;
    EXPECT_TRUE(IsPrimitive(kt->kernel));
    EXPECT_GE(kt->repetitions, 2u);
    // head must be a proper suffix of the kernel...
    ASSERT_LT(kt->tail.size(), kt->kernel.size());
    for (size_t i = 0; i < kt->tail.size(); ++i) {
      EXPECT_EQ(kt->tail[i],
                kt->kernel[kt->kernel.size() - kt->tail.size() + i]);
    }
    // ...and head ∘ kernel^h must reproduce the sequence.
    L recomposed = kt->tail;
    for (uint32_t r = 0; r < kt->repetitions; ++r) {
      recomposed.insert(recomposed.end(), kt->kernel.begin(), kt->kernel.end());
    }
    EXPECT_EQ(recomposed, seq);
  }
}

TEST(LazyKbsTest, Fig2QueriesMatchEager) {
  const DiGraph g = BuildFig2Graph();
  IndexerOptions lazy_options;
  lazy_options.k = 2;
  lazy_options.strategy = KbsStrategy::kLazy;
  RlcIndexBuilder lazy_builder(g, lazy_options);
  const RlcIndex lazy = lazy_builder.Build();
  const RlcIndex eager = BuildRlcIndex(g, 2);

  const Label l1 = *g.FindLabel("l1");
  const Label l2 = *g.FindLabel("l2");
  const Label l3 = *g.FindLabel("l3");
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    for (VertexId t = 0; t < g.num_vertices(); ++t) {
      for (const LabelSeq& c :
           {LabelSeq{l1}, LabelSeq{l2}, LabelSeq{l3}, LabelSeq{l1, l2},
            LabelSeq{l2, l1}, LabelSeq{l2, l3}, LabelSeq{l3, l1}}) {
        ASSERT_EQ(lazy.Query(s, t, c), eager.Query(s, t, c))
            << "s=" << s << " t=" << t << " c=" << c.ToString();
      }
    }
  }
}

class LazyKbsSweepTest
    : public ::testing::TestWithParam<std::tuple<int /*k*/, int /*seed*/,
                                                 bool /*ba*/>> {};

TEST_P(LazyKbsSweepTest, LazyAgreesWithOracle) {
  const auto [k, seed, ba] = GetParam();
  Rng rng(800 + seed);
  auto edges = ba ? BarabasiAlbertEdges(90, 3, rng)
                  : ErdosRenyiEdges(90, 360, rng);
  AssignZipfLabels(&edges, 3, 2.0, rng);
  const DiGraph g(90, std::move(edges), 3);

  IndexerOptions options;
  options.k = static_cast<uint32_t>(k);
  options.strategy = KbsStrategy::kLazy;
  RlcIndexBuilder builder(g, options);
  const RlcIndex index = builder.Build();

  OnlineSearcher oracle(g);
  Rng qrng(55 + seed);
  for (int trial = 0; trial < 300; ++trial) {
    const auto s = static_cast<VertexId>(qrng.Below(g.num_vertices()));
    const auto t = static_cast<VertexId>(qrng.Below(g.num_vertices()));
    const LabelSeq c =
        RandomPrimitiveSeq(1 + static_cast<uint32_t>(qrng.Below(k)),
                           g.num_labels(), qrng);
    ASSERT_EQ(index.Query(s, t, c),
              oracle.QueryBfsOnce(s, t, PathConstraint::RlcPlus(c)))
        << "k=" << k << " s=" << s << " t=" << t << " c=" << c.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LazyKbsSweepTest,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(0, 1),
                                            ::testing::Bool()));

TEST(LazyKbsTest, RejectsOversizedK) {
  const DiGraph g = BuildFig2Graph();
  IndexerOptions options;
  options.k = kMaxK / 2 + 1;  // 2k exceeds the LabelSeq capacity
  options.strategy = KbsStrategy::kLazy;
  EXPECT_THROW(RlcIndexBuilder(g, options), std::invalid_argument);
}

TEST(LazyKbsTest, EagerVisitsFewerSearchStates) {
  // The paper's argument for eager KBS: enumerating sequences of length 2k
  // costs far more states than length k.
  Rng rng(5);
  auto edges = ErdosRenyiEdges(200, 1400, rng);
  AssignZipfLabels(&edges, 4, 2.0, rng);
  const DiGraph g(200, std::move(edges), 4);

  IndexerOptions eager_options;
  eager_options.k = 2;
  RlcIndexBuilder eager_builder(g, eager_options);
  (void)eager_builder.Build();

  IndexerOptions lazy_options;
  lazy_options.k = 2;
  lazy_options.strategy = KbsStrategy::kLazy;
  RlcIndexBuilder lazy_builder(g, lazy_options);
  (void)lazy_builder.Build();

  EXPECT_LT(eager_builder.stats().kernel_search_states,
            lazy_builder.stats().kernel_search_states);
}

}  // namespace
}  // namespace rlc
