// Tests for index introspection (index_stats.h).

#include "rlc/core/index_stats.h"

#include <gtest/gtest.h>

#include "rlc/core/indexer.h"
#include "rlc/graph/paper_graphs.h"

namespace rlc {
namespace {

TEST(IndexStatsTest, Fig2Summary) {
  const DiGraph g = BuildFig2Graph();
  const RlcIndex index = BuildRlcIndex(g, 2);
  const IndexSummary s = Summarize(index);

  EXPECT_EQ(s.num_vertices, 6u);
  EXPECT_EQ(s.k, 2u);
  // Table II: 13 Lout entries and 13 Lin entries.
  EXPECT_EQ(s.out_entries, 13u);
  EXPECT_EQ(s.in_entries, 13u);
  EXPECT_EQ(s.total_entries, 26u);
  EXPECT_EQ(s.memory_bytes, index.MemoryBytes());
  // Distinct MRs in Table II: l1, l2, l3, (l2 l1), (l1 l2), (l2 l3).
  EXPECT_EQ(s.distinct_mrs, 6u);
  // Lout(v3) is the longest out list (4 entries); Lin(v6)/Lin(v5) have 4.
  EXPECT_EQ(s.max_out_list, 4u);
  EXPECT_EQ(s.max_in_list, 4u);
  EXPECT_EQ(s.empty_vertices, 0u);
  // Histogram: 14 single-label entries + 12 two-label entries = 26.
  ASSERT_EQ(s.mr_length_histogram.size(), 2u);
  EXPECT_EQ(s.mr_length_histogram[0] + s.mr_length_histogram[1], 26u);
  EXPECT_GT(s.mr_length_histogram[0], 0u);
  EXPECT_GT(s.mr_length_histogram[1], 0u);
  EXPECT_NEAR(s.avg_out_list, 13.0 / 6.0, 1e-9);
}

TEST(IndexStatsTest, DescribeMentionsKeyNumbers) {
  const DiGraph g = BuildFig2Graph();
  const RlcIndex index = BuildRlcIndex(g, 2);
  const std::string report = Describe(Summarize(index));
  EXPECT_NE(report.find("|V|=6"), std::string::npos);
  EXPECT_NE(report.find("26 total"), std::string::npos);
  EXPECT_NE(report.find("|MR| = 1"), std::string::npos);
  EXPECT_NE(report.find("|MR| = 2"), std::string::npos);
}

TEST(IndexStatsTest, EmptyIndex) {
  const RlcIndex index = BuildRlcIndex(DiGraph(), 3);
  const IndexSummary s = Summarize(index);
  EXPECT_EQ(s.total_entries, 0u);
  EXPECT_EQ(s.empty_vertices, 0u);
  EXPECT_EQ(s.mr_length_histogram.size(), 3u);
  EXPECT_FALSE(Describe(s).empty());
}

}  // namespace
}  // namespace rlc
