// Correctness of the signature-guarded query kernel (rlc_index.h) and the
// raw intersection kernels (util/simd.h):
//
//  * randomized property tests pitting FilterFirstBySecond and every
//    intersection kernel against scalar references / std::set_intersection
//    across length ratios 1:1 → 1:10000, including empty and singleton
//    lists (duplicate-free inputs, as the index guarantees);
//  * bit-identity of the sealed signature-guarded path against the
//    unsignatured and unsealed paths, scalar and grouped, on random ER
//    graphs and the paper's worked example;
//  * eviction accounting of the bounded MrCache;
//  * thread-count independence of the parallel ExecuteBatch.
//
// The whole file is ASan/UBSan-clean (the CI sanitizer job runs it).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "rlc/core/indexer.h"
#include "rlc/core/mr_cache.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/graph/paper_graphs.h"
#include "rlc/serve/query_batch.h"
#include "rlc/util/rng.h"
#include "rlc/util/simd.h"
#include "rlc/workload/query_gen.h"

namespace rlc {
namespace {

std::vector<uint32_t> SortedUnique(size_t n, uint32_t spread, Rng& rng) {
  std::vector<uint32_t> v;
  v.reserve(n);
  uint32_t cur = 0;
  for (size_t i = 0; i < n; ++i) {
    cur += 1 + static_cast<uint32_t>(rng.Below(spread));
    v.push_back(cur);
  }
  return v;
}

bool ReferenceHasCommon(const std::vector<uint32_t>& a,
                        const std::vector<uint32_t>& b) {
  std::vector<uint32_t> both;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(both));
  return !both.empty();
}

TEST(SimdKernelTest, IntersectionMatchesSetIntersectionAcrossRatios) {
  // Length ratios 1:1 up to 1:10000, plus empty and singleton lists. For
  // each shape, sweep overlap densities so both hit and miss outcomes
  // occur, and check every kernel (the selector and the three underlying
  // ones) against std::set_intersection.
  const std::vector<std::pair<size_t, size_t>> shapes = {
      {0, 0},      {0, 100},   {1, 1},     {1, 10000}, {7, 7},
      {100, 100},  {100, 400}, {64, 4096}, {16, 8192}, {3, 30000},
      {500, 500},  {2, 17},    {33, 1000}, {8, 80000},
  };
  Rng rng(99);
  for (const auto& [na, nb] : shapes) {
    for (const uint32_t spread : {1u, 3u, 16u, 256u}) {
      for (int trial = 0; trial < 8; ++trial) {
        std::vector<uint32_t> a = SortedUnique(na, spread, rng);
        std::vector<uint32_t> b = SortedUnique(nb, 3, rng);
        const bool want = ReferenceHasCommon(a, b);
        const char* ctx_fmt = "na=%zu nb=%zu spread=%u trial=%d";
        char ctx[64];
        std::snprintf(ctx, sizeof(ctx), ctx_fmt, na, nb, spread, trial);
        EXPECT_EQ(want, simd::HasCommonElement(a.data(), a.size(), b.data(),
                                               b.size()))
            << ctx;
        EXPECT_EQ(want, simd::HasCommonElement(b.data(), b.size(), a.data(),
                                               a.size()))
            << ctx;
        EXPECT_EQ(want, simd::MergeHasCommon(a.data(), a.size(), b.data(),
                                             b.size()))
            << ctx;
        EXPECT_EQ(want, simd::BlockHasCommon(a.data(), a.size(), b.data(),
                                             b.size()))
            << ctx;
        if (na <= nb) {
          EXPECT_EQ(want, simd::GallopHasCommon(a.data(), a.size(), b.data(),
                                                b.size()))
              << ctx;
        }
      }
    }
  }
}

TEST(SimdKernelTest, FilterFirstBySecondMatchesScalar) {
  Rng rng(7);
  for (const size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4},
                         size_t{7}, size_t{8}, size_t{64}, size_t{1000}}) {
    for (int trial = 0; trial < 16; ++trial) {
      // Interleaved (key, tag) pairs with keys increasing and tags drawn
      // from a tiny alphabet so matches are common.
      std::vector<uint32_t> pairs;
      uint32_t key = 0;
      for (size_t i = 0; i < n; ++i) {
        key += 1 + static_cast<uint32_t>(rng.Below(5));
        pairs.push_back(key);
        pairs.push_back(static_cast<uint32_t>(rng.Below(4)));
      }
      const uint32_t target = static_cast<uint32_t>(rng.Below(5));  // may miss
      std::vector<uint32_t> expected;
      for (size_t i = 0; i < n; ++i) {
        if (pairs[2 * i + 1] == target) expected.push_back(pairs[2 * i]);
      }
      std::vector<uint32_t> got(n + 1, 0xDEADBEEF);
      const size_t m =
          simd::FilterFirstBySecond(pairs.data(), n, target, got.data());
      ASSERT_EQ(expected.size(), m) << "n=" << n << " trial=" << trial;
      for (size_t i = 0; i < m; ++i) {
        EXPECT_EQ(expected[i], got[i]) << "n=" << n << " trial=" << trial;
      }
      EXPECT_EQ(0xDEADBEEFu, got[n]);  // never writes past n slots
    }
  }
}

DiGraph RandomGraph(VertexId n, uint64_t m, Label labels, uint64_t seed) {
  Rng rng(seed);
  auto edges = ErdosRenyiEdges(n, m, rng);
  AssignZipfLabels(&edges, labels, 2.0, rng);
  return DiGraph(n, std::move(edges), labels);
}

TEST(SignatureQueryTest, SealedSignedMatchesUnsignedAndUnsealed) {
  const DiGraph g = RandomGraph(300, 1400, 5, 41);
  IndexerOptions options;
  options.k = 2;
  options.seal = false;
  RlcIndexBuilder unsealed_builder(g, options);
  RlcIndex unsealed = unsealed_builder.Build();
  ASSERT_FALSE(unsealed.sealed());
  RlcIndexBuilder sealed_builder(g, IndexerOptions{.k = 2});
  RlcIndex sealed = sealed_builder.Build();
  ASSERT_TRUE(sealed.sealed());

  Rng rng(43);
  std::vector<LabelSeq> seqs;
  for (int i = 0; i < 12; ++i) {
    seqs.push_back(RandomPrimitiveSeq(1 + i % 2, g.num_labels(), rng));
  }
  // Include every recorded MR so positive probes occur.
  for (MrId id = 0; id < sealed.mr_table().size() && id < 16; ++id) {
    if (sealed.mr_table().Get(id).size() <= 2) {
      seqs.push_back(sealed.mr_table().Get(id));
    }
  }

  uint64_t positives = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    const auto s = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const auto t = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const LabelSeq& c = seqs[rng.Below(seqs.size())];
    const bool want = unsealed.Query(s, t, c);
    positives += want;
    ASSERT_EQ(want, sealed.Query(s, t, c))
        << "signed sealed mismatch s=" << s << " t=" << t;
    sealed.set_use_signatures(false);
    ASSERT_EQ(want, sealed.Query(s, t, c))
        << "unsigned sealed mismatch s=" << s << " t=" << t;
    sealed.set_use_signatures(true);
  }
  EXPECT_GT(positives, 0u);  // the workload must exercise the true paths
}

TEST(SignatureQueryTest, GroupedMatchesScalarWithSignaturesOnAndOff) {
  const DiGraph g = RandomGraph(250, 1100, 4, 57);
  RlcIndex index = BuildRlcIndex(g, 2);
  Rng rng(59);
  std::vector<LabelSeq> seqs;
  for (MrId id = 0; id < index.mr_table().size() && id < 8; ++id) {
    if (index.mr_table().Get(id).size() <= 2) {
      seqs.push_back(index.mr_table().Get(id));
    }
  }
  ASSERT_FALSE(seqs.empty());
  for (const LabelSeq& seq : seqs) {
    const MrId mr = index.FindMr(seq);
    std::vector<VertexPair> pairs;
    std::vector<uint8_t> expected;
    for (int i = 0; i < 500; ++i) {
      const auto s = static_cast<VertexId>(rng.Below(g.num_vertices()));
      const auto t = static_cast<VertexId>(rng.Below(g.num_vertices()));
      pairs.push_back({s, t});
      expected.push_back(index.QueryInterned(s, t, mr) ? 1 : 0);
    }
    for (const bool signatures : {true, false}) {
      index.set_use_signatures(signatures);
      std::vector<uint8_t> answers(pairs.size(), 0);
      index.QueryGroupInterned(mr, pairs, answers);
      EXPECT_EQ(expected, answers) << "signatures=" << signatures;
    }
    index.set_use_signatures(true);
  }
}

TEST(SignatureQueryTest, RefutedBySignatureNeverRefutesATrueAnswer) {
  const DiGraph g = BuildFig2Graph();
  const RlcIndex index = BuildRlcIndex(g, 2);
  Rng rng(61);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto s = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const auto t = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const LabelSeq c = RandomPrimitiveSeq(1 + rng.Below(2), g.num_labels(), rng);
    if (index.RefutedBySignature(s, t, c.labels())) {
      EXPECT_FALSE(index.Query(s, t, c))
          << "signature refuted a true answer s=" << s << " t=" << t;
    }
  }
}

TEST(MrCacheTest, BoundedWithEvictionCounters) {
  const DiGraph g = RandomGraph(60, 200, 4, 71);
  const RlcIndex index = BuildRlcIndex(g, 2);
  MrCache cache(index, /*max_entries=*/4);
  Rng rng(73);
  // Stream far more distinct templates than the bound.
  for (int i = 0; i < 64; ++i) {
    const LabelSeq seq = RandomPrimitiveSeq(2, g.num_labels(), rng);
    const MrId direct = index.FindMr(seq);
    EXPECT_EQ(direct, cache.Get(seq));  // eviction never changes answers
    EXPECT_LE(cache.size(), 4u);
  }
  const MrCacheStats& stats = cache.stats();
  EXPECT_EQ(stats.lookups, 64u);
  EXPECT_GT(stats.flushes, 0u);
  EXPECT_GE(stats.evicted_entries, 4 * stats.flushes - 4);
  // A repeat-heavy stream under the bound evicts nothing further.
  MrCache small(index, /*max_entries=*/8);
  const LabelSeq seq = RandomPrimitiveSeq(2, g.num_labels(), rng);
  for (int i = 0; i < 10; ++i) small.Get(seq);
  EXPECT_EQ(small.stats().lookups, 10u);
  EXPECT_EQ(small.stats().hits, 9u);
  EXPECT_EQ(small.stats().flushes, 0u);
}

TEST(ParallelExecuteTest, ThreadCountsProduceIdenticalAnswers) {
  const DiGraph g = RandomGraph(400, 1800, 5, 81);
  const RlcIndex index = BuildRlcIndex(g, 2);
  WorkloadOptions wopts;
  wopts.count = 400;
  wopts.constraint_length = 2;
  wopts.fill_true_with_walks = true;
  const Workload w = GenerateWorkload(g, wopts);
  QueryBatch batch;
  for (const auto* pool : {&w.true_queries, &w.false_queries}) {
    for (const RlcQuery& q : *pool) batch.Add(q.s, q.t, q.constraint);
  }
  const AnswerBatch reference = ExecuteBatch(index, batch);
  for (const uint32_t threads : {2u, 3u, 8u}) {
    for (const size_t chunk : {size_t{1}, size_t{7}, size_t{8192}}) {
      ExecuteOptions opts;
      opts.num_threads = threads;
      opts.probes_per_job = chunk;
      const AnswerBatch got = ExecuteBatch(index, batch, opts);
      EXPECT_EQ(reference.answers, got.answers)
          << "threads=" << threads << " chunk=" << chunk;
      EXPECT_EQ(reference.num_groups, got.num_groups);
    }
  }
}

}  // namespace
}  // namespace rlc
