// Tests for the Table V engine archetypes: every engine must agree with the
// online oracle on RLC queries (Q1-Q3 shapes) and extended queries (Q4).

#include <gtest/gtest.h>

#include <memory>

#include "rlc/baselines/online_search.h"
#include "rlc/core/indexer.h"
#include "rlc/engines/frontier_engine.h"
#include "rlc/engines/recursive_join_engine.h"
#include "rlc/engines/rlc_hybrid_engine.h"
#include "rlc/engines/volcano_engine.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/graph/paper_graphs.h"
#include "rlc/workload/query_gen.h"

namespace rlc {
namespace {

DiGraph TestGraph(uint64_t seed) {
  Rng rng(seed);
  auto edges = ErdosRenyiEdges(90, 400, rng);
  AssignZipfLabels(&edges, 4, 2.0, rng);
  return DiGraph(90, std::move(edges), 4);
}

// Builds the four paper query shapes over labels a,b,c.
std::vector<PathConstraint> PaperQueryShapes() {
  return {
      PathConstraint::RlcPlus(LabelSeq{0}),           // Q1: a+
      PathConstraint::RlcPlus(LabelSeq{0, 1}),        // Q2: (a b)+
      PathConstraint::RlcPlus(LabelSeq{0, 1, 2}),     // Q3: (a b c)+
      PathConstraint({ConstraintAtom{LabelSeq{0}, true},
                      ConstraintAtom{LabelSeq{1}, true}}),  // Q4: a+ b+
  };
}

class EngineAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineAgreementTest, MatchesOracleOnAllQueryShapes) {
  const DiGraph g = TestGraph(100 + GetParam());
  const RlcIndex index = BuildRlcIndex(g, 3);

  RecursiveJoinEngine join_engine(g);
  VolcanoEngine volcano_engine(g);
  FrontierEngine frontier_engine(g);
  RlcHybridEngine rlc_engine(g, index);
  Engine* engines[] = {&join_engine, &volcano_engine, &frontier_engine,
                       &rlc_engine};

  OnlineSearcher oracle(g);
  Rng rng(17 + GetParam());
  for (const PathConstraint& shape : PaperQueryShapes()) {
    for (int trial = 0; trial < 60; ++trial) {
      const auto s = static_cast<VertexId>(rng.Below(g.num_vertices()));
      const auto t = static_cast<VertexId>(rng.Below(g.num_vertices()));
      const bool expected = oracle.QueryBfsOnce(s, t, shape);
      for (Engine* engine : engines) {
        ASSERT_EQ(engine->Evaluate(s, t, shape), expected)
            << engine->name() << " on " << shape.ToString() << " s=" << s
            << " t=" << t;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineAgreementTest, ::testing::Values(0, 1, 2));

TEST(EngineTest, NamesAreDistinct) {
  const DiGraph g = BuildFig2Graph();
  const RlcIndex index = BuildRlcIndex(g, 2);
  RecursiveJoinEngine a(g);
  VolcanoEngine b(g);
  FrontierEngine c(g);
  RlcHybridEngine d(g, index);
  EXPECT_NE(a.name(), b.name());
  EXPECT_NE(b.name(), c.name());
  EXPECT_NE(c.name(), d.name());
}

TEST(EngineTest, Q4OnHandBuiltChain) {
  // 0 -a-> 1 -a-> 2 -b-> 3; Q4 = a+ b+.
  const DiGraph g(4, {{0, 1, 0}, {1, 2, 0}, {2, 3, 1}}, 2);
  const RlcIndex index = BuildRlcIndex(g, 2);
  const PathConstraint q4({ConstraintAtom{LabelSeq{0}, true},
                           ConstraintAtom{LabelSeq{1}, true}});
  RecursiveJoinEngine join_engine(g);
  VolcanoEngine volcano_engine(g);
  FrontierEngine frontier_engine(g);
  RlcHybridEngine rlc_engine(g, index);
  Engine* engines[] = {&join_engine, &volcano_engine, &frontier_engine,
                       &rlc_engine};
  for (Engine* e : engines) {
    EXPECT_TRUE(e->Evaluate(0, 3, q4)) << e->name();
    EXPECT_TRUE(e->Evaluate(1, 3, q4)) << e->name();
    EXPECT_FALSE(e->Evaluate(0, 2, q4)) << e->name();
    EXPECT_FALSE(e->Evaluate(2, 3, q4)) << e->name();
    EXPECT_FALSE(e->Evaluate(3, 0, q4)) << e->name();
  }
}

TEST(EngineTest, RlcHybridValidatesConstraint) {
  const DiGraph g = BuildFig2Graph();
  const RlcIndex index = BuildRlcIndex(g, 2);
  RlcHybridEngine engine(g, index);
  // Final atom longer than k.
  EXPECT_THROW(
      engine.Evaluate(0, 1, PathConstraint::RlcPlus(LabelSeq{0, 1, 2})),
      std::invalid_argument);
  // Non-recursive final atom unsupported by the hybrid plan.
  EXPECT_THROW(engine.Evaluate(0, 1, PathConstraint::Fixed(LabelSeq{0})),
               std::invalid_argument);
  EXPECT_THROW(engine.Evaluate(0, 99, PathConstraint::RlcPlus(LabelSeq{0})),
               std::invalid_argument);
}

TEST(EngineTest, EnginesValidateVertices) {
  const DiGraph g = BuildFig2Graph();
  RecursiveJoinEngine join_engine(g);
  VolcanoEngine volcano_engine(g);
  FrontierEngine frontier_engine(g);
  const auto c = PathConstraint::RlcPlus(LabelSeq{0});
  EXPECT_THROW(join_engine.Evaluate(0, 99, c), std::invalid_argument);
  EXPECT_THROW(volcano_engine.Evaluate(99, 0, c), std::invalid_argument);
  EXPECT_THROW(frontier_engine.Evaluate(99, 99, c), std::invalid_argument);
}

}  // namespace
}  // namespace rlc
