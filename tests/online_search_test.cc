// Tests for the online-traversal baselines: BFS, DFS and BiBFS must agree
// with each other and with brute-force path enumeration on small graphs.

#include "rlc/baselines/online_search.h"

#include <gtest/gtest.h>

#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/graph/paper_graphs.h"
#include "rlc/util/rng.h"
#include "rlc/workload/query_gen.h"

namespace rlc {
namespace {

// Brute-force: enumerate all walks up to `max_len` edges and test acceptance.
bool BruteForce(const DiGraph& g, VertexId s, VertexId t, const Nfa& nfa,
                uint32_t max_len) {
  std::vector<std::pair<VertexId, std::vector<Label>>> stack{{s, {}}};
  while (!stack.empty()) {
    auto [v, word] = stack.back();
    stack.pop_back();
    if (v == t && !word.empty() && nfa.Accepts(word)) return true;
    if (word.size() >= max_len) continue;
    for (const LabeledNeighbor& nb : g.OutEdges(v)) {
      auto next = word;
      next.push_back(nb.label);
      stack.push_back({nb.v, std::move(next)});
    }
  }
  return false;
}

TEST(OnlineSearchTest, Fig2QueriesAllMethods) {
  const DiGraph g = BuildFig2Graph();
  OnlineSearcher searcher(g);
  auto V = [&](const char* n) { return *g.FindVertex(n); };
  auto L = [&](const char* n) { return *g.FindLabel(n); };

  struct Case {
    const char* s;
    const char* t;
    LabelSeq c;
    bool expected;
  };
  const std::vector<Case> cases = {
      {"v3", "v6", {L("l2"), L("l1")}, true},
      {"v1", "v2", {L("l2"), L("l1")}, true},
      {"v1", "v3", {L("l1")}, false},
      {"v1", "v1", {L("l1")}, true},
      {"v6", "v1", {L("l1")}, false},
  };
  for (const Case& c : cases) {
    const auto pc = PathConstraint::RlcPlus(c.c);
    const CompiledConstraint cc(pc, g.num_labels());
    EXPECT_EQ(searcher.QueryBfs(V(c.s), V(c.t), cc), c.expected)
        << "BFS " << c.s << "->" << c.t;
    EXPECT_EQ(searcher.QueryDfs(V(c.s), V(c.t), cc), c.expected)
        << "DFS " << c.s << "->" << c.t;
    EXPECT_EQ(searcher.QueryBiBfs(V(c.s), V(c.t), cc), c.expected)
        << "BiBFS " << c.s << "->" << c.t;
  }
}

TEST(OnlineSearchTest, AgreesWithBruteForceOnTinyGraphs) {
  Rng rng(21);
  for (int trial = 0; trial < 60; ++trial) {
    const VertexId n = 5 + static_cast<VertexId>(rng.Below(4));
    const uint64_t m = 6 + rng.Below(12);
    auto edges = ErdosRenyiEdges(n, std::min<uint64_t>(m, n * (n - 1)), rng);
    AssignUniformLabels(&edges, 2, rng);
    const DiGraph g(n, std::move(edges), 2);
    OnlineSearcher searcher(g);

    for (int q = 0; q < 25; ++q) {
      const auto s = static_cast<VertexId>(rng.Below(n));
      const auto t = static_cast<VertexId>(rng.Below(n));
      const LabelSeq seq = RandomPrimitiveSeq(1 + rng.Below(2), 2, rng);
      const auto pc = PathConstraint::RlcPlus(seq);
      const Nfa nfa = Nfa::FromConstraint(pc);
      // Walks up to length 2*|V| suffice to witness L+ reachability in the
      // product graph of |V| * |L| states with |L| <= 2.
      const bool expected = BruteForce(g, s, t, nfa, 2 * n);
      const CompiledConstraint cc(pc, g.num_labels());
      ASSERT_EQ(searcher.QueryBfs(s, t, cc), expected);
      ASSERT_EQ(searcher.QueryDfs(s, t, cc), expected);
      ASSERT_EQ(searcher.QueryBiBfs(s, t, cc), expected);
    }
  }
}

TEST(OnlineSearchTest, MultiAtomAndFixedConstraints) {
  // Chain 0 -a-> 1 -a-> 2 -b-> 3 -b-> 4
  const DiGraph g(5, {{0, 1, 0}, {1, 2, 0}, {2, 3, 1}, {3, 4, 1}}, 2);
  OnlineSearcher searcher(g);
  const PathConstraint q4({ConstraintAtom{LabelSeq{0}, true},
                           ConstraintAtom{LabelSeq{1}, true}});
  EXPECT_TRUE(searcher.QueryBfsOnce(0, 4, q4));
  EXPECT_TRUE(searcher.QueryBfsOnce(0, 3, q4));
  EXPECT_TRUE(searcher.QueryBiBfsOnce(1, 3, q4));
  EXPECT_FALSE(searcher.QueryBfsOnce(0, 2, q4));  // no b segment
  EXPECT_FALSE(searcher.QueryBiBfsOnce(2, 4, q4));  // no a segment

  const PathConstraint fixed = PathConstraint::Fixed(LabelSeq{0, 0, 1});
  EXPECT_TRUE(searcher.QueryBfsOnce(0, 3, fixed));
  EXPECT_FALSE(searcher.QueryBfsOnce(0, 4, fixed));
  EXPECT_TRUE(searcher.QueryBiBfsOnce(0, 3, fixed));
  EXPECT_FALSE(searcher.QueryBiBfsOnce(0, 4, fixed));
}

TEST(OnlineSearchTest, SelfLoopCycles) {
  const DiGraph g(2, {{0, 0, 0}, {0, 1, 1}}, 2);
  OnlineSearcher searcher(g);
  const auto a_plus = PathConstraint::RlcPlus(LabelSeq{0});
  EXPECT_TRUE(searcher.QueryBfsOnce(0, 0, a_plus));
  EXPECT_TRUE(searcher.QueryBiBfsOnce(0, 0, a_plus));
  EXPECT_FALSE(searcher.QueryBfsOnce(1, 1, a_plus));
  EXPECT_FALSE(searcher.QueryBiBfsOnce(1, 1, a_plus));
}

TEST(OnlineSearchTest, STEqualWithoutCycleIsFalse) {
  const DiGraph g(2, {{0, 1, 0}}, 1);
  OnlineSearcher searcher(g);
  const auto c = PathConstraint::RlcPlus(LabelSeq{0});
  EXPECT_FALSE(searcher.QueryBfsOnce(0, 0, c));
  EXPECT_FALSE(searcher.QueryBiBfsOnce(0, 0, c));
  EXPECT_FALSE(searcher.QueryDfs(0, 0, CompiledConstraint(c, 1)));
}

TEST(OnlineSearchTest, VertexRangeValidation) {
  const DiGraph g(2, {{0, 1, 0}}, 1);
  OnlineSearcher searcher(g);
  const CompiledConstraint c(PathConstraint::RlcPlus(LabelSeq{0}), 1);
  EXPECT_THROW(searcher.QueryBfs(0, 9, c), std::invalid_argument);
  EXPECT_THROW(searcher.QueryBiBfs(9, 0, c), std::invalid_argument);
  EXPECT_THROW(searcher.QueryDfs(9, 9, c), std::invalid_argument);
}

TEST(OnlineSearchTest, ReusedSearcherIsConsistent) {
  // Stamp-array reuse across many queries must not leak state.
  const DiGraph g = BuildFig2Graph();
  OnlineSearcher searcher(g);
  const CompiledConstraint c(
      PathConstraint::RlcPlus(LabelSeq{*g.FindLabel("l1")}), g.num_labels());
  const VertexId v1 = *g.FindVertex("v1");
  const VertexId v3 = *g.FindVertex("v3");
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(searcher.QueryBfs(v1, v1, c));
    ASSERT_FALSE(searcher.QueryBfs(v1, v3, c));
    ASSERT_TRUE(searcher.QueryBiBfs(v1, v1, c));
    ASSERT_FALSE(searcher.QueryBiBfs(v1, v3, c));
  }
}

}  // namespace
}  // namespace rlc
