// Fault-tolerance unit tests: deadline math edges, circuit-breaker state
// machine under a fake clock (backoff doubling, jitter bounds), the
// ThreadPool bounded task queue (reject vs block), failpoint grammar and
// seeded probabilistic triggers, the WAL's typed fsync failure, and the
// serving executors' deadline/shedding/degradation statuses.
//
// Everything here is deterministic — chaos_test.cc owns the randomized
// fault schedules; this file pins the mechanisms one edge at a time.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "rlc/core/indexer.h"
#include "rlc/core/wal.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/serve/circuit_breaker.h"
#include "rlc/serve/kernel_jobs.h"
#include "rlc/serve/query_batch.h"
#include "rlc/serve/serving_status.h"
#include "rlc/serve/sharded_service.h"
#include "rlc/util/failpoint.h"
#include "rlc/util/rng.h"
#include "rlc/util/thread_pool.h"
#include "rlc/workload/query_gen.h"

namespace rlc {
namespace {

namespace fs = std::filesystem;

/// The failpoint registry is process-global; every test that arms it must
/// leave it clean for the rest of the binary.
struct FailpointGuard {
  FailpointGuard() { Failpoints::Instance().Clear(); }
  ~FailpointGuard() { Failpoints::Instance().Clear(); }
};

std::string TempDir(const std::string& tag) {
  std::string templ =
      (fs::temp_directory_path() / ("rlc_robust_" + tag + "_XXXXXX")).string();
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    throw std::runtime_error("mkdtemp failed for " + templ);
  }
  return std::string(buf.data());
}

DiGraph RandomGraph(VertexId n, uint64_t m, Label labels, uint64_t seed) {
  Rng rng(seed);
  auto edges = ErdosRenyiEdges(n, m, rng);
  AssignZipfLabels(&edges, labels, 2.0, rng);
  return DiGraph(n, std::move(edges), labels);
}

// ---------------------------------------------------------------- Deadline

TEST(DeadlineTest, DefaultAndZeroBudgetNeverExpire) {
  const Deadline none;
  EXPECT_FALSE(none.active());
  EXPECT_FALSE(none.Expired(0));
  EXPECT_FALSE(none.Expired(~uint64_t{0}));
  EXPECT_EQ(none.RemainingNs(12345), ~uint64_t{0});

  const Deadline zero = Deadline::After(0, 1'000'000);
  EXPECT_FALSE(zero.active());
  EXPECT_FALSE(zero.Expired(~uint64_t{0}));
}

TEST(DeadlineTest, ExpiryBoundaryIsInclusive) {
  const Deadline d = Deadline::After(100, 1000);
  ASSERT_TRUE(d.active());
  EXPECT_EQ(d.at_ns, 1100u);
  EXPECT_FALSE(d.Expired(1099));
  EXPECT_TRUE(d.Expired(1100));  // now == at: already expired
  EXPECT_TRUE(d.Expired(1101));
  EXPECT_EQ(d.RemainingNs(1000), 100u);
  EXPECT_EQ(d.RemainingNs(1100), 0u);
  EXPECT_EQ(d.RemainingNs(9999), 0u);
}

TEST(DeadlineTest, PastDeadlineExpiresImmediately) {
  // A 1 ns budget stamped "in the past" relative to the probing clock.
  const Deadline d = Deadline::After(1, 10);
  EXPECT_TRUE(d.Expired(11));
  EXPECT_TRUE(d.Expired(1'000'000));
}

TEST(DeadlineTest, OverflowSaturatesInsteadOfWrapping) {
  const uint64_t max = ~uint64_t{0};
  const Deadline d = Deadline::After(max, max - 5);
  ASSERT_TRUE(d.active());
  EXPECT_EQ(d.at_ns, max);  // saturated, not wrapped to a tiny value
  EXPECT_FALSE(d.Expired(max - 1));
}

TEST(DeadlineTest, EarlierOfPicksTheBindingDeadline) {
  // The composed-probe path combines a batch deadline with a per-probe
  // budget via EarlierOf: the earlier active deadline wins, and an unset
  // deadline (at_ns == 0, "no limit") never beats a set one.
  const Deadline none;
  const Deadline early{1000};
  const Deadline late{2000};

  EXPECT_EQ(EarlierOf(early, late).at_ns, 1000u);
  EXPECT_EQ(EarlierOf(late, early).at_ns, 1000u);
  EXPECT_EQ(EarlierOf(early, early).at_ns, 1000u);

  EXPECT_FALSE(EarlierOf(none, none).active());
  EXPECT_EQ(EarlierOf(none, late).at_ns, 2000u);
  EXPECT_EQ(EarlierOf(late, none).at_ns, 2000u);
}

// ---------------------------------------------------------- CircuitBreaker

BreakerOptions FastBreaker(uint32_t failures = 3, uint64_t backoff = 1000) {
  BreakerOptions bo;
  bo.failure_threshold = failures;
  bo.initial_backoff_ns = backoff;
  bo.max_backoff_ns = backoff * 8;
  bo.backoff_multiplier = 2.0;
  bo.jitter_fraction = 0.0;  // exact retry_at in the state-machine tests
  bo.seed = 7;
  return bo;
}

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailuresOnly) {
  CircuitBreaker b(FastBreaker(3));
  uint64_t now = 0;
  EXPECT_FALSE(b.OnFailure(++now));
  EXPECT_FALSE(b.OnFailure(++now));
  EXPECT_FALSE(b.OnSuccess(++now));  // success resets the streak
  EXPECT_FALSE(b.OnFailure(++now));
  EXPECT_FALSE(b.OnFailure(++now));
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_TRUE(b.OnFailure(++now));  // third consecutive: trips
  EXPECT_EQ(b.state(), BreakerState::kOpen);
}

TEST(CircuitBreakerTest, OpenDeniesUntilBackoffThenTrials) {
  CircuitBreaker b(FastBreaker(1, /*backoff=*/1000));
  ASSERT_TRUE(b.OnFailure(5000));
  EXPECT_EQ(b.retry_at_ns(), 6000u);  // no jitter
  EXPECT_EQ(b.Allow(5999), CircuitBreaker::Decision::kDeny);
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_EQ(b.Allow(6000), CircuitBreaker::Decision::kTrial);
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);
  // Still half-open on the next gate: more trials, not a re-open.
  EXPECT_EQ(b.Allow(6001), CircuitBreaker::Decision::kTrial);
}

TEST(CircuitBreakerTest, HalfOpenSuccessRecloses) {
  CircuitBreaker b(FastBreaker(1));
  ASSERT_TRUE(b.OnFailure(0));
  ASSERT_EQ(b.Allow(2000), CircuitBreaker::Decision::kTrial);
  EXPECT_TRUE(b.OnSuccess(2001));  // reports the reclose
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_EQ(b.current_backoff_ns(), 1000u);  // backoff ladder restarted
}

TEST(CircuitBreakerTest, SuccessThresholdRequiresConsecutiveTrials) {
  BreakerOptions bo = FastBreaker(1);
  bo.success_threshold = 2;
  CircuitBreaker b(bo);
  ASSERT_TRUE(b.OnFailure(0));
  ASSERT_EQ(b.Allow(2000), CircuitBreaker::Decision::kTrial);
  EXPECT_FALSE(b.OnSuccess(2001));  // 1 of 2
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(b.OnSuccess(2002));  // 2 of 2: reclosed
  EXPECT_EQ(b.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenFailureDoublesBackoffUpToCap) {
  CircuitBreaker b(FastBreaker(1, /*backoff=*/1000));  // cap 8000
  uint64_t now = 0;
  std::vector<uint64_t> backoffs;
  for (int round = 0; round < 6; ++round) {
    if (round == 0) {
      ASSERT_TRUE(b.OnFailure(now));
    } else {
      ASSERT_EQ(b.Allow(b.retry_at_ns()), CircuitBreaker::Decision::kTrial);
      ASSERT_TRUE(b.OnFailure(b.retry_at_ns()));  // failed trial re-opens
    }
    backoffs.push_back(b.current_backoff_ns());
  }
  EXPECT_EQ(backoffs,
            (std::vector<uint64_t>{1000, 2000, 4000, 8000, 8000, 8000}));
}

TEST(CircuitBreakerTest, JitterStaysWithinConfiguredFraction) {
  BreakerOptions bo = FastBreaker(1, /*backoff=*/1'000'000);
  bo.jitter_fraction = 0.25;
  bo.seed = 42;
  CircuitBreaker b(bo);
  bool saw_nonzero_jitter = false;
  for (int i = 0; i < 50; ++i) {
    const uint64_t now = static_cast<uint64_t>(i) * 10'000'000;
    if (i == 0) {
      ASSERT_TRUE(b.OnFailure(now));
    } else {
      ASSERT_EQ(b.Allow(now), CircuitBreaker::Decision::kTrial);
      b.OnSuccess(now);  // reclose so the next failure re-trips from closed
      ASSERT_TRUE(b.OnFailure(now));
    }
    const uint64_t wait = b.retry_at_ns() - now;
    EXPECT_GE(wait, 1'000'000u);
    EXPECT_LT(wait, 1'250'000u);  // backoff * (1 + jitter_fraction)
    saw_nonzero_jitter |= wait > 1'000'000u;
  }
  EXPECT_TRUE(saw_nonzero_jitter);
}

TEST(CircuitBreakerTest, JitterIsDeterministicInSeed) {
  auto run = [](uint64_t seed) {
    BreakerOptions bo = FastBreaker(1);
    bo.jitter_fraction = 0.5;
    bo.seed = seed;
    CircuitBreaker b(bo);
    std::vector<uint64_t> retries;
    for (int i = 0; i < 10; ++i) {
      const uint64_t now = static_cast<uint64_t>(i) * 1'000'000;
      if (i > 0) {
        b.Allow(now);
        b.OnSuccess(now);
      }
      b.OnFailure(now);
      retries.push_back(b.retry_at_ns());
    }
    return retries;
  };
  EXPECT_EQ(run(9), run(9));
  EXPECT_NE(run(9), run(10));
}

TEST(CircuitBreakerTest, OpenStateFailuresDoNotRetripOrExtend) {
  CircuitBreaker b(FastBreaker(1, 1000));
  ASSERT_TRUE(b.OnFailure(0));
  const uint64_t retry = b.retry_at_ns();
  EXPECT_FALSE(b.OnFailure(10));  // already open: not a new trip
  EXPECT_EQ(b.retry_at_ns(), retry);
}

TEST(CircuitBreakerTest, ResetForceClosesAndRestartsLadder) {
  CircuitBreaker b(FastBreaker(1, 1000));
  ASSERT_TRUE(b.OnFailure(0));
  ASSERT_EQ(b.Allow(2000), CircuitBreaker::Decision::kTrial);
  ASSERT_TRUE(b.OnFailure(2000));  // backoff now 2000
  b.Reset();
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_EQ(b.current_backoff_ns(), 1000u);
  EXPECT_EQ(b.Allow(0), CircuitBreaker::Decision::kAllow);
}

// ------------------------------------------------------- ThreadPool queue

TEST(ThreadPoolQueueTest, TrySubmitRejectsWhenFull) {
  ThreadPool pool(1, /*queue_capacity=*/2);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::atomic<int> ran{0};
  pool.Submit([gate, &ran] {
    gate.wait();
    ++ran;
  });
  // Wait for the worker to claim the blocker so the queue is empty again.
  while (pool.queue_depth() != 0) std::this_thread::yield();
  EXPECT_TRUE(pool.TrySubmit([&ran] { ++ran; }));
  EXPECT_TRUE(pool.TrySubmit([&ran] { ++ran; }));
  EXPECT_FALSE(pool.TrySubmit([&ran] { ++ran; }));  // at capacity: shed
  EXPECT_EQ(pool.queue_depth(), 2u);
  release.set_value();
  pool.Drain();
  EXPECT_EQ(ran.load(), 3);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPoolQueueTest, SubmitBlocksUntilSpaceFrees) {
  ThreadPool pool(1, /*queue_capacity=*/1);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::atomic<int> ran{0};
  pool.Submit([gate, &ran] {
    gate.wait();
    ++ran;
  });
  while (pool.queue_depth() != 0) std::this_thread::yield();
  pool.Submit([&ran] { ++ran; });  // fills the queue
  std::atomic<bool> unblocked{false};
  std::thread submitter([&] {
    pool.Submit([&ran] { ++ran; });  // backpressure: must wait for a slot
    unblocked = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(unblocked.load());
  release.set_value();
  submitter.join();
  EXPECT_TRUE(unblocked.load());
  pool.Drain();
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPoolQueueTest, UnboundedQueueNeverSheds) {
  ThreadPool pool(2);  // capacity 0 = unbounded
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.TrySubmit([&ran] { ++ran; }));
  }
  pool.Drain();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolQueueTest, TasksInterleaveWithRunBarriers) {
  ThreadPool pool(2, 4);
  std::atomic<int> ran{0};
  for (int round = 0; round < 5; ++round) {
    pool.Submit([&ran] { ++ran; });
    std::atomic<int> barrier_hits{0};
    pool.Run([&](uint32_t) { ++barrier_hits; });
    EXPECT_EQ(barrier_hits.load(), 2);
  }
  pool.Drain();
  EXPECT_EQ(ran.load(), 5);
}

// -------------------------------------------------------------- Failpoints

TEST(FailpointTest, ParseRejectsMalformedSpecs) {
  FailpointGuard guard;
  Failpoints& fp = Failpoints::Instance();
  for (const char* bad :
       {"noequals", "=error", "x=bogus", "x=error@0", "x=error@abc",
        "x=error@p0", "x=error@p1.5", "x=error@pxyz", "x=delay(abc)",
        "x=delay(99999999)", "x=delay(5"}) {
    EXPECT_THROW(fp.Parse(bad), std::invalid_argument) << bad;
  }
}

TEST(FailpointTest, DeterministicTriggerFiresOnNthHitOnce) {
  FailpointGuard guard;
  Failpoints& fp = Failpoints::Instance();
  fp.Parse("rt.a=error@3");
  EXPECT_EQ(fp.Hit("rt.a"), FailpointAction::kOff);
  EXPECT_EQ(fp.Hit("rt.a"), FailpointAction::kOff);
  EXPECT_EQ(fp.Hit("rt.a"), FailpointAction::kError);
  EXPECT_EQ(fp.Hit("rt.a"), FailpointAction::kOff);  // one-shot
  EXPECT_GE(fp.HitCount("rt.a"), 4u);
  EXPECT_FALSE(fp.MaybeArmed());
}

TEST(FailpointTest, ProbabilisticTriggerStaysArmedAndIsSeeded) {
  FailpointGuard guard;
  Failpoints& fp = Failpoints::Instance();
  auto draw = [&](uint64_t seed) {
    fp.Clear();
    fp.Parse("rt.p=error@p0.5");
    fp.Seed(seed);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(fp.Hit("rt.p") == FailpointAction::kError);
    }
    return fired;
  };
  const std::vector<bool> a = draw(1234);
  const std::vector<bool> b = draw(1234);
  const std::vector<bool> c = draw(5678);
  EXPECT_EQ(a, b);  // reproducible given the seed
  EXPECT_NE(a, c);
  const size_t fires = static_cast<size_t>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 50u);  // ~100 expected; stays armed throughout
  EXPECT_LT(fires, 150u);
  EXPECT_TRUE(fp.MaybeArmed());  // probabilistic entries never disarm
}

TEST(FailpointTest, ProbabilityOneAlwaysFires) {
  FailpointGuard guard;
  Failpoints& fp = Failpoints::Instance();
  fp.SetProbabilistic("rt.sure", FailpointAction::kError, 1.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fp.Hit("rt.sure"), FailpointAction::kError);
  }
  EXPECT_THROW(fp.SetProbabilistic("rt.bad", FailpointAction::kError, 0.0),
               std::invalid_argument);
  EXPECT_THROW(fp.SetProbabilistic("rt.bad", FailpointAction::kError, 1.5),
               std::invalid_argument);
}

TEST(FailpointTest, DelayActionCarriesItsMilliseconds) {
  FailpointGuard guard;
  Failpoints& fp = Failpoints::Instance();
  fp.Parse("rt.d=delay(7)");
  uint32_t delay_ms = 0;
  EXPECT_EQ(fp.Hit("rt.d", &delay_ms), FailpointAction::kDelay);
  EXPECT_EQ(delay_ms, 7u);
  // FailpointHit sleeps through a delay instead of throwing.
  fp.Parse("rt.d2=delay(1)");
  EXPECT_NO_THROW(FailpointHit("rt.d2"));
}

TEST(FailpointTest, ClearDisarmsAndOffOverrides) {
  FailpointGuard guard;
  Failpoints& fp = Failpoints::Instance();
  fp.Parse("rt.x=error;rt.y=error@p0.9");
  EXPECT_TRUE(fp.MaybeArmed());
  fp.Parse("rt.x=off");
  fp.Clear();
  EXPECT_FALSE(fp.MaybeArmed());
  EXPECT_EQ(fp.Hit("rt.x"), FailpointAction::kOff);
  EXPECT_EQ(fp.Hit("rt.y"), FailpointAction::kOff);
}

// ----------------------------------------------------------- WAL fsync

TEST(WalFsyncTest, InjectedSyncFailureIsTypedAndRetrySafe) {
  FailpointGuard guard;
  const std::string dir = TempDir("walsync");
  const std::string path = dir + "/test.log";
  WalWriter writer;
  writer.Open(path);
  const std::vector<EdgeUpdate> batch = {{1, 0, 2, EdgeOp::kInsert},
                                         {3, 1, 4, EdgeOp::kDelete}};
  Failpoints::Instance().Set(failpoints::kWalFsync, FailpointAction::kError);
  EXPECT_THROW(writer.Append(1, batch), WalSyncError);
  // Rolled back to the record boundary: nothing acknowledged, nothing kept.
  EXPECT_EQ(fs::file_size(path), 0u);
  EXPECT_EQ(writer.records_appended(), 0u);
  // Retrying the same LSN after the fault clears must succeed and be the
  // only record in the log.
  writer.Append(1, batch);
  const WalReadResult res = ReadWalFile(path);
  ASSERT_EQ(res.records.size(), 1u);
  EXPECT_EQ(res.records[0].lsn, 1u);
  ASSERT_EQ(res.records[0].updates.size(), 2u);
  EXPECT_EQ(res.records[0].updates[1].src, 3u);
  EXPECT_EQ(res.dropped_bytes, 0u);
  writer.Close();
  fs::remove_all(dir);
}

TEST(WalFsyncTest, DelayedSyncStillAppends) {
  FailpointGuard guard;
  const std::string dir = TempDir("waldelay");
  WalWriter writer;
  writer.Open(dir + "/test.log");
  Failpoints::Instance().Set(failpoints::kWalFsync, FailpointAction::kDelay,
                             /*trigger_hit=*/1, /*delay_ms=*/1);
  const std::vector<EdgeUpdate> batch = {{1, 0, 2, EdgeOp::kInsert}};
  EXPECT_NO_THROW(writer.Append(1, batch));
  EXPECT_EQ(writer.records_appended(), 1u);
  writer.Close();
  fs::remove_all(dir);
}

// ------------------------------------------- ExecuteBatch deadline statuses

TEST(ExecuteBatchDeadlineTest, TinyBudgetSkipsJobsWithExplicitStatus) {
  const DiGraph g = RandomGraph(200, 800, 4, 3);
  const RlcIndex index = BuildRlcIndex(g, 2);
  QueryBatch batch;
  Rng rng(5);
  for (int i = 0; i < 64; ++i) {
    batch.Add(static_cast<VertexId>(rng.Below(g.num_vertices())),
              static_cast<VertexId>(rng.Below(g.num_vertices())),
              LabelSeq{static_cast<Label>(rng.Below(g.num_labels()))});
  }
  ExecuteOptions options;
  options.batch_budget_ns = 1;  // expires before any job can start
  const AnswerBatch out = ExecuteBatch(index, batch, options);
  ASSERT_EQ(out.statuses.size(), batch.num_probes());
  EXPECT_EQ(out.num_deadline_exceeded, batch.num_probes());
  EXPECT_FALSE(out.all_ok());
  for (size_t i = 0; i < out.statuses.size(); ++i) {
    EXPECT_EQ(out.statuses[i], ProbeStatus::kDeadlineExceeded);
    EXPECT_EQ(out.answers[i], 0);  // non-kOk answers stay 0
  }
}

TEST(ExecuteBatchDeadlineTest, NoBudgetAnswersEverythingExactly) {
  const DiGraph g = RandomGraph(200, 800, 4, 3);
  const RlcIndex index = BuildRlcIndex(g, 2);
  QueryBatch batch;
  std::vector<uint8_t> want;
  Rng rng(6);
  for (int i = 0; i < 64; ++i) {
    const auto s = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const auto t = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const LabelSeq seq{static_cast<Label>(rng.Below(g.num_labels()))};
    batch.Add(s, t, seq);
    want.push_back(index.Query(s, t, seq) ? 1 : 0);
  }
  const AnswerBatch out = ExecuteBatch(index, batch);
  EXPECT_TRUE(out.all_ok());
  EXPECT_EQ(out.answers, want);
  for (const ProbeStatus s : out.statuses) EXPECT_EQ(s, ProbeStatus::kOk);
}

TEST(ExecuteBatchDeadlineTest, FailedJobSurfacesAsUnavailableNotGarbage) {
  FailpointGuard guard;
  const DiGraph g = RandomGraph(120, 500, 4, 4);
  const RlcIndex index = BuildRlcIndex(g, 2);
  QueryBatch batch;
  Rng rng(8);
  for (int i = 0; i < 32; ++i) {
    batch.Add(static_cast<VertexId>(rng.Below(g.num_vertices())),
              static_cast<VertexId>(rng.Below(g.num_vertices())),
              LabelSeq{static_cast<Label>(rng.Below(g.num_labels()))});
  }
  Failpoints::Instance().SetProbabilistic(failpoints::kServeKernelJob,
                                          FailpointAction::kError, 1.0);
  const AnswerBatch out = ExecuteBatch(index, batch);
  EXPECT_EQ(out.num_unavailable, batch.num_probes());
  for (size_t i = 0; i < out.statuses.size(); ++i) {
    EXPECT_EQ(out.statuses[i], ProbeStatus::kShardUnavailable);
    EXPECT_EQ(out.answers[i], 0);
  }
}

// ------------------------------------------------- Service admission/shed

ServiceOptions RobustOpts(uint32_t shards = 3) {
  ServiceOptions options;
  options.partition.num_shards = shards;
  options.indexer.k = 2;
  options.build_threads = 2;
  return options;
}

QueryBatch MakeBatch(const DiGraph& g, size_t n, uint64_t seed) {
  QueryBatch batch;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    batch.Add(static_cast<VertexId>(rng.Below(g.num_vertices())),
              static_cast<VertexId>(rng.Below(g.num_vertices())),
              LabelSeq{static_cast<Label>(rng.Below(g.num_labels()))});
  }
  return batch;
}

TEST(ServiceAdmissionTest, BatchProbeCapShedsTypedOrAsStatuses) {
  const DiGraph g = RandomGraph(150, 600, 4, 9);
  ServiceOptions options = RobustOpts();
  options.max_batch_probes = 8;
  ShardedRlcService service(g, options);
  const QueryBatch small = MakeBatch(g, 8, 1);
  const QueryBatch big = MakeBatch(g, 9, 2);

  EXPECT_NO_THROW(service.Execute(small));
  EXPECT_THROW(service.Execute(big), OverloadedError);

  ExecuteLimits limits;
  limits.shed_as_status = true;
  const AnswerBatch out = service.Execute(big, limits);
  EXPECT_EQ(out.num_shedded, big.num_probes());
  for (const ProbeStatus s : out.statuses) {
    EXPECT_EQ(s, ProbeStatus::kShedded);
  }
  EXPECT_GE(service.stats().shed, 2 * big.num_probes());
}

TEST(ServiceAdmissionTest, QueueHighWaterMarkSheds) {
  const DiGraph g = RandomGraph(150, 600, 4, 9);
  ServiceOptions options = RobustOpts();
  options.max_pending_jobs = 4;
  ShardedRlcService service(g, options);
  const QueryBatch batch = MakeBatch(g, 16, 3);
  EXPECT_NO_THROW(service.Execute(batch));
  // Simulate a saturated executor: park the process-global queue-depth
  // gauge at the high-water mark and watch admission refuse new batches.
  internal::KernelQueueDepthGauge().Add(4);
  EXPECT_THROW(service.Execute(batch), OverloadedError);
  internal::KernelQueueDepthGauge().Sub(4);
  EXPECT_NO_THROW(service.Execute(batch));
}

// ------------------------------------------------ Service breaker behavior

TEST(ServiceBreakerTest, BrokenShardDegradesToExactComposedAnswers) {
  FailpointGuard guard;
  const DiGraph g = RandomGraph(200, 800, 4, 21);
  const RlcIndex oracle = BuildRlcIndex(g, 2);
  ServiceOptions options = RobustOpts();
  options.breaker.failure_threshold = 1;
  options.breaker.initial_backoff_ns = 60ull * 1'000'000'000;  // stays open
  ShardedRlcService service(g, options);

  const QueryBatch batch = MakeBatch(g, 96, 4);
  std::vector<uint8_t> want;
  for (const BatchProbe& p : batch.probes()) {
    want.push_back(
        oracle.QueryInterned(p.s, p.t,
                             oracle.FindMr(batch.sequence(p.seq_id)))
            ? 1
            : 0);
  }

  // First shard-phase job errors once; its probes must degrade to the
  // index-free composition path and still come back exact.
  Failpoints::Instance().Set(failpoints::kServeShardExecute,
                             FailpointAction::kError);
  const AnswerBatch faulted = service.Execute(batch);
  EXPECT_TRUE(faulted.all_ok());
  EXPECT_EQ(faulted.answers, want);
  EXPECT_GT(faulted.num_degraded, 0u);
  EXPECT_GE(service.stats().breaker_opened, 1u);
  bool some_open = false;
  for (uint32_t s = 0; s < service.partition().num_shards(); ++s) {
    some_open |= service.shard_breaker_state(s) == BreakerState::kOpen;
  }
  EXPECT_TRUE(some_open);

  // With the breaker open (backoff far away) the shard is bypassed
  // entirely — no failpoint needed — and answers stay exact.
  const AnswerBatch degraded = service.Execute(batch);
  EXPECT_TRUE(degraded.all_ok());
  EXPECT_EQ(degraded.answers, want);
  EXPECT_GT(degraded.num_degraded, 0u);
}

TEST(ServiceBreakerTest, BreakerReclosesAfterCleanTrial) {
  FailpointGuard guard;
  const DiGraph g = RandomGraph(200, 800, 4, 22);
  ServiceOptions options = RobustOpts();
  options.breaker.failure_threshold = 1;
  options.breaker.initial_backoff_ns = 1;  // trial on the very next batch
  ShardedRlcService service(g, options);
  const QueryBatch batch = MakeBatch(g, 96, 5);

  Failpoints::Instance().Set(failpoints::kServeShardExecute,
                             FailpointAction::kError);
  service.Execute(batch);
  ASSERT_GE(service.stats().breaker_opened, 1u);

  const AnswerBatch healed = service.Execute(batch);  // clean trial
  EXPECT_TRUE(healed.all_ok());
  EXPECT_GE(service.stats().breaker_trials, 1u);
  EXPECT_GE(service.stats().breaker_reclosed, 1u);
  for (uint32_t s = 0; s < service.partition().num_shards(); ++s) {
    EXPECT_EQ(service.shard_breaker_state(s), BreakerState::kClosed);
  }
}

// ----------------------------------------------------------- ReviveShard

std::vector<EdgeUpdate> SomeUpdates(const DiGraph& g, size_t n,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<EdgeUpdate> updates;
  const std::vector<Edge> base = g.ToEdgeList();
  for (size_t i = 0; i < n; ++i) {
    if (i % 3 == 2 && !base.empty()) {
      const Edge& e = base[rng.Below(base.size())];
      updates.push_back({e.src, e.label, e.dst, EdgeOp::kDelete});
    } else {
      updates.push_back({static_cast<VertexId>(rng.Below(g.num_vertices())),
                         static_cast<Label>(rng.Below(g.num_labels())),
                         static_cast<VertexId>(rng.Below(g.num_vertices())),
                         EdgeOp::kInsert});
    }
  }
  return updates;
}

void ExpectReviveKeepsAnswers(ShardedRlcService& service, const DiGraph& g) {
  const QueryBatch batch = MakeBatch(g, 128, 6);
  const AnswerBatch before = service.Execute(batch);
  ASSERT_TRUE(before.all_ok());
  const uint64_t revives_before = service.stats().shard_revives;
  for (uint32_t s = 0; s < service.partition().num_shards(); ++s) {
    service.ReviveShard(s);
    const AnswerBatch after = service.Execute(batch);
    ASSERT_TRUE(after.all_ok());
    ASSERT_EQ(after.answers, before.answers) << "revive changed shard " << s;
  }
  EXPECT_EQ(service.stats().shard_revives,
            revives_before + service.partition().num_shards());
}

TEST(ReviveShardTest, RebuildPathReproducesMutatedShardExactly) {
  const DiGraph g = RandomGraph(180, 700, 4, 31);
  ShardedRlcService service(g, RobustOpts());
  service.ApplyUpdates(SomeUpdates(g, 40, 7));
  ExpectReviveKeepsAnswers(service, g);
}

TEST(ReviveShardTest, DurablePathReproducesMutatedShardExactly) {
  const DiGraph g = RandomGraph(180, 700, 4, 32);
  const std::string dir = TempDir("revive");
  ServiceOptions options = RobustOpts();
  options.durability.dir = dir;
  {
    ShardedRlcService service(g, options);
    service.ApplyUpdates(SomeUpdates(g, 40, 8));  // lands in the WAL tail
    ExpectReviveKeepsAnswers(service, g);
  }
  fs::remove_all(dir);
}

TEST(ReviveShardTest, ReviveResetsAnOpenBreaker) {
  FailpointGuard guard;
  const DiGraph g = RandomGraph(180, 700, 4, 33);
  ServiceOptions options = RobustOpts();
  options.breaker.failure_threshold = 1;
  options.breaker.initial_backoff_ns = 60ull * 1'000'000'000;
  ShardedRlcService service(g, options);
  Failpoints::Instance().Set(failpoints::kServeShardExecute,
                             FailpointAction::kError);
  service.Execute(MakeBatch(g, 96, 9));
  uint32_t open_shard = service.partition().num_shards();
  for (uint32_t s = 0; s < service.partition().num_shards(); ++s) {
    if (service.shard_breaker_state(s) == BreakerState::kOpen) open_shard = s;
  }
  ASSERT_LT(open_shard, service.partition().num_shards());
  service.ReviveShard(open_shard);
  EXPECT_EQ(service.shard_breaker_state(open_shard), BreakerState::kClosed);
}

}  // namespace
}  // namespace rlc
