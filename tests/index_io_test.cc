// Serialization round-trip and corruption tests for the index format.

#include "rlc/core/index_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "rlc/baselines/online_search.h"
#include "rlc/core/dynamic_index.h"
#include "rlc/core/indexer.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/graph/paper_graphs.h"
#include "rlc/workload/query_gen.h"

namespace rlc {
namespace {

void ExpectSameIndex(const RlcIndex& a, const RlcIndex& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.k(), b.k());
  ASSERT_EQ(a.mr_table().size(), b.mr_table().size());
  for (MrId id = 0; id < a.mr_table().size(); ++id) {
    EXPECT_EQ(a.mr_table().Get(id), b.mr_table().Get(id));
  }
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    EXPECT_EQ(a.AccessId(v), b.AccessId(v));
    EXPECT_TRUE(std::ranges::equal(a.Lout(v), b.Lout(v))) << "Lout at v=" << v;
    EXPECT_TRUE(std::ranges::equal(a.Lin(v), b.Lin(v))) << "Lin at v=" << v;
    // Signatures are a pure function of the lists, so they must agree no
    // matter which format version (or rebuild path) produced each side.
    EXPECT_EQ(a.OutSignature(v), b.OutSignature(v)) << "out sig at v=" << v;
    EXPECT_EQ(a.InSignature(v), b.InSignature(v)) << "in sig at v=" << v;
  }
}

TEST(IndexIoTest, RoundTripFig2) {
  const DiGraph g = BuildFig2Graph();
  const RlcIndex index = BuildRlcIndex(g, 2);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(index, buf);
  const RlcIndex loaded = ReadIndex(buf);
  ExpectSameIndex(index, loaded);
  // Loaded index answers like the original.
  const Label l1 = *g.FindLabel("l1");
  const Label l2 = *g.FindLabel("l2");
  EXPECT_TRUE(loaded.Query(*g.FindVertex("v3"), *g.FindVertex("v6"),
                           LabelSeq{l2, l1}));
  EXPECT_FALSE(loaded.Query(*g.FindVertex("v1"), *g.FindVertex("v3"),
                            LabelSeq{l1}));
}

TEST(IndexIoTest, RoundTripRandomGraphQueriesAgree) {
  Rng rng(31);
  auto edges = ErdosRenyiEdges(120, 420, rng);
  AssignZipfLabels(&edges, 4, 2.0, rng);
  const DiGraph g(120, std::move(edges), 4);
  const RlcIndex index = BuildRlcIndex(g, 3);

  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(index, buf);
  const RlcIndex loaded = ReadIndex(buf);
  ExpectSameIndex(index, loaded);

  for (int trial = 0; trial < 300; ++trial) {
    const auto s = static_cast<VertexId>(rng.Below(120));
    const auto t = static_cast<VertexId>(rng.Below(120));
    const LabelSeq c = RandomPrimitiveSeq(1 + rng.Below(3), 4, rng);
    ASSERT_EQ(index.Query(s, t, c), loaded.Query(s, t, c));
  }
}

TEST(IndexIoTest, LegacyV1RoundTrip) {
  // Indexes persisted by the old per-entry format must still load, and must
  // load into the same (sealed) state as a v2 load.
  const DiGraph g = BuildFig2Graph();
  const RlcIndex index = BuildRlcIndex(g, 2);

  std::stringstream v1(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(index, v1, /*version=*/1);
  std::stringstream v2(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(index, v2, /*version=*/2);
  EXPECT_NE(v1.str(), v2.str());

  const RlcIndex from_v1 = ReadIndex(v1);
  const RlcIndex from_v2 = ReadIndex(v2);
  EXPECT_TRUE(from_v1.sealed());
  EXPECT_TRUE(from_v2.sealed());
  ExpectSameIndex(from_v1, from_v2);
  ExpectSameIndex(index, from_v1);
}

TEST(IndexIoTest, UnsealedIndexWritesIdenticalBytes) {
  // The serialized form must not depend on whether Seal() ran.
  Rng rng(17);
  auto edges = ErdosRenyiEdges(80, 300, rng);
  AssignZipfLabels(&edges, 3, 2.0, rng);
  const DiGraph g(80, std::move(edges), 3);

  IndexerOptions options;
  options.k = 2;
  options.seal = false;
  RlcIndexBuilder builder(g, options);
  RlcIndex index = builder.Build();
  ASSERT_FALSE(index.sealed());

  std::stringstream unsealed_bytes(std::ios::in | std::ios::out |
                                   std::ios::binary);
  WriteIndex(index, unsealed_bytes);
  index.Seal();
  std::stringstream sealed_bytes(std::ios::in | std::ios::out |
                                 std::ios::binary);
  WriteIndex(index, sealed_bytes);
  EXPECT_EQ(unsealed_bytes.str(), sealed_bytes.str());
}

TEST(IndexIoTest, CorruptV2EntriesRejected) {
  const DiGraph g = BuildFig2Graph();
  const RlcIndex index = BuildRlcIndex(g, 2);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(index, buf, /*version=*/2);  // in v2 the file ends on an entry
  std::string bytes = buf.str();
  // Smash the last IndexEntry's mr id to an out-of-range value.
  ASSERT_GE(bytes.size(), 8u);
  for (size_t i = bytes.size() - 4; i < bytes.size(); ++i) {
    bytes[i] = static_cast<char>(0xFF);
  }
  std::stringstream corrupt(bytes, std::ios::in | std::ios::binary);
  EXPECT_THROW(ReadIndex(corrupt), std::runtime_error);
}

TEST(IndexIoTest, V3RoundTripResaveIsByteIdentical) {
  // v3 persists the vertex signatures; a load-then-save cycle must
  // reproduce the file byte for byte (the adopted signatures equal the ones
  // a rebuild would produce).
  Rng rng(23);
  auto edges = ErdosRenyiEdges(150, 600, rng);
  AssignZipfLabels(&edges, 5, 2.0, rng);
  const DiGraph g(150, std::move(edges), 5);
  const RlcIndex index = BuildRlcIndex(g, 2);

  std::stringstream v3(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(index, v3, /*version=*/3);
  const RlcIndex loaded = ReadIndex(v3);
  ExpectSameIndex(index, loaded);

  std::stringstream resaved(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(loaded, resaved, /*version=*/3);
  EXPECT_EQ(v3.str(), resaved.str());
}

TEST(IndexIoTest, V2LoadRebuildsSignatures) {
  // A legacy v2 file carries no signatures; the load must rebuild them so
  // that re-saving as v3 is byte-identical to a direct v3 save.
  Rng rng(29);
  auto edges = ErdosRenyiEdges(120, 500, rng);
  AssignZipfLabels(&edges, 4, 2.0, rng);
  const DiGraph g(120, std::move(edges), 4);
  const RlcIndex index = BuildRlcIndex(g, 2);

  std::stringstream v2(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(index, v2, /*version=*/2);
  const RlcIndex from_v2 = ReadIndex(v2);
  ExpectSameIndex(index, from_v2);

  std::stringstream direct_v3(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(index, direct_v3, /*version=*/3);
  std::stringstream resaved_v3(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(from_v2, resaved_v3, /*version=*/3);
  EXPECT_EQ(direct_v3.str(), resaved_v3.str());
}

TEST(IndexIoTest, V1LoadRebuildsSignaturesToo) {
  const DiGraph g = BuildFig2Graph();
  const RlcIndex index = BuildRlcIndex(g, 2);
  std::stringstream v1(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(index, v1, /*version=*/1);
  const RlcIndex from_v1 = ReadIndex(v1);
  std::stringstream direct_v3(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(index, direct_v3, /*version=*/3);
  std::stringstream resaved_v3(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(from_v1, resaved_v3, /*version=*/3);
  EXPECT_EQ(direct_v3.str(), resaved_v3.str());
}

TEST(IndexIoTest, CorruptV3SignaturesRejected) {
  // Unlike entries (range-checked) a flipped signature bit would silently
  // change answers, so the v3 checksum must reject it at load time.
  const DiGraph g = BuildFig2Graph();
  const RlcIndex index = BuildRlcIndex(g, 2);
  std::stringstream v2(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(index, v2, /*version=*/2);
  std::stringstream v3(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(index, v3, /*version=*/3);
  std::string bytes = v3.str();
  // Flip one bit inside the signature section (it starts where v2 ends).
  bytes[v2.str().size() + 3] ^= 0x10;
  std::stringstream corrupt(bytes, std::ios::in | std::ios::binary);
  EXPECT_THROW(ReadIndex(corrupt), std::runtime_error);
}

TEST(IndexIoTest, TruncatedV3SignatureBlockRejected) {
  const DiGraph g = BuildFig2Graph();
  const RlcIndex index = BuildRlcIndex(g, 2);
  std::stringstream full_v2(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(index, full_v2, /*version=*/2);
  std::stringstream full_v3(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(index, full_v3, /*version=*/3);
  const std::string v3 = full_v3.str();
  ASSERT_GT(v3.size(), full_v2.str().size());
  // Cut inside the signature section (v3 bytes beyond the v2 body length).
  const size_t cut = full_v2.str().size() + 5;
  std::stringstream trunc(v3.substr(0, cut), std::ios::in | std::ios::binary);
  EXPECT_THROW(ReadIndex(trunc), std::runtime_error);
}

/// A dynamically maintained index with pending (unmerged) delta entries.
std::unique_ptr<DynamicRlcIndex> DeltaedIndex(const DiGraph& g, uint32_t k,
                                              uint64_t seed) {
  ResealPolicy policy;
  policy.max_delta_ratio = 1e9;  // never reseal: keep the deltas pending
  auto dyn = std::make_unique<DynamicRlcIndex>(g, BuildRlcIndex(g, k), policy);
  Rng rng(seed);
  while (dyn->index().delta_entries() < 12) {
    const auto u = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const auto v = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const auto l = static_cast<Label>(rng.Below(g.num_labels()));
    if (!dyn->HasEdge(u, l, v)) dyn->InsertEdge(u, l, v);
  }
  return dyn;
}

TEST(IndexIoTest, V4RoundTripWithPendingDeltas) {
  Rng rng(37);
  auto edges = ErdosRenyiEdges(90, 300, rng);
  AssignZipfLabels(&edges, 3, 2.0, rng);
  const DiGraph g(90, std::move(edges), 3);
  const auto dyn = DeltaedIndex(g, 2, 41);
  const RlcIndex& index = dyn->index();
  ASSERT_GT(index.delta_entries(), 0u);

  std::stringstream v4(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(index, v4);  // default format carries the deltas
  const RlcIndex loaded = ReadIndex(v4);
  ExpectSameIndex(index, loaded);
  EXPECT_EQ(index.delta_entries(), loaded.delta_entries());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_TRUE(std::ranges::equal(index.DeltaLout(v), loaded.DeltaLout(v)));
    EXPECT_TRUE(std::ranges::equal(index.DeltaLin(v), loaded.DeltaLin(v)));
  }

  // Load -> resave must reproduce the file byte for byte.
  std::stringstream resaved(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(loaded, resaved);
  EXPECT_EQ(v4.str(), resaved.str());

  // Loaded and original answer identically, deltas consulted.
  for (int trial = 0; trial < 400; ++trial) {
    const auto s = static_cast<VertexId>(rng.Below(90));
    const auto t = static_cast<VertexId>(rng.Below(90));
    const LabelSeq c = RandomPrimitiveSeq(1 + rng.Below(2), 3, rng);
    ASSERT_EQ(index.Query(s, t, c), loaded.Query(s, t, c));
  }
}

TEST(IndexIoTest, MergedDeltasSerializeLikeNoDeltas) {
  // After MergeDeltas the delta sections are empty: the v4 bytes must equal
  // those of an index that never had deltas pending... which is exactly the
  // byte layout property the static round-trip tests already rely on.
  const DiGraph g = BuildFig2Graph();
  const RlcIndex index = BuildRlcIndex(g, 2);
  std::stringstream direct(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(index, direct);
  RlcIndex copy = ReadIndex(direct);
  copy.MergeDeltas();  // no-op on an empty overlay
  std::stringstream after(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(copy, after);
  EXPECT_EQ(direct.str(), after.str());
}

TEST(IndexIoTest, OldVersionsRejectPendingDeltas) {
  const DiGraph g = BuildFig2Graph();
  DynamicRlcIndex dyn(g, BuildRlcIndex(g, 2),
                      ResealPolicy{.max_delta_ratio = 1e9});
  // Any insert that covers a new pair leaves pending deltas behind.
  Rng rng(43);
  while (dyn.index().delta_entries() == 0) {
    const auto u = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const auto v = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const auto l = static_cast<Label>(rng.Below(g.num_labels()));
    if (!dyn.HasEdge(u, l, v)) dyn.InsertEdge(u, l, v);
  }
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  for (const uint32_t version : {1u, 2u, 3u}) {
    EXPECT_THROW(WriteIndex(dyn.index(), buf, version), std::invalid_argument)
        << "version " << version;
  }
}

TEST(IndexIoTest, CorruptV4DeltaSectionRejected) {
  Rng rng(47);
  auto edges = ErdosRenyiEdges(70, 240, rng);
  AssignZipfLabels(&edges, 3, 2.0, rng);
  const DiGraph g(70, std::move(edges), 3);
  const auto dyn = DeltaedIndex(g, 2, 53);

  std::stringstream v4(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(dyn->index(), v4, /*version=*/4);
  const std::string bytes = v4.str();

  // Bit-flip inside the delta section (it ends the v4 file: last u64 is the
  // section checksum, entries precede it). Both a flipped entry word and a
  // flipped checksum must fail the load.
  for (const size_t back_off : {9u, 3u}) {
    std::string corrupt = bytes;
    corrupt[corrupt.size() - back_off] ^= 0x04;
    std::stringstream in(corrupt, std::ios::in | std::ios::binary);
    EXPECT_THROW(ReadIndex(in), std::runtime_error)
        << "flip at size-" << back_off;
  }

  // Truncation inside the delta section.
  for (const size_t cut_back : {1u, 8u, 17u}) {
    std::stringstream trunc(bytes.substr(0, bytes.size() - cut_back),
                            std::ios::in | std::ios::binary);
    EXPECT_THROW(ReadIndex(trunc), std::runtime_error)
        << "cut " << cut_back << " bytes";
  }
}

/// A dynamically maintained index with pending deltas *and* tombstones:
/// random inserts grow the delta lists, deletes of base edges tombstone
/// stale CSR entries.
std::unique_ptr<DynamicRlcIndex> TombstonedIndex(const DiGraph& g, uint32_t k,
                                                 uint64_t seed) {
  ResealPolicy policy;
  policy.max_delta_ratio = 1e9;  // never reseal: keep the overlays pending
  auto dyn = std::make_unique<DynamicRlcIndex>(g, BuildRlcIndex(g, k), policy);
  Rng rng(seed);
  const std::vector<Edge> base = g.ToEdgeList();
  while (dyn->index().tombstone_entries() < 6) {
    const Edge& e = base[rng.Below(base.size())];
    dyn->DeleteEdge(e.src, e.label, e.dst);
  }
  while (dyn->index().delta_entries() < 8) {
    const auto u = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const auto v = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const auto l = static_cast<Label>(rng.Below(g.num_labels()));
    if (!dyn->HasEdge(u, l, v)) dyn->InsertEdge(u, l, v);
  }
  return dyn;
}

TEST(IndexIoTest, V5RoundTripWithTombstones) {
  Rng rng(59);
  auto edges = ErdosRenyiEdges(90, 340, rng);
  AssignZipfLabels(&edges, 3, 2.0, rng);
  const DiGraph g(90, std::move(edges), 3);
  const auto dyn = TombstonedIndex(g, 2, 61);
  const RlcIndex& index = dyn->index();
  ASSERT_GT(index.tombstone_entries(), 0u);
  ASSERT_GT(index.delta_entries(), 0u);

  std::stringstream v5(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(index, v5);  // default format carries both overlays
  const RlcIndex loaded = ReadIndex(v5);
  ExpectSameIndex(index, loaded);
  EXPECT_EQ(index.delta_entries(), loaded.delta_entries());
  EXPECT_EQ(index.tombstone_entries(), loaded.tombstone_entries());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_TRUE(std::ranges::equal(index.DeltaLout(v), loaded.DeltaLout(v)));
    EXPECT_TRUE(std::ranges::equal(index.DeltaLin(v), loaded.DeltaLin(v)));
    EXPECT_TRUE(std::ranges::equal(index.TombLout(v), loaded.TombLout(v)));
    EXPECT_TRUE(std::ranges::equal(index.TombLin(v), loaded.TombLin(v)));
  }

  // Load -> resave must reproduce the file byte for byte.
  std::stringstream resaved(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(loaded, resaved);
  EXPECT_EQ(v5.str(), resaved.str());

  // Loaded and original answer identically, tombstones consulted.
  for (int trial = 0; trial < 400; ++trial) {
    const auto s = static_cast<VertexId>(rng.Below(90));
    const auto t = static_cast<VertexId>(rng.Below(90));
    const LabelSeq c = RandomPrimitiveSeq(1 + rng.Below(2), 3, rng);
    ASSERT_EQ(index.Query(s, t, c), loaded.Query(s, t, c));
  }
}

TEST(IndexIoTest, OldVersionsRejectPendingTombstones) {
  Rng rng(67);
  auto edges = ErdosRenyiEdges(60, 220, rng);
  AssignZipfLabels(&edges, 3, 2.0, rng);
  const DiGraph g(60, std::move(edges), 3);
  const auto dyn = TombstonedIndex(g, 2, 71);
  ASSERT_GT(dyn->index().tombstone_entries(), 0u);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  for (const uint32_t version : {1u, 2u, 3u, 4u}) {
    EXPECT_THROW(WriteIndex(dyn->index(), buf, version), std::invalid_argument)
        << "version " << version;
  }
}

TEST(IndexIoTest, CorruptV5TombstoneSectionRejected) {
  Rng rng(73);
  auto edges = ErdosRenyiEdges(70, 260, rng);
  AssignZipfLabels(&edges, 3, 2.0, rng);
  const DiGraph g(70, std::move(edges), 3);
  const auto dyn = TombstonedIndex(g, 2, 79);

  std::stringstream v5(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(dyn->index(), v5);
  const std::string bytes = v5.str();

  // The tombstone section ends the file: last u64 is its checksum, entries
  // precede it. A flipped entry word and a flipped checksum must both fail
  // the load.
  for (const size_t back_off : {9u, 3u}) {
    std::string corrupt = bytes;
    corrupt[corrupt.size() - back_off] ^= 0x04;
    std::stringstream in(corrupt, std::ios::in | std::ios::binary);
    EXPECT_THROW(ReadIndex(in), std::runtime_error)
        << "flip at size-" << back_off;
  }

  // Truncation anywhere inside the tombstone section.
  for (const size_t cut_back : {1u, 8u, 17u}) {
    std::stringstream trunc(bytes.substr(0, bytes.size() - cut_back),
                            std::ios::in | std::ios::binary);
    EXPECT_THROW(ReadIndex(trunc), std::runtime_error)
        << "cut " << cut_back << " bytes";
  }
}

TEST(IndexIoTest, TombstoneForMissingEntryRejected) {
  // An adversarial v5 file whose tombstone section passes the checksum but
  // references a CSR entry that does not exist: the load must fail on the
  // AddTombstone validation, not install a dangling tombstone.
  const DiGraph g = BuildFig2Graph();
  const RlcIndex index = BuildRlcIndex(g, 2);
  std::stringstream v5(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(index, v5);
  std::string bytes = v5.str();

  // Strip the empty tombstone section (u64 count, u64 count, u64 checksum)
  // and append a crafted one claiming vertex 0 tombstones an entry with an
  // in-range hub/mr that its Lout does not hold, with a valid checksum
  // (same FNV fold as index_io.cc).
  ASSERT_GE(bytes.size(), 24u);
  bytes.resize(bytes.size() - 24);
  uint32_t missing_aid = 0;
  const std::span<const IndexEntry> lout = index.Lout(0);
  for (uint32_t aid = 1; aid <= index.num_vertices(); ++aid) {
    if (std::none_of(lout.begin(), lout.end(), [&](const IndexEntry& e) {
          return e.hub_aid == aid && e.mr == 0;
        })) {
      missing_aid = aid;
      break;
    }
  }
  ASSERT_GT(missing_aid, 0u);
  uint64_t checksum = 0xCBF29CE484222325ULL;
  const auto fold = [&](uint64_t word) {
    checksum = (checksum ^ word) * 0x100000001B3ULL;
  };
  const auto put32 = [&](uint32_t v) {
    bytes.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  const auto put64 = [&](uint64_t v) {
    bytes.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put64(1);  // out side: one vertex with tombstones
  fold(1);
  put32(0);  // vertex 0
  put32(1);  // one entry
  fold(0);
  fold(1);
  put32(missing_aid);
  put32(0);  // mr 0
  fold(missing_aid);
  fold(0);
  put64(0);  // in side: empty
  fold(0);
  put64(checksum);

  std::stringstream in(bytes, std::ios::in | std::ios::binary);
  EXPECT_THROW(ReadIndex(in), std::runtime_error);
}

TEST(IndexIoTest, AllVersionsResaveByteIdentically) {
  // Read-compat sweep: for every still-writable version, write -> read ->
  // resave at the same version must reproduce the bytes, and resaving any
  // load as v5 must equal the direct v5 write (the loaded state is
  // indistinguishable from the original for overlay-free indexes).
  Rng rng(83);
  auto edges = ErdosRenyiEdges(100, 380, rng);
  AssignZipfLabels(&edges, 4, 2.0, rng);
  const DiGraph g(100, std::move(edges), 4);
  const RlcIndex index = BuildRlcIndex(g, 2);

  std::stringstream direct_v5(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(index, direct_v5, /*version=*/5);
  for (const uint32_t version : {1u, 2u, 3u, 4u, 5u}) {
    std::stringstream first(std::ios::in | std::ios::out | std::ios::binary);
    WriteIndex(index, first, version);
    const RlcIndex loaded = ReadIndex(first);
    ExpectSameIndex(index, loaded);

    std::stringstream same_version(std::ios::in | std::ios::out |
                                   std::ios::binary);
    WriteIndex(loaded, same_version, version);
    EXPECT_EQ(first.str(), same_version.str()) << "version " << version;

    std::stringstream as_v5(std::ios::in | std::ios::out | std::ios::binary);
    WriteIndex(loaded, as_v5, /*version=*/5);
    EXPECT_EQ(direct_v5.str(), as_v5.str())
        << "v" << version << " load resaved as v5";
  }
}

TEST(IndexIoTest, RoundTripEmptyIndex) {
  const RlcIndex index = BuildRlcIndex(DiGraph(), 2);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(index, buf);
  const RlcIndex loaded = ReadIndex(buf);
  EXPECT_EQ(loaded.num_vertices(), 0u);
  EXPECT_EQ(loaded.NumEntries(), 0u);
}

TEST(IndexIoTest, BadMagicRejected) {
  std::stringstream buf;
  buf << "this is not an index file at all, sorry";
  EXPECT_THROW(ReadIndex(buf), std::runtime_error);
}

TEST(IndexIoTest, TruncationRejected) {
  const DiGraph g = BuildFig2Graph();
  const RlcIndex index = BuildRlcIndex(g, 2);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(index, buf);
  const std::string full = buf.str();
  for (const size_t cut : {size_t{4}, full.size() / 2, full.size() - 3}) {
    std::stringstream trunc(full.substr(0, cut), std::ios::in | std::ios::binary);
    EXPECT_THROW(ReadIndex(trunc), std::runtime_error) << "cut at " << cut;
  }
}

TEST(IndexIoTest, FileRoundTrip) {
  const DiGraph g = BuildFig2Graph();
  const RlcIndex index = BuildRlcIndex(g, 2);
  const std::string path = ::testing::TempDir() + "/rlc_index_io_test.idx";
  SaveIndex(index, path);
  const RlcIndex loaded = LoadIndex(path);
  ExpectSameIndex(index, loaded);
  std::remove(path.c_str());
}

TEST(IndexIoTest, MissingFileThrows) {
  EXPECT_THROW(LoadIndex("/nonexistent/dir/index.idx"), std::runtime_error);
}

}  // namespace
}  // namespace rlc
