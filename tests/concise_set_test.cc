// Tests for concise-set enumeration (paper Definition 2 / Proposition 1).

#include "rlc/baselines/concise_set.h"

#include <gtest/gtest.h>

#include "rlc/baselines/online_search.h"
#include "rlc/core/indexer.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/graph/paper_graphs.h"
#include "rlc/util/rng.h"
#include "rlc/workload/query_gen.h"

namespace rlc {
namespace {

TEST(ConciseSetTest, PaperClaimS2P12P16) {
  // §III-C: S2(P12,P16) = {(knows), (knows worksFor)}.
  const DiGraph g = BuildFig1Graph();
  const Label knows = *g.FindLabel("knows");
  const Label works_for = *g.FindLabel("worksFor");
  const auto set =
      ComputeConciseSet(g, *g.FindVertex("P12"), *g.FindVertex("P16"), 2);
  const std::vector<LabelSeq> expected = {LabelSeq{knows},
                                          LabelSeq{knows, works_for}};
  EXPECT_EQ(set, expected);
}

TEST(ConciseSetTest, PaperClaimS2P11P13) {
  // Example 2: S2(P11,P13) contains (knows) and (worksFor knows).
  const DiGraph g = BuildFig1Graph();
  const Label knows = *g.FindLabel("knows");
  const Label works_for = *g.FindLabel("worksFor");
  const auto set =
      ComputeConciseSet(g, *g.FindVertex("P11"), *g.FindVertex("P13"), 2);
  EXPECT_NE(std::find(set.begin(), set.end(), LabelSeq{knows}), set.end());
  EXPECT_NE(std::find(set.begin(), set.end(), (LabelSeq{works_for, knows})),
            set.end());
}

TEST(ConciseSetTest, Fig2TableIIConsistency) {
  // Proposition 1: L ∈ Sk(s,t) iff the index answers (s,t,L+) true. Verify
  // the enumeration against the index for every pair and every MR seen.
  const DiGraph g = BuildFig2Graph();
  const RlcIndex index = BuildRlcIndex(g, 2);
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    const auto sets = ComputeConciseSetsFrom(g, s, 2);
    for (VertexId t = 0; t < g.num_vertices(); ++t) {
      for (const LabelSeq& mr : sets[t]) {
        EXPECT_TRUE(index.Query(s, t, mr))
            << "s=" << s << " t=" << t << " mr=" << mr.ToString();
      }
      // And the converse for all primitive sequences up to length 2.
      for (Label a = 0; a < g.num_labels(); ++a) {
        for (Label b = 0; b < g.num_labels(); ++b) {
          const LabelSeq c = (a == b) ? LabelSeq{a} : LabelSeq{a, b};
          const bool in_set =
              std::find(sets[t].begin(), sets[t].end(), c) != sets[t].end();
          EXPECT_EQ(index.Query(s, t, c), in_set)
              << "s=" << s << " t=" << t << " c=" << c.ToString();
        }
      }
    }
  }
}

TEST(ConciseSetTest, AgreesWithOracleOnRandomGraphs) {
  Rng rng(99);
  for (int trial = 0; trial < 6; ++trial) {
    auto edges = ErdosRenyiEdges(50, 200, rng);
    AssignZipfLabels(&edges, 3, 2.0, rng);
    const DiGraph g(50, std::move(edges), 3);
    OnlineSearcher oracle(g);
    const auto s = static_cast<VertexId>(rng.Below(50));
    const auto sets = ComputeConciseSetsFrom(g, s, 2);
    for (VertexId t = 0; t < 50; ++t) {
      for (Label a = 0; a < 3; ++a) {
        for (Label b = 0; b < 3; ++b) {
          const LabelSeq c = (a == b) ? LabelSeq{a} : LabelSeq{a, b};
          const bool expected =
              oracle.QueryBfsOnce(s, t, PathConstraint::RlcPlus(c));
          const bool in_set =
              std::find(sets[t].begin(), sets[t].end(), c) != sets[t].end();
          ASSERT_EQ(in_set, expected)
              << "s=" << s << " t=" << t << " c=" << c.ToString();
        }
      }
    }
  }
}

TEST(ConciseSetTest, SetsAreSortedAndDeduped) {
  const DiGraph g = BuildFig2Graph();
  const auto sets = ComputeConciseSetsFrom(g, *g.FindVertex("v1"), 2);
  for (const auto& set : sets) {
    EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
    EXPECT_EQ(std::adjacent_find(set.begin(), set.end()), set.end());
    for (const LabelSeq& mr : set) {
      EXPECT_TRUE(IsPrimitive(mr.labels()));
      EXPECT_LE(mr.size(), 2u);
    }
  }
}

TEST(ConciseSetTest, Validation) {
  const DiGraph g = BuildFig2Graph();
  EXPECT_THROW(ComputeConciseSet(g, 99, 0, 2), std::invalid_argument);
  EXPECT_THROW(ComputeConciseSet(g, 0, 99, 2), std::invalid_argument);
  EXPECT_THROW(ComputeConciseSet(g, 0, 1, 0), std::invalid_argument);
  EXPECT_THROW(ComputeConciseSet(g, 0, 1, kMaxK + 1), std::invalid_argument);
}

TEST(ConciseSetTest, UnreachableTargetsEmpty) {
  const DiGraph g(3, {{0, 1, 0}}, 1);
  const auto sets = ComputeConciseSetsFrom(g, 0, 2);
  EXPECT_EQ(sets[1].size(), 1u);
  EXPECT_TRUE(sets[2].empty());
  EXPECT_TRUE(sets[0].empty());  // no cycle through 0
}

}  // namespace
}  // namespace rlc
