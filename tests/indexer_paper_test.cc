// Golden tests against every worked example in the paper: the Fig. 2
// running example (Examples 4–6, Table II), the IN-OUT access order, and
// the Fig. 1 examples (Examples 1–3, §III-C).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "rlc/core/indexer.h"
#include "rlc/graph/paper_graphs.h"

namespace rlc {
namespace {

// (vertex name, hub name, mr as label names) — readable golden entries.
using NamedEntry = std::tuple<std::string, std::string, std::vector<std::string>>;

std::set<NamedEntry> CollectEntries(const DiGraph& g, const RlcIndex& index,
                                    bool out_side) {
  std::set<NamedEntry> entries;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto& list = out_side ? index.Lout(v) : index.Lin(v);
    for (const IndexEntry& e : list) {
      const VertexId hub = index.VertexOfAid(e.hub_aid);
      const LabelSeq& mr = index.mr_table().Get(e.mr);
      std::vector<std::string> labels;
      for (uint32_t i = 0; i < mr.size(); ++i) {
        labels.push_back(g.LabelName(mr[i]));
      }
      entries.insert({g.VertexName(v), g.VertexName(hub), labels});
    }
  }
  return entries;
}

class Fig2IndexTest : public ::testing::Test {
 protected:
  Fig2IndexTest() : g_(BuildFig2Graph()), index_(BuildRlcIndex(g_, 2)) {}

  VertexId V(const std::string& name) const { return *g_.FindVertex(name); }
  Label L(const std::string& name) const { return *g_.FindLabel(name); }

  DiGraph g_;
  RlcIndex index_;
};

TEST_F(Fig2IndexTest, AccessOrderMatchesPaper) {
  // Fig. 2 superscripts: v1^(1), v3^(2), v2^(3), v4^(4), v5^(5), v6^(6).
  EXPECT_EQ(index_.AccessId(V("v1")), 1u);
  EXPECT_EQ(index_.AccessId(V("v3")), 2u);
  EXPECT_EQ(index_.AccessId(V("v2")), 3u);
  EXPECT_EQ(index_.AccessId(V("v4")), 4u);
  EXPECT_EQ(index_.AccessId(V("v5")), 5u);
  EXPECT_EQ(index_.AccessId(V("v6")), 6u);
}

TEST_F(Fig2IndexTest, LoutMatchesTableII) {
  const std::set<NamedEntry> expected = {
      {"v1", "v1", {"l2"}},
      {"v1", "v1", {"l1"}},
      {"v1", "v1", {"l2", "l1"}},
      {"v2", "v1", {"l2", "l1"}},
      {"v2", "v1", {"l1"}},
      {"v3", "v1", {"l2"}},
      {"v3", "v1", {"l2", "l1"}},
      {"v3", "v1", {"l1"}},
      {"v3", "v3", {"l1", "l2"}},
      {"v4", "v1", {"l1"}},
      {"v4", "v3", {"l1", "l2"}},
      {"v5", "v1", {"l1"}},
      {"v5", "v3", {"l1", "l2"}},
  };
  EXPECT_EQ(CollectEntries(g_, index_, /*out_side=*/true), expected);
}

TEST_F(Fig2IndexTest, LinMatchesTableII) {
  const std::set<NamedEntry> expected = {
      {"v2", "v1", {"l1"}},
      {"v2", "v1", {"l2", "l1"}},
      {"v3", "v1", {"l2"}},
      {"v3", "v1", {"l1", "l2"}},
      {"v4", "v1", {"l2"}},
      {"v5", "v1", {"l1", "l2"}},
      {"v5", "v1", {"l1"}},
      {"v5", "v3", {"l1", "l2"}},
      {"v5", "v2", {"l2"}},
      {"v6", "v1", {"l2", "l1"}},
      {"v6", "v3", {"l1"}},
      {"v6", "v3", {"l2", "l3"}},
      {"v6", "v4", {"l3"}},
  };
  EXPECT_EQ(CollectEntries(g_, index_, /*out_side=*/false), expected);
}

TEST_F(Fig2IndexTest, Example4Queries) {
  // Q1(v3, v6, (l2,l1)+) = true via (v3,l2,v4,l1,v1,l2,v3,l1,v6).
  EXPECT_TRUE(index_.Query(V("v3"), V("v6"), LabelSeq{L("l2"), L("l1")}));
  // Q2(v1, v2, (l2,l1)+) = true via (v1,(l2,l1)) ∈ Lin(v2).
  EXPECT_TRUE(index_.Query(V("v1"), V("v2"), LabelSeq{L("l2"), L("l1")}));
  // Q3(v1, v3, (l1)+) = false although v1 reaches v3.
  EXPECT_FALSE(index_.Query(V("v1"), V("v3"), LabelSeq{L("l1")}));
}

TEST_F(Fig2IndexTest, LoutOrderOfV1FollowsIndexingTrace) {
  // Example 5's trace inserts into Lout(v1): (v1,l2) during kernel-search,
  // then (v1,l1) during the (l1)+ kernel-BFS, then (v1,(l2,l1)) during the
  // (l2,l1)+ kernel-BFS. Entry order is observable (append-only lists).
  const auto& lout = index_.Lout(V("v1"));
  ASSERT_EQ(lout.size(), 3u);
  EXPECT_EQ(index_.mr_table().Get(lout[0].mr), (LabelSeq{L("l2")}));
  EXPECT_EQ(index_.mr_table().Get(lout[1].mr), (LabelSeq{L("l1")}));
  EXPECT_EQ(index_.mr_table().Get(lout[2].mr), (LabelSeq{L("l2"), L("l1")}));
}

TEST_F(Fig2IndexTest, EntriesSortedByAccessId) {
  for (VertexId v = 0; v < g_.num_vertices(); ++v) {
    for (const auto list : {index_.Lout(v), index_.Lin(v)}) {
      EXPECT_TRUE(std::is_sorted(list.begin(), list.end(),
                                 [](const IndexEntry& a, const IndexEntry& b) {
                                   return a.hub_aid < b.hub_aid;
                                 }));
    }
  }
}

TEST_F(Fig2IndexTest, StarQueries) {
  // (s,s,L*) is trivially true; otherwise star reduces to plus (§III-B).
  EXPECT_TRUE(index_.QueryStar(V("v6"), V("v6"), LabelSeq{L("l3")}));
  EXPECT_TRUE(index_.QueryStar(V("v3"), V("v6"), LabelSeq{L("l2"), L("l1")}));
  EXPECT_FALSE(index_.QueryStar(V("v1"), V("v3"), LabelSeq{L("l1")}));
}

TEST_F(Fig2IndexTest, QueryValidation) {
  EXPECT_THROW(index_.Query(V("v1"), V("v2"), LabelSeq{}), std::invalid_argument);
  // Non-primitive constraint (l1 l1): L != MR(L).
  EXPECT_THROW(index_.Query(V("v1"), V("v2"), LabelSeq{L("l1"), L("l1")}),
               std::invalid_argument);
  // Longer than k.
  EXPECT_THROW(
      index_.Query(V("v1"), V("v2"), LabelSeq{L("l1"), L("l2"), L("l3")}),
      std::invalid_argument);
  // Vertex out of range.
  EXPECT_THROW(index_.Query(99, V("v2"), LabelSeq{L("l1")}),
               std::invalid_argument);
  // Unknown-to-the-index MR: valid arguments, never recorded -> false.
  EXPECT_FALSE(index_.Query(V("v1"), V("v2"), LabelSeq{L("l3"), L("l1")}));
}

class Fig1IndexTest : public ::testing::Test {
 protected:
  Fig1IndexTest() : g_(BuildFig1Graph()), index2_(BuildRlcIndex(g_, 2)) {}

  VertexId V(const std::string& name) const { return *g_.FindVertex(name); }
  Label L(const std::string& name) const { return *g_.FindLabel(name); }

  DiGraph g_;
  RlcIndex index2_;
};

TEST_F(Fig1IndexTest, Example1FraudQuery) {
  EXPECT_TRUE(index2_.Query(V("A14"), V("A19"),
                            LabelSeq{L("debits"), L("credits")}));
  // No reverse money trail.
  EXPECT_FALSE(index2_.Query(V("A19"), V("A14"),
                             LabelSeq{L("debits"), L("credits")}));
}

TEST_F(Fig1IndexTest, Example1SocialQueryNeedsK3) {
  const RlcIndex index3 = BuildRlcIndex(g_, 3);
  EXPECT_FALSE(index3.Query(V("P10"), V("P13"),
                            LabelSeq{L("knows"), L("knows"), L("worksFor")}));
  // Sanity: P10 does reach P13 under (knows)+.
  EXPECT_TRUE(index3.Query(V("P10"), V("P13"), LabelSeq{L("knows")}));
}

TEST_F(Fig1IndexTest, SectionIIIConciseSetClaims) {
  // S2(P12,P16) = {(knows), (knows worksFor)}: both constraints hold...
  EXPECT_TRUE(index2_.Query(V("P12"), V("P16"), LabelSeq{L("knows")}));
  EXPECT_TRUE(index2_.Query(V("P12"), V("P16"),
                            LabelSeq{L("knows"), L("worksFor")}));
  // ...and nothing else of length <= 2 does.
  for (Label a = 0; a < g_.num_labels(); ++a) {
    for (Label b = 0; b < g_.num_labels(); ++b) {
      const bool in_s2 =
          (a == L("knows") && b == L("knows")) ||
          (a == L("knows") && b == L("worksFor"));
      LabelSeq c = (a == b) ? LabelSeq{a} : LabelSeq{a, b};
      if (a == b && a != L("knows")) {
        EXPECT_FALSE(index2_.Query(V("P12"), V("P16"), c));
      } else if (a != b) {
        EXPECT_EQ(index2_.Query(V("P12"), V("P16"), c), in_s2)
            << "constraint (" << a << " " << b << ")";
      }
    }
  }
}

TEST_F(Fig1IndexTest, Example2ConciseSet) {
  // S2(P11,P13) contains (knows) and (worksFor,knows).
  EXPECT_TRUE(index2_.Query(V("P11"), V("P13"), LabelSeq{L("knows")}));
  EXPECT_TRUE(index2_.Query(V("P11"), V("P13"),
                            LabelSeq{L("worksFor"), L("knows")}));
}

TEST_F(Fig1IndexTest, Example3InvalidKernelCannotReachP13) {
  // The eager kernel candidate (knows worksFor) from P10 must not produce a
  // P10 -> P13 result.
  EXPECT_FALSE(index2_.Query(V("P10"), V("P13"),
                             LabelSeq{L("knows"), L("worksFor")}));
  // But it is a real kernel for P10 -> P16.
  EXPECT_TRUE(index2_.Query(V("P10"), V("P16"),
                            LabelSeq{L("knows"), L("worksFor")}));
}

TEST(IndexerConfigTest, BuilderRejectsBadK) {
  const DiGraph g = BuildFig2Graph();
  EXPECT_THROW(BuildRlcIndex(g, 0), std::invalid_argument);
  EXPECT_THROW(BuildRlcIndex(g, kMaxK + 1), std::invalid_argument);
}

TEST(IndexerConfigTest, BuildTwiceAborts) {
  const DiGraph g = BuildFig2Graph();
  IndexerOptions options;
  RlcIndexBuilder builder(g, options);
  (void)builder.Build();
  EXPECT_DEATH((void)builder.Build(), "called twice");
}

TEST(IndexerConfigTest, OrderingStrategies) {
  const DiGraph g = BuildFig2Graph();
  const auto in_out =
      RlcIndexBuilder::ComputeOrder(g, VertexOrdering::kInOut, 0);
  EXPECT_EQ(in_out.size(), g.num_vertices());
  const auto by_id =
      RlcIndexBuilder::ComputeOrder(g, VertexOrdering::kVertexId, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(by_id[v], v);
  const auto random =
      RlcIndexBuilder::ComputeOrder(g, VertexOrdering::kRandom, 123);
  auto sorted = random;
  std::sort(sorted.begin(), sorted.end());
  for (VertexId v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(sorted[v], v);
  // Determinism in the seed.
  EXPECT_EQ(random, RlcIndexBuilder::ComputeOrder(g, VertexOrdering::kRandom, 123));
}

TEST(IndexerStatsTest, CountersPopulated) {
  const DiGraph g = BuildFig2Graph();
  IndexerOptions options;
  RlcIndexBuilder builder(g, options);
  const RlcIndex index = builder.Build();
  const IndexerStats& stats = builder.stats();
  EXPECT_EQ(stats.entries_inserted, index.NumEntries());
  EXPECT_GT(stats.kernel_search_states, 0u);
  EXPECT_GT(stats.kernel_bfs_runs, 0u);
  EXPECT_GT(stats.pruned_pr1 + stats.pruned_pr2, 0u);
  EXPECT_GE(stats.build_seconds, 0.0);
}

}  // namespace
}  // namespace rlc
