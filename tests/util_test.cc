// Tests for the utility layer: RNG determinism and distribution sanity,
// Zipf sampler exactness, timers.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rlc/util/rng.h"
#include "rlc/util/timer.h"
#include "rlc/util/zipf.h"

namespace rlc {
namespace {

TEST(RngTest, DeterministicInSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) differs |= (a2.Next64() != c.Next64());
  EXPECT_TRUE(differs);
}

TEST(RngTest, BelowIsInRangeAndRoughlyUniform) {
  Rng rng(7);
  std::vector<uint64_t> counts(10, 0);
  const int draws = 100'000;
  for (int i = 0; i < draws; ++i) {
    const uint64_t x = rng.Below(10);
    ASSERT_LT(x, 10u);
    ++counts[x];
  }
  for (uint64_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), draws / 10.0, draws / 10.0 * 0.15);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const uint64_t x = rng.Range(5, 8);
    ASSERT_GE(x, 5u);
    ASSERT_LE(x, 8u);
    saw_lo |= (x == 5);
    saw_hi |= (x == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(RngTest, Bernoulli) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10'000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits, 3000, 300);
}

TEST(ZipfTest, PmfMatchesFormula) {
  const ZipfSampler zipf(4, 2.0);
  const double z = 1.0 + 1.0 / 4 + 1.0 / 9 + 1.0 / 16;
  EXPECT_NEAR(zipf.Pmf(0), 1.0 / z, 1e-12);
  EXPECT_NEAR(zipf.Pmf(1), 0.25 / z, 1e-12);
  EXPECT_NEAR(zipf.Pmf(3), 0.0625 / z, 1e-12);
  EXPECT_EQ(zipf.domain_size(), 4u);
}

TEST(ZipfTest, EmpiricalFrequenciesTrackPmf) {
  const ZipfSampler zipf(8, 2.0);
  Rng rng(3);
  std::vector<uint64_t> counts(8, 0);
  const int draws = 200'000;
  for (int i = 0; i < draws; ++i) ++counts[zipf.Sample(rng)];
  for (uint64_t r = 0; r < 8; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / draws, zipf.Pmf(r),
                0.01 + zipf.Pmf(r) * 0.1)
        << "rank " << r;
  }
}

TEST(ZipfTest, RejectsEmptyDomain) {
  EXPECT_THROW(ZipfSampler(0, 2.0), std::invalid_argument);
}

TEST(ZipfTest, ExponentZeroIsUniform) {
  const ZipfSampler zipf(5, 0.0);
  for (uint64_t r = 0; r < 5; ++r) EXPECT_NEAR(zipf.Pmf(r), 0.2, 1e-12);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  // Burn a little CPU deterministically.
  volatile uint64_t x = 0;
  for (int i = 0; i < 2'000'000; ++i) x = x + static_cast<uint64_t>(i);
  const double s = t.ElapsedSeconds();
  EXPECT_GT(s, 0.0);
  EXPECT_NEAR(t.ElapsedMicros(), t.ElapsedSeconds() * 1e6,
              t.ElapsedSeconds() * 1e6 * 0.5);
  t.Reset();
  EXPECT_LT(t.ElapsedSeconds(), s + 1.0);
}

TEST(CheckTest, RequireThrows) {
  EXPECT_THROW(RLC_REQUIRE(false, "boom " << 42), std::invalid_argument);
  EXPECT_NO_THROW(RLC_REQUIRE(true, "fine"));
}

}  // namespace
}  // namespace rlc
