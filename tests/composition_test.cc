// Partition-sweep differential suite for cross-shard composition.
//
// The routing tier this pins: a cross-shard probe is answered by
// source-shard suffix -> boundary-skeleton hop(s) -> target-shard prefix
// (serve/compose.h) with NO whole-graph structure anywhere in the service.
// The whole-graph RlcIndex appears here only as the test oracle.
//
// Every cell of the matrix
//   policy in {hash, range, range-ordered} x shards in {1, 2, 4, 7}
//     x k in {2, 3} x oracle signatures {on, off}
// compares the composed service bit-exact against the oracle on ER,
// Barabasi-Albert, and planted-partition community graphs — scalar Query
// and batched Execute both — over probe sets that cover every endpoint
// category: both endpoints boundary vertices, both interior, and mixed.
// A second group round-trips the composition warm cache through
// SerializeCache / WriteCompositionCache / ReadCompositionCache /
// RestoreCache, including corruption and shape-mismatch rejection.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "rlc/core/index_io.h"
#include "rlc/core/indexer.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/serve/compose.h"
#include "rlc/serve/query_batch.h"
#include "rlc/serve/sharded_service.h"
#include "rlc/util/rng.h"
#include "rlc/workload/query_gen.h"

namespace rlc {
namespace {

namespace fs = std::filesystem;

RlcIndex BuildSealed(const DiGraph& g, uint32_t k) {
  IndexerOptions options;
  options.k = k;
  RlcIndexBuilder builder(g, options);
  return builder.Build();
}

DiGraph ErGraph(VertexId n, uint64_t m, Label labels, uint64_t seed) {
  Rng rng(seed);
  auto edges = ErdosRenyiEdges(n, m, rng);
  AssignZipfLabels(&edges, labels, 2.0, rng);
  return DiGraph(n, std::move(edges), labels);
}

DiGraph BaGraph(VertexId n, uint32_t m0, Label labels, uint64_t seed) {
  Rng rng(seed);
  auto edges = BarabasiAlbertEdges(n, m0, rng);
  AssignZipfLabels(&edges, labels, 2.0, rng);
  return DiGraph(n, std::move(edges), labels);
}

DiGraph CommunityGraph(VertexId n, uint64_t m, Label labels, uint64_t seed) {
  Rng rng(seed);
  auto edges = PlantedPartitionEdges(n, m, 4, 0.85, rng);
  AssignZipfLabels(&edges, labels, 2.0, rng);
  return DiGraph(n, std::move(edges), labels);
}

/// Constraints worth probing: oracle MRs (capped) plus random primitive
/// sequences of every length up to k.
std::vector<LabelSeq> ProbeSeqs(const RlcIndex& oracle, Label labels,
                                uint32_t k, Rng& rng) {
  std::vector<LabelSeq> seqs;
  const MrTable& mrs = oracle.mr_table();
  for (MrId id = 0; id < mrs.size() && seqs.size() < 8; ++id) {
    if (mrs.Get(id).size() <= k) seqs.push_back(mrs.Get(id));
  }
  for (uint32_t i = 0; i < 4; ++i) {
    seqs.push_back(RandomPrimitiveSeq(1 + i % k, labels, rng));
  }
  return seqs;
}

/// Endpoint pairs covering all categories the skeleton routing has to get
/// right: boundary->boundary, interior->interior, boundary->interior,
/// interior->boundary, plus uniform pairs. Single-shard partitions have no
/// boundary; the uniform pairs then carry the cell.
std::vector<std::pair<VertexId, VertexId>> ProbePairs(
    const GraphPartition& partition, VertexId n, Rng& rng) {
  std::vector<VertexId> boundary, interior;
  for (VertexId v = 0; v < n; ++v) {
    (partition.IsBoundary(v) ? boundary : interior).push_back(v);
  }
  const auto pick = [&](const std::vector<VertexId>& from) {
    return from[rng.Below(from.size())];
  };
  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (int i = 0; i < 24; ++i) {
    if (!boundary.empty()) {
      pairs.emplace_back(pick(boundary), pick(boundary));
      if (!interior.empty()) {
        pairs.emplace_back(pick(boundary), pick(interior));
        pairs.emplace_back(pick(interior), pick(boundary));
      }
    }
    if (!interior.empty()) pairs.emplace_back(pick(interior), pick(interior));
    pairs.emplace_back(static_cast<VertexId>(rng.Below(n)),
                       static_cast<VertexId>(rng.Below(n)));
  }
  return pairs;
}

/// One cell of the sweep: build the service, compare every (pair, seq)
/// probe scalar and batched against the oracle (signatures as configured).
void RunCell(const DiGraph& g, const RlcIndex& oracle, bool use_signatures,
             PartitionPolicy policy, uint32_t shards, uint32_t k,
             uint64_t seed) {
  SCOPED_TRACE("policy=" + std::to_string(static_cast<int>(policy)) +
               " shards=" + std::to_string(shards) + " k=" + std::to_string(k) +
               " sig=" + std::to_string(use_signatures) +
               " seed=" + std::to_string(seed));
  RlcIndex ref = oracle;  // cheap relative to the build; keeps oracle const
  ref.set_use_signatures(use_signatures);

  ServiceOptions options;
  options.partition.num_shards = shards;
  options.partition.policy = policy;
  options.indexer.k = k;
  options.build_threads = 2;
  ShardedRlcService service(g, options);

  Rng rng(seed);
  const auto seqs = ProbeSeqs(ref, g.num_labels(), k, rng);
  const auto pairs = ProbePairs(service.partition(), g.num_vertices(), rng);

  QueryBatch batch;
  std::vector<uint8_t> expected;
  for (const LabelSeq& seq : seqs) {
    const uint32_t seq_id = batch.InternSequence(seq);
    for (const auto& [s, t] : pairs) {
      const bool want = ref.Query(s, t, seq);
      ASSERT_EQ(want, service.Query(s, t, seq))
          << "s=" << s << " t=" << t << " L=" << seq.ToString();
      batch.Add(s, t, seq_id);
      expected.push_back(want ? 1 : 0);
    }
  }
  const AnswerBatch answers = service.Execute(batch);
  ASSERT_EQ(answers.answers, expected);
  EXPECT_TRUE(answers.all_ok());

  // Routing is total: every scalar probe terminated in exactly one tier.
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries,
            stats.intra_true + stats.cross_refuted + stats.compose_probes);
}

void RunSweep(const DiGraph& g, uint64_t seed) {
  for (const uint32_t k : {2u, 3u}) {
    const RlcIndex oracle = BuildSealed(g, k);
    for (const PartitionPolicy policy :
         {PartitionPolicy::kHash, PartitionPolicy::kRange,
          PartitionPolicy::kRangeOrdered}) {
      for (const uint32_t shards : {1u, 2u, 4u, 7u}) {
        for (const bool sig : {true, false}) {
          RunCell(g, oracle, sig, policy, shards, k,
                  seed ^ (k * 131) ^ (shards * 17) ^
                      (static_cast<uint64_t>(policy) << 8) ^ sig);
        }
      }
    }
  }
}

TEST(CompositionSweepTest, ErdosRenyi) { RunSweep(ErGraph(72, 300, 3, 0xE1), 0xE1); }

TEST(CompositionSweepTest, BarabasiAlbert) {
  RunSweep(BaGraph(72, 3, 3, 0xB2), 0xB2);
}

TEST(CompositionSweepTest, Community) {
  RunSweep(CommunityGraph(72, 300, 3, 0xC3), 0xC3);
}

// ---------------------------------------------------------------------------
// Warm-cache IO: SerializeCache payloads survive the file framing, restore
// into a same-shape engine byte-deterministically, and are rejected (engine
// stays usable, cold) on corruption or a different partition shape.

std::string TempCachePath() {
  std::string templ =
      (fs::temp_directory_path() / "rlc_compose_cache_XXXXXX").string();
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    throw std::runtime_error("mkdtemp failed for " + templ);
  }
  return std::string(buf.data()) + "/compose.snap";
}

struct EngineParts {
  GraphPartition partition;
  std::vector<std::unique_ptr<DynamicRlcIndex>> shards;
};

EngineParts MakeParts(const DiGraph& g, uint32_t num_shards,
                      PartitionPolicy policy) {
  EngineParts parts;
  PartitionerOptions popts;
  popts.num_shards = num_shards;
  popts.policy = policy;
  parts.partition = GraphPartition::Build(g, popts);
  for (uint32_t s = 0; s < parts.partition.num_shards(); ++s) {
    const DiGraph& sg = parts.partition.shard(s).graph;
    parts.shards.push_back(std::make_unique<DynamicRlcIndex>(
        sg, BuildSealed(sg, 2), ResealPolicy{}));
  }
  return parts;
}

TEST(CompositionCacheIoTest, RoundTripRestoresWarmTables) {
  const DiGraph g = ErGraph(60, 260, 3, 0x10);
  const EngineParts parts = MakeParts(g, 3, PartitionPolicy::kHash);
  CompositionEngine warm(parts.partition, parts.shards);

  // Warm the cache: prepare plans and run probes so transition rows build.
  Rng rng(0x10);
  CompositionEngine::Scratch scratch;
  std::vector<LabelSeq> seqs;
  for (uint32_t i = 0; i < 4; ++i) {
    seqs.push_back(RandomPrimitiveSeq(1 + i % 2, g.num_labels(), rng));
  }
  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (int i = 0; i < 40; ++i) {
    pairs.emplace_back(static_cast<VertexId>(rng.Below(g.num_vertices())),
                       static_cast<VertexId>(rng.Below(g.num_vertices())));
  }
  std::vector<uint8_t> want;
  for (const LabelSeq& seq : seqs) {
    const CompositionEngine::Plan& plan = warm.PreparePlan(seq);
    for (const auto& [s, t] : pairs) {
      want.push_back(warm.ComposedQuery(s, t, plan, scratch).reachable ? 1 : 0);
    }
  }

  // Payload -> file -> payload is identity.
  const std::vector<uint8_t> payload = warm.SerializeCache();
  const std::string path = TempCachePath();
  WriteCompositionCache(path, payload);
  const std::vector<uint8_t> read = ReadCompositionCache(path);
  EXPECT_EQ(payload, read);

  // Restore into a fresh engine over the same partition shape: accepted,
  // resaves byte-identically, and answers match the warm engine.
  CompositionEngine cold(parts.partition, parts.shards);
  ASSERT_TRUE(cold.RestoreCache(read));
  EXPECT_EQ(cold.SerializeCache(), payload);
  CompositionEngine::Scratch cold_scratch;
  size_t i = 0;
  for (const LabelSeq& seq : seqs) {
    const CompositionEngine::Plan& plan = cold.PreparePlan(seq);
    for (const auto& [s, t] : pairs) {
      EXPECT_EQ(want[i++] != 0,
                cold.ComposedQuery(s, t, plan, cold_scratch).reachable)
          << "s=" << s << " t=" << t << " L=" << seq.ToString();
    }
  }

  // Corruption is detectable: any flipped byte fails the framing checksum.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(path) / 2));
    char b = 0;
    f.seekg(static_cast<std::streamoff>(fs::file_size(path) / 2));
    f.read(&b, 1);
    f.seekp(static_cast<std::streamoff>(fs::file_size(path) / 2));
    b = static_cast<char>(b ^ 0x40);
    f.write(&b, 1);
  }
  EXPECT_THROW(ReadCompositionCache(path), std::runtime_error);

  // Shape mismatch: a different shard count rejects the payload but the
  // engine stays fully usable (cold).
  const EngineParts other = MakeParts(g, 4, PartitionPolicy::kRange);
  CompositionEngine mismatched(other.partition, other.shards);
  EXPECT_FALSE(mismatched.RestoreCache(payload));
  EXPECT_EQ(mismatched.num_cached_plans(), 0u);
  CompositionEngine::Scratch mm_scratch;
  const CompositionEngine::Plan& plan = mismatched.PreparePlan(seqs[0]);
  (void)mismatched.ComposedQuery(pairs[0].first, pairs[0].second, plan,
                                 mm_scratch);

  fs::remove_all(fs::path(path).parent_path());
}

TEST(CompositionCacheIoTest, ServiceCheckpointCarriesComposeSnap) {
  // End to end through the service: a checkpointed generation contains
  // compose.snap; deleting it does NOT break recovery (pure warm cache) —
  // the reopened service answers identically either way.
  const DiGraph g = ErGraph(50, 200, 3, 0x20);
  const RlcIndex oracle = BuildSealed(g, 2);
  std::string dir;
  {
    std::string templ =
        (fs::temp_directory_path() / "rlc_compose_svc_XXXXXX").string();
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    ASSERT_NE(::mkdtemp(buf.data()), nullptr);
    dir = buf.data();
  }
  ServiceOptions options;
  options.partition.num_shards = 3;
  options.indexer.k = 2;
  options.durability.dir = dir;
  options.durability.checkpoint_wal_bytes = 0;
  Rng rng(0x20);
  {
    ShardedRlcService service(g, options);
    for (int i = 0; i < 200; ++i) {  // warm the compose cache
      service.Query(static_cast<VertexId>(rng.Below(g.num_vertices())),
                    static_cast<VertexId>(rng.Below(g.num_vertices())),
                    RandomPrimitiveSeq(1 + rng.Below(2), g.num_labels(), rng));
    }
    service.Checkpoint();
  }
  std::vector<fs::path> snaps;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.path().filename() == "compose.snap") snaps.push_back(entry);
  }
  ASSERT_FALSE(snaps.empty()) << "checkpoint wrote no compose.snap under "
                              << dir;
  const auto check = [&] {
    ShardedRlcService reopened(g, options);
    EXPECT_TRUE(reopened.recovery_info().recovered);
    Rng prng(0x21);
    for (int i = 0; i < 400; ++i) {
      const auto s = static_cast<VertexId>(prng.Below(g.num_vertices()));
      const auto t = static_cast<VertexId>(prng.Below(g.num_vertices()));
      const LabelSeq c =
          RandomPrimitiveSeq(1 + prng.Below(2), g.num_labels(), prng);
      ASSERT_EQ(oracle.Query(s, t, c), reopened.Query(s, t, c))
          << "s=" << s << " t=" << t << " L=" << c.ToString();
    }
  };
  check();                                       // warm restore path
  for (const fs::path& p : snaps) fs::remove(p);
  check();                                       // cold path: cache absent
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Skeleton frontier cache: answers are bit-identical with the cache on or
// off across the partition sweep, the counters conserve (every installed
// frontier was a miss, and is either still cached or counted evicted),
// mutations invalidate cached frontiers, and LRU capacity pressure evicts
// without changing answers.

void RunFrontierCacheCell(const DiGraph& g, const RlcIndex& oracle,
                          PartitionPolicy policy, uint32_t shards, uint32_t k,
                          uint32_t exec_threads, uint64_t seed) {
  SCOPED_TRACE("policy=" + std::to_string(static_cast<int>(policy)) +
               " shards=" + std::to_string(shards) + " k=" + std::to_string(k) +
               " threads=" + std::to_string(exec_threads));
  ServiceOptions cached_opts;
  cached_opts.partition.num_shards = shards;
  cached_opts.partition.policy = policy;
  cached_opts.indexer.k = k;
  cached_opts.build_threads = 2;
  cached_opts.exec_threads = exec_threads;
  ServiceOptions cold_opts = cached_opts;
  cold_opts.compose.frontier_cache_entries = 0;  // cache off
  ShardedRlcService cached(g, cached_opts);
  ShardedRlcService cold(g, cold_opts);

  Rng rng(seed);
  const auto seqs = ProbeSeqs(oracle, g.num_labels(), k, rng);
  const auto pairs = ProbePairs(cached.partition(), g.num_vertices(), rng);
  QueryBatch batch;
  for (const LabelSeq& seq : seqs) {
    const uint32_t seq_id = batch.InternSequence(seq);
    for (const auto& [s, t] : pairs) batch.Add(s, t, seq_id);
  }

  // Two rounds: the first installs frontiers, the second answers from them.
  // Both rounds must be bit-identical to the cache-off service and exact
  // against the oracle.
  for (int round = 0; round < 2; ++round) {
    const AnswerBatch a = cached.Execute(batch);
    const AnswerBatch b = cold.Execute(batch);
    ASSERT_EQ(a.answers, b.answers) << "round " << round;
    EXPECT_TRUE(a.all_ok());
    EXPECT_TRUE(b.all_ok());
    for (size_t i = 0; i < batch.num_probes(); ++i) {
      const BatchProbe& p = batch.probes()[i];
      ASSERT_EQ(a.answers[i] != 0,
                oracle.Query(p.s, p.t, batch.sequence(p.seq_id)))
          << "round " << round << " s=" << p.s << " t=" << p.t;
    }
  }

  const ServiceStats cs = cached.stats();
  const ServiceStats ns = cold.stats();
  EXPECT_EQ(ns.frontier_hits + ns.frontier_misses + ns.frontier_evictions, 0u)
      << "cache-off service touched the frontier cache";
  if (shards > 1 && cs.compose_probes > 0) {
    EXPECT_GT(cs.frontier_hits + cs.frontier_misses, 0u)
        << "composed probes ran but the cache saw none of them";
  }
  // Conservation: misses == evictions + still-cached entries.
  EXPECT_EQ(cs.frontier_misses,
            cs.frontier_evictions + cached.composition().num_cached_frontiers());
}

TEST(FrontierCacheTest, SweepMatchesCacheOffBitExact) {
  const DiGraph g = ErGraph(72, 300, 3, 0xF1);
  for (const uint32_t k : {2u, 3u}) {
    const RlcIndex oracle = BuildSealed(g, k);
    for (const PartitionPolicy policy :
         {PartitionPolicy::kHash, PartitionPolicy::kRangeOrdered}) {
      for (const uint32_t shards : {2u, 4u, 7u}) {
        RunFrontierCacheCell(g, oracle, policy, shards, k, /*exec_threads=*/1,
                             0xF1 ^ (k * 131) ^ (shards * 17));
      }
    }
  }
}

TEST(FrontierCacheTest, ParallelExecutionMatchesCacheOff) {
  // Single-flight builds keep the cache exact (and its counters conserved)
  // when composed jobs fan out across a pool.
  const DiGraph g = CommunityGraph(72, 300, 3, 0xF2);
  const RlcIndex oracle = BuildSealed(g, 2);
  RunFrontierCacheCell(g, oracle, PartitionPolicy::kHash, 4, 2,
                       /*exec_threads=*/2, 0xF2);
}

TEST(FrontierCacheTest, MutationInvalidatesCachedFrontiers) {
  // Mutate-then-reprobe differential: cached frontiers are functions of the
  // whole graph, so any mutation (cross-shard edges included) must stop
  // them from answering. The service stays exact against a whole-graph
  // dynamic oracle sharing the mutation stream, and the stale entries show
  // up as evictions, never as wrong answers.
  const DiGraph g = ErGraph(72, 300, 3, 0xF3);
  ServiceOptions options;
  options.partition.num_shards = 4;
  options.partition.policy = PartitionPolicy::kHash;
  options.indexer.k = 2;
  options.build_threads = 2;
  ShardedRlcService service(g, options);

  IndexerOptions oracle_opts;
  oracle_opts.k = 2;
  oracle_opts.seal = true;
  RlcIndexBuilder oracle_builder(g, oracle_opts);
  DynamicRlcIndex oracle(g, oracle_builder.Build(), ResealPolicy{});

  Rng rng(0xF3);
  QueryBatch batch;
  for (int i = 0; i < 96; ++i) {
    batch.Add(static_cast<VertexId>(rng.Below(g.num_vertices())),
              static_cast<VertexId>(rng.Below(g.num_vertices())),
              RandomPrimitiveSeq(1 + static_cast<uint32_t>(i % 2),
                                 g.num_labels(), rng));
  }
  const auto check_round = [&](int round) {
    const AnswerBatch out = service.Execute(batch);
    ASSERT_TRUE(out.all_ok());
    for (size_t i = 0; i < batch.num_probes(); ++i) {
      const BatchProbe& p = batch.probes()[i];
      ASSERT_EQ(out.answers[i] != 0,
                oracle.Query(p.s, p.t, batch.sequence(p.seq_id)))
          << "round " << round << " s=" << p.s << " t=" << p.t;
    }
  };

  for (int round = 0; round < 6; ++round) {
    check_round(round);
    // Cross-heavy churn: random endpoints across the whole id space mostly
    // land in different shards under hash partitioning.
    std::vector<EdgeUpdate> updates;
    for (int u = 0; u < 8; ++u) {
      const auto src = static_cast<VertexId>(rng.Below(g.num_vertices()));
      const auto dst = static_cast<VertexId>(rng.Below(g.num_vertices()));
      const auto label = static_cast<Label>(rng.Below(g.num_labels()));
      const EdgeOp op = rng.Below(4) == 0 ? EdgeOp::kDelete : EdgeOp::kInsert;
      updates.push_back({src, label, dst, op});
    }
    service.ApplyUpdates(updates);
    for (const EdgeUpdate& e : updates) {
      if (e.op == EdgeOp::kInsert) {
        oracle.InsertEdge(e.src, e.label, e.dst);
      } else {
        oracle.DeleteEdge(e.src, e.label, e.dst);
      }
    }
  }
  check_round(6);

  const ServiceStats stats = service.stats();
  // Every pre-mutation frontier went stale; reprobing the same templates
  // must have dropped at least one at lookup.
  EXPECT_GT(stats.frontier_evictions, 0u)
      << "mutations never invalidated a cached frontier";
  EXPECT_EQ(stats.frontier_misses,
            stats.frontier_evictions + service.composition().num_cached_frontiers());
}

TEST(FrontierCacheTest, CapacityPressureEvictsLruAndKeepsAnswers) {
  // Engine-level: a 2-entry cache under a workload with many distinct
  // (constraint, seed-set) keys keeps evicting yet never changes answers,
  // and the per-call telemetry conserves. Single-threaded: LRU order under
  // capacity pressure is only deterministic with one prober.
  const DiGraph g = ErGraph(60, 260, 3, 0xF4);
  const EngineParts parts = MakeParts(g, 3, PartitionPolicy::kHash);
  ComposeOptions small;
  small.frontier_cache_entries = 2;
  CompositionEngine engine(parts.partition, parts.shards, small);
  CompositionEngine cold(parts.partition, parts.shards,
                         ComposeOptions{.frontier_cache_entries = 0});

  CompositionEngine::Scratch scratch, cold_scratch;
  uint64_t hits = 0, misses = 0, evictions = 0;
  for (int round = 0; round < 3; ++round) {
    Rng probes(0xF4);  // same probe stream every round
    for (int i = 0; i < 48; ++i) {
      const auto s = static_cast<VertexId>(probes.Below(g.num_vertices()));
      const auto t = static_cast<VertexId>(probes.Below(g.num_vertices()));
      const LabelSeq seq =
          RandomPrimitiveSeq(1 + static_cast<uint32_t>(i % 2), g.num_labels(),
                             probes);
      const CompositionEngine::Plan& plan = engine.PreparePlan(seq);
      const ComposeResult r = engine.ComposedQuery(s, t, plan, scratch);
      const CompositionEngine::Plan& cold_plan = cold.PreparePlan(seq);
      ASSERT_EQ(r.reachable,
                cold.ComposedQuery(s, t, cold_plan, cold_scratch).reachable)
          << "s=" << s << " t=" << t << " L=" << seq.ToString();
      hits += r.frontier_hit ? 1 : 0;
      misses += r.frontier_miss ? 1 : 0;
      evictions += r.frontier_evictions;
    }
  }
  EXPECT_GT(misses, 0u);
  EXPECT_GT(evictions, 0u) << "2-entry cache never felt capacity pressure";
  EXPECT_LE(engine.num_cached_frontiers(), 2u);
  EXPECT_EQ(misses, evictions + engine.num_cached_frontiers());
}

// ---------------------------------------------------------------------------
// Adaptive table budgets: heat boosts a hot shard's effective budget (its
// tables materialize past the static cap), quiet rounds release the boost,
// and answers are bit-identical in every budget state.

TEST(AdaptiveBudgetTest, BoostAndReleaseLifecycle) {
  const DiGraph g = ErGraph(60, 260, 3, 0x31);
  const EngineParts parts = MakeParts(g, 3, PartitionPolicy::kHash);
  ComposeOptions copts;
  copts.table_budget_nodes = 1;        // every shard starts over budget
  copts.adaptive_tables = true;
  copts.hot_budget_multiplier = 4096;  // boosted budget covers every shard
  copts.hot_expand_threshold = 1;      // one on-the-fly expansion = hot
  copts.adapt_min_probes = 1;
  copts.cold_release_rounds = 2;
  copts.frontier_cache_entries = 0;  // keep heat attribution direct
  CompositionEngine engine(parts.partition, parts.shards, copts);

  Rng rng(0x31);
  std::vector<LabelSeq> seqs;
  for (uint32_t i = 0; i < 4; ++i) {
    seqs.push_back(RandomPrimitiveSeq(1 + i % 2, g.num_labels(), rng));
  }
  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (int i = 0; i < 40; ++i) {
    pairs.emplace_back(static_cast<VertexId>(rng.Below(g.num_vertices())),
                       static_cast<VertexId>(rng.Below(g.num_vertices())));
  }
  CompositionEngine::Scratch scratch;
  const auto run_probes = [&] {
    std::vector<uint8_t> answers;
    uint64_t expanded = 0;
    for (const LabelSeq& seq : seqs) {
      const CompositionEngine::Plan& plan = engine.PreparePlan(seq);
      for (const auto& [s, t] : pairs) {
        const ComposeResult r = engine.ComposedQuery(s, t, plan, scratch);
        answers.push_back(r.reachable ? 1 : 0);
        expanded += r.expanded;
      }
    }
    return std::make_pair(answers, expanded);
  };

  // Cold: budget 1 admits no tables, everything expands on the fly.
  const auto [want, cold_expanded] = run_probes();
  ASSERT_GT(cold_expanded, 0u);
  for (uint32_t s = 0; s < parts.partition.num_shards(); ++s) {
    ASSERT_FALSE(engine.ShardBoosted(s));
  }

  // The expansion heat marks shards hot; the round boosts them.
  const BudgetAdaptation boosted = engine.AdaptTableBudgets(/*force_round=*/true);
  EXPECT_GT(boosted.boosts, 0u);
  EXPECT_EQ(boosted.releases, 0u);
  bool any_boosted = false;
  for (uint32_t s = 0; s < parts.partition.num_shards(); ++s) {
    if (!engine.ShardBoosted(s)) continue;
    any_boosted = true;
    EXPECT_EQ(engine.EffectiveTableBudget(s),
              copts.table_budget_nodes * copts.hot_budget_multiplier);
  }
  ASSERT_TRUE(any_boosted);

  // Boosted: plans refresh (budget epoch), tables materialize, answers are
  // bit-identical and the on-the-fly volume collapses.
  const auto [boosted_answers, boosted_expanded] = run_probes();
  EXPECT_EQ(boosted_answers, want);
  EXPECT_LT(boosted_expanded, cold_expanded);

  // Quiet rounds release the boost. The first forced round drains the
  // boosted run's heat (its pops keep the boost alive), so the quiet
  // streak starts counting after it: cold_release_rounds + 1 rounds total.
  BudgetAdaptation released;
  for (uint32_t round = 0; round < copts.cold_release_rounds + 1; ++round) {
    const BudgetAdaptation r = engine.AdaptTableBudgets(/*force_round=*/true);
    released.boosts += r.boosts;
    released.releases += r.releases;
  }
  EXPECT_GT(released.releases, 0u);
  for (uint32_t s = 0; s < parts.partition.num_shards(); ++s) {
    EXPECT_FALSE(engine.ShardBoosted(s));
    EXPECT_EQ(engine.EffectiveTableBudget(s), copts.table_budget_nodes);
  }

  // ...and the released engine still answers bit-identically.
  const auto [released_answers, released_expanded] = run_probes();
  EXPECT_EQ(released_answers, want);
  EXPECT_EQ(released_expanded, cold_expanded);
}

}  // namespace
}  // namespace rlc
