// Unified mixed-mutation differential fuzz harness.
//
// Every configuration drives a seeded random insert/delete workload against
// a dynamically maintained index (or a full sharded service) and, after
// every batch, checks answers bit-identically against a from-scratch
// Indexer build on the mutated graph — the oracle that catches both failure
// modes of incremental maintenance at once: stale entries answering pairs
// that deletion disconnected (unsoundness) and lost covers for pairs that
// remain reachable (incompleteness). Serialization round-trips ride along
// so the v5 tombstone format is fuzzed with real overlays, and metamorphic
// round-trip checks pin that insert -> delete -> reinsert converges back to
// the insert-once state down to the serialized bytes.
//
// Failures print the configuration name and master seed; re-running the
// binary with the same build replays the exact schedule
// (--gtest_filter=MutationFuzz*). Tests whose names contain "DeepFuzz" are
// registered as a separate slow-labeled ctest entry (CMakeLists.txt) and
// run in the nightly workflow; the remaining tests keep the per-PR suite
// fast.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "rlc/core/dynamic_index.h"
#include "rlc/core/index_io.h"
#include "rlc/core/indexer.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/serve/query_batch.h"
#include "rlc/serve/sharded_service.h"
#include "rlc/util/rng.h"
#include "rlc/workload/query_gen.h"

namespace rlc {
namespace {

RlcIndex BuildSealed(const DiGraph& g, uint32_t k) {
  IndexerOptions options;
  options.k = k;
  RlcIndexBuilder builder(g, options);
  return builder.Build();
}

/// RLC_FUZZ_SEED=<n> re-seeds the whole suite without recompiling: the env
/// seed is mixed into each configuration's base seed, so every config still
/// runs a distinct schedule and the replay line prints the effective seed.
uint64_t EffectiveSeed(uint64_t base_seed) {
  static const uint64_t env_seed = [] {
    const char* env = std::getenv("RLC_FUZZ_SEED");
    if (env == nullptr || *env == '\0') return uint64_t{0};
    char* end = nullptr;
    const uint64_t v = std::strtoull(env, &end, 10);
    return *end == '\0' ? v : uint64_t{0};
  }();
  return base_seed ^ env_seed;
}

/// One mixed-mutation fuzz configuration.
struct FuzzConfig {
  std::string name;
  uint64_t seed = 1;
  bool barabasi = false;  ///< BA preferential attachment instead of ER
  VertexId n = 60;
  uint64_t m = 200;  ///< edges (ER) / edges-per-vertex m0 (BA)
  Label labels = 3;
  uint32_t k = 2;
  bool background = false;  ///< background reseals (epoch swaps) vs inline
  double reseal_ratio = 0.05;
  int rounds = 4;
  int batch_size = 8;
  uint32_t delete_percent = 50;  ///< share of mutations that are deletes
  bool io_round_trip = false;    ///< serialize/load/compare each round
};

std::string Replay(const FuzzConfig& config) {
  return " [replay: " + config.name +
         " seed=" + std::to_string(config.seed) + "]";
}

DiGraph MakeGraph(const FuzzConfig& config, Rng& rng) {
  auto edges = config.barabasi
                   ? BarabasiAlbertEdges(config.n,
                                         static_cast<uint32_t>(config.m), rng)
                   : ErdosRenyiEdges(config.n, config.m, rng);
  AssignZipfLabels(&edges, config.labels, 2.0, rng);
  return DiGraph(config.n, std::move(edges), config.labels);
}

/// Constraints worth probing: known MRs (capped) plus random primitive
/// sequences that are mostly unknown.
std::vector<LabelSeq> ProbeSeqs(const RlcIndex& index, Label num_labels,
                                uint32_t k, Rng& rng) {
  std::vector<LabelSeq> seqs;
  const MrTable& mrs = index.mr_table();
  for (MrId id = 0; id < mrs.size() && seqs.size() < 16; ++id) {
    if (mrs.Get(id).size() <= k) seqs.push_back(mrs.Get(id));
  }
  for (uint32_t i = 0; i < 6; ++i) {
    seqs.push_back(RandomPrimitiveSeq(1 + i % k, num_labels, rng));
  }
  return seqs;
}

/// The differential oracle: all-pairs answers of `dyn` — signatures on and
/// off — must equal a fresh sealed build on the mutated graph.
void ExpectMatchesRebuild(const DynamicRlcIndex& dyn,
                          const FuzzConfig& config, Rng& rng) {
  const DiGraph& base = dyn.base_graph();
  const DiGraph mutated(base.num_vertices(), dyn.MaterializedEdges(),
                        base.num_labels(), /*dedup_parallel=*/false);
  const RlcIndex oracle = BuildSealed(mutated, config.k);

  RlcIndex unsigned_copy = dyn.index();
  unsigned_copy.set_use_signatures(false);

  const auto seqs = ProbeSeqs(dyn.index(), base.num_labels(), config.k, rng);
  const VertexId n = base.num_vertices();
  for (const LabelSeq& seq : seqs) {
    const MrId dyn_mr = dyn.index().FindMr(seq);
    const MrId oracle_mr = oracle.FindMr(seq);
    for (VertexId s = 0; s < n; ++s) {
      for (VertexId t = 0; t < n; ++t) {
        const bool want = oracle.QueryInterned(s, t, oracle_mr);
        ASSERT_EQ(want, dyn.index().QueryInterned(s, t, dyn_mr))
            << "s=" << s << " t=" << t << " L=" << seq.ToString()
            << Replay(config);
        ASSERT_EQ(want, unsigned_copy.QueryInterned(s, t, dyn_mr))
            << "unsignatured s=" << s << " t=" << t << " L=" << seq.ToString()
            << Replay(config);
      }
    }
  }
}

/// Serialize -> load -> compare sampled answers and overlay state.
void ExpectIoRoundTrip(const DynamicRlcIndex& dyn, const FuzzConfig& config,
                       Rng& rng) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(dyn.index(), buf);
  const RlcIndex loaded = ReadIndex(buf);
  ASSERT_EQ(dyn.index().delta_entries(), loaded.delta_entries())
      << Replay(config);
  ASSERT_EQ(dyn.index().tombstone_entries(), loaded.tombstone_entries())
      << Replay(config);
  std::stringstream resaved(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(loaded, resaved);
  ASSERT_EQ(buf.str(), resaved.str())
      << "v5 resave not byte-identical" << Replay(config);
  const VertexId n = dyn.base_graph().num_vertices();
  for (int trial = 0; trial < 300; ++trial) {
    const auto s = static_cast<VertexId>(rng.Below(n));
    const auto t = static_cast<VertexId>(rng.Below(n));
    const LabelSeq c =
        RandomPrimitiveSeq(1 + rng.Below(config.k), config.labels, rng);
    ASSERT_EQ(dyn.index().Query(s, t, c), loaded.Query(s, t, c))
        << Replay(config);
  }
}

EdgeUpdate RandomMutation(const DynamicRlcIndex& dyn, const FuzzConfig& config,
                          Rng& rng) {
  if (rng.Below(100) < config.delete_percent) {
    const std::vector<Edge> edges = dyn.MaterializedEdges();
    if (!edges.empty()) {
      const Edge& e = edges[rng.Below(edges.size())];
      return {e.src, e.label, e.dst, EdgeOp::kDelete};
    }
  }
  const DiGraph& g = dyn.base_graph();
  for (;;) {
    const auto u = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const auto v = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const auto l = static_cast<Label>(rng.Below(g.num_labels()));
    if (!dyn.HasEdge(u, l, v)) return {u, l, v};
  }
}

/// The core-fuzz driver: batches of mixed mutations through ApplyUpdates,
/// differential after every batch, reseals as the policy dictates.
void RunCoreFuzz(FuzzConfig config) {
  config.seed = EffectiveSeed(config.seed);
  SCOPED_TRACE(Replay(config));
  Rng rng(config.seed);
  const DiGraph g = MakeGraph(config, rng);
  ResealPolicy policy;
  policy.background = config.background;
  policy.min_delta_entries = 4;
  policy.max_delta_ratio = config.reseal_ratio;
  DynamicRlcIndex dyn(g, BuildSealed(g, config.k), policy);

  for (int round = 0; round < config.rounds; ++round) {
    for (int i = 0; i < config.batch_size; ++i) {
      // Apply one at a time through the batch API so deletes can target
      // edges inserted earlier in the same round.
      const EdgeUpdate update = RandomMutation(dyn, config, rng);
      ASSERT_EQ(dyn.ApplyUpdates(std::span(&update, 1)), 1u) << Replay(config);
    }
    if (config.background) dyn.FinishReseal();
    ExpectMatchesRebuild(dyn, config, rng);
    if (config.io_round_trip) ExpectIoRoundTrip(dyn, config, rng);
  }
  // Fold everything and re-check: the sealed state must answer identically.
  dyn.ForceReseal();
  ASSERT_EQ(dyn.index().delta_entries(), 0u) << Replay(config);
  ASSERT_EQ(dyn.index().tombstone_entries(), 0u) << Replay(config);
  ExpectMatchesRebuild(dyn, config, rng);
}

TEST(MutationFuzzTest, ErK2InlineReseals) {
  RunCoreFuzz({.name = "er_k2_inline", .seed = 0xA1, .io_round_trip = true});
}

TEST(MutationFuzzTest, ErK3) {
  RunCoreFuzz({.name = "er_k3",
               .seed = 0xB2,
               .n = 40,
               .m = 120,
               .k = 3,
               .rounds = 3,
               .batch_size = 6});
}

TEST(MutationFuzzTest, BarabasiAlbertBackgroundReseals) {
  RunCoreFuzz({.name = "ba_k2_background",
               .seed = 0xC3,
               .barabasi = true,
               .n = 50,
               .m = 3,
               .labels = 4,
               .background = true,
               .reseal_ratio = 1e-6});
}

TEST(MutationFuzzTest, DeleteHeavyChurn) {
  RunCoreFuzz({.name = "er_k2_delete_heavy",
               .seed = 0xD4,
               .n = 50,
               .m = 220,
               .delete_percent = 80,
               .io_round_trip = true});
}

TEST(MutationFuzzTest, DeepFuzzCoreManyRounds) {
  for (const uint64_t seed : {11ull, 22ull, 33ull}) {
    RunCoreFuzz({.name = "deep_er_k2",
                 .seed = seed,
                 .n = 80,
                 .m = 300,
                 .rounds = 8,
                 .batch_size = 10,
                 .io_round_trip = true});
    RunCoreFuzz({.name = "deep_er_k3_bg",
                 .seed = seed ^ 0xFF,
                 .n = 45,
                 .m = 140,
                 .k = 3,
                 .background = true,
                 .reseal_ratio = 0.01,
                 .rounds = 5,
                 .batch_size = 8});
  }
}

// ---------------------------------------------------------------------------
// Metamorphic round trips: insert -> delete -> reinsert must converge back
// to the insert-once state — answers *and* serialized bytes after a reseal —
// and insert -> delete alone must answer exactly like the never-mutated
// index.

std::string SealedBytes(DynamicRlcIndex& dyn) {
  dyn.ForceReseal();
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  WriteIndex(dyn.index(), buf);
  return buf.str();
}

TEST(MutationFuzzTest, InsertDeleteReinsertMatchesInsertOnce) {
  const uint64_t kSeed = 0xE5;
  Rng rng(kSeed);
  FuzzConfig config{.name = "metamorphic_round_trip", .seed = kSeed};
  const DiGraph g = MakeGraph(config, rng);
  ResealPolicy policy;
  policy.max_delta_ratio = 1e9;  // reseal manually at the comparison points

  for (int trial = 0; trial < 5; ++trial) {
    DynamicRlcIndex once(g, BuildSealed(g, config.k), policy);
    DynamicRlcIndex churn(g, BuildSealed(g, config.k), policy);
    EdgeUpdate e{};
    for (;;) {
      e = {static_cast<VertexId>(rng.Below(g.num_vertices())),
           static_cast<Label>(rng.Below(g.num_labels())),
           static_cast<VertexId>(rng.Below(g.num_vertices()))};
      if (!once.HasEdge(e.src, e.label, e.dst)) break;
    }
    ASSERT_TRUE(once.InsertEdge(e.src, e.label, e.dst));
    ASSERT_TRUE(churn.InsertEdge(e.src, e.label, e.dst));
    ASSERT_TRUE(churn.DeleteEdge(e.src, e.label, e.dst));
    ASSERT_TRUE(churn.InsertEdge(e.src, e.label, e.dst));
    EXPECT_EQ(SealedBytes(once), SealedBytes(churn))
        << "trial " << trial << " edge " << e.src << " -" << e.label << "-> "
        << e.dst << Replay(config);
  }
}

TEST(MutationFuzzTest, InsertThenDeleteAnswersLikeNeverMutated) {
  const uint64_t kSeed = 0xF6;
  Rng rng(kSeed);
  FuzzConfig config{.name = "metamorphic_cancel", .seed = kSeed};
  const DiGraph g = MakeGraph(config, rng);
  const RlcIndex never = BuildSealed(g, config.k);
  ResealPolicy policy;
  policy.max_delta_ratio = 1e9;
  DynamicRlcIndex dyn(g, BuildSealed(g, config.k), policy);

  for (int trial = 0; trial < 4; ++trial) {
    EdgeUpdate e{};
    for (;;) {
      e = {static_cast<VertexId>(rng.Below(g.num_vertices())),
           static_cast<Label>(rng.Below(g.num_labels())),
           static_cast<VertexId>(rng.Below(g.num_vertices()))};
      if (!dyn.HasEdge(e.src, e.label, e.dst)) break;
    }
    ASSERT_TRUE(dyn.InsertEdge(e.src, e.label, e.dst));
    ASSERT_TRUE(dyn.DeleteEdge(e.src, e.label, e.dst));
    // The cancelling delete never tombstones a CSR entry: every pre-insert
    // entry's witness survives untouched. (Delta entries may remain — the
    // hub-compressed insert cover can add entries whose claims hold even
    // without the edge; they are valid, just redundant.)
    EXPECT_EQ(dyn.index().tombstone_entries(), 0u) << Replay(config);
  }
  for (int probe = 0; probe < 2000; ++probe) {
    const auto s = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const auto t = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const LabelSeq c =
        RandomPrimitiveSeq(1 + rng.Below(config.k), config.labels, rng);
    ASSERT_EQ(never.Query(s, t, c), dyn.Query(s, t, c)) << Replay(config);
  }
}

// ---------------------------------------------------------------------------
// Sharded-service fuzz: the same mixed workloads routed through
// ShardedRlcService::ApplyUpdates — intra-shard mutations, boundary-summary
// grow/shrink, cross-shard composition over the churned skeleton, batched
// execution — against a whole-graph rebuild oracle. cross_bias steers the
// schedule toward cross-shard edge adds/removes so boundary membership
// flips (vertices gaining/losing boundary status) every round, stressing
// the composition engine's epoch invalidation rather than just intra
// maintenance.

struct ShardedFuzzConfig {
  std::string name;
  uint64_t seed = 1;
  uint32_t shards = 4;
  PartitionPolicy policy = PartitionPolicy::kHash;
  bool cross_bias = false;  ///< steer mutations toward cross-shard edges
  bool background_reseals = false;
  uint32_t exec_threads = 1;
  int rounds = 3;
  int batch_size = 10;
  /// Shrink the skeleton frontier cache to this many entries (0 keeps the
  /// service default): constant LRU churn on top of the epoch invalidation
  /// the mutations already force.
  size_t tiny_frontier_cache = 0;
};

void RunShardedFuzz(ShardedFuzzConfig config) {
  config.seed = EffectiveSeed(config.seed);
  const std::string replay =
      " [replay: " + config.name + " seed=" + std::to_string(config.seed) + "]";
  SCOPED_TRACE(replay);
  Rng rng(config.seed);
  const VertexId n = 120;
  const Label labels = 3;
  auto base_edges = ErdosRenyiEdges(n, 480, rng);
  AssignZipfLabels(&base_edges, labels, 2.0, rng);
  const DiGraph g(n, base_edges, labels);

  ServiceOptions options;
  options.partition.num_shards = config.shards;
  options.partition.policy = config.policy;
  options.indexer.k = 2;
  options.build_threads = 2;
  options.exec_threads = config.exec_threads;
  options.exec_probes_per_job = 64;
  if (config.background_reseals) {
    options.reseal.background = true;
    options.reseal.min_delta_entries = 1;
    options.reseal.max_delta_ratio = 1e-6;
  }
  if (config.tiny_frontier_cache != 0) {
    options.compose.frontier_cache_entries = config.tiny_frontier_cache;
  }
  ShardedRlcService service(g, options);

  // The mutated graph's current edge multiset, mirrored edge by edge.
  std::vector<Edge> current = base_edges;
  std::sort(current.begin(), current.end());
  current.erase(std::unique(current.begin(), current.end()), current.end());

  for (int round = 0; round < config.rounds; ++round) {
    std::vector<EdgeUpdate> batch;
    for (int i = 0; i < config.batch_size; ++i) {
      const GraphPartition& part = service.partition();
      if (rng.Below(2) == 0 && !current.empty()) {
        size_t pick = rng.Below(current.size());
        if (config.cross_bias) {
          // Prefer deleting a cross edge: removing the last cross edge at a
          // vertex demotes it from the boundary and shrinks the skeleton.
          for (size_t off = 0; off < current.size(); ++off) {
            const size_t i = (pick + off) % current.size();
            if (part.ShardOf(current[i].src) != part.ShardOf(current[i].dst)) {
              pick = i;
              break;
            }
          }
        }
        const Edge e = current[pick];
        current.erase(current.begin() + static_cast<ptrdiff_t>(pick));
        batch.push_back({e.src, e.label, e.dst, EdgeOp::kDelete});
      } else {
        for (;;) {
          const Edge e{static_cast<VertexId>(rng.Below(n)),
                       static_cast<VertexId>(rng.Below(n)),
                       static_cast<Label>(rng.Below(labels))};
          if (config.cross_bias && part.ShardOf(e.src) == part.ShardOf(e.dst)) {
            continue;  // new edge must cross shards (promotes fresh boundary)
          }
          if (std::find(current.begin(), current.end(), e) != current.end()) {
            continue;
          }
          current.push_back(e);
          batch.push_back({e.src, e.label, e.dst});
          break;
        }
      }
    }
    ASSERT_EQ(service.ApplyUpdates(batch), batch.size()) << replay;

    const DiGraph mutated(n, current, labels);
    const RlcIndex oracle = BuildSealed(mutated, 2);

    // Scalar differential + batched agreement.
    QueryBatch qbatch;
    std::vector<uint8_t> expected;
    for (int probe = 0; probe < 600; ++probe) {
      const auto s = static_cast<VertexId>(rng.Below(n));
      const auto t = static_cast<VertexId>(rng.Below(n));
      const LabelSeq c = RandomPrimitiveSeq(1 + rng.Below(2), labels, rng);
      const bool want = oracle.Query(s, t, c);
      ASSERT_EQ(want, service.Query(s, t, c))
          << "round " << round << " s=" << s << " t=" << t << " L="
          << c.ToString() << replay;
      qbatch.Add(s, t, c);
      expected.push_back(want ? 1 : 0);
    }
    const AnswerBatch answers = service.Execute(qbatch);
    ASSERT_EQ(answers.answers, expected) << "round " << round << replay;
  }
  service.FinishReseals();
  const DiGraph mutated(n, current, labels);
  const RlcIndex oracle = BuildSealed(mutated, 2);
  for (int probe = 0; probe < 400; ++probe) {
    const auto s = static_cast<VertexId>(rng.Below(n));
    const auto t = static_cast<VertexId>(rng.Below(n));
    const LabelSeq c = RandomPrimitiveSeq(1 + rng.Below(2), labels, rng);
    ASSERT_EQ(oracle.Query(s, t, c), service.Query(s, t, c)) << replay;
  }
  EXPECT_GT(service.stats().updates_deleted, 0u) << replay;
  // Frontier-cache conservation survives the churn: every installed
  // frontier was counted as a miss and is either still cached or evicted
  // (stale after a mutation, LRU capacity, or a wholesale flush).
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.frontier_misses,
            stats.frontier_evictions +
                service.composition().num_cached_frontiers())
      << replay;
}

TEST(MutationFuzzTest, ShardedComposeHash) {
  RunShardedFuzz({.name = "sharded_compose_hash", .seed = 0x51});
}

TEST(MutationFuzzTest, ShardedComposeRangeBackgroundReseals) {
  RunShardedFuzz({.name = "sharded_compose_range_bg",
                  .seed = 0x52,
                  .shards = 3,
                  .policy = PartitionPolicy::kRange,
                  .background_reseals = true,
                  .exec_threads = 4});
}

TEST(MutationFuzzTest, ShardedComposeCrossEdgeChurn) {
  // Every mutation touches a cross edge: boundary membership and the
  // skeleton flip constantly under the composition engine.
  RunShardedFuzz({.name = "sharded_compose_cross_churn",
                  .seed = 0x53,
                  .cross_bias = true,
                  .rounds = 2,
                  .batch_size = 8});
}

TEST(MutationFuzzTest, ShardedComposeCrossChurnTinyFrontierCache) {
  // Cross-edge churn with a 4-entry frontier cache: every round both
  // invalidates the cached frontiers (mutation epoch) and thrashes the LRU
  // (capacity), while the rebuild oracle pins that no stale frontier ever
  // answers.
  RunShardedFuzz({.name = "sharded_cross_churn_tiny_frontier",
                  .seed = 0x55,
                  .cross_bias = true,
                  .rounds = 2,
                  .batch_size = 8,
                  .tiny_frontier_cache = 4});
}

TEST(MutationFuzzTest, ShardedComposeRangeOrdered) {
  RunShardedFuzz({.name = "sharded_compose_range_ordered",
                  .seed = 0x54,
                  .shards = 3,
                  .policy = PartitionPolicy::kRangeOrdered,
                  .rounds = 2,
                  .batch_size = 8});
}

TEST(MutationFuzzTest, DeepFuzzShardedManySeeds) {
  for (const uint64_t seed : {101ull, 202ull}) {
    RunShardedFuzz({.name = "deep_sharded_compose",
                    .seed = seed,
                    .rounds = 5,
                    .batch_size = 14});
    RunShardedFuzz({.name = "deep_sharded_cross_churn",
                    .seed = seed ^ 0xAB,
                    .cross_bias = true,
                    .exec_threads = 4,
                    .rounds = 3,
                    .batch_size = 10});
    RunShardedFuzz({.name = "deep_sharded_range_ordered",
                    .seed = seed ^ 0xCD,
                    .shards = 5,
                    .policy = PartitionPolicy::kRangeOrdered,
                    .rounds = 3,
                    .batch_size = 12});
  }
}

}  // namespace
}  // namespace rlc
