// Unit tests for RlcIndex storage mechanics and the Algorithm 1 query:
// entry ordering, Case 1 / Case 2 resolution, the merge join, and the
// mutation API contracts — independent of the indexing algorithm.

#include "rlc/core/rlc_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace rlc {
namespace {

// A hand-built index over 4 vertices with access order (2,0,1,3):
// hub aids: v2 -> 1, v0 -> 2, v1 -> 3, v3 -> 4.
class HandBuiltIndexTest : public ::testing::Test {
 protected:
  HandBuiltIndexTest() : index_(4, 2) {
    index_.SetAccessOrder({2, 0, 1, 3});
    mr_a_ = index_.mr_table().Intern(LabelSeq{0});
    mr_ab_ = index_.mr_table().Intern(LabelSeq{0, 1});
    // v0 reaches hub v2 with (a) and (a b); hub v2 reaches v1 with (a b).
    index_.AddOut(0, 1, mr_a_);
    index_.AddOut(0, 1, mr_ab_);
    index_.AddIn(1, 1, mr_ab_);
    // Case 2 material: hub v0 reaches v3 directly with (a).
    index_.AddIn(3, 2, mr_a_);
    index_.AddOut(2, 2, mr_a_);  // v2 reaches hub v0 with (a)
  }

  RlcIndex index_;
  MrId mr_a_, mr_ab_;
};

TEST_F(HandBuiltIndexTest, AccessOrderMapping) {
  EXPECT_EQ(index_.AccessId(2), 1u);
  EXPECT_EQ(index_.AccessId(0), 2u);
  EXPECT_EQ(index_.AccessId(1), 3u);
  EXPECT_EQ(index_.AccessId(3), 4u);
  EXPECT_EQ(index_.VertexOfAid(1), 2u);
  EXPECT_EQ(index_.VertexOfAid(4), 3u);
}

TEST_F(HandBuiltIndexTest, CaseOneMergeJoin) {
  // v0 -> v1 via hub v2 with (a b): (v2,(ab)) ∈ Lout(v0) ∧ ∈ Lin(v1).
  EXPECT_TRUE(index_.Query(0, 1, LabelSeq{0, 1}));
  // MR mismatch on one side: (a) only in Lout(v0), not Lin(v1).
  EXPECT_FALSE(index_.Query(0, 1, LabelSeq{0}));
}

TEST_F(HandBuiltIndexTest, CaseTwoDirectEntries) {
  // (s,L) ∈ Lin(t): hub v0 -> v3 with (a).
  EXPECT_TRUE(index_.Query(0, 3, LabelSeq{0}));
  // (t,L) ∈ Lout(s): v2 -> hub v0 with (a).
  EXPECT_TRUE(index_.Query(2, 0, LabelSeq{0}));
  EXPECT_FALSE(index_.Query(2, 0, LabelSeq{0, 1}));
}

TEST_F(HandBuiltIndexTest, NoFalsePositives) {
  EXPECT_FALSE(index_.Query(1, 0, LabelSeq{0}));
  EXPECT_FALSE(index_.Query(3, 0, LabelSeq{0}));
  EXPECT_FALSE(index_.Query(0, 3, LabelSeq{0, 1}));
  // Unknown MR -> necessarily false.
  EXPECT_FALSE(index_.Query(0, 1, LabelSeq{1, 0}));
}

TEST_F(HandBuiltIndexTest, HasEntryLookups) {
  EXPECT_TRUE(index_.HasOutEntry(0, 1, mr_a_));
  EXPECT_TRUE(index_.HasOutEntry(0, 1, mr_ab_));
  EXPECT_FALSE(index_.HasOutEntry(0, 2, mr_a_));
  EXPECT_TRUE(index_.HasInEntry(3, 2, mr_a_));
  EXPECT_FALSE(index_.HasInEntry(3, 2, mr_ab_));
}

TEST_F(HandBuiltIndexTest, QueryInternedInvalidIdIsFalse) {
  EXPECT_FALSE(index_.QueryInterned(0, 1, kInvalidMrId));
}

TEST_F(HandBuiltIndexTest, CountsAndMemory) {
  EXPECT_EQ(index_.NumEntries(), 5u);
  EXPECT_GT(index_.MemoryBytes(), 5 * sizeof(IndexEntry));
}

TEST(RlcIndexTest, MergeJoinScansWholeHubGroups) {
  // Regression: multiple MRs under the same hub on both sides; the matching
  // MR sits at different offsets within each group. The hub (vertex 2,
  // access id 1) is distinct from both endpoints so only Case 1 can fire.
  RlcIndex index(3, 2);
  index.SetAccessOrder({2, 0, 1});
  const MrId a = index.mr_table().Intern(LabelSeq{0});
  const MrId b = index.mr_table().Intern(LabelSeq{1});
  const MrId c = index.mr_table().Intern(LabelSeq{2});
  index.AddOut(0, 1, a);
  index.AddOut(0, 1, b);
  index.AddIn(1, 1, b);
  index.AddIn(1, 1, c);
  EXPECT_TRUE(index.Query(0, 1, LabelSeq{1}));   // b on both sides of hub v2
  EXPECT_FALSE(index.Query(0, 1, LabelSeq{0}));  // a only on the out side
  EXPECT_FALSE(index.Query(0, 1, LabelSeq{2}));  // c only on the in side
}

TEST(RlcIndexTest, MergeJoinAdvancesPastNonCommonHubs) {
  RlcIndex index(3, 1);
  index.SetAccessOrder({0, 1, 2});
  const MrId a = index.mr_table().Intern(LabelSeq{0});
  index.AddOut(0, 1, a);  // hub aid 1 only on out side
  index.AddOut(0, 3, a);  // hub aid 3 on both
  index.AddIn(2, 2, a);   // hub aid 2 only on in side
  index.AddIn(2, 3, a);
  EXPECT_TRUE(index.Query(0, 2, LabelSeq{0}));
}

TEST(RlcIndexTest, SetAccessOrderValidation) {
  RlcIndex index(2, 1);
  EXPECT_THROW(index.SetAccessOrder({0}), std::invalid_argument);
  EXPECT_THROW(index.SetAccessOrder({0, 7}), std::invalid_argument);
}

TEST(RlcIndexTest, ConstructorValidatesK) {
  EXPECT_THROW(RlcIndex(1, 0), std::invalid_argument);
  EXPECT_THROW(RlcIndex(1, kMaxK + 1), std::invalid_argument);
}

TEST_F(HandBuiltIndexTest, SealPreservesEntriesAndAnswers) {
  // Snapshot the nested-vector layout, seal, and compare the CSR layout.
  std::vector<std::vector<IndexEntry>> out_before, in_before;
  for (VertexId v = 0; v < index_.num_vertices(); ++v) {
    out_before.emplace_back(index_.Lout(v).begin(), index_.Lout(v).end());
    in_before.emplace_back(index_.Lin(v).begin(), index_.Lin(v).end());
  }
  const uint64_t entries_before = index_.NumEntries();

  EXPECT_FALSE(index_.sealed());
  index_.Seal();
  EXPECT_TRUE(index_.sealed());
  index_.Seal();  // idempotent

  EXPECT_EQ(index_.NumEntries(), entries_before);
  for (VertexId v = 0; v < index_.num_vertices(); ++v) {
    EXPECT_TRUE(std::ranges::equal(index_.Lout(v), out_before[v])) << "v=" << v;
    EXPECT_TRUE(std::ranges::equal(index_.Lin(v), in_before[v])) << "v=" << v;
  }
  // The Algorithm 1 cases answer identically through the CSR layout.
  EXPECT_TRUE(index_.Query(0, 1, LabelSeq{0, 1}));
  EXPECT_FALSE(index_.Query(0, 1, LabelSeq{0}));
  EXPECT_TRUE(index_.Query(0, 3, LabelSeq{0}));
  EXPECT_TRUE(index_.Query(2, 0, LabelSeq{0}));
  EXPECT_FALSE(index_.Query(1, 0, LabelSeq{0}));
  EXPECT_TRUE(index_.HasOutEntry(0, 1, mr_a_));
  EXPECT_FALSE(index_.HasOutEntry(0, 2, mr_a_));
  EXPECT_GT(index_.MemoryBytes(), 0u);
}

TEST(RlcIndexTest, GallopingJoinOnSkewedLists) {
  // One side keeps a single hub group, the other side is long enough to
  // trigger the galloping path (ratio > 16). The common hub sits at
  // different spots to exercise early/mid/late gallops.
  // Hub aids 10..109 stay clear of the endpoints' own access ids (1..3) so
  // only Case 1 can answer true.
  for (const uint32_t common_aid : {10u, 55u, 109u}) {
    RlcIndex index(3, 1);
    index.SetAccessOrder({0, 1, 2});
    const MrId a = index.mr_table().Intern(LabelSeq{0});
    const MrId b = index.mr_table().Intern(LabelSeq{1});
    index.AddOut(0, common_aid, a);
    for (uint32_t aid = 10; aid <= 109; ++aid) {
      index.AddIn(2, aid, aid == common_aid ? a : b);
    }
    index.Seal();
    EXPECT_TRUE(index.Query(0, 2, LabelSeq{0})) << "aid=" << common_aid;
    EXPECT_FALSE(index.Query(0, 2, LabelSeq{1})) << "aid=" << common_aid;
  }
  // Same shape but no common aid at all: the gallop must run off the end
  // without matching.
  RlcIndex index(3, 1);
  index.SetAccessOrder({0, 1, 2});
  const MrId a = index.mr_table().Intern(LabelSeq{0});
  index.AddOut(0, 200, a);
  for (uint32_t aid = 10; aid <= 109; ++aid) index.AddIn(2, aid, a);
  index.Seal();
  EXPECT_FALSE(index.Query(0, 2, LabelSeq{0}));
}

TEST(RlcIndexTest, AdoptSealedRoundTrip) {
  RlcIndex index(2, 1);
  index.SetAccessOrder({1, 0});
  const MrId a = index.mr_table().Intern(LabelSeq{0});
  index.AdoptSealed({0, 1, 1}, {{1, a}}, {0, 0, 1}, {{1, a}});
  EXPECT_TRUE(index.sealed());
  EXPECT_EQ(index.NumEntries(), 2u);
  EXPECT_EQ(index.Lout(0).size(), 1u);
  EXPECT_EQ(index.Lin(1).size(), 1u);
  EXPECT_TRUE(index.Query(0, 1, LabelSeq{0}));
}

TEST(RlcIndexTest, SelfQueryThroughSelfEntry) {
  RlcIndex index(1, 1);
  index.SetAccessOrder({0});
  const MrId a = index.mr_table().Intern(LabelSeq{0});
  index.AddOut(0, 1, a);
  EXPECT_TRUE(index.Query(0, 0, LabelSeq{0}));
}

}  // namespace
}  // namespace rlc
