// Tests for the path-constraint AST, the parser and the NFA construction.

#include <gtest/gtest.h>

#include "rlc/automaton/dense_nfa.h"
#include "rlc/automaton/nfa.h"
#include "rlc/automaton/path_constraint.h"
#include "rlc/graph/graph_builder.h"
#include "rlc/util/rng.h"

namespace rlc {
namespace {

using Word = std::vector<Label>;

DiGraph NamedGraph() {
  GraphBuilder b;
  b.AddEdge("x", "y", "a");
  b.AddEdge("y", "x", "b");
  b.AddEdge("x", "x", "c");
  return b.Build();
}

TEST(PathConstraintTest, Factories) {
  const auto rlc = PathConstraint::RlcPlus(LabelSeq{0, 1});
  EXPECT_TRUE(rlc.IsRlc());
  EXPECT_EQ(rlc.seq(), (LabelSeq{0, 1}));

  const auto fixed = PathConstraint::Fixed(LabelSeq{2});
  EXPECT_FALSE(fixed.IsRlc());
}

TEST(PathConstraintTest, RejectsEmptyAtom) {
  EXPECT_THROW(PathConstraint({ConstraintAtom{LabelSeq{}, true}}),
               std::invalid_argument);
}

TEST(PathConstraintTest, ParseNamedLabels) {
  const DiGraph g = NamedGraph();
  const auto c = PathConstraint::Parse("(a b)+", g);
  ASSERT_EQ(c.atoms().size(), 1u);
  EXPECT_TRUE(c.atoms()[0].plus);
  EXPECT_EQ(c.atoms()[0].seq,
            (LabelSeq{*g.FindLabel("a"), *g.FindLabel("b")}));
}

TEST(PathConstraintTest, ParseMultiAtom) {
  const DiGraph g = NamedGraph();
  const auto c = PathConstraint::Parse("a+ b+", g);
  ASSERT_EQ(c.atoms().size(), 2u);
  EXPECT_TRUE(c.atoms()[0].plus);
  EXPECT_TRUE(c.atoms()[1].plus);
  EXPECT_FALSE(c.IsRlc());
}

TEST(PathConstraintTest, ParseFixedConcatenation) {
  const DiGraph g = NamedGraph();
  const auto c = PathConstraint::Parse("a b c", g);
  ASSERT_EQ(c.atoms().size(), 3u);
  for (const auto& atom : c.atoms()) EXPECT_FALSE(atom.plus);
}

TEST(PathConstraintTest, ParseNumericLabels) {
  const DiGraph g(3, {{0, 1, 0}, {1, 2, 1}}, 2);
  const auto c = PathConstraint::Parse("(0 1)+", g);
  EXPECT_EQ(c.atoms()[0].seq, (LabelSeq{0, 1}));
}

TEST(PathConstraintTest, ParseErrors) {
  const DiGraph g = NamedGraph();
  EXPECT_THROW(PathConstraint::Parse("", g), std::invalid_argument);
  EXPECT_THROW(PathConstraint::Parse("(a b", g), std::invalid_argument);
  EXPECT_THROW(PathConstraint::Parse("unknown+", g), std::invalid_argument);
  EXPECT_THROW(PathConstraint::Parse("()+", g), std::invalid_argument);
}

TEST(PathConstraintTest, ToStringRoundTrip) {
  const DiGraph g = NamedGraph();
  for (const char* text : {"(a b)+", "a+ b+", "a b", "c+"}) {
    const auto c = PathConstraint::Parse(text, g);
    EXPECT_EQ(c.ToString(g), text);
  }
}

TEST(NfaTest, SingleLabelPlus) {
  const Nfa nfa = Nfa::FromConstraint(PathConstraint::RlcPlus(LabelSeq{0}));
  EXPECT_FALSE(nfa.Accepts(Word{}));
  EXPECT_TRUE(nfa.Accepts(Word{0}));
  EXPECT_TRUE(nfa.Accepts(Word{0, 0, 0}));
  EXPECT_FALSE(nfa.Accepts(Word{1}));
  EXPECT_FALSE(nfa.Accepts(Word{0, 1}));
}

TEST(NfaTest, SequencePlus) {
  const Nfa nfa = Nfa::FromConstraint(PathConstraint::RlcPlus(LabelSeq{0, 1}));
  EXPECT_TRUE(nfa.Accepts(Word{0, 1}));
  EXPECT_TRUE(nfa.Accepts(Word{0, 1, 0, 1}));
  EXPECT_FALSE(nfa.Accepts(Word{0}));
  EXPECT_FALSE(nfa.Accepts(Word{0, 1, 0}));
  EXPECT_FALSE(nfa.Accepts(Word{1, 0}));
  EXPECT_FALSE(nfa.Accepts(Word{0, 0, 1, 1}));
}

TEST(NfaTest, FixedConcatenation) {
  const Nfa nfa = Nfa::FromConstraint(PathConstraint::Fixed(LabelSeq{0, 1, 2}));
  EXPECT_TRUE(nfa.Accepts(Word{0, 1, 2}));
  EXPECT_FALSE(nfa.Accepts(Word{0, 1}));
  EXPECT_FALSE(nfa.Accepts(Word{0, 1, 2, 0, 1, 2}));
}

TEST(NfaTest, MultiAtomQ4Shape) {
  // a+ b+  (the paper's Q4)
  const PathConstraint q4({ConstraintAtom{LabelSeq{0}, true},
                           ConstraintAtom{LabelSeq{1}, true}});
  const Nfa nfa = Nfa::FromConstraint(q4);
  EXPECT_TRUE(nfa.Accepts(Word{0, 1}));
  EXPECT_TRUE(nfa.Accepts(Word{0, 0, 1, 1, 1}));
  EXPECT_FALSE(nfa.Accepts(Word{0}));
  EXPECT_FALSE(nfa.Accepts(Word{1}));
  EXPECT_FALSE(nfa.Accepts(Word{1, 0}));
  EXPECT_FALSE(nfa.Accepts(Word{0, 1, 0}));
}

TEST(NfaTest, ReversedAcceptsMirrorLanguage) {
  Rng rng(3);
  const PathConstraint c({ConstraintAtom{LabelSeq{0, 1}, true},
                          ConstraintAtom{LabelSeq{2}, false}});
  const Nfa fwd = Nfa::FromConstraint(c);
  const Nfa rev = fwd.Reversed();
  for (int trial = 0; trial < 2000; ++trial) {
    Word w(rng.Below(7));
    for (auto& l : w) l = static_cast<Label>(rng.Below(3));
    Word r(w.rbegin(), w.rend());
    EXPECT_EQ(fwd.Accepts(w), rev.Accepts(r)) << "trial " << trial;
  }
}

// Reference DP: does an accepted word of the RLC language (l_1..l_j)+ equal
// the candidate? Check against direct MR semantics.
TEST(NfaTest, RlcLanguageMatchesMrSemantics) {
  Rng rng(8);
  for (int trial = 0; trial < 3000; ++trial) {
    const uint32_t j = 1 + static_cast<uint32_t>(rng.Below(3));
    LabelSeq seq;
    for (uint32_t i = 0; i < j; ++i) {
      seq.PushBack(static_cast<Label>(rng.Below(2)));
    }
    if (!IsPrimitive(seq.labels())) continue;
    const Nfa nfa = Nfa::FromConstraint(PathConstraint::RlcPlus(seq));

    Word w(1 + rng.Below(9));
    for (auto& l : w) l = static_cast<Label>(rng.Below(2));
    // Word satisfies L+ iff MR(w) == L (paper §III-B definition).
    const auto mr = MinimumRepeat(w);
    const bool expected =
        mr.size() == seq.size() &&
        std::equal(mr.begin(), mr.end(), seq.labels().begin());
    EXPECT_EQ(nfa.Accepts(w), expected)
        << "constraint " << seq.ToString() << " word len " << w.size();
  }
}

TEST(DenseNfaTest, TransitionsMatchSparse) {
  const PathConstraint c({ConstraintAtom{LabelSeq{0, 1}, true}});
  const Nfa nfa = Nfa::FromConstraint(c);
  const DenseNfa dense(nfa, 3);
  EXPECT_EQ(dense.num_states(), nfa.num_states());
  for (uint32_t s = 0; s < nfa.num_states(); ++s) {
    EXPECT_EQ(dense.IsAccept(s), nfa.IsAccept(s));
    for (Label l = 0; l < 3; ++l) {
      std::vector<uint32_t> sparse_next;
      for (const NfaTransition& t : nfa.Transitions(s)) {
        if (t.label == l) sparse_next.push_back(t.to);
      }
      const auto dense_next = dense.Next(s, l);
      EXPECT_EQ(std::vector<uint32_t>(dense_next.begin(), dense_next.end()),
                sparse_next);
    }
  }
}

}  // namespace
}  // namespace rlc
