// Crash-safety of the durability layer, proved by killing the process.
//
// The tentpole is the fork harness: for EVERY failpoint on the persist path
// (failpoints::kPersistPath) a child process runs a seeded mutation
// workload against a DurableDynamicIndex — or a full ShardedRlcService —
// with that failpoint armed as `crash` (_exit mid-syscall, the user-space
// stand-in for power loss), reporting each acknowledgement through a pipe.
// The parent then recovers the store and checks the recovered state is
// base + exactly the first n workload updates for some n between the last
// acknowledged batch and the last attempted one: no acknowledged update is
// ever lost and no partial batch is ever visible, differentially against a
// from-scratch oracle build on the prefix-mutated graph.
//
// Around it: WAL round-trip/torn-tail/rollback units, injected-error
// (ENOSPC, short write) probes that must leave the store usable, recovery
// fallback to the previous generation when the newest is corrupt, refusal
// to silently rebuild over an unloadable store, and a byte-flip fuzz over
// whole store directories — every flip either recovers a clean workload
// prefix or throws; never UB, never a wrong answer. Tests named *Deep* run
// as a separate slow-labeled ctest entry (nightly); the rest stay in the
// per-PR suite.

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <span>
#include <string>
#include <vector>

#include "rlc/core/durable_index.h"
#include "rlc/core/index_io.h"
#include "rlc/core/indexer.h"
#include "rlc/core/wal.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/serve/sharded_service.h"
#include "rlc/util/failpoint.h"
#include "rlc/util/rng.h"
#include "rlc/workload/query_gen.h"

namespace rlc {
namespace {

namespace fs = std::filesystem;

DiGraph TestGraph(VertexId n = 40, uint64_t m = 130, Label labels = 3,
                  uint64_t seed = 0x7E57) {
  Rng rng(seed);
  auto edges = ErdosRenyiEdges(n, m, rng);
  AssignZipfLabels(&edges, labels, 2.0, rng);
  return DiGraph(n, std::move(edges), labels);
}

RlcIndex BuildSealed(const DiGraph& g, uint32_t k = 2) {
  IndexerOptions options;
  options.k = k;
  RlcIndexBuilder builder(g, options);
  return builder.Build();
}

std::string TempDir(const std::string& tag) {
  std::string templ =
      (fs::temp_directory_path() / ("rlc_crash_" + tag + "_XXXXXX")).string();
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    throw std::runtime_error("mkdtemp failed for " + templ);
  }
  return std::string(buf.data());
}

/// A deterministic valid mutation sequence: every delete targets an edge
/// present at that point, every insert is genuinely new.
std::vector<EdgeUpdate> MakeWorkload(const DiGraph& g, size_t count,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> current = g.ToEdgeList();
  std::sort(current.begin(), current.end());
  current.erase(std::unique(current.begin(), current.end()), current.end());
  std::vector<EdgeUpdate> out;
  while (out.size() < count) {
    if (rng.Below(100) < 40 && !current.empty()) {
      const size_t pick = rng.Below(current.size());
      const Edge e = current[pick];
      current.erase(current.begin() + static_cast<ptrdiff_t>(pick));
      out.push_back({e.src, e.label, e.dst, EdgeOp::kDelete});
    } else {
      for (;;) {
        const Edge e{static_cast<VertexId>(rng.Below(g.num_vertices())),
                     static_cast<VertexId>(rng.Below(g.num_vertices())),
                     static_cast<Label>(rng.Below(g.num_labels()))};
        if (std::find(current.begin(), current.end(), e) != current.end()) {
          continue;
        }
        current.push_back(e);
        out.push_back({e.src, e.label, e.dst, EdgeOp::kInsert});
        break;
      }
    }
  }
  return out;
}

/// The edge set after applying the first `n` workload updates to `g`.
std::vector<Edge> PrefixEdges(const DiGraph& g,
                              std::span<const EdgeUpdate> updates, size_t n) {
  std::vector<Edge> current = g.ToEdgeList();
  std::sort(current.begin(), current.end());
  current.erase(std::unique(current.begin(), current.end()), current.end());
  for (size_t i = 0; i < n; ++i) {
    const EdgeUpdate& e = updates[i];
    const Edge edge{e.src, e.dst, e.label};
    if (e.op == EdgeOp::kInsert) {
      current.push_back(edge);
    } else {
      current.erase(std::find(current.begin(), current.end(), edge));
    }
  }
  std::sort(current.begin(), current.end());
  return current;
}

/// Recovered state == base + first `n` updates, edge-exact and answer-exact
/// against a from-scratch oracle build.
void ExpectStateIsPrefix(const DurableDynamicIndex& store, const DiGraph& g,
                         std::span<const EdgeUpdate> updates, size_t n,
                         bool probe_queries = true) {
  const std::vector<Edge> want = PrefixEdges(g, updates, n);
  std::vector<Edge> got = store.dynamic().MaterializedEdges();
  std::sort(got.begin(), got.end());
  ASSERT_EQ(got, want) << "recovered edge set is not the prefix of length "
                       << n;
  if (!probe_queries) return;
  const DiGraph mutated(g.num_vertices(), want, g.num_labels(),
                        /*dedup_parallel=*/false);
  const RlcIndex oracle = BuildSealed(mutated);
  Rng rng(0xDD + n);
  for (int probe = 0; probe < 300; ++probe) {
    const auto s = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const auto t = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const LabelSeq c = RandomPrimitiveSeq(1 + rng.Below(2), g.num_labels(), rng);
    ASSERT_EQ(oracle.Query(s, t, c), store.Query(s, t, c))
        << "s=" << s << " t=" << t << " L=" << c.ToString() << " n=" << n;
  }
}

DurabilityOptions StoreOptions(const std::string& dir) {
  DurabilityOptions opts;
  opts.dir = dir;
  opts.checkpoint_wal_bytes = 0;  // tests checkpoint explicitly
  return opts;
}

void FlipByte(const std::string& path, size_t offset, uint8_t mask) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char b = 0;
  f.read(&b, 1);
  ASSERT_TRUE(f.good()) << path << " offset " << offset;
  f.seekp(static_cast<std::streamoff>(offset));
  b = static_cast<char>(b ^ mask);
  f.write(&b, 1);
}

// ---------------------------------------------------------------------------
// Failpoint registry units.

TEST(FailpointTest, SpecParsingAndTriggers) {
  Failpoints& fp = Failpoints::Instance();
  fp.Clear();
  fp.Parse("a=error;b=crash@3,c=short_write");
  EXPECT_EQ(fp.Hit("a"), FailpointAction::kError);
  EXPECT_EQ(fp.Hit("a"), FailpointAction::kOff);  // one-shot
  EXPECT_EQ(fp.Hit("b"), FailpointAction::kOff);
  EXPECT_EQ(fp.Hit("b"), FailpointAction::kOff);
  EXPECT_EQ(fp.Hit("b"), FailpointAction::kCrash);  // third hit
  EXPECT_EQ(fp.Hit("c"), FailpointAction::kShortWrite);
  EXPECT_EQ(fp.Hit("unarmed"), FailpointAction::kOff);
  EXPECT_THROW(fp.Parse("noequals"), std::invalid_argument);
  EXPECT_THROW(fp.Parse("a=bogus"), std::invalid_argument);
  EXPECT_THROW(fp.Parse("a=error@0"), std::invalid_argument);
  EXPECT_THROW(fp.Parse("=error"), std::invalid_argument);
  fp.Parse("a=off");  // disarm spelling accepted
  EXPECT_EQ(fp.Hit("a"), FailpointAction::kOff);
  fp.Clear();
  EXPECT_GE(fp.HitCount("a"), 2u);  // hit counts are diagnostics, survive Clear
}

// ---------------------------------------------------------------------------
// WAL units.

TEST(WalTest, RoundTripTornTailAndRollback) {
  const std::string dir = TempDir("wal");
  const std::string path = dir + "/w.log";
  const DiGraph g = TestGraph();
  const auto updates = MakeWorkload(g, 6, 0x11);
  {
    WalWriter w;
    w.Open(path);
    for (size_t i = 0; i < updates.size(); ++i) {
      w.Append(i + 1, std::span(&updates[i], 1));
    }
    EXPECT_EQ(w.records_appended(), updates.size());
  }
  const WalReadResult full = ReadWalFile(path);
  ASSERT_EQ(full.records.size(), updates.size());
  EXPECT_EQ(full.dropped_bytes, 0u);
  for (size_t i = 0; i < updates.size(); ++i) {
    EXPECT_EQ(full.records[i].lsn, i + 1);
    ASSERT_EQ(full.records[i].updates.size(), 1u);
    EXPECT_EQ(full.records[i].updates[0].src, updates[i].src);
    EXPECT_EQ(full.records[i].updates[0].label, updates[i].label);
    EXPECT_EQ(full.records[i].updates[0].dst, updates[i].dst);
    EXPECT_EQ(full.records[i].updates[0].op, updates[i].op);
  }

  // Torn tail: truncating anywhere inside the last record drops exactly it.
  const uint64_t record_bytes = full.valid_bytes / updates.size();
  fs::resize_file(path, full.valid_bytes - record_bytes / 2);
  const WalReadResult torn = ReadWalFile(path);
  EXPECT_EQ(torn.records.size(), updates.size() - 1);
  EXPECT_GT(torn.dropped_bytes, 0u);

  // A flipped byte in the middle drops that record and everything after.
  fs::resize_file(path, full.valid_bytes);  // zero-extend is fine: bad prefix
  FlipByte(path, record_bytes * 2 + 5, 0x40);
  const WalReadResult flipped = ReadWalFile(path);
  EXPECT_LE(flipped.records.size(), 2u);

  // A failed append rolls the file back to the record boundary, so later
  // appends stay readable (a torn mid-file record would poison the reader).
  const std::string path2 = dir + "/w2.log";
  {
    WalWriter w;
    w.Open(path2);
    w.Append(1, std::span(updates.data(), 1));
    Failpoints::Instance().Set("io", FailpointAction::kShortWrite);
    EXPECT_THROW(w.Append(2, std::span(updates.data() + 1, 1)),
                 std::runtime_error);
    Failpoints::Instance().Clear();
    w.Append(2, std::span(updates.data() + 1, 1));  // retry after the "ENOSPC"
    w.Append(3, std::span(updates.data() + 2, 1));
  }
  const WalReadResult after = ReadWalFile(path2);
  ASSERT_EQ(after.records.size(), 3u);
  EXPECT_EQ(after.dropped_bytes, 0u);
  EXPECT_EQ(after.records[2].lsn, 3u);

  EXPECT_TRUE(ReadWalFile(dir + "/missing.log").records.empty());
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// DurableDynamicIndex: reopen, generations, fallback.

TEST(DurableIndexTest, FreshBuildThenReopenRecoversEverything) {
  const DiGraph g = TestGraph();
  const auto updates = MakeWorkload(g, 12, 0x22);
  const std::string dir = TempDir("reopen");
  {
    DurableDynamicIndex store(g, StoreOptions(dir),
                              [&] { return BuildSealed(g); });
    EXPECT_FALSE(store.recovery_info().recovered);
    EXPECT_EQ(store.generation(), 1u);
    for (size_t i = 0; i < updates.size(); ++i) {
      store.ApplyUpdates(std::span(&updates[i], 1));
      if (i == 5) store.Checkpoint();
    }
    EXPECT_EQ(store.last_lsn(), updates.size());
  }
  bool built = false;
  DurableDynamicIndex store(g, StoreOptions(dir), [&] {
    built = true;
    return BuildSealed(g);
  });
  EXPECT_FALSE(built) << "recovery must not rebuild the index";
  EXPECT_TRUE(store.recovery_info().recovered);
  EXPECT_FALSE(store.recovery_info().fell_back);
  EXPECT_EQ(store.last_lsn(), updates.size());
  // The tail after the mid-stream checkpoint came back through WAL replay.
  EXPECT_EQ(store.recovery_info().replayed_records, updates.size() - 6);
  ExpectStateIsPrefix(store, g, updates, updates.size());
  fs::remove_all(dir);
}

TEST(DurableIndexTest, AutoCheckpointAdvancesGenerations) {
  const DiGraph g = TestGraph();
  const auto updates = MakeWorkload(g, 6, 0x33);
  const std::string dir = TempDir("autock");
  DurabilityOptions opts = StoreOptions(dir);
  opts.checkpoint_wal_bytes = 1;  // every batch triggers a checkpoint
  DurableDynamicIndex store(g, opts, [&] { return BuildSealed(g); });
  const uint64_t gen0 = store.generation();
  for (const EdgeUpdate& u : updates) store.ApplyUpdates(std::span(&u, 1));
  EXPECT_EQ(store.generation(), gen0 + updates.size());
  // Retention: only keep_generations snapshots remain on disk.
  EXPECT_EQ(ListGenerationFiles(dir, "snapshot-", ".snap").size(),
            StoreOptions(dir).keep_generations);
  ExpectStateIsPrefix(store, g, updates, updates.size(), false);
  fs::remove_all(dir);
}

TEST(DurableIndexTest, CorruptNewestSnapshotFallsBackOneGeneration) {
  const DiGraph g = TestGraph();
  const auto updates = MakeWorkload(g, 10, 0x44);
  const std::string dir = TempDir("fallback");
  uint64_t newest = 0;
  {
    DurableDynamicIndex store(g, StoreOptions(dir),
                              [&] { return BuildSealed(g); });
    for (size_t i = 0; i < updates.size(); ++i) {
      store.ApplyUpdates(std::span(&updates[i], 1));
      if (i == 6) store.Checkpoint();
    }
    store.Checkpoint();
    // Acknowledge two more batches into the newest generation's WAL... no:
    // the workload is spent; the tail case is covered by the mid-stream
    // checkpoint above. Remember which snapshot to corrupt.
    newest = store.generation();
  }
  FlipByte(SnapshotPath(dir, newest), 200, 0x08);
  DurableDynamicIndex store(g, StoreOptions(dir),
                            [&] { return BuildSealed(g); });
  EXPECT_TRUE(store.recovery_info().recovered);
  EXPECT_TRUE(store.recovery_info().fell_back);
  EXPECT_LT(store.recovery_info().generation, newest);
  // The newer generation's WAL still replays: nothing acknowledged is lost.
  EXPECT_EQ(store.last_lsn(), updates.size());
  ExpectStateIsPrefix(store, g, updates, updates.size());
  fs::remove_all(dir);
}

TEST(DurableIndexTest, CorruptManifestFallsBackToDirectoryScan) {
  const DiGraph g = TestGraph();
  const auto updates = MakeWorkload(g, 8, 0x55);
  const std::string dir = TempDir("manifest");
  {
    DurableDynamicIndex store(g, StoreOptions(dir),
                              [&] { return BuildSealed(g); });
    for (const EdgeUpdate& u : updates) store.ApplyUpdates(std::span(&u, 1));
    store.Checkpoint();
  }
  FlipByte(dir + "/" + std::string(kManifestFileName), 3, 0xFF);
  DurableDynamicIndex store(g, StoreOptions(dir),
                            [&] { return BuildSealed(g); });
  EXPECT_TRUE(store.recovery_info().recovered);
  EXPECT_TRUE(store.recovery_info().fell_back);
  EXPECT_FALSE(store.recovery_info().fallback_reason.empty());
  EXPECT_EQ(store.last_lsn(), updates.size());
  ExpectStateIsPrefix(store, g, updates, updates.size(), false);
  fs::remove_all(dir);
}

TEST(DurableIndexTest, UnrecoverableStoreThrowsInsteadOfRebuilding) {
  const DiGraph g = TestGraph();
  const auto updates = MakeWorkload(g, 4, 0x66);
  const std::string dir = TempDir("unrecoverable");
  {
    DurableDynamicIndex store(g, StoreOptions(dir),
                              [&] { return BuildSealed(g); });
    for (const EdgeUpdate& u : updates) store.ApplyUpdates(std::span(&u, 1));
    store.Checkpoint();
  }
  for (const uint64_t gen : ListGenerationFiles(dir, "snapshot-", ".snap")) {
    FlipByte(SnapshotPath(dir, gen), 64, 0xFF);
  }
  EXPECT_THROW(DurableDynamicIndex(g, StoreOptions(dir),
                                   [&] { return BuildSealed(g); }),
               std::runtime_error);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Injected errors (ENOSPC, short writes) must fail the operation cleanly
// and leave the store usable and recoverable — no acknowledged state lost.

TEST(DurableIndexTest, InjectedErrorAtEveryPersistFailpointIsRecoverable) {
  const DiGraph g = TestGraph();
  const auto updates = MakeWorkload(g, 6, 0x77);
  for (const char* name : failpoints::kPersistPath) {
    SCOPED_TRACE(name);
    const std::string dir = TempDir("err");
    size_t acked = 0;
    {
      DurableDynamicIndex store(g, StoreOptions(dir),
                                [&] { return BuildSealed(g); });
      Failpoints::Instance().Set(name, FailpointAction::kError);
      bool failed = false;
      for (const EdgeUpdate& u : updates) {
        try {
          store.ApplyUpdates(std::span(&u, 1));
          ++acked;
        } catch (const std::runtime_error&) {
          failed = true;
          break;  // batch not acknowledged; stop so the prefix stays exact
        }
      }
      try {
        store.Checkpoint();
      } catch (const std::runtime_error&) {
        failed = true;
      }
      EXPECT_TRUE(failed) << "failpoint " << name << " never fired";
      Failpoints::Instance().Clear();
      // The store must still work: acknowledged state intact, a clean
      // checkpoint possible.
      ExpectStateIsPrefix(store, g, updates, acked, false);
      store.Checkpoint();
    }
    DurableDynamicIndex store(g, StoreOptions(dir),
                              [&] { return BuildSealed(g); });
    EXPECT_EQ(store.last_lsn(), acked);
    ExpectStateIsPrefix(store, g, updates, acked, false);
    fs::remove_all(dir);
  }
}

TEST(DurableIndexTest, ShortWriteTearsAreAbsorbed) {
  const DiGraph g = TestGraph();
  const auto updates = MakeWorkload(g, 5, 0x88);
  for (uint64_t trigger = 1; trigger <= 4; ++trigger) {
    SCOPED_TRACE(trigger);
    const std::string dir = TempDir("short");
    size_t acked = 0;
    {
      DurableDynamicIndex store(g, StoreOptions(dir),
                                [&] { return BuildSealed(g); });
      Failpoints::Instance().Set("io", FailpointAction::kShortWrite, trigger);
      for (const EdgeUpdate& u : updates) {
        try {
          store.ApplyUpdates(std::span(&u, 1));
          ++acked;
        } catch (const std::runtime_error&) {
          break;
        }
      }
      try {
        store.Checkpoint();
      } catch (const std::runtime_error&) {
      }
      Failpoints::Instance().Clear();
    }
    DurableDynamicIndex store(g, StoreOptions(dir),
                              [&] { return BuildSealed(g); });
    EXPECT_GE(store.last_lsn(), acked);
    ExpectStateIsPrefix(store, g, updates, store.last_lsn(), false);
    fs::remove_all(dir);
  }
}

// ---------------------------------------------------------------------------
// The tentpole: kill the process at every persist-path failpoint.

struct ChildReport {
  uint64_t acked = 0;    ///< batches whose ApplyUpdates returned
  uint64_t sending = 0;  ///< batches handed to ApplyUpdates
};

/// Forks a child that runs `body(pipe_write_fd)` and must die at an armed
/// crash failpoint; returns the last ChildReport it piped out.
template <typename Body>
ChildReport RunCrashChild(const char* failpoint, Body body) {
  int pipefd[2];
  EXPECT_EQ(::pipe(pipefd), 0);
  const pid_t pid = ::fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) {
    ::close(pipefd[0]);
    int status = 1;  // finishing without crashing is a test failure
    try {
      body(pipefd[1]);
      status = 1;
    } catch (...) {
      status = 2;  // an exception is not a crash either
    }
    _exit(status);
  }
  ::close(pipefd[1]);
  ChildReport last, r;
  while (::read(pipefd[0], &r, sizeof r) == static_cast<ssize_t>(sizeof r)) {
    last = r;
  }
  ::close(pipefd[0]);
  int wstatus = 0;
  EXPECT_EQ(::waitpid(pid, &wstatus, 0), pid);
  EXPECT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), kFailpointCrashStatus)
      << "child was not killed by failpoint " << failpoint
      << " (exit status " << WEXITSTATUS(wstatus)
      << "; 1 = workload finished, 2 = threw instead of crashing)";
  return last;
}

void SendReport(int fd, uint64_t acked, uint64_t sending) {
  const ChildReport r{acked, sending};
  (void)!::write(fd, &r, sizeof r);
}

TEST(CrashRecoveryTest, KillAtEveryPersistFailpoint) {
  const DiGraph g = TestGraph();
  const auto updates = MakeWorkload(g, 10, 0x99);
  for (const char* name : failpoints::kPersistPath) {
    SCOPED_TRACE(name);
    const std::string dir = TempDir("kill");
    const ChildReport last = RunCrashChild(name, [&](int fd) {
      DurableDynamicIndex store(g, StoreOptions(dir),
                                [&] { return BuildSealed(g); });
      // Arm after the constructor: its own checkpoint would consume the
      // one-shot trigger before any update is in flight.
      Failpoints::Instance().Set(name, FailpointAction::kCrash);
      for (size_t i = 0; i < updates.size(); ++i) {
        SendReport(fd, i, i + 1);
        store.ApplyUpdates(std::span(&updates[i], 1));
        SendReport(fd, i + 1, i + 1);
        // A mid-stream checkpoint reaches the snapshot/manifest sites.
        if (i == 4) store.Checkpoint();
      }
      store.Checkpoint();
    });
    if (::testing::Test::HasFailure()) {
      fs::remove_all(dir);
      return;
    }
    // Recover. The child's constructor completed, so a durable generation
    // exists: build_base must never run.
    bool built = false;
    DurableDynamicIndex store(g, StoreOptions(dir), [&] {
      built = true;
      return BuildSealed(g);
    });
    EXPECT_FALSE(built);
    EXPECT_TRUE(store.recovery_info().recovered);
    const uint64_t n = store.last_lsn();
    // No acknowledged batch lost; no unattempted batch visible. (The batch
    // in flight at the crash may legitimately land either way: a WAL record
    // can be durable before its acknowledgement.)
    EXPECT_GE(n, last.acked) << "acknowledged update lost";
    EXPECT_LE(n, last.sending) << "unacknowledged future visible";
    ExpectStateIsPrefix(store, g, updates, n);
    fs::remove_all(dir);
  }
}

TEST(CrashRecoveryTest, DeepKillAtEveryFailpointRepeatedTriggers) {
  // Crash on the Nth hit of each site, pushing the crash instant deeper
  // into the workload (later WAL appends, the second checkpoint's saves).
  const DiGraph g = TestGraph();
  const auto updates = MakeWorkload(g, 10, 0xAB);
  for (const char* name : failpoints::kPersistPath) {
    for (const uint64_t trigger : {2u, 3u}) {
      SCOPED_TRACE(std::string(name) + "@" + std::to_string(trigger));
      const std::string dir = TempDir("deepkill");
      const ChildReport last = RunCrashChild(name, [&](int fd) {
        DurableDynamicIndex store(g, StoreOptions(dir),
                                  [&] { return BuildSealed(g); });
        Failpoints::Instance().Set(name, FailpointAction::kCrash, trigger);
        for (size_t i = 0; i < updates.size(); ++i) {
          SendReport(fd, i, i + 1);
          store.ApplyUpdates(std::span(&updates[i], 1));
          SendReport(fd, i + 1, i + 1);
          if (i == 3 || i == 7) store.Checkpoint();
        }
        store.Checkpoint();
      });
      if (::testing::Test::HasFailure()) {
        fs::remove_all(dir);
        return;
      }
      DurableDynamicIndex store(g, StoreOptions(dir),
                                [&] { return BuildSealed(g); });
      const uint64_t n = store.last_lsn();
      EXPECT_GE(n, last.acked);
      EXPECT_LE(n, last.sending);
      ExpectStateIsPrefix(store, g, updates, n);
      fs::remove_all(dir);
    }
  }
}

TEST(CrashRecoveryTest, EveryPersistFailpointIsActuallyOnThePath) {
  // The fork harness iterates failpoints::kPersistPath; this guards the
  // other direction — a site that is registered but never evaluated by a
  // full mutate+checkpoint cycle means the list and the code drifted apart.
  const DiGraph g = TestGraph();
  const auto updates = MakeWorkload(g, 3, 0xBC);
  const std::string dir = TempDir("coverage");
  Failpoints& fp = Failpoints::Instance();
  std::vector<uint64_t> before;
  for (const char* name : failpoints::kPersistPath) {
    before.push_back(fp.HitCount(name));
  }
  {
    DurableDynamicIndex store(g, StoreOptions(dir),
                              [&] { return BuildSealed(g); });
    for (const EdgeUpdate& u : updates) store.ApplyUpdates(std::span(&u, 1));
    store.Checkpoint();
  }
  for (size_t i = 0; i < std::size(failpoints::kPersistPath); ++i) {
    EXPECT_GT(fp.HitCount(failpoints::kPersistPath[i]), before[i])
        << "failpoint " << failpoints::kPersistPath[i]
        << " was never evaluated by a mutate+checkpoint cycle";
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Byte-flip fuzz over whole store directories: recovery either lands on a
// clean workload prefix or throws — never UB, never a wrong answer.

void RunStoreByteFlipFuzz(int trials, uint64_t seed, bool probe_queries) {
  const DiGraph g = TestGraph();
  const auto updates = MakeWorkload(g, 8, 0xCD);
  const std::string golden = TempDir("flip_golden");
  {
    DurableDynamicIndex store(g, StoreOptions(golden),
                              [&] { return BuildSealed(g); });
    for (size_t i = 0; i < updates.size(); ++i) {
      store.ApplyUpdates(std::span(&updates[i], 1));
      if (i == 4) store.Checkpoint();
    }
  }
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(golden)) {
    if (entry.is_regular_file() && entry.file_size() > 0) {
      files.push_back(entry.path().filename().string());
    }
  }
  ASSERT_FALSE(files.empty());

  Rng rng(seed);
  int recovered = 0, rejected = 0;
  for (int trial = 0; trial < trials; ++trial) {
    const std::string dir = TempDir("flip");
    fs::remove(dir);
    fs::copy(golden, dir, fs::copy_options::recursive);
    const std::string& victim = files[rng.Below(files.size())];
    const uint64_t size = fs::file_size(dir + "/" + victim);
    const size_t offset = rng.Below(size);
    const auto mask = static_cast<uint8_t>(1u << rng.Below(8));
    SCOPED_TRACE(victim + " offset " + std::to_string(offset) + " mask " +
                 std::to_string(mask));
    try {
      DurableDynamicIndex store(g, StoreOptions(dir),
                                [&] { return BuildSealed(g); });
      const uint64_t n = store.last_lsn();
      ASSERT_LE(n, updates.size());
      ExpectStateIsPrefix(store, g, updates, n, probe_queries);
      ++recovered;
    } catch (const std::exception&) {
      ++rejected;  // clean refusal is a valid outcome
    }
    fs::remove_all(dir);
  }
  // With keep_generations=2 most flips must still recover (only flipping
  // both snapshots at once could make the store unrecoverable, and one
  // trial flips one byte).
  EXPECT_GT(recovered, 0);
  fs::remove_all(golden);
}

TEST(CrashRecoveryTest, ByteFlipStoreFuzz) {
  RunStoreByteFlipFuzz(25, 0xF00D, true);
}

TEST(CrashRecoveryTest, DeepByteFlipStoreFuzz) {
  RunStoreByteFlipFuzz(150, 0xBEEF, false);
}

// ---------------------------------------------------------------------------
// Service durability: per-shard snapshots, one service WAL, parallel
// recovery — same guarantees, proved the same two ways.

ServiceOptions DurableServiceOptions(const std::string& dir) {
  ServiceOptions options;
  options.partition.num_shards = 3;
  options.indexer.k = 2;
  options.build_threads = 2;
  options.durability.dir = dir;
  options.durability.checkpoint_wal_bytes = 0;
  return options;
}

void ExpectServiceIsPrefix(ShardedRlcService& service, const DiGraph& g,
                           std::span<const EdgeUpdate> updates, size_t n) {
  const std::vector<Edge> want = PrefixEdges(g, updates, n);
  const DiGraph mutated(g.num_vertices(), want, g.num_labels(),
                        /*dedup_parallel=*/false);
  const RlcIndex oracle = BuildSealed(mutated);
  Rng rng(0xEE + n);
  for (int probe = 0; probe < 400; ++probe) {
    const auto s = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const auto t = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const LabelSeq c = RandomPrimitiveSeq(1 + rng.Below(2), g.num_labels(), rng);
    ASSERT_EQ(oracle.Query(s, t, c), service.Query(s, t, c))
        << "s=" << s << " t=" << t << " L=" << c.ToString() << " n=" << n;
  }
}

TEST(ServiceDurabilityTest, ReopenRecoversService) {
  const DiGraph g = TestGraph(60, 240, 3, 0x5EED);
  const auto updates = MakeWorkload(g, 12, 0xDE);
  const std::string dir = TempDir("svc");
  {
    ShardedRlcService service(g, DurableServiceOptions(dir));
    EXPECT_TRUE(service.durable());
    EXPECT_FALSE(service.recovery_info().recovered);
    for (size_t i = 0; i < updates.size(); ++i) {
      service.ApplyUpdates(std::span(&updates[i], 1));
      if (i == 5) service.Checkpoint();
    }
    EXPECT_EQ(service.last_lsn(), updates.size());
    ExpectServiceIsPrefix(service, g, updates, updates.size());
  }
  ShardedRlcService service(g, DurableServiceOptions(dir));
  EXPECT_TRUE(service.recovery_info().recovered);
  EXPECT_EQ(service.last_lsn(), updates.size());
  // Recovery must not have rebuilt shard indexes from scratch: the
  // partition/build split is visible through stats (index_build covers
  // recovery here, so just verify answers). Cross-shard probes inside
  // ExpectServiceIsPrefix exercise the recovered composition engine,
  // warm-started from gen-<G>/compose.snap when present.
  ExpectServiceIsPrefix(service, g, updates, updates.size());
  fs::remove_all(dir);
}

TEST(ServiceDurabilityTest, KillAtPersistFailpoints) {
  const DiGraph g = TestGraph(60, 240, 3, 0x5EED);
  const auto updates = MakeWorkload(g, 8, 0xEF);
  // The service shares the WAL/snapshot/manifest code paths with the core
  // store, which the exhaustive loop above covers; here one site per file
  // kind proves the service wiring end to end.
  for (const char* name :
       {failpoints::kWalAppendBeforeWrite, failpoints::kWalAppendAfterSync,
        failpoints::kIndexSaveBeforeRename,
        failpoints::kManifestCommitBeforeRename,
        failpoints::kCheckpointAfterCommit}) {
    SCOPED_TRACE(name);
    const std::string dir = TempDir("svckill");
    const ChildReport last = RunCrashChild(name, [&](int fd) {
      ShardedRlcService service(
          g, DurableServiceOptions(dir));
      Failpoints::Instance().Set(name, FailpointAction::kCrash);
      for (size_t i = 0; i < updates.size(); ++i) {
        SendReport(fd, i, i + 1);
        service.ApplyUpdates(std::span(&updates[i], 1));
        SendReport(fd, i + 1, i + 1);
        if (i == 3) service.Checkpoint();
      }
      service.Checkpoint();
    });
    if (::testing::Test::HasFailure()) {
      fs::remove_all(dir);
      return;
    }
    ShardedRlcService service(
        g, DurableServiceOptions(dir));
    EXPECT_TRUE(service.recovery_info().recovered);
    const uint64_t n = service.last_lsn();
    EXPECT_GE(n, last.acked) << "acknowledged update lost";
    EXPECT_LE(n, last.sending) << "unacknowledged future visible";
    ExpectServiceIsPrefix(service, g, updates, n);
    fs::remove_all(dir);
  }
}

TEST(ServiceDurabilityTest, DeepKillAtEveryPersistFailpoint) {
  const DiGraph g = TestGraph(60, 240, 3, 0x5EED);
  const auto updates = MakeWorkload(g, 8, 0xEF);
  for (const char* name : failpoints::kPersistPath) {
    SCOPED_TRACE(name);
    const std::string dir = TempDir("svcdeep");
    const ChildReport last = RunCrashChild(name, [&](int fd) {
      ShardedRlcService service(
          g, DurableServiceOptions(dir));
      Failpoints::Instance().Set(name, FailpointAction::kCrash);
      for (size_t i = 0; i < updates.size(); ++i) {
        SendReport(fd, i, i + 1);
        service.ApplyUpdates(std::span(&updates[i], 1));
        SendReport(fd, i + 1, i + 1);
        if (i == 3) service.Checkpoint();
      }
      service.Checkpoint();
    });
    if (::testing::Test::HasFailure()) {
      fs::remove_all(dir);
      return;
    }
    ShardedRlcService service(
        g, DurableServiceOptions(dir));
    const uint64_t n = service.last_lsn();
    EXPECT_GE(n, last.acked);
    EXPECT_LE(n, last.sending);
    ExpectServiceIsPrefix(service, g, updates, n);
    fs::remove_all(dir);
  }
}

}  // namespace
}  // namespace rlc
