// Tests for workload generation and workload I/O.

#include "rlc/workload/query_gen.h"

#include <gtest/gtest.h>

#include <sstream>

#include "rlc/baselines/online_search.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"

namespace rlc {
namespace {

DiGraph TestGraph(uint64_t seed) {
  Rng rng(seed);
  auto edges = ErdosRenyiEdges(80, 320, rng);
  AssignZipfLabels(&edges, 4, 2.0, rng);
  return DiGraph(80, std::move(edges), 4);
}

TEST(RandomPrimitiveSeqTest, AlwaysPrimitiveAndRightLength) {
  Rng rng(1);
  for (uint32_t len = 1; len <= 4; ++len) {
    for (int trial = 0; trial < 500; ++trial) {
      const LabelSeq seq = RandomPrimitiveSeq(len, 3, rng);
      EXPECT_EQ(seq.size(), len);
      EXPECT_TRUE(IsPrimitive(seq.labels()));
      for (uint32_t i = 0; i < len; ++i) EXPECT_LT(seq[i], 3u);
    }
  }
}

TEST(RandomPrimitiveSeqTest, Validation) {
  Rng rng(1);
  EXPECT_THROW(RandomPrimitiveSeq(0, 3, rng), std::invalid_argument);
  EXPECT_THROW(RandomPrimitiveSeq(kMaxK + 1, 3, rng), std::invalid_argument);
  EXPECT_THROW(RandomPrimitiveSeq(2, 1, rng), std::invalid_argument);
  // Length 1 over 1 label is fine.
  EXPECT_EQ(RandomPrimitiveSeq(1, 1, rng).size(), 1u);
}

TEST(GenerateWorkloadTest, SetsAreCorrectlyLabeled) {
  const DiGraph g = TestGraph(3);
  WorkloadOptions options;
  options.count = 50;
  options.constraint_length = 2;
  const Workload w = GenerateWorkload(g, options);
  EXPECT_EQ(w.true_queries.size(), 50u);
  EXPECT_EQ(w.false_queries.size(), 50u);

  OnlineSearcher oracle(g);
  for (const RlcQuery& q : w.true_queries) {
    EXPECT_TRUE(q.expected);
    EXPECT_EQ(q.constraint.size(), 2u);
    EXPECT_TRUE(
        oracle.QueryBfsOnce(q.s, q.t, PathConstraint::RlcPlus(q.constraint)));
  }
  for (const RlcQuery& q : w.false_queries) {
    EXPECT_FALSE(q.expected);
    EXPECT_FALSE(
        oracle.QueryBfsOnce(q.s, q.t, PathConstraint::RlcPlus(q.constraint)));
  }
}

TEST(GenerateWorkloadTest, DeterministicInSeed) {
  const DiGraph g = TestGraph(3);
  WorkloadOptions options;
  options.count = 20;
  const Workload a = GenerateWorkload(g, options);
  const Workload b = GenerateWorkload(g, options);
  ASSERT_EQ(a.true_queries.size(), b.true_queries.size());
  for (size_t i = 0; i < a.true_queries.size(); ++i) {
    EXPECT_EQ(a.true_queries[i].s, b.true_queries[i].s);
    EXPECT_EQ(a.true_queries[i].t, b.true_queries[i].t);
    EXPECT_EQ(a.true_queries[i].constraint, b.true_queries[i].constraint);
  }
}

TEST(GenerateWorkloadTest, AttemptCapReturnsShortSets) {
  // A graph with no edges has no true queries at all.
  const DiGraph g(10, {}, 2);
  WorkloadOptions options;
  options.count = 5;
  options.max_attempts = 200;
  const Workload w = GenerateWorkload(g, options);
  EXPECT_TRUE(w.true_queries.empty());
  EXPECT_EQ(w.false_queries.size(), 5u);
}

TEST(GenerateWorkloadTest, Validation) {
  WorkloadOptions options;
  EXPECT_THROW(GenerateWorkload(DiGraph(), options), std::invalid_argument);
}

TEST(GenerateWorkloadTest, WalkFallbackFillsTrueSet) {
  // A tiny alternating 2-cycle buried in a long single-label chain:
  // uniformly sampled (s,t,(l0 l1)+) pairs are satisfying with probability
  // ~2e-5, so uniform generation falls short; walks starting on the cycle
  // still witness the constraint, so the fallback can fill the set.
  std::vector<Edge> edges = {{0, 1, 0}, {1, 0, 1}};
  for (VertexId v = 2; v < 400; ++v) {
    edges.push_back({v, v + 1, 0});
  }
  const DiGraph g(401, std::move(edges), 2);

  WorkloadOptions options;
  options.count = 30;
  options.constraint_length = 2;
  options.max_attempts = 2'000;  // uniform sampling will fall short

  const Workload uniform_only = GenerateWorkload(g, options);
  EXPECT_LT(uniform_only.true_queries.size(), 30u);

  options.fill_true_with_walks = true;
  options.max_attempts = 500'000;
  const Workload filled = GenerateWorkload(g, options);
  EXPECT_EQ(filled.true_queries.size(), 30u);

  // Every walk-derived query must really be true and keep the requested
  // constraint length.
  OnlineSearcher oracle(g);
  for (const RlcQuery& q : filled.true_queries) {
    EXPECT_EQ(q.constraint.size(), 2u);
    EXPECT_TRUE(
        oracle.QueryBfsOnce(q.s, q.t, PathConstraint::RlcPlus(q.constraint)));
  }
}

TEST(WorkloadIoTest, RoundTrip) {
  const DiGraph g = TestGraph(5);
  WorkloadOptions options;
  options.count = 30;
  const Workload w = GenerateWorkload(g, options);

  std::stringstream buf;
  WriteWorkload(w, buf);
  const Workload r = ReadWorkload(buf);
  ASSERT_EQ(r.true_queries.size(), w.true_queries.size());
  ASSERT_EQ(r.false_queries.size(), w.false_queries.size());
  for (size_t i = 0; i < w.true_queries.size(); ++i) {
    EXPECT_EQ(r.true_queries[i].s, w.true_queries[i].s);
    EXPECT_EQ(r.true_queries[i].t, w.true_queries[i].t);
    EXPECT_EQ(r.true_queries[i].constraint, w.true_queries[i].constraint);
    EXPECT_TRUE(r.true_queries[i].expected);
  }
}

TEST(WorkloadIoTest, MalformedLinesRejected) {
  {
    std::istringstream in("1 2\n");
    EXPECT_THROW(ReadWorkload(in), std::runtime_error);
  }
  {
    std::istringstream in("1 2 0,1\n");  // missing expected flag
    EXPECT_THROW(ReadWorkload(in), std::runtime_error);
  }
}

TEST(WorkloadIoTest, CommentsSkipped) {
  std::istringstream in("# header\n1 2 0,1 1\n");
  const Workload w = ReadWorkload(in);
  ASSERT_EQ(w.true_queries.size(), 1u);
  EXPECT_EQ(w.true_queries[0].constraint, (LabelSeq{0, 1}));
}

}  // namespace
}  // namespace rlc
