// Dynamic-index correctness: the differential oracle (every dynamically
// maintained answer must be bit-identical to a from-scratch Indexer build on
// the mutated graph — the property that silently rots first in an
// incrementally maintained index), metamorphic update properties
// (monotonicity, duplicate no-ops, permutation of independent inserts), and
// the epoch-swap concurrency contract of the background reseal.

#include "rlc/core/dynamic_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "rlc/core/index_io.h"
#include "rlc/core/indexer.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/serve/query_batch.h"
#include "rlc/util/rng.h"
#include "rlc/workload/query_gen.h"

namespace rlc {
namespace {

DiGraph ErGraph(VertexId n, uint64_t m, Label labels, uint64_t seed) {
  Rng rng(seed);
  auto edges = ErdosRenyiEdges(n, m, rng);
  AssignZipfLabels(&edges, labels, 2.0, rng);
  return DiGraph(n, std::move(edges), labels);
}

DiGraph BaGraph(VertexId n, uint32_t m0, Label labels, uint64_t seed) {
  Rng rng(seed);
  auto edges = BarabasiAlbertEdges(n, m0, rng);
  AssignZipfLabels(&edges, labels, 2.0, rng);
  return DiGraph(n, std::move(edges), labels);
}

RlcIndex BuildSealed(const DiGraph& g, uint32_t k) {
  IndexerOptions options;
  options.k = k;
  RlcIndexBuilder builder(g, options);
  return builder.Build();
}

/// Constraints worth probing: every MR the (larger) dynamic table knows,
/// capped, plus random primitive sequences that are mostly unknown.
std::vector<LabelSeq> ProbeSeqs(const RlcIndex& index, Label num_labels,
                                uint32_t k, uint64_t seed) {
  std::vector<LabelSeq> seqs;
  const MrTable& mrs = index.mr_table();
  for (MrId id = 0; id < mrs.size() && seqs.size() < 20; ++id) {
    if (mrs.Get(id).size() <= k) seqs.push_back(mrs.Get(id));
  }
  Rng rng(seed);
  for (int i = 0; i < 6; ++i) {
    seqs.push_back(RandomPrimitiveSeq(1 + i % k, num_labels, rng));
  }
  return seqs;
}

/// The oracle: every all-pairs answer of the dynamic index must equal a
/// fresh build on the mutated graph — sealed and unsealed oracle layouts,
/// dynamic signatures on and off.
void ExpectMatchesRebuild(const DynamicRlcIndex& dyn, uint32_t k,
                          bool check_unsealed = false) {
  const DiGraph& base = dyn.base_graph();
  const DiGraph mutated(base.num_vertices(), dyn.MaterializedEdges(),
                        base.num_labels(), /*dedup_parallel=*/false);
  const RlcIndex oracle = BuildSealed(mutated, k);

  RlcIndex unsigned_copy = dyn.index();  // exercises the unguarded path too
  unsigned_copy.set_use_signatures(false);

  const auto seqs = ProbeSeqs(dyn.index(), base.num_labels(), k, 97);
  const VertexId n = base.num_vertices();
  for (const LabelSeq& seq : seqs) {
    const MrId dyn_mr = dyn.index().FindMr(seq);
    const MrId oracle_mr = oracle.FindMr(seq);
    for (VertexId s = 0; s < n; ++s) {
      for (VertexId t = 0; t < n; ++t) {
        const bool want = oracle.QueryInterned(s, t, oracle_mr);
        ASSERT_EQ(want, dyn.index().QueryInterned(s, t, dyn_mr))
            << "s=" << s << " t=" << t << " L=" << seq.ToString();
        ASSERT_EQ(want, unsigned_copy.QueryInterned(s, t, dyn_mr))
            << "unsignatured s=" << s << " t=" << t << " L=" << seq.ToString();
      }
    }
  }

  if (check_unsealed) {
    IndexerOptions options;
    options.k = k;
    options.seal = false;
    RlcIndexBuilder builder(mutated, options);
    const RlcIndex nested = builder.Build();
    ASSERT_FALSE(nested.sealed());
    Rng rng(4242);
    for (int trial = 0; trial < 500; ++trial) {
      const auto s = static_cast<VertexId>(rng.Below(n));
      const auto t = static_cast<VertexId>(rng.Below(n));
      const LabelSeq& seq = seqs[rng.Below(seqs.size())];
      ASSERT_EQ(nested.QueryInterned(s, t, nested.FindMr(seq)),
                dyn.index().QueryInterned(s, t, dyn.index().FindMr(seq)));
    }
  }
}

/// One random not-yet-present edge.
EdgeUpdate RandomNewEdge(const DynamicRlcIndex& dyn, Rng& rng) {
  const DiGraph& g = dyn.base_graph();
  for (;;) {
    const auto u = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const auto v = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const auto l = static_cast<Label>(rng.Below(g.num_labels()));
    if (!dyn.HasEdge(u, l, v)) return {u, l, v};
  }
}

TEST(DynamicIndexTest, DifferentialInsertScheduleErWithInlineReseals) {
  const DiGraph g = ErGraph(60, 180, 3, 11);
  ResealPolicy policy;
  policy.background = false;  // deterministic reseal points
  policy.min_delta_entries = 4;
  policy.max_delta_ratio = 0.02;  // reseal often: schedule crosses boundaries
  DynamicRlcIndex dyn(g, BuildSealed(g, 2), policy);

  Rng rng(7);
  for (int batch = 0; batch < 6; ++batch) {
    for (int i = 0; i < 5; ++i) {
      const EdgeUpdate e = RandomNewEdge(dyn, rng);
      ASSERT_TRUE(dyn.InsertEdge(e.src, e.label, e.dst));
    }
    ExpectMatchesRebuild(dyn, 2, /*check_unsealed=*/batch == 5);
  }
  EXPECT_GT(dyn.stats().reseals, 0u);
  EXPECT_GT(dyn.stats().delta_entries_added, 0u);
  EXPECT_EQ(dyn.stats().edges_inserted, 30u);
}

TEST(DynamicIndexTest, DifferentialK3) {
  const DiGraph g = ErGraph(40, 100, 3, 23);
  DynamicRlcIndex dyn(g, BuildSealed(g, 3));
  Rng rng(29);
  for (int batch = 0; batch < 4; ++batch) {
    for (int i = 0; i < 4; ++i) {
      const EdgeUpdate e = RandomNewEdge(dyn, rng);
      ASSERT_TRUE(dyn.InsertEdge(e.src, e.label, e.dst));
    }
    ExpectMatchesRebuild(dyn, 3);
  }
}

TEST(DynamicIndexTest, DifferentialBarabasiAlbert) {
  const DiGraph g = BaGraph(50, 3, 4, 31);
  ResealPolicy policy;
  policy.background = false;
  policy.min_delta_entries = 8;
  policy.max_delta_ratio = 0.05;
  DynamicRlcIndex dyn(g, BuildSealed(g, 2), policy);
  Rng rng(37);
  std::vector<EdgeUpdate> updates;
  for (int i = 0; i < 20; ++i) updates.push_back(RandomNewEdge(dyn, rng));
  // Applied in two chunks through the batch API.
  EXPECT_EQ(dyn.ApplyUpdates(std::span(updates).first(10)), 10u);
  ExpectMatchesRebuild(dyn, 2);
  EXPECT_EQ(dyn.ApplyUpdates(std::span(updates).subspan(10)), 10u);
  ExpectMatchesRebuild(dyn, 2);
}

TEST(DynamicIndexTest, DifferentialAcrossBackgroundReseal) {
  const DiGraph g = ErGraph(80, 280, 3, 41);
  ResealPolicy policy;
  policy.background = true;
  policy.min_delta_entries = 1;
  policy.max_delta_ratio = 1e-6;  // trigger on (nearly) every insert
  DynamicRlcIndex dyn(g, BuildSealed(g, 2), policy);
  Rng rng(43);
  for (int i = 0; i < 25; ++i) {
    const EdgeUpdate e = RandomNewEdge(dyn, rng);
    ASSERT_TRUE(dyn.InsertEdge(e.src, e.label, e.dst));
  }
  dyn.FinishReseal();
  ExpectMatchesRebuild(dyn, 2);
  EXPECT_GT(dyn.stats().reseals, 0u);

  dyn.ForceReseal();
  EXPECT_EQ(dyn.index().delta_entries(), 0u);
  ExpectMatchesRebuild(dyn, 2);
}

TEST(DynamicIndexTest, InsertNeverFlipsReachableToUnreachable) {
  const DiGraph g = ErGraph(50, 150, 3, 53);
  DynamicRlcIndex dyn(g, BuildSealed(g, 2));
  const auto seqs = ProbeSeqs(dyn.index(), g.num_labels(), 2, 59);

  std::vector<uint8_t> before;
  for (const LabelSeq& seq : seqs) {
    const MrId mr = dyn.index().FindMr(seq);
    for (VertexId s = 0; s < g.num_vertices(); ++s) {
      for (VertexId t = 0; t < g.num_vertices(); ++t) {
        before.push_back(dyn.index().QueryInterned(s, t, mr) ? 1 : 0);
      }
    }
  }

  Rng rng(61);
  for (int i = 0; i < 15; ++i) {
    const EdgeUpdate e = RandomNewEdge(dyn, rng);
    ASSERT_TRUE(dyn.InsertEdge(e.src, e.label, e.dst));
  }

  size_t pos = 0;
  for (const LabelSeq& seq : seqs) {
    const MrId mr = dyn.index().FindMr(seq);
    for (VertexId s = 0; s < g.num_vertices(); ++s) {
      for (VertexId t = 0; t < g.num_vertices(); ++t) {
        const bool after = dyn.index().QueryInterned(s, t, mr);
        if (before[pos++]) {
          ASSERT_TRUE(after) << "insert flipped (" << s << "," << t << ","
                             << seq.ToString() << ") to unreachable";
        }
      }
    }
  }
}

TEST(DynamicIndexTest, DuplicateInsertIsExactNoOp) {
  const DiGraph g = ErGraph(40, 140, 3, 67);
  DynamicRlcIndex dyn(g, BuildSealed(g, 2));

  Rng rng(71);
  const EdgeUpdate fresh = RandomNewEdge(dyn, rng);
  ASSERT_TRUE(dyn.InsertEdge(fresh.src, fresh.label, fresh.dst));

  const auto snapshot_state = [&] {
    std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
    WriteIndex(dyn.index(), buf);
    return buf.str();
  };
  const std::string bytes = snapshot_state();
  const uint64_t entries = dyn.index().NumEntries();
  const DynamicIndexStats stats = dyn.stats();

  // Re-inserting the overlay edge and a base-graph edge must change nothing:
  // entries, maintenance counters, serialized bytes.
  EXPECT_FALSE(dyn.InsertEdge(fresh.src, fresh.label, fresh.dst));
  const Edge base_edge = g.ToEdgeList().front();
  EXPECT_FALSE(dyn.InsertEdge(base_edge.src, base_edge.label, base_edge.dst));

  EXPECT_EQ(dyn.index().NumEntries(), entries);
  EXPECT_EQ(dyn.stats().edges_inserted, stats.edges_inserted);
  EXPECT_EQ(dyn.stats().delta_entries_added, stats.delta_entries_added);
  EXPECT_EQ(dyn.stats().pairs_examined, stats.pairs_examined);
  EXPECT_EQ(dyn.stats().edges_duplicate, stats.edges_duplicate + 2);
  EXPECT_EQ(snapshot_state(), bytes);
}

/// Canonical, MR-id-independent view of one entry list.
std::vector<std::pair<uint32_t, std::vector<Label>>> Canonical(
    const RlcIndex& index, std::span<const IndexEntry> entries) {
  std::vector<std::pair<uint32_t, std::vector<Label>>> out;
  for (const IndexEntry& e : entries) {
    const auto labels = index.mr_table().Get(e.mr).labels();
    out.emplace_back(e.hub_aid,
                     std::vector<Label>(labels.begin(), labels.end()));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(DynamicIndexTest, PermutingIndependentInsertsYieldsSameSealedIndex) {
  // Three disconnected components; one insert per component, so the inserts
  // are independent — any order must produce the same sealed index (up to
  // MR interning order, hence the canonical comparison).
  Rng rng(73);
  std::vector<Edge> edges;
  for (VertexId base : {0u, 20u, 40u}) {
    auto comp = ErdosRenyiEdges(20, 60, rng);
    AssignZipfLabels(&comp, 3, 2.0, rng);
    for (Edge& e : comp) {
      e.src += base;
      e.dst += base;
    }
    edges.insert(edges.end(), comp.begin(), comp.end());
  }
  const DiGraph g(60, std::move(edges), 3);

  DynamicRlcIndex probe(g, BuildSealed(g, 2));
  std::vector<EdgeUpdate> inserts;
  Rng pick(79);
  for (VertexId base : {0u, 20u, 40u}) {
    for (;;) {
      const auto u = static_cast<VertexId>(base + pick.Below(20));
      const auto v = static_cast<VertexId>(base + pick.Below(20));
      const auto l = static_cast<Label>(pick.Below(3));
      if (probe.HasEdge(u, l, v)) continue;
      inserts.push_back({u, l, v});
      break;
    }
  }

  auto run = [&](std::vector<size_t> order) {
    auto dyn = std::make_unique<DynamicRlcIndex>(g, BuildSealed(g, 2));
    for (const size_t i : order) {
      EXPECT_TRUE(
          dyn->InsertEdge(inserts[i].src, inserts[i].label, inserts[i].dst));
    }
    dyn->ForceReseal();
    return dyn;
  };
  const auto a = run({0, 1, 2});
  const auto b = run({2, 0, 1});
  const auto c = run({1, 2, 0});

  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto want_out = Canonical(a->index(), a->index().Lout(v));
    const auto want_in = Canonical(a->index(), a->index().Lin(v));
    for (const auto* other : {b.get(), c.get()}) {
      ASSERT_EQ(want_out, Canonical(other->index(), other->index().Lout(v)))
          << "Lout differs at v=" << v;
      ASSERT_EQ(want_in, Canonical(other->index(), other->index().Lin(v)))
          << "Lin differs at v=" << v;
    }
  }
}

TEST(DynamicIndexTest, ExecuteBatchHammerAcrossEpochSwap) {
  // Batched queries fan out across a worker pool while a background reseal
  // merges and the owner swaps epochs between batches; every answer must
  // match a from-scratch build on the graph state of its round.
  const DiGraph g = ErGraph(400, 1600, 3, 83);
  ResealPolicy policy;
  policy.background = true;
  policy.min_delta_entries = 1;
  policy.max_delta_ratio = 1e-6;
  DynamicRlcIndex dyn(g, BuildSealed(g, 2), policy);

  ExecuteOptions exec;
  exec.num_threads = 4;
  exec.probes_per_job = 64;

  Rng rng(89);
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 5; ++i) {
      const EdgeUpdate e = RandomNewEdge(dyn, rng);
      ASSERT_TRUE(dyn.InsertEdge(e.src, e.label, e.dst));
    }
    // Pin this round's epoch; the background merge may finish (and later
    // rounds may swap) while these batches execute.
    const std::shared_ptr<const RlcIndex> snap = dyn.Snapshot();
    const auto seqs = ProbeSeqs(*snap, g.num_labels(), 2, 91 + round);

    const DiGraph mutated(g.num_vertices(), dyn.MaterializedEdges(),
                          g.num_labels(), /*dedup_parallel=*/false);
    const RlcIndex oracle = BuildSealed(mutated, 2);

    QueryBatch batch;
    std::vector<uint8_t> expected;
    for (int probe = 0; probe < 4000; ++probe) {
      const auto s = static_cast<VertexId>(rng.Below(g.num_vertices()));
      const auto t = static_cast<VertexId>(rng.Below(g.num_vertices()));
      const LabelSeq& seq = seqs[rng.Below(seqs.size())];
      batch.Add(s, t, seq);
      expected.push_back(oracle.QueryInterned(s, t, oracle.FindMr(seq)) ? 1 : 0);
    }
    for (int rep = 0; rep < 3; ++rep) {
      const AnswerBatch answers = ExecuteBatch(*snap, batch, exec);
      ASSERT_EQ(answers.answers.size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(expected[i], answers.answers[i])
            << "round " << round << " rep " << rep << " probe " << i;
      }
    }
  }
  dyn.FinishReseal();
  EXPECT_GT(dyn.stats().reseals, 0u);
  ExpectMatchesRebuild(dyn, 2);
}

/// One random currently-present edge (base minus removals plus overlay).
EdgeUpdate RandomPresentEdge(const DynamicRlcIndex& dyn, Rng& rng) {
  const std::vector<Edge> edges = dyn.MaterializedEdges();
  const Edge& e = edges[rng.Below(edges.size())];
  return {e.src, e.label, e.dst, EdgeOp::kDelete};
}

TEST(DynamicIndexTest, DifferentialDeleteScheduleEr) {
  const DiGraph g = ErGraph(60, 200, 3, 103);
  ResealPolicy policy;
  policy.background = false;
  policy.min_delta_entries = 4;
  policy.max_delta_ratio = 0.02;  // reseal often: schedule crosses boundaries
  DynamicRlcIndex dyn(g, BuildSealed(g, 2), policy);

  Rng rng(107);
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 5; ++i) {
      const EdgeUpdate e = RandomPresentEdge(dyn, rng);
      ASSERT_TRUE(dyn.DeleteEdge(e.src, e.label, e.dst));
    }
    ExpectMatchesRebuild(dyn, 2, /*check_unsealed=*/batch == 4);
  }
  EXPECT_EQ(dyn.stats().edges_deleted, 25u);
  EXPECT_GT(dyn.stats().entries_suppressed, 0u);
}

TEST(DynamicIndexTest, DifferentialDeleteK3) {
  const DiGraph g = ErGraph(40, 120, 3, 109);
  DynamicRlcIndex dyn(g, BuildSealed(g, 3));
  Rng rng(113);
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 4; ++i) {
      const EdgeUpdate e = RandomPresentEdge(dyn, rng);
      ASSERT_TRUE(dyn.DeleteEdge(e.src, e.label, e.dst));
    }
    ExpectMatchesRebuild(dyn, 3);
  }
}

TEST(DynamicIndexTest, DeleteNeverFlipsUnreachableToReachable) {
  const DiGraph g = ErGraph(50, 160, 3, 127);
  DynamicRlcIndex dyn(g, BuildSealed(g, 2));
  const auto seqs = ProbeSeqs(dyn.index(), g.num_labels(), 2, 131);

  std::vector<uint8_t> before;
  for (const LabelSeq& seq : seqs) {
    const MrId mr = dyn.index().FindMr(seq);
    for (VertexId s = 0; s < g.num_vertices(); ++s) {
      for (VertexId t = 0; t < g.num_vertices(); ++t) {
        before.push_back(dyn.index().QueryInterned(s, t, mr) ? 1 : 0);
      }
    }
  }

  Rng rng(137);
  for (int i = 0; i < 12; ++i) {
    const EdgeUpdate e = RandomPresentEdge(dyn, rng);
    ASSERT_TRUE(dyn.DeleteEdge(e.src, e.label, e.dst));
  }

  size_t pos = 0;
  for (const LabelSeq& seq : seqs) {
    const MrId mr = dyn.index().FindMr(seq);
    for (VertexId s = 0; s < g.num_vertices(); ++s) {
      for (VertexId t = 0; t < g.num_vertices(); ++t) {
        const bool after = dyn.index().QueryInterned(s, t, mr);
        if (!before[pos++]) {
          ASSERT_FALSE(after) << "delete flipped (" << s << "," << t << ","
                              << seq.ToString() << ") to reachable";
        }
      }
    }
  }
}

TEST(DynamicIndexTest, MixedMutationsAcrossBackgroundReseal) {
  const DiGraph g = ErGraph(70, 240, 3, 139);
  ResealPolicy policy;
  policy.background = true;
  policy.min_delta_entries = 1;
  policy.max_delta_ratio = 1e-6;  // trigger on (nearly) every mutation
  DynamicRlcIndex dyn(g, BuildSealed(g, 2), policy);
  Rng rng(149);
  for (int i = 0; i < 30; ++i) {
    if (rng.Below(2) == 0) {
      const EdgeUpdate e = RandomNewEdge(dyn, rng);
      ASSERT_TRUE(dyn.InsertEdge(e.src, e.label, e.dst));
    } else {
      const EdgeUpdate e = RandomPresentEdge(dyn, rng);
      ASSERT_TRUE(dyn.DeleteEdge(e.src, e.label, e.dst));
    }
  }
  dyn.FinishReseal();
  ExpectMatchesRebuild(dyn, 2);

  dyn.ForceReseal();
  EXPECT_EQ(dyn.index().delta_entries(), 0u);
  EXPECT_EQ(dyn.index().tombstone_entries(), 0u);
  ExpectMatchesRebuild(dyn, 2);
}

TEST(DynamicIndexTest, DeleteMissingEdgeIsExactNoOp) {
  const DiGraph g = ErGraph(40, 140, 3, 151);
  DynamicRlcIndex dyn(g, BuildSealed(g, 2));

  Rng rng(157);
  const EdgeUpdate absent = RandomNewEdge(dyn, rng);
  const auto snapshot_state = [&] {
    std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
    WriteIndex(dyn.index(), buf);
    return buf.str();
  };
  const std::string bytes = snapshot_state();
  const DynamicIndexStats stats = dyn.stats();

  EXPECT_FALSE(dyn.DeleteEdge(absent.src, absent.label, absent.dst));
  EXPECT_EQ(dyn.stats().edges_delete_missing, stats.edges_delete_missing + 1);
  EXPECT_EQ(dyn.stats().edges_deleted, stats.edges_deleted);
  EXPECT_EQ(dyn.stats().entries_suppressed, stats.entries_suppressed);
  EXPECT_EQ(snapshot_state(), bytes);

  // Deleting an edge twice: the second call is the same exact no-op.
  const Edge base_edge = g.ToEdgeList().front();
  ASSERT_TRUE(dyn.DeleteEdge(base_edge.src, base_edge.label, base_edge.dst));
  const std::string after_delete = snapshot_state();
  EXPECT_FALSE(dyn.DeleteEdge(base_edge.src, base_edge.label, base_edge.dst));
  EXPECT_EQ(snapshot_state(), after_delete);
}

TEST(DynamicIndexTest, ApplyUpdatesRoutesMixedOps) {
  const DiGraph g = ErGraph(50, 170, 3, 163);
  DynamicRlcIndex dyn(g, BuildSealed(g, 2));
  Rng rng(167);
  std::vector<EdgeUpdate> updates;
  for (int i = 0; i < 6; ++i) updates.push_back(RandomNewEdge(dyn, rng));
  const Edge base_edge = g.ToEdgeList()[7];
  updates.push_back({base_edge.src, base_edge.label, base_edge.dst,
                     EdgeOp::kDelete});
  // Delete one of the batch's own inserts: present by then, so it applies.
  updates.push_back({updates[0].src, updates[0].label, updates[0].dst,
                     EdgeOp::kDelete});
  // And a no-op pair: delete of an absent edge, re-insert of a base edge.
  EdgeUpdate absent = RandomNewEdge(dyn, rng);
  while (std::find_if(updates.begin(), updates.end(), [&](const EdgeUpdate& u) {
           return u.src == absent.src && u.label == absent.label &&
                  u.dst == absent.dst;
         }) != updates.end()) {
    absent = RandomNewEdge(dyn, rng);
  }
  updates.push_back({absent.src, absent.label, absent.dst, EdgeOp::kDelete});
  updates.push_back({base_edge.src, base_edge.label, base_edge.dst});

  // 6 inserts + 2 deletes + re-insert of the deleted base edge apply; the
  // delete of the never-present edge does not.
  EXPECT_EQ(dyn.ApplyUpdates(updates), 9u);
  EXPECT_EQ(dyn.stats().edges_deleted, 2u);
  EXPECT_EQ(dyn.stats().edges_delete_missing, 1u);
  ExpectMatchesRebuild(dyn, 2);
}

TEST(DynamicIndexTest, RejectsInvalidArguments) {
  const DiGraph g = ErGraph(20, 60, 2, 97);
  DynamicRlcIndex dyn(g, BuildSealed(g, 2));
  EXPECT_THROW(dyn.InsertEdge(20, 0, 1), std::invalid_argument);
  EXPECT_THROW(dyn.InsertEdge(0, 0, 20), std::invalid_argument);
  EXPECT_THROW(dyn.InsertEdge(0, 2, 1), std::invalid_argument);  // new label
  EXPECT_THROW(dyn.DeleteEdge(20, 0, 1), std::invalid_argument);
  EXPECT_THROW(dyn.DeleteEdge(0, 0, 20), std::invalid_argument);
  EXPECT_THROW(dyn.DeleteEdge(0, 2, 1), std::invalid_argument);
}

TEST(DynamicIndexTest, RequiresSealedIndex) {
  const DiGraph g = ErGraph(20, 60, 2, 101);
  IndexerOptions options;
  options.k = 2;
  options.seal = false;
  RlcIndexBuilder builder(g, options);
  EXPECT_THROW(DynamicRlcIndex(g, builder.Build()), std::invalid_argument);
}

}  // namespace
}  // namespace rlc
