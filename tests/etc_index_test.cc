// Tests for the extended transitive closure baseline.

#include "rlc/baselines/etc_index.h"

#include <gtest/gtest.h>

#include "rlc/graph/paper_graphs.h"

namespace rlc {
namespace {

class EtcFig2Test : public ::testing::Test {
 protected:
  EtcFig2Test() : g_(BuildFig2Graph()), etc_(EtcIndex::Build(g_, 2, &stats_)) {}

  VertexId V(const char* n) const { return *g_.FindVertex(n); }
  Label L(const char* n) const { return *g_.FindLabel(n); }

  DiGraph g_;
  EtcStats stats_;
  EtcIndex etc_;
};

TEST_F(EtcFig2Test, Example4Queries) {
  EXPECT_TRUE(etc_.Query(V("v3"), V("v6"), LabelSeq{L("l2"), L("l1")}));
  EXPECT_TRUE(etc_.Query(V("v1"), V("v2"), LabelSeq{L("l2"), L("l1")}));
  EXPECT_FALSE(etc_.Query(V("v1"), V("v3"), LabelSeq{L("l1")}));
}

TEST_F(EtcFig2Test, RecordsConciseSetsPerPair) {
  // S2(v3,v6) from the graph: l1 (direct), (l2,l1) via Example 4's path,
  // and l2-l3? (v3-l2->v4-l3->v6 has MR (l2,l3)).
  EXPECT_TRUE(etc_.Query(V("v3"), V("v6"), LabelSeq{L("l1")}));
  EXPECT_TRUE(etc_.Query(V("v3"), V("v6"), LabelSeq{L("l2"), L("l3")}));
  EXPECT_FALSE(etc_.Query(V("v3"), V("v6"), LabelSeq{L("l2")}));
}

TEST_F(EtcFig2Test, StatsPopulated) {
  EXPECT_GT(stats_.entries, 0u);
  EXPECT_GT(stats_.reachable_pairs, 0u);
  EXPECT_GE(stats_.entries, stats_.reachable_pairs);
  EXPECT_GE(stats_.build_seconds, 0.0);
  EXPECT_EQ(etc_.NumEntries(), stats_.entries);
  EXPECT_EQ(etc_.NumPairs(), stats_.reachable_pairs);
  EXPECT_GT(etc_.MemoryBytes(), 0u);
}

TEST_F(EtcFig2Test, Validation) {
  EXPECT_THROW(etc_.Query(99, 0, LabelSeq{0}), std::invalid_argument);
  EXPECT_THROW(etc_.Query(0, 0, LabelSeq{}), std::invalid_argument);
  EXPECT_THROW(etc_.Query(0, 0, LabelSeq{0, 0}), std::invalid_argument);
  EXPECT_THROW(etc_.Query(0, 0, LabelSeq{0, 1, 2}), std::invalid_argument);
}

TEST(EtcIndexTest, RejectsBadK) {
  const DiGraph g = BuildFig2Graph();
  EXPECT_THROW(EtcIndex::Build(g, 0), std::invalid_argument);
  EXPECT_THROW(EtcIndex::Build(g, kMaxK + 1), std::invalid_argument);
}

TEST(EtcIndexTest, EmptyGraph) {
  const EtcIndex etc = EtcIndex::Build(DiGraph(), 2);
  EXPECT_EQ(etc.NumEntries(), 0u);
  EXPECT_EQ(etc.NumPairs(), 0u);
}

TEST(EtcIndexTest, EtcIsLargerThanRlcIndexEntryWise) {
  // The motivating claim of Table IV: ETC records one entry per reachable
  // pair per MR, the RLC index shares hubs. On Fig. 2 the gap is visible.
  const DiGraph g = BuildFig2Graph();
  EtcStats stats;
  const EtcIndex etc = EtcIndex::Build(g, 2, &stats);
  // 26 entries in the RLC index (Table II); the ETC stores strictly more.
  EXPECT_GT(stats.entries, 26u);
}

}  // namespace
}  // namespace rlc
