// Chaos harness for the fault-tolerant serving path.
//
// Each scenario drives a ShardedRlcService with mixed read/update traffic
// while a *seeded* probabilistic failpoint schedule (util/failpoint.h)
// injects errors and delays into the query path — shard kernel jobs,
// composed-probe jobs, individual composition probes. The load-bearing
// invariants, checked on every round:
//
//   1. Exactness under faults: every probe whose status is kOk returns the
//      bit-identical answer of a whole-graph DynamicRlcIndex oracle that
//      shares the mutation stream but has no failpoint sites on its query
//      path. Degraded probes (broken shard -> index-free evaluation) are
//      still exact; non-kOk probes carry an explicit status and answer 0.
//   2. Breakers are observable: schedules hot enough to trip a breaker
//      must show serve.breaker.opened transitions, and once the schedule
//      clears, clean traffic recloses every breaker (half-open trials).
//   3. Deadlines bound latency: with every job delayed, a batch budget
//      caps wall-clock at roughly one job overrun instead of the full
//      sum of delays, and skipped probes say kDeadlineExceeded.
//
// Schedules are reproducible: the failpoint RNG is seeded per scenario
// (RLC_CHAOS_FAILPOINTS / RLC_CHAOS_SEED env vars override the default
// soak schedule for operator-driven chaos runs).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "rlc/core/dynamic_index.h"
#include "rlc/core/indexer.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/serve/query_batch.h"
#include "rlc/serve/serving_status.h"
#include "rlc/serve/sharded_service.h"
#include "rlc/util/failpoint.h"
#include "rlc/util/rng.h"
#include "rlc/util/timer.h"
#include "rlc/workload/query_gen.h"

namespace rlc {
namespace {

struct FailpointGuard {
  FailpointGuard() { Failpoints::Instance().Clear(); }
  ~FailpointGuard() { Failpoints::Instance().Clear(); }
};

DiGraph ChaosGraph(uint64_t seed) {
  Rng rng(seed);
  auto edges = ErdosRenyiEdges(600, 2400, rng);
  AssignZipfLabels(&edges, 4, 2.0, rng);
  return DiGraph(600, std::move(edges), 4);
}

struct ChaosConfig {
  std::string schedule;        ///< RLC_FAILPOINTS-style spec
  uint64_t seed = 1234;        ///< failpoint RNG + traffic seed
  uint32_t exec_threads = 1;
  int rounds = 40;
  uint32_t failure_threshold = 2;
  uint64_t initial_backoff_ns = 1'000'000;  ///< 1 ms: recloses within a run
  uint64_t batch_budget_ns = 0;
  bool expect_breaker_trips = false;
};

struct ChaosOutcome {
  uint64_t ok = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t unavailable = 0;
  uint64_t degraded = 0;
  /// Flattened (status, answer) stream for run-to-run determinism checks.
  std::vector<uint8_t> trace;
};

/// One chaos scenario: `rounds` rounds of mutate-then-query traffic under
/// the armed schedule, a differential oracle check on every kOk answer,
/// then recovery: schedule off, clean traffic until every breaker recloses.
ChaosOutcome RunChaos(const ChaosConfig& cfg) {
  FailpointGuard guard;
  const DiGraph g = ChaosGraph(cfg.seed);

  ServiceOptions options;
  options.partition.num_shards = 3;
  options.indexer.k = 2;
  options.build_threads = 2;
  options.exec_threads = cfg.exec_threads;
  options.breaker.failure_threshold = cfg.failure_threshold;
  options.breaker.initial_backoff_ns = cfg.initial_backoff_ns;
  options.breaker.max_backoff_ns = cfg.initial_backoff_ns * 8;
  options.breaker.seed = cfg.seed + 1;
  ShardedRlcService service(g, options);

  // The oracle shares the mutation stream but answers through
  // DynamicRlcIndex::Query — no failpoint site anywhere on that path, so
  // an armed schedule cannot corrupt the expected answers.
  IndexerOptions oracle_opts;
  oracle_opts.k = 2;
  oracle_opts.seal = true;
  RlcIndexBuilder oracle_builder(g, oracle_opts);
  DynamicRlcIndex oracle(g, oracle_builder.Build(), ResealPolicy{});

  Failpoints::Instance().Parse(cfg.schedule);
  Failpoints::Instance().Seed(cfg.seed);

  Rng traffic(cfg.seed * 0x9E3779B9u + 1);
  ExecuteLimits limits;
  limits.batch_budget_ns = cfg.batch_budget_ns;
  ChaosOutcome outcome;

  for (int round = 0; round < cfg.rounds; ++round) {
    // Mutations every third round: mostly inserts, some deletes of edges
    // known to exist. Applied to service and oracle identically (both
    // treat duplicate inserts / absent deletes as exact no-ops).
    if (round % 3 == 1) {
      std::vector<EdgeUpdate> updates;
      for (int u = 0; u < 6; ++u) {
        const auto src = static_cast<VertexId>(traffic.Below(g.num_vertices()));
        const auto dst = static_cast<VertexId>(traffic.Below(g.num_vertices()));
        const auto label = static_cast<Label>(traffic.Below(g.num_labels()));
        const EdgeOp op =
            traffic.Below(4) == 0 ? EdgeOp::kDelete : EdgeOp::kInsert;
        updates.push_back({src, label, dst, op});
      }
      service.ApplyUpdates(updates);
      for (const EdgeUpdate& e : updates) {
        if (e.op == EdgeOp::kInsert) {
          oracle.InsertEdge(e.src, e.label, e.dst);
        } else {
          oracle.DeleteEdge(e.src, e.label, e.dst);
        }
      }
    }

    QueryBatch batch;
    for (int i = 0; i < 64; ++i) {
      batch.Add(static_cast<VertexId>(traffic.Below(g.num_vertices())),
                static_cast<VertexId>(traffic.Below(g.num_vertices())),
                RandomPrimitiveSeq(1 + static_cast<uint32_t>(i % 2),
                                   g.num_labels(), traffic));
    }
    const AnswerBatch out = service.Execute(batch, limits);
    EXPECT_EQ(out.statuses.size(), batch.num_probes());
    for (size_t i = 0; i < batch.num_probes(); ++i) {
      const BatchProbe& p = batch.probes()[i];
      outcome.trace.push_back(static_cast<uint8_t>(out.statuses[i]));
      outcome.trace.push_back(out.answers[i]);
      switch (out.statuses[i]) {
        case ProbeStatus::kOk:
          ++outcome.ok;
          // The differential invariant: a completed answer is exact, no
          // matter which faults fired around it.
          EXPECT_EQ(out.answers[i] != 0,
                    oracle.Query(p.s, p.t, batch.sequence(p.seq_id)))
              << "round " << round << " probe " << i << " s=" << p.s
              << " t=" << p.t;
          break;
        case ProbeStatus::kDeadlineExceeded:
          ++outcome.deadline_exceeded;
          EXPECT_EQ(out.answers[i], 0);
          break;
        case ProbeStatus::kShardUnavailable:
          ++outcome.unavailable;
          EXPECT_EQ(out.answers[i], 0);
          break;
        case ProbeStatus::kShedded:
          ADD_FAILURE() << "no admission limits armed, probe " << i
                        << " shedded";
          break;
      }
    }
    outcome.degraded += out.num_degraded;
  }

  if (cfg.expect_breaker_trips) {
    EXPECT_GT(service.stats().breaker_opened, 0u)
        << "schedule '" << cfg.schedule << "' never tripped a breaker";
  }

  // Recovery: disarm everything, then clean traffic must reclose every
  // breaker (backoffs are capped at a few ms) and answer exactly.
  Failpoints::Instance().Clear();
  QueryBatch clean;
  for (int i = 0; i < 64; ++i) {
    clean.Add(static_cast<VertexId>(traffic.Below(g.num_vertices())),
              static_cast<VertexId>(traffic.Below(g.num_vertices())),
              RandomPrimitiveSeq(1 + static_cast<uint32_t>(i % 2),
                                 g.num_labels(), traffic));
  }
  bool all_closed = false;
  for (int attempt = 0; attempt < 200 && !all_closed; ++attempt) {
    const AnswerBatch healed = service.Execute(clean);
    for (size_t i = 0; i < clean.num_probes(); ++i) {
      if (healed.statuses[i] != ProbeStatus::kOk) continue;
      const BatchProbe& p = clean.probes()[i];
      EXPECT_EQ(healed.answers[i] != 0,
                oracle.Query(p.s, p.t, clean.sequence(p.seq_id)));
    }
    all_closed = service.compose_breaker_state() == BreakerState::kClosed;
    for (uint32_t s = 0; s < service.partition().num_shards(); ++s) {
      all_closed &= service.shard_breaker_state(s) == BreakerState::kClosed;
    }
    if (!all_closed) ::usleep(2000);  // let an open breaker's backoff lapse
  }
  EXPECT_TRUE(all_closed) << "breakers never reclosed after the schedule "
                             "cleared (opened="
                          << service.stats().breaker_opened << " reclosed="
                          << service.stats().breaker_reclosed << ")";
  const AnswerBatch final_batch = service.Execute(clean);
  EXPECT_TRUE(final_batch.all_ok());
  return outcome;
}

TEST(ChaosTest, ShardErrorsStayExactAndBreakersRecover) {
  ChaosConfig cfg;
  cfg.schedule = "serve.shard.execute=error@p0.3";
  cfg.seed = 1234;
  cfg.expect_breaker_trips = true;
  const ChaosOutcome out = RunChaos(cfg);
  EXPECT_GT(out.ok, 0u);
  EXPECT_GT(out.degraded, 0u);  // broken shards detoured, still exact
}

TEST(ChaosTest, MixedFaultScheduleKeepsOkAnswersExact) {
  ChaosConfig cfg;
  cfg.schedule =
      "serve.shard.execute=error@p0.2;"
      "serve.compose.execute=error@p0.1;"
      "serve.compose.probe=delay(1)@p0.1";
  cfg.seed = 99;
  cfg.expect_breaker_trips = true;
  const ChaosOutcome out = RunChaos(cfg);
  EXPECT_GT(out.ok, 0u);
  // With the composition engine itself failing sometimes there is no
  // second-level engine: those probes must surface as unavailable, not as
  // answers.
  EXPECT_GT(out.unavailable, 0u);
}

TEST(ChaosTest, ParallelExecutionKeepsTheInvariant) {
  ChaosConfig cfg;
  cfg.schedule = "serve.shard.execute=error@p0.3";
  cfg.seed = 4321;
  cfg.exec_threads = 2;
  cfg.rounds = 20;
  const ChaosOutcome out = RunChaos(cfg);
  EXPECT_GT(out.ok, 0u);
}

TEST(ChaosTest, RunsAreDeterministicGivenSeedAndSingleThread) {
  // Clock-free determinism: the breaker never trips (huge threshold), no
  // deadline is set, and exec_threads=1 gives a total order on failpoint
  // draws — so two runs with the same seed produce identical
  // status/answer streams, and a different seed produces a different one.
  ChaosConfig cfg;
  cfg.schedule = "serve.shard.execute=error@p0.4";
  cfg.seed = 777;
  cfg.rounds = 12;
  cfg.failure_threshold = 1'000'000;  // stays closed: no clock in the loop
  const ChaosOutcome a = RunChaos(cfg);
  const ChaosOutcome b = RunChaos(cfg);
  EXPECT_EQ(a.trace, b.trace);
  cfg.seed = 778;
  const ChaosOutcome c = RunChaos(cfg);
  EXPECT_NE(a.trace, c.trace);
}

TEST(ChaosTest, DeadlineBoundsBatchWallClock) {
  // Structural latency bound: every shard job sleeps 20 ms, the batch
  // budget is 5 ms. Without deadlines the batch would cost
  // (#jobs x 20 ms) >> 100 ms; with them, one overrunning job is the cap —
  // the executor checks the deadline before each job, so wall clock stays
  // near (first job's delay) + epsilon, and the skipped probes say so.
  FailpointGuard guard;
  const DiGraph g = ChaosGraph(55);
  ServiceOptions options;
  options.partition.num_shards = 3;
  options.indexer.k = 2;
  options.build_threads = 2;
  ShardedRlcService service(g, options);

  Rng rng(55);
  QueryBatch batch;
  for (int i = 0; i < 96; ++i) {  // many distinct (shard, MR) groups
    batch.Add(static_cast<VertexId>(rng.Below(g.num_vertices())),
              static_cast<VertexId>(rng.Below(g.num_vertices())),
              RandomPrimitiveSeq(1 + static_cast<uint32_t>(i % 2),
                                 g.num_labels(), rng));
  }

  Failpoints::Instance().Parse("serve.shard.execute=delay(20)@p1");
  ExecuteLimits limits;
  limits.batch_budget_ns = 5'000'000;  // 5 ms
  Timer timer;
  const AnswerBatch out = service.Execute(batch, limits);
  const double elapsed_ms = timer.ElapsedSeconds() * 1e3;
  Failpoints::Instance().Clear();

  EXPECT_GT(out.num_deadline_exceeded, 0u);
  EXPECT_LT(elapsed_ms, 120.0) << "deadline did not bound the batch";
  // Whatever did complete before expiry (most probes detour through the
  // composition path, which is already past deadline after the first
  // delayed job, so this set may be empty) must still be exact.
  const RlcIndex oracle = BuildRlcIndex(g, 2);
  uint64_t ok = 0;
  for (size_t i = 0; i < batch.num_probes(); ++i) {
    if (out.statuses[i] != ProbeStatus::kOk) continue;
    ++ok;
    const BatchProbe& p = batch.probes()[i];
    ASSERT_EQ(out.answers[i] != 0,
              oracle.QueryInterned(p.s, p.t,
                                   oracle.FindMr(batch.sequence(p.seq_id))));
  }
  EXPECT_EQ(ok + out.num_deadline_exceeded,
            batch.num_probes());  // nothing silently dropped
}

TEST(ChaosTest, ProbeBudgetBoundsComposedProbeOverrun) {
  // Regression pin for in-BFS deadline enforcement: every composed probe's
  // failpoint sleeps 20 ms against a 5 ms probe budget (the budget clock
  // starts before the failpoint, so the sleep consumes it). The budget used
  // to be checked only after ComposedQuery returned — a delayed probe kept
  // its answer, reported kOk, and nothing said kDeadlineExceeded. Now the
  // deadline is enforced inside the traversal: the delayed probe aborts on
  // entry (overrun bounded by one check stride), reports kDeadlineExceeded,
  // and counts a serve.compose.budget_overruns.
  FailpointGuard guard;
  const DiGraph g = ChaosGraph(56);
  ServiceOptions options;
  options.partition.num_shards = 3;
  options.indexer.k = 2;
  options.build_threads = 2;
  ShardedRlcService service(g, options);

  Rng rng(56);
  QueryBatch batch;
  for (int i = 0; i < 96; ++i) {
    batch.Add(static_cast<VertexId>(rng.Below(g.num_vertices())),
              static_cast<VertexId>(rng.Below(g.num_vertices())),
              RandomPrimitiveSeq(1 + static_cast<uint32_t>(i % 2),
                                 g.num_labels(), rng));
  }

  Failpoints::Instance().Parse("serve.compose.probe=delay(20)@p1");
  ExecuteLimits limits;
  limits.probe_budget_ns = 5'000'000;  // 5 ms per composed probe
  limits.batch_budget_ns = 5'000'000;  // caps the tail of delayed probes
  Timer timer;
  const AnswerBatch out = service.Execute(batch, limits);
  const double elapsed_ms = timer.ElapsedSeconds() * 1e3;
  Failpoints::Instance().Clear();

  // At least the first composed probe ate its 20 ms delay and aborted
  // mid-probe; the rest were cut off by the batch deadline pre-check. Wall
  // clock is bounded by one delayed probe + slack, not (#composed x 20 ms).
  EXPECT_GT(out.num_deadline_exceeded, 0u);
  EXPECT_GT(service.stats().compose_overruns, 0u)
      << "the delayed probe's budget overrun was not counted";
  EXPECT_LT(elapsed_ms, 120.0) << "probe budget did not bound the overrun";
  // No probe may slip through with a stale kOk answer after its budget
  // blew: every probe is either exact-and-ok or explicitly deadline-failed.
  uint64_t ok = 0;
  const RlcIndex oracle = BuildRlcIndex(g, 2);
  for (size_t i = 0; i < batch.num_probes(); ++i) {
    if (out.statuses[i] != ProbeStatus::kOk) {
      ASSERT_EQ(out.statuses[i], ProbeStatus::kDeadlineExceeded);
      ASSERT_EQ(out.answers[i], 0);
      continue;
    }
    ++ok;
    const BatchProbe& p = batch.probes()[i];
    ASSERT_EQ(out.answers[i] != 0,
              oracle.QueryInterned(p.s, p.t,
                                   oracle.FindMr(batch.sequence(p.seq_id))));
  }
  EXPECT_EQ(ok + out.num_deadline_exceeded, batch.num_probes());
}

// Operator hook: RLC_CHAOS_FAILPOINTS / RLC_CHAOS_SEED run a custom soak
// schedule through the full harness (differential oracle, breaker recovery,
// determinism machinery) without recompiling. No-op when unset.
TEST(ChaosTest, EnvDrivenSoak) {
  const char* schedule = std::getenv("RLC_CHAOS_FAILPOINTS");
  if (schedule == nullptr || *schedule == '\0') {
    GTEST_SKIP() << "RLC_CHAOS_FAILPOINTS not set";
  }
  ChaosConfig cfg;
  cfg.schedule = schedule;
  if (const char* seed = std::getenv("RLC_CHAOS_SEED")) {
    cfg.seed = std::strtoull(seed, nullptr, 10);
    if (cfg.seed == 0) cfg.seed = 1;
  }
  cfg.rounds = 60;
  const ChaosOutcome out = RunChaos(cfg);
  EXPECT_GT(out.ok, 0u);
}

}  // namespace
}  // namespace rlc
