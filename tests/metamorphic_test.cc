// Metamorphic properties of the RLC index:
//
//  1. Edge monotonicity — adding an edge adds paths, so under the arbitrary
//     path semantics every query answer is monotone non-decreasing.
//  2. Label-permutation equivariance — renaming labels by a bijection π and
//     asking π(L)+ must give the original answer.
//  3. Vertex-permutation equivariance — renaming vertices by a bijection σ
//     and asking (σ(s), σ(t), L+) must give the original answer.
//
// These catch whole classes of indexing bugs (ordering sensitivities,
// id-dependent pruning mistakes) that example-based tests cannot.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "rlc/core/indexer.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/util/rng.h"
#include "rlc/workload/query_gen.h"

namespace rlc {
namespace {

DiGraph RandomGraph(VertexId n, uint64_t m, Label labels, uint64_t seed) {
  Rng rng(seed);
  auto edges = ErdosRenyiEdges(n, m, rng);
  AssignZipfLabels(&edges, labels, 2.0, rng);
  return DiGraph(n, std::move(edges), labels);
}

class MetamorphicTest : public ::testing::TestWithParam<int> {};

TEST_P(MetamorphicTest, EdgeAdditionIsMonotone) {
  const uint64_t seed = 100 + static_cast<uint64_t>(GetParam());
  const DiGraph g = RandomGraph(70, 250, 3, seed);
  const RlcIndex before = BuildRlcIndex(g, 2);

  // Add a handful of fresh edges.
  Rng rng(seed * 3);
  auto edges = g.ToEdgeList();
  for (int i = 0; i < 5; ++i) {
    edges.push_back({static_cast<VertexId>(rng.Below(70)),
                     static_cast<VertexId>(rng.Below(70)),
                     static_cast<Label>(rng.Below(3))});
  }
  const DiGraph bigger(70, std::move(edges), 3);
  const RlcIndex after = BuildRlcIndex(bigger, 2);

  for (int trial = 0; trial < 600; ++trial) {
    const auto s = static_cast<VertexId>(rng.Below(70));
    const auto t = static_cast<VertexId>(rng.Below(70));
    const LabelSeq c = RandomPrimitiveSeq(1 + trial % 2, 3, rng);
    // true may not become false.
    if (before.Query(s, t, c)) {
      ASSERT_TRUE(after.Query(s, t, c))
          << "edge addition lost a path: s=" << s << " t=" << t
          << " c=" << c.ToString();
    }
  }
}

TEST_P(MetamorphicTest, LabelPermutationEquivariance) {
  const uint64_t seed = 200 + static_cast<uint64_t>(GetParam());
  const Label num_labels = 4;
  const DiGraph g = RandomGraph(70, 260, num_labels, seed);

  // Random label bijection.
  Rng rng(seed * 7);
  std::vector<Label> pi(num_labels);
  std::iota(pi.begin(), pi.end(), 0);
  for (size_t i = pi.size(); i > 1; --i) std::swap(pi[i - 1], pi[rng.Below(i)]);

  auto edges = g.ToEdgeList();
  for (Edge& e : edges) e.label = pi[e.label];
  const DiGraph renamed(70, std::move(edges), num_labels);

  const RlcIndex original = BuildRlcIndex(g, 2);
  const RlcIndex mapped = BuildRlcIndex(renamed, 2);

  for (int trial = 0; trial < 600; ++trial) {
    const auto s = static_cast<VertexId>(rng.Below(70));
    const auto t = static_cast<VertexId>(rng.Below(70));
    const LabelSeq c = RandomPrimitiveSeq(1 + trial % 2, num_labels, rng);
    LabelSeq pc;
    for (uint32_t i = 0; i < c.size(); ++i) pc.PushBack(pi[c[i]]);
    ASSERT_EQ(original.Query(s, t, c), mapped.Query(s, t, pc))
        << "label permutation changed the answer: s=" << s << " t=" << t
        << " c=" << c.ToString();
  }
}

TEST_P(MetamorphicTest, VertexPermutationEquivariance) {
  const uint64_t seed = 300 + static_cast<uint64_t>(GetParam());
  const VertexId n = 70;
  const DiGraph g = RandomGraph(n, 260, 3, seed);

  Rng rng(seed * 11);
  std::vector<VertexId> sigma(n);
  std::iota(sigma.begin(), sigma.end(), 0);
  for (size_t i = sigma.size(); i > 1; --i) {
    std::swap(sigma[i - 1], sigma[rng.Below(i)]);
  }

  auto edges = g.ToEdgeList();
  for (Edge& e : edges) {
    e.src = sigma[e.src];
    e.dst = sigma[e.dst];
  }
  const DiGraph renamed(n, std::move(edges), 3);

  const RlcIndex original = BuildRlcIndex(g, 2);
  const RlcIndex mapped = BuildRlcIndex(renamed, 2);

  for (int trial = 0; trial < 600; ++trial) {
    const auto s = static_cast<VertexId>(rng.Below(n));
    const auto t = static_cast<VertexId>(rng.Below(n));
    const LabelSeq c = RandomPrimitiveSeq(1 + trial % 2, 3, rng);
    ASSERT_EQ(original.Query(s, t, c), mapped.Query(sigma[s], sigma[t], c))
        << "vertex permutation changed the answer: s=" << s << " t=" << t
        << " c=" << c.ToString();
  }
}

TEST_P(MetamorphicTest, LazyAndEagerAnswerIdentically) {
  // Lazy and eager KBS may record different (both condensed) entry sets;
  // their observable behaviour must coincide on exhaustive small inputs.
  const uint64_t seed = 400 + static_cast<uint64_t>(GetParam());
  const DiGraph g = RandomGraph(40, 170, 2, seed);

  const RlcIndex eager = BuildRlcIndex(g, 3);
  IndexerOptions lazy_options;
  lazy_options.k = 3;
  lazy_options.strategy = KbsStrategy::kLazy;
  RlcIndexBuilder lazy_builder(g, lazy_options);
  const RlcIndex lazy = lazy_builder.Build();

  const std::vector<LabelSeq> constraints = {
      LabelSeq{0}, LabelSeq{1}, LabelSeq{0, 1}, LabelSeq{1, 0},
      LabelSeq{0, 0, 1}, LabelSeq{0, 1, 1}, LabelSeq{1, 0, 0}, LabelSeq{1, 1, 0}};
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    for (VertexId t = 0; t < g.num_vertices(); ++t) {
      for (const LabelSeq& c : constraints) {
        ASSERT_EQ(eager.Query(s, t, c), lazy.Query(s, t, c))
            << "s=" << s << " t=" << t << " c=" << c.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetamorphicTest, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace rlc
