// Unit and property tests for the label-sequence algebra: minimum repeats
// (Lemma 1), kernel/tail decomposition (Definition 3, Lemma 2) and the
// Theorem 1 case analysis.

#include "rlc/core/label_seq.h"

#include <gtest/gtest.h>

#include <vector>

#include "rlc/core/mr_table.h"
#include "rlc/util/rng.h"

namespace rlc {
namespace {

using L = std::vector<Label>;

// Brute-force reference: smallest p such that p divides |seq| and seq is a
// repetition of its p-prefix.
size_t BruteForceMrLength(const L& seq) {
  const size_t n = seq.size();
  for (size_t p = 1; p <= n; ++p) {
    if (n % p != 0) continue;
    bool ok = true;
    for (size_t i = p; i < n && ok; ++i) ok = (seq[i] == seq[i % p]);
    if (ok) return p;
  }
  return n;
}

TEST(LabelSeqTest, BasicAccessors) {
  LabelSeq s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  s.PushBack(3);
  s.PushBack(7);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], 3u);
  EXPECT_EQ(s[1], 7u);
  s.PushFront(9);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 9u);
  EXPECT_EQ(s[1], 3u);
  EXPECT_EQ(s[2], 7u);
}

TEST(LabelSeqTest, EqualityAndOrdering) {
  EXPECT_EQ((LabelSeq{1, 2}), (LabelSeq{1, 2}));
  EXPECT_NE((LabelSeq{1, 2}), (LabelSeq{2, 1}));
  EXPECT_NE((LabelSeq{1}), (LabelSeq{1, 1}));
  EXPECT_LT((LabelSeq{0}), (LabelSeq{1}));
  EXPECT_LT((LabelSeq{1}), (LabelSeq{1, 0}));  // prefix sorts first
  EXPECT_LT((LabelSeq{0, 9}), (LabelSeq{1}));  // lexicographic on content
}

TEST(LabelSeqTest, HashDistinguishesPermutations) {
  EXPECT_NE((LabelSeq{1, 2}).Hash(), (LabelSeq{2, 1}).Hash());
  EXPECT_NE((LabelSeq{1}).Hash(), (LabelSeq{1, 1}).Hash());
}

TEST(LabelSeqTest, ToString) {
  EXPECT_EQ((LabelSeq{1, 0}).ToString(), "(1 0)");
  const std::vector<std::string> names = {"a", "b"};
  EXPECT_EQ((LabelSeq{1, 0}).ToString(names), "(b a)");
  EXPECT_EQ(LabelSeq{}.ToString(), "()");
}

TEST(LabelSeqTest, OverflowChecked) {
  std::vector<Label> too_long(kMaxK + 1, 0);
  EXPECT_THROW(LabelSeq(std::span<const Label>(too_long)), std::invalid_argument);
}

TEST(MinimumRepeatTest, PaperExamples) {
  // MR(knows,worksFor,knows,worksFor) = (knows,worksFor)  [Sec. III-A]
  EXPECT_EQ(MinimumRepeat(L{0, 1, 0, 1}), (L{0, 1}));
  // (knows,knows,knows,knows) and (knows,knows,knows) share MR (knows).
  EXPECT_EQ(MinimumRepeat(L{0, 0, 0, 0}), (L{0}));
  EXPECT_EQ(MinimumRepeat(L{0, 0, 0}), (L{0}));
}

TEST(MinimumRepeatTest, EdgeCases) {
  EXPECT_EQ(MinimumRepeatLength(L{}), 0u);
  EXPECT_EQ(MinimumRepeat(L{5}), (L{5}));
  // Non-dividing period: (a b a) has border "a", period 2, but 3 % 2 != 0,
  // so the MR is the sequence itself.
  EXPECT_EQ(MinimumRepeat(L{0, 1, 0}), (L{0, 1, 0}));
  // (a b a a b a) is (a b a)^2.
  EXPECT_EQ(MinimumRepeat(L{0, 1, 0, 0, 1, 0}), (L{0, 1, 0}));
}

TEST(MinimumRepeatTest, IsPrimitive) {
  EXPECT_FALSE(IsPrimitive(L{}));
  EXPECT_TRUE(IsPrimitive(L{0}));
  EXPECT_FALSE(IsPrimitive(L{0, 0}));
  EXPECT_TRUE(IsPrimitive(L{0, 1}));
  EXPECT_TRUE(IsPrimitive(L{0, 0, 1}));
  EXPECT_FALSE(IsPrimitive(L{0, 1, 0, 1}));
}

TEST(MinimumRepeatTest, MrOfMrIsIdentity) {
  Rng rng(11);
  for (int trial = 0; trial < 2000; ++trial) {
    L seq(1 + rng.Below(12));
    for (auto& l : seq) l = static_cast<Label>(rng.Below(3));
    const L mr = MinimumRepeat(seq);
    EXPECT_EQ(MinimumRepeat(mr), mr) << "MR not idempotent";
    EXPECT_TRUE(IsPrimitive(mr));
  }
}

TEST(MinimumRepeatTest, MatchesBruteForceOnRandomSequences) {
  Rng rng(1234);
  for (int trial = 0; trial < 5000; ++trial) {
    const size_t n = 1 + rng.Below(16);
    const Label alphabet = static_cast<Label>(1 + rng.Below(3));
    L seq(n);
    for (auto& l : seq) l = static_cast<Label>(rng.Below(alphabet));
    EXPECT_EQ(MinimumRepeatLength(seq), BruteForceMrLength(seq))
        << "mismatch on seq of length " << n;
  }
}

TEST(MinimumRepeatTest, SeqVariantAgrees) {
  Rng rng(99);
  for (int trial = 0; trial < 1000; ++trial) {
    LabelSeq seq;
    const uint32_t n = 1 + static_cast<uint32_t>(rng.Below(kMaxK));
    for (uint32_t i = 0; i < n; ++i) {
      seq.PushBack(static_cast<Label>(rng.Below(3)));
    }
    const LabelSeq mr = MinimumRepeatSeq(seq);
    const L expected = MinimumRepeat(seq.labels());
    ASSERT_EQ(mr.size(), expected.size());
    for (uint32_t i = 0; i < mr.size(); ++i) EXPECT_EQ(mr[i], expected[i]);
  }
}

TEST(KernelTest, PaperExample) {
  // (knows,knows,knows,knows) has kernel (knows) and tail ε  [Sec. IV].
  const auto kt = DecomposeKernel(L{0, 0, 0, 0});
  ASSERT_TRUE(kt.has_value());
  EXPECT_EQ(kt->kernel, (L{0}));
  EXPECT_TRUE(kt->tail.empty());
  EXPECT_EQ(kt->repetitions, 4u);
}

TEST(KernelTest, KernelWithTail) {
  // (a b a b a) = (a b)^2 ∘ (a): kernel (a b), tail (a).
  const auto kt = DecomposeKernel(L{0, 1, 0, 1, 0});
  ASSERT_TRUE(kt.has_value());
  EXPECT_EQ(kt->kernel, (L{0, 1}));
  EXPECT_EQ(kt->tail, (L{0}));
  EXPECT_EQ(kt->repetitions, 2u);
}

TEST(KernelTest, NoKernel) {
  EXPECT_FALSE(DecomposeKernel(L{}).has_value());
  EXPECT_FALSE(DecomposeKernel(L{0}).has_value());
  EXPECT_FALSE(DecomposeKernel(L{0, 1}).has_value());
  EXPECT_FALSE(DecomposeKernel(L{0, 1, 1}).has_value());
  // (a b a) is 2-periodic only with non-integer repetitions and the prefix
  // (a b) repeats < 2 full times: no kernel.
  EXPECT_FALSE(DecomposeKernel(L{0, 1, 0}).has_value());
}

TEST(KernelTest, KernelIsPrimitiveAndUnique) {
  // Lemma 2 (uniqueness): verify against brute-force enumeration of all
  // valid (kernel, tail) decompositions on random sequences.
  Rng rng(5);
  for (int trial = 0; trial < 3000; ++trial) {
    const size_t n = 2 + rng.Below(12);
    L seq(n);
    for (auto& l : seq) l = static_cast<Label>(rng.Below(2));
    std::vector<L> kernels;
    for (size_t c = 1; c * 2 <= n; ++c) {
      L prefix(seq.begin(), seq.begin() + static_cast<int64_t>(c));
      if (!IsPrimitive(prefix)) continue;
      bool periodic = true;
      for (size_t j = c; j < n && periodic; ++j) periodic = (seq[j] == seq[j - c]);
      if (periodic) kernels.push_back(prefix);
    }
    EXPECT_LE(kernels.size(), 1u) << "kernel not unique (Lemma 2 violated)";
    const auto kt = DecomposeKernel(seq);
    if (kernels.empty()) {
      EXPECT_FALSE(kt.has_value());
    } else {
      ASSERT_TRUE(kt.has_value());
      EXPECT_EQ(kt->kernel, kernels[0]);
      EXPECT_TRUE(IsPrimitive(kt->kernel));
      EXPECT_GE(kt->repetitions, 2u);
      EXPECT_LT(kt->tail.size(), kt->kernel.size());
      // Tail must be a prefix of the kernel.
      for (size_t i = 0; i < kt->tail.size(); ++i) {
        EXPECT_EQ(kt->tail[i], kt->kernel[i]);
      }
      // Recomposition must reproduce the sequence.
      L recomposed;
      for (uint32_t r = 0; r < kt->repetitions; ++r) {
        recomposed.insert(recomposed.end(), kt->kernel.begin(), kt->kernel.end());
      }
      recomposed.insert(recomposed.end(), kt->tail.begin(), kt->tail.end());
      EXPECT_EQ(recomposed, seq);
    }
  }
}

// Theorem 1 (Case 3) property check: for |p| > 2k, p has a non-empty k-MR
// iff its 2k-prefix has a kernel L' whose tail L'' satisfies
// MR(L'' ∘ rest) = L'.
TEST(KernelTest, TheoremOneCaseThree) {
  Rng rng(17);
  const uint32_t k = 3;
  for (int trial = 0; trial < 3000; ++trial) {
    const size_t n = 2 * k + 1 + rng.Below(6);  // |p| > 2k
    L seq(n);
    for (auto& l : seq) l = static_cast<Label>(rng.Below(2));

    const bool has_kmr = MinimumRepeatLength(seq) <= k;

    const std::span<const Label> prefix(seq.data(), 2 * k);
    const auto kt = DecomposeKernel(prefix);
    bool theorem_says = false;
    if (kt.has_value() && kt->kernel.size() <= k) {
      const std::span<const Label> rest(seq.data() + 2 * k, n - 2 * k);
      const L combined = Concat(kt->tail, rest);
      theorem_says = (MinimumRepeat(combined) == kt->kernel);
    }
    EXPECT_EQ(has_kmr, theorem_says)
        << "Theorem 1 case 3 mismatch at length " << n;
  }
}

TEST(ConcatTest, Basics) {
  EXPECT_EQ(Concat(L{1, 2}, L{3}), (L{1, 2, 3}));
  EXPECT_EQ(Concat(L{}, L{3}), (L{3}));
  EXPECT_EQ(Concat(L{3}, L{}), (L{3}));
  EXPECT_EQ(Concat(L{}, L{}), (L{}));
}

TEST(MrTableTest, InternAndFind) {
  MrTable table;
  EXPECT_EQ(table.size(), 0u);
  const MrId a = table.Intern(LabelSeq{1});
  const MrId b = table.Intern(LabelSeq{1, 2});
  EXPECT_NE(a, b);
  EXPECT_EQ(table.Intern(LabelSeq{1}), a);  // stable
  EXPECT_EQ(table.Find(LabelSeq{1, 2}), b);
  EXPECT_EQ(table.Find(LabelSeq{9}), kInvalidMrId);
  EXPECT_EQ(table.Get(a), (LabelSeq{1}));
  EXPECT_EQ(table.Get(b), (LabelSeq{1, 2}));
  EXPECT_EQ(table.size(), 2u);
  EXPECT_GT(table.MemoryBytes(), 0u);
}

// Parameterized sweep: MR length divides the sequence length, MR is
// primitive, and repetition reconstructs the input — for every length and
// alphabet combination.
class MrPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MrPropertyTest, DivisibilityPrimitivityReconstruction) {
  const auto [len, alphabet] = GetParam();
  Rng rng(static_cast<uint64_t>(len) * 31 + alphabet);
  for (int trial = 0; trial < 400; ++trial) {
    L seq(len);
    for (auto& l : seq) l = static_cast<Label>(rng.Below(alphabet));
    const size_t p = MinimumRepeatLength(seq);
    ASSERT_EQ(static_cast<size_t>(len) % p, 0u);
    EXPECT_TRUE(IsPrimitive(std::span<const Label>(seq.data(), p)));
    for (size_t i = p; i < seq.size(); ++i) EXPECT_EQ(seq[i], seq[i % p]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MrPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 6, 8, 12, 16),
                       ::testing::Values(1, 2, 3, 5)));

}  // namespace
}  // namespace rlc
