// Fraud detection on a synthetic financial-transaction network — the
// application the paper's introduction motivates.
//
// We generate a population of accounts with ordinary transfers plus a small
// number of planted "round-trip" laundering chains whose label sequence is
// (debits credits)(debits credits)... The RLC query
//     (source, sink, (debits credits)+)
// flags exactly the account pairs connected by such a chain. The example
// scans all planted pairs plus a random sample of clean pairs and reports
// detection counts and query throughput.
//
//   $ ./examples/fraud_detection [num_accounts]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "rlc/core/indexer.h"
#include "rlc/graph/digraph.h"
#include "rlc/util/rng.h"
#include "rlc/util/timer.h"

using namespace rlc;

namespace {

constexpr Label kTransfer = 0;  // ordinary wire transfer
constexpr Label kDebits = 1;    // account debited through an intermediary
constexpr Label kCredits = 2;   // intermediary credits the next account

struct PlantedChain {
  VertexId source;
  VertexId sink;
};

}  // namespace

int main(int argc, char** argv) {
  const VertexId accounts = argc > 1
                                ? static_cast<VertexId>(std::atoi(argv[1]))
                                : 20'000;
  Rng rng(7);

  // Background traffic: random transfers between accounts.
  std::vector<Edge> edges;
  const uint64_t background = static_cast<uint64_t>(accounts) * 4;
  for (uint64_t i = 0; i < background; ++i) {
    const auto a = static_cast<VertexId>(rng.Below(accounts));
    const auto b = static_cast<VertexId>(rng.Below(accounts));
    if (a != b) edges.push_back({a, b, kTransfer});
  }

  // Planted laundering chains: source -> E -> A -> E -> ... -> sink with
  // alternating debits/credits through freshly created shell entities.
  std::vector<PlantedChain> planted;
  VertexId next_vertex = accounts;
  const int chains = 40;
  for (int c = 0; c < chains; ++c) {
    const auto source = static_cast<VertexId>(rng.Below(accounts));
    VertexId cur = source;
    const int hops = 2 + static_cast<int>(rng.Below(4));  // 2..5 round trips
    for (int h = 0; h < hops; ++h) {
      const VertexId shell = next_vertex++;    // intermediary entity
      VertexId target;
      do {
        target = static_cast<VertexId>(rng.Below(accounts));
      } while (target == cur);
      edges.push_back({cur, shell, kDebits});
      edges.push_back({shell, target, kCredits});
      cur = target;
    }
    planted.push_back({source, cur});
  }

  const DiGraph g(next_vertex, std::move(edges), 3);
  std::printf("transaction graph: %u accounts+shells, %llu edges\n",
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()));

  Timer build_timer;
  const RlcIndex index = BuildRlcIndex(g, /*k=*/2);
  std::printf("RLC index built in %.2f s (%llu entries)\n",
              build_timer.ElapsedSeconds(),
              static_cast<unsigned long long>(index.NumEntries()));

  const LabelSeq pattern{kDebits, kCredits};

  // Every planted chain must be detected.
  Timer query_timer;
  int detected = 0;
  for (const PlantedChain& chain : planted) {
    detected += index.Query(chain.source, chain.sink, pattern);
  }
  std::printf("planted chains detected: %d / %d\n", detected, chains);

  // Random clean pairs: expect (almost) no hits — a hit here means two
  // accounts are genuinely connected by a laundering-shaped path.
  int false_alarms = 0;
  const int probes = 10'000;
  for (int i = 0; i < probes; ++i) {
    const auto a = static_cast<VertexId>(rng.Below(accounts));
    const auto b = static_cast<VertexId>(rng.Below(accounts));
    false_alarms += index.Query(a, b, pattern);
  }
  const double total_queries = chains + probes;
  std::printf("random pair hits: %d / %d\n", false_alarms, probes);
  std::printf("query throughput: %.0f queries/s\n",
              total_queries / query_timer.ElapsedSeconds());

  return detected == chains ? 0 : 1;
}
