// Social/professional network analytics with recursive label-concatenated
// queries — the second application family of the paper's introduction.
//
// Builds a two-layer network (persons with `knows` friendship edges and
// `worksFor` employment edges towards companies, companies with `partnerOf`
// edges) and answers three analytic questions through one RLC index:
//
//   1. "friend-of-a-friend chains":       (alice, bob, knows+)
//   2. "professional referral chains":    (p, q, (knows worksFor ...)+) --
//      here: who can reach company C through alternating social/employment
//      hops, i.e. (knows worksFor)+?
//   3. "supply-chain reachability":       (c1, c2, partnerOf+)
//
// Also demonstrates the online baseline for comparison and index
// save/load round-tripping through a temp file.
//
//   $ ./examples/social_network [num_persons]

#include <cstdio>
#include <cstdlib>

#include "rlc/baselines/online_search.h"
#include "rlc/core/index_io.h"
#include "rlc/core/indexer.h"
#include "rlc/graph/digraph.h"
#include "rlc/util/rng.h"
#include "rlc/util/timer.h"

using namespace rlc;

namespace {
constexpr Label kKnows = 0;
constexpr Label kWorksFor = 1;
constexpr Label kPartnerOf = 2;
}  // namespace

int main(int argc, char** argv) {
  const VertexId persons =
      argc > 1 ? static_cast<VertexId>(std::atoi(argv[1])) : 30'000;
  const VertexId companies = persons / 50 + 2;
  Rng rng(11);

  std::vector<Edge> edges;
  // Friendship layer: sparse random knows edges.
  for (uint64_t i = 0; i < static_cast<uint64_t>(persons) * 5; ++i) {
    const auto a = static_cast<VertexId>(rng.Below(persons));
    const auto b = static_cast<VertexId>(rng.Below(persons));
    if (a != b) edges.push_back({a, b, kKnows});
  }
  // Employment layer: most persons work somewhere.
  for (VertexId p = 0; p < persons; ++p) {
    if (rng.Bernoulli(0.8)) {
      edges.push_back(
          {p, static_cast<VertexId>(persons + rng.Below(companies)), kWorksFor});
    }
  }
  // Partnership layer among companies.
  for (uint64_t i = 0; i < static_cast<uint64_t>(companies) * 3; ++i) {
    const auto a = static_cast<VertexId>(persons + rng.Below(companies));
    const auto b = static_cast<VertexId>(persons + rng.Below(companies));
    if (a != b) edges.push_back({a, b, kPartnerOf});
  }

  const DiGraph g(persons + companies, std::move(edges), 3);
  std::printf("network: %u persons, %u companies, %llu edges\n", persons,
              companies, static_cast<unsigned long long>(g.num_edges()));

  Timer build_timer;
  const RlcIndex index = BuildRlcIndex(g, /*k=*/2);
  std::printf("index: built in %.2f s, %.2f MB, %llu entries\n",
              build_timer.ElapsedSeconds(),
              static_cast<double>(index.MemoryBytes()) / (1024 * 1024),
              static_cast<unsigned long long>(index.NumEntries()));

  OnlineSearcher online(g);
  Rng qrng(13);

  // Q1/Q2/Q3 samples; cross-check the index against the online baseline.
  struct Shape {
    const char* what;
    LabelSeq seq;
    VertexId lo, hi;  // endpoint ranges (persons or companies)
  };
  const Shape shapes[] = {
      {"friendship chains knows+", LabelSeq{kKnows}, 0, persons},
      {"referral chains (knows worksFor)+", LabelSeq{kKnows, kWorksFor}, 0,
       persons + companies},
      {"supply chains partnerOf+", LabelSeq{kPartnerOf}, persons,
       persons + companies},
  };

  for (const Shape& shape : shapes) {
    int hits = 0, checked = 0, agree = 0;
    Timer index_timer;
    const int probes = 2000;
    for (int i = 0; i < probes; ++i) {
      const auto s =
          static_cast<VertexId>(shape.lo + qrng.Below(shape.hi - shape.lo));
      const auto t =
          static_cast<VertexId>(shape.lo + qrng.Below(shape.hi - shape.lo));
      hits += index.Query(s, t, shape.seq);
    }
    const double index_us = index_timer.ElapsedMicros();

    // Spot-check 100 of them online.
    Rng vrng(13);
    Timer online_timer;
    const CompiledConstraint cc(PathConstraint::RlcPlus(shape.seq),
                                g.num_labels());
    for (int i = 0; i < 100; ++i) {
      const auto s =
          static_cast<VertexId>(shape.lo + vrng.Below(shape.hi - shape.lo));
      const auto t =
          static_cast<VertexId>(shape.lo + vrng.Below(shape.hi - shape.lo));
      const bool idx = index.Query(s, t, shape.seq);
      const bool onl = online.QueryBiBfs(s, t, cc);
      ++checked;
      agree += (idx == onl);
    }
    std::printf(
        "%-36s: %5d/%d true, %.2f us/query indexed, %.0f us/query online, "
        "%d/%d agree\n",
        shape.what, hits, probes, index_us / probes,
        online_timer.ElapsedMicros() / checked, agree, checked);
    if (agree != checked) return 1;
  }

  // Persist and reload the index.
  const std::string path = "/tmp/social_network.rlc";
  SaveIndex(index, path);
  const RlcIndex loaded = LoadIndex(path);
  std::printf("index round-tripped through %s (%llu entries)\n", path.c_str(),
              static_cast<unsigned long long>(loaded.NumEntries()));
  std::remove(path.c_str());
  return 0;
}
