// Quickstart: build the paper's Fig. 1 property graph, construct an RLC
// index with recursive k = 2, and answer the motivating fraud-detection
// queries of Example 1.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "rlc/core/indexer.h"
#include "rlc/graph/paper_graphs.h"

int main() {
  using namespace rlc;

  // 1. A property graph: persons, accounts and money transfers (Fig. 1).
  const DiGraph g = BuildFig1Graph();
  std::printf("graph: |V|=%u |E|=%llu |L|=%u\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()), g.num_labels());

  // 2. Build the RLC index for constraints of up to k=2 concatenated labels.
  const RlcIndex index = BuildRlcIndex(g, /*k=*/2);
  std::printf("index: %llu entries, %llu bytes\n",
              static_cast<unsigned long long>(index.NumEntries()),
              static_cast<unsigned long long>(index.MemoryBytes()));

  // 3. Q1: is there a (debits ∘ credits)+ money trail from A14 to A19?
  const VertexId a14 = *g.FindVertex("A14");
  const VertexId a19 = *g.FindVertex("A19");
  const LabelSeq debits_credits{*g.FindLabel("debits"), *g.FindLabel("credits")};
  const bool q1 = index.Query(a14, a19, debits_credits);
  std::printf("Q1(A14, A19, (debits credits)+) = %s   # expect true\n",
              q1 ? "true" : "false");

  // 4. Q2 from Example 1 needs k=3; build a second index for it.
  const RlcIndex index3 = BuildRlcIndex(g, /*k=*/3);
  const VertexId p10 = *g.FindVertex("P10");
  const VertexId p13 = *g.FindVertex("P13");
  const Label knows = *g.FindLabel("knows");
  const Label works_for = *g.FindLabel("worksFor");
  const bool q2 = index3.Query(p10, p13, LabelSeq{knows, knows, works_for});
  std::printf("Q2(P10, P13, (knows knows worksFor)+) = %s   # expect false\n",
              q2 ? "true" : "false");

  return (q1 && !q2) ? 0 : 1;
}
