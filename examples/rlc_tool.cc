// rlc_tool — command-line interface to the library, the fourth "example":
//
//   rlc_tool build <graph.txt> <index.rlc> [k] [threads]
//       Load a SNAP-style edge list (2 or 3 columns, numeric or named
//       tokens), build the RLC index with recursion bound k (default 2)
//       and save it. threads > 1 uses the hub-batched parallel builder
//       (identical output; 0 = all hardware threads).
//
//   rlc_tool query <graph.txt> <index.rlc> <s> <t> "<constraint>"
//       Load graph + index and answer one query. The constraint uses the
//       textual syntax of PathConstraint::Parse, e.g. "(a b)+", "0+",
//       "(debits credits)+", "a+ b+" (extended queries run the hybrid
//       index+traversal plan).
//
//   rlc_tool stats <graph.txt | store-dir>
//       For a graph file: print Table III-style statistics. For a durable
//       store directory (MANIFEST + snapshots + WALs): print the retained
//       generations with their on-disk sizes, then the newest snapshot's
//       embedded-index summary rendered through the metrics registry
//       (Prometheus text, index.* / store.* gauges).
//
//   rlc_tool inspect <index.rlc>
//       Print size breakdown, entry distribution and MR-length histogram of
//       a saved index.
//
//   rlc_tool recover <graph.txt> <store-dir> [k]
//       Open a durable store directory (MANIFEST + snapshot + WAL files,
//       see docs/durability.md), run crash recovery, and report what was
//       found: the generation loaded, WAL batches replayed, torn bytes
//       dropped, and any fallback to an older generation. A directory with
//       no durable state builds a fresh index (recursion bound k) instead.
//       Either way the store is left checkpointed at a clean generation.
//
//   rlc_tool checkpoint <graph.txt> <store-dir> [k]
//       Open a durable store (recovering if needed) and force an extra
//       checkpoint, folding any replayed WAL tail into a new snapshot
//       generation.
//
// Every command exits nonzero with a one-line error naming the offending
// file when an input cannot be read or parsed.

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "rlc/core/durable_index.h"
#include "rlc/core/index_io.h"
#include "rlc/core/index_stats.h"
#include "rlc/core/indexer.h"
#include "rlc/engines/rlc_hybrid_engine.h"
#include "rlc/graph/edge_list_io.h"
#include "rlc/graph/stats.h"
#include "rlc/obs/metrics.h"
#include "rlc/util/timer.h"

using namespace rlc;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  rlc_tool build <graph.txt> <index.rlc> [k] [threads]\n"
               "  rlc_tool query <graph.txt> <index.rlc> <s> <t> <constraint>\n"
               "  rlc_tool stats <graph.txt | store-dir>\n"
               "  rlc_tool inspect <index.rlc>\n"
               "  rlc_tool recover <graph.txt> <store-dir> [k]\n"
               "  rlc_tool checkpoint <graph.txt> <store-dir> [k]\n");
  return 2;
}

VertexId ResolveVertex(const DiGraph& g, const std::string& token) {
  if (auto v = g.FindVertex(token)) return *v;
  char* end = nullptr;
  const unsigned long v = std::strtoul(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0' || v >= g.num_vertices()) {
    throw std::invalid_argument("unknown vertex '" + token + "'");
  }
  return static_cast<VertexId>(v);
}

int CmdBuild(int argc, char** argv) {
  if (argc < 4) return Usage();
  const uint32_t k = argc > 4 ? static_cast<uint32_t>(std::atoi(argv[4])) : 2;
  long threads = 1;
  if (argc > 5) {
    char* end = nullptr;
    threads = std::strtol(argv[5], &end, 10);
    if (end == argv[5] || *end != '\0' || threads < 0 || threads > 4096) {
      std::fprintf(stderr, "invalid thread count '%s' (want 0..4096, 0 = all)\n",
                   argv[5]);
      return 2;
    }
  }
  Timer load_timer;
  const DiGraph g = LoadEdgeListText(argv[2]);
  std::printf("loaded %s: |V|=%u |E|=%llu |L|=%u (%.2f s)\n", argv[2],
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()),
              g.num_labels(), load_timer.ElapsedSeconds());

  IndexerOptions options;
  options.k = k;
  options.num_threads = static_cast<uint32_t>(threads);
  RlcIndexBuilder builder(g, options);
  const RlcIndex index = builder.Build();
  std::printf("index built: k=%u, %llu entries, %.2f MB, %.2f s\n", k,
              static_cast<unsigned long long>(index.NumEntries()),
              static_cast<double>(index.MemoryBytes()) / (1024 * 1024),
              builder.stats().build_seconds);
  SaveIndex(index, argv[3]);
  std::printf("saved to %s\n", argv[3]);
  return 0;
}

int CmdQuery(int argc, char** argv) {
  if (argc < 7) return Usage();
  const DiGraph g = LoadEdgeListText(argv[2]);
  const RlcIndex index = LoadIndex(argv[3]);
  if (index.num_vertices() != g.num_vertices()) {
    std::fprintf(stderr, "index/graph vertex count mismatch\n");
    return 1;
  }
  const VertexId s = ResolveVertex(g, argv[4]);
  const VertexId t = ResolveVertex(g, argv[5]);
  const PathConstraint constraint = PathConstraint::Parse(argv[6], g);

  RlcHybridEngine engine(g, index);
  Timer timer;
  const bool answer = engine.Evaluate(s, t, constraint);
  std::printf("query (%s, %s, %s) = %s   [%.1f us]\n", argv[4], argv[5],
              constraint.ToString(g).c_str(), answer ? "true" : "false",
              timer.ElapsedMicros());
  return 0;
}

uint64_t FileBytes(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size) : 0;
}

/// `stats` on a durable store directory: manifest + file sizes, then the
/// newest snapshot's index summary published as registry gauges so the
/// output matches what the server's periodic dumps expose.
int StoreStats(const std::string& dir) {
  const DurabilityManifest manifest = ReadManifest(dir);
  if (manifest.generations.empty()) {
    std::printf("%s: no durable generations (empty or fresh store)\n",
                dir.c_str());
    return 0;
  }
  std::printf("store %s: %zu retained generation(s), newest first\n",
              dir.c_str(), manifest.generations.size());
  for (const SnapshotGeneration& gen : manifest.generations) {
    const std::string snap = SnapshotPath(dir, gen.generation);
    const std::string wal = WalPath(dir, gen.generation);
    std::printf("  gen %llu: applied_lsn=%llu snapshot %llu bytes, "
                "wal %llu bytes\n",
                static_cast<unsigned long long>(gen.generation),
                static_cast<unsigned long long>(gen.applied_lsn),
                static_cast<unsigned long long>(FileBytes(snap)),
                static_cast<unsigned long long>(FileBytes(wal)));
  }

  const SnapshotGeneration& newest = manifest.generations.front();
  const LoadedSnapshot snap =
      LoadSnapshotFile(SnapshotPath(dir, newest.generation));
  obs::Registry reg;
  reg.GetGauge("store.generation").Set(static_cast<int64_t>(newest.generation));
  reg.GetGauge("store.applied_lsn").Set(static_cast<int64_t>(snap.applied_lsn));
  reg.GetGauge("store.overlay_inserted")
      .Set(static_cast<int64_t>(snap.inserted.size()));
  reg.GetGauge("store.overlay_removed")
      .Set(static_cast<int64_t>(snap.removed.size()));
  reg.GetGauge("store.wal_bytes")
      .Set(static_cast<int64_t>(FileBytes(WalPath(dir, newest.generation))));
  if (snap.index.has_value()) {
    PublishIndexSummary(Summarize(*snap.index), reg);
  } else {
    std::printf("  (newest snapshot is overlay-only: no embedded index)\n");
  }
  std::printf("%s", reg.Snapshot().ToPrometheusText().c_str());
  return 0;
}

int CmdStats(int argc, char** argv) {
  if (argc < 3) return Usage();
  struct stat st;
  if (::stat(argv[2], &st) == 0 && S_ISDIR(st.st_mode)) {
    return StoreStats(argv[2]);
  }
  const DiGraph g = LoadEdgeListText(argv[2]);
  const GraphStats s = ComputeStats(g, g.num_edges() <= 5'000'000);
  std::printf("|V|=%llu |E|=%llu |L|=%llu loops=%llu triangles=%llu "
              "avg-degree=%.2f max-out=%llu max-in=%llu\n",
              static_cast<unsigned long long>(s.num_vertices),
              static_cast<unsigned long long>(s.num_edges),
              static_cast<unsigned long long>(s.num_labels),
              static_cast<unsigned long long>(s.loop_count),
              static_cast<unsigned long long>(s.triangle_count), s.avg_degree,
              static_cast<unsigned long long>(s.max_out_degree),
              static_cast<unsigned long long>(s.max_in_degree));
  return 0;
}

int CmdInspect(int argc, char** argv) {
  if (argc < 3) return Usage();
  const RlcIndex index = LoadIndex(argv[2]);
  std::printf("%s", Describe(Summarize(index)).c_str());
  return 0;
}

int CmdDurable(int argc, char** argv, bool force_checkpoint) {
  if (argc < 4) return Usage();
  const uint32_t k = argc > 4 ? static_cast<uint32_t>(std::atoi(argv[4])) : 2;
  const DiGraph g = LoadEdgeListText(argv[2]);
  DurabilityOptions opts;
  opts.dir = argv[3];
  DurableDynamicIndex store(g, opts, [&] {
    IndexerOptions options;
    options.k = k;
    options.seal = true;
    return RlcIndexBuilder(g, options).Build();
  });
  const RecoveryInfo& r = store.recovery_info();
  if (r.recovered) {
    std::printf("recovered generation %llu (snapshot lsn %llu): "
                "%llu WAL batches replayed, %llu torn bytes dropped\n",
                static_cast<unsigned long long>(r.generation),
                static_cast<unsigned long long>(r.snapshot_lsn),
                static_cast<unsigned long long>(r.replayed_records),
                static_cast<unsigned long long>(r.dropped_wal_bytes));
    if (r.fell_back) {
      std::printf("fell back past an unusable generation: %s\n",
                  r.fallback_reason.c_str());
    }
  } else {
    std::printf("no durable state in %s: built a fresh index (k=%u)\n",
                argv[3], k);
  }
  if (force_checkpoint) store.Checkpoint();
  std::printf("store at generation %llu, lsn %llu\n",
              static_cast<unsigned long long>(store.generation()),
              static_cast<unsigned long long>(store.last_lsn()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "build") return CmdBuild(argc, argv);
    if (cmd == "query") return CmdQuery(argc, argv);
    if (cmd == "stats") return CmdStats(argc, argv);
    if (cmd == "inspect") return CmdInspect(argc, argv);
    if (cmd == "recover") return CmdDurable(argc, argv, false);
    if (cmd == "checkpoint") return CmdDurable(argc, argv, true);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return Usage();
}
