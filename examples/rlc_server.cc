// rlc_server — drive the sharded serving subsystem from a query log.
//
// Builds a ShardedRlcService over a graph (a real edge-list file or a
// synthetic ER surrogate), replays a query log through the batched API in
// fixed-size chunks, and prints the routing telemetry: how many probes the
// shard indexes answered alone, how many the boundary summary refuted, and
// how many were composed across shards over the boundary skeleton.
//
//   $ ./examples/rlc_server [options]
//     --graph FILE        edge-list text file (default: synthetic ER)
//     --er N M            synthetic ER graph size (default 20000 100000)
//     --labels L          labels for the synthetic graph (default 8, Zipf-2)
//     --log FILE          query log, workload text format "s t l1,l2,.. 0|1"
//                         (default: synthesize --queries probes)
//     --queries N         synthesized log size (default 20000)
//     --save-log FILE     write the synthesized log for reuse
//     --shards S          shard count (default 4)
//     --policy hash|range|range-ordered   partition policy (default hash)
//     --k K               recursion bound (default 2)
//     --batch B           probes per batch (default 4096)
//     --threads T         build threads (default 0 = all)
//     --metrics-every N   dump Prometheus-text metrics every N batches
//                         (default 0 = only the final dump)
//     --metrics-json FILE write the final metrics snapshot as JSON
//
// Metrics come from two registries: the service's own (serve.* routing and
// stage latencies) and the process-global one (rlc.query.*, pool.*). Both
// are dumped; RLC_METRICS=off silences the instrumentation sites.

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include <fstream>

#include "rlc/graph/edge_list_io.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/obs/metrics.h"
#include "rlc/obs/trace.h"
#include "rlc/serve/sharded_service.h"
#include "rlc/util/timer.h"
#include "rlc/workload/query_gen.h"

using namespace rlc;

namespace {

struct Args {
  std::string graph_file;
  VertexId er_n = 20'000;
  uint64_t er_m = 100'000;
  Label labels = 8;
  std::string log_file;
  uint32_t queries = 20'000;
  std::string save_log;
  uint32_t shards = 4;
  PartitionPolicy policy = PartitionPolicy::kHash;
  uint32_t k = 2;
  uint32_t batch = 4096;
  uint32_t threads = 0;
  uint32_t metrics_every = 0;
  std::string metrics_json;
};

// Checked numeric flag parsing: `--shards lots` or a negative count must
// be a usage error, not a silently-zero config (atoi would hand back 0 and
// the service would then fail far from the typo).
bool ParseU64(const char* flag, const char* v, uint64_t max, uint64_t* out) {
  if (v == nullptr || *v == '\0') {
    std::fprintf(stderr, "%s: missing numeric value\n", flag);
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long val = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE || val > max) {
    std::fprintf(stderr, "%s: invalid number '%s' (expected 0..%llu)\n", flag,
                 v, static_cast<unsigned long long>(max));
    return false;
  }
  *out = val;
  return true;
}

bool ParseU32(const char* flag, const char* v, uint32_t* out) {
  uint64_t wide = 0;
  if (!ParseU64(flag, v, std::numeric_limits<uint32_t>::max(), &wide)) {
    return false;
  }
  *out = static_cast<uint32_t>(wide);
  return true;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (flag == "--graph") {
      if (const char* v = next()) args->graph_file = v; else return false;
    } else if (flag == "--er") {
      const char* n = next();
      const char* m = next();
      uint32_t er_n = 0;
      if (!ParseU32("--er N", n, &er_n) ||
          !ParseU64("--er M", m, std::numeric_limits<uint64_t>::max(),
                    &args->er_m)) {
        return false;
      }
      args->er_n = er_n;
    } else if (flag == "--labels") {
      if (!ParseU32("--labels", next(), &args->labels)) return false;
    } else if (flag == "--log") {
      if (const char* v = next()) args->log_file = v; else return false;
    } else if (flag == "--queries") {
      if (!ParseU32("--queries", next(), &args->queries)) return false;
    } else if (flag == "--save-log") {
      if (const char* v = next()) args->save_log = v; else return false;
    } else if (flag == "--shards") {
      if (!ParseU32("--shards", next(), &args->shards)) return false;
    } else if (flag == "--policy") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "hash") == 0) args->policy = PartitionPolicy::kHash;
      else if (std::strcmp(v, "range") == 0) args->policy = PartitionPolicy::kRange;
      else if (std::strcmp(v, "range-ordered") == 0)
        args->policy = PartitionPolicy::kRangeOrdered;
      else return false;
    } else if (flag == "--k") {
      if (!ParseU32("--k", next(), &args->k)) return false;
    } else if (flag == "--batch") {
      if (!ParseU32("--batch", next(), &args->batch)) return false;
    } else if (flag == "--threads") {
      if (!ParseU32("--threads", next(), &args->threads)) return false;
    } else if (flag == "--metrics-every") {
      if (!ParseU32("--metrics-every", next(), &args->metrics_every)) {
        return false;
      }
    } else if (flag == "--metrics-json") {
      if (const char* v = next()) args->metrics_json = v; else return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  if (args->batch == 0) {
    std::fprintf(stderr, "--batch must be >= 1\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(stderr, "usage: see header comment of examples/rlc_server.cc\n");
    return 2;
  }

  // Graph.
  DiGraph g;
  if (!args.graph_file.empty()) {
    std::printf("loading graph from %s\n", args.graph_file.c_str());
    g = LoadEdgeListText(args.graph_file);
  } else {
    Rng rng(7);
    auto edges = ErdosRenyiEdges(args.er_n, args.er_m, rng);
    AssignZipfLabels(&edges, args.labels, 2.0, rng);
    g = DiGraph(args.er_n, std::move(edges), args.labels);
  }
  std::printf("graph: |V|=%u |E|=%llu |L|=%u\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()), g.num_labels());

  // Query log. A malformed log is a hard error: the loader pins the first
  // bad line as path:line and the server refuses to start on it.
  std::vector<RlcQuery> log;
  if (!args.log_file.empty()) {
    Workload w;
    try {
      w = LoadWorkload(args.log_file);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "rlc_server: bad query log: %s\n", e.what());
      return 2;
    }
    log = w.true_queries;
    log.insert(log.end(), w.false_queries.begin(), w.false_queries.end());
    std::printf("loaded %zu probes from %s\n", log.size(), args.log_file.c_str());
  } else {
    WorkloadOptions wopts;
    wopts.count = args.queries / 2;
    wopts.constraint_length = std::min(args.k, 2u);
    wopts.fill_true_with_walks = true;
    Workload w = GenerateWorkload(g, wopts);
    log = w.true_queries;
    log.insert(log.end(), w.false_queries.begin(), w.false_queries.end());
    if (!args.save_log.empty()) {
      SaveWorkload(w, args.save_log);
      std::printf("wrote synthesized log to %s\n", args.save_log.c_str());
    }
    std::printf("synthesized %zu probes\n", log.size());
  }
  // Deterministic shuffle so batches mix true/false probes like real traffic.
  Rng shuffle_rng(17);
  for (size_t i = log.size(); i > 1; --i) {
    std::swap(log[i - 1], log[shuffle_rng.Below(i)]);
  }

  // Service.
  ServiceOptions options;
  options.partition.num_shards = args.shards;
  options.partition.policy = args.policy;
  options.indexer.k = args.k;
  options.build_threads = args.threads;
  Timer build_timer;
  ShardedRlcService service(g, options);
  std::printf("service build: %.2f s (partition %.2fs, indexes %.2fs), "
              "%.2f MB\n",
              build_timer.ElapsedSeconds(), service.stats().partition_seconds,
              service.stats().index_build_seconds,
              static_cast<double>(service.MemoryBytes()) / (1 << 20));
  const GraphPartition& partition = service.partition();
  for (uint32_t s = 0; s < partition.num_shards(); ++s) {
    const ShardInfo& shard = partition.shard(s);
    std::printf("  shard %u: |V|=%u |E|=%llu boundary=%zu entries=%llu\n", s,
                shard.graph.num_vertices(),
                static_cast<unsigned long long>(shard.graph.num_edges()),
                shard.boundary.size(),
                static_cast<unsigned long long>(service.shard_index(s).NumEntries()));
  }
  std::printf("  cross edges: %zu, boundary vertices: %llu\n",
              partition.cross_edges().size(),
              static_cast<unsigned long long>(partition.num_boundary_vertices()));

  // Replay in batches.
  QueryBatch batch;
  uint64_t agree = 0;
  uint64_t served = 0;
  uint64_t batches_run = 0;
  Timer serve_timer;
  for (size_t base = 0; base < log.size(); base += args.batch) {
    batch.ClearProbes();
    const size_t end = std::min(log.size(), base + args.batch);
    for (size_t i = base; i < end; ++i) {
      batch.Add(log[i].s, log[i].t, log[i].constraint);
    }
    const AnswerBatch answers = service.Execute(batch);
    for (size_t i = base; i < end; ++i) {
      agree += (answers.answers[i - base] != 0) == log[i].expected;
    }
    served += end - base;
    ++batches_run;
    if (args.metrics_every > 0 && batches_run % args.metrics_every == 0) {
      std::printf("--- metrics after %llu batches ---\n%s",
                  static_cast<unsigned long long>(batches_run),
                  service.metrics().Snapshot().ToPrometheusText().c_str());
    }
  }
  const double seconds = serve_timer.ElapsedSeconds();

  const ServiceStats& stats = service.stats();
  std::printf("served %llu probes in %.1f ms: %.0f q/s, %.2f us/probe\n",
              static_cast<unsigned long long>(served), seconds * 1e3,
              static_cast<double>(served) / seconds,
              seconds * 1e6 / static_cast<double>(served));
  std::printf("routing: intra-shard true %llu, boundary-refuted %llu, "
              "composed %llu / hops %llu (batches %llu, groups %llu)\n",
              static_cast<unsigned long long>(stats.intra_true),
              static_cast<unsigned long long>(stats.cross_refuted),
              static_cast<unsigned long long>(stats.compose_probes),
              static_cast<unsigned long long>(stats.compose_skeleton_hops),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.batch_groups));
  std::printf("oracle agreement: %llu/%llu\n",
              static_cast<unsigned long long>(agree),
              static_cast<unsigned long long>(served));

  // Final metrics dump: service registry (routing + stage latencies) then
  // the process-global one (query kernel, pools, durability).
  if (obs::Enabled()) {
    std::printf("--- final metrics (service) ---\n%s",
                service.metrics().Snapshot().ToPrometheusText().c_str());
    std::printf("--- final metrics (global) ---\n%s",
                obs::Registry::Global().Snapshot().ToPrometheusText().c_str());
    std::printf("--- recent spans ---\n%s", obs::DumpRecentSpans(16).c_str());
    if (!args.metrics_json.empty()) {
      std::ofstream out(args.metrics_json);
      if (out) {
        out << "{\"service\": " << service.metrics().Snapshot().ToJson()
            << ",\n \"global\": " << obs::Registry::Global().Snapshot().ToJson()
            << "}\n";
        std::printf("wrote metrics JSON to %s\n", args.metrics_json.c_str());
      } else {
        std::fprintf(stderr, "cannot write %s\n", args.metrics_json.c_str());
      }
    }
  }

  // A fresh oracle matches exactly; a stale log (edited graph) may not.
  return agree == served ? 0 : 1;
}
