// Query-log replay — the workload pattern that motivated the RLC index.
//
// The paper observes (via the Wikidata query logs [27]) that recursive
// label-concatenated property paths appear frequently and routinely time
// out in graph engines, and that their recursion bound in practice is
// k <= 2. This example synthesizes such a log — a mix of the paper's four
// query shapes with Zipf-distributed label choices — and replays it three
// ways:
//
//   1. online NFA-guided BiBFS (what an engine without an index does),
//   2. the RLC index alone,
//   3. the RLC index with the plain 2-hop reachability prefilter.
//
// It reports per-shape latency and the break-even point of the one-off
// index build against the online evaluation, i.e. the paper's BEP metric
// on a realistic mixed log — and finally replays the RLC-shaped entries
// (Q1-Q3) through the serving layer's batched API to show what grouping +
// amortized template resolution buy over per-query evaluation.
//
//   $ ./examples/query_log_replay [num_vertices] [num_queries]

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <vector>

#include "rlc/baselines/online_search.h"
#include "rlc/core/indexer.h"
#include "rlc/engines/rlc_hybrid_engine.h"
#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/obs/metrics.h"
#include "rlc/plain/plain_reach_index.h"
#include "rlc/serve/query_batch.h"
#include "rlc/serve/sharded_service.h"
#include "rlc/util/timer.h"
#include "rlc/util/zipf.h"

using namespace rlc;

namespace {

struct LogEntry {
  VertexId s, t;
  PathConstraint constraint;
  int shape;  // 0..3 ~ Q1..Q4
};

// Positional numeric args, checked: garbage must be a usage error, not a
// zero-vertex graph three stack frames later.
bool ParsePositional(const char* name, const char* v, uint32_t min,
                     uint32_t* out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long val = std::strtoull(v, &end, 10);
  if (*v == '\0' || end == v || *end != '\0' || errno == ERANGE ||
      val > std::numeric_limits<uint32_t>::max() || val < min) {
    std::fprintf(stderr,
                 "query_log_replay: %s: invalid value '%s' (expected an "
                 "integer >= %u)\n",
                 name, v, min);
    return false;
  }
  *out = static_cast<uint32_t>(val);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t n = 20'000;
  uint32_t num_queries = 4'000;
  if (argc > 1 && !ParsePositional("num_vertices", argv[1], 2, &n)) return 2;
  if (argc > 2 && !ParsePositional("num_queries", argv[2], 1, &num_queries)) {
    return 2;
  }
  const Label num_labels = 8;

  Rng rng(99);
  auto edges = BarabasiAlbertEdges(n, 4, rng);
  AssignZipfLabels(&edges, num_labels, 2.0, rng);
  const DiGraph g(n, std::move(edges), num_labels);
  std::printf("graph: |V|=%u |E|=%llu |L|=%u\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()), g.num_labels());

  // One k=2 index serves the whole log (Wikidata logs: k <= 2).
  Timer build_timer;
  const RlcIndex index = BuildRlcIndex(g, 2);
  const double build_s = build_timer.ElapsedSeconds();
  const PlainReachIndex plain = PlainReachIndex::Build(g);
  std::printf("index build: %.2f s (%.2f MB), plain 2-hop prefilter: %.2f MB\n",
              build_s, static_cast<double>(index.MemoryBytes()) / (1 << 20),
              static_cast<double>(plain.MemoryBytes()) / (1 << 20));

  // Synthesize the log: shape mix 40% a+, 30% (a b)+, 10% a* (answered as
  // s==t || a+), 20% a+ b+; labels Zipf-weighted like real predicates.
  ZipfSampler label_zipf(num_labels, 2.0);
  std::vector<LogEntry> log;
  log.reserve(static_cast<size_t>(num_queries));
  while (log.size() < static_cast<size_t>(num_queries)) {
    const double r = rng.NextDouble();
    const Label a = static_cast<Label>(label_zipf.Sample(rng));
    Label b = static_cast<Label>(label_zipf.Sample(rng));
    LogEntry e;
    e.s = static_cast<VertexId>(rng.Below(n));
    e.t = static_cast<VertexId>(rng.Below(n));
    if (r < 0.4) {
      e.constraint = PathConstraint::RlcPlus(LabelSeq{a});
      e.shape = 0;
    } else if (r < 0.7) {
      while (b == a) b = static_cast<Label>(label_zipf.Sample(rng));
      e.constraint = PathConstraint::RlcPlus(LabelSeq{a, b});
      e.shape = 1;
    } else if (r < 0.8) {
      e.constraint = PathConstraint::RlcPlus(LabelSeq{a});  // star via plus
      e.shape = 2;
    } else {
      e.constraint = PathConstraint({ConstraintAtom{LabelSeq{a}, true},
                                     ConstraintAtom{LabelSeq{b}, true}});
      e.shape = 3;
    }
    log.push_back(std::move(e));
  }

  // Replay online.
  OnlineSearcher online(g);
  std::vector<bool> online_answers(log.size());
  Timer online_timer;
  for (size_t i = 0; i < log.size(); ++i) {
    const LogEntry& e = log[i];
    bool ans = online.QueryBiBfsOnce(e.s, e.t, e.constraint);
    if (e.shape == 2) ans = ans || (e.s == e.t);  // star semantics
    online_answers[i] = ans;
  }
  const double online_s = online_timer.ElapsedSeconds();

  // Replay through the index (with and without prefilter).
  RlcHybridEngine bare(g, index);
  RlcHybridEngine filtered(g, index, &plain);
  for (const bool use_filter : {false, true}) {
    RlcHybridEngine& engine = use_filter ? filtered : bare;
    Timer timer;
    size_t agree = 0;
    for (size_t i = 0; i < log.size(); ++i) {
      const LogEntry& e = log[i];
      bool ans = engine.Evaluate(e.s, e.t, e.constraint);
      if (e.shape == 2) ans = ans || (e.s == e.t);
      agree += (ans == online_answers[i]);
    }
    const double indexed_s = timer.ElapsedSeconds();
    std::printf(
        "%-22s: %8.1f ms for %u queries (%.2f us/query), agreement %zu/%zu\n",
        use_filter ? "index + 2-hop filter" : "RLC index", indexed_s * 1e3,
        num_queries, indexed_s * 1e6 / num_queries, agree, log.size());
    if (agree != log.size()) return 1;
  }

  // Replay the RLC-shaped entries (Q1-Q3; Q4 needs the hybrid prefix
  // traversal) through the batched API, against the per-query scalar path
  // over exactly the same subset. Templates are interned once up front
  // (the prepared-statement model); the timed batched region includes the
  // per-probe batch assembly a real caller pays.
  QueryBatch batch;
  std::vector<size_t> rlc_entries;
  std::vector<uint32_t> seq_ids;
  for (size_t i = 0; i < log.size(); ++i) {
    if (!log[i].constraint.IsRlc()) continue;
    rlc_entries.push_back(i);
    seq_ids.push_back(batch.InternSequence(log[i].constraint.seq()));
  }
  Timer scalar_timer;
  std::vector<uint8_t> scalar_answers(rlc_entries.size());
  for (size_t j = 0; j < rlc_entries.size(); ++j) {
    const LogEntry& e = log[rlc_entries[j]];
    scalar_answers[j] = index.Query(e.s, e.t, e.constraint.seq()) ? 1 : 0;
  }
  const double scalar_s = scalar_timer.ElapsedSeconds();
  Timer batch_timer;
  for (size_t j = 0; j < rlc_entries.size(); ++j) {
    const LogEntry& e = log[rlc_entries[j]];
    batch.Add(e.s, e.t, seq_ids[j]);
  }
  const AnswerBatch batched = ExecuteBatch(index, batch);
  const double batched_s = batch_timer.ElapsedSeconds();
  size_t batch_agree = 0;
  for (size_t j = 0; j < rlc_entries.size(); ++j) {
    const LogEntry& e = log[rlc_entries[j]];
    bool ans = batched.answers[j] != 0;
    if (e.shape == 2) ans = ans || (e.s == e.t);
    batch_agree += (ans == online_answers[rlc_entries[j]]);
  }
  std::printf(
      "RLC subset (%zu queries, %u templates): scalar %.2f us/query, batched "
      "%.2f us/query (%.2fx), agreement %zu/%zu\n",
      rlc_entries.size(), batch.num_sequences(),
      scalar_s * 1e6 / static_cast<double>(rlc_entries.size()),
      batched_s * 1e6 / static_cast<double>(rlc_entries.size()),
      scalar_s / batched_s, batch_agree, rlc_entries.size());
  // Batched answers must equal the scalar index answers probe for probe.
  if (batched.answers != scalar_answers) return 1;

  // Replay the same subset through the sharded serving layer and export its
  // telemetry: per-shard composed-probe share (which shard sources the
  // cross-shard traffic) and per-stage latency percentiles, written as a
  // metrics JSON document (RLC_METRICS_JSON overrides the output path).
  {
    ServiceOptions sopts;
    sopts.partition.num_shards = 4;
    sopts.indexer.k = 2;
    ShardedRlcService service(g, sopts);
    const AnswerBatch served = service.Execute(batch);
    if (served.answers != scalar_answers) return 1;

    const std::vector<uint64_t> per_shard = service.ShardComposeCounts();
    uint64_t compose_total = 0;
    for (const uint64_t c : per_shard) compose_total += c;
    std::printf("sharded replay (%u shards): %llu composed probes —",
                sopts.partition.num_shards,
                static_cast<unsigned long long>(compose_total));
    for (size_t s = 0; s < per_shard.size(); ++s) {
      std::printf(" shard%zu %.1f%%", s,
                  compose_total == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(per_shard[s]) /
                            static_cast<double>(compose_total));
    }
    std::printf("\n");

    const obs::MetricsSnapshot snap = service.metrics().Snapshot();
    for (const char* stage : {"serve.stage.execute_ns", "serve.stage.route_ns",
                              "serve.stage.shard_kernel_job_ns",
                              "serve.stage.compose_job_ns"}) {
      if (const obs::HistogramSnapshot* h = snap.FindHistogram(stage)) {
        if (h->count == 0) continue;
        std::printf("  %-34s p50 %8llu ns  p95 %8llu ns  p99 %8llu ns\n",
                    stage,
                    static_cast<unsigned long long>(h->Percentile(0.50)),
                    static_cast<unsigned long long>(h->Percentile(0.95)),
                    static_cast<unsigned long long>(h->Percentile(0.99)));
      }
    }

    const char* out_path = std::getenv("RLC_METRICS_JSON");
    const std::string path =
        out_path != nullptr ? out_path : "query_log_replay_metrics.json";
    std::ofstream out(path);
    if (out) {
      out << "{\"service\": " << snap.ToJson() << ",\n \"global\": "
          << obs::Registry::Global().Snapshot().ToJson() << "}\n";
      std::printf("wrote metrics JSON to %s\n", path.c_str());
    }
  }

  const double per_query_gain = (online_s - /*indexed*/ 0.0) / num_queries;
  std::printf("online replay: %.1f ms (%.2f us/query)\n", online_s * 1e3,
              online_s * 1e6 / num_queries);
  std::printf("break-even: index build amortizes after ~%.0f queries\n",
              build_s / per_query_gain);
  return 0;
}
