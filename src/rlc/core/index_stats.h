// Introspection over a built RLC index: size breakdown, entry distribution
// and MR-length histogram. Used by `rlc_tool inspect` and by operators
// deciding whether an index is worth shipping (the paper's index-size
// discussion, Table IV / Fig. 5).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rlc/core/rlc_index.h"
#include "rlc/obs/metrics.h"

namespace rlc {

/// Aggregated statistics of one RLC index.
struct IndexSummary {
  uint64_t num_vertices = 0;
  uint32_t k = 0;
  bool sealed = false;  ///< CSR query layout (rlc_index.h Seal())
  uint64_t total_entries = 0;
  uint64_t out_entries = 0;
  uint64_t in_entries = 0;
  uint64_t memory_bytes = 0;
  uint64_t distinct_mrs = 0;
  uint64_t max_out_list = 0;   ///< largest |Lout(v)|
  uint64_t max_in_list = 0;    ///< largest |Lin(v)|
  double avg_out_list = 0.0;
  double avg_in_list = 0.0;
  uint64_t empty_vertices = 0;  ///< vertices with no entries at all
  /// mr_length_histogram[j] = number of entries whose MR has j+1 labels.
  std::vector<uint64_t> mr_length_histogram;
};

/// Computes the summary in one pass over the index.
inline IndexSummary Summarize(const RlcIndex& index) {
  IndexSummary s;
  s.num_vertices = index.num_vertices();
  s.k = index.k();
  s.sealed = index.sealed();
  s.memory_bytes = index.MemoryBytes();
  s.distinct_mrs = index.mr_table().size();
  s.mr_length_histogram.assign(index.k(), 0);
  for (VertexId v = 0; v < index.num_vertices(); ++v) {
    const auto& out = index.Lout(v);
    const auto& in = index.Lin(v);
    s.out_entries += out.size();
    s.in_entries += in.size();
    s.max_out_list = std::max<uint64_t>(s.max_out_list, out.size());
    s.max_in_list = std::max<uint64_t>(s.max_in_list, in.size());
    s.empty_vertices += (out.empty() && in.empty());
    for (const auto* list : {&out, &in}) {
      for (const IndexEntry& e : *list) {
        const uint32_t len = index.mr_table().Get(e.mr).size();
        RLC_DCHECK(len >= 1 && len <= index.k());
        ++s.mr_length_histogram[len - 1];
      }
    }
  }
  s.total_entries = s.out_entries + s.in_entries;
  if (s.num_vertices > 0) {
    s.avg_out_list = static_cast<double>(s.out_entries) / s.num_vertices;
    s.avg_in_list = static_cast<double>(s.in_entries) / s.num_vertices;
  }
  return s;
}

/// Publishes the summary into a metrics registry as gauges under
/// "<prefix>.": the registry read path (Snapshot/ToJson/ToPrometheusText)
/// then serves index introspection alongside every other metric —
/// `rlc_tool stats` and the server's periodic dumps use this instead of a
/// bespoke formatter.
inline void PublishIndexSummary(const IndexSummary& s, obs::Registry& reg,
                                const std::string& prefix = "index") {
  auto set = [&](const char* name, uint64_t v) {
    reg.GetGauge(prefix + "." + name).Set(static_cast<int64_t>(v));
  };
  set("num_vertices", s.num_vertices);
  set("k", s.k);
  set("sealed", s.sealed ? 1 : 0);
  set("total_entries", s.total_entries);
  set("out_entries", s.out_entries);
  set("in_entries", s.in_entries);
  set("memory_bytes", s.memory_bytes);
  set("distinct_mrs", s.distinct_mrs);
  set("max_out_list", s.max_out_list);
  set("max_in_list", s.max_in_list);
  set("empty_vertices", s.empty_vertices);
  for (uint32_t j = 0; j < s.mr_length_histogram.size(); ++j) {
    set(("entries_mr_len_" + std::to_string(j + 1)).c_str(),
        s.mr_length_histogram[j]);
  }
}

/// Renders the summary as a human-readable multi-line report.
inline std::string Describe(const IndexSummary& s) {
  std::string out;
  char buf[160];
  auto line = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += buf;
    out += '\n';
  };
  line("RLC index: |V|=%llu k=%u layout=%s",
       static_cast<unsigned long long>(s.num_vertices), s.k,
       s.sealed ? "sealed-csr" : "vectors");
  line("entries: %llu total (%llu out, %llu in), %.2f MB",
       static_cast<unsigned long long>(s.total_entries),
       static_cast<unsigned long long>(s.out_entries),
       static_cast<unsigned long long>(s.in_entries),
       static_cast<double>(s.memory_bytes) / (1024.0 * 1024.0));
  line("lists: avg out %.2f / in %.2f, max out %llu / in %llu, %llu empty vertices",
       s.avg_out_list, s.avg_in_list,
       static_cast<unsigned long long>(s.max_out_list),
       static_cast<unsigned long long>(s.max_in_list),
       static_cast<unsigned long long>(s.empty_vertices));
  line("distinct MRs: %llu", static_cast<unsigned long long>(s.distinct_mrs));
  for (uint32_t j = 0; j < s.mr_length_histogram.size(); ++j) {
    line("  entries with |MR| = %u: %llu", j + 1,
         static_cast<unsigned long long>(s.mr_length_histogram[j]));
  }
  return out;
}

}  // namespace rlc
