#include "rlc/core/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "rlc/obs/trace.h"
#include "rlc/util/failpoint.h"

namespace rlc {

namespace {

constexpr size_t kUpdateBytes = 13;  // u32 src, u32 label, u32 dst, u8 op
constexpr size_t kHeaderBytes = 12;  // u32 payload_len, u64 lsn
constexpr size_t kChecksumBytes = 8;
// A record larger than this is corruption, not data: the serving layer
// never logs batches remotely this big, and the cap keeps a corrupt length
// prefix from driving a giant allocation in the reader.
constexpr uint32_t kMaxPayloadBytes = 64u << 20;

uint64_t Fnv1a(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) h = (h ^ p[i]) * 0x100000001B3ULL;
  return h;
}
constexpr uint64_t kFnvSeed = 0xCBF29CE484222325ULL;

void PutU32(std::string& out, uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU64(std::string& out, uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
T LoadLe(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

// The WAL's own fsync, typed: the `wal.fsync` failpoint injects a sync
// failure (error/short_write both read as "fsync returned -1" here), and a
// real fsync failure throws WalSyncError so callers can tell "bytes
// written, durability unknown" apart from a short write.
void WalFsync(int fd) {
  uint32_t delay_ms = 0;
  switch (Failpoints::Instance().Hit(failpoints::kWalFsync, &delay_ms)) {
    case FailpointAction::kOff:
      break;
    case FailpointAction::kCrash:
      _exit(kFailpointCrashStatus);
    case FailpointAction::kDelay:
      if (delay_ms > 0) ::usleep(delay_ms * 1000u);
      break;
    case FailpointAction::kError:
    case FailpointAction::kShortWrite:
      throw WalSyncError(
          "WalWriter::Append: injected fsync failure (failpoint wal.fsync)");
  }
  if (::fsync(fd) != 0) {
    throw WalSyncError(std::string("WalWriter::Append: fsync failed: ") +
                       std::strerror(errno));
  }
}

}  // namespace

WalWriter::~WalWriter() { Close(); }

void WalWriter::Open(const std::string& path) {
  Close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("WalWriter: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  path_ = path;
  bytes_appended_ = 0;
  records_appended_ = 0;
}

void WalWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// Durability-path telemetry (global registry: WAL writers are process
// infrastructure, not per-service instances).
namespace {
struct WalMetrics {
  obs::Histogram& append_ns;
  obs::Histogram& fsync_ns;
  obs::Counter& append_bytes;
  obs::Counter& appends;
  static WalMetrics& Get() {
    obs::Registry& reg = obs::Registry::Global();
    static WalMetrics m{reg.GetHistogram("wal.append_ns"),
                        reg.GetHistogram("wal.fsync_ns"),
                        reg.GetCounter("wal.append_bytes"),
                        reg.GetCounter("wal.appends")};
    return m;
  }
};
}  // namespace

void WalWriter::Append(uint64_t lsn, std::span<const EdgeUpdate> updates) {
  RLC_CHECK_MSG(fd_ >= 0, "WalWriter::Append: log not open");
  const bool metrics_on = obs::Enabled();
  const uint64_t append_t0 = metrics_on ? obs::NowNanos() : 0;
  std::string buf;
  buf.reserve(kHeaderBytes + updates.size() * kUpdateBytes + kChecksumBytes);
  PutU32(buf, static_cast<uint32_t>(updates.size() * kUpdateBytes));
  PutU64(buf, lsn);
  for (const EdgeUpdate& e : updates) {
    PutU32(buf, e.src);
    PutU32(buf, e.label);
    PutU32(buf, e.dst);
    buf.push_back(static_cast<char>(e.op));
  }
  const uint64_t checksum =
      Fnv1a(kFnvSeed, buf.data() + 4, buf.size() - 4);  // lsn + payload
  PutU64(buf, checksum);

  FailpointHit(failpoints::kWalAppendBeforeWrite);
  const off_t start = ::lseek(fd_, 0, SEEK_END);
  try {
    FailpointWrite(fd_, buf.data(), buf.size(), "WalWriter::Append");
    FailpointHit(failpoints::kWalAppendAfterWrite);
    if (metrics_on) {
      WalMetrics& m = WalMetrics::Get();
      const uint64_t sync_t0 = obs::NowNanos();
      WalFsync(fd_);
      const uint64_t done = obs::NowNanos();
      m.fsync_ns.Record(done - sync_t0);
      obs::SpanRing::Global().Record("wal.fsync", sync_t0, done - sync_t0);
    } else {
      WalFsync(fd_);
    }
    FailpointHit(failpoints::kWalAppendAfterSync);
  } catch (...) {
    // A partial record would poison every later append: the reader stops at
    // the first bad record, so acknowledged records written after it would
    // be dropped on recovery. Roll back to the record boundary; if even
    // that fails, close the log rather than append over a torn tail.
    if (start < 0 || ::ftruncate(fd_, start) != 0) Close();
    throw;
  }
  bytes_appended_ += buf.size();
  ++records_appended_;
  if (metrics_on) {
    WalMetrics& m = WalMetrics::Get();
    m.append_ns.Record(obs::NowNanos() - append_t0);
    m.append_bytes.Add(buf.size());
    m.appends.Inc();
  }
}

WalReadResult ReadWalFile(const std::string& path) {
  WalReadResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0 && errno == ENOENT) return result;
    throw std::runtime_error("ReadWalFile: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    throw std::runtime_error("ReadWalFile: read error on " + path);
  }

  size_t pos = 0;
  uint64_t prev_lsn = 0;
  while (pos + kHeaderBytes + kChecksumBytes <= bytes.size()) {
    const uint32_t payload_len = LoadLe<uint32_t>(bytes.data() + pos);
    const uint64_t lsn = LoadLe<uint64_t>(bytes.data() + pos + 4);
    // A bad length, a non-increasing lsn or a checksum mismatch all mean
    // the bytes from here on cannot be trusted; stop at the last good
    // record (the durable prefix).
    if (payload_len % kUpdateBytes != 0 || payload_len > kMaxPayloadBytes) break;
    const size_t record_bytes = kHeaderBytes + payload_len + kChecksumBytes;
    if (pos + record_bytes > bytes.size()) break;  // torn tail
    if (!result.records.empty() && lsn <= prev_lsn) break;
    const uint64_t want =
        Fnv1a(kFnvSeed, bytes.data() + pos + 4, 8 + payload_len);
    const uint64_t got =
        LoadLe<uint64_t>(bytes.data() + pos + kHeaderBytes + payload_len);
    if (want != got) break;

    WalRecord record;
    record.lsn = lsn;
    const char* p = bytes.data() + pos + kHeaderBytes;
    record.updates.resize(payload_len / kUpdateBytes);
    for (EdgeUpdate& e : record.updates) {
      e.src = LoadLe<uint32_t>(p);
      e.label = LoadLe<uint32_t>(p + 4);
      e.dst = LoadLe<uint32_t>(p + 8);
      const unsigned char op = static_cast<unsigned char>(p[12]);
      if (op > static_cast<unsigned char>(EdgeOp::kDelete)) {
        // In-range checksum collision feeding a bogus op: treat the record
        // as corrupt rather than inventing a mutation kind.
        record.updates.clear();
        break;
      }
      e.op = static_cast<EdgeOp>(op);
      p += kUpdateBytes;
    }
    if (payload_len != 0 && record.updates.empty()) break;
    prev_lsn = lsn;
    result.records.push_back(std::move(record));
    pos += record_bytes;
  }
  result.valid_bytes = pos;
  result.dropped_bytes = bytes.size() - pos;
  return result;
}

}  // namespace rlc
