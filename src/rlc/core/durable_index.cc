#include "rlc/core/durable_index.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "rlc/obs/trace.h"
#include "rlc/util/failpoint.h"

namespace fs = std::filesystem;

namespace rlc {

namespace {

constexpr uint64_t kSnapshotMagic = 0x524C43534E4150ULL;  // "RLCSNAP"
constexpr uint32_t kSnapshotVersion = 1;
constexpr size_t kUpdateBytes = 13;  // u32 src, u32 label, u32 dst, u8 op

constexpr uint64_t kFnvSeed = 0xCBF29CE484222325ULL;
uint64_t Fnv1a(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) h = (h ^ p[i]) * 0x100000001B3ULL;
  return h;
}

template <typename T>
void Put(std::string& out, T v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutUpdates(std::string& out, std::span<const EdgeUpdate> updates) {
  Put<uint64_t>(out, updates.size());
  for (const EdgeUpdate& e : updates) {
    Put<uint32_t>(out, e.src);
    Put<uint32_t>(out, e.label);
    Put<uint32_t>(out, e.dst);
    out.push_back(static_cast<char>(e.op));
  }
}

/// Checksummed sequential reader over a snapshot file: every byte read
/// through it feeds `body`, the region the trailing checksum covers.
class SnapReader {
 public:
  SnapReader(std::ifstream& in, const std::string& path)
      : in_(in), path_(path) {}

  template <typename T>
  T Get(bool checksummed = true) {
    char buf[sizeof(T)];
    ReadRaw(buf, sizeof(T), checksummed);
    T v;
    std::memcpy(&v, buf, sizeof(T));
    return v;
  }

  void ReadRaw(char* dst, size_t n, bool checksummed = true) {
    in_.read(dst, static_cast<std::streamsize>(n));
    if (!in_) Fail("truncated file");
    if (checksummed) body_.append(dst, n);
  }

  uint64_t Remaining() {
    const std::istream::pos_type pos = in_.tellg();
    if (pos == std::istream::pos_type(-1)) return UINT64_MAX;
    in_.seekg(0, std::ios::end);
    const std::istream::pos_type end = in_.tellg();
    in_.seekg(pos);
    if (end == std::istream::pos_type(-1) || end < pos) return UINT64_MAX;
    return static_cast<uint64_t>(end - pos);
  }

  [[noreturn]] void Fail(const std::string& what) const {
    throw std::runtime_error("LoadSnapshotFile(" + path_ + "): " + what);
  }

  uint64_t BodyChecksum() const {
    return Fnv1a(kFnvSeed, body_.data(), body_.size());
  }

 private:
  std::ifstream& in_;
  const std::string& path_;
  std::string body_;
};

std::vector<EdgeUpdate> GetUpdates(SnapReader& r, const char* what) {
  const uint64_t count = r.Get<uint64_t>();
  if (count > r.Remaining() / kUpdateBytes) {
    r.Fail(std::string(what) + " count " + std::to_string(count) +
           " exceeds the bytes left in the file");
  }
  std::vector<EdgeUpdate> updates(count);
  for (EdgeUpdate& e : updates) {
    char buf[kUpdateBytes];
    r.ReadRaw(buf, kUpdateBytes);
    std::memcpy(&e.src, buf, 4);
    std::memcpy(&e.label, buf + 4, 4);
    std::memcpy(&e.dst, buf + 8, 4);
    const auto op = static_cast<unsigned char>(buf[12]);
    if (op > static_cast<unsigned char>(EdgeOp::kDelete)) {
      r.Fail(std::string("bad op byte in ") + what + " list");
    }
    e.op = static_cast<EdgeOp>(op);
  }
  return updates;
}

}  // namespace

std::vector<uint64_t> ListGenerationFiles(const std::string& dir,
                                          const std::string& prefix,
                                          const std::string& suffix) {
  std::vector<uint64_t> gens;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() + suffix.size() ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    char* end = nullptr;
    const uint64_t gen = std::strtoull(digits.c_str(), &end, 10);
    if (digits.empty() || *end != '\0' || gen == 0) continue;
    gens.push_back(gen);
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

std::string SnapshotPath(const std::string& dir, uint64_t gen) {
  return dir + "/snapshot-" + std::to_string(gen) + ".snap";
}

std::string WalPath(const std::string& dir, uint64_t gen) {
  return dir + "/wal-" + std::to_string(gen) + ".log";
}

void WriteSnapshotFile(const std::string& path, uint64_t applied_lsn,
                       std::span<const EdgeUpdate> inserted,
                       std::span<const EdgeUpdate> removed,
                       const RlcIndex* index) {
  static obs::Histogram& write_ns =
      obs::Registry::Global().GetHistogram("snap.write_ns");
  obs::ScopedSpan span(write_ns, "snap.write");
  std::string body;
  Put<uint32_t>(body, kSnapshotVersion);
  Put<uint64_t>(body, applied_lsn);
  PutUpdates(body, inserted);
  PutUpdates(body, removed);

  std::string file;
  file.reserve(body.size() + 32);
  Put<uint64_t>(file, kSnapshotMagic);
  file += body;
  Put<uint64_t>(file, Fnv1a(kFnvSeed, body.data(), body.size()));
  file.push_back(index ? 1 : 0);
  if (index) {
    std::ostringstream os(std::ios::binary);
    WriteIndex(*index, os);
    const std::string index_bytes = std::move(os).str();
    // The index format only checksums its signature section; cover every
    // index byte here so a flipped CSR entry is detected, not served.
    Put<uint64_t>(file, index_bytes.size());
    Put<uint64_t>(file, Fnv1a(kFnvSeed, index_bytes.data(), index_bytes.size()));
    file += index_bytes;
  }
  AtomicWriteFile(path, file, "index_io.save");
}

LoadedSnapshot LoadSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("LoadSnapshotFile: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  SnapReader r(in, path);
  if (r.Get<uint64_t>(/*checksummed=*/false) != kSnapshotMagic) {
    r.Fail("bad magic (not an rlc snapshot file)");
  }
  const uint32_t version = r.Get<uint32_t>();
  if (version != kSnapshotVersion) {
    r.Fail("unsupported snapshot version " + std::to_string(version));
  }
  LoadedSnapshot snap;
  snap.applied_lsn = r.Get<uint64_t>();
  snap.inserted = GetUpdates(r, "inserted");
  snap.removed = GetUpdates(r, "removed");
  const uint64_t checksum = r.BodyChecksum();
  if (r.Get<uint64_t>(/*checksummed=*/false) != checksum) {
    r.Fail("overlay checksum mismatch");
  }
  const auto has_index = r.Get<uint8_t>(/*checksummed=*/false);
  if (has_index > 1) r.Fail("bad has_index byte");
  if (has_index == 1) {
    const uint64_t index_len = r.Get<uint64_t>(/*checksummed=*/false);
    const uint64_t want = r.Get<uint64_t>(/*checksummed=*/false);
    if (index_len != r.Remaining()) {
      r.Fail("index length " + std::to_string(index_len) +
             " does not match the bytes left in the file");
    }
    std::string index_bytes(index_len, '\0');
    r.ReadRaw(index_bytes.data(), index_len, /*checksummed=*/false);
    if (Fnv1a(kFnvSeed, index_bytes.data(), index_bytes.size()) != want) {
      r.Fail("embedded index checksum mismatch");
    }
    std::istringstream is(std::move(index_bytes), std::ios::binary);
    snap.index = ReadIndex(is, path);
  }
  return snap;
}

DurableDynamicIndex::DurableDynamicIndex(
    const DiGraph& g, DurabilityOptions opts,
    const std::function<RlcIndex()>& build_base, ResealPolicy policy)
    : g_(g), opts_(std::move(opts)) {
  RLC_REQUIRE(!opts_.dir.empty(), "DurableDynamicIndex: opts.dir must be set");
  std::error_code ec;
  fs::create_directories(opts_.dir, ec);
  if (ec) {
    throw std::runtime_error("DurableDynamicIndex: cannot create " +
                             opts_.dir + ": " + ec.message());
  }
  Recover(build_base, policy);
  if (recovery_.recovered) ReplayWalTail(recovery_.generation);
  // End every open at a clean generation boundary: the replayed state gets
  // its own snapshot and a fresh WAL.
  Checkpoint();
  // Files whose generation the committed manifest no longer lists are
  // leftovers of interrupted checkpoints/cleanups.
  auto in_manifest = [&](uint64_t gen) {
    for (const SnapshotGeneration& mg : manifest_.generations) {
      if (mg.generation == gen) return true;
    }
    return false;
  };
  for (const uint64_t gen : ListGenerationFiles(opts_.dir, "snapshot-", ".snap")) {
    if (!in_manifest(gen)) fs::remove(SnapshotPath(opts_.dir, gen), ec);
  }
  for (const uint64_t gen : ListGenerationFiles(opts_.dir, "wal-", ".log")) {
    if (!in_manifest(gen)) fs::remove(WalPath(opts_.dir, gen), ec);
  }
}

DurableDynamicIndex::~DurableDynamicIndex() = default;

void DurableDynamicIndex::Recover(const std::function<RlcIndex()>& build_base,
                                  const ResealPolicy& policy) {
  bool manifest_corrupt = false;
  try {
    manifest_ = ReadManifest(opts_.dir);
  } catch (const std::exception& e) {
    // Degrade to a directory scan: the snapshots carry their own
    // applied_lsn, the manifest is only the generation list.
    manifest_corrupt = true;
    recovery_.fallback_reason = e.what();
    const std::vector<uint64_t> gens =
        ListGenerationFiles(opts_.dir, "snapshot-", ".snap");
    for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
      manifest_.generations.push_back({*it, 0});
    }
  }
  for (const SnapshotGeneration& g : manifest_.generations) {
    max_gen_seen_ = std::max(max_gen_seen_, g.generation);
  }
  for (const uint64_t gen : ListGenerationFiles(opts_.dir, "snapshot-", ".snap")) {
    max_gen_seen_ = std::max(max_gen_seen_, gen);
  }
  for (const uint64_t gen : ListGenerationFiles(opts_.dir, "wal-", ".log")) {
    max_gen_seen_ = std::max(max_gen_seen_, gen);
  }

  if (manifest_.generations.empty()) {
    dyn_ = std::make_unique<DynamicRlcIndex>(g_, build_base(), policy);
    return;
  }

  std::string first_error = recovery_.fallback_reason;
  for (size_t i = 0; i < manifest_.generations.size(); ++i) {
    const uint64_t gen = manifest_.generations[i].generation;
    try {
      LoadedSnapshot snap = LoadSnapshotFile(SnapshotPath(opts_.dir, gen));
      if (!snap.index) {
        throw std::runtime_error(SnapshotPath(opts_.dir, gen) +
                                 " has no embedded index");
      }
      auto dyn =
          std::make_unique<DynamicRlcIndex>(g_, std::move(*snap.index), policy);
      dyn->RestoreOverlay(snap.inserted, snap.removed);
      dyn_ = std::move(dyn);
      last_lsn_ = snap.applied_lsn;
      recovery_.recovered = true;
      recovery_.generation = gen;
      recovery_.snapshot_lsn = snap.applied_lsn;
      recovery_.fell_back = i > 0 || manifest_corrupt;
      return;
    } catch (const std::exception& e) {
      if (first_error.empty()) first_error = e.what();
      recovery_.fell_back = true;
      if (recovery_.fallback_reason.empty()) recovery_.fallback_reason = e.what();
    }
  }
  // Durable generations exist but none is loadable: rebuilding an empty
  // store over them would silently discard acknowledged data.
  throw std::runtime_error(
      "DurableDynamicIndex: no usable snapshot generation in " + opts_.dir +
      " (" + first_error + ")");
}

void DurableDynamicIndex::ReplayWalTail(uint64_t from_gen) {
  for (const uint64_t gen : ListGenerationFiles(opts_.dir, "wal-", ".log")) {
    if (gen < from_gen) continue;
    const WalReadResult res = ReadWalFile(WalPath(opts_.dir, gen));
    recovery_.dropped_wal_bytes += res.dropped_bytes;
    for (const WalRecord& record : res.records) {
      if (record.lsn <= last_lsn_) continue;  // already in the snapshot
      dyn_->ApplyUpdates(record.updates);
      last_lsn_ = record.lsn;
      ++recovery_.replayed_records;
    }
  }
}

size_t DurableDynamicIndex::ApplyUpdates(std::span<const EdgeUpdate> updates) {
  if (updates.empty()) return 0;
  // Log-then-apply: a throw here leaves the in-memory index untouched and
  // the batch unacknowledged (its torn record, if any, fails the checksum).
  wal_.Append(last_lsn_ + 1, updates);
  ++last_lsn_;
  const size_t applied = dyn_->ApplyUpdates(updates);
  if (opts_.checkpoint_wal_bytes > 0 &&
      wal_.bytes_appended() >= opts_.checkpoint_wal_bytes) {
    Checkpoint();
  }
  return applied;
}

void DurableDynamicIndex::Checkpoint() {
  const uint64_t next = std::max(generation_, max_gen_seen_) + 1;
  WriteSnapshotFile(SnapshotPath(opts_.dir, next), last_lsn_,
                    dyn_->inserted_edges(), dyn_->removed_edges(),
                    &dyn_->index());
  // Switch the WAL before the commit: batches acknowledged from here land
  // in wal-<next>. If the commit below never happens, recovery targets the
  // previous generation and still finds them — replay walks every WAL file
  // at or above the recovered generation, LSN-gated.
  const std::string previous_wal = wal_.path();
  try {
    wal_.Open(WalPath(opts_.dir, next));
  } catch (...) {
    if (!previous_wal.empty()) wal_.Open(previous_wal);
    throw;
  }
  DurabilityManifest m;
  m.generations.push_back({next, last_lsn_});
  const uint32_t keep = std::max<uint32_t>(1, opts_.keep_generations);
  for (const SnapshotGeneration& g : manifest_.generations) {
    if (m.generations.size() >= keep) break;
    m.generations.push_back(g);
  }
  CommitManifest(opts_.dir, m);  // the durability point
  FailpointHit(failpoints::kCheckpointAfterCommit);
  std::error_code ec;
  for (const SnapshotGeneration& g : manifest_.generations) {
    bool kept = false;
    for (const SnapshotGeneration& k : m.generations) {
      kept = kept || k.generation == g.generation;
    }
    if (!kept) {
      fs::remove(SnapshotPath(opts_.dir, g.generation), ec);
      fs::remove(WalPath(opts_.dir, g.generation), ec);
    }
  }
  manifest_ = std::move(m);
  generation_ = next;
  max_gen_seen_ = std::max(max_gen_seen_, next);
}

}  // namespace rlc
