// The RLC index (paper Definition 4) and its query algorithm (Algorithm 1).
//
// For every vertex v the index stores two entry lists:
//
//   Lout(v) = {(u, L) : v ⇝ u and L ∈ Sk(v,u)}   ("v reaches hub u")
//   Lin(v)  = {(u, L) : u ⇝ v and L ∈ Sk(u,v)}   ("hub u reaches v")
//
// where Sk is the concise set of k-bounded minimum repeats (Definition 2).
// Hubs are identified by their *access id* (position in the IN-OUT vertex
// ordering); entries are appended in increasing access id as the indexing
// algorithm processes hubs in that order, so both lists stay sorted and the
// query is a sort-free merge join exactly as the paper describes.
//
// A query (s,t,L+) with |L| <= k and L primitive is answered true iff
//   Case 2: (t,L) ∈ Lout(s) or (s,L) ∈ Lin(t), or
//   Case 1: ∃ hub x with (x,L) ∈ Lout(s) and (x,L) ∈ Lin(t).
//
// Storage has two phases. During construction entries live in per-vertex
// vectors (cheap appends). Seal() then flattens both sides into CSR form —
// one offset array plus one contiguous IndexEntry buffer per side — which
// removes a pointer chase per query, halves allocator metadata, and enables
// the memcpy'd v2 serialization format (index_io.h). Queries work in either
// phase; mutation is only allowed before sealing.
//
// Sealing additionally computes one 64-bit *signature* per (vertex, side):
// a hub-id Bloom filter (bits 0-31), a label presence mask (bits 32-47) and
// an MR-id Bloom filter (bits 48-63) folded over the side's entry list. A
// query first ANDs the signatures of Lout(s) and Lin(t) against the bits
// its MR requires; most negative probes are refuted by those two loads
// alone, before any entry list is touched. Signatures are conservative
// (never a false negative), so answers are bit-identical with them on or
// off. They persist in the v3 file format and are rebuilt on load when
// absent (v1/v2 files).
//
// A sealed index additionally accepts a *delta overlay* (incremental
// edge-insert maintenance, dynamic_index.h): AddDeltaOut/AddDeltaIn append
// entries to small sorted per-vertex delta lists that every query path
// merges with the CSR buffers on the fly. Each delta append widens the
// owning vertex's signature conservatively (OR of the entry's bits), so
// signature refutation stays sound; a later MergeDeltas() folds the deltas
// into the CSR arrays and recomputes the exact (narrow) signatures.
// Pending deltas persist in the v4 file format (index_io.h).
//
// The dual overlay handles edge *deletions*: a *tombstone* marks one CSR
// entry as logically absent (SuppressOut/SuppressIn; entries still living
// in the mutable delta lists are simply erased). Every query path skips
// tombstoned entries, so answers equal those of an index that never held
// them; vertex signatures are left conservatively wide (a tombstone can
// only make a probe fall through to the entry lists, never flip an
// answer). MergeDeltas() folds tombstones out of the CSR arrays together
// with the deltas and re-narrows the signatures. Pending tombstones
// persist in the v5 file format (index_io.h).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rlc/core/label_seq.h"
#include "rlc/core/mr_table.h"
#include "rlc/graph/types.h"

namespace rlc {

/// One index entry: 8 bytes. `hub_aid` is the hub's access id; `mr` the
/// interned minimum repeat.
struct IndexEntry {
  uint32_t hub_aid;
  MrId mr;

  friend bool operator==(const IndexEntry&, const IndexEntry&) = default;
};

static_assert(sizeof(IndexEntry) == 8, "IndexEntry must stay 8 bytes (v2 io)");

/// One (source, target) probe of a batched query group (query_batch.h).
struct VertexPair {
  VertexId s;
  VertexId t;
};

/// Per-group kernel telemetry filled by the counted QueryGroupInterned
/// overload. Fields accumulate (+=), so one struct can aggregate several
/// groups or jobs before being flushed to a metrics registry in bulk.
struct GroupQueryStats {
  uint64_t probes = 0;       ///< probes executed
  uint64_t sig_refuted = 0;  ///< refuted by the two signature loads alone
  uint64_t hits = 0;         ///< probes answered true
};

/// The RLC reachability index for one graph and one recursive bound k.
///
/// Instances are produced by RlcIndexBuilder (indexer.h) or loaded from disk
/// (index_io.h); the mutation API (AddOut/AddIn/...) is public for those
/// components and for tests but not intended for end users.
class RlcIndex {
 public:
  /// An empty index for `num_vertices` vertices and recursion bound `k`.
  RlcIndex(VertexId num_vertices, uint32_t k)
      : k_(k), out_(num_vertices), in_(num_vertices), aid_(num_vertices, 0) {
    RLC_REQUIRE(k >= 1 && k <= kMaxK, "RlcIndex: k must be in [1," << kMaxK << "]");
  }

  uint32_t k() const { return k_; }
  VertexId num_vertices() const { return static_cast<VertexId>(aid_.size()); }

  /// \name Query interface
  ///@{

  /// Answers the RLC query (s, t, L+), paper Algorithm 1.
  ///
  /// \throws std::invalid_argument when s/t are out of range, L is empty or
  ///         not primitive (L != MR(L); such constraints add a path-length
  ///         side condition the paper scopes out), or |L| > k.
  bool Query(VertexId s, VertexId t, const LabelSeq& constraint) const;

  /// Answers the Kleene-star variant (s, t, L*): true iff s == t or the
  /// plus-query holds (paper §III-B).
  bool QueryStar(VertexId s, VertexId t, const LabelSeq& constraint) const;

  /// Hot-path query on a pre-interned MR id; no argument validation.
  /// kInvalidMrId never matches (such an MR was recorded nowhere).
  bool QueryInterned(VertexId s, VertexId t, MrId mr) const;

  /// Interns-or-looks-up a query constraint. Returns kInvalidMrId when the
  /// MR was never recorded (the query is then necessarily false).
  MrId FindMr(const LabelSeq& seq) const { return mrs_.Find(seq); }

  /// Answers a group of probes that share one pre-interned MR — the
  /// batch-execution primitive behind the serving layer's QueryBatch. On a
  /// sealed index the probes are software-pipelined over the CSR layout:
  /// the offset and entry cache lines of upcoming probes are prefetched
  /// while the current probe's merge join runs, which hides most of the
  /// memory latency that dominates cache-cold random probes. Answers are
  /// identical to calling QueryInterned per probe, in any layout.
  ///
  /// Like QueryInterned this performs no argument validation: every probe
  /// vertex must be in range. `answers` must have probes.size() slots;
  /// slot i is set to 1 when probe i is reachable, else 0.
  void QueryGroupInterned(MrId mr, std::span<const VertexPair> probes,
                          std::span<uint8_t> answers) const;

  /// Counted variant: identical answers, but additionally accumulates
  /// probe/signature-refute/hit counts into `stats` (nullptr degrades to
  /// the uncounted kernel). The counts live in locals inside the probe
  /// loop and flush once at the end, so the overhead is a couple of
  /// register increments per probe — cheap enough for an always-on
  /// metrics build, but batch executors still gate it on obs::Enabled().
  void QueryGroupInterned(MrId mr, std::span<const VertexPair> probes,
                          std::span<uint8_t> answers,
                          GroupQueryStats* stats) const;

  /// Validates an RLC query constraint against recursion bound `k`: it must
  /// be non-empty, at most k labels long, and primitive (L == MR(L)).
  /// Factored out of Query so batched callers can validate each distinct
  /// constraint once instead of per probe.
  /// \throws std::invalid_argument on violation.
  static void ValidateConstraint(const LabelSeq& constraint, uint32_t k);
  ///@}

  /// \name Vertex signatures (sealed-time query prefilter)
  ///@{

  /// Toggles the signature prefilter on the query path (default on).
  /// Answers are identical either way — the toggle exists so benchmarks can
  /// attribute the win (bench_query_kernel signatures on/off sweeps).
  void set_use_signatures(bool on) { use_signatures_ = on; }
  bool use_signatures() const { return use_signatures_; }

  /// Signature of Lout(v) / Lin(v): the stored array when sealed, computed
  /// on the fly otherwise (index_io uses this to write identical bytes for
  /// sealed and unsealed indexes).
  uint64_t OutSignature(VertexId v) const {
    return out_sigs_.empty() ? ListSignature(Lout(v)) : out_sigs_[v];
  }
  uint64_t InSignature(VertexId v) const {
    return in_sigs_.empty() ? ListSignature(Lin(v)) : in_sigs_[v];
  }

  /// The label-mask part of the bits a query for a constraint requires on a
  /// side — computable from a raw constraint without interning it, which
  /// lets callers refute before even hashing the sequence (FindMr /
  /// MrCache::Get). A side whose signature lacks any of these bits provably
  /// contains no entry whose MR uses exactly these labels.
  static uint64_t LabelSignature(std::span<const Label> labels);

  /// Signature-only refutation for a pure RLC query (s, t, labels): true
  /// when neither Lout(s) nor Lin(t) can contain an entry whose MR uses
  /// exactly `labels`, which refutes all three query cases. Never refutes
  /// on an unsealed index or with signatures disabled.
  bool RefutedBySignature(VertexId s, VertexId t,
                          std::span<const Label> labels) const {
    if (out_sigs_.empty() || !use_signatures_) return false;
    const uint64_t needed = LabelSignature(labels);
    return (out_sigs_[s] & needed) != needed &&
           (in_sigs_[t] & needed) != needed;
  }
  ///@}

  /// \name Builder interface
  ///@{
  void SetAccessOrder(std::vector<VertexId> order_to_vertex);
  void AddOut(VertexId v, uint32_t hub_aid, MrId mr);
  void AddIn(VertexId v, uint32_t hub_aid, MrId mr);
  MrTable& mr_table() { return mrs_; }

  /// Flattens both entry sides into CSR arrays and frees the per-vertex
  /// vectors. Idempotent. After sealing the mutation API aborts; the query
  /// and introspection APIs are unaffected (and faster).
  void Seal();

  /// True once Seal() has run (or the index was loaded from disk; loaded
  /// indexes are always sealed).
  bool sealed() const { return sealed_; }

  /// \name Delta overlay (incremental maintenance, dynamic_index.h)
  ///
  /// Sealed-only mutation path: entries land in small sorted per-vertex
  /// delta lists that every query merges with the CSR buffers. Callers must
  /// not append exact duplicates (of a CSR entry or an earlier delta); the
  /// maintenance layer guarantees this by only covering pairs the index
  /// cannot yet answer. The MR may be one interned after sealing — the
  /// per-MR signature table is extended on demand.
  ///@{
  void AddDeltaOut(VertexId v, uint32_t hub_aid, MrId mr);
  void AddDeltaIn(VertexId v, uint32_t hub_aid, MrId mr);

  std::span<const IndexEntry> DeltaLout(VertexId v) const {
    return delta_out_.empty() ? std::span<const IndexEntry>()
                              : std::span<const IndexEntry>(delta_out_[v]);
  }
  std::span<const IndexEntry> DeltaLin(VertexId v) const {
    return delta_in_.empty() ? std::span<const IndexEntry>()
                             : std::span<const IndexEntry>(delta_in_[v]);
  }

  uint64_t delta_entries() const { return delta_entries_; }

  /// Pending-mutation fraction of the sealed entry count — delta *and*
  /// tombstone entries both count as pending maintenance work; the reseal
  /// policy (dynamic_index.h) triggers on this.
  double DeltaRatio() const {
    const uint64_t base = sealed_ ? out_entries_.size() + in_entries_.size() : 0;
    return static_cast<double>(delta_entries_ + tombstone_entries_) /
           static_cast<double>(base == 0 ? 1 : base);
  }

  /// Folds the delta lists into the CSR arrays (per-vertex merge by hub
  /// access id; CSR entries precede deltas on ties), drops tombstoned CSR
  /// entries, and recomputes the exact vertex signatures, narrowing the
  /// conservative widening the appends applied. Queries answer identically
  /// before and after. Idempotent.
  void MergeDeltas();
  ///@}

  /// \name Tombstone overlay (edge-delete maintenance, dynamic_index.h)
  ///
  /// Sealed-only suppression path, the dual of the delta overlay. Callers
  /// must only suppress entries whose claimed reachability no longer holds
  /// (the maintenance layer proves this per entry); suppressing a valid
  /// entry would create false negatives.
  ///@{

  /// Removes the (hub_aid, mr) entry of Lout(v) / Lin(v) from the visible
  /// entry set: erases it when it is a pending delta, tombstones it when it
  /// is a CSR entry.
  /// \throws std::invalid_argument when no such visible entry exists.
  void SuppressOut(VertexId v, uint32_t hub_aid, MrId mr);
  void SuppressIn(VertexId v, uint32_t hub_aid, MrId mr);

  /// Tombstones a CSR entry directly (the index_io v5 load path).
  /// \throws std::invalid_argument when the CSR side holds no such entry or
  ///         it is already tombstoned.
  void AddTombstoneOut(VertexId v, uint32_t hub_aid, MrId mr);
  void AddTombstoneIn(VertexId v, uint32_t hub_aid, MrId mr);

  /// Pending tombstones of one vertex side, sorted by (hub access id, mr).
  std::span<const IndexEntry> TombLout(VertexId v) const {
    return tomb_out_.empty() ? std::span<const IndexEntry>()
                             : std::span<const IndexEntry>(tomb_out_[v]);
  }
  std::span<const IndexEntry> TombLin(VertexId v) const {
    return tomb_in_.empty() ? std::span<const IndexEntry>()
                            : std::span<const IndexEntry>(tomb_in_[v]);
  }

  uint64_t tombstone_entries() const { return tombstone_entries_; }
  ///@}

  /// Installs pre-built CSR storage (the v2/v3 deserialization path).
  /// Offsets must be monotone with offsets.front() == 0, offsets.back() ==
  /// entries.size() and size num_vertices()+1; entry lists must be sorted by
  /// hub access id. When signature arrays are provided (v3 files) they must
  /// have num_vertices() slots each and are installed as-is; when empty
  /// they are rebuilt from the entry lists (v1/v2 files). The MR table must
  /// already hold every MR the entries reference (signatures fold MR label
  /// sets).
  /// \throws std::invalid_argument on violation.
  void AdoptSealed(std::vector<uint64_t> out_offsets,
                   std::vector<IndexEntry> out_entries,
                   std::vector<uint64_t> in_offsets,
                   std::vector<IndexEntry> in_entries,
                   std::vector<uint64_t> out_sigs = {},
                   std::vector<uint64_t> in_sigs = {});
  ///@}

  /// \name Introspection
  ///@{
  std::span<const IndexEntry> Lout(VertexId v) const {
    return sealed_ ? Csr(out_offsets_, out_entries_, v)
                   : std::span<const IndexEntry>(out_[v]);
  }
  std::span<const IndexEntry> Lin(VertexId v) const {
    return sealed_ ? Csr(in_offsets_, in_entries_, v)
                   : std::span<const IndexEntry>(in_[v]);
  }
  const MrTable& mr_table() const { return mrs_; }

  /// True when (hub, mr) is *visible* in Lout(v) / Lin(v): delta overlay
  /// included, tombstoned entries excluded. O(log |list|).
  bool HasOutEntry(VertexId v, uint32_t hub_aid, MrId mr) const {
    return (ContainsEntry(Lout(v), hub_aid, mr) &&
            !ContainsEntry(TombLout(v), hub_aid, mr)) ||
           (delta_entries_ != 0 && ContainsEntry(DeltaLout(v), hub_aid, mr));
  }
  bool HasInEntry(VertexId v, uint32_t hub_aid, MrId mr) const {
    return (ContainsEntry(Lin(v), hub_aid, mr) &&
            !ContainsEntry(TombLin(v), hub_aid, mr)) ||
           (delta_entries_ != 0 && ContainsEntry(DeltaLin(v), hub_aid, mr));
  }

  /// Access id of vertex v (1-based, as in the paper).
  uint32_t AccessId(VertexId v) const { return aid_[v]; }

  /// Vertex with access id `aid`.
  VertexId VertexOfAid(uint32_t aid) const { return order_[aid - 1]; }

  /// Total number of *visible* index entries across all Lin/Lout lists:
  /// CSR entries minus tombstones, plus pending deltas.
  uint64_t NumEntries() const;

  /// Index size in bytes: entry lists + MR table + ordering arrays. This is
  /// the "index size" metric of the paper's Table IV.
  uint64_t MemoryBytes() const;
  ///@}

 private:
  /// Signature layout: bits [0,32) hub Bloom, [32,48) label mask, [48,64)
  /// MR Bloom. The split keeps label/MR refutation (negative probes whose
  /// MR is absent from a side) independent from hub refutation (probes
  /// whose sides share no hub).
  static constexpr uint64_t kSigHubMask = 0x00000000FFFFFFFFULL;

  static uint64_t HubSignatureBit(uint32_t hub_aid) {
    return uint64_t{1} << ((hub_aid * 0x9E3779B1u) >> 27);  // top 5 bits
  }
  static uint64_t MrBloomBit(MrId mr) {
    return uint64_t{1} << (48 + (((mr + 1) * 0x85EBCA77u) >> 28));
  }

  /// Signature of one entry list (used for unsealed writes and rebuilds).
  uint64_t ListSignature(std::span<const IndexEntry> entries) const;

  /// Fills out_sigs_/in_sigs_ (unless adopted from a v3 file) and the
  /// per-MR required-bit table. Requires sealed CSR storage and a frozen MR
  /// table.
  void ComputeSignatures(bool keep_vertex_sigs);

  /// The sealed signature-guarded query: `needed` is mr_query_sig_[mr].
  bool QuerySealedSigned(VertexId s, VertexId t, MrId mr,
                         uint64_t needed) const;

  /// Shared body of the counted/uncounted group kernels; `stats` is only
  /// touched when kCounted (the uncounted instantiation is byte-identical
  /// to the historical loop).
  template <bool kCounted>
  void QueryGroupInternedImpl(MrId mr, std::span<const VertexPair> probes,
                              std::span<uint8_t> answers,
                              GroupQueryStats* stats) const;

  /// Delta-overlay continuation of a query whose CSR-only cases all failed:
  /// Case 2 against the endpoint delta lists plus the three Case-1 joins
  /// that involve a delta side. Only called when delta_entries_ != 0.
  bool QueryDeltaTail(VertexId s, VertexId t, MrId mr,
                      std::span<const IndexEntry> lout,
                      std::span<const IndexEntry> lin) const;

  /// Shared implementation of AddDeltaOut/AddDeltaIn.
  void AddDelta(std::vector<std::vector<IndexEntry>>& lists,
                std::vector<uint64_t>& sigs, VertexId v, uint32_t hub_aid,
                MrId mr);

  /// Shared implementation of SuppressOut/SuppressIn.
  void Suppress(std::vector<std::vector<IndexEntry>>& deltas,
                const std::vector<uint64_t>& offsets,
                const std::vector<IndexEntry>& entries, bool is_out,
                VertexId v, uint32_t hub_aid, MrId mr);

  /// Shared implementation of AddTombstoneOut/AddTombstoneIn.
  void AddTombstone(std::vector<std::vector<IndexEntry>>& tombs,
                    const std::vector<uint64_t>& offsets,
                    const std::vector<IndexEntry>& entries, VertexId v,
                    uint32_t hub_aid, MrId mr);

  /// ContainsEntry restricted to visible (non-tombstoned) entries.
  static bool ContainsVisibleEntry(std::span<const IndexEntry> entries,
                                   std::span<const IndexEntry> tombs,
                                   uint32_t hub_aid, MrId mr);

  /// Visibility-aware re-check of a raw JoinHasCommonHub hit: true when a
  /// common hub carries `mr` on both sides through entries that are not
  /// tombstoned. Trivially true when neither side has tombstones.
  static bool JoinVisibleCommonHub(std::span<const IndexEntry> lout,
                                   std::span<const IndexEntry> tout,
                                   std::span<const IndexEntry> lin,
                                   std::span<const IndexEntry> tin, MrId mr);

  /// Extends mr_query_sig_ to cover MRs interned after sealing.
  void EnsureMrSigs();

  static bool ContainsEntry(std::span<const IndexEntry> entries,
                            uint32_t hub_aid, MrId mr);

  /// Case-1 join: true iff some hub aid carries `mr` on both sides. For
  /// badly skewed pairs (hub vertices accumulate huge Lin/Lout lists while
  /// most vertices keep a handful of entries) the longer list is galloped;
  /// comparable pairs are compacted to the hub ids carrying `mr` (SIMD
  /// left-packing, util/simd.h) and intersected with the hybrid
  /// merge/block kernel.
  static bool JoinHasCommonHub(std::span<const IndexEntry> lout,
                               std::span<const IndexEntry> lin, MrId mr);
  static bool GallopJoin(std::span<const IndexEntry> small,
                         std::span<const IndexEntry> large, MrId mr);

  static std::span<const IndexEntry> Csr(const std::vector<uint64_t>& offsets,
                                         const std::vector<IndexEntry>& entries,
                                         VertexId v) {
    return std::span<const IndexEntry>(entries.data() + offsets[v],
                                       entries.data() + offsets[v + 1]);
  }

  uint32_t k_;
  bool sealed_ = false;
  bool use_signatures_ = true;
  // Build-phase storage (empty once sealed).
  std::vector<std::vector<IndexEntry>> out_;
  std::vector<std::vector<IndexEntry>> in_;
  // Sealed CSR storage (empty until sealed).
  std::vector<uint64_t> out_offsets_;
  std::vector<IndexEntry> out_entries_;
  std::vector<uint64_t> in_offsets_;
  std::vector<IndexEntry> in_entries_;
  // Delta overlay (sealed indexes only; empty on the static path). Lists
  // are sorted by hub access id, like the CSR entry lists.
  std::vector<std::vector<IndexEntry>> delta_out_;
  std::vector<std::vector<IndexEntry>> delta_in_;
  uint64_t delta_entries_ = 0;
  // Tombstone overlay (sealed indexes only): CSR entries suppressed by the
  // delete-maintenance path. Lists are sorted by (hub access id, mr) and
  // hold no duplicates.
  std::vector<std::vector<IndexEntry>> tomb_out_;
  std::vector<std::vector<IndexEntry>> tomb_in_;
  uint64_t tombstone_entries_ = 0;
  // Sealed signature storage (empty until sealed).
  std::vector<uint64_t> out_sigs_;  // vertex -> signature of Lout(v)
  std::vector<uint64_t> in_sigs_;   // vertex -> signature of Lin(v)
  std::vector<uint64_t> mr_query_sig_;  // mr -> bits a query for mr needs
  std::vector<uint32_t> aid_;       // vertex id -> access id (1-based)
  std::vector<VertexId> order_;     // access id - 1 -> vertex id
  MrTable mrs_;
};

}  // namespace rlc
