// The RLC index (paper Definition 4) and its query algorithm (Algorithm 1).
//
// For every vertex v the index stores two entry lists:
//
//   Lout(v) = {(u, L) : v ⇝ u and L ∈ Sk(v,u)}   ("v reaches hub u")
//   Lin(v)  = {(u, L) : u ⇝ v and L ∈ Sk(u,v)}   ("hub u reaches v")
//
// where Sk is the concise set of k-bounded minimum repeats (Definition 2).
// Hubs are identified by their *access id* (position in the IN-OUT vertex
// ordering); entries are appended in increasing access id as the indexing
// algorithm processes hubs in that order, so both lists stay sorted and the
// query is a sort-free merge join exactly as the paper describes.
//
// A query (s,t,L+) with |L| <= k and L primitive is answered true iff
//   Case 2: (t,L) ∈ Lout(s) or (s,L) ∈ Lin(t), or
//   Case 1: ∃ hub x with (x,L) ∈ Lout(s) and (x,L) ∈ Lin(t).

#pragma once

#include <cstdint>
#include <vector>

#include "rlc/core/label_seq.h"
#include "rlc/core/mr_table.h"
#include "rlc/graph/types.h"

namespace rlc {

/// One index entry: 8 bytes. `hub_aid` is the hub's access id; `mr` the
/// interned minimum repeat.
struct IndexEntry {
  uint32_t hub_aid;
  MrId mr;

  friend bool operator==(const IndexEntry&, const IndexEntry&) = default;
};

/// The RLC reachability index for one graph and one recursive bound k.
///
/// Instances are produced by RlcIndexBuilder (indexer.h) or loaded from disk
/// (index_io.h); the mutation API (AddOut/AddIn/...) is public for those
/// components and for tests but not intended for end users.
class RlcIndex {
 public:
  /// An empty index for `num_vertices` vertices and recursion bound `k`.
  RlcIndex(VertexId num_vertices, uint32_t k)
      : k_(k), out_(num_vertices), in_(num_vertices), aid_(num_vertices, 0) {
    RLC_REQUIRE(k >= 1 && k <= kMaxK, "RlcIndex: k must be in [1," << kMaxK << "]");
  }

  uint32_t k() const { return k_; }
  VertexId num_vertices() const { return static_cast<VertexId>(out_.size()); }

  /// \name Query interface
  ///@{

  /// Answers the RLC query (s, t, L+), paper Algorithm 1.
  ///
  /// \throws std::invalid_argument when s/t are out of range, L is empty or
  ///         not primitive (L != MR(L); such constraints add a path-length
  ///         side condition the paper scopes out), or |L| > k.
  bool Query(VertexId s, VertexId t, const LabelSeq& constraint) const;

  /// Answers the Kleene-star variant (s, t, L*): true iff s == t or the
  /// plus-query holds (paper §III-B).
  bool QueryStar(VertexId s, VertexId t, const LabelSeq& constraint) const;

  /// Hot-path query on a pre-interned MR id; no argument validation.
  /// kInvalidMrId never matches (such an MR was recorded nowhere).
  bool QueryInterned(VertexId s, VertexId t, MrId mr) const;

  /// Interns-or-looks-up a query constraint. Returns kInvalidMrId when the
  /// MR was never recorded (the query is then necessarily false).
  MrId FindMr(const LabelSeq& seq) const { return mrs_.Find(seq); }
  ///@}

  /// \name Builder interface
  ///@{
  void SetAccessOrder(std::vector<VertexId> order_to_vertex);
  void AddOut(VertexId v, uint32_t hub_aid, MrId mr);
  void AddIn(VertexId v, uint32_t hub_aid, MrId mr);
  MrTable& mr_table() { return mrs_; }
  ///@}

  /// \name Introspection
  ///@{
  const std::vector<IndexEntry>& Lout(VertexId v) const { return out_[v]; }
  const std::vector<IndexEntry>& Lin(VertexId v) const { return in_[v]; }
  const MrTable& mr_table() const { return mrs_; }

  /// True when (hub, mr) ∈ Lout(v) / Lin(v). O(log |list|).
  bool HasOutEntry(VertexId v, uint32_t hub_aid, MrId mr) const {
    return ContainsEntry(out_[v], hub_aid, mr);
  }
  bool HasInEntry(VertexId v, uint32_t hub_aid, MrId mr) const {
    return ContainsEntry(in_[v], hub_aid, mr);
  }

  /// Access id of vertex v (1-based, as in the paper).
  uint32_t AccessId(VertexId v) const { return aid_[v]; }

  /// Vertex with access id `aid`.
  VertexId VertexOfAid(uint32_t aid) const { return order_[aid - 1]; }

  /// Total number of index entries across all Lin/Lout lists.
  uint64_t NumEntries() const;

  /// Index size in bytes: entry lists + MR table + ordering arrays. This is
  /// the "index size" metric of the paper's Table IV.
  uint64_t MemoryBytes() const;
  ///@}

 private:
  bool ContainsEntry(const std::vector<IndexEntry>& entries, uint32_t hub_aid,
                     MrId mr) const;

  uint32_t k_;
  std::vector<std::vector<IndexEntry>> out_;
  std::vector<std::vector<IndexEntry>> in_;
  std::vector<uint32_t> aid_;       // vertex id -> access id (1-based)
  std::vector<VertexId> order_;     // access id - 1 -> vertex id
  MrTable mrs_;
};

}  // namespace rlc
