// Write-ahead log of edge mutations.
//
// The durability layer (durable_index.h, sharded_service.h) appends every
// acknowledged EdgeUpdate batch here *before* applying it, so a crash at
// any instant loses nothing that was acknowledged: recovery loads the
// newest valid snapshot generation and replays the WAL tail.
//
// File format — a flat sequence of records, little-endian:
//
//   u32 payload_len      bytes of update payload (count * 13)
//   u64 lsn              strictly increasing per record
//   payload              per update: u32 src, u32 label, u32 dst, u8 op
//   u64 checksum         FNV-1a fold over lsn and the payload bytes
//
// One record per ApplyUpdates batch; the append is write + fsync, so an
// acknowledged record is durable. Torn trailing records (a crash mid-append)
// fail the length or checksum check and are dropped by the reader; a
// corrupt record *stops* the read there — records after a hole cannot be
// ordered against the lost one, and replaying them would reorder the
// history. Replay therefore always applies a prefix of the logged batches.
//
// Failpoints (util/failpoint.h): wal.append.before_write / after_write /
// wal.fsync / after_sync, plus the `io` short-write/ENOSPC shim under the
// record write itself.

#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "rlc/core/dynamic_index.h"

namespace rlc {

/// The fsync of a WAL append failed: the record's bytes reached the file
/// but their durability is unknown. Distinct from a short write (plain
/// std::runtime_error from the write path) because the failure mode and
/// the remedy differ — the bytes are complete, only the sync is in doubt.
/// WalWriter::Append rolls the file back to the previous record boundary
/// before throwing this, so the batch was NOT acknowledged and retrying
/// the same LSN is safe.
class WalSyncError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One decoded WAL record: a batch of updates acknowledged as a unit.
struct WalRecord {
  uint64_t lsn = 0;
  std::vector<EdgeUpdate> updates;
};

/// Result of scanning a WAL file.
struct WalReadResult {
  std::vector<WalRecord> records;  ///< valid prefix, ascending lsn
  uint64_t valid_bytes = 0;        ///< bytes covered by `records`
  uint64_t dropped_bytes = 0;      ///< torn/corrupt tail bytes dropped
};

/// Scans `path` and returns the valid record prefix. A missing file reads
/// as empty (a crash can die between manifest commit and WAL creation).
/// Never throws on torn or corrupt bytes — they are counted into
/// dropped_bytes; throws std::runtime_error only on I/O errors (open/read
/// failures on an existing file).
WalReadResult ReadWalFile(const std::string& path);

/// Appender. Singe-owner, matching the mutation surfaces it logs for.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens `path` for appending (created when missing). Any previously
  /// opened file is closed first.
  /// \throws std::runtime_error when the file cannot be opened.
  void Open(const std::string& path);

  void Close();
  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Appends one durable record: serialize, write, fsync. On return the
  /// record survives any crash. \throws WalSyncError when the fsync fails
  /// (or the `wal.fsync` failpoint injects a sync failure) and plain
  /// std::runtime_error on write-path failure — either way the file is
  /// rolled back to the previous record boundary (closed if even that
  /// fails), the caller must not acknowledge the batch, and retrying the
  /// same LSN is safe.
  void Append(uint64_t lsn, std::span<const EdgeUpdate> updates);

  /// Bytes appended through this writer since Open (excludes pre-existing
  /// file contents) — the checkpoint trigger input.
  uint64_t bytes_appended() const { return bytes_appended_; }
  uint64_t records_appended() const { return records_appended_; }

 private:
  int fd_ = -1;
  std::string path_;
  uint64_t bytes_appended_ = 0;
  uint64_t records_appended_ = 0;
};

}  // namespace rlc
