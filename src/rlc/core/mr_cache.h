// Memoized MR lookups against a finished RLC index.
//
// RlcIndex::FindMr hashes the label sequence into the (large) MR interning
// table on every call. Query loops — the hybrid engine probing the same
// final atom for thousands of prefix vertices, the batched executor
// resolving a query template once per batch — repeat that hash for a
// handful of distinct sequences, so a small private memo table in front of
// the index removes it (bench_micro attributes ~40% of per-query serving
// cost to FindMr + validation overhead).
//
// The cache is only valid on an index whose construction has finished: the
// MR table is append-only during the build, and a cached kInvalidMrId would
// go stale if the sequence were interned later. All query-path callers see
// finished indexes, so this is not checked at runtime.

#pragma once

#include <unordered_map>

#include "rlc/core/rlc_index.h"
#include "rlc/obs/metrics.h"

namespace rlc {

/// Cumulative MrCache telemetry, materialized by MrCache::stats() from the
/// cache's atomic counters (obs::Counter). `evicted_entries` counts the
/// memoized templates dropped by capacity flushes — a growing value under
/// a steady workload is the signature of adversarial template churn.
struct MrCacheStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t flushes = 0;           ///< times the memo hit its bound
  uint64_t evicted_entries = 0;   ///< total entries dropped by flushes
};

/// Memoizes RlcIndex::FindMr for one index. The memo table itself is not
/// thread-safe — keep one instance per engine/serving thread, mirroring
/// OnlineSearcher's reusable scratch — but the telemetry counters are
/// atomic (obs primitives), so stats() may be read from another thread.
class MrCache {
 public:
  /// Default bound on memoized templates: real workloads use a handful, but
  /// a client scanning distinct constraints must not grow a serving process
  /// without limit. Hitting the bound flushes the memo (it is a pure
  /// cache, so a flush only costs re-resolution) and counts the eviction
  /// in stats().
  static constexpr size_t kMaxEntries = 1 << 16;

  /// `max_entries` overrides the flush bound (>= 1); serving deployments
  /// with tight memory budgets shrink it, tests exercise eviction with
  /// tiny bounds.
  explicit MrCache(const RlcIndex& index, size_t max_entries = kMaxEntries)
      : index_(&index), max_entries_(max_entries < 1 ? 1 : max_entries) {}

  /// FindMr with memoization; kInvalidMrId results are cached too (a miss
  /// is the common case for unknown query templates and just as hot).
  MrId Get(const LabelSeq& seq) {
    lookups_.Inc();
    if (cache_.size() >= max_entries_) {
      flushes_.Inc();
      evicted_entries_.Add(cache_.size());
      cache_.clear();
    }
    auto [it, inserted] = cache_.try_emplace(seq, kInvalidMrId);
    if (inserted) {
      it->second = index_->FindMr(seq);
    } else {
      hits_.Inc();
    }
    return it->second;
  }

  /// Number of distinct sequences resolved so far.
  size_t size() const { return cache_.size(); }
  size_t max_entries() const { return max_entries_; }

  /// Materializes the counters (thin shim; see MrCacheStats).
  MrCacheStats stats() const {
    MrCacheStats s;
    s.lookups = lookups_.Value();
    s.hits = hits_.Value();
    s.flushes = flushes_.Value();
    s.evicted_entries = evicted_entries_.Value();
    return s;
  }

 private:
  const RlcIndex* index_;
  size_t max_entries_;
  std::unordered_map<LabelSeq, MrId, LabelSeqHash> cache_;
  obs::Counter lookups_;
  obs::Counter hits_;
  obs::Counter flushes_;
  obs::Counter evicted_entries_;
};

}  // namespace rlc
