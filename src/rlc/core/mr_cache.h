// Memoized MR lookups against a finished RLC index.
//
// RlcIndex::FindMr hashes the label sequence into the (large) MR interning
// table on every call. Query loops — the hybrid engine probing the same
// final atom for thousands of prefix vertices, the batched executor
// resolving a query template once per batch — repeat that hash for a
// handful of distinct sequences, so a small private memo table in front of
// the index removes it (bench_micro attributes ~40% of per-query serving
// cost to FindMr + validation overhead).
//
// The cache is only valid on an index whose construction has finished: the
// MR table is append-only during the build, and a cached kInvalidMrId would
// go stale if the sequence were interned later. All query-path callers see
// finished indexes, so this is not checked at runtime.

#pragma once

#include <unordered_map>

#include "rlc/core/rlc_index.h"

namespace rlc {

/// Memoizes RlcIndex::FindMr for one index. Not thread-safe; intended as a
/// per-engine / per-service member, mirroring OnlineSearcher's reusable
/// scratch.
class MrCache {
 public:
  /// Bound on memoized templates: real workloads use a handful, but a
  /// client scanning distinct constraints must not grow a serving process
  /// without limit. Hitting the bound flushes the memo (it is a pure
  /// cache, so a flush only costs re-resolution).
  static constexpr size_t kMaxEntries = 1 << 16;

  explicit MrCache(const RlcIndex& index) : index_(&index) {}

  /// FindMr with memoization; kInvalidMrId results are cached too (a miss
  /// is the common case for unknown query templates and just as hot).
  MrId Get(const LabelSeq& seq) {
    if (cache_.size() >= kMaxEntries) cache_.clear();
    auto [it, inserted] = cache_.try_emplace(seq, kInvalidMrId);
    if (inserted) it->second = index_->FindMr(seq);
    return it->second;
  }

  /// Number of distinct sequences resolved so far.
  size_t size() const { return cache_.size(); }

 private:
  const RlcIndex* index_;
  std::unordered_map<LabelSeq, MrId, LabelSeqHash> cache_;
};

}  // namespace rlc
