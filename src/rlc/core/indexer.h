// The RLC indexing algorithm (paper Algorithm 2).
//
// Vertices are processed in the IN-OUT order (descending
// (|out(v)|+1)·(|in(v)|+1)); for each vertex v a backward and a forward
// kernel-based search (KBS) are run. Each KBS has two phases:
//
//  1. *kernel search*: a BFS bounded to depth k enumerating distinct
//     (vertex, label-sequence) states. Every reached vertex y with sequence
//     seq yields a tentative index entry (v, MR(seq)) and registers y in the
//     frontier set of the kernel candidate MR(seq). This is the *eager* KBS
//     strategy of §IV (kernel candidates are emitted as soon as a k-bounded
//     MR is seen, instead of waiting for paths of length 2k).
//
//  2. *kernel BFS*: for every kernel candidate L, a BFS from its frontier
//     guided by L+ — each product state is (vertex, position in L); an index
//     entry is recorded exactly when a full copy of L completes. A vertex is
//     visited at most once per position, which bounds the search even on
//     cyclic graphs.
//
// Pruning rules (§V-B):
//   PR1  skip an entry derivable from the current index snapshot (query it);
//   PR2  skip an entry whose hub has a larger access id than the visited
//        vertex (a later KBS records it from the other side);
//   PR3  when the entry completed by a kernel-BFS step is pruned by PR1/PR2,
//        do not expand past that vertex.
//
// Parallel construction (num_threads > 1) processes hubs in batches along
// the access order. Within a batch every hub runs its full KBS
// *speculatively* on a worker thread against a read-only snapshot of the
// index (the state at the start of the batch), using thread-local scratch.
// Because PR1 is monotone — an entry derivable from the snapshot stays
// derivable as the index only ever grows — a speculative prune is always a
// correct sequential prune, so the speculative searches explore a superset
// of the sequential searches and record their traversal (insert attempts
// plus kernel-BFS edge events). A sequential *commit* phase then replays
// the records in exact access-id order against the live index, re-applying
// PR1/PR2/PR3 for every attempt the snapshot could not decide. The result —
// entry lists, MR-table ids, and all counters except build_seconds — is
// bit-identical to the sequential build for every thread count and batch
// size (tests/parallel_build_test.cc).
//
// Note on the paper's pseudocode: the published listing has two off-by-one /
// polarity typos (the cyclic position is decremented before the expected
// label is read, and insert's return value is used inverted at line 36).
// Both contradict the paper's own worked Examples 5 and 6; this
// implementation follows the examples, which we verified reproduce Table II
// exactly (see tests/indexer_paper_test.cc).

#pragma once

#include <cstdint>
#include <map>
#include <unordered_set>
#include <vector>

#include "rlc/core/rlc_index.h"
#include "rlc/graph/digraph.h"

namespace rlc {

/// Vertex processing order strategies (IN-OUT is the paper's choice; the
/// others exist for the ordering ablation benchmark).
enum class VertexOrdering {
  kInOut,     ///< descending (|out(v)|+1)*(|in(v)|+1), ties by vertex id
  kVertexId,  ///< plain ascending vertex id
  kRandom,    ///< uniformly random permutation (seeded)
};

/// Kernel-determination strategy (paper §IV). Eager treats every k-bounded
/// MR seen at depth <= k as a kernel candidate and switches to kernel-BFS
/// immediately; lazy enumerates all label sequences to depth 2k and only
/// then extracts (provably valid) kernels via Theorem 1. The paper adopts
/// eager because "generating all label sequences of length 2k from a source
/// vertex is more expensive than the case of paths of length k"; the lazy
/// implementation exists to reproduce that comparison.
enum class KbsStrategy {
  kEager,
  kLazy,  ///< requires 2k <= kMaxK
};

/// Build-time configuration.
struct IndexerOptions {
  uint32_t k = 2;                                    ///< recursive bound
  VertexOrdering ordering = VertexOrdering::kInOut;  ///< hub order
  KbsStrategy strategy = KbsStrategy::kEager;        ///< kernel search mode
  bool pr1 = true;  ///< prune entries derivable from the snapshot
  bool pr2 = true;  ///< prune entries against later-ordered hubs
  bool pr3 = true;  ///< stop kernel-BFS expansion on pruned inserts
                    ///< (only sound together with PR1+PR2; automatically
                    ///< disabled otherwise, see Appendix D of the paper)
  uint64_t seed = 42;  ///< used by VertexOrdering::kRandom
  /// Worker threads for the batched speculative build. 1 = the plain
  /// sequential Algorithm 2; 0 = all hardware threads. Any value produces
  /// the same index.
  uint32_t num_threads = 1;
  /// Hubs speculated per batch (parallel build only). Larger batches expose
  /// more parallelism but speculate against a staler snapshot; 0 picks
  /// 8 * num_threads.
  uint32_t batch_size = 0;
  /// Seal the finished index into the CSR query layout (rlc_index.h) before
  /// returning. Disable only to benchmark the unsealed layout.
  bool seal = true;
};

/// Counters reported by the builder (benchmarks and tests). All counters
/// except the wall-clock timings (build_seconds, seal_seconds) are
/// independent of num_threads/batch_size.
struct IndexerStats {
  uint64_t entries_inserted = 0;
  uint64_t pruned_pr1 = 0;
  uint64_t pruned_pr2 = 0;
  uint64_t pruned_duplicate = 0;       ///< exact duplicates (PR1 disabled)
  uint64_t kernel_search_states = 0;   ///< distinct (vertex, seq) states
  uint64_t kernel_bfs_runs = 0;        ///< number of kernel candidates chased
  uint64_t kernel_bfs_visits = 0;      ///< product states expanded in phase 2
  double build_seconds = 0.0;
  /// CSR flatten + vertex-signature build, included in build_seconds
  /// (0 when IndexerOptions::seal is off). Like build_seconds this is
  /// wall-clock, not a deterministic counter.
  double seal_seconds = 0.0;
};

/// Single-use builder: constructs the RLC index of `g` for bound k.
class RlcIndexBuilder {
 public:
  RlcIndexBuilder(const DiGraph& g, IndexerOptions options);

  /// Runs Algorithm 2 and returns the finished index. Call at most once.
  RlcIndex Build();

  const IndexerStats& stats() const { return stats_; }

  /// The vertex ordering used for access ids (exposed for tests/ablation).
  static std::vector<VertexId> ComputeOrder(const DiGraph& g,
                                            VertexOrdering ordering,
                                            uint64_t seed);

 private:
  enum class InsertResult { kInserted, kPrunedPr1, kPrunedPr2, kDuplicate };

  /// Outcome of an insert attempt that the speculative phase could already
  /// decide from the snapshot. kUnknown attempts are re-evaluated against
  /// the live index at commit time; the others are final (PR2 depends only
  /// on access ids, and snapshot-PR1/duplicate hits stay hits because the
  /// index only grows).
  enum class AttemptHint : uint8_t { kUnknown, kPr1, kPr2, kDup };

  /// Records (hub, L) into Lout(y) (backward) or Lin(y) (forward), subject
  /// to PR1/PR2 and exact-duplicate suppression.
  InsertResult Insert(VertexId y, VertexId hub, const LabelSeq& mr, bool backward);

  /// A kernel-BFS seed: the frontier vertex and the 1-based position in the
  /// kernel of the next expected label.
  struct FrontierSeed {
    VertexId v;
    uint32_t position;
  };

  struct VertexSeq {
    VertexId v;
    LabelSeq seq;
    friend bool operator==(const VertexSeq&, const VertexSeq&) = default;
  };
  struct VertexSeqHash {
    uint64_t operator()(const VertexSeq& vs) const {
      return vs.seq.Hash() * 0x9E3779B97F4A7C15ULL + vs.v;
    }
  };

  /// Per-thread scratch. The sequential build and the commit phase use the
  /// builder's main context; every worker owns one.
  struct SearchContext {
    std::vector<VertexSeq> search_queue;
    std::unordered_set<VertexSeq, VertexSeqHash> seen;
    std::map<LabelSeq, std::vector<FrontierSeed>> frontier;
    std::vector<std::pair<VertexId, uint32_t>> bfs_queue;
    /// (vertex, kernel position) -> last epoch it was visited in.
    std::vector<uint64_t> visit_stamp;
    /// Valid where visit_stamp matches: the state's slot in the current
    /// speculative kernel run (parallel build only).
    std::vector<uint32_t> slot_of_state;
    uint64_t epoch = 0;
    uint64_t kernel_search_states = 0;

    void EnsureSized(uint64_t num_vertices, uint32_t k, bool with_slots);
  };

  /// \name Speculation record (parallel build)
  ///@{

  /// One kernel-search (phase 1) insert attempt, in traversal order.
  struct P1Attempt {
    VertexId y;
    AttemptHint hint;
    LabelSeq mr;
  };

  /// One scanned edge of a speculative kernel BFS. The source state is
  /// implicit (events are grouped per source slot); the target position is
  /// the source's next_pos.
  struct SpecEvent {
    VertexId y;
    AttemptHint hint;  ///< meaningful for boundary edges only
  };

  struct SpecSlot {
    VertexId v;
    uint32_t position;
  };

  /// Full traversal record of one speculative kernel BFS: the states in
  /// speculative BFS order (seeds first) and, per state, the contiguous
  /// range of scanned edges events[event_begin[i] .. event_begin[i+1]).
  struct SpecKernelRun {
    LabelSeq kernel;
    uint32_t num_seeds = 0;
    std::vector<SpecSlot> slots;
    std::vector<uint32_t> event_begin;
    std::vector<SpecEvent> events;
  };

  struct DirectionRecord {
    std::vector<P1Attempt> p1;
    std::vector<SpecKernelRun> kernels;
  };

  struct HubRecord {
    VertexId hub = 0;
    DirectionRecord backward;
    DirectionRecord forward;
  };
  ///@}

  /// Phase 1 shared by the sequential and speculative paths: the traversal
  /// depends only on the graph; `on_attempt(y, mr)` observes every insert
  /// attempt in order. Fills ctx.frontier with the kernel candidates.
  template <typename AttemptFn>
  void KernelSearch(VertexId hub, bool backward, SearchContext& ctx,
                    AttemptFn&& on_attempt);

  /// One full sequential KBS (kernel search + kernel BFSs) from `hub`.
  void Kbs(VertexId hub, bool backward);

  /// Sequential phase 2 for one kernel candidate.
  void KernelBfs(VertexId hub, const LabelSeq& kernel,
                 const std::vector<FrontierSeed>& frontier, bool backward);

  /// \name Parallel build
  ///@{
  void ParallelBuild(uint32_t num_threads);

  /// Snapshot-side verdict for an insert attempt (see AttemptHint).
  AttemptHint SpecInsertHint(VertexId y, VertexId hub, const LabelSeq& mr,
                             bool backward) const;

  /// Speculative KBS from `hub` against the frozen index, recording into rec.
  void SpecKbs(VertexId hub, bool backward, SearchContext& ctx,
               DirectionRecord& rec);
  void SpecKernelBfs(VertexId hub, const LabelSeq& kernel,
                     const std::vector<FrontierSeed>& frontier, bool backward,
                     SearchContext& ctx, SpecKernelRun& run);

  /// Replays one hub's record against the live index in sequential order.
  void CommitHub(HubRecord& rec);
  void CommitDirection(VertexId hub, DirectionRecord& rec, bool backward);
  void CommitKernelBfs(VertexId hub, SpecKernelRun& run, bool backward);
  ///@}

  bool MarkVisited(SearchContext& ctx, VertexId v, uint32_t position) {
    uint64_t& slot = ctx.visit_stamp[StateIndex(v, position)];
    if (slot == ctx.epoch) return false;
    slot = ctx.epoch;
    return true;
  }

  bool WasVisited(const SearchContext& ctx, VertexId v, uint32_t position) const {
    return ctx.visit_stamp[StateIndex(v, position)] == ctx.epoch;
  }

  uint64_t StateIndex(VertexId v, uint32_t position) const {
    return static_cast<uint64_t>(v) * options_.k + (position - 1);
  }

  const DiGraph& g_;
  IndexerOptions options_;
  bool pr3_effective_;
  IndexerStats stats_;
  RlcIndex index_;
  bool built_ = false;

  /// Scratch of the sequential path and of the commit phase.
  SearchContext main_ctx_;
  /// Commit-phase aliveness per speculative slot, and the commit BFS queue.
  std::vector<uint8_t> commit_alive_;
  std::vector<uint32_t> commit_queue_;
};

/// Convenience wrapper: builds the RLC index of `g` with bound `k` using
/// the paper's default configuration.
RlcIndex BuildRlcIndex(const DiGraph& g, uint32_t k);

}  // namespace rlc
