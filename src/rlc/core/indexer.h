// The RLC indexing algorithm (paper Algorithm 2).
//
// Vertices are processed in the IN-OUT order (descending
// (|out(v)|+1)·(|in(v)|+1)); for each vertex v a backward and a forward
// kernel-based search (KBS) are run. Each KBS has two phases:
//
//  1. *kernel search*: a BFS bounded to depth k enumerating distinct
//     (vertex, label-sequence) states. Every reached vertex y with sequence
//     seq yields a tentative index entry (v, MR(seq)) and registers y in the
//     frontier set of the kernel candidate MR(seq). This is the *eager* KBS
//     strategy of §IV (kernel candidates are emitted as soon as a k-bounded
//     MR is seen, instead of waiting for paths of length 2k).
//
//  2. *kernel BFS*: for every kernel candidate L, a BFS from its frontier
//     guided by L+ — each product state is (vertex, position in L); an index
//     entry is recorded exactly when a full copy of L completes. A vertex is
//     visited at most once per position, which bounds the search even on
//     cyclic graphs.
//
// Pruning rules (§V-B):
//   PR1  skip an entry derivable from the current index snapshot (query it);
//   PR2  skip an entry whose hub has a larger access id than the visited
//        vertex (a later KBS records it from the other side);
//   PR3  when the entry completed by a kernel-BFS step is pruned by PR1/PR2,
//        do not expand past that vertex.
//
// Note on the paper's pseudocode: the published listing has two off-by-one /
// polarity typos (the cyclic position is decremented before the expected
// label is read, and insert's return value is used inverted at line 36).
// Both contradict the paper's own worked Examples 5 and 6; this
// implementation follows the examples, which we verified reproduce Table II
// exactly (see tests/indexer_test.cc).

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_set>
#include <vector>

#include "rlc/core/rlc_index.h"
#include "rlc/graph/digraph.h"

namespace rlc {

/// Vertex processing order strategies (IN-OUT is the paper's choice; the
/// others exist for the ordering ablation benchmark).
enum class VertexOrdering {
  kInOut,     ///< descending (|out(v)|+1)*(|in(v)|+1), ties by vertex id
  kVertexId,  ///< plain ascending vertex id
  kRandom,    ///< uniformly random permutation (seeded)
};

/// Kernel-determination strategy (paper §IV). Eager treats every k-bounded
/// MR seen at depth <= k as a kernel candidate and switches to kernel-BFS
/// immediately; lazy enumerates all label sequences to depth 2k and only
/// then extracts (provably valid) kernels via Theorem 1. The paper adopts
/// eager because "generating all label sequences of length 2k from a source
/// vertex is more expensive than the case of paths of length k"; the lazy
/// implementation exists to reproduce that comparison.
enum class KbsStrategy {
  kEager,
  kLazy,  ///< requires 2k <= kMaxK
};

/// Build-time configuration.
struct IndexerOptions {
  uint32_t k = 2;                                    ///< recursive bound
  VertexOrdering ordering = VertexOrdering::kInOut;  ///< hub order
  KbsStrategy strategy = KbsStrategy::kEager;        ///< kernel search mode
  bool pr1 = true;  ///< prune entries derivable from the snapshot
  bool pr2 = true;  ///< prune entries against later-ordered hubs
  bool pr3 = true;  ///< stop kernel-BFS expansion on pruned inserts
                    ///< (only sound together with PR1+PR2; automatically
                    ///< disabled otherwise, see Appendix D of the paper)
  uint64_t seed = 42;  ///< used by VertexOrdering::kRandom
};

/// Counters reported by the builder (benchmarks and tests).
struct IndexerStats {
  uint64_t entries_inserted = 0;
  uint64_t pruned_pr1 = 0;
  uint64_t pruned_pr2 = 0;
  uint64_t pruned_duplicate = 0;       ///< exact duplicates (PR1 disabled)
  uint64_t kernel_search_states = 0;   ///< distinct (vertex, seq) states
  uint64_t kernel_bfs_runs = 0;        ///< number of kernel candidates chased
  uint64_t kernel_bfs_visits = 0;      ///< product states expanded in phase 2
  double build_seconds = 0.0;
};

/// Single-use builder: constructs the RLC index of `g` for bound k.
class RlcIndexBuilder {
 public:
  RlcIndexBuilder(const DiGraph& g, IndexerOptions options);

  /// Runs Algorithm 2 and returns the finished index. Call at most once.
  RlcIndex Build();

  const IndexerStats& stats() const { return stats_; }

  /// The vertex ordering used for access ids (exposed for tests/ablation).
  static std::vector<VertexId> ComputeOrder(const DiGraph& g,
                                            VertexOrdering ordering,
                                            uint64_t seed);

 private:
  enum class InsertResult { kInserted, kPrunedPr1, kPrunedPr2, kDuplicate };

  /// Records (hub, L) into Lout(y) (backward) or Lin(y) (forward), subject
  /// to PR1/PR2 and exact-duplicate suppression.
  InsertResult Insert(VertexId y, VertexId hub, const LabelSeq& mr, bool backward);

  /// A kernel-BFS seed: the frontier vertex and the 1-based position in the
  /// kernel of the next expected label.
  struct FrontierSeed {
    VertexId v;
    uint32_t position;
  };

  /// One full KBS (kernel search + kernel BFSs) from `hub`.
  void Kbs(VertexId hub, bool backward);

  /// Phase 2 for one kernel candidate.
  void KernelBfs(VertexId hub, const LabelSeq& kernel,
                 const std::vector<FrontierSeed>& frontier, bool backward);

  bool MarkVisited(VertexId v, uint32_t position) {
    uint64_t& slot = visit_stamp_[static_cast<uint64_t>(v) * options_.k +
                                  (position - 1)];
    if (slot == epoch_) return false;
    slot = epoch_;
    return true;
  }

  bool WasVisited(VertexId v, uint32_t position) const {
    return visit_stamp_[static_cast<uint64_t>(v) * options_.k + (position - 1)] ==
           epoch_;
  }

  struct VertexSeq {
    VertexId v;
    LabelSeq seq;
    friend bool operator==(const VertexSeq&, const VertexSeq&) = default;
  };
  struct VertexSeqHash {
    uint64_t operator()(const VertexSeq& vs) const {
      return vs.seq.Hash() * 0x9E3779B97F4A7C15ULL + vs.v;
    }
  };

  const DiGraph& g_;
  IndexerOptions options_;
  bool pr3_effective_;
  IndexerStats stats_;
  RlcIndex index_;
  bool built_ = false;

  // Reused per-KBS scratch.
  std::vector<VertexSeq> search_queue_;
  std::unordered_set<VertexSeq, VertexSeqHash> seen_;
  std::map<LabelSeq, std::vector<FrontierSeed>> frontier_;
  std::vector<std::pair<VertexId, uint32_t>> bfs_queue_;
  std::vector<uint64_t> visit_stamp_;
  uint64_t epoch_ = 0;
};

/// Convenience wrapper: builds the RLC index of `g` with bound `k` using
/// the paper's default configuration.
RlcIndex BuildRlcIndex(const DiGraph& g, uint32_t k);

}  // namespace rlc
