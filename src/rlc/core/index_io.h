// Binary serialization of RLC indexes.
//
// Little-endian format, common header:
//   u64 magic  u32 version  u32 k  u64 num_vertices
//   access order: num_vertices * u32 (vertex id at access position i)
//   MR table: u32 count, then per MR: u8 length + length * u32 labels
//
// Version 1 (legacy, still readable):
//   per vertex: u32 |Lout| + entries, u32 |Lin| + entries
//   entry: u32 hub_aid, u32 mr_id
//
// Version 2 (still readable): the sealed CSR layout written as four flat
// blocks, loaded back with bulk reads straight into the query-time
// representation — no per-entry parsing, no per-vertex allocation:
//   out offsets: (num_vertices+1) * u64
//   out entries: offsets.back() * 8 bytes (IndexEntry, packed)
//   in  offsets: (num_vertices+1) * u64
//   in  entries: offsets.back() * 8 bytes
//
// Version 3 (still readable): the v2 body followed by the sealed-time
// vertex signatures (rlc_index.h), so a load skips the signature rebuild
// pass:
//   out signatures: num_vertices * u64
//   in  signatures: num_vertices * u64
//   u64 checksum (FNV fold over both blocks; a corrupt signature would
//       silently flip answers, so it must fail the load instead)
// Loading a v1/v2 file rebuilds the signatures from the entry lists; the
// loaded index is indistinguishable from a v3 load.
//
// Version 4 (still readable): the v3 body followed by the pending delta
// overlay (rlc_index.h / dynamic_index.h), sparse per side — a dynamically
// maintained index persists without forcing a reseal first:
//   out deltas: u64 vertex count, then per vertex with deltas
//               u32 vertex, u32 list length, length * IndexEntry
//   in  deltas: same
//   u64 checksum (FNV fold over every value of the section; delta entries
//       are also range-checked like v2 entries, but an in-range bit flip
//       must still fail the load, not flip answers)
// An index without pending deltas writes empty delta sections; the bytes
// stay a pure function of the logical index state, so save -> load ->
// resave round-trips byte-identically with or without deltas. Writing
// versions 1-3 requires an index without pending deltas (they would be
// silently dropped; call MergeDeltas() first).
//
// Version 5 (default): the v4 body followed by the pending tombstone
// overlay (edge-delete maintenance), encoded exactly like the delta
// sections — sparse per side, own trailing checksum:
//   out tombstones: u64 vertex count, then per vertex with tombstones
//               u32 vertex, u32 list length, length * IndexEntry
//   in  tombstones: same
//   u64 checksum
// Every tombstone must reference an existing CSR entry of the loaded
// index; a tombstone that does not fails the load (it could only come from
// corruption — the maintenance layer never creates one). Writing versions
// 1-4 requires an index without pending tombstones (they would silently
// resurrect suppressed entries; MergeDeltas() first or write v5).
//
// Intended use: build once offline (the expensive step the paper measures in
// Table IV), persist, then serve queries from a load that is a straight
// sequential read. Loaded indexes are always sealed.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "rlc/core/rlc_index.h"

namespace rlc {

/// The version WriteIndex emits by default.
inline constexpr uint32_t kIndexFormatVersion = 5;

/// Writes `index` to `out` in format `version` (1-5). The index may be
/// sealed or not; the bytes are identical either way (v3+ signatures are
/// computed on the fly for unsealed indexes).
/// \throws std::invalid_argument on an unsupported version, a version below
///         4 when the index has pending delta entries, or a version below 5
///         when it has pending tombstones.
void WriteIndex(const RlcIndex& index, std::ostream& out,
                uint32_t version = kIndexFormatVersion);

/// Reads an index (any supported version) from `in`. The result is sealed.
/// Hardened against untrusted bytes: any corruption — truncation, bad
/// counts, out-of-range ids, checksum mismatches — produces a clean
/// std::runtime_error naming `source` (the file path, or "<stream>"), the
/// section and the byte offset of the failure; never UB, an abort, or an
/// unbounded allocation.
RlcIndex ReadIndex(std::istream& in);
RlcIndex ReadIndex(std::istream& in, const std::string& source);

/// Saves/loads via a file path. SaveIndex is crash-safe: it writes
/// `path.tmp`, fsyncs, then atomically renames over `path` (and fsyncs the
/// directory), so a crash mid-save leaves the previous file intact — never
/// a torn index.
/// \throws std::runtime_error when the file cannot be opened/written;
///         LoadIndex rethrows every ReadIndex failure with the path named.
void SaveIndex(const RlcIndex& index, const std::string& path);
RlcIndex LoadIndex(const std::string& path);

/// Writes `bytes` to `path` atomically: tmp file + fsync + rename + parent
/// directory fsync. `failpoint_site` prefixes the fault-injection points
/// evaluated along the way (`<site>.before_write`, `.after_write`,
/// `.before_rename`, `.after_rename` — see util/failpoint.h); durability
/// call sites pass "index_io.save" or "manifest.commit".
/// \throws std::runtime_error on I/O failure or an injected fault (the tmp
///         file may be left behind; `path` itself is never torn).
void AtomicWriteFile(const std::string& path, std::string_view bytes,
                     const char* failpoint_site = "index_io.save");

/// Persists an opaque composition-cache payload (CompositionEngine::
/// SerializeCache) with framing — magic, version, length, FNV checksum —
/// via AtomicWriteFile (failpoint site "compose.save"). The warm boundary
/// transition tables are a pure cache, so the framing only has to make
/// corruption *detectable*; the reader rejects, the engine restarts cold.
/// \throws std::runtime_error on I/O failure or an injected fault.
void WriteCompositionCache(const std::string& path,
                           std::span<const uint8_t> payload);

/// Reads a WriteCompositionCache file back into the raw payload.
/// \throws std::runtime_error on a missing/unreadable file, bad magic or
///         version, truncation, or a checksum mismatch.
std::vector<uint8_t> ReadCompositionCache(const std::string& path);

/// One durable snapshot generation of a store (durable_index.h).
struct SnapshotGeneration {
  uint64_t generation = 0;
  uint64_t applied_lsn = 0;  ///< last mutation batch folded into the snapshot

  friend bool operator==(const SnapshotGeneration&,
                         const SnapshotGeneration&) = default;
};

/// The tiny manifest at the root of a durability directory: the snapshot
/// generations currently retained, newest first. The manifest commit (an
/// atomic rename) is the instant a checkpoint becomes the recovery target.
struct DurabilityManifest {
  std::vector<SnapshotGeneration> generations;  ///< newest first

  const SnapshotGeneration* newest() const {
    return generations.empty() ? nullptr : &generations.front();
  }
};

/// Name of the manifest file inside a durability directory.
inline constexpr const char* kManifestFileName = "MANIFEST";

/// Reads `<dir>/MANIFEST`. A missing file returns an empty manifest (a
/// fresh store); a malformed one throws std::runtime_error naming the file
/// — callers degrade to a directory scan (durable_index.h).
DurabilityManifest ReadManifest(const std::string& dir);

/// Atomically commits `<dir>/MANIFEST` (failpoint site "manifest.commit").
/// \throws std::runtime_error on I/O failure or an injected fault.
void CommitManifest(const std::string& dir, const DurabilityManifest& manifest);

}  // namespace rlc
