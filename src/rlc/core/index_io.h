// Binary serialization of RLC indexes.
//
// Little-endian format, common header:
//   u64 magic  u32 version  u32 k  u64 num_vertices
//   access order: num_vertices * u32 (vertex id at access position i)
//   MR table: u32 count, then per MR: u8 length + length * u32 labels
//
// Version 1 (legacy, still readable):
//   per vertex: u32 |Lout| + entries, u32 |Lin| + entries
//   entry: u32 hub_aid, u32 mr_id
//
// Version 2 (still readable): the sealed CSR layout written as four flat
// blocks, loaded back with bulk reads straight into the query-time
// representation — no per-entry parsing, no per-vertex allocation:
//   out offsets: (num_vertices+1) * u64
//   out entries: offsets.back() * 8 bytes (IndexEntry, packed)
//   in  offsets: (num_vertices+1) * u64
//   in  entries: offsets.back() * 8 bytes
//
// Version 3 (still readable): the v2 body followed by the sealed-time
// vertex signatures (rlc_index.h), so a load skips the signature rebuild
// pass:
//   out signatures: num_vertices * u64
//   in  signatures: num_vertices * u64
//   u64 checksum (FNV fold over both blocks; a corrupt signature would
//       silently flip answers, so it must fail the load instead)
// Loading a v1/v2 file rebuilds the signatures from the entry lists; the
// loaded index is indistinguishable from a v3 load.
//
// Version 4 (still readable): the v3 body followed by the pending delta
// overlay (rlc_index.h / dynamic_index.h), sparse per side — a dynamically
// maintained index persists without forcing a reseal first:
//   out deltas: u64 vertex count, then per vertex with deltas
//               u32 vertex, u32 list length, length * IndexEntry
//   in  deltas: same
//   u64 checksum (FNV fold over every value of the section; delta entries
//       are also range-checked like v2 entries, but an in-range bit flip
//       must still fail the load, not flip answers)
// An index without pending deltas writes empty delta sections; the bytes
// stay a pure function of the logical index state, so save -> load ->
// resave round-trips byte-identically with or without deltas. Writing
// versions 1-3 requires an index without pending deltas (they would be
// silently dropped; call MergeDeltas() first).
//
// Version 5 (default): the v4 body followed by the pending tombstone
// overlay (edge-delete maintenance), encoded exactly like the delta
// sections — sparse per side, own trailing checksum:
//   out tombstones: u64 vertex count, then per vertex with tombstones
//               u32 vertex, u32 list length, length * IndexEntry
//   in  tombstones: same
//   u64 checksum
// Every tombstone must reference an existing CSR entry of the loaded
// index; a tombstone that does not fails the load (it could only come from
// corruption — the maintenance layer never creates one). Writing versions
// 1-4 requires an index without pending tombstones (they would silently
// resurrect suppressed entries; MergeDeltas() first or write v5).
//
// Intended use: build once offline (the expensive step the paper measures in
// Table IV), persist, then serve queries from a load that is a straight
// sequential read. Loaded indexes are always sealed.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "rlc/core/rlc_index.h"

namespace rlc {

/// The version WriteIndex emits by default.
inline constexpr uint32_t kIndexFormatVersion = 5;

/// Writes `index` to `out` in format `version` (1-5). The index may be
/// sealed or not; the bytes are identical either way (v3+ signatures are
/// computed on the fly for unsealed indexes).
/// \throws std::invalid_argument on an unsupported version, a version below
///         4 when the index has pending delta entries, or a version below 5
///         when it has pending tombstones.
void WriteIndex(const RlcIndex& index, std::ostream& out,
                uint32_t version = kIndexFormatVersion);

/// Reads an index (any supported version) from `in`. The result is sealed.
/// \throws std::runtime_error on bad magic, version or truncation.
RlcIndex ReadIndex(std::istream& in);

/// Saves/loads via a file path.
/// \throws std::runtime_error when the file cannot be opened.
void SaveIndex(const RlcIndex& index, const std::string& path);
RlcIndex LoadIndex(const std::string& path);

}  // namespace rlc
