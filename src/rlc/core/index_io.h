// Binary serialization of RLC indexes.
//
// Little-endian format:
//   u64 magic  u32 version  u32 k  u64 num_vertices
//   access order: num_vertices * u32 (vertex id at access position i)
//   MR table: u32 count, then per MR: u8 length + length * u32 labels
//   per vertex: u32 |Lout| + entries, u32 |Lin| + entries
//   entry: u32 hub_aid, u32 mr_id
//
// Intended use: build once offline (the expensive step the paper measures in
// Table IV), persist, then serve queries from a load that is a straight
// sequential read.

#pragma once

#include <iosfwd>
#include <string>

#include "rlc/core/rlc_index.h"

namespace rlc {

/// Writes `index` to `out`.
void WriteIndex(const RlcIndex& index, std::ostream& out);

/// Reads an index from `in`.
/// \throws std::runtime_error on bad magic, version or truncation.
RlcIndex ReadIndex(std::istream& in);

/// Saves/loads via a file path.
/// \throws std::runtime_error when the file cannot be opened.
void SaveIndex(const RlcIndex& index, const std::string& path);
RlcIndex LoadIndex(const std::string& path);

}  // namespace rlc
