#include "rlc/core/index_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "rlc/core/label_seq.h"
#include "rlc/obs/trace.h"
#include "rlc/util/failpoint.h"

namespace rlc {

namespace {

constexpr uint64_t kIndexMagic = 0x524C43494458ULL;  // "RLCIDX"

/// Order-sensitive FNV-style fold over the signature words. The signature
/// block is the one v3 section whose corruption AdoptSealed cannot detect
/// (entries are range-checked, offsets monotonicity-checked) yet would
/// silently flip query answers; the checksum turns that into a load error.
uint64_t SignatureChecksum(uint64_t h, uint64_t word) {
  return (h ^ word) * 0x100000001B3ULL;
}
constexpr uint64_t kSignatureChecksumSeed = 0xCBF29CE484222325ULL;

template <typename T>
void Put(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

/// Bytes left in `in` from the current position; UINT64_MAX when the stream
/// is not seekable.
uint64_t RemainingBytes(std::istream& in) {
  const std::istream::pos_type pos = in.tellg();
  if (pos == std::istream::pos_type(-1)) return UINT64_MAX;
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(pos);
  if (end == std::istream::pos_type(-1) || end < pos) return UINT64_MAX;
  return static_cast<uint64_t>(end - pos);
}

/// Deserialization context: tracks the source name, the section being
/// parsed and the byte offset (relative to where the index blob starts —
/// embedded blobs report offsets within the blob), so every failure names
/// exactly where the bytes went bad.
class Reader {
 public:
  Reader(std::istream& in, const std::string& source)
      : in_(in), source_(source) {}

  void Section(const char* name) { section_ = name; }

  template <typename T>
  T Get() {
    T v{};
    ReadRaw(&v, sizeof(T));
    return v;
  }

  void ReadRaw(void* dst, uint64_t n) {
    in_.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
    if (!in_) {
      Fail("truncated: wanted " + std::to_string(n) + " more bytes");
    }
    offset_ += n;
  }

  uint64_t Remaining() { return RemainingBytes(in_); }

  [[noreturn]] void Fail(const std::string& what) const {
    throw std::runtime_error("ReadIndex(" + source_ + "): " + what +
                             " [section: " + section_ + ", byte offset " +
                             std::to_string(offset_) + "]");
  }

 private:
  std::istream& in_;
  const std::string& source_;
  const char* section_ = "header";
  uint64_t offset_ = 0;
};

void PutEntriesV1(std::ostream& out, std::span<const IndexEntry> entries) {
  Put<uint32_t>(out, static_cast<uint32_t>(entries.size()));
  for (const IndexEntry& e : entries) {
    Put<uint32_t>(out, e.hub_aid);
    Put<uint32_t>(out, e.mr);
  }
}

/// One side of the v2 body: CSR offsets, then the entry buffer as raw bytes.
void PutSideV2(std::ostream& out, const RlcIndex& index, bool out_side) {
  const VertexId n = index.num_vertices();
  uint64_t offset = 0;
  for (VertexId v = 0; v < n; ++v) {
    Put<uint64_t>(out, offset);
    offset += (out_side ? index.Lout(v) : index.Lin(v)).size();
  }
  Put<uint64_t>(out, offset);
  for (VertexId v = 0; v < n; ++v) {
    const auto entries = out_side ? index.Lout(v) : index.Lin(v);
    out.write(reinterpret_cast<const char*>(entries.data()),
              static_cast<std::streamsize>(entries.size() * sizeof(IndexEntry)));
  }
}

struct SideV2 {
  std::vector<uint64_t> offsets;
  std::vector<IndexEntry> entries;
};

// Monotonicity and per-list sortedness are validated once, by the throwing
// AdoptSealed call in ReadIndex; here we only check what AdoptSealed cannot
// see (stream truncation, entry id ranges) plus an allocation bound.
SideV2 GetSideV2(Reader& r, uint64_t n, uint32_t num_mrs,
                 uint64_t num_vertices) {
  SideV2 side;
  side.offsets.resize(n + 1);
  r.ReadRaw(side.offsets.data(), side.offsets.size() * sizeof(uint64_t));
  const uint64_t total = side.offsets.back();
  // A corrupt count must fail cleanly, not OOM: the entry block cannot be
  // larger than what is actually left in the stream.
  if (total > r.Remaining() / sizeof(IndexEntry)) {
    r.Fail("entry count " + std::to_string(total) +
           " exceeds the bytes left in the file");
  }
  side.entries.resize(total);
  r.ReadRaw(side.entries.data(), side.entries.size() * sizeof(IndexEntry));
  for (const IndexEntry& e : side.entries) {
    if (e.mr >= num_mrs || e.hub_aid == 0 || e.hub_aid > num_vertices) {
      r.Fail("entry (hub_aid=" + std::to_string(e.hub_aid) +
             ", mr=" + std::to_string(e.mr) + ") out of range");
    }
  }
  return side;
}

}  // namespace

void WriteIndex(const RlcIndex& index, std::ostream& out, uint32_t version) {
  RLC_REQUIRE(version >= 1 && version <= 5,
              "WriteIndex: unsupported format version " << version);
  RLC_REQUIRE(version >= 4 || index.delta_entries() == 0,
              "WriteIndex: version " << version << " cannot carry the "
                  << index.delta_entries()
                  << " pending delta entries (MergeDeltas() first or write v4+)");
  RLC_REQUIRE(version >= 5 || index.tombstone_entries() == 0,
              "WriteIndex: version " << version << " cannot carry the "
                  << index.tombstone_entries()
                  << " pending tombstones (MergeDeltas() first or write v5)");
  Put(out, kIndexMagic);
  Put<uint32_t>(out, version);
  Put<uint32_t>(out, index.k());
  Put<uint64_t>(out, index.num_vertices());

  for (uint32_t aid = 1; aid <= index.num_vertices(); ++aid) {
    Put<uint32_t>(out, index.VertexOfAid(aid));
  }

  const MrTable& mrs = index.mr_table();
  Put<uint32_t>(out, mrs.size());
  for (MrId id = 0; id < mrs.size(); ++id) {
    const LabelSeq& seq = mrs.Get(id);
    Put<uint8_t>(out, static_cast<uint8_t>(seq.size()));
    for (uint32_t i = 0; i < seq.size(); ++i) Put<uint32_t>(out, seq[i]);
  }

  if (version == 1) {
    for (VertexId v = 0; v < index.num_vertices(); ++v) {
      PutEntriesV1(out, index.Lout(v));
      PutEntriesV1(out, index.Lin(v));
    }
  } else {
    PutSideV2(out, index, /*out_side=*/true);
    PutSideV2(out, index, /*out_side=*/false);
    if (version >= 3) {
      // OutSignature/InSignature fall back to an on-the-fly computation on
      // unsealed indexes, keeping the bytes layout-independent.
      uint64_t checksum = kSignatureChecksumSeed;
      for (VertexId v = 0; v < index.num_vertices(); ++v) {
        const uint64_t sig = index.OutSignature(v);
        checksum = SignatureChecksum(checksum, sig);
        Put<uint64_t>(out, sig);
      }
      for (VertexId v = 0; v < index.num_vertices(); ++v) {
        const uint64_t sig = index.InSignature(v);
        checksum = SignatureChecksum(checksum, sig);
        Put<uint64_t>(out, sig);
      }
      Put<uint64_t>(out, checksum);
    }
    if (version >= 4) {
      // Sparse overlay sections: per side the vertices with pending entries
      // in ascending order. Deterministic, so resaves stay byte-identical.
      // The v4 delta and v5 tombstone sections share this encoding, each
      // with its own trailing checksum.
      auto put_overlay = [&](auto list_of) {
        uint64_t checksum = kSignatureChecksumSeed;
        auto put_side = [&](bool out_side) {
          uint64_t count = 0;
          for (VertexId v = 0; v < index.num_vertices(); ++v) {
            count += list_of(v, out_side).empty() ? 0 : 1;
          }
          Put<uint64_t>(out, count);
          checksum = SignatureChecksum(checksum, count);
          for (VertexId v = 0; v < index.num_vertices(); ++v) {
            const auto entries = list_of(v, out_side);
            if (entries.empty()) continue;
            Put<uint32_t>(out, v);
            Put<uint32_t>(out, static_cast<uint32_t>(entries.size()));
            checksum = SignatureChecksum(checksum, v);
            checksum = SignatureChecksum(checksum, entries.size());
            for (const IndexEntry& e : entries) {
              Put<uint32_t>(out, e.hub_aid);
              Put<uint32_t>(out, e.mr);
              checksum = SignatureChecksum(checksum, e.hub_aid);
              checksum = SignatureChecksum(checksum, e.mr);
            }
          }
        };
        put_side(/*out_side=*/true);
        put_side(/*out_side=*/false);
        Put<uint64_t>(out, checksum);
      };
      put_overlay([&](VertexId v, bool out_side) {
        return out_side ? index.DeltaLout(v) : index.DeltaLin(v);
      });
      if (version >= 5) {
        put_overlay([&](VertexId v, bool out_side) {
          return out_side ? index.TombLout(v) : index.TombLin(v);
        });
      }
    }
  }
}

RlcIndex ReadIndex(std::istream& in) { return ReadIndex(in, "<stream>"); }

RlcIndex ReadIndex(std::istream& in, const std::string& source) {
  Reader r(in, source);
  r.Section("header");
  if (r.Get<uint64_t>() != kIndexMagic) {
    r.Fail("bad magic (not an rlc index file)");
  }
  const uint32_t version = r.Get<uint32_t>();
  if (version < 1 || version > 5) {
    r.Fail("unsupported version " + std::to_string(version));
  }
  const uint32_t k = r.Get<uint32_t>();
  if (k < 1 || k > kMaxK) {
    r.Fail("recursion bound k=" + std::to_string(k) + " out of range (1.." +
           std::to_string(kMaxK) + ")");
  }
  const uint64_t n = r.Get<uint64_t>();
  // Every vertex costs four access-order bytes right after the header; a
  // corrupt count must fail here, not OOM in the index constructor.
  if (n > r.Remaining() / sizeof(uint32_t)) {
    r.Fail("vertex count " + std::to_string(n) +
           " exceeds the bytes left in the file");
  }

  RlcIndex index(static_cast<VertexId>(n), k);

  r.Section("access order");
  std::vector<VertexId> order(n);
  if (n > 0) r.ReadRaw(order.data(), n * sizeof(VertexId));
  // SetAccessOrder range-checks but cannot spot duplicates (they would
  // leave some vertex with access id 0 and skew every aid lookup).
  std::vector<bool> seen(n, false);
  for (const VertexId v : order) {
    if (v >= n || seen[v]) {
      r.Fail("access order is not a permutation (vertex " + std::to_string(v) +
             (v < n ? " appears twice)" : " out of range)"));
    }
    seen[v] = true;
  }
  index.SetAccessOrder(std::move(order));

  r.Section("mr table");
  const uint32_t num_mrs = r.Get<uint32_t>();
  if (num_mrs > r.Remaining()) {  // each MR costs at least its length byte
    r.Fail("mr count " + std::to_string(num_mrs) +
           " exceeds the bytes left in the file");
  }
  for (uint32_t i = 0; i < num_mrs; ++i) {
    const uint8_t len = r.Get<uint8_t>();
    // LabelSeq aborts past kMaxK; untrusted bytes must throw instead.
    if (len > kMaxK) {
      r.Fail("mr length " + std::to_string(len) + " exceeds kMaxK=" +
             std::to_string(kMaxK));
    }
    LabelSeq seq;
    for (uint8_t j = 0; j < len; ++j) seq.PushBack(r.Get<uint32_t>());
    const MrId id = index.mr_table().Intern(seq);
    if (id != i) r.Fail("duplicate MR in table");
  }

  if (version == 1) {
    r.Section("v1 entry lists");
    auto get_list = [&](VertexId v, bool out_side) {
      const uint32_t count = r.Get<uint32_t>();
      if (count > r.Remaining() / (2 * sizeof(uint32_t))) {
        r.Fail("entry count " + std::to_string(count) +
               " exceeds the bytes left in the file");
      }
      uint32_t prev_aid = 0;
      for (uint32_t i = 0; i < count; ++i) {
        const uint32_t aid = r.Get<uint32_t>();
        const MrId mr = r.Get<uint32_t>();
        if (mr >= num_mrs || aid == 0 || aid > n) {
          r.Fail("entry (hub_aid=" + std::to_string(aid) +
                 ", mr=" + std::to_string(mr) + ") out of range");
        }
        // The merge-join query assumes sorted lists; AddOut/AddIn only
        // DCHECK this, which release builds compile out.
        if (aid < prev_aid) r.Fail("entry list not sorted by hub access id");
        prev_aid = aid;
        if (out_side) {
          index.AddOut(v, aid, mr);
        } else {
          index.AddIn(v, aid, mr);
        }
      }
    };
    for (VertexId v = 0; v < n; ++v) {
      get_list(v, /*out_side=*/true);
      get_list(v, /*out_side=*/false);
    }
    index.Seal();
  } else {
    r.Section("out csr");
    SideV2 out_side = GetSideV2(r, n, num_mrs, n);
    r.Section("in csr");
    SideV2 in_side = GetSideV2(r, n, num_mrs, n);
    // v3 appends the vertex signatures; adopting them skips the rebuild
    // pass over both entry buffers. v2 files leave the vectors empty and
    // AdoptSealed rebuilds.
    std::vector<uint64_t> out_sigs;
    std::vector<uint64_t> in_sigs;
    if (version >= 3) {
      r.Section("signatures");
      out_sigs.resize(n);
      in_sigs.resize(n);
      uint64_t checksum = kSignatureChecksumSeed;
      for (auto* sigs : {&out_sigs, &in_sigs}) {
        if (n > 0) r.ReadRaw(sigs->data(), sigs->size() * sizeof(uint64_t));
        for (const uint64_t sig : *sigs) {
          checksum = SignatureChecksum(checksum, sig);
        }
      }
      if (r.Get<uint64_t>() != checksum) {
        r.Fail("signature checksum mismatch");
      }
    }
    r.Section("csr adopt");
    try {
      index.AdoptSealed(std::move(out_side.offsets), std::move(out_side.entries),
                        std::move(in_side.offsets), std::move(in_side.entries),
                        std::move(out_sigs), std::move(in_sigs));
    } catch (const std::invalid_argument& e) {
      r.Fail(e.what());
    }
    if (version >= 4) {
      // Pending overlay sections (v4 deltas, v5 tombstones). Entries are
      // range-checked like v2 entries and re-applied through the overlay
      // mutators — AddDelta* re-applies the (idempotent) signature
      // widening, AddTombstone* verifies the referenced CSR entry exists —
      // and each section's checksum catches in-range corruption.
      auto get_overlay = [&](const char* what, auto apply) {
        r.Section(what);
        uint64_t checksum = kSignatureChecksumSeed;
        auto get_side = [&](bool out_side) {
          const uint64_t count = r.Get<uint64_t>();
          checksum = SignatureChecksum(checksum, count);
          if (count > n) {
            r.Fail("vertex count " + std::to_string(count) + " exceeds " +
                   std::to_string(n));
          }
          for (uint64_t i = 0; i < count; ++i) {
            const uint32_t v = r.Get<uint32_t>();
            const uint32_t len = r.Get<uint32_t>();
            checksum = SignatureChecksum(checksum, v);
            checksum = SignatureChecksum(checksum, len);
            if (v >= n || len == 0 ||
                len > r.Remaining() / sizeof(IndexEntry)) {
              r.Fail("corrupt per-vertex list (vertex " + std::to_string(v) +
                     ", length " + std::to_string(len) + ")");
            }
            for (uint32_t j = 0; j < len; ++j) {
              const uint32_t aid = r.Get<uint32_t>();
              const MrId mr = r.Get<uint32_t>();
              checksum = SignatureChecksum(checksum, aid);
              checksum = SignatureChecksum(checksum, mr);
              if (mr >= num_mrs || aid == 0 || aid > n) {
                r.Fail("entry (hub_aid=" + std::to_string(aid) +
                       ", mr=" + std::to_string(mr) + ") out of range");
              }
              apply(out_side, v, aid, mr);
            }
          }
        };
        get_side(/*out_side=*/true);
        get_side(/*out_side=*/false);
        if (r.Get<uint64_t>() != checksum) {
          r.Fail("section checksum mismatch");
        }
      };
      get_overlay("delta", [&](bool out_side, uint32_t v, uint32_t aid, MrId mr) {
        if (out_side) {
          index.AddDeltaOut(v, aid, mr);
        } else {
          index.AddDeltaIn(v, aid, mr);
        }
      });
      if (version >= 5) {
        get_overlay("tombstone",
                    [&](bool out_side, uint32_t v, uint32_t aid, MrId mr) {
                      try {
                        if (out_side) {
                          index.AddTombstoneOut(v, aid, mr);
                        } else {
                          index.AddTombstoneIn(v, aid, mr);
                        }
                      } catch (const std::invalid_argument& e) {
                        r.Fail(e.what());
                      }
                    });
      }
    }
  }
  return index;
}

void AtomicWriteFile(const std::string& path, std::string_view bytes,
                     const char* failpoint_site) {
  const std::string site(failpoint_site);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw std::runtime_error("AtomicWriteFile: cannot open " + tmp + ": " +
                             std::strerror(errno));
  }
  try {
    FailpointHit(site + ".before_write");
    FailpointWrite(fd, bytes.data(), bytes.size(), tmp.c_str());
    FailpointHit(site + ".after_write");
    FailpointSync(fd, tmp.c_str());
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  FailpointHit(site + ".before_rename");
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("AtomicWriteFile: rename " + tmp + " -> " + path +
                             " failed: " + std::strerror(errno));
  }
  FailpointHit(site + ".after_rename");
  // The rename itself is only durable once the directory entry is synced.
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : (slash == 0 ? "/" : path.substr(0, slash));
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

void SaveIndex(const RlcIndex& index, const std::string& path) {
  std::ostringstream out(std::ios::binary);
  WriteIndex(index, out);
  AtomicWriteFile(path, out.view(), "index_io.save");
}

RlcIndex LoadIndex(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open index file: " + path + ": " +
                             std::strerror(errno));
  }
  return ReadIndex(in, path);
}

namespace {

constexpr uint64_t kComposeCacheMagic = 0x524C43434D50ULL;  // "RLCCMP"
constexpr uint32_t kComposeCacheVersion = 1;

uint64_t BytesChecksum(std::span<const uint8_t> bytes) {
  uint64_t h = kSignatureChecksumSeed;
  for (const uint8_t b : bytes) h = SignatureChecksum(h, b);
  return h;
}

}  // namespace

void WriteCompositionCache(const std::string& path,
                           std::span<const uint8_t> payload) {
  std::string bytes;
  bytes.reserve(payload.size() + 28);
  const auto put = [&bytes](const auto& v) {
    bytes.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put(kComposeCacheMagic);
  put(kComposeCacheVersion);
  put(static_cast<uint64_t>(payload.size()));
  bytes.append(reinterpret_cast<const char*>(payload.data()), payload.size());
  put(BytesChecksum(payload));
  AtomicWriteFile(path, bytes, "compose.save");
}

std::vector<uint8_t> ReadCompositionCache(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open composition cache: " + path + ": " +
                             std::strerror(errno));
  }
  const auto get = [&in, &path](auto& v) {
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    if (!in) {
      throw std::runtime_error("composition cache " + path + ": truncated");
    }
  };
  uint64_t magic = 0;
  uint32_t version = 0;
  uint64_t size = 0;
  get(magic);
  get(version);
  get(size);
  if (magic != kComposeCacheMagic || version != kComposeCacheVersion) {
    throw std::runtime_error("composition cache " + path +
                             ": bad magic or version");
  }
  if (size > RemainingBytes(in)) {
    throw std::runtime_error("composition cache " + path + ": truncated");
  }
  std::vector<uint8_t> payload(size);
  if (size > 0) {
    in.read(reinterpret_cast<char*>(payload.data()),
            static_cast<std::streamsize>(size));
    if (!in) {
      throw std::runtime_error("composition cache " + path + ": truncated");
    }
  }
  uint64_t checksum = 0;
  get(checksum);
  if (checksum != BytesChecksum(payload)) {
    throw std::runtime_error("composition cache " + path +
                             ": checksum mismatch");
  }
  return payload;
}

DurabilityManifest ReadManifest(const std::string& dir) {
  const std::string path = dir + "/" + kManifestFileName;
  std::ifstream in(path);
  if (!in) {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0 && errno == ENOENT) return {};  // fresh
    throw std::runtime_error("ReadManifest: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  std::string word;
  uint32_t format = 0;
  if (!(in >> word >> format) || word != "RLCMANIFEST" || format != 1) {
    throw std::runtime_error("ReadManifest: " + path +
                             " is not a version-1 rlc manifest");
  }
  DurabilityManifest m;
  while (in >> word) {
    SnapshotGeneration g;
    std::string lsn_kw;
    if (word != "gen" || !(in >> g.generation >> lsn_kw >> g.applied_lsn) ||
        lsn_kw != "lsn") {
      throw std::runtime_error("ReadManifest: malformed entry in " + path);
    }
    if (!m.generations.empty() &&
        g.generation >= m.generations.back().generation) {
      throw std::runtime_error("ReadManifest: generations in " + path +
                               " are not newest-first");
    }
    m.generations.push_back(g);
  }
  return m;
}

void CommitManifest(const std::string& dir, const DurabilityManifest& manifest) {
  static obs::Histogram& commit_ns =
      obs::Registry::Global().GetHistogram("snap.manifest_commit_ns");
  obs::ScopedSpan span(commit_ns, "snap.manifest_commit");
  std::string text = "RLCMANIFEST 1\n";
  for (const SnapshotGeneration& g : manifest.generations) {
    text += "gen " + std::to_string(g.generation) + " lsn " +
            std::to_string(g.applied_lsn) + "\n";
  }
  AtomicWriteFile(dir + "/" + kManifestFileName, text, "manifest.commit");
}

}  // namespace rlc
