#include "rlc/core/index_io.h"

#include <fstream>
#include <istream>
#include <ostream>

namespace rlc {

namespace {

constexpr uint64_t kIndexMagic = 0x524C43494458ULL;  // "RLCIDX"

/// Order-sensitive FNV-style fold over the signature words. The signature
/// block is the one v3 section whose corruption AdoptSealed cannot detect
/// (entries are range-checked, offsets monotonicity-checked) yet would
/// silently flip query answers; the checksum turns that into a load error.
uint64_t SignatureChecksum(uint64_t h, uint64_t word) {
  return (h ^ word) * 0x100000001B3ULL;
}
constexpr uint64_t kSignatureChecksumSeed = 0xCBF29CE484222325ULL;

template <typename T>
void Put(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T Get(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("ReadIndex: truncated stream");
  return v;
}

void PutEntriesV1(std::ostream& out, std::span<const IndexEntry> entries) {
  Put<uint32_t>(out, static_cast<uint32_t>(entries.size()));
  for (const IndexEntry& e : entries) {
    Put<uint32_t>(out, e.hub_aid);
    Put<uint32_t>(out, e.mr);
  }
}

/// One side of the v2 body: CSR offsets, then the entry buffer as raw bytes.
void PutSideV2(std::ostream& out, const RlcIndex& index, bool out_side) {
  const VertexId n = index.num_vertices();
  uint64_t offset = 0;
  for (VertexId v = 0; v < n; ++v) {
    Put<uint64_t>(out, offset);
    offset += (out_side ? index.Lout(v) : index.Lin(v)).size();
  }
  Put<uint64_t>(out, offset);
  for (VertexId v = 0; v < n; ++v) {
    const auto entries = out_side ? index.Lout(v) : index.Lin(v);
    out.write(reinterpret_cast<const char*>(entries.data()),
              static_cast<std::streamsize>(entries.size() * sizeof(IndexEntry)));
  }
}

struct SideV2 {
  std::vector<uint64_t> offsets;
  std::vector<IndexEntry> entries;
};

/// Bytes left in `in` from the current position; UINT64_MAX when the stream
/// is not seekable.
uint64_t RemainingBytes(std::istream& in) {
  const std::istream::pos_type pos = in.tellg();
  if (pos == std::istream::pos_type(-1)) return UINT64_MAX;
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(pos);
  if (end == std::istream::pos_type(-1) || end < pos) return UINT64_MAX;
  return static_cast<uint64_t>(end - pos);
}

// Monotonicity and per-list sortedness are validated once, by the throwing
// AdoptSealed call in ReadIndex; here we only check what AdoptSealed cannot
// see (stream truncation, entry id ranges) plus an allocation bound.
SideV2 GetSideV2(std::istream& in, uint64_t n, uint32_t num_mrs,
                 uint64_t num_vertices) {
  SideV2 side;
  side.offsets.resize(n + 1);
  in.read(reinterpret_cast<char*>(side.offsets.data()),
          static_cast<std::streamsize>(side.offsets.size() * sizeof(uint64_t)));
  if (!in) throw std::runtime_error("ReadIndex: truncated offset block");
  const uint64_t total = side.offsets.back();
  // A corrupt count must fail cleanly, not OOM: the entry block cannot be
  // larger than what is actually left in the stream.
  if (total > RemainingBytes(in) / sizeof(IndexEntry)) {
    throw std::runtime_error("ReadIndex: corrupt offsets");
  }
  side.entries.resize(total);
  in.read(reinterpret_cast<char*>(side.entries.data()),
          static_cast<std::streamsize>(side.entries.size() * sizeof(IndexEntry)));
  if (!in) throw std::runtime_error("ReadIndex: truncated entry block");
  for (const IndexEntry& e : side.entries) {
    if (e.mr >= num_mrs || e.hub_aid == 0 || e.hub_aid > num_vertices) {
      throw std::runtime_error("ReadIndex: corrupt entry");
    }
  }
  return side;
}

}  // namespace

void WriteIndex(const RlcIndex& index, std::ostream& out, uint32_t version) {
  RLC_REQUIRE(version >= 1 && version <= 5,
              "WriteIndex: unsupported format version " << version);
  RLC_REQUIRE(version >= 4 || index.delta_entries() == 0,
              "WriteIndex: version " << version << " cannot carry the "
                  << index.delta_entries()
                  << " pending delta entries (MergeDeltas() first or write v4+)");
  RLC_REQUIRE(version >= 5 || index.tombstone_entries() == 0,
              "WriteIndex: version " << version << " cannot carry the "
                  << index.tombstone_entries()
                  << " pending tombstones (MergeDeltas() first or write v5)");
  Put(out, kIndexMagic);
  Put<uint32_t>(out, version);
  Put<uint32_t>(out, index.k());
  Put<uint64_t>(out, index.num_vertices());

  for (uint32_t aid = 1; aid <= index.num_vertices(); ++aid) {
    Put<uint32_t>(out, index.VertexOfAid(aid));
  }

  const MrTable& mrs = index.mr_table();
  Put<uint32_t>(out, mrs.size());
  for (MrId id = 0; id < mrs.size(); ++id) {
    const LabelSeq& seq = mrs.Get(id);
    Put<uint8_t>(out, static_cast<uint8_t>(seq.size()));
    for (uint32_t i = 0; i < seq.size(); ++i) Put<uint32_t>(out, seq[i]);
  }

  if (version == 1) {
    for (VertexId v = 0; v < index.num_vertices(); ++v) {
      PutEntriesV1(out, index.Lout(v));
      PutEntriesV1(out, index.Lin(v));
    }
  } else {
    PutSideV2(out, index, /*out_side=*/true);
    PutSideV2(out, index, /*out_side=*/false);
    if (version >= 3) {
      // OutSignature/InSignature fall back to an on-the-fly computation on
      // unsealed indexes, keeping the bytes layout-independent.
      uint64_t checksum = kSignatureChecksumSeed;
      for (VertexId v = 0; v < index.num_vertices(); ++v) {
        const uint64_t sig = index.OutSignature(v);
        checksum = SignatureChecksum(checksum, sig);
        Put<uint64_t>(out, sig);
      }
      for (VertexId v = 0; v < index.num_vertices(); ++v) {
        const uint64_t sig = index.InSignature(v);
        checksum = SignatureChecksum(checksum, sig);
        Put<uint64_t>(out, sig);
      }
      Put<uint64_t>(out, checksum);
    }
    if (version >= 4) {
      // Sparse overlay sections: per side the vertices with pending entries
      // in ascending order. Deterministic, so resaves stay byte-identical.
      // The v4 delta and v5 tombstone sections share this encoding, each
      // with its own trailing checksum.
      auto put_overlay = [&](auto list_of) {
        uint64_t checksum = kSignatureChecksumSeed;
        auto put_side = [&](bool out_side) {
          uint64_t count = 0;
          for (VertexId v = 0; v < index.num_vertices(); ++v) {
            count += list_of(v, out_side).empty() ? 0 : 1;
          }
          Put<uint64_t>(out, count);
          checksum = SignatureChecksum(checksum, count);
          for (VertexId v = 0; v < index.num_vertices(); ++v) {
            const auto entries = list_of(v, out_side);
            if (entries.empty()) continue;
            Put<uint32_t>(out, v);
            Put<uint32_t>(out, static_cast<uint32_t>(entries.size()));
            checksum = SignatureChecksum(checksum, v);
            checksum = SignatureChecksum(checksum, entries.size());
            for (const IndexEntry& e : entries) {
              Put<uint32_t>(out, e.hub_aid);
              Put<uint32_t>(out, e.mr);
              checksum = SignatureChecksum(checksum, e.hub_aid);
              checksum = SignatureChecksum(checksum, e.mr);
            }
          }
        };
        put_side(/*out_side=*/true);
        put_side(/*out_side=*/false);
        Put<uint64_t>(out, checksum);
      };
      put_overlay([&](VertexId v, bool out_side) {
        return out_side ? index.DeltaLout(v) : index.DeltaLin(v);
      });
      if (version >= 5) {
        put_overlay([&](VertexId v, bool out_side) {
          return out_side ? index.TombLout(v) : index.TombLin(v);
        });
      }
    }
  }
}

RlcIndex ReadIndex(std::istream& in) {
  if (Get<uint64_t>(in) != kIndexMagic) {
    throw std::runtime_error("ReadIndex: bad magic (not an rlc index file)");
  }
  const uint32_t version = Get<uint32_t>(in);
  if (version < 1 || version > 5) {
    throw std::runtime_error("ReadIndex: unsupported version");
  }
  const uint32_t k = Get<uint32_t>(in);
  const uint64_t n = Get<uint64_t>(in);

  RlcIndex index(static_cast<VertexId>(n), k);

  std::vector<VertexId> order(n);
  for (uint64_t i = 0; i < n; ++i) order[i] = Get<uint32_t>(in);
  index.SetAccessOrder(std::move(order));

  const uint32_t num_mrs = Get<uint32_t>(in);
  for (uint32_t i = 0; i < num_mrs; ++i) {
    const uint8_t len = Get<uint8_t>(in);
    LabelSeq seq;
    for (uint8_t j = 0; j < len; ++j) seq.PushBack(Get<uint32_t>(in));
    const MrId id = index.mr_table().Intern(seq);
    if (id != i) throw std::runtime_error("ReadIndex: corrupt MR table");
  }

  if (version == 1) {
    for (VertexId v = 0; v < n; ++v) {
      const uint32_t out_count = Get<uint32_t>(in);
      for (uint32_t i = 0; i < out_count; ++i) {
        const uint32_t aid = Get<uint32_t>(in);
        const MrId mr = Get<uint32_t>(in);
        if (mr >= num_mrs) throw std::runtime_error("ReadIndex: corrupt entry");
        index.AddOut(v, aid, mr);
      }
      const uint32_t in_count = Get<uint32_t>(in);
      for (uint32_t i = 0; i < in_count; ++i) {
        const uint32_t aid = Get<uint32_t>(in);
        const MrId mr = Get<uint32_t>(in);
        if (mr >= num_mrs) throw std::runtime_error("ReadIndex: corrupt entry");
        index.AddIn(v, aid, mr);
      }
    }
    index.Seal();
  } else {
    SideV2 out_side = GetSideV2(in, n, num_mrs, n);
    SideV2 in_side = GetSideV2(in, n, num_mrs, n);
    // v3 appends the vertex signatures; adopting them skips the rebuild
    // pass over both entry buffers. v2 files leave the vectors empty and
    // AdoptSealed rebuilds.
    std::vector<uint64_t> out_sigs;
    std::vector<uint64_t> in_sigs;
    if (version >= 3) {
      out_sigs.resize(n);
      in_sigs.resize(n);
      uint64_t checksum = kSignatureChecksumSeed;
      for (auto* sigs : {&out_sigs, &in_sigs}) {
        in.read(reinterpret_cast<char*>(sigs->data()),
                static_cast<std::streamsize>(sigs->size() * sizeof(uint64_t)));
        if (!in) throw std::runtime_error("ReadIndex: truncated signatures");
        for (const uint64_t sig : *sigs) {
          checksum = SignatureChecksum(checksum, sig);
        }
      }
      if (Get<uint64_t>(in) != checksum) {
        throw std::runtime_error("ReadIndex: corrupt signatures");
      }
    }
    try {
      index.AdoptSealed(std::move(out_side.offsets), std::move(out_side.entries),
                        std::move(in_side.offsets), std::move(in_side.entries),
                        std::move(out_sigs), std::move(in_sigs));
    } catch (const std::invalid_argument& e) {
      throw std::runtime_error(std::string("ReadIndex: ") + e.what());
    }
    if (version >= 4) {
      // Pending overlay sections (v4 deltas, v5 tombstones). Entries are
      // range-checked like v2 entries and re-applied through the overlay
      // mutators — AddDelta* re-applies the (idempotent) signature
      // widening, AddTombstone* verifies the referenced CSR entry exists —
      // and each section's checksum catches in-range corruption.
      auto get_overlay = [&](const char* what, auto apply) {
        uint64_t checksum = kSignatureChecksumSeed;
        auto get_side = [&](bool out_side) {
          const uint64_t count = Get<uint64_t>(in);
          checksum = SignatureChecksum(checksum, count);
          if (count > n) {
            throw std::runtime_error(std::string("ReadIndex: corrupt ") +
                                     what + " count");
          }
          for (uint64_t i = 0; i < count; ++i) {
            const uint32_t v = Get<uint32_t>(in);
            const uint32_t len = Get<uint32_t>(in);
            checksum = SignatureChecksum(checksum, v);
            checksum = SignatureChecksum(checksum, len);
            if (v >= n || len == 0 ||
                len > RemainingBytes(in) / sizeof(IndexEntry)) {
              throw std::runtime_error(std::string("ReadIndex: corrupt ") +
                                       what + " list");
            }
            for (uint32_t j = 0; j < len; ++j) {
              const uint32_t aid = Get<uint32_t>(in);
              const MrId mr = Get<uint32_t>(in);
              checksum = SignatureChecksum(checksum, aid);
              checksum = SignatureChecksum(checksum, mr);
              if (mr >= num_mrs || aid == 0 || aid > n) {
                throw std::runtime_error(std::string("ReadIndex: corrupt ") +
                                         what + " entry");
              }
              apply(out_side, v, aid, mr);
            }
          }
        };
        get_side(/*out_side=*/true);
        get_side(/*out_side=*/false);
        if (Get<uint64_t>(in) != checksum) {
          throw std::runtime_error(std::string("ReadIndex: corrupt ") + what +
                                   " section");
        }
      };
      get_overlay("delta", [&](bool out_side, uint32_t v, uint32_t aid, MrId mr) {
        if (out_side) {
          index.AddDeltaOut(v, aid, mr);
        } else {
          index.AddDeltaIn(v, aid, mr);
        }
      });
      if (version >= 5) {
        get_overlay("tombstone",
                    [&](bool out_side, uint32_t v, uint32_t aid, MrId mr) {
                      try {
                        if (out_side) {
                          index.AddTombstoneOut(v, aid, mr);
                        } else {
                          index.AddTombstoneIn(v, aid, mr);
                        }
                      } catch (const std::invalid_argument& e) {
                        throw std::runtime_error(std::string("ReadIndex: ") +
                                                 e.what());
                      }
                    });
      }
    }
  }
  return index;
}

void SaveIndex(const RlcIndex& index, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open file for writing: " + path);
  WriteIndex(index, out);
}

RlcIndex LoadIndex(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open index file: " + path);
  return ReadIndex(in);
}

}  // namespace rlc
