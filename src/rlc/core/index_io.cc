#include "rlc/core/index_io.h"

#include <fstream>
#include <istream>
#include <ostream>

namespace rlc {

namespace {

constexpr uint64_t kIndexMagic = 0x524C43494458ULL;  // "RLCIDX"
constexpr uint32_t kVersion = 1;

template <typename T>
void Put(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T Get(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("ReadIndex: truncated stream");
  return v;
}

void PutEntries(std::ostream& out, const std::vector<IndexEntry>& entries) {
  Put<uint32_t>(out, static_cast<uint32_t>(entries.size()));
  for (const IndexEntry& e : entries) {
    Put<uint32_t>(out, e.hub_aid);
    Put<uint32_t>(out, e.mr);
  }
}

}  // namespace

void WriteIndex(const RlcIndex& index, std::ostream& out) {
  Put(out, kIndexMagic);
  Put(out, kVersion);
  Put<uint32_t>(out, index.k());
  Put<uint64_t>(out, index.num_vertices());

  for (uint32_t aid = 1; aid <= index.num_vertices(); ++aid) {
    Put<uint32_t>(out, index.VertexOfAid(aid));
  }

  const MrTable& mrs = index.mr_table();
  Put<uint32_t>(out, mrs.size());
  for (MrId id = 0; id < mrs.size(); ++id) {
    const LabelSeq& seq = mrs.Get(id);
    Put<uint8_t>(out, static_cast<uint8_t>(seq.size()));
    for (uint32_t i = 0; i < seq.size(); ++i) Put<uint32_t>(out, seq[i]);
  }

  for (VertexId v = 0; v < index.num_vertices(); ++v) {
    PutEntries(out, index.Lout(v));
    PutEntries(out, index.Lin(v));
  }
}

RlcIndex ReadIndex(std::istream& in) {
  if (Get<uint64_t>(in) != kIndexMagic) {
    throw std::runtime_error("ReadIndex: bad magic (not an rlc index file)");
  }
  if (Get<uint32_t>(in) != kVersion) {
    throw std::runtime_error("ReadIndex: unsupported version");
  }
  const uint32_t k = Get<uint32_t>(in);
  const uint64_t n = Get<uint64_t>(in);

  RlcIndex index(static_cast<VertexId>(n), k);

  std::vector<VertexId> order(n);
  for (uint64_t i = 0; i < n; ++i) order[i] = Get<uint32_t>(in);
  index.SetAccessOrder(std::move(order));

  const uint32_t num_mrs = Get<uint32_t>(in);
  for (uint32_t i = 0; i < num_mrs; ++i) {
    const uint8_t len = Get<uint8_t>(in);
    LabelSeq seq;
    for (uint8_t j = 0; j < len; ++j) seq.PushBack(Get<uint32_t>(in));
    const MrId id = index.mr_table().Intern(seq);
    if (id != i) throw std::runtime_error("ReadIndex: corrupt MR table");
  }

  for (VertexId v = 0; v < n; ++v) {
    const uint32_t out_count = Get<uint32_t>(in);
    for (uint32_t i = 0; i < out_count; ++i) {
      const uint32_t aid = Get<uint32_t>(in);
      const MrId mr = Get<uint32_t>(in);
      if (mr >= num_mrs) throw std::runtime_error("ReadIndex: corrupt entry");
      index.AddOut(v, aid, mr);
    }
    const uint32_t in_count = Get<uint32_t>(in);
    for (uint32_t i = 0; i < in_count; ++i) {
      const uint32_t aid = Get<uint32_t>(in);
      const MrId mr = Get<uint32_t>(in);
      if (mr >= num_mrs) throw std::runtime_error("ReadIndex: corrupt entry");
      index.AddIn(v, aid, mr);
    }
  }
  return index;
}

void SaveIndex(const RlcIndex& index, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open file for writing: " + path);
  WriteIndex(index, out);
}

RlcIndex LoadIndex(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open index file: " + path);
  return ReadIndex(in);
}

}  // namespace rlc
