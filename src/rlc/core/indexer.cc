#include "rlc/core/indexer.h"

#include <algorithm>
#include <numeric>

#include "rlc/util/rng.h"
#include "rlc/util/timer.h"

namespace rlc {

RlcIndexBuilder::RlcIndexBuilder(const DiGraph& g, IndexerOptions options)
    : g_(g),
      options_(options),
      // PR3's completeness argument (paper Lemma 5) relies on PR1 and PR2
      // being active; silently degrade rather than build an unsound index.
      pr3_effective_(options.pr3 && options.pr1 && options.pr2),
      index_(g.num_vertices(), options.k),
      visit_stamp_(static_cast<uint64_t>(g.num_vertices()) * options.k, 0) {
  RLC_REQUIRE(options.strategy == KbsStrategy::kEager || 2 * options.k <= kMaxK,
              "RlcIndexBuilder: lazy KBS enumerates sequences of length 2k and"
              " requires 2k <= kMaxK=" << kMaxK);
}

std::vector<VertexId> RlcIndexBuilder::ComputeOrder(const DiGraph& g,
                                                    VertexOrdering ordering,
                                                    uint64_t seed) {
  std::vector<VertexId> order(g.num_vertices());
  std::iota(order.begin(), order.end(), 0);
  switch (ordering) {
    case VertexOrdering::kInOut: {
      // IN-OUT strategy: descending (|out(v)|+1)*(|in(v)|+1), ties by id.
      std::vector<uint64_t> weight(g.num_vertices());
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        weight[v] = (g.OutDegree(v) + 1) * (g.InDegree(v) + 1);
      }
      std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
        return weight[a] != weight[b] ? weight[a] > weight[b] : a < b;
      });
      break;
    }
    case VertexOrdering::kVertexId:
      break;
    case VertexOrdering::kRandom: {
      Rng rng(seed);
      for (size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng.Below(i)]);
      }
      break;
    }
  }
  return order;
}

RlcIndex RlcIndexBuilder::Build() {
  RLC_CHECK_MSG(!built_, "RlcIndexBuilder::Build() called twice");
  built_ = true;

  Timer timer;
  index_.SetAccessOrder(ComputeOrder(g_, options_.ordering, options_.seed));

  for (uint32_t aid = 1; aid <= g_.num_vertices(); ++aid) {
    const VertexId v = index_.VertexOfAid(aid);
    Kbs(v, /*backward=*/true);
    Kbs(v, /*backward=*/false);
  }

  stats_.build_seconds = timer.ElapsedSeconds();
  return std::move(index_);
}

RlcIndexBuilder::InsertResult RlcIndexBuilder::Insert(VertexId y, VertexId hub,
                                                      const LabelSeq& mr,
                                                      bool backward) {
  // PR2: entries are only recorded against hubs that precede the visited
  // vertex in the access order (equal ids = self entries are allowed).
  if (options_.pr2 && index_.AccessId(hub) > index_.AccessId(y)) {
    ++stats_.pruned_pr2;
    return InsertResult::kPrunedPr2;
  }

  const MrId id = index_.mr_table().Intern(mr);
  // For a backward KBS the witnessed path is y ⇝ hub; forward is hub ⇝ y.
  const VertexId s = backward ? y : hub;
  const VertexId t = backward ? hub : y;

  if (options_.pr1) {
    // PR1: skip entries answerable from the current index snapshot. This
    // subsumes exact-duplicate suppression (Case 2 of the query).
    if (index_.QueryInterned(s, t, id)) {
      ++stats_.pruned_pr1;
      return InsertResult::kPrunedPr1;
    }
  } else {
    // Index entries are sets: never store exact duplicates even when PR1 is
    // disabled (ablation builds would otherwise blow up unboundedly).
    const bool dup = backward ? index_.HasOutEntry(y, index_.AccessId(hub), id)
                              : index_.HasInEntry(y, index_.AccessId(hub), id);
    if (dup) {
      ++stats_.pruned_duplicate;
      return InsertResult::kDuplicate;
    }
  }

  if (backward) {
    index_.AddOut(y, index_.AccessId(hub), id);
  } else {
    index_.AddIn(y, index_.AccessId(hub), id);
  }
  ++stats_.entries_inserted;
  return InsertResult::kInserted;
}

void RlcIndexBuilder::Kbs(VertexId hub, bool backward) {
  // ---- Phase 1: kernel search over (vertex, seq) states ----
  // Eager: BFS to depth k, every k-bounded MR becomes a kernel candidate.
  // Lazy: BFS to depth 2k, kernels are extracted from the (unique)
  // kernel/tail decomposition of full-depth sequences (Theorem 1).
  const bool lazy = options_.strategy == KbsStrategy::kLazy;
  const uint32_t max_depth = lazy ? 2 * options_.k : options_.k;

  search_queue_.clear();
  seen_.clear();
  frontier_.clear();

  search_queue_.push_back({hub, LabelSeq{}});
  seen_.insert(search_queue_.front());

  for (size_t head = 0; head < search_queue_.size(); ++head) {
    // Copy: growing the queue may reallocate underneath a reference.
    const VertexSeq cur = search_queue_[head];
    const auto edges = backward ? g_.InEdges(cur.v) : g_.OutEdges(cur.v);
    for (const LabeledNeighbor& nb : edges) {
      VertexSeq next{nb.v, cur.seq};
      if (backward) {
        next.seq.PushFront(nb.label);  // seq' = λ(e) ∘ seq
      } else {
        next.seq.PushBack(nb.label);  // seq' = seq ∘ λ(e)
      }
      if (!seen_.insert(next).second) continue;
      ++stats_.kernel_search_states;

      const LabelSeq mr = MinimumRepeatSeq(next.seq);
      if (mr.size() <= options_.k) {
        // Theorem 1 cases 1-2: a k-bounded MR witnessed by this very path.
        // The insert result is deliberately ignored: PR3 does not apply to
        // the kernel-search phase (paper §V-B).
        Insert(nb.v, hub, mr, backward);
        if (!lazy) {
          // Eager kernel candidate: paths reaching nb.v read mr^z, so the
          // continuation expects mr[|mr|] backward / mr[1] forward.
          frontier_[mr].push_back(
              {nb.v, backward ? mr.size() : 1});
        }
      }

      if (next.seq.size() < max_depth) {
        search_queue_.push_back(next);
      } else if (lazy) {
        // Depth 2k reached: extract the provably valid kernel (Theorem 1
        // case 3). Backward sequences decompose in suffix form
        // (head ∘ kernel^h), forward ones in prefix form (kernel^h ∘ tail).
        const auto kt = backward ? DecomposeKernelSuffix(next.seq.labels())
                                 : DecomposeKernel(next.seq.labels());
        if (kt.has_value() && kt->kernel.size() <= options_.k) {
          const LabelSeq kernel(std::span<const Label>(kt->kernel));
          const auto rem = static_cast<uint32_t>(kt->tail.size());
          // Next expected 1-based position in the kernel: walking backward
          // the label preceding the head; walking forward the label after
          // the consumed tail prefix.
          const uint32_t position =
              backward ? kernel.size() - rem : rem + 1;
          frontier_[kernel].push_back({nb.v, position});
        }
      }
    }
  }

  // ---- Phase 2: one kernel-guided BFS per kernel candidate ----
  for (const auto& [kernel, frontier] : frontier_) {
    KernelBfs(hub, kernel, frontier, backward);
  }
}

void RlcIndexBuilder::KernelBfs(VertexId hub, const LabelSeq& kernel,
                                const std::vector<FrontierSeed>& frontier,
                                bool backward) {
  ++stats_.kernel_bfs_runs;
  ++epoch_;
  bfs_queue_.clear();

  const uint32_t len = kernel.size();
  // Each seed carries the 1-based position of the next expected kernel
  // label: eager seeds sit on a kernel boundary (len backward / 1 forward),
  // lazy seeds may start mid-kernel when the depth-2k sequence ends in a
  // partial copy.
  for (const FrontierSeed& seed : frontier) {
    if (!MarkVisited(seed.v, seed.position)) continue;  // lists may repeat
    bfs_queue_.push_back({seed.v, seed.position});
  }

  for (size_t head = 0; head < bfs_queue_.size(); ++head) {
    const auto [x, pos] = bfs_queue_[head];
    const Label expected = kernel[pos - 1];
    // Completing position 1 backward (or len forward) closes a full copy of
    // the kernel: the path seen so far is kernel^m and an entry is due.
    const bool boundary = backward ? (pos == 1) : (pos == len);
    const uint32_t next_pos = backward ? (pos == 1 ? len : pos - 1)
                                       : (pos == len ? 1 : pos + 1);

    const auto edges = backward ? g_.InEdgesWithLabel(x, expected)
                                : g_.OutEdgesWithLabel(x, expected);
    for (const LabeledNeighbor& nb : edges) {
      const VertexId y = nb.v;
      if (WasVisited(y, next_pos)) continue;
      if (boundary) {
        const InsertResult r = Insert(y, hub, kernel, backward);
        if (pr3_effective_ && r != InsertResult::kInserted) {
          // PR3: the entry was derivable, so everything beyond y is
          // derivable too — do not expand past it.
          continue;
        }
      }
      MarkVisited(y, next_pos);
      bfs_queue_.push_back({y, next_pos});
      ++stats_.kernel_bfs_visits;
    }
  }
}

RlcIndex BuildRlcIndex(const DiGraph& g, uint32_t k) {
  IndexerOptions options;
  options.k = k;
  RlcIndexBuilder builder(g, options);
  return builder.Build();
}

}  // namespace rlc
