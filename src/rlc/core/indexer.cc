#include "rlc/core/indexer.h"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "rlc/util/rng.h"
#include "rlc/util/thread_pool.h"
#include "rlc/util/timer.h"

namespace rlc {

RlcIndexBuilder::RlcIndexBuilder(const DiGraph& g, IndexerOptions options)
    : g_(g),
      options_(options),
      // PR3's completeness argument (paper Lemma 5) relies on PR1 and PR2
      // being active; silently degrade rather than build an unsound index.
      pr3_effective_(options.pr3 && options.pr1 && options.pr2),
      index_(g.num_vertices(), options.k) {
  RLC_REQUIRE(options.strategy == KbsStrategy::kEager || 2 * options.k <= kMaxK,
              "RlcIndexBuilder: lazy KBS enumerates sequences of length 2k and"
              " requires 2k <= kMaxK=" << kMaxK);
}

void RlcIndexBuilder::SearchContext::EnsureSized(uint64_t num_vertices,
                                                 uint32_t k, bool with_slots) {
  const uint64_t states = num_vertices * k;
  if (visit_stamp.size() < states) visit_stamp.assign(states, 0);
  if (with_slots && slot_of_state.size() < states) slot_of_state.resize(states);
}

std::vector<VertexId> RlcIndexBuilder::ComputeOrder(const DiGraph& g,
                                                    VertexOrdering ordering,
                                                    uint64_t seed) {
  std::vector<VertexId> order(g.num_vertices());
  std::iota(order.begin(), order.end(), 0);
  switch (ordering) {
    case VertexOrdering::kInOut: {
      // IN-OUT strategy: descending (|out(v)|+1)*(|in(v)|+1), ties by id.
      std::vector<uint64_t> weight(g.num_vertices());
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        weight[v] = (g.OutDegree(v) + 1) * (g.InDegree(v) + 1);
      }
      std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
        return weight[a] != weight[b] ? weight[a] > weight[b] : a < b;
      });
      break;
    }
    case VertexOrdering::kVertexId:
      break;
    case VertexOrdering::kRandom: {
      Rng rng(seed);
      for (size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng.Below(i)]);
      }
      break;
    }
  }
  return order;
}

RlcIndex RlcIndexBuilder::Build() {
  RLC_CHECK_MSG(!built_, "RlcIndexBuilder::Build() called twice");
  built_ = true;

  Timer timer;
  index_.SetAccessOrder(ComputeOrder(g_, options_.ordering, options_.seed));

  const uint32_t threads = ThreadPool::ResolveThreads(options_.num_threads);
  if (threads <= 1 || g_.num_vertices() == 0) {
    main_ctx_.EnsureSized(g_.num_vertices(), options_.k, /*with_slots=*/false);
    for (uint32_t aid = 1; aid <= g_.num_vertices(); ++aid) {
      const VertexId v = index_.VertexOfAid(aid);
      Kbs(v, /*backward=*/true);
      Kbs(v, /*backward=*/false);
    }
    stats_.kernel_search_states += main_ctx_.kernel_search_states;
  } else {
    ParallelBuild(threads);
  }

  if (options_.seal) {
    Timer seal_timer;
    index_.Seal();  // CSR flatten + vertex signature build (rlc_index.h)
    stats_.seal_seconds = seal_timer.ElapsedSeconds();
  }
  stats_.build_seconds = timer.ElapsedSeconds();
  return std::move(index_);
}

RlcIndexBuilder::InsertResult RlcIndexBuilder::Insert(VertexId y, VertexId hub,
                                                      const LabelSeq& mr,
                                                      bool backward) {
  // PR2: entries are only recorded against hubs that precede the visited
  // vertex in the access order (equal ids = self entries are allowed).
  if (options_.pr2 && index_.AccessId(hub) > index_.AccessId(y)) {
    ++stats_.pruned_pr2;
    return InsertResult::kPrunedPr2;
  }

  const MrId id = index_.mr_table().Intern(mr);
  // For a backward KBS the witnessed path is y ⇝ hub; forward is hub ⇝ y.
  const VertexId s = backward ? y : hub;
  const VertexId t = backward ? hub : y;

  if (options_.pr1) {
    // PR1: skip entries answerable from the current index snapshot. This
    // subsumes exact-duplicate suppression (Case 2 of the query).
    if (index_.QueryInterned(s, t, id)) {
      ++stats_.pruned_pr1;
      return InsertResult::kPrunedPr1;
    }
  } else {
    // Index entries are sets: never store exact duplicates even when PR1 is
    // disabled (ablation builds would otherwise blow up unboundedly).
    const bool dup = backward ? index_.HasOutEntry(y, index_.AccessId(hub), id)
                              : index_.HasInEntry(y, index_.AccessId(hub), id);
    if (dup) {
      ++stats_.pruned_duplicate;
      return InsertResult::kDuplicate;
    }
  }

  if (backward) {
    index_.AddOut(y, index_.AccessId(hub), id);
  } else {
    index_.AddIn(y, index_.AccessId(hub), id);
  }
  ++stats_.entries_inserted;
  return InsertResult::kInserted;
}

template <typename AttemptFn>
void RlcIndexBuilder::KernelSearch(VertexId hub, bool backward,
                                   SearchContext& ctx, AttemptFn&& on_attempt) {
  // Eager: BFS to depth k, every k-bounded MR becomes a kernel candidate.
  // Lazy: BFS to depth 2k, kernels are extracted from the (unique)
  // kernel/tail decomposition of full-depth sequences (Theorem 1).
  const bool lazy = options_.strategy == KbsStrategy::kLazy;
  const uint32_t max_depth = lazy ? 2 * options_.k : options_.k;

  ctx.search_queue.clear();
  ctx.seen.clear();
  ctx.frontier.clear();

  ctx.search_queue.push_back({hub, LabelSeq{}});
  ctx.seen.insert(ctx.search_queue.front());

  for (size_t head = 0; head < ctx.search_queue.size(); ++head) {
    // Copy: growing the queue may reallocate underneath a reference.
    const VertexSeq cur = ctx.search_queue[head];
    const auto edges = backward ? g_.InEdges(cur.v) : g_.OutEdges(cur.v);
    for (const LabeledNeighbor& nb : edges) {
      VertexSeq next{nb.v, cur.seq};
      if (backward) {
        next.seq.PushFront(nb.label);  // seq' = λ(e) ∘ seq
      } else {
        next.seq.PushBack(nb.label);  // seq' = seq ∘ λ(e)
      }
      if (!ctx.seen.insert(next).second) continue;
      ++ctx.kernel_search_states;

      const LabelSeq mr = MinimumRepeatSeq(next.seq);
      if (mr.size() <= options_.k) {
        // Theorem 1 cases 1-2: a k-bounded MR witnessed by this very path.
        // The attempt result is deliberately ignored: PR3 does not apply to
        // the kernel-search phase (paper §V-B).
        on_attempt(nb.v, mr);
        if (!lazy) {
          // Eager kernel candidate: paths reaching nb.v read mr^z, so the
          // continuation expects mr[|mr|] backward / mr[1] forward.
          ctx.frontier[mr].push_back({nb.v, backward ? mr.size() : 1});
        }
      }

      if (next.seq.size() < max_depth) {
        ctx.search_queue.push_back(next);
      } else if (lazy) {
        // Depth 2k reached: extract the provably valid kernel (Theorem 1
        // case 3). Backward sequences decompose in suffix form
        // (head ∘ kernel^h), forward ones in prefix form (kernel^h ∘ tail).
        const auto kt = backward ? DecomposeKernelSuffix(next.seq.labels())
                                 : DecomposeKernel(next.seq.labels());
        if (kt.has_value() && kt->kernel.size() <= options_.k) {
          const LabelSeq kernel(std::span<const Label>(kt->kernel));
          const auto rem = static_cast<uint32_t>(kt->tail.size());
          // Next expected 1-based position in the kernel: walking backward
          // the label preceding the head; walking forward the label after
          // the consumed tail prefix.
          const uint32_t position =
              backward ? kernel.size() - rem : rem + 1;
          ctx.frontier[kernel].push_back({nb.v, position});
        }
      }
    }
  }
}

void RlcIndexBuilder::Kbs(VertexId hub, bool backward) {
  KernelSearch(hub, backward, main_ctx_,
               [&](VertexId y, const LabelSeq& mr) { Insert(y, hub, mr, backward); });

  // ---- Phase 2: one kernel-guided BFS per kernel candidate ----
  for (const auto& [kernel, frontier] : main_ctx_.frontier) {
    KernelBfs(hub, kernel, frontier, backward);
  }
}

void RlcIndexBuilder::KernelBfs(VertexId hub, const LabelSeq& kernel,
                                const std::vector<FrontierSeed>& frontier,
                                bool backward) {
  SearchContext& ctx = main_ctx_;
  ++stats_.kernel_bfs_runs;
  ++ctx.epoch;
  ctx.bfs_queue.clear();

  const uint32_t len = kernel.size();
  // Each seed carries the 1-based position of the next expected kernel
  // label: eager seeds sit on a kernel boundary (len backward / 1 forward),
  // lazy seeds may start mid-kernel when the depth-2k sequence ends in a
  // partial copy.
  for (const FrontierSeed& seed : frontier) {
    if (!MarkVisited(ctx, seed.v, seed.position)) continue;  // lists may repeat
    ctx.bfs_queue.push_back({seed.v, seed.position});
  }

  for (size_t head = 0; head < ctx.bfs_queue.size(); ++head) {
    const auto [x, pos] = ctx.bfs_queue[head];
    const Label expected = kernel[pos - 1];
    // Completing position 1 backward (or len forward) closes a full copy of
    // the kernel: the path seen so far is kernel^m and an entry is due.
    const bool boundary = backward ? (pos == 1) : (pos == len);
    const uint32_t next_pos = backward ? (pos == 1 ? len : pos - 1)
                                       : (pos == len ? 1 : pos + 1);

    const auto edges = backward ? g_.InEdgesWithLabel(x, expected)
                                : g_.OutEdgesWithLabel(x, expected);
    for (const LabeledNeighbor& nb : edges) {
      const VertexId y = nb.v;
      if (WasVisited(ctx, y, next_pos)) continue;
      if (boundary) {
        const InsertResult r = Insert(y, hub, kernel, backward);
        if (pr3_effective_ && r != InsertResult::kInserted) {
          // PR3: the entry was derivable, so everything beyond y is
          // derivable too — do not expand past it.
          continue;
        }
      }
      MarkVisited(ctx, y, next_pos);
      ctx.bfs_queue.push_back({y, next_pos});
      ++stats_.kernel_bfs_visits;
    }
  }
}

// ---------------------------------------------------------------------------
// Parallel build: speculate per hub against the frozen index, then commit
// sequentially in access order. See the header comment for the argument that
// the committed index is bit-identical to the sequential one.
// ---------------------------------------------------------------------------

RlcIndexBuilder::AttemptHint RlcIndexBuilder::SpecInsertHint(
    VertexId y, VertexId hub, const LabelSeq& mr, bool backward) const {
  if (options_.pr2 && index_.AccessId(hub) > index_.AccessId(y)) {
    return AttemptHint::kPr2;  // access ids are fixed: exact
  }
  // Find (not Intern): speculation must never mutate the shared MR table.
  const MrId id = index_.FindMr(mr);
  if (id == kInvalidMrId) return AttemptHint::kUnknown;
  const VertexId s = backward ? y : hub;
  const VertexId t = backward ? hub : y;
  if (options_.pr1) {
    if (index_.QueryInterned(s, t, id)) return AttemptHint::kPr1;
  } else {
    const bool dup = backward ? index_.HasOutEntry(y, index_.AccessId(hub), id)
                              : index_.HasInEntry(y, index_.AccessId(hub), id);
    if (dup) return AttemptHint::kDup;
  }
  return AttemptHint::kUnknown;
}

void RlcIndexBuilder::SpecKbs(VertexId hub, bool backward, SearchContext& ctx,
                              DirectionRecord& rec) {
  rec.p1.clear();
  rec.kernels.clear();
  KernelSearch(hub, backward, ctx, [&](VertexId y, const LabelSeq& mr) {
    rec.p1.push_back({y, SpecInsertHint(y, hub, mr, backward), mr});
  });
  rec.kernels.resize(ctx.frontier.size());
  size_t i = 0;
  for (const auto& [kernel, frontier] : ctx.frontier) {
    SpecKernelBfs(hub, kernel, frontier, backward, ctx, rec.kernels[i++]);
  }
}

void RlcIndexBuilder::SpecKernelBfs(VertexId hub, const LabelSeq& kernel,
                                    const std::vector<FrontierSeed>& frontier,
                                    bool backward, SearchContext& ctx,
                                    SpecKernelRun& run) {
  ++ctx.epoch;
  run.kernel = kernel;
  run.slots.clear();
  run.event_begin.clear();
  run.events.clear();

  const uint32_t len = kernel.size();
  for (const FrontierSeed& seed : frontier) {
    if (!MarkVisited(ctx, seed.v, seed.position)) continue;
    ctx.slot_of_state[StateIndex(seed.v, seed.position)] =
        static_cast<uint32_t>(run.slots.size());
    run.slots.push_back({seed.v, seed.position});
  }
  run.num_seeds = static_cast<uint32_t>(run.slots.size());

  for (size_t head = 0; head < run.slots.size(); ++head) {
    run.event_begin.push_back(static_cast<uint32_t>(run.events.size()));
    const auto [x, pos] = run.slots[head];
    const Label expected = kernel[pos - 1];
    const bool boundary = backward ? (pos == 1) : (pos == len);
    const uint32_t next_pos = backward ? (pos == 1 ? len : pos - 1)
                                       : (pos == len ? 1 : pos + 1);

    const auto edges = backward ? g_.InEdgesWithLabel(x, expected)
                                : g_.OutEdgesWithLabel(x, expected);
    for (const LabeledNeighbor& nb : edges) {
      const VertexId y = nb.v;
      const bool fresh = !WasVisited(ctx, y, next_pos);
      AttemptHint hint = AttemptHint::kUnknown;
      if (boundary && fresh) hint = SpecInsertHint(y, hub, kernel, backward);
      // Record every scanned edge — the commit may traverse an edge whose
      // target speculation had already visited (when it kills the earlier
      // visit), so skipping visited targets here would lose information.
      run.events.push_back({y, hint});
      if (!fresh) continue;
      if (boundary && pr3_effective_ && hint != AttemptHint::kUnknown) {
        // The snapshot already proves the sequential build prunes this
        // entry, so it provably stops expanding here (PR3) — safe to stop.
        continue;
      }
      // Optimistic expansion: a kUnknown boundary attempt may still be
      // pruned at commit; exploring past it records a superset of the
      // sequential traversal, which the commit narrows back down.
      MarkVisited(ctx, y, next_pos);
      ctx.slot_of_state[StateIndex(y, next_pos)] =
          static_cast<uint32_t>(run.slots.size());
      run.slots.push_back({y, next_pos});
    }
  }
  run.event_begin.push_back(static_cast<uint32_t>(run.events.size()));
}

void RlcIndexBuilder::CommitHub(HubRecord& rec) {
  CommitDirection(rec.hub, rec.backward, /*backward=*/true);
  CommitDirection(rec.hub, rec.forward, /*backward=*/false);
}

void RlcIndexBuilder::CommitDirection(VertexId hub, DirectionRecord& rec,
                                      bool backward) {
  // Phase-1 attempts replay in exact traversal order. Decided hints only
  // update counters (plus the MR-table side effect sequential Insert has on
  // every attempt that passes PR2).
  for (const P1Attempt& a : rec.p1) {
    switch (a.hint) {
      case AttemptHint::kPr2:
        ++stats_.pruned_pr2;
        break;
      case AttemptHint::kPr1:
        index_.mr_table().Intern(a.mr);
        ++stats_.pruned_pr1;
        break;
      case AttemptHint::kDup:
        index_.mr_table().Intern(a.mr);
        ++stats_.pruned_duplicate;
        break;
      case AttemptHint::kUnknown:
        Insert(a.y, hub, a.mr, backward);
        break;
    }
  }
  for (SpecKernelRun& run : rec.kernels) {
    CommitKernelBfs(hub, run, backward);
  }
}

void RlcIndexBuilder::CommitKernelBfs(VertexId hub, SpecKernelRun& run,
                                      bool backward) {
  SearchContext& ctx = main_ctx_;
  ++stats_.kernel_bfs_runs;
  ++ctx.epoch;

  // Register every speculative state so commit can map (vertex, position)
  // back to its slot; commit_alive_ is the live visited set.
  for (size_t i = 0; i < run.slots.size(); ++i) {
    const uint64_t s = StateIndex(run.slots[i].v, run.slots[i].position);
    ctx.visit_stamp[s] = ctx.epoch;
    ctx.slot_of_state[s] = static_cast<uint32_t>(i);
  }
  commit_alive_.assign(run.slots.size(), 0);
  commit_queue_.clear();

  // Seeds are never pruned (frontier registration precedes any insert), so
  // the speculative seed prefix is exactly the sequential seed set.
  for (uint32_t i = 0; i < run.num_seeds; ++i) {
    commit_alive_[i] = 1;
    commit_queue_.push_back(i);
  }

  const uint32_t len = run.kernel.size();
  for (size_t qhead = 0; qhead < commit_queue_.size(); ++qhead) {
    const uint32_t slot = commit_queue_[qhead];
    const auto [x, pos] = run.slots[slot];
    const bool boundary = backward ? (pos == 1) : (pos == len);
    const uint32_t next_pos = backward ? (pos == 1 ? len : pos - 1)
                                       : (pos == len ? 1 : pos + 1);
    (void)x;

    for (uint32_t e = run.event_begin[slot]; e < run.event_begin[slot + 1]; ++e) {
      const SpecEvent& ev = run.events[e];
      const uint64_t state = StateIndex(ev.y, next_pos);
      const bool has_slot = ctx.visit_stamp[state] == ctx.epoch;
      if (has_slot && commit_alive_[ctx.slot_of_state[state]]) continue;
      if (boundary) {
        InsertResult r;
        switch (ev.hint) {
          case AttemptHint::kPr2:
            ++stats_.pruned_pr2;
            r = InsertResult::kPrunedPr2;
            break;
          case AttemptHint::kPr1:
            index_.mr_table().Intern(run.kernel);
            ++stats_.pruned_pr1;
            r = InsertResult::kPrunedPr1;
            break;
          case AttemptHint::kDup:
            index_.mr_table().Intern(run.kernel);
            ++stats_.pruned_duplicate;
            r = InsertResult::kDuplicate;
            break;
          case AttemptHint::kUnknown:
            r = Insert(ev.y, hub, run.kernel, backward);
            break;
        }
        if (pr3_effective_ && r != InsertResult::kInserted) continue;
      }
      // Expanding: the state must have a speculative slot — speculation
      // only ever skipped expansion when the snapshot proved a prune, and
      // a proven prune cannot succeed here.
      RLC_CHECK_MSG(has_slot, "parallel build: commit expanded an unrecorded"
                              " kernel-BFS state");
      commit_alive_[ctx.slot_of_state[state]] = 1;
      commit_queue_.push_back(ctx.slot_of_state[state]);
      ++stats_.kernel_bfs_visits;
    }
  }
}

void RlcIndexBuilder::ParallelBuild(uint32_t num_threads) {
  const VertexId n = g_.num_vertices();
  const uint32_t batch =
      options_.batch_size != 0 ? options_.batch_size : 8 * num_threads;
  main_ctx_.EnsureSized(n, options_.k, /*with_slots=*/true);

  ThreadPool pool(num_threads);
  std::vector<SearchContext> contexts(num_threads);
  std::vector<HubRecord> records;

  for (uint32_t base = 1; base <= n; base += batch) {
    const uint32_t count = std::min<uint64_t>(batch, n - base + 1);
    records.resize(count);
    std::atomic<uint32_t> cursor{0};

    // Parallel phase: the index is frozen; workers only read it.
    pool.Run([&](uint32_t worker) {
      SearchContext& ctx = contexts[worker];
      ctx.EnsureSized(n, options_.k, /*with_slots=*/true);
      for (;;) {
        const uint32_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) break;
        HubRecord& rec = records[i];
        rec.hub = index_.VertexOfAid(base + i);
        SpecKbs(rec.hub, /*backward=*/true, ctx, rec.backward);
        SpecKbs(rec.hub, /*backward=*/false, ctx, rec.forward);
      }
    });

    // Sequential commit in access-id order restores Algorithm 2 semantics.
    for (uint32_t i = 0; i < count; ++i) CommitHub(records[i]);
  }

  for (const SearchContext& ctx : contexts) {
    stats_.kernel_search_states += ctx.kernel_search_states;
  }
}

RlcIndex BuildRlcIndex(const DiGraph& g, uint32_t k) {
  IndexerOptions options;
  options.k = k;
  RlcIndexBuilder builder(g, options);
  return builder.Build();
}

}  // namespace rlc
