#include "rlc/core/label_seq.h"

#include <algorithm>
#include <sstream>

namespace rlc {

std::string LabelSeq::ToString() const {
  std::ostringstream oss;
  oss << '(';
  for (uint32_t i = 0; i < size_; ++i) {
    if (i > 0) oss << ' ';
    oss << labels_[i];
  }
  oss << ')';
  return oss.str();
}

std::string LabelSeq::ToString(const std::vector<std::string>& label_names) const {
  std::ostringstream oss;
  oss << '(';
  for (uint32_t i = 0; i < size_; ++i) {
    if (i > 0) oss << ' ';
    if (labels_[i] < label_names.size()) {
      oss << label_names[labels_[i]];
    } else {
      oss << labels_[i];
    }
  }
  oss << ')';
  return oss.str();
}

size_t MinimumRepeatLength(std::span<const Label> seq) {
  const size_t n = seq.size();
  if (n == 0) return 0;
  // KMP failure function: fail[i] = length of the longest proper border of
  // seq[0..i].
  std::vector<size_t> fail(n, 0);
  for (size_t i = 1; i < n; ++i) {
    size_t j = fail[i - 1];
    while (j > 0 && seq[i] != seq[j]) j = fail[j - 1];
    if (seq[i] == seq[j]) ++j;
    fail[i] = j;
  }
  const size_t p = n - fail[n - 1];  // smallest period of the whole sequence
  // Only periods that divide |seq| yield a repeat in the paper's sense
  // (L = (L')^z with integer z).
  return (n % p == 0) ? p : n;
}

std::vector<Label> MinimumRepeat(std::span<const Label> seq) {
  const size_t p = MinimumRepeatLength(seq);
  return std::vector<Label>(seq.begin(), seq.begin() + static_cast<int64_t>(p));
}

LabelSeq MinimumRepeatSeq(const LabelSeq& seq) {
  const size_t p = MinimumRepeatLength(seq.labels());
  return LabelSeq(seq.labels().first(p));
}

bool IsPrimitive(std::span<const Label> seq) {
  return !seq.empty() && MinimumRepeatLength(seq) == seq.size();
}

std::optional<KernelTail> DecomposeKernel(std::span<const Label> seq) {
  const size_t n = seq.size();
  // Need at least two full kernel copies, so the kernel length is <= n/2.
  for (size_t c = 1; c * 2 <= n; ++c) {
    // seq must be c-periodic over its entire length...
    bool periodic = true;
    for (size_t j = c; j < n; ++j) {
      if (seq[j] != seq[j - c]) {
        periodic = false;
        break;
      }
    }
    if (!periodic) continue;
    // ...and the kernel must be primitive.
    if (!IsPrimitive(seq.first(c))) continue;
    KernelTail kt;
    kt.kernel.assign(seq.begin(), seq.begin() + static_cast<int64_t>(c));
    kt.repetitions = static_cast<uint32_t>(n / c);
    kt.tail.assign(seq.begin() + static_cast<int64_t>((n / c) * c), seq.end());
    return kt;
  }
  return std::nullopt;
}

std::optional<KernelTail> DecomposeKernelSuffix(std::span<const Label> seq) {
  std::vector<Label> rev(seq.rbegin(), seq.rend());
  auto kt = DecomposeKernel(rev);
  if (!kt.has_value()) return std::nullopt;
  // rev(seq) = rev(kernel')^h ∘ rev(head), so reversing the parts of the
  // prefix-form decomposition yields the suffix form.
  std::reverse(kt->kernel.begin(), kt->kernel.end());
  std::reverse(kt->tail.begin(), kt->tail.end());
  return kt;
}

std::vector<Label> Concat(std::span<const Label> a, std::span<const Label> b) {
  std::vector<Label> out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

}  // namespace rlc
