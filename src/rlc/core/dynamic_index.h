// Incremental edge-insert and edge-delete maintenance over a sealed RLC
// index.
//
// The paper builds its index once over a static graph; a serving system
// sees the graph mutate. DynamicRlcIndex keeps a sealed RlcIndex answering
// exactly on the *mutated* graph without rebuilding it per mutation:
//
//  * The graph delta is an adjacency overlay (per-vertex extra edge lists
//    plus per-vertex removed-edge shadows over the immutable base DiGraph);
//    every maintenance search traverses base + overlay minus removals.
//
//  * InsertEdge(u, l, v) runs a bounded incremental KBS around the new
//    edge. Any query pair (s, t, L+) that the insert makes reachable has a
//    witness path through the edge, and the copy of L containing the edge
//    fixes an alignment: L = α ∘ l ∘ β where α is spelled by a path ending
//    at u and β by one leaving v. Phase 1 enumerates those candidate
//    kernels — all primitive α·l·β with |α|+|β| <= k-1, words collected by
//    depth-(k-1) BFS from the endpoints. Phase 2, per candidate (L, i):
//    two kernel-BFS product searches over (vertex, position-in-L) states —
//    backward from (u, i) and forward past the edge — yield the upstream
//    boundary set S (vertices at a copy start that reach u in alignment)
//    and the downstream boundary set T (vertices a whole number of copies
//    past v). Every newly reachable pair lies in some S x T. Phase 3
//    covers: pairs the index already answers are skipped (the PR1 monotone
//    pruning argument — the index only grows), and each uncovered pair
//    (s, t) gets one direct Case-2 delta entry ((aid(s), L) into Lin(t) or
//    (aid(t), L) into Lout(s), hub = the higher-ranked endpoint). Entries
//    land in the sealed index's delta overlay (rlc_index.h), so answers are
//    exact on the mutated graph while the CSR arrays stay untouched.
//
//  * DeleteEdge(u, l, v) is the dual. An index entry is a standalone
//    reachability claim ("vertex aligned-reaches hub under L+"), and a
//    Case-1 join of two *valid* entries implies the pair is reachable — so
//    a deletion can only create false positives through entries whose own
//    claim died with the edge. Phase 1 enumerates the same candidate
//    kernels (L, i) around the edge and computes the copy-boundary sets
//    S / T on the *pre-delete* graph: every entry whose witness used the
//    edge claims a pair in some S x T. After the edge is removed, a
//    candidate whose positions carrying l all still aligned-connect u to v
//    is ruled out whole (every witness reroutes over the detour, the exact
//    dual of the insert rule-out). Phase 2 validity-checks the matched
//    entries with bounded aligned closures on the post-delete graph and
//    *suppresses* the dead ones — pending delta entries are erased, CSR
//    entries get a tombstone (rlc_index.h) that every query path skips.
//    Phase 3 repairs completeness: a pair can only lose its last cover
//    through a suppressed entry, so the sweep is restricted to
//    (S ∩ dead-out) x T and S x (T ∩ dead-in) per candidate; pairs still
//    reachable but no longer answered get a fresh Case-2 delta cover.
//    Answers stay bit-identical to a from-scratch rebuild on the mutated
//    graph.
//
//  * When the pending-mutation fraction (deltas + tombstones) crosses
//    ResealPolicy::max_delta_ratio, a *reseal* folds the deltas in, drops
//    the tombstoned entries out of the CSR arrays and recomputes the
//    exact signatures. With policy.background the merge runs on a detached
//    thread over a private snapshot (copied on the owner thread at trigger
//    time); the owner swaps the result in with an epoch-style shared_ptr
//    flip at its next touch point and replays the deltas appended since the
//    trigger, so the visible entry set — and therefore every answer — is
//    unchanged across the swap. Readers holding a Snapshot() (in-flight
//    batched queries) never block and keep a consistent index.
//
// Thread contract: like ShardedRlcService, a DynamicRlcIndex has a single
// owner thread for mutations and query submission. Batched executors may
// fan a Snapshot() out across worker pools (the RlcIndex query path is
// const and the overlay is only mutated between batches); the background
// reseal touches nothing but its private copy.

#pragma once

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include "rlc/core/rlc_index.h"
#include "rlc/graph/digraph.h"

namespace rlc {

/// What a batched EdgeUpdate does to the graph.
enum class EdgeOp : uint8_t {
  kInsert,  ///< add the edge (no-op when it already exists)
  kDelete,  ///< remove the edge (no-op when it does not exist)
};

/// One edge mutation (src --label--> dst) for the batched update APIs.
/// Aggregate-initializing the first three fields keeps the PR4-era
/// insert-only call sites working unchanged.
struct EdgeUpdate {
  VertexId src = 0;
  Label label = 0;
  VertexId dst = 0;
  EdgeOp op = EdgeOp::kInsert;

  friend bool operator==(const EdgeUpdate&, const EdgeUpdate&) = default;
};

/// When and how a dynamic index folds its delta overlay back into CSR form.
struct ResealPolicy {
  /// Reseal once delta_entries / sealed_entries exceeds this fraction.
  double max_delta_ratio = 0.10;
  /// Never reseal below this many pending deltas (tiny overlays are cheaper
  /// to merge at query time than to rebuild around).
  uint64_t min_delta_entries = 64;
  /// Merge on a background thread and epoch-swap the result in (default);
  /// false reseals inline on the owner thread (deterministic, for tests).
  bool background = true;
};

/// Maintenance telemetry.
struct DynamicIndexStats {
  uint64_t edges_inserted = 0;
  uint64_t edges_duplicate = 0;     ///< no-op inserts of existing edges
  uint64_t edges_deleted = 0;
  uint64_t edges_delete_missing = 0;  ///< no-op deletes of absent edges
  uint64_t kernels_examined = 0;    ///< candidate (kernel, offset) pairs
  uint64_t kernels_ruled_out = 0;   ///< candidates skipped: the aligned
                                    ///< detour covers / reroutes all pairs
  uint64_t pairs_examined = 0;      ///< S x T cover probes
  uint64_t delta_entries_added = 0;
  uint64_t entries_suppressed = 0;  ///< stale entries erased or tombstoned
  uint64_t pairs_recovered = 0;     ///< still-reachable pairs re-covered
                                    ///< after losing their last entry
  uint64_t reseals = 0;
  uint64_t deltas_replayed = 0;     ///< appended mid-reseal, replayed at swap
  double reseal_seconds = 0.0;      ///< cumulative merge wall time
};

/// A sealed RlcIndex plus the machinery to keep it exact under edge
/// inserts and deletes. `g` is the immutable base graph and must outlive
/// the instance; `index` must be a sealed index of exactly `g`.
class DynamicRlcIndex {
 public:
  DynamicRlcIndex(const DiGraph& g, RlcIndex index, ResealPolicy policy = {});
  ~DynamicRlcIndex();

  DynamicRlcIndex(const DynamicRlcIndex&) = delete;
  DynamicRlcIndex& operator=(const DynamicRlcIndex&) = delete;

  /// Inserts the edge u --label--> v and restores index exactness for the
  /// mutated graph. Returns false (a strict no-op: no entries, no stats
  /// beyond edges_duplicate, no serialized-byte change) when the edge
  /// already exists in the base graph or the overlay. Re-inserting a
  /// previously deleted base edge un-shadows it.
  /// \throws std::invalid_argument on out-of-range vertices or a label the
  ///         base graph has never seen (new labels require a rebuild).
  bool InsertEdge(VertexId u, Label label, VertexId v);

  /// Deletes the edge u --label--> v (all parallel copies of the exact
  /// (u, label, v) triple) and restores index exactness for the mutated
  /// graph: entries whose witness paths died with the edge are suppressed
  /// (delta entries erased, CSR entries tombstoned) and still-reachable
  /// pairs that lost their last cover are re-covered. Returns false (a
  /// strict no-op) when no such edge exists.
  /// \throws std::invalid_argument on out-of-range vertices or labels.
  bool DeleteEdge(VertexId u, Label label, VertexId v);

  /// Applies a batch of mutations in order; returns how many changed the
  /// graph (inserts of new edges + deletes of present edges).
  size_t ApplyUpdates(std::span<const EdgeUpdate> updates);

  /// Re-installs a previously persisted graph overlay (durable_index.h)
  /// without running any maintenance: the index passed to the constructor
  /// already carries the matching delta/tombstone entries, so only the
  /// adjacency overlay and the edge bookkeeping need rebuilding. Must be
  /// called before any mutation; `inserted`/`removed` are the
  /// inserted_edges()/removed_edges() lists a snapshot captured.
  /// \throws std::invalid_argument on out-of-range edges, a removed edge
  ///         the base graph does not have, or a non-fresh overlay.
  void RestoreOverlay(std::span<const EdgeUpdate> inserted,
                      std::span<const EdgeUpdate> removed);

  /// \name Query surface
  /// The current epoch's index. `index()` is the owner-thread shortcut;
  /// Snapshot() pins an epoch for batched readers that outlive the call
  /// (the pointer stays valid and consistent across a concurrent reseal
  /// swap). MR ids are stable across reseals.
  ///@{
  const RlcIndex& index() const { return *current_; }
  std::shared_ptr<const RlcIndex> Snapshot() const { return current_; }
  bool Query(VertexId s, VertexId t, const LabelSeq& constraint) const {
    return current_->Query(s, t, constraint);
  }
  ///@}

  /// True when the edge exists in the mutated graph (base minus removals
  /// plus the insert overlay).
  bool HasEdge(VertexId u, Label label, VertexId v) const;

  /// \name Overlay adjacency (read-only)
  /// Per-vertex views of the graph overlay for external traversals (the
  /// cross-shard composition engine walks base + extra minus removed
  /// without materializing the mutated graph). Empty spans when the vertex
  /// has no overlay edges.
  ///@{
  std::span<const LabeledNeighbor> ExtraOut(VertexId v) const {
    if (v >= extra_out_.size()) return {};
    return extra_out_[v];
  }
  std::span<const LabeledNeighbor> ExtraIn(VertexId v) const {
    if (v >= extra_in_.size()) return {};
    return extra_in_[v];
  }
  /// True when the base adjacency slot `nb` of vertex `v` is shadowed by a
  /// delete (out-neighbor form / in-neighbor form).
  bool OutEdgeRemoved(VertexId v, const LabeledNeighbor& nb) const {
    return EdgeShadowed(/*backward=*/false, v, nb);
  }
  bool InEdgeRemoved(VertexId v, const LabeledNeighbor& nb) const {
    return EdgeShadowed(/*backward=*/true, v, nb);
  }
  ///@}

  /// Blocks until an in-flight background reseal (if any) has merged, then
  /// swaps it in. Also the deterministic sync point for tests and benches.
  void FinishReseal();

  /// Unconditional synchronous reseal: completes any in-flight merge, then
  /// folds whatever deltas remain. After this, delta_entries() == 0.
  void ForceReseal();

  bool reseal_in_flight() const { return reseal_thread_.joinable(); }

  const DiGraph& base_graph() const { return g_; }
  /// Overlay edges currently present (inserted and not since deleted).
  const std::vector<EdgeUpdate>& inserted_edges() const { return inserted_; }
  /// Base edges currently shadowed by a delete.
  const std::vector<EdgeUpdate>& removed_edges() const { return removed_; }

  /// Base + overlay edge list (the mutated graph), e.g. for rebuild oracles.
  std::vector<Edge> MaterializedEdges() const;

  const ResealPolicy& policy() const { return policy_; }
  const DynamicIndexStats& stats() const { return stats_; }

  /// Index + overlay adjacency + maintenance bookkeeping, in bytes.
  uint64_t MemoryBytes() const;

 private:
  /// One overlay mutation (delta append or entry suppression), logged so a
  /// background reseal can replay the mutations that raced past its trigger
  /// point onto the merged index.
  struct DeltaRecord {
    enum class Kind : uint8_t { kAppend, kSuppress };
    Kind kind;
    bool is_out;
    VertexId v;
    uint32_t hub_aid;
    LabelSeq seq;
  };

  void IncrementalUpdate(VertexId u, Label l, VertexId v);
  void IncrementalDelete(VertexId u, Label l, VertexId v);

  /// Distinct words (length <= k-1) spelled by paths ending at `start`
  /// (backward) or leaving it (forward), over base + overlay.
  void CollectWords(VertexId start, bool backward,
                    std::set<LabelSeq>& words) const;

  /// Kernel-aligned product search: all (vertex, position) states reachable
  /// from (start, start_pos) walking backward (consuming kernel labels in
  /// reverse, with wrap-around) or forward. Returns the sorted vertices
  /// seen at position 1 — copy-boundary vertices.
  std::vector<VertexId> AlignedBoundary(VertexId start, uint32_t start_pos,
                                        const LabelSeq& kernel, bool backward);

  /// True when the current mutated graph — minus `exclude`, when non-null —
  /// aligned-connects (u, from_pos) to (v, to_pos) under `kernel` over
  /// >= 1 edge. Both mutation paths pass the mutated edge as `exclude` to
  /// ask about the graph *without* it: the insert path about the pre-insert
  /// graph (a detour at every l-position means each S x T pair was already
  /// reachable, so the candidate is covered and skipped), the delete path —
  /// whose rule-out runs before RemoveGraphEdge, while the edge is still in
  /// the adjacency — about the post-delete graph (a detour at every
  /// l-position reroutes every witness, so no entry went stale). Dropping
  /// the exclusion on the delete side would let the deleted edge serve as
  /// its own detour and leave stale entries unsuppressed.
  bool AlignedConnects(VertexId u, VertexId v, uint32_t from_pos,
                       uint32_t to_pos, const LabelSeq& kernel,
                       const EdgeUpdate* exclude);

  /// All vertices x such that start aligned-reaches x (forward) or x
  /// aligned-reaches start (backward) under kernel+ over >= 1 full copy,
  /// on the current mutated graph. Unlike AlignedBoundary the start vertex
  /// is only included when a genuine aligned cycle returns to it. Sorted.
  std::vector<VertexId> AlignedClosure(VertexId start, const LabelSeq& kernel,
                                       bool backward);

  /// Appends one delta entry to the live index and the replay log.
  void AppendDelta(bool is_out, VertexId v, uint32_t hub_aid, MrId mr,
                   const LabelSeq& seq);

  /// Suppresses one stale entry on the live index and logs it for replay.
  void SuppressEntry(bool is_out, VertexId v, uint32_t hub_aid, MrId mr,
                     const LabelSeq& seq);

  /// Adds the Case-2 cover entry for the uncovered pair (x, y, mr): the
  /// higher-ranked endpoint becomes the hub.
  void AddCoverEntry(VertexId x, VertexId y, MrId mr, const LabelSeq& seq);

  /// Hub-compressed cover for one candidate whose edge sits on a copy
  /// boundary: the boundary endpoint (`hub`) lies on every S x T witness at
  /// a copy start, so (hub, L) entries into Lout(s) / Lin(t) cover all
  /// pairs with |S| + |T| entries instead of |S| * |T|.
  void CoverViaEdgeHub(VertexId hub, MrId mr, const LabelSeq& kernel,
                       std::span<const VertexId> upstream,
                       std::span<const VertexId> downstream);

  void MaybeReseal();
  void StartReseal();
  /// Synchronous copy-merge-swap on the owner thread.
  void ResealInline();
  /// Completes a finished (or, with `wait`, any in-flight) background
  /// reseal: joins, replays post-trigger deltas, swaps the epoch pointer.
  void TryCompleteReseal(bool wait);

  uint64_t StateIndex(VertexId v, uint32_t pos) const {
    return static_cast<uint64_t>(v) * current_->k() + (pos - 1);
  }

  /// Removes u --l-> v from the mutated graph: an overlay edge is erased,
  /// a base edge is shadowed in the removal lists.
  void RemoveGraphEdge(VertexId u, Label l, VertexId v);

  /// True when the base edge u --l-> v is currently shadowed by a delete.
  bool BaseEdgeRemoved(VertexId u, Label l, VertexId v) const;

  /// Shadow test in adjacency-iteration form: true when the base adjacency
  /// slot `nb` of vertex `x` (out-neighbor forward, in-neighbor backward)
  /// is a deleted edge — the filter every maintenance traversal applies.
  bool EdgeShadowed(bool backward, VertexId x, const LabeledNeighbor& nb) const {
    const auto& removed = backward ? removed_in_ : removed_out_;
    if (removed.empty()) return false;
    const auto& list = removed[x];
    return std::find(list.begin(), list.end(), nb) != list.end();
  }

  const DiGraph& g_;
  ResealPolicy policy_;
  std::shared_ptr<RlcIndex> current_;
  // Graph overlay: edges inserted since construction and still present
  // (never folded — reseals fold index entries, the graph delta persists),
  // plus shadow lists for deleted base edges.
  std::vector<std::vector<LabeledNeighbor>> extra_out_;
  std::vector<std::vector<LabeledNeighbor>> extra_in_;
  std::vector<std::vector<LabeledNeighbor>> removed_out_;
  std::vector<std::vector<LabeledNeighbor>> removed_in_;
  std::vector<EdgeUpdate> inserted_;
  std::vector<EdgeUpdate> removed_;
  // Delta log since the last completed reseal (replay source for swaps).
  std::vector<DeltaRecord> delta_log_;
  // Background reseal state (owner thread starts/joins; the worker only
  // touches reseal_snapshot_ and the release-ordered ready flag).
  std::thread reseal_thread_;
  std::unique_ptr<RlcIndex> reseal_snapshot_;
  std::atomic<bool> reseal_ready_{false};
  size_t reseal_log_mark_ = 0;
  double reseal_merge_seconds_ = 0.0;
  // Aligned-search scratch (owner thread only).
  std::vector<uint64_t> visit_stamp_;
  uint64_t epoch_ = 0;
  DynamicIndexStats stats_;
};

}  // namespace rlc
