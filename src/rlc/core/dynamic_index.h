// Incremental edge-insert maintenance over a sealed RLC index.
//
// The paper builds its index once over a static graph; a serving system
// sees the graph mutate. DynamicRlcIndex keeps a sealed RlcIndex answering
// exactly on the *mutated* graph without rebuilding it per insert:
//
//  * The graph delta is an adjacency overlay (per-vertex extra edge lists
//    over the immutable base DiGraph); every maintenance search traverses
//    base + overlay.
//
//  * InsertEdge(u, l, v) runs a bounded incremental KBS around the new
//    edge. Any query pair (s, t, L+) that the insert makes reachable has a
//    witness path through the edge, and the copy of L containing the edge
//    fixes an alignment: L = α ∘ l ∘ β where α is spelled by a path ending
//    at u and β by one leaving v. Phase 1 enumerates those candidate
//    kernels — all primitive α·l·β with |α|+|β| <= k-1, words collected by
//    depth-(k-1) BFS from the endpoints. Phase 2, per candidate (L, i):
//    two kernel-BFS product searches over (vertex, position-in-L) states —
//    backward from (u, i) and forward past the edge — yield the upstream
//    boundary set S (vertices at a copy start that reach u in alignment)
//    and the downstream boundary set T (vertices a whole number of copies
//    past v). Every newly reachable pair lies in some S x T. Phase 3
//    covers: pairs the index already answers are skipped (the PR1 monotone
//    pruning argument — the index only grows), and each uncovered pair
//    (s, t) gets one direct Case-2 delta entry ((aid(s), L) into Lin(t) or
//    (aid(t), L) into Lout(s), hub = the higher-ranked endpoint). Entries
//    land in the sealed index's delta overlay (rlc_index.h), so answers are
//    exact on the mutated graph while the CSR arrays stay untouched.
//
//  * When the delta fraction crosses ResealPolicy::max_delta_ratio, a
//    *reseal* folds the deltas into fresh CSR arrays and recomputes the
//    exact signatures. With policy.background the merge runs on a detached
//    thread over a private snapshot (copied on the owner thread at trigger
//    time); the owner swaps the result in with an epoch-style shared_ptr
//    flip at its next touch point and replays the deltas appended since the
//    trigger, so the visible entry set — and therefore every answer — is
//    unchanged across the swap. Readers holding a Snapshot() (in-flight
//    batched queries) never block and keep a consistent index.
//
// Thread contract: like ShardedRlcService, a DynamicRlcIndex has a single
// owner thread for mutations and query submission. Batched executors may
// fan a Snapshot() out across worker pools (the RlcIndex query path is
// const and the overlay is only mutated between batches); the background
// reseal touches nothing but its private copy.

#pragma once

#include <atomic>
#include <memory>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include "rlc/core/rlc_index.h"
#include "rlc/graph/digraph.h"

namespace rlc {

/// One edge insertion (src --label--> dst) for the batched update APIs.
struct EdgeUpdate {
  VertexId src = 0;
  Label label = 0;
  VertexId dst = 0;

  friend bool operator==(const EdgeUpdate&, const EdgeUpdate&) = default;
};

/// When and how a dynamic index folds its delta overlay back into CSR form.
struct ResealPolicy {
  /// Reseal once delta_entries / sealed_entries exceeds this fraction.
  double max_delta_ratio = 0.10;
  /// Never reseal below this many pending deltas (tiny overlays are cheaper
  /// to merge at query time than to rebuild around).
  uint64_t min_delta_entries = 64;
  /// Merge on a background thread and epoch-swap the result in (default);
  /// false reseals inline on the owner thread (deterministic, for tests).
  bool background = true;
};

/// Maintenance telemetry.
struct DynamicIndexStats {
  uint64_t edges_inserted = 0;
  uint64_t edges_duplicate = 0;     ///< no-op inserts of existing edges
  uint64_t kernels_examined = 0;    ///< candidate (kernel, offset) pairs
  uint64_t kernels_ruled_out = 0;   ///< candidates skipped: pre-insert
                                    ///< aligned detour covers all pairs
  uint64_t pairs_examined = 0;      ///< S x T cover probes
  uint64_t delta_entries_added = 0;
  uint64_t reseals = 0;
  uint64_t deltas_replayed = 0;     ///< appended mid-reseal, replayed at swap
  double reseal_seconds = 0.0;      ///< cumulative merge wall time
};

/// A sealed RlcIndex plus the machinery to keep it exact under edge
/// inserts. `g` is the immutable base graph and must outlive the instance;
/// `index` must be a sealed index of exactly `g`.
class DynamicRlcIndex {
 public:
  DynamicRlcIndex(const DiGraph& g, RlcIndex index, ResealPolicy policy = {});
  ~DynamicRlcIndex();

  DynamicRlcIndex(const DynamicRlcIndex&) = delete;
  DynamicRlcIndex& operator=(const DynamicRlcIndex&) = delete;

  /// Inserts the edge u --label--> v and restores index exactness for the
  /// mutated graph. Returns false (a strict no-op: no entries, no stats
  /// beyond edges_duplicate, no serialized-byte change) when the edge
  /// already exists in the base graph or the overlay.
  /// \throws std::invalid_argument on out-of-range vertices or a label the
  ///         base graph has never seen (new labels require a rebuild).
  bool InsertEdge(VertexId u, Label label, VertexId v);

  /// Applies a batch of inserts; returns how many were new edges.
  size_t ApplyUpdates(std::span<const EdgeUpdate> updates);

  /// \name Query surface
  /// The current epoch's index. `index()` is the owner-thread shortcut;
  /// Snapshot() pins an epoch for batched readers that outlive the call
  /// (the pointer stays valid and consistent across a concurrent reseal
  /// swap). MR ids are stable across reseals.
  ///@{
  const RlcIndex& index() const { return *current_; }
  std::shared_ptr<const RlcIndex> Snapshot() const { return current_; }
  bool Query(VertexId s, VertexId t, const LabelSeq& constraint) const {
    return current_->Query(s, t, constraint);
  }
  ///@}

  /// True when the edge exists in the base graph or the overlay.
  bool HasEdge(VertexId u, Label label, VertexId v) const;

  /// Blocks until an in-flight background reseal (if any) has merged, then
  /// swaps it in. Also the deterministic sync point for tests and benches.
  void FinishReseal();

  /// Unconditional synchronous reseal: completes any in-flight merge, then
  /// folds whatever deltas remain. After this, delta_entries() == 0.
  void ForceReseal();

  bool reseal_in_flight() const { return reseal_thread_.joinable(); }

  const DiGraph& base_graph() const { return g_; }
  const std::vector<EdgeUpdate>& inserted_edges() const { return inserted_; }

  /// Base + overlay edge list (the mutated graph), e.g. for rebuild oracles.
  std::vector<Edge> MaterializedEdges() const;

  const ResealPolicy& policy() const { return policy_; }
  const DynamicIndexStats& stats() const { return stats_; }

  /// Index + overlay adjacency + maintenance bookkeeping, in bytes.
  uint64_t MemoryBytes() const;

 private:
  /// One delta append, logged so a background reseal can replay the appends
  /// that raced past its trigger point onto the merged index.
  struct DeltaRecord {
    bool is_out;
    VertexId v;
    uint32_t hub_aid;
    LabelSeq seq;
  };

  void IncrementalUpdate(VertexId u, Label l, VertexId v);

  /// Distinct words (length <= k-1) spelled by paths ending at `start`
  /// (backward) or leaving it (forward), over base + overlay.
  void CollectWords(VertexId start, bool backward,
                    std::set<LabelSeq>& words) const;

  /// Kernel-aligned product search: all (vertex, position) states reachable
  /// from (start, start_pos) walking backward (consuming kernel labels in
  /// reverse, with wrap-around) or forward. Returns the sorted vertices
  /// seen at position 1 — copy-boundary vertices.
  std::vector<VertexId> AlignedBoundary(VertexId start, uint32_t start_pos,
                                        const LabelSeq& kernel, bool backward);

  /// True when the *pre-insert* graph (base + overlay minus the edge
  /// u --l-> v, which must be the overlay's newest entry) aligned-connects
  /// (u, from_pos) to (v, to_pos) under `kernel`. When this holds for every
  /// position carrying l, each S x T pair of the candidate was already
  /// reachable before the insert — replace every use of the new edge by the
  /// old aligned detour — so the whole candidate is covered and is skipped.
  bool OldGraphAlignedConnects(VertexId u, Label l, VertexId v,
                               uint32_t from_pos, uint32_t to_pos,
                               const LabelSeq& kernel);

  /// Appends one delta entry to the live index and the replay log.
  void AppendDelta(bool is_out, VertexId v, uint32_t hub_aid, MrId mr,
                   const LabelSeq& seq);

  /// Adds the Case-2 cover entry for the uncovered pair (x, y, mr): the
  /// higher-ranked endpoint becomes the hub.
  void AddCoverEntry(VertexId x, VertexId y, MrId mr, const LabelSeq& seq);

  /// Hub-compressed cover for one candidate whose edge sits on a copy
  /// boundary: the boundary endpoint (`hub`) lies on every S x T witness at
  /// a copy start, so (hub, L) entries into Lout(s) / Lin(t) cover all
  /// pairs with |S| + |T| entries instead of |S| * |T|.
  void CoverViaEdgeHub(VertexId hub, MrId mr, const LabelSeq& kernel,
                       std::span<const VertexId> upstream,
                       std::span<const VertexId> downstream);

  void MaybeReseal();
  void StartReseal();
  /// Synchronous copy-merge-swap on the owner thread.
  void ResealInline();
  /// Completes a finished (or, with `wait`, any in-flight) background
  /// reseal: joins, replays post-trigger deltas, swaps the epoch pointer.
  void TryCompleteReseal(bool wait);

  uint64_t StateIndex(VertexId v, uint32_t pos) const {
    return static_cast<uint64_t>(v) * current_->k() + (pos - 1);
  }

  const DiGraph& g_;
  ResealPolicy policy_;
  std::shared_ptr<RlcIndex> current_;
  // Graph overlay: edges inserted since construction (never consumed —
  // reseals fold index entries, the graph delta is permanent).
  std::vector<std::vector<LabeledNeighbor>> extra_out_;
  std::vector<std::vector<LabeledNeighbor>> extra_in_;
  std::vector<EdgeUpdate> inserted_;
  // Delta log since the last completed reseal (replay source for swaps).
  std::vector<DeltaRecord> delta_log_;
  // Background reseal state (owner thread starts/joins; the worker only
  // touches reseal_snapshot_ and the release-ordered ready flag).
  std::thread reseal_thread_;
  std::unique_ptr<RlcIndex> reseal_snapshot_;
  std::atomic<bool> reseal_ready_{false};
  size_t reseal_log_mark_ = 0;
  double reseal_merge_seconds_ = 0.0;
  // Aligned-search scratch (owner thread only).
  std::vector<uint64_t> visit_stamp_;
  uint64_t epoch_ = 0;
  DynamicIndexStats stats_;
};

}  // namespace rlc
