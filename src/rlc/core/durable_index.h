// Crash-safe durability for a dynamically maintained RLC index.
//
// A DurableDynamicIndex wraps DynamicRlcIndex with a write-ahead log and
// generation-numbered snapshots inside one directory:
//
//   <dir>/MANIFEST            retained generations, newest first (index_io.h)
//   <dir>/snapshot-<G>.snap   state as of the generation-G checkpoint
//   <dir>/wal-<G>.log         mutation batches acknowledged after it
//
// Every ApplyUpdates batch is appended (write + fsync) to the current WAL
// *before* it touches the in-memory index, so an acknowledged batch — one
// whose ApplyUpdates returned — survives any crash. A checkpoint writes the
// full state to snapshot-<G+1>.snap via atomic tmp+rename, switches the WAL
// to wal-<G+1>.log, then commits the manifest (another atomic rename): the
// manifest commit is the single instant the new generation becomes the
// recovery target. Generations beyond DurabilityOptions::keep_generations
// are deleted only after the commit that drops them.
//
// Recovery walks the manifest newest-first, loads the first snapshot that
// parses and checksums cleanly (a torn or byte-flipped newest generation
// degrades to the previous one), then replays every wal-<G'>.log with
// G' >= the chosen generation in ascending order. Replay is LSN-gated —
// records with lsn <= the snapshot's applied_lsn are skipped — so batches
// already folded into the snapshot are never applied twice, and batches
// acknowledged into a newer (unusable) generation's WAL are still found.
// Torn trailing WAL records fail their checksum and are dropped (wal.h);
// because the WAL is fsynced before acknowledgement, dropped bytes can only
// belong to a batch whose ApplyUpdates never returned. The constructor ends
// every open — fresh build or recovery — with a checkpoint, so the store is
// always at a clean generation boundary afterwards.
//
// Snapshot file format, little-endian (shared with the per-shard service
// snapshots, sharded_service.h):
//
//   u64 magic  u32 version  u64 applied_lsn
//   u64 inserted count, count * (u32 src, u32 label, u32 dst, u8 op)
//   u64 removed  count, count * (u32 src, u32 label, u32 dst, u8 op)
//   u64 checksum (FNV-1a over everything after the magic)
//   u8  has_index  [u64 index length, u64 index checksum, index bytes when 1]
//
// The overlay lists are DynamicRlcIndex::inserted_edges()/removed_edges();
// the embedded index already covers them, so loading is RestoreOverlay —
// no maintenance re-run. The index bytes get their own full checksum here
// (the index format only checksums its signature section): any single
// flipped byte in a snapshot is detected, never served.
//
// Thread contract: same as DynamicRlcIndex — one owner thread mutates.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "rlc/core/dynamic_index.h"
#include "rlc/core/index_io.h"
#include "rlc/core/wal.h"

namespace rlc {

struct DurabilityOptions {
  /// Root of the durability directory (created when missing). Must be set.
  std::string dir;
  /// Auto-checkpoint once the current generation's WAL reaches this many
  /// bytes; 0 disables the trigger (Checkpoint() still works).
  uint64_t checkpoint_wal_bytes = 4ull << 20;
  /// Snapshot generations to retain (>= 1). Two generations mean a corrupt
  /// newest snapshot still recovers from the previous one.
  uint32_t keep_generations = 2;
};

/// What the constructor found on disk.
struct RecoveryInfo {
  bool recovered = false;        ///< false: fresh store, index built anew
  uint64_t generation = 0;       ///< snapshot generation loaded
  uint64_t snapshot_lsn = 0;     ///< applied_lsn of that snapshot
  uint64_t replayed_records = 0; ///< WAL batches applied on top
  uint64_t dropped_wal_bytes = 0;///< torn/corrupt WAL tail bytes discarded
  bool fell_back = false;        ///< newest generation was unusable
  std::string fallback_reason;   ///< why, when fell_back
};

/// One parsed snapshot file.
struct LoadedSnapshot {
  uint64_t applied_lsn = 0;
  std::vector<EdgeUpdate> inserted;
  std::vector<EdgeUpdate> removed;
  std::optional<RlcIndex> index;  ///< present when the file embeds one
};

/// Atomically writes a snapshot file (failpoint site "index_io.save").
/// `index` may be null for overlay-only snapshots (the service meta file).
/// \throws std::runtime_error on I/O failure or an injected fault.
void WriteSnapshotFile(const std::string& path, uint64_t applied_lsn,
                       std::span<const EdgeUpdate> inserted,
                       std::span<const EdgeUpdate> removed,
                       const RlcIndex* index);

/// Parses a snapshot file. \throws std::runtime_error naming the file on
/// any corruption (bad magic/version, truncation, checksum mismatch, or an
/// embedded index that fails its own validation) — never UB.
LoadedSnapshot LoadSnapshotFile(const std::string& path);

/// Snapshot/WAL file names for generation `gen` inside a durability dir.
std::string SnapshotPath(const std::string& dir, uint64_t gen);
std::string WalPath(const std::string& dir, uint64_t gen);

/// Generation numbers of the `<prefix><G><suffix>` entries in `dir`,
/// ascending. Non-matching names are skipped; a missing directory is empty.
std::vector<uint64_t> ListGenerationFiles(const std::string& dir,
                                          const std::string& prefix,
                                          const std::string& suffix);

/// A DynamicRlcIndex whose acknowledged mutations survive crashes.
class DurableDynamicIndex {
 public:
  /// Opens the store in `opts.dir`. When the directory holds a durable
  /// state, recovers it (newest usable generation + WAL replay) and
  /// `build_base` is never called; otherwise builds the index with
  /// `build_base` (must return a sealed index of exactly `g`). Either way
  /// the constructor finishes with a checkpoint.
  /// \throws std::runtime_error when the directory cannot be used, or when
  ///         a manifest lists generations but none of them is loadable
  ///         (durable state exists but is beyond recovery — refusing is
  ///         better than silently rebuilding an empty store over it).
  DurableDynamicIndex(const DiGraph& g, DurabilityOptions opts,
                      const std::function<RlcIndex()>& build_base,
                      ResealPolicy policy = {});
  ~DurableDynamicIndex();

  DurableDynamicIndex(const DurableDynamicIndex&) = delete;
  DurableDynamicIndex& operator=(const DurableDynamicIndex&) = delete;

  /// Logs the batch (write + fsync), applies it, and may auto-checkpoint.
  /// On return the batch is durable. \throws std::runtime_error when the
  /// WAL append fails — the in-memory index is then untouched and the
  /// batch is NOT acknowledged.
  size_t ApplyUpdates(std::span<const EdgeUpdate> updates);

  /// Writes generation current+1: snapshot, WAL switch, manifest commit,
  /// old-generation cleanup. \throws std::runtime_error on I/O failure or
  /// an injected fault; the previous generation then remains the recovery
  /// target and the store stays usable.
  void Checkpoint();

  DynamicRlcIndex& dynamic() { return *dyn_; }
  const DynamicRlcIndex& dynamic() const { return *dyn_; }
  const RlcIndex& index() const { return dyn_->index(); }
  bool Query(VertexId s, VertexId t, const LabelSeq& constraint) const {
    return dyn_->Query(s, t, constraint);
  }

  /// LSN of the last acknowledged batch (0 before any).
  uint64_t last_lsn() const { return last_lsn_; }
  /// Current (newest committed) snapshot generation.
  uint64_t generation() const { return generation_; }
  /// Bytes appended to the current generation's WAL.
  uint64_t wal_bytes() const { return wal_.bytes_appended(); }

  const RecoveryInfo& recovery_info() const { return recovery_; }
  const DurabilityOptions& options() const { return opts_; }

 private:
  void Recover(const std::function<RlcIndex()>& build_base,
               const ResealPolicy& policy);
  void ReplayWalTail(uint64_t from_gen);

  const DiGraph& g_;
  DurabilityOptions opts_;
  std::unique_ptr<DynamicRlcIndex> dyn_;
  WalWriter wal_;
  DurabilityManifest manifest_;
  uint64_t last_lsn_ = 0;
  uint64_t generation_ = 0;  ///< newest committed generation (0 = none yet)
  uint64_t max_gen_seen_ = 0;  ///< highest generation ever on disk
  RecoveryInfo recovery_;
};

}  // namespace rlc
