#include "rlc/core/rlc_index.h"

#include <algorithm>

namespace rlc {

bool RlcIndex::Query(VertexId s, VertexId t, const LabelSeq& constraint) const {
  RLC_REQUIRE(s < num_vertices() && t < num_vertices(),
              "RlcIndex::Query: vertex out of range");
  RLC_REQUIRE(!constraint.empty(), "RlcIndex::Query: empty constraint");
  RLC_REQUIRE(constraint.size() <= k_,
              "RlcIndex::Query: |L|=" << constraint.size()
                                      << " exceeds the index's recursive k=" << k_);
  RLC_REQUIRE(IsPrimitive(constraint.labels()),
              "RlcIndex::Query: constraint " << constraint.ToString()
                  << " is not a minimum repeat (L != MR(L)); such queries add a"
                     " path-length constraint and are outside the RLC class");
  return QueryInterned(s, t, mrs_.Find(constraint));
}

bool RlcIndex::QueryStar(VertexId s, VertexId t, const LabelSeq& constraint) const {
  if (s == t) {
    RLC_REQUIRE(s < num_vertices(), "RlcIndex::QueryStar: vertex out of range");
    return true;
  }
  return Query(s, t, constraint);
}

bool RlcIndex::QueryInterned(VertexId s, VertexId t, MrId mr) const {
  if (mr == kInvalidMrId) return false;

  const std::vector<IndexEntry>& lout = out_[s];
  const std::vector<IndexEntry>& lin = in_[t];

  // Case 2: (t,L) ∈ Lout(s) or (s,L) ∈ Lin(t).
  if (ContainsEntry(lout, aid_[t], mr)) return true;
  if (ContainsEntry(lin, aid_[s], mr)) return true;

  // Case 1: merge join over the access-id-sorted entry lists.
  size_t i = 0, j = 0;
  while (i < lout.size() && j < lin.size()) {
    const uint32_t ha = lout[i].hub_aid;
    const uint32_t hb = lin[j].hub_aid;
    if (ha < hb) {
      ++i;
    } else if (hb < ha) {
      ++j;
    } else {
      bool out_has = false;
      bool in_has = false;
      while (i < lout.size() && lout[i].hub_aid == ha) {
        out_has |= (lout[i].mr == mr);
        ++i;
      }
      while (j < lin.size() && lin[j].hub_aid == ha) {
        in_has |= (lin[j].mr == mr);
        ++j;
      }
      if (out_has && in_has) return true;
    }
  }
  return false;
}

bool RlcIndex::ContainsEntry(const std::vector<IndexEntry>& entries,
                             uint32_t hub_aid, MrId mr) const {
  auto it = std::lower_bound(entries.begin(), entries.end(), hub_aid,
                             [](const IndexEntry& e, uint32_t aid) {
                               return e.hub_aid < aid;
                             });
  for (; it != entries.end() && it->hub_aid == hub_aid; ++it) {
    if (it->mr == mr) return true;
  }
  return false;
}

void RlcIndex::SetAccessOrder(std::vector<VertexId> order_to_vertex) {
  RLC_REQUIRE(order_to_vertex.size() == out_.size(),
              "SetAccessOrder: order size mismatch");
  order_ = std::move(order_to_vertex);
  for (uint32_t i = 0; i < order_.size(); ++i) {
    RLC_REQUIRE(order_[i] < out_.size(), "SetAccessOrder: vertex out of range");
    aid_[order_[i]] = i + 1;  // access ids are 1-based, as in the paper
  }
}

void RlcIndex::AddOut(VertexId v, uint32_t hub_aid, MrId mr) {
  RLC_DCHECK(v < out_.size());
  RLC_DCHECK(out_[v].empty() || out_[v].back().hub_aid <= hub_aid);
  out_[v].push_back({hub_aid, mr});
}

void RlcIndex::AddIn(VertexId v, uint32_t hub_aid, MrId mr) {
  RLC_DCHECK(v < in_.size());
  RLC_DCHECK(in_[v].empty() || in_[v].back().hub_aid <= hub_aid);
  in_[v].push_back({hub_aid, mr});
}

uint64_t RlcIndex::NumEntries() const {
  uint64_t total = 0;
  for (const auto& e : out_) total += e.size();
  for (const auto& e : in_) total += e.size();
  return total;
}

uint64_t RlcIndex::MemoryBytes() const {
  uint64_t bytes = mrs_.MemoryBytes();
  bytes += aid_.capacity() * sizeof(uint32_t);
  bytes += order_.capacity() * sizeof(VertexId);
  for (const auto& e : out_) bytes += e.size() * sizeof(IndexEntry);
  for (const auto& e : in_) bytes += e.size() * sizeof(IndexEntry);
  // Per-vertex vector headers are part of the materialized index.
  bytes += (out_.size() + in_.size()) * sizeof(std::vector<IndexEntry>);
  return bytes;
}

}  // namespace rlc
