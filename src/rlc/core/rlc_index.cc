#include "rlc/core/rlc_index.h"

#include <algorithm>

#include "rlc/util/simd.h"

namespace rlc {

namespace {

/// Entry-list pairs more than this factor apart in length are joined by
/// galloping over the raw lists instead of filter-and-intersect (filtering
/// would touch every entry of the huge list — exactly what galloping
/// avoids).
constexpr size_t kGallopRatio = 16;

/// First position in `entries[lo..)` whose hub_aid is >= `aid`, found by
/// exponential probing followed by binary search. O(log distance).
size_t GallopLowerBound(std::span<const IndexEntry> entries, size_t lo,
                        uint32_t aid) {
  size_t step = 1;
  size_t hi = lo;
  while (hi < entries.size() && entries[hi].hub_aid < aid) {
    lo = hi + 1;
    hi += step;
    step *= 2;
  }
  hi = std::min(hi, entries.size());
  const auto it = std::lower_bound(
      entries.begin() + static_cast<ptrdiff_t>(lo),
      entries.begin() + static_cast<ptrdiff_t>(hi), aid,
      [](const IndexEntry& e, uint32_t a) { return e.hub_aid < a; });
  return static_cast<size_t>(it - entries.begin());
}

}  // namespace

void RlcIndex::ValidateConstraint(const LabelSeq& constraint, uint32_t k) {
  RLC_REQUIRE(!constraint.empty(), "RlcIndex::ValidateConstraint: empty constraint");
  RLC_REQUIRE(constraint.size() <= k,
              "RlcIndex::ValidateConstraint: |L|="
                  << constraint.size() << " exceeds the index's recursive k=" << k);
  RLC_REQUIRE(IsPrimitive(constraint.labels()),
              "RlcIndex::ValidateConstraint: constraint " << constraint.ToString()
                  << " is not a minimum repeat (L != MR(L)); such queries add a"
                     " path-length constraint and are outside the RLC class");
}

bool RlcIndex::Query(VertexId s, VertexId t, const LabelSeq& constraint) const {
  RLC_REQUIRE(s < num_vertices() && t < num_vertices(),
              "RlcIndex::Query: vertex out of range");
  ValidateConstraint(constraint, k_);
  return QueryInterned(s, t, mrs_.Find(constraint));
}

bool RlcIndex::QueryStar(VertexId s, VertexId t, const LabelSeq& constraint) const {
  if (s == t) {
    RLC_REQUIRE(s < num_vertices(), "RlcIndex::QueryStar: vertex out of range");
    return true;
  }
  return Query(s, t, constraint);
}

bool RlcIndex::QueryInterned(VertexId s, VertexId t, MrId mr) const {
  if (mr == kInvalidMrId) return false;
  // The signature guard covers sealed indexes with a frozen MR table; an mr
  // beyond the table snapshot (only possible through the builder's own
  // mid-build probes) falls through to the unguarded path.
  if (use_signatures_ && mr < mr_query_sig_.size()) {
    return QuerySealedSigned(s, t, mr, mr_query_sig_[mr]);
  }

  const std::span<const IndexEntry> lout = Lout(s);
  const std::span<const IndexEntry> lin = Lin(t);

  // Case 2: (t,L) ∈ Lout(s) or (s,L) ∈ Lin(t), tombstoned entries excluded.
  if (ContainsVisibleEntry(lout, TombLout(s), aid_[t], mr)) return true;
  if (ContainsVisibleEntry(lin, TombLin(t), aid_[s], mr)) return true;

  // Case 1: a common hub carrying L on both sides. The raw (possibly
  // tombstone-polluted) join runs first as a filter: tombstones only remove
  // entries, so a false join is final and the visibility-aware re-join runs
  // only for the rare true hit on a tombstoned endpoint.
  if (JoinHasCommonHub(lout, lin, mr) &&
      JoinVisibleCommonHub(lout, TombLout(s), lin, TombLin(t), mr)) {
    return true;
  }
  return delta_entries_ != 0 && QueryDeltaTail(s, t, mr, lout, lin);
}

bool RlcIndex::QueryDeltaTail(VertexId s, VertexId t, MrId mr,
                              std::span<const IndexEntry> lout,
                              std::span<const IndexEntry> lin) const {
  const std::span<const IndexEntry> dout = DeltaLout(s);
  const std::span<const IndexEntry> din = DeltaLin(t);
  if (dout.empty() && din.empty()) return false;
  // Case 2 against the delta lists (which never hold tombstoned entries).
  if (ContainsEntry(dout, aid_[t], mr)) return true;
  if (ContainsEntry(din, aid_[s], mr)) return true;
  // Case 1 joins with at least one delta side (CSR x CSR already ran). The
  // CSR side of a mixed join may hold tombstoned entries, so a raw hit is
  // re-verified visibility-aware, exactly like the main join.
  if (JoinHasCommonHub(dout, lin, mr) &&
      JoinVisibleCommonHub(dout, {}, lin, TombLin(t), mr)) {
    return true;
  }
  if (JoinHasCommonHub(lout, din, mr) &&
      JoinVisibleCommonHub(lout, TombLout(s), din, {}, mr)) {
    return true;
  }
  return JoinHasCommonHub(dout, din, mr);
}

bool RlcIndex::QuerySealedSigned(VertexId s, VertexId t, MrId mr,
                                 uint64_t needed) const {
  const uint64_t so = out_sigs_[s];
  const uint64_t si = in_sigs_[t];
  // A true answer needs an entry carrying `mr` in Lout(s) (Cases 1 and
  // 2-out) or in Lin(t) (Cases 1 and 2-in): when both sides provably lack
  // the MR, the probe is refuted from the two signature loads alone.
  const bool out_may = (so & needed) == needed;
  const bool in_may = (si & needed) == needed;
  if (!out_may && !in_may) return false;

  // Tombstones leave the signatures conservatively wide, so the guards
  // above stay sound; raw-list hits below are re-checked for visibility.
  const std::span<const IndexEntry> lout = Lout(s);
  const std::span<const IndexEntry> lin = Lin(t);

  // Case 2, each side additionally guarded by the other endpoint's hub bit.
  if (out_may && (so & HubSignatureBit(aid_[t])) != 0 &&
      ContainsVisibleEntry(lout, TombLout(s), aid_[t], mr)) {
    return true;
  }
  if (in_may && (si & HubSignatureBit(aid_[s])) != 0 &&
      ContainsVisibleEntry(lin, TombLin(t), aid_[s], mr)) {
    return true;
  }

  // Case 1 needs the MR on both sides and at least one shared hub bit; a
  // raw join hit on a tombstoned endpoint is re-verified (see
  // QueryInterned).
  if (out_may && in_may && (so & si & kSigHubMask) != 0 &&
      JoinHasCommonHub(lout, lin, mr) &&
      JoinVisibleCommonHub(lout, TombLout(s), lin, TombLin(t), mr)) {
    return true;
  }
  // Delta appends widen the vertex signatures, so a probe whose witness
  // entry lives in a delta list survives the guards above and lands here.
  return delta_entries_ != 0 && QueryDeltaTail(s, t, mr, lout, lin);
}

template <bool kCounted>
void RlcIndex::QueryGroupInternedImpl(MrId mr,
                                      std::span<const VertexPair> probes,
                                      std::span<uint8_t> answers,
                                      GroupQueryStats* stats) const {
  RLC_DCHECK(answers.size() == probes.size());
  if (mr == kInvalidMrId) {
    std::fill(answers.begin(), answers.end(), uint8_t{0});
    if constexpr (kCounted) stats->probes += probes.size();
    return;
  }
  if (!sealed_) {
    uint64_t hits = 0;
    for (size_t i = 0; i < probes.size(); ++i) {
      const bool a = QueryInterned(probes[i].s, probes[i].t, mr);
      answers[i] = a ? 1 : 0;
      if constexpr (kCounted) hits += a;
    }
    if constexpr (kCounted) {
      stats->probes += probes.size();
      stats->hits += hits;
    }
    return;
  }
  // Two-stage lookahead: by the time a probe is merged-joined, its offset
  // and signature loads were issued kOffsetLead probes ago and its
  // entry-buffer loads kEntryLead probes ago (the entry prefetch needs the
  // offsets resident, hence the shorter distance). 8/4 measured best on the
  // 20K/100K ER workload; beyond ~16 the prefetches start evicting
  // still-needed lines.
  constexpr size_t kOffsetLead = 8;
  constexpr size_t kEntryLead = 4;
  const bool with_sigs = use_signatures_ && mr < mr_query_sig_.size();
  const uint64_t needed = with_sigs ? mr_query_sig_[mr] : 0;
  const size_t n = probes.size();
  [[maybe_unused]] uint64_t sig_refuted = 0;
  [[maybe_unused]] uint64_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    if (i + kOffsetLead < n) {
      const VertexPair& p = probes[i + kOffsetLead];
      PrefetchRead(&out_offsets_[p.s]);
      PrefetchRead(&in_offsets_[p.t]);
      PrefetchRead(&aid_[p.s]);
      PrefetchRead(&aid_[p.t]);
      if (with_sigs) {
        PrefetchRead(&out_sigs_[p.s]);
        PrefetchRead(&in_sigs_[p.t]);
      }
    }
    if (i + kEntryLead < n) {
      const VertexPair& p = probes[i + kEntryLead];
      PrefetchRead(out_entries_.data() + out_offsets_[p.s]);
      PrefetchRead(in_entries_.data() + in_offsets_[p.t]);
    }
    bool a;
    if (with_sigs) {
      if constexpr (kCounted) {
        // Count the two-load refutation inline: re-checking the signature
        // guard here keeps QuerySealedSigned untouched, and the loads are
        // L1-resident (the guard inside re-reads the same lines).
        const bool out_may = (out_sigs_[probes[i].s] & needed) == needed;
        const bool in_may = (in_sigs_[probes[i].t] & needed) == needed;
        if (!out_may && !in_may) {
          ++sig_refuted;
          a = false;
        } else {
          a = QuerySealedSigned(probes[i].s, probes[i].t, mr, needed);
        }
      } else {
        a = QuerySealedSigned(probes[i].s, probes[i].t, mr, needed);
      }
    } else {
      a = QueryInterned(probes[i].s, probes[i].t, mr);
    }
    answers[i] = a ? 1 : 0;
    if constexpr (kCounted) hits += a;
  }
  if constexpr (kCounted) {
    stats->probes += n;
    stats->sig_refuted += sig_refuted;
    stats->hits += hits;
  }
}

void RlcIndex::QueryGroupInterned(MrId mr, std::span<const VertexPair> probes,
                                  std::span<uint8_t> answers) const {
  QueryGroupInternedImpl<false>(mr, probes, answers, nullptr);
}

void RlcIndex::QueryGroupInterned(MrId mr, std::span<const VertexPair> probes,
                                  std::span<uint8_t> answers,
                                  GroupQueryStats* stats) const {
  if (stats == nullptr) {
    QueryGroupInternedImpl<false>(mr, probes, answers, nullptr);
  } else {
    QueryGroupInternedImpl<true>(mr, probes, answers, stats);
  }
}

bool RlcIndex::JoinHasCommonHub(std::span<const IndexEntry> lout,
                                std::span<const IndexEntry> lin, MrId mr) {
  if (lout.empty() || lin.empty()) return false;
  // Extreme skew: gallop over the raw entry lists, never touching most of
  // the long one.
  if (lout.size() > lin.size() * kGallopRatio) return GallopJoin(lin, lout, mr);
  if (lin.size() > lout.size() * kGallopRatio) return GallopJoin(lout, lin, mr);

  // Comparable lengths: left-pack each side to the hub access ids that
  // carry `mr` (branch-free, SIMD when available), then run the hybrid
  // existence intersection over the two sorted hub arrays. The builder
  // never stores duplicate (hub, mr) pairs, so the packed arrays are
  // strictly increasing — and the kernels tolerate duplicates anyway.
  thread_local std::vector<uint32_t> packed_out;
  thread_local std::vector<uint32_t> packed_in;
  if (packed_out.size() < lout.size()) packed_out.resize(lout.size());
  if (packed_in.size() < lin.size()) packed_in.resize(lin.size());
  static_assert(sizeof(IndexEntry) == 2 * sizeof(uint32_t));
  const size_t na = simd::FilterFirstBySecond(
      reinterpret_cast<const uint32_t*>(lout.data()), lout.size(), mr,
      packed_out.data());
  if (na == 0) return false;
  const size_t nb = simd::FilterFirstBySecond(
      reinterpret_cast<const uint32_t*>(lin.data()), lin.size(), mr,
      packed_in.data());
  if (nb == 0) return false;
  return simd::HasCommonElement(packed_out.data(), na, packed_in.data(), nb);
}

bool RlcIndex::GallopJoin(std::span<const IndexEntry> small,
                          std::span<const IndexEntry> large, MrId mr) {
  size_t lo = 0;  // galloping resumes where the previous group ended
  for (size_t i = 0; i < small.size();) {
    const uint32_t aid = small[i].hub_aid;
    bool small_has = false;
    while (i < small.size() && small[i].hub_aid == aid) {
      small_has |= (small[i].mr == mr);
      ++i;
    }
    if (!small_has) continue;
    lo = GallopLowerBound(large, lo, aid);
    for (size_t j = lo; j < large.size() && large[j].hub_aid == aid; ++j) {
      if (large[j].mr == mr) return true;
    }
    if (lo == large.size()) return false;  // everything left is larger
  }
  return false;
}

bool RlcIndex::ContainsEntry(std::span<const IndexEntry> entries,
                             uint32_t hub_aid, MrId mr) {
  auto it = std::lower_bound(entries.begin(), entries.end(), hub_aid,
                             [](const IndexEntry& e, uint32_t aid) {
                               return e.hub_aid < aid;
                             });
  for (; it != entries.end() && it->hub_aid == hub_aid; ++it) {
    if (it->mr == mr) return true;
  }
  return false;
}

bool RlcIndex::ContainsVisibleEntry(std::span<const IndexEntry> entries,
                                    std::span<const IndexEntry> tombs,
                                    uint32_t hub_aid, MrId mr) {
  // (hub, mr) pairs are unique per list, so visibility is one extra lookup
  // — and only on a hit against a vertex that has tombstones at all.
  return ContainsEntry(entries, hub_aid, mr) &&
         (tombs.empty() || !ContainsEntry(tombs, hub_aid, mr));
}

bool RlcIndex::JoinVisibleCommonHub(std::span<const IndexEntry> lout,
                                    std::span<const IndexEntry> tout,
                                    std::span<const IndexEntry> lin,
                                    std::span<const IndexEntry> tin, MrId mr) {
  // Only reached after a raw join hit; with no tombstones on either side
  // the hit is exact. Otherwise re-join scalar, skipping suppressed
  // entries — positives on tombstoned endpoints are rare enough that the
  // O(|lout| + |lin|) sweep never shows on the profile.
  if (tout.empty() && tin.empty()) return true;
  size_t i = 0;
  size_t j = 0;
  while (i < lout.size() && j < lin.size()) {
    const uint32_t a = lout[i].hub_aid;
    const uint32_t b = lin[j].hub_aid;
    if (a < b) {
      ++i;
      continue;
    }
    if (b < a) {
      ++j;
      continue;
    }
    bool out_has = false;
    for (; i < lout.size() && lout[i].hub_aid == a; ++i) {
      out_has |= lout[i].mr == mr;
    }
    bool in_has = false;
    for (; j < lin.size() && lin[j].hub_aid == a; ++j) {
      in_has |= lin[j].mr == mr;
    }
    if (out_has && in_has && !ContainsEntry(tout, a, mr) &&
        !ContainsEntry(tin, a, mr)) {
      return true;
    }
  }
  return false;
}

void RlcIndex::SetAccessOrder(std::vector<VertexId> order_to_vertex) {
  RLC_REQUIRE(order_to_vertex.size() == aid_.size(),
              "SetAccessOrder: order size mismatch");
  order_ = std::move(order_to_vertex);
  for (uint32_t i = 0; i < order_.size(); ++i) {
    RLC_REQUIRE(order_[i] < aid_.size(), "SetAccessOrder: vertex out of range");
    aid_[order_[i]] = i + 1;  // access ids are 1-based, as in the paper
  }
}

void RlcIndex::AddOut(VertexId v, uint32_t hub_aid, MrId mr) {
  RLC_CHECK_MSG(!sealed_, "RlcIndex::AddOut: index is sealed");
  RLC_DCHECK(v < out_.size());
  RLC_DCHECK(out_[v].empty() || out_[v].back().hub_aid <= hub_aid);
  out_[v].push_back({hub_aid, mr});
}

void RlcIndex::AddIn(VertexId v, uint32_t hub_aid, MrId mr) {
  RLC_CHECK_MSG(!sealed_, "RlcIndex::AddIn: index is sealed");
  RLC_DCHECK(v < in_.size());
  RLC_DCHECK(in_[v].empty() || in_[v].back().hub_aid <= hub_aid);
  in_[v].push_back({hub_aid, mr});
}

namespace {

void Flatten(std::vector<std::vector<IndexEntry>>& lists,
             std::vector<uint64_t>& offsets, std::vector<IndexEntry>& entries) {
  offsets.resize(lists.size() + 1);
  uint64_t total = 0;
  for (size_t v = 0; v < lists.size(); ++v) {
    offsets[v] = total;
    total += lists[v].size();
  }
  offsets[lists.size()] = total;
  entries.reserve(total);
  for (auto& list : lists) {
    entries.insert(entries.end(), list.begin(), list.end());
  }
  lists.clear();
  lists.shrink_to_fit();
}

}  // namespace

uint64_t RlcIndex::LabelSignature(std::span<const Label> labels) {
  uint64_t bits = 0;
  for (const Label l : labels) bits |= uint64_t{1} << (32 + (l & 15));
  return bits;
}

uint64_t RlcIndex::ListSignature(std::span<const IndexEntry> entries) const {
  uint64_t sig = 0;
  for (const IndexEntry& e : entries) {
    sig |= HubSignatureBit(e.hub_aid) |
           LabelSignature(mrs_.Get(e.mr).labels()) | MrBloomBit(e.mr);
  }
  return sig;
}

void RlcIndex::ComputeSignatures(bool keep_vertex_sigs) {
  RLC_DCHECK(sealed_);
  // Per-MR required bits, reused both here (folding entry contributions)
  // and by every signature-guarded query.
  mr_query_sig_.resize(mrs_.size());
  for (MrId id = 0; id < mrs_.size(); ++id) {
    mr_query_sig_[id] = LabelSignature(mrs_.Get(id).labels()) | MrBloomBit(id);
  }
  if (keep_vertex_sigs && out_sigs_.size() == aid_.size() &&
      in_sigs_.size() == aid_.size()) {
    return;  // adopted from a v3 file
  }
  const VertexId n = num_vertices();
  out_sigs_.assign(n, 0);
  in_sigs_.assign(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    uint64_t sig = 0;
    for (const IndexEntry& e : Csr(out_offsets_, out_entries_, v)) {
      sig |= HubSignatureBit(e.hub_aid) | mr_query_sig_[e.mr];
    }
    out_sigs_[v] = sig;
    sig = 0;
    for (const IndexEntry& e : Csr(in_offsets_, in_entries_, v)) {
      sig |= HubSignatureBit(e.hub_aid) | mr_query_sig_[e.mr];
    }
    in_sigs_[v] = sig;
  }
}

void RlcIndex::Seal() {
  if (sealed_) return;
  Flatten(out_, out_offsets_, out_entries_);
  Flatten(in_, in_offsets_, in_entries_);
  sealed_ = true;
  ComputeSignatures(/*keep_vertex_sigs=*/false);
}

void RlcIndex::AdoptSealed(std::vector<uint64_t> out_offsets,
                           std::vector<IndexEntry> out_entries,
                           std::vector<uint64_t> in_offsets,
                           std::vector<IndexEntry> in_entries,
                           std::vector<uint64_t> out_sigs,
                           std::vector<uint64_t> in_sigs) {
  RLC_CHECK_MSG(!sealed_ && NumEntries() == 0,
                "RlcIndex::AdoptSealed: index already has entries");
  RLC_REQUIRE(out_sigs.size() == in_sigs.size() &&
                  (out_sigs.empty() || out_sigs.size() == aid_.size()),
              "AdoptSealed: signature array size mismatch");
  auto validate = [&](const std::vector<uint64_t>& offsets,
                      const std::vector<IndexEntry>& entries) {
    RLC_REQUIRE(offsets.size() == aid_.size() + 1,
                "AdoptSealed: offset array size mismatch");
    RLC_REQUIRE(offsets.front() == 0 && offsets.back() == entries.size(),
                "AdoptSealed: offsets do not cover the entry buffer");
    // Full monotonicity before any entries[] access: only once every offset
    // is known to be <= offsets.back() == entries.size() is the sortedness
    // scan below in bounds (a corrupt [0, big, small, ..., size] prefix
    // passes the front/back check but indexes past the buffer).
    for (size_t v = 0; v + 1 < offsets.size(); ++v) {
      RLC_REQUIRE(offsets[v] <= offsets[v + 1],
                  "AdoptSealed: offsets not monotone");
    }
    for (size_t v = 0; v + 1 < offsets.size(); ++v) {
      for (uint64_t i = offsets[v]; i + 1 < offsets[v + 1]; ++i) {
        RLC_REQUIRE(entries[i].hub_aid <= entries[i + 1].hub_aid,
                    "AdoptSealed: entry list not sorted by access id");
      }
    }
  };
  validate(out_offsets, out_entries);
  validate(in_offsets, in_entries);
  out_offsets_ = std::move(out_offsets);
  out_entries_ = std::move(out_entries);
  in_offsets_ = std::move(in_offsets);
  in_entries_ = std::move(in_entries);
  const bool adopted_sigs = !out_sigs.empty() || aid_.empty();
  out_sigs_ = std::move(out_sigs);
  in_sigs_ = std::move(in_sigs);
  out_.clear();
  out_.shrink_to_fit();
  in_.clear();
  in_.shrink_to_fit();
  sealed_ = true;
  ComputeSignatures(/*keep_vertex_sigs=*/adopted_sigs);
}

void RlcIndex::AddDeltaOut(VertexId v, uint32_t hub_aid, MrId mr) {
  AddDelta(delta_out_, out_sigs_, v, hub_aid, mr);
}

void RlcIndex::AddDeltaIn(VertexId v, uint32_t hub_aid, MrId mr) {
  AddDelta(delta_in_, in_sigs_, v, hub_aid, mr);
}

void RlcIndex::AddDelta(std::vector<std::vector<IndexEntry>>& lists,
                        std::vector<uint64_t>& sigs, VertexId v,
                        uint32_t hub_aid, MrId mr) {
  RLC_CHECK_MSG(sealed_, "RlcIndex::AddDelta: delta overlay requires a sealed index");
  RLC_DCHECK(v < aid_.size());
  RLC_DCHECK(mr < mrs_.size());
  if (lists.empty()) lists.resize(aid_.size());
  EnsureMrSigs();
  std::vector<IndexEntry>& list = lists[v];
  const auto it = std::upper_bound(
      list.begin(), list.end(), hub_aid,
      [](uint32_t aid, const IndexEntry& e) { return aid < e.hub_aid; });
  list.insert(it, {hub_aid, mr});
  // Conservative widening: refutation stays sound, and MergeDeltas narrows
  // the signature back to the exact fold.
  sigs[v] |= HubSignatureBit(hub_aid) | mr_query_sig_[mr];
  ++delta_entries_;
}

void RlcIndex::SuppressOut(VertexId v, uint32_t hub_aid, MrId mr) {
  Suppress(delta_out_, out_offsets_, out_entries_, /*is_out=*/true, v, hub_aid,
           mr);
}

void RlcIndex::SuppressIn(VertexId v, uint32_t hub_aid, MrId mr) {
  Suppress(delta_in_, in_offsets_, in_entries_, /*is_out=*/false, v, hub_aid,
           mr);
}

void RlcIndex::Suppress(std::vector<std::vector<IndexEntry>>& deltas,
                        const std::vector<uint64_t>& offsets,
                        const std::vector<IndexEntry>& entries, bool is_out,
                        VertexId v, uint32_t hub_aid, MrId mr) {
  RLC_CHECK_MSG(sealed_, "RlcIndex::Suppress: requires a sealed index");
  RLC_DCHECK(v < aid_.size());
  // A pending delta is mutable storage: erase it outright instead of
  // carrying a tombstone for it.
  if (!deltas.empty()) {
    std::vector<IndexEntry>& list = deltas[v];
    for (auto it = list.begin(); it != list.end(); ++it) {
      if (it->hub_aid == hub_aid && it->mr == mr) {
        list.erase(it);
        --delta_entries_;
        return;
      }
    }
  }
  if (is_out) {
    AddTombstone(tomb_out_, offsets, entries, v, hub_aid, mr);
  } else {
    AddTombstone(tomb_in_, offsets, entries, v, hub_aid, mr);
  }
}

void RlcIndex::AddTombstoneOut(VertexId v, uint32_t hub_aid, MrId mr) {
  RLC_CHECK_MSG(sealed_, "RlcIndex::AddTombstoneOut: requires a sealed index");
  AddTombstone(tomb_out_, out_offsets_, out_entries_, v, hub_aid, mr);
}

void RlcIndex::AddTombstoneIn(VertexId v, uint32_t hub_aid, MrId mr) {
  RLC_CHECK_MSG(sealed_, "RlcIndex::AddTombstoneIn: requires a sealed index");
  AddTombstone(tomb_in_, in_offsets_, in_entries_, v, hub_aid, mr);
}

void RlcIndex::AddTombstone(std::vector<std::vector<IndexEntry>>& tombs,
                            const std::vector<uint64_t>& offsets,
                            const std::vector<IndexEntry>& entries, VertexId v,
                            uint32_t hub_aid, MrId mr) {
  RLC_REQUIRE(ContainsEntry(Csr(offsets, entries, v), hub_aid, mr),
              "RlcIndex::AddTombstone: no CSR entry (hub " << hub_aid << ", mr "
                  << mr << ") at vertex " << v);
  if (tombs.empty()) tombs.resize(aid_.size());
  std::vector<IndexEntry>& list = tombs[v];
  const IndexEntry entry{hub_aid, mr};
  const auto it = std::lower_bound(
      list.begin(), list.end(), entry, [](const IndexEntry& a, const IndexEntry& b) {
        return a.hub_aid != b.hub_aid ? a.hub_aid < b.hub_aid : a.mr < b.mr;
      });
  RLC_REQUIRE(it == list.end() || !(it->hub_aid == hub_aid && it->mr == mr),
              "RlcIndex::AddTombstone: entry (hub " << hub_aid << ", mr " << mr
                  << ") at vertex " << v << " is already tombstoned");
  list.insert(it, entry);
  ++tombstone_entries_;
}

void RlcIndex::EnsureMrSigs() {
  for (MrId id = static_cast<MrId>(mr_query_sig_.size()); id < mrs_.size();
       ++id) {
    mr_query_sig_.push_back(LabelSignature(mrs_.Get(id).labels()) |
                            MrBloomBit(id));
  }
}

namespace {

/// Per-vertex two-pointer merge of the CSR side with its delta lists,
/// dropping tombstoned CSR entries; surviving CSR entries precede delta
/// entries on equal hub access ids. The tombstone list is consumed with
/// its own cursor — both lists are hub-sorted, so the merge stays linear
/// even for hub vertices dense with tombstones.
void MergeSide(std::vector<uint64_t>& offsets, std::vector<IndexEntry>& entries,
               std::vector<std::vector<IndexEntry>>& deltas,
               const std::vector<std::vector<IndexEntry>>& tombs) {
  uint64_t extra = 0;
  for (const auto& d : deltas) extra += d.size();
  uint64_t dropped = 0;
  for (const auto& t : tombs) dropped += t.size();
  if (extra == 0 && dropped == 0) return;
  std::vector<uint64_t> new_offsets(offsets.size());
  std::vector<IndexEntry> merged;
  merged.reserve(entries.size() + extra - dropped);
  const size_t n = offsets.size() - 1;
  for (size_t v = 0; v < n; ++v) {
    new_offsets[v] = merged.size();
    const IndexEntry* base = entries.data() + offsets[v];
    const IndexEntry* base_end = entries.data() + offsets[v + 1];
    const std::vector<IndexEntry>* d = deltas.empty() ? nullptr : &deltas[v];
    const std::vector<IndexEntry>* t = tombs.empty() ? nullptr : &tombs[v];
    size_t j = 0;
    size_t ti = 0;
    for (; base != base_end; ++base) {
      if (d != nullptr) {
        while (j < d->size() && (*d)[j].hub_aid < base->hub_aid) {
          merged.push_back((*d)[j++]);
        }
      }
      bool tombstoned = false;
      if (t != nullptr) {
        while (ti < t->size() && (*t)[ti].hub_aid < base->hub_aid) ++ti;
        // Scan the (tiny) equal-hub tie range without consuming it: several
        // base entries can share the hub with distinct MRs.
        for (size_t x = ti; x < t->size() && (*t)[x].hub_aid == base->hub_aid;
             ++x) {
          if ((*t)[x].mr == base->mr) {
            tombstoned = true;
            break;
          }
        }
      }
      if (!tombstoned) merged.push_back(*base);
    }
    if (d != nullptr) {
      merged.insert(merged.end(), d->begin() + static_cast<ptrdiff_t>(j),
                    d->end());
    }
  }
  new_offsets[n] = merged.size();
  offsets = std::move(new_offsets);
  entries = std::move(merged);
}

}  // namespace

void RlcIndex::MergeDeltas() {
  RLC_CHECK_MSG(sealed_, "RlcIndex::MergeDeltas: index must be sealed");
  if (delta_entries_ == 0 && tombstone_entries_ == 0) return;
  MergeSide(out_offsets_, out_entries_, delta_out_, tomb_out_);
  MergeSide(in_offsets_, in_entries_, delta_in_, tomb_in_);
  delta_out_.clear();
  delta_out_.shrink_to_fit();
  delta_in_.clear();
  delta_in_.shrink_to_fit();
  delta_entries_ = 0;
  tomb_out_.clear();
  tomb_out_.shrink_to_fit();
  tomb_in_.clear();
  tomb_in_.shrink_to_fit();
  tombstone_entries_ = 0;
  ComputeSignatures(/*keep_vertex_sigs=*/false);
}

uint64_t RlcIndex::NumEntries() const {
  if (sealed_) {
    return out_entries_.size() + in_entries_.size() + delta_entries_ -
           tombstone_entries_;
  }
  uint64_t total = 0;
  for (const auto& e : out_) total += e.size();
  for (const auto& e : in_) total += e.size();
  return total;
}

uint64_t RlcIndex::MemoryBytes() const {
  uint64_t bytes = mrs_.MemoryBytes();
  bytes += aid_.capacity() * sizeof(uint32_t);
  bytes += order_.capacity() * sizeof(VertexId);
  if (sealed_) {
    bytes += (out_offsets_.capacity() + in_offsets_.capacity()) * sizeof(uint64_t);
    bytes += (out_entries_.capacity() + in_entries_.capacity()) * sizeof(IndexEntry);
    bytes += (out_sigs_.capacity() + in_sigs_.capacity() +
              mr_query_sig_.capacity()) *
             sizeof(uint64_t);
    bytes += (delta_entries_ + tombstone_entries_) * sizeof(IndexEntry);
    bytes += (delta_out_.size() + delta_in_.size() + tomb_out_.size() +
              tomb_in_.size()) *
             sizeof(std::vector<IndexEntry>);
  } else {
    for (const auto& e : out_) bytes += e.size() * sizeof(IndexEntry);
    for (const auto& e : in_) bytes += e.size() * sizeof(IndexEntry);
    // Per-vertex vector headers are part of the materialized index.
    bytes += (out_.size() + in_.size()) * sizeof(std::vector<IndexEntry>);
  }
  return bytes;
}

}  // namespace rlc
