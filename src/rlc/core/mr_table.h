// Interning table for minimum repeats.
//
// Every distinct k-MR that appears anywhere in an RLC index (or in the ETC
// baseline) is stored once and referred to by a dense 32-bit id. Index
// entries then are 8 bytes — (hub access id, MR id) — which both shrinks the
// index (the paper's index-size metric) and turns MR equality checks in the
// merge-join query into integer compares.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rlc/core/label_seq.h"

namespace rlc {

/// Dense id of an interned minimum repeat.
using MrId = uint32_t;

/// Sentinel: the sequence is not interned (used by lookups on the query
/// path; a constraint whose MR was never recorded cannot be satisfied).
inline constexpr MrId kInvalidMrId = UINT32_MAX;

/// Append-only interning table: LabelSeq <-> MrId.
class MrTable {
 public:
  /// Returns the id of `seq`, interning it on first sight.
  MrId Intern(const LabelSeq& seq) {
    auto [it, inserted] = ids_.emplace(seq, static_cast<MrId>(seqs_.size()));
    if (inserted) seqs_.push_back(seq);
    return it->second;
  }

  /// Returns the id of `seq` or kInvalidMrId when never interned.
  MrId Find(const LabelSeq& seq) const {
    auto it = ids_.find(seq);
    return it == ids_.end() ? kInvalidMrId : it->second;
  }

  /// The sequence with id `id`.
  const LabelSeq& Get(MrId id) const {
    RLC_DCHECK(id < seqs_.size());
    return seqs_[id];
  }

  uint32_t size() const { return static_cast<uint32_t>(seqs_.size()); }

  /// Estimated heap footprint in bytes (counted into index size).
  uint64_t MemoryBytes() const {
    // unordered_map nodes ~ (key + value + bucket overhead); a conservative
    // estimate consistent across runs.
    return seqs_.capacity() * sizeof(LabelSeq) +
           ids_.size() * (sizeof(LabelSeq) + sizeof(MrId) + 2 * sizeof(void*));
  }

 private:
  std::vector<LabelSeq> seqs_;
  std::unordered_map<LabelSeq, MrId, LabelSeqHash> ids_;
};

}  // namespace rlc
