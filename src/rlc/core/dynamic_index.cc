#include "rlc/core/dynamic_index.h"

#include <algorithm>
#include <map>
#include <unordered_set>
#include <utility>

#include "rlc/obs/trace.h"
#include "rlc/util/timer.h"

namespace {

// Process-wide dynamic-index telemetry (global registry): per-shard
// instances aggregate here, which is what capacity planning wants —
// "how long do reseals take", not "which of 64 shards resealed".
struct DynMetrics {
  rlc::obs::Histogram& insert_ns;
  rlc::obs::Histogram& delete_ns;
  rlc::obs::Histogram& reseal_merge_ns;
  rlc::obs::Histogram& reseal_swap_ns;
  rlc::obs::Counter& reseals;
  rlc::obs::Counter& deltas_replayed;
  static DynMetrics& Get() {
    rlc::obs::Registry& reg = rlc::obs::Registry::Global();
    static DynMetrics m{reg.GetHistogram("dyn.insert_ns"),
                        reg.GetHistogram("dyn.delete_ns"),
                        reg.GetHistogram("dyn.reseal.merge_ns"),
                        reg.GetHistogram("dyn.reseal.swap_ns"),
                        reg.GetCounter("dyn.reseal.count"),
                        reg.GetCounter("dyn.reseal.deltas_replayed")};
    return m;
  }
};

}  // namespace

namespace rlc {

namespace {

struct VertexSeq {
  VertexId v;
  LabelSeq seq;
  friend bool operator==(const VertexSeq&, const VertexSeq&) = default;
};

struct VertexSeqHash {
  uint64_t operator()(const VertexSeq& vs) const {
    return vs.seq.Hash() * 0x9E3779B97F4A7C15ULL + vs.v;
  }
};

}  // namespace

DynamicRlcIndex::DynamicRlcIndex(const DiGraph& g, RlcIndex index,
                                 ResealPolicy policy)
    : g_(g),
      policy_(policy),
      current_(std::make_shared<RlcIndex>(std::move(index))) {
  RLC_REQUIRE(current_->sealed(),
              "DynamicRlcIndex: the wrapped index must be sealed");
  RLC_REQUIRE(current_->num_vertices() == g.num_vertices(),
              "DynamicRlcIndex: index and graph vertex counts differ");
}

DynamicRlcIndex::~DynamicRlcIndex() {
  if (reseal_thread_.joinable()) reseal_thread_.join();
}

bool DynamicRlcIndex::BaseEdgeRemoved(VertexId u, Label l, VertexId v) const {
  return EdgeShadowed(/*backward=*/false, u, {v, l});
}

bool DynamicRlcIndex::HasEdge(VertexId u, Label label, VertexId v) const {
  if (g_.HasEdge(u, v, label) && !BaseEdgeRemoved(u, label, v)) return true;
  if (extra_out_.empty()) return false;
  for (const LabeledNeighbor& nb : extra_out_[u]) {
    if (nb.v == v && nb.label == label) return true;
  }
  return false;
}

namespace {

bool EraseNeighbor(std::vector<LabeledNeighbor>& list, VertexId v, Label l) {
  const auto it = std::find(list.begin(), list.end(), LabeledNeighbor{v, l});
  if (it == list.end()) return false;
  list.erase(it);
  return true;
}

void EraseUpdateRecord(std::vector<EdgeUpdate>& log, VertexId u, Label l,
                       VertexId v) {
  const auto it =
      std::find_if(log.begin(), log.end(), [&](const EdgeUpdate& e) {
        return e.src == u && e.label == l && e.dst == v;
      });
  RLC_DCHECK(it != log.end());
  log.erase(it);
}

}  // namespace

void DynamicRlcIndex::RemoveGraphEdge(VertexId u, Label l, VertexId v) {
  if (!extra_out_.empty() && EraseNeighbor(extra_out_[u], v, l)) {
    EraseNeighbor(extra_in_[v], u, l);
    EraseUpdateRecord(inserted_, u, l, v);
    return;
  }
  if (removed_out_.empty()) {
    removed_out_.resize(g_.num_vertices());
    removed_in_.resize(g_.num_vertices());
  }
  removed_out_[u].push_back({v, l});
  removed_in_[v].push_back({u, l});
  removed_.push_back({u, l, v, EdgeOp::kDelete});
}

bool DynamicRlcIndex::InsertEdge(VertexId u, Label label, VertexId v) {
  RLC_REQUIRE(u < g_.num_vertices() && v < g_.num_vertices(),
              "DynamicRlcIndex::InsertEdge: vertex out of range");
  RLC_REQUIRE(label < g_.num_labels(),
              "DynamicRlcIndex::InsertEdge: label " << label
                  << " outside the base graph's alphabet (new labels require"
                     " a rebuild)");
  obs::ScopedSpan span(DynMetrics::Get().insert_ns, "dyn.insert");
  TryCompleteReseal(/*wait=*/false);
  if (HasEdge(u, label, v)) {
    ++stats_.edges_duplicate;
    return false;
  }
  if (BaseEdgeRemoved(u, label, v)) {
    // A previously deleted base edge returns: un-shadow it instead of
    // duplicating it in the overlay.
    EraseNeighbor(removed_out_[u], v, label);
    EraseNeighbor(removed_in_[v], u, label);
    EraseUpdateRecord(removed_, u, label, v);
  } else {
    if (extra_out_.empty()) {
      extra_out_.resize(g_.num_vertices());
      extra_in_.resize(g_.num_vertices());
    }
    extra_out_[u].push_back({v, label});
    extra_in_[v].push_back({u, label});
    inserted_.push_back({u, label, v});
  }
  IncrementalUpdate(u, label, v);
  ++stats_.edges_inserted;
  MaybeReseal();
  return true;
}

bool DynamicRlcIndex::DeleteEdge(VertexId u, Label label, VertexId v) {
  RLC_REQUIRE(u < g_.num_vertices() && v < g_.num_vertices(),
              "DynamicRlcIndex::DeleteEdge: vertex out of range");
  RLC_REQUIRE(label < g_.num_labels(),
              "DynamicRlcIndex::DeleteEdge: label " << label
                  << " outside the base graph's alphabet");
  obs::ScopedSpan span(DynMetrics::Get().delete_ns, "dyn.delete");
  TryCompleteReseal(/*wait=*/false);
  if (!HasEdge(u, label, v)) {
    ++stats_.edges_delete_missing;
    return false;
  }
  IncrementalDelete(u, label, v);
  ++stats_.edges_deleted;
  MaybeReseal();
  return true;
}

void DynamicRlcIndex::RestoreOverlay(std::span<const EdgeUpdate> inserted,
                                     std::span<const EdgeUpdate> removed) {
  RLC_REQUIRE(inserted_.empty() && removed_.empty() &&
                  stats_.edges_inserted + stats_.edges_deleted == 0,
              "RestoreOverlay: index has already been mutated");
  for (const EdgeUpdate& e : inserted) {
    RLC_REQUIRE(e.src < g_.num_vertices() && e.dst < g_.num_vertices() &&
                    e.label < g_.num_labels(),
                "RestoreOverlay: inserted edge out of range");
    if (extra_out_.empty()) {
      extra_out_.resize(g_.num_vertices());
      extra_in_.resize(g_.num_vertices());
    }
    extra_out_[e.src].push_back({e.dst, e.label});
    extra_in_[e.dst].push_back({e.src, e.label});
    inserted_.push_back({e.src, e.label, e.dst, EdgeOp::kInsert});
  }
  for (const EdgeUpdate& e : removed) {
    RLC_REQUIRE(e.src < g_.num_vertices() && e.dst < g_.num_vertices() &&
                    e.label < g_.num_labels(),
                "RestoreOverlay: removed edge out of range");
    RLC_REQUIRE(g_.HasEdge(e.src, e.dst, e.label),
                "RestoreOverlay: removed edge not in the base graph");
    if (removed_out_.empty()) {
      removed_out_.resize(g_.num_vertices());
      removed_in_.resize(g_.num_vertices());
    }
    removed_out_[e.src].push_back({e.dst, e.label});
    removed_in_[e.dst].push_back({e.src, e.label});
    removed_.push_back({e.src, e.label, e.dst, EdgeOp::kDelete});
  }
}

size_t DynamicRlcIndex::ApplyUpdates(std::span<const EdgeUpdate> updates) {
  size_t applied = 0;
  for (const EdgeUpdate& e : updates) {
    const bool changed = e.op == EdgeOp::kInsert
                             ? InsertEdge(e.src, e.label, e.dst)
                             : DeleteEdge(e.src, e.label, e.dst);
    applied += changed ? 1 : 0;
  }
  return applied;
}

void DynamicRlcIndex::CollectWords(VertexId start, bool backward,
                                   std::set<LabelSeq>& words) const {
  words.insert(LabelSeq{});
  const uint32_t max_len = current_->k() - 1;
  if (max_len == 0) return;
  std::vector<VertexSeq> queue{{start, LabelSeq{}}};
  std::unordered_set<VertexSeq, VertexSeqHash> seen{queue.front()};
  for (size_t head = 0; head < queue.size(); ++head) {
    const VertexSeq cur = queue[head];  // copy: the queue may reallocate
    auto expand = [&](VertexId w, Label l) {
      VertexSeq next{w, cur.seq};
      if (backward) {
        next.seq.PushFront(l);
      } else {
        next.seq.PushBack(l);
      }
      if (!seen.insert(next).second) return;
      words.insert(next.seq);
      if (next.seq.size() < max_len) queue.push_back(next);
    };
    const auto base = backward ? g_.InEdges(cur.v) : g_.OutEdges(cur.v);
    for (const LabeledNeighbor& nb : base) {
      if (EdgeShadowed(backward, cur.v, nb)) continue;
      expand(nb.v, nb.label);
    }
    const auto& extra = backward ? extra_in_ : extra_out_;
    if (!extra.empty()) {
      for (const LabeledNeighbor& nb : extra[cur.v]) expand(nb.v, nb.label);
    }
  }
}

std::vector<VertexId> DynamicRlcIndex::AlignedBoundary(VertexId start,
                                                       uint32_t start_pos,
                                                       const LabelSeq& kernel,
                                                       bool backward) {
  const uint64_t states =
      static_cast<uint64_t>(g_.num_vertices()) * current_->k();
  if (visit_stamp_.size() < states) visit_stamp_.assign(states, 0);
  ++epoch_;

  const uint32_t len = kernel.size();
  std::vector<VertexId> boundary;
  std::vector<std::pair<VertexId, uint32_t>> queue;
  auto visit = [&](VertexId v, uint32_t pos) {
    uint64_t& stamp = visit_stamp_[StateIndex(v, pos)];
    if (stamp == epoch_) return;
    stamp = epoch_;
    if (pos == 1) boundary.push_back(v);
    queue.push_back({v, pos});
  };
  visit(start, start_pos);

  for (size_t head = 0; head < queue.size(); ++head) {
    const auto [x, pos] = queue[head];
    // Forward, state (x, pos) consumes kernel[pos] next; backward it was
    // reached by consuming kernel[pos-1] (1-based, wrapping across copies).
    const uint32_t step_pos = backward ? (pos == 1 ? len : pos - 1) : pos;
    const Label expected = kernel[step_pos - 1];
    const uint32_t next_pos =
        backward ? step_pos : (pos == len ? 1 : pos + 1);
    const auto base = backward ? g_.InEdgesWithLabel(x, expected)
                               : g_.OutEdgesWithLabel(x, expected);
    for (const LabeledNeighbor& nb : base) {
      if (EdgeShadowed(backward, x, nb)) continue;
      visit(nb.v, next_pos);
    }
    const auto& extra = backward ? extra_in_ : extra_out_;
    if (!extra.empty()) {
      for (const LabeledNeighbor& nb : extra[x]) {
        if (nb.label == expected) visit(nb.v, next_pos);
      }
    }
  }
  std::sort(boundary.begin(), boundary.end());
  return boundary;
}

bool DynamicRlcIndex::AlignedConnects(VertexId u, VertexId v,
                                      uint32_t from_pos, uint32_t to_pos,
                                      const LabelSeq& kernel,
                                      const EdgeUpdate* exclude) {
  const uint64_t states =
      static_cast<uint64_t>(g_.num_vertices()) * current_->k();
  if (visit_stamp_.size() < states) visit_stamp_.assign(states, 0);
  ++epoch_;

  const uint32_t len = kernel.size();
  std::vector<std::pair<VertexId, uint32_t>> queue;
  auto visit = [&](VertexId x, uint32_t pos) {
    uint64_t& stamp = visit_stamp_[StateIndex(x, pos)];
    if (stamp == epoch_) return;
    stamp = epoch_;
    queue.push_back({x, pos});
  };
  visit(u, from_pos);
  for (size_t head = 0; head < queue.size(); ++head) {
    const auto [x, pos] = queue[head];
    const Label expected = kernel[pos - 1];
    const uint32_t next_pos = pos == len ? 1 : pos + 1;
    // The target only counts when reached over >= 1 edge (the detour must
    // consume the alignment step); the start state itself does not qualify,
    // which matters for self-loop mutations on single-label kernels.
    const bool hits_target = next_pos == to_pos;
    const bool excludes_here = exclude != nullptr && x == exclude->src &&
                               expected == exclude->label;
    for (const LabeledNeighbor& nb : g_.OutEdgesWithLabel(x, expected)) {
      if (excludes_here && nb.v == exclude->dst) continue;
      if (EdgeShadowed(/*backward=*/false, x, nb)) continue;
      if (hits_target && nb.v == v) return true;
      visit(nb.v, next_pos);
    }
    if (!extra_out_.empty()) {
      for (const LabeledNeighbor& nb : extra_out_[x]) {
        if (nb.label != expected) continue;
        if (excludes_here && nb.v == exclude->dst) continue;
        if (hits_target && nb.v == v) return true;
        visit(nb.v, next_pos);
      }
    }
  }
  return false;
}

std::vector<VertexId> DynamicRlcIndex::AlignedClosure(VertexId start,
                                                      const LabelSeq& kernel,
                                                      bool backward) {
  const uint64_t states =
      static_cast<uint64_t>(g_.num_vertices()) * current_->k();
  if (visit_stamp_.size() < states) visit_stamp_.assign(states, 0);
  ++epoch_;

  const uint32_t len = kernel.size();
  std::vector<VertexId> closure;
  std::vector<std::pair<VertexId, uint32_t>> queue;
  auto visit = [&](VertexId x, uint32_t pos) {
    uint64_t& stamp = visit_stamp_[StateIndex(x, pos)];
    if (stamp == epoch_) return;
    stamp = epoch_;
    queue.push_back({x, pos});
  };
  visit(start, 1);
  for (size_t head = 0; head < queue.size(); ++head) {
    const auto [x, pos] = queue[head];
    const uint32_t step_pos = backward ? (pos == 1 ? len : pos - 1) : pos;
    const Label expected = kernel[step_pos - 1];
    const uint32_t next_pos = backward ? step_pos : (pos == len ? 1 : pos + 1);
    auto step = [&](VertexId w) {
      // A vertex belongs to the closure when a step lands on it at a copy
      // boundary — recorded before the dedup stamp, so an aligned cycle
      // back to the (already stamped) start still reports it.
      if (next_pos == 1) closure.push_back(w);
      visit(w, next_pos);
    };
    const auto base = backward ? g_.InEdgesWithLabel(x, expected)
                               : g_.OutEdgesWithLabel(x, expected);
    for (const LabeledNeighbor& nb : base) {
      if (EdgeShadowed(backward, x, nb)) continue;
      step(nb.v);
    }
    const auto& extra = backward ? extra_in_ : extra_out_;
    if (!extra.empty()) {
      for (const LabeledNeighbor& nb : extra[x]) {
        if (nb.label == expected) step(nb.v);
      }
    }
  }
  std::sort(closure.begin(), closure.end());
  closure.erase(std::unique(closure.begin(), closure.end()), closure.end());
  return closure;
}

void DynamicRlcIndex::AppendDelta(bool is_out, VertexId v, uint32_t hub_aid,
                                  MrId mr, const LabelSeq& seq) {
  if (is_out) {
    current_->AddDeltaOut(v, hub_aid, mr);
  } else {
    current_->AddDeltaIn(v, hub_aid, mr);
  }
  delta_log_.push_back({DeltaRecord::Kind::kAppend, is_out, v, hub_aid, seq});
  ++stats_.delta_entries_added;
}

void DynamicRlcIndex::SuppressEntry(bool is_out, VertexId v, uint32_t hub_aid,
                                    MrId mr, const LabelSeq& seq) {
  if (is_out) {
    current_->SuppressOut(v, hub_aid, mr);
  } else {
    current_->SuppressIn(v, hub_aid, mr);
  }
  delta_log_.push_back({DeltaRecord::Kind::kSuppress, is_out, v, hub_aid, seq});
  ++stats_.entries_suppressed;
}

void DynamicRlcIndex::AddCoverEntry(VertexId x, VertexId y, MrId mr,
                                    const LabelSeq& seq) {
  const uint32_t ax = current_->AccessId(x);
  const uint32_t ay = current_->AccessId(y);
  // Hub = the higher-ranked (smaller access id) endpoint; either entry
  // makes Case 2 of the query fire for (x, y).
  if (ax <= ay) {
    AppendDelta(/*is_out=*/false, y, ax, mr, seq);
  } else {
    AppendDelta(/*is_out=*/true, x, ay, mr, seq);
  }
}

void DynamicRlcIndex::CoverViaEdgeHub(VertexId hub, MrId mr,
                                      const LabelSeq& kernel,
                                      std::span<const VertexId> upstream,
                                      std::span<const VertexId> downstream) {
  const uint32_t hub_aid = current_->AccessId(hub);
  bool hub_in_s = false;
  bool hub_in_t = false;
  for (const VertexId s : upstream) {
    ++stats_.pairs_examined;
    if (s == hub) {
      hub_in_s = true;  // pairs (hub, t) ride on the Lin(t) entries (Case 2)
      continue;
    }
    if (!current_->HasOutEntry(s, hub_aid, mr)) {
      AppendDelta(/*is_out=*/true, s, hub_aid, mr, kernel);
    }
  }
  for (const VertexId t : downstream) {
    ++stats_.pairs_examined;
    if (t == hub) {
      hub_in_t = true;  // pairs (s, hub) ride on the Lout(s) entries
      continue;
    }
    if (!current_->HasInEntry(t, hub_aid, mr)) {
      AppendDelta(/*is_out=*/false, t, hub_aid, mr, kernel);
    }
  }
  // The (hub, hub) cycle pair is the one combination the skips above leave
  // uncovered; give it its own Case-2 self entry when it is real.
  if (hub_in_s && hub_in_t && !current_->QueryInterned(hub, hub, mr)) {
    AppendDelta(/*is_out=*/false, hub, hub_aid, mr, kernel);
  }
}

void DynamicRlcIndex::IncrementalUpdate(VertexId u, Label l, VertexId v) {
  const uint32_t k = current_->k();
  // Phase 1: candidate kernels L = α ∘ l ∘ β around the new edge, with the
  // edge at 1-based offset |α|+1. Non-primitive combinations are skipped:
  // their primitive root is itself a (shorter) candidate.
  std::set<LabelSeq> back_words;
  std::set<LabelSeq> fwd_words;
  CollectWords(u, /*backward=*/true, back_words);
  CollectWords(v, /*backward=*/false, fwd_words);
  std::set<std::pair<LabelSeq, uint32_t>> candidates;
  for (const LabelSeq& alpha : back_words) {
    for (const LabelSeq& beta : fwd_words) {
      if (alpha.size() + 1 + beta.size() > k) continue;
      LabelSeq kernel = alpha;
      kernel.PushBack(l);
      for (uint32_t i = 0; i < beta.size(); ++i) kernel.PushBack(beta[i]);
      if (!IsPrimitive(kernel.labels())) continue;
      candidates.insert({kernel, alpha.size() + 1});
    }
  }

  for (const auto& [kernel, offset] : candidates) {
    ++stats_.kernels_examined;
    const uint32_t len = kernel.size();
    // Bulk rule-out: when the pre-insert graph aligned-connects u to v at
    // every position carrying l, every use of the new edge in a witness has
    // an old-graph detour, so every S x T pair of this candidate was
    // already reachable — and therefore already answered. Skip it whole.
    bool detour_everywhere = true;
    const EdgeUpdate inserted{u, l, v};
    for (uint32_t j = 1; j <= len && detour_everywhere; ++j) {
      if (kernel[j - 1] != l) continue;
      detour_everywhere =
          AlignedConnects(u, v, j, j == len ? 1 : j + 1, kernel, &inserted);
    }
    if (detour_everywhere) {
      ++stats_.kernels_ruled_out;
      continue;
    }
    // Phase 2: copy-boundary vertices upstream of u and downstream of v in
    // this alignment. Every pair the edge makes newly reachable under
    // kernel+ sits in S x T for some candidate.
    const std::vector<VertexId> upstream =
        AlignedBoundary(u, offset, kernel, /*backward=*/true);
    if (upstream.empty()) continue;
    const std::vector<VertexId> downstream = AlignedBoundary(
        v, offset == len ? 1 : offset + 1, kernel, /*backward=*/false);
    if (downstream.empty()) continue;

    // Phase 3: cover. Small candidates probe each pair and add one Case-2
    // entry per pair the index cannot yet answer — QueryInterned sees the
    // deltas added earlier in this very loop, so redundant covers are
    // pruned exactly like PR1 prunes derivable entries during a build.
    // Large candidates whose edge sits on a copy boundary (always the case
    // for |L| <= 2) switch to the hub-compressed cover: the boundary
    // endpoint lies on every witness, so |S| + |T| entries suffice and the
    // quadratic pair sweep is skipped. Middle offsets (|L| >= 3 only) have
    // no boundary endpoint and always take the exact pairwise path.
    MrId mr = current_->FindMr(kernel);
    constexpr uint64_t kSmallCoverPairs = 256;
    const bool boundary_offset = offset == 1 || offset == len;
    if (boundary_offset && static_cast<uint64_t>(upstream.size()) *
                                   downstream.size() >
                               kSmallCoverPairs) {
      if (mr == kInvalidMrId) mr = current_->mr_table().Intern(kernel);
      // offset == len puts v at a copy start right after the edge; offset
      // == 1 puts u at one right before it (for |L| == 1 both hold).
      CoverViaEdgeHub(offset == len ? v : u, mr, kernel, upstream, downstream);
      continue;
    }
    for (const VertexId s : upstream) {
      for (const VertexId t : downstream) {
        ++stats_.pairs_examined;
        if (mr != kInvalidMrId && current_->QueryInterned(s, t, mr)) continue;
        if (mr == kInvalidMrId) mr = current_->mr_table().Intern(kernel);
        AddCoverEntry(s, t, mr, kernel);
      }
    }
  }
}

void DynamicRlcIndex::IncrementalDelete(VertexId u, Label l, VertexId v) {
  const uint32_t k = current_->k();
  // Phase 1 (pre-delete graph, the edge still present): candidate kernels
  // L = α ∘ l ∘ β around the edge and their copy-boundary sets S / T —
  // every entry whose witness used the edge claims a pair in some S x T.
  // Kernels whose MR was never interned are skipped whole: the live index
  // is complete, so nothing was ever reachable (or recorded) under them,
  // and a delete cannot make new pairs reachable.
  std::set<LabelSeq> back_words;
  std::set<LabelSeq> fwd_words;
  CollectWords(u, /*backward=*/true, back_words);
  CollectWords(v, /*backward=*/false, fwd_words);
  std::set<std::pair<LabelSeq, uint32_t>> keys;
  for (const LabelSeq& alpha : back_words) {
    for (const LabelSeq& beta : fwd_words) {
      if (alpha.size() + 1 + beta.size() > k) continue;
      LabelSeq kernel = alpha;
      kernel.PushBack(l);
      for (uint32_t i = 0; i < beta.size(); ++i) kernel.PushBack(beta[i]);
      if (!IsPrimitive(kernel.labels())) continue;
      keys.insert({kernel, alpha.size() + 1});
    }
  }
  struct Candidate {
    LabelSeq kernel;
    uint32_t offset;
    MrId mr;
    std::vector<VertexId> up;    // S: copy starts aligned-reaching u
    std::vector<VertexId> down;  // T: copy boundaries downstream of v
  };
  std::vector<Candidate> candidates;
  const EdgeUpdate deleted{u, l, v};
  std::map<std::pair<LabelSeq, uint32_t>, bool> detour_verdicts;
  for (const auto& [kernel, offset] : keys) {
    ++stats_.kernels_examined;
    const MrId mr = current_->FindMr(kernel);
    if (mr == kInvalidMrId) continue;
    const uint32_t len = kernel.size();
    // Aligned-detour rule-out, evaluated on "pre-delete minus the edge" —
    // exactly the post-delete graph — *before* the expensive boundary
    // searches: when every position carrying l still aligned-connects u to
    // v, every witness through the edge reroutes over the detour, so no
    // entry of this candidate goes stale and S / T are never needed. The
    // per-(kernel, position) verdicts are memoized across offsets.
    bool detour_everywhere = true;
    for (uint32_t j = 1; j <= len && detour_everywhere; ++j) {
      if (kernel[j - 1] != l) continue;
      const auto [it, missing] = detour_verdicts.try_emplace({kernel, j});
      if (missing) {
        it->second =
            AlignedConnects(u, v, j, j == len ? 1 : j + 1, kernel, &deleted);
      }
      detour_everywhere = it->second;
    }
    if (detour_everywhere) {
      ++stats_.kernels_ruled_out;
      continue;
    }
    std::vector<VertexId> up =
        AlignedBoundary(u, offset, kernel, /*backward=*/true);
    if (up.empty()) continue;
    std::vector<VertexId> down = AlignedBoundary(
        v, offset == len ? 1 : offset + 1, kernel, /*backward=*/false);
    if (down.empty()) continue;
    candidates.push_back({kernel, offset, mr, std::move(up), std::move(down)});
  }

  // Phase 2: take the edge out of the mutated graph. Everything below asks
  // about the post-delete world.
  RemoveGraphEdge(u, l, v);
  if (candidates.empty()) return;

  // Post-delete aligned closures, memoized per (kernel, vertex, direction):
  // one forward closure answers every validity and repair question about a
  // source, one backward closure about a target.
  std::map<std::pair<LabelSeq, VertexId>, std::vector<VertexId>> fwd_memo;
  std::map<std::pair<LabelSeq, VertexId>, std::vector<VertexId>> bwd_memo;
  auto closure_of = [&](bool backward, const LabelSeq& kernel,
                        VertexId x) -> const std::vector<VertexId>& {
    auto& memo = backward ? bwd_memo : fwd_memo;
    const auto [it, inserted] = memo.try_emplace({kernel, x});
    if (inserted) it->second = AlignedClosure(x, kernel, backward);
    return it->second;
  };

  // Phase 3 per candidate (all survived the rule-out above): suppression
  // of the entries whose own reachability claim provably died.
  std::set<std::pair<MrId, VertexId>> dead_out;  // suppressed Lout owners
  std::set<std::pair<MrId, VertexId>> dead_in;   // suppressed Lin owners
  for (size_t ci = 0; ci < candidates.size(); ++ci) {
    const Candidate& cand = candidates[ci];
    const LabelSeq& kernel = cand.kernel;

    // Matched out-entries: (h, L) ∈ Lout(s) with s ∈ S, h ∈ T claims
    // s ⇝ h; it survives iff s is in the post-delete *backward* closure of
    // h. Grouping the checks by hub — entries share few distinct hubs,
    // that is the point of hub labeling — means one closure answers every
    // source's validity question at once. Hub ids are collected first:
    // Suppress mutates the delta lists.
    for (const VertexId s : cand.up) {
      std::vector<uint32_t> hubs;
      auto collect = [&](std::span<const IndexEntry> entries) {
        for (const IndexEntry& e : entries) {
          if (e.mr != cand.mr) continue;
          if (std::binary_search(cand.down.begin(), cand.down.end(),
                                 current_->VertexOfAid(e.hub_aid))) {
            hubs.push_back(e.hub_aid);
          }
        }
      };
      collect(current_->Lout(s));
      collect(current_->DeltaLout(s));
      for (const uint32_t hub_aid : hubs) {
        // Skip entries another candidate already suppressed (the raw CSR
        // span still shows tombstoned entries).
        if (!current_->HasOutEntry(s, hub_aid, cand.mr)) continue;
        const std::vector<VertexId>& reach = closure_of(
            /*backward=*/true, kernel, current_->VertexOfAid(hub_aid));
        if (std::binary_search(reach.begin(), reach.end(), s)) {
          continue;  // another witness survives — the entry stays
        }
        SuppressEntry(/*is_out=*/true, s, hub_aid, cand.mr, kernel);
        dead_out.insert({cand.mr, s});
      }
    }
    // Matched in-entries: (h, L) ∈ Lin(t) with h ∈ S, t ∈ T claims h ⇝ t;
    // it survives iff t is in the forward closure of h.
    for (const VertexId t : cand.down) {
      std::vector<uint32_t> hubs;
      auto collect = [&](std::span<const IndexEntry> entries) {
        for (const IndexEntry& e : entries) {
          if (e.mr != cand.mr) continue;
          if (std::binary_search(cand.up.begin(), cand.up.end(),
                                 current_->VertexOfAid(e.hub_aid))) {
            hubs.push_back(e.hub_aid);
          }
        }
      };
      collect(current_->Lin(t));
      collect(current_->DeltaLin(t));
      for (const uint32_t hub_aid : hubs) {
        if (!current_->HasInEntry(t, hub_aid, cand.mr)) continue;
        const std::vector<VertexId>& reach = closure_of(
            /*backward=*/false, kernel, current_->VertexOfAid(hub_aid));
        if (std::binary_search(reach.begin(), reach.end(), t)) {
          continue;
        }
        SuppressEntry(/*is_out=*/false, t, hub_aid, cand.mr, kernel);
        dead_in.insert({cand.mr, t});
      }
    }
  }

  // Phase 4: completeness repair. A pair can only lose its last cover
  // through a suppressed entry on its source's out side or its target's in
  // side, so the sweep is restricted to (S ∩ dead-out) x T and
  // S x (T ∩ dead-in); every still-reachable pair the index no longer
  // answers gets a fresh Case-2 delta cover (valid by construction — its
  // claim is exactly the pair's rechecked reachability).
  if (dead_out.empty() && dead_in.empty()) return;
  // Only pairs that are reachable (in the closure) *and* in the boundary
  // set can need a cover, so each row sweeps the intersection by scanning
  // the smaller sorted vector against the larger.
  const auto for_each_common = [](const std::vector<VertexId>& a,
                                  const std::vector<VertexId>& b, auto fn) {
    const std::vector<VertexId>& small = a.size() <= b.size() ? a : b;
    const std::vector<VertexId>& large = a.size() <= b.size() ? b : a;
    for (const VertexId x : small) {
      if (std::binary_search(large.begin(), large.end(), x)) fn(x);
    }
  };
  for (const Candidate& cand : candidates) {
    for (const VertexId s : cand.up) {
      if (dead_out.find({cand.mr, s}) == dead_out.end()) continue;
      const std::vector<VertexId>& reach =
          closure_of(/*backward=*/false, cand.kernel, s);
      for_each_common(reach, cand.down, [&](VertexId t) {
        ++stats_.pairs_examined;
        if (current_->QueryInterned(s, t, cand.mr)) return;
        AddCoverEntry(s, t, cand.mr, cand.kernel);
        ++stats_.pairs_recovered;
      });
    }
    for (const VertexId t : cand.down) {
      if (dead_in.find({cand.mr, t}) == dead_in.end()) continue;
      const std::vector<VertexId>& reach =
          closure_of(/*backward=*/true, cand.kernel, t);
      for_each_common(reach, cand.up, [&](VertexId s) {
        ++stats_.pairs_examined;
        if (current_->QueryInterned(s, t, cand.mr)) return;
        AddCoverEntry(s, t, cand.mr, cand.kernel);
        ++stats_.pairs_recovered;
      });
    }
  }
}

std::vector<Edge> DynamicRlcIndex::MaterializedEdges() const {
  std::vector<Edge> edges;
  if (removed_.empty()) {
    edges = g_.ToEdgeList();
  } else {
    for (const Edge& e : g_.ToEdgeList()) {
      if (!BaseEdgeRemoved(e.src, e.label, e.dst)) edges.push_back(e);
    }
  }
  edges.reserve(edges.size() + inserted_.size());
  for (const EdgeUpdate& e : inserted_) edges.push_back({e.src, e.dst, e.label});
  return edges;
}

void DynamicRlcIndex::MaybeReseal() {
  if (reseal_thread_.joinable()) {
    TryCompleteReseal(/*wait=*/false);
    return;
  }
  if (current_->delta_entries() + current_->tombstone_entries() <
      policy_.min_delta_entries) {
    return;
  }
  if (current_->DeltaRatio() <= policy_.max_delta_ratio) return;
  StartReseal();
}

void DynamicRlcIndex::ResealInline() {
  Timer timer;
  {
    obs::ScopedSpan span(DynMetrics::Get().reseal_merge_ns,
                         "dyn.reseal.merge");
    auto fresh = std::make_shared<RlcIndex>(*current_);
    fresh->MergeDeltas();
    delta_log_.clear();
    current_ = std::move(fresh);
  }
  stats_.reseal_seconds += timer.ElapsedSeconds();
}

void DynamicRlcIndex::StartReseal() {
  ++stats_.reseals;
  DynMetrics::Get().reseals.Inc();
  if (!policy_.background) {
    ResealInline();
    return;
  }
  // Snapshot on the owner thread: the worker owns the copy outright, so the
  // owner may keep appending deltas (and serving queries) while it merges.
  reseal_snapshot_ = std::make_unique<RlcIndex>(*current_);
  reseal_log_mark_ = delta_log_.size();
  reseal_ready_.store(false, std::memory_order_relaxed);
  reseal_thread_ = std::thread([this] {
    Timer timer;
    {
      obs::ScopedSpan span(DynMetrics::Get().reseal_merge_ns,
                           "dyn.reseal.merge");
      reseal_snapshot_->MergeDeltas();
    }
    reseal_merge_seconds_ = timer.ElapsedSeconds();
    reseal_ready_.store(true, std::memory_order_release);
  });
}

void DynamicRlcIndex::TryCompleteReseal(bool wait) {
  if (!reseal_thread_.joinable()) return;
  if (!wait && !reseal_ready_.load(std::memory_order_acquire)) return;
  // The swap latency is what a caller blocked on the reseal actually pays:
  // join + suffix replay + pointer swap (the merge itself ran off-thread).
  obs::ScopedSpan swap_span(DynMetrics::Get().reseal_swap_ns,
                            "dyn.reseal.swap");
  reseal_thread_.join();
  stats_.reseal_seconds += reseal_merge_seconds_;
  auto fresh = std::shared_ptr<RlcIndex>(std::move(reseal_snapshot_));
  // Replay the overlay mutations recorded after the trigger: the merged CSR
  // holds everything up to the mark, so the replayed suffix restores the
  // exact visible entry set — answers are unchanged across the swap.
  // Post-trigger MRs re-intern in log order, which reproduces the live
  // table's ids (interning is append-only and deterministic). A replayed
  // suppression finds its entry wherever the merge left it: folded into
  // the fresh CSR (tombstoned there) or re-appended by an earlier replayed
  // record (erased from the delta list, matching the live index).
  for (size_t i = reseal_log_mark_; i < delta_log_.size(); ++i) {
    const DeltaRecord& r = delta_log_[i];
    if (r.kind == DeltaRecord::Kind::kAppend) {
      const MrId mr = fresh->mr_table().Intern(r.seq);
      if (r.is_out) {
        fresh->AddDeltaOut(r.v, r.hub_aid, mr);
      } else {
        fresh->AddDeltaIn(r.v, r.hub_aid, mr);
      }
    } else {
      const MrId mr = fresh->mr_table().Find(r.seq);
      RLC_CHECK_MSG(mr != kInvalidMrId,
                    "reseal replay: suppressed entry's MR is unknown");
      if (r.is_out) {
        fresh->SuppressOut(r.v, r.hub_aid, mr);
      } else {
        fresh->SuppressIn(r.v, r.hub_aid, mr);
      }
    }
    ++stats_.deltas_replayed;
  }
  DynMetrics::Get().deltas_replayed.Add(delta_log_.size() - reseal_log_mark_);
  delta_log_.erase(delta_log_.begin(),
                   delta_log_.begin() + static_cast<ptrdiff_t>(reseal_log_mark_));
  reseal_log_mark_ = 0;
  current_ = std::move(fresh);
}

void DynamicRlcIndex::FinishReseal() { TryCompleteReseal(/*wait=*/true); }

void DynamicRlcIndex::ForceReseal() {
  TryCompleteReseal(/*wait=*/true);
  if (current_->delta_entries() == 0 && current_->tombstone_entries() == 0) {
    return;
  }
  ++stats_.reseals;
  ResealInline();
}

uint64_t DynamicRlcIndex::MemoryBytes() const {
  uint64_t bytes = current_->MemoryBytes();
  for (const auto& list : extra_out_) bytes += list.capacity() * sizeof(LabeledNeighbor);
  for (const auto& list : extra_in_) bytes += list.capacity() * sizeof(LabeledNeighbor);
  for (const auto& list : removed_out_) bytes += list.capacity() * sizeof(LabeledNeighbor);
  for (const auto& list : removed_in_) bytes += list.capacity() * sizeof(LabeledNeighbor);
  bytes += (extra_out_.capacity() + extra_in_.capacity() +
            removed_out_.capacity() + removed_in_.capacity()) *
           sizeof(std::vector<LabeledNeighbor>);
  bytes += (inserted_.capacity() + removed_.capacity()) * sizeof(EdgeUpdate);
  bytes += delta_log_.capacity() * sizeof(DeltaRecord);
  bytes += visit_stamp_.capacity() * sizeof(uint64_t);
  return bytes;
}

}  // namespace rlc
