// Label-sequence algebra: minimum repeats (paper §III-A) and kernel/tail
// decomposition (paper Definition 3 / Theorem 1).
//
// A label sequence L' is a *repeat* of L when L = (L')^z for an integer
// z >= 1; the *minimum repeat* MR(L) is the shortest repeat, which is unique
// (Lemma 1) and equals the prefix of length p where p is the smallest full
// period of L. MR is computed with the KMP failure function in O(|L|)
// exactly as the paper prescribes ([75] in the paper).
//
// A sequence L has *kernel* L' and *tail* L'' when L = (L')^h ∘ L'' with
// h >= 2, L' primitive (MR(L') = L') and L'' a proper prefix of L' or ε;
// the kernel, when it exists, is unique (Lemma 2).

#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "rlc/graph/types.h"
#include "rlc/util/common.h"

namespace rlc {

/// Maximum supported number of labels in a recursive concatenation (the
/// paper's `recursive k`). Real workloads use k <= 2 (Wikidata logs), the
/// paper's sweeps go to 4; 8 leaves generous headroom while keeping
/// LabelSeq a small trivially copyable value type.
inline constexpr uint32_t kMaxK = 8;

/// A short label sequence with inline storage (capacity kMaxK).
///
/// Used for everything the RLC machinery stores or matches: raw search
/// sequences (length <= k), minimum repeats and query constraints. Longer
/// sequences (arbitrary-length path label strings in tests/oracles) use
/// std::vector<Label> with the span-based free functions below.
class LabelSeq {
 public:
  LabelSeq() = default;

  /// Builds from a span of at most kMaxK labels.
  explicit LabelSeq(std::span<const Label> labels) {
    RLC_REQUIRE(labels.size() <= kMaxK,
                "LabelSeq: sequence longer than kMaxK=" << kMaxK);
    size_ = static_cast<uint8_t>(labels.size());
    for (uint32_t i = 0; i < size_; ++i) labels_[i] = labels[i];
  }

  LabelSeq(std::initializer_list<Label> labels)
      : LabelSeq(std::span<const Label>(labels.begin(), labels.size())) {}

  uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  Label operator[](uint32_t i) const {
    RLC_DCHECK(i < size_);
    return labels_[i];
  }

  std::span<const Label> labels() const { return {labels_, size_}; }

  /// Appends one label. Size must stay <= kMaxK.
  void PushBack(Label l) {
    RLC_CHECK_MSG(size_ < kMaxK, "LabelSeq overflow: recursive k exceeds " << kMaxK);
    labels_[size_++] = l;
  }

  /// Prepends one label (backward searches extend sequences at the front).
  void PushFront(Label l) {
    RLC_CHECK_MSG(size_ < kMaxK, "LabelSeq overflow: recursive k exceeds " << kMaxK);
    for (uint32_t i = size_; i > 0; --i) labels_[i] = labels_[i - 1];
    labels_[0] = l;
    ++size_;
  }

  friend bool operator==(const LabelSeq& a, const LabelSeq& b) {
    if (a.size_ != b.size_) return false;
    for (uint32_t i = 0; i < a.size_; ++i) {
      if (a.labels_[i] != b.labels_[i]) return false;
    }
    return true;
  }

  friend std::strong_ordering operator<=>(const LabelSeq& a, const LabelSeq& b) {
    const uint32_t n = a.size_ < b.size_ ? a.size_ : b.size_;
    for (uint32_t i = 0; i < n; ++i) {
      if (auto c = a.labels_[i] <=> b.labels_[i]; c != 0) return c;
    }
    return a.size_ <=> b.size_;
  }

  /// FNV-1a style hash for unordered containers.
  uint64_t Hash() const {
    uint64_t h = 0xCBF29CE484222325ULL;
    for (uint32_t i = 0; i < size_; ++i) {
      h ^= labels_[i];
      h *= 0x100000001B3ULL;
    }
    h ^= size_;
    h *= 0x100000001B3ULL;
    return h;
  }

  /// Renders like "(3 0 1)" or "(knows worksFor)" when names are provided.
  std::string ToString() const;
  std::string ToString(const std::vector<std::string>& label_names) const;

 private:
  Label labels_[kMaxK] = {};
  uint8_t size_ = 0;
};

struct LabelSeqHash {
  uint64_t operator()(const LabelSeq& s) const { return s.Hash(); }
};

/// Length of the minimum repeat of `seq` (smallest p dividing |seq| such
/// that seq is p-periodic); |seq| when no proper repeat exists. O(|seq|).
/// The empty sequence has MR length 0.
size_t MinimumRepeatLength(std::span<const Label> seq);

/// MR(seq) as a fresh vector. O(|seq|).
std::vector<Label> MinimumRepeat(std::span<const Label> seq);

/// MR of a short sequence as a LabelSeq (requires MR length <= kMaxK, which
/// holds whenever |seq| <= kMaxK).
LabelSeq MinimumRepeatSeq(const LabelSeq& seq);

/// True when seq is primitive, i.e. seq == MR(seq). ε is not primitive.
bool IsPrimitive(std::span<const Label> seq);

/// Kernel/tail decomposition result (Definition 3).
struct KernelTail {
  std::vector<Label> kernel;  ///< primitive L', repeated h >= 2 times
  std::vector<Label> tail;    ///< ε or a proper prefix of the kernel
  uint32_t repetitions = 0;   ///< h
};

/// Decomposes `seq` into kernel and tail when possible (Definition 3);
/// std::nullopt when `seq` has no kernel. The decomposition is unique
/// (Lemma 2). O(|seq|^2 / 4) worst case, |seq| <= 2k in practice.
std::optional<KernelTail> DecomposeKernel(std::span<const Label> seq);

/// Mirror decomposition seq = head ∘ (kernel)^h with h >= 2, kernel
/// primitive and `head` a proper *suffix* of the kernel (or ε). This is the
/// form needed by backward searches, where sequences grow at the front; it
/// is computed by decomposing the reversal. In the result, `kernel` holds
/// the kernel and `tail` holds the head.
std::optional<KernelTail> DecomposeKernelSuffix(std::span<const Label> seq);

/// Concatenation helper: a ∘ b.
std::vector<Label> Concat(std::span<const Label> a, std::span<const Label> b);

}  // namespace rlc
