#include "rlc/baselines/online_search.h"

#include "rlc/util/common.h"

namespace rlc {

void OnlineSearcher::EnsureCapacity(uint32_t num_states) {
  const uint64_t needed = static_cast<uint64_t>(g_.num_vertices()) * num_states;
  if (fwd_stamp_.size() < needed) {
    fwd_stamp_.assign(needed, 0);
    bwd_stamp_.assign(needed, 0);
    epoch_ = 0;
  }
}

bool OnlineSearcher::QueryBfs(VertexId s, VertexId t, const CompiledConstraint& c) {
  RLC_REQUIRE(s < g_.num_vertices() && t < g_.num_vertices(),
              "QueryBfs: vertex out of range");
  const DenseNfa& nfa = c.forward();
  const uint32_t nq = nfa.num_states();
  EnsureCapacity(nq);
  ++epoch_;

  fwd_frontier_.clear();
  for (uint32_t q : nfa.starts()) {
    fwd_stamp_[Slot(s, q, nq)] = epoch_;
    fwd_frontier_.push_back({s, q});
  }
  // Start states are never accepting (every RLC-class constraint consumes at
  // least one label), so no zero-length check is needed.
  for (size_t head = 0; head < fwd_frontier_.size(); ++head) {
    const auto [v, q] = fwd_frontier_[head];
    for (const LabeledNeighbor& nb : g_.OutEdges(v)) {
      for (uint32_t q2 : nfa.Next(q, nb.label)) {
        uint64_t& stamp = fwd_stamp_[Slot(nb.v, q2, nq)];
        if (stamp == epoch_) continue;
        if (nb.v == t && nfa.IsAccept(q2)) return true;
        stamp = epoch_;
        fwd_frontier_.push_back({nb.v, q2});
      }
    }
  }
  return false;
}

bool OnlineSearcher::QueryDfs(VertexId s, VertexId t, const CompiledConstraint& c) {
  RLC_REQUIRE(s < g_.num_vertices() && t < g_.num_vertices(),
              "QueryDfs: vertex out of range");
  const DenseNfa& nfa = c.forward();
  const uint32_t nq = nfa.num_states();
  EnsureCapacity(nq);
  ++epoch_;

  auto& stack = fwd_frontier_;
  stack.clear();
  for (uint32_t q : nfa.starts()) {
    fwd_stamp_[Slot(s, q, nq)] = epoch_;
    stack.push_back({s, q});
  }
  while (!stack.empty()) {
    const auto [v, q] = stack.back();
    stack.pop_back();
    for (const LabeledNeighbor& nb : g_.OutEdges(v)) {
      for (uint32_t q2 : nfa.Next(q, nb.label)) {
        uint64_t& stamp = fwd_stamp_[Slot(nb.v, q2, nq)];
        if (stamp == epoch_) continue;
        if (nb.v == t && nfa.IsAccept(q2)) return true;
        stamp = epoch_;
        stack.push_back({nb.v, q2});
      }
    }
  }
  return false;
}

bool OnlineSearcher::QueryBiBfs(VertexId s, VertexId t,
                                const CompiledConstraint& c) {
  RLC_REQUIRE(s < g_.num_vertices() && t < g_.num_vertices(),
              "QueryBiBfs: vertex out of range");
  const DenseNfa& fwd = c.forward();
  const DenseNfa& bwd = c.reverse();
  const uint32_t nq = fwd.num_states();
  EnsureCapacity(nq);
  ++epoch_;

  // Forward states (v,q): some prefix from s drives the NFA into q at v.
  // Backward states (v,q): some suffix from v to t drives q into an accept.
  // A pair visited by both sides witnesses an accepted s-t path. A path
  // fully discovered by one side meets at (t, accept) or (s, start).
  fwd_frontier_.clear();
  bwd_frontier_.clear();
  for (uint32_t q : fwd.starts()) {
    fwd_stamp_[Slot(s, q, nq)] = epoch_;
    if (bwd_stamp_[Slot(s, q, nq)] == epoch_) return true;
    fwd_frontier_.push_back({s, q});
  }
  for (uint32_t q : bwd.starts()) {  // = accept states of the forward NFA
    bwd_stamp_[Slot(t, q, nq)] = epoch_;
    if (fwd_stamp_[Slot(t, q, nq)] == epoch_) return true;
    bwd_frontier_.push_back({t, q});
  }

  while (!fwd_frontier_.empty() && !bwd_frontier_.empty()) {
    const bool expand_fwd = fwd_frontier_.size() <= bwd_frontier_.size();
    auto& frontier = expand_fwd ? fwd_frontier_ : bwd_frontier_;
    auto& own = expand_fwd ? fwd_stamp_ : bwd_stamp_;
    auto& other = expand_fwd ? bwd_stamp_ : fwd_stamp_;
    const DenseNfa& nfa = expand_fwd ? fwd : bwd;

    scratch_.clear();
    for (const auto& [v, q] : frontier) {
      const auto edges = expand_fwd ? g_.OutEdges(v) : g_.InEdges(v);
      for (const LabeledNeighbor& nb : edges) {
        for (uint32_t q2 : nfa.Next(q, nb.label)) {
          uint64_t& stamp = own[Slot(nb.v, q2, nq)];
          if (stamp == epoch_) continue;
          if (other[Slot(nb.v, q2, nq)] == epoch_) return true;
          stamp = epoch_;
          scratch_.push_back({nb.v, q2});
        }
      }
    }
    frontier.swap(scratch_);
  }
  return false;
}

bool OnlineSearcher::QueryBfsOnce(VertexId s, VertexId t,
                                  const PathConstraint& constraint) {
  CompiledConstraint c(constraint, g_.num_labels());
  return QueryBfs(s, t, c);
}

bool OnlineSearcher::QueryBiBfsOnce(VertexId s, VertexId t,
                                    const PathConstraint& constraint) {
  CompiledConstraint c(constraint, g_.num_labels());
  return QueryBiBfs(s, t, c);
}

}  // namespace rlc
