#include "rlc/baselines/etc_index.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "rlc/util/timer.h"

namespace rlc {

namespace {

// A kernel-search state: vertex reached with a concrete label sequence.
struct VertexSeq {
  VertexId v;
  LabelSeq seq;
  friend bool operator==(const VertexSeq&, const VertexSeq&) = default;
};

struct VertexSeqHash {
  uint64_t operator()(const VertexSeq& vs) const {
    return vs.seq.Hash() * 0x9E3779B97F4A7C15ULL + vs.v;
  }
};

}  // namespace

bool EtcIndex::Add(VertexId u, VertexId v, MrId mr) {
  std::vector<MrId>& set = pairs_[Key(u, v)];
  if (std::find(set.begin(), set.end(), mr) != set.end()) return false;
  set.push_back(mr);
  return true;
}

bool EtcIndex::Query(VertexId s, VertexId t, const LabelSeq& constraint) const {
  RLC_REQUIRE(s < num_vertices_ && t < num_vertices_,
              "EtcIndex::Query: vertex out of range");
  RLC_REQUIRE(!constraint.empty() && constraint.size() <= k_,
              "EtcIndex::Query: constraint length must be in [1," << k_ << "]");
  RLC_REQUIRE(IsPrimitive(constraint.labels()),
              "EtcIndex::Query: constraint is not a minimum repeat");
  const MrId mr = mrs_.Find(constraint);
  if (mr == kInvalidMrId) return false;
  auto it = pairs_.find(Key(s, t));
  if (it == pairs_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), mr) != it->second.end();
}

uint64_t EtcIndex::MemoryBytes() const {
  uint64_t bytes = mrs_.MemoryBytes();
  // Hash-map accounting: one node (key + vector header + pointers) per pair
  // plus the bucket array, plus the MR id payloads.
  bytes += pairs_.bucket_count() * sizeof(void*);
  for (const auto& [key, set] : pairs_) {
    (void)key;
    bytes += sizeof(uint64_t) + sizeof(std::vector<MrId>) + 2 * sizeof(void*);
    bytes += set.capacity() * sizeof(MrId);
  }
  return bytes;
}

uint64_t EtcIndex::NumEntries() const {
  uint64_t total = 0;
  for (const auto& [key, set] : pairs_) {
    (void)key;
    total += set.size();
  }
  return total;
}

EtcIndex EtcIndex::Build(const DiGraph& g, uint32_t k, EtcStats* stats) {
  RLC_REQUIRE(k >= 1 && k <= kMaxK, "EtcIndex: k must be in [1," << kMaxK << "]");
  Timer timer;
  EtcIndex etc(g.num_vertices(), k);

  std::vector<VertexSeq> queue;
  std::unordered_set<VertexSeq, VertexSeqHash> seen;
  std::map<LabelSeq, std::vector<VertexId>> frontier;
  std::vector<uint64_t> visit_stamp(static_cast<uint64_t>(g.num_vertices()) * k, 0);
  uint64_t epoch = 0;
  std::vector<std::pair<VertexId, uint32_t>> bfs_queue;

  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    // Phase 1: forward kernel search to depth k.
    queue.clear();
    seen.clear();
    frontier.clear();
    queue.push_back({u, LabelSeq{}});
    seen.insert(queue.front());
    for (size_t head = 0; head < queue.size(); ++head) {
      const VertexSeq cur = queue[head];
      for (const LabeledNeighbor& nb : g.OutEdges(cur.v)) {
        VertexSeq next{nb.v, cur.seq};
        next.seq.PushBack(nb.label);
        if (!seen.insert(next).second) continue;
        const LabelSeq mr = MinimumRepeatSeq(next.seq);
        etc.Add(u, nb.v, etc.mrs_.Intern(mr));
        frontier[mr].push_back(nb.v);
        if (next.seq.size() < k) queue.push_back(next);
      }
    }

    // Phase 2: kernel-guided BFS per candidate, no pruning rules.
    for (const auto& [kernel, fset] : frontier) {
      ++epoch;
      bfs_queue.clear();
      const uint32_t len = kernel.size();
      auto slot = [&](VertexId v, uint32_t pos) {
        return visit_stamp[static_cast<uint64_t>(v) * k + (pos - 1)];
      };
      auto mark = [&](VertexId v, uint32_t pos) {
        visit_stamp[static_cast<uint64_t>(v) * k + (pos - 1)] = epoch;
      };
      for (VertexId x : fset) {
        if (slot(x, 1) == epoch) continue;
        mark(x, 1);
        bfs_queue.push_back({x, 1});
      }
      for (size_t head = 0; head < bfs_queue.size(); ++head) {
        const auto [x, pos] = bfs_queue[head];
        const Label expected = kernel[pos - 1];
        const bool boundary = (pos == len);
        const uint32_t next_pos = boundary ? 1 : pos + 1;
        for (const LabeledNeighbor& nb : g.OutEdgesWithLabel(x, expected)) {
          if (slot(nb.v, next_pos) == epoch) continue;
          if (boundary) {
            etc.Add(u, nb.v, etc.mrs_.Intern(kernel));
          }
          mark(nb.v, next_pos);
          bfs_queue.push_back({nb.v, next_pos});
        }
      }
    }
  }

  if (stats != nullptr) {
    stats->entries = etc.NumEntries();
    stats->reachable_pairs = etc.NumPairs();
    stats->build_seconds = timer.ElapsedSeconds();
  }
  return etc;
}

}  // namespace rlc
