// Online-traversal baselines: NFA-guided BFS, DFS and bidirectional BFS over
// the product of the graph and the constraint automaton (paper §III-B and
// the BFS/BiBFS baselines of §VI).
//
// A searcher owns reusable stamped visited arrays, so evaluating thousands
// of workload queries allocates nothing per query. Constraints are compiled
// once (CompiledConstraint) and can be shared across queries, mirroring how
// the paper's baseline constructs the minimized NFA per query template.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rlc/automaton/dense_nfa.h"
#include "rlc/automaton/path_constraint.h"
#include "rlc/graph/digraph.h"

namespace rlc {

/// A constraint compiled to forward and reverse dense automata.
class CompiledConstraint {
 public:
  CompiledConstraint(const PathConstraint& constraint, Label num_labels)
      : nfa_(Nfa::FromConstraint(constraint)),
        forward_(nfa_, num_labels),
        reverse_(nfa_.Reversed(), num_labels) {}

  const DenseNfa& forward() const { return forward_; }
  const DenseNfa& reverse() const { return reverse_; }
  uint32_t num_states() const { return forward_.num_states(); }

 private:
  Nfa nfa_;
  DenseNfa forward_;
  DenseNfa reverse_;
};

/// Reusable online evaluator for one graph.
class OnlineSearcher {
 public:
  explicit OnlineSearcher(const DiGraph& g) : g_(g) {}

  /// Unidirectional BFS over (vertex, NFA state) product pairs.
  bool QueryBfs(VertexId s, VertexId t, const CompiledConstraint& c);

  /// Iterative DFS; same complexity as BFS (paper: "an alternative to BFS
  /// with the same time complexity but not as efficient as BiBFS").
  bool QueryDfs(VertexId s, VertexId t, const CompiledConstraint& c);

  /// Bidirectional BFS, expanding the smaller frontier first; meets on a
  /// common (vertex, state) product pair.
  bool QueryBiBfs(VertexId s, VertexId t, const CompiledConstraint& c);

  /// Convenience: compile + run once (used by tests and the oracle).
  bool QueryBfsOnce(VertexId s, VertexId t, const PathConstraint& constraint);
  bool QueryBiBfsOnce(VertexId s, VertexId t, const PathConstraint& constraint);

 private:
  // Ensures the stamp arrays cover num_vertices * num_states slots.
  void EnsureCapacity(uint32_t num_states);

  uint64_t Slot(VertexId v, uint32_t q, uint32_t num_states) const {
    return static_cast<uint64_t>(v) * num_states + q;
  }

  const DiGraph& g_;
  std::vector<uint64_t> fwd_stamp_;
  std::vector<uint64_t> bwd_stamp_;
  uint64_t epoch_ = 0;
  std::vector<std::pair<VertexId, uint32_t>> fwd_frontier_;
  std::vector<std::pair<VertexId, uint32_t>> bwd_frontier_;
  std::vector<std::pair<VertexId, uint32_t>> scratch_;
};

}  // namespace rlc
