#include "rlc/baselines/concise_set.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "rlc/util/common.h"

namespace rlc {

namespace {

struct VertexSeq {
  VertexId v;
  LabelSeq seq;
  friend bool operator==(const VertexSeq&, const VertexSeq&) = default;
};

struct VertexSeqHash {
  uint64_t operator()(const VertexSeq& vs) const {
    return vs.seq.Hash() * 0x9E3779B97F4A7C15ULL + vs.v;
  }
};

}  // namespace

std::vector<std::vector<LabelSeq>> ComputeConciseSetsFrom(const DiGraph& g,
                                                          VertexId s,
                                                          uint32_t k) {
  RLC_REQUIRE(s < g.num_vertices(), "ComputeConciseSetsFrom: vertex out of range");
  RLC_REQUIRE(k >= 1 && k <= kMaxK,
              "ComputeConciseSetsFrom: k must be in [1," << kMaxK << "]");

  std::vector<std::vector<LabelSeq>> sets(g.num_vertices());
  auto add = [&](VertexId u, const LabelSeq& mr) {
    auto& set = sets[u];
    if (std::find(set.begin(), set.end(), mr) == set.end()) set.push_back(mr);
  };

  // Phase 1: forward kernel search to depth k (eager strategy).
  std::vector<VertexSeq> queue{{s, LabelSeq{}}};
  std::unordered_set<VertexSeq, VertexSeqHash> seen{queue.front()};
  std::map<LabelSeq, std::vector<VertexId>> frontier;
  for (size_t head = 0; head < queue.size(); ++head) {
    const VertexSeq cur = queue[head];
    for (const LabeledNeighbor& nb : g.OutEdges(cur.v)) {
      VertexSeq next{nb.v, cur.seq};
      next.seq.PushBack(nb.label);
      if (!seen.insert(next).second) continue;
      const LabelSeq mr = MinimumRepeatSeq(next.seq);
      add(nb.v, mr);
      frontier[mr].push_back(nb.v);
      if (next.seq.size() < k) queue.push_back(next);
    }
  }

  // Phase 2: kernel-guided BFS per candidate (records at full copies).
  std::vector<uint32_t> stamp(static_cast<uint64_t>(g.num_vertices()) * k, 0);
  uint32_t epoch = 0;
  std::vector<std::pair<VertexId, uint32_t>> bfs;
  for (const auto& [kernel, fset] : frontier) {
    ++epoch;
    bfs.clear();
    const uint32_t len = kernel.size();
    auto slot = [&](VertexId v, uint32_t pos) -> uint32_t& {
      return stamp[static_cast<uint64_t>(v) * k + (pos - 1)];
    };
    for (VertexId x : fset) {
      if (slot(x, 1) == epoch) continue;
      slot(x, 1) = epoch;
      bfs.push_back({x, 1});
    }
    for (size_t head = 0; head < bfs.size(); ++head) {
      const auto [x, pos] = bfs[head];
      const bool boundary = (pos == len);
      const uint32_t next_pos = boundary ? 1 : pos + 1;
      for (const LabeledNeighbor& nb : g.OutEdgesWithLabel(x, kernel[pos - 1])) {
        if (slot(nb.v, next_pos) == epoch) continue;
        if (boundary) add(nb.v, kernel);
        slot(nb.v, next_pos) = epoch;
        bfs.push_back({nb.v, next_pos});
      }
    }
  }

  for (auto& set : sets) std::sort(set.begin(), set.end());
  return sets;
}

std::vector<LabelSeq> ComputeConciseSet(const DiGraph& g, VertexId s, VertexId t,
                                        uint32_t k) {
  RLC_REQUIRE(t < g.num_vertices(), "ComputeConciseSet: vertex out of range");
  return ComputeConciseSetsFrom(g, s, k)[t];
}

}  // namespace rlc
