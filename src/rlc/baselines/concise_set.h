// Online computation of concise label-sequence sets (paper Definition 2):
//
//   Sk(s,t) = { MR(Λ(p)) : p ∈ P(s,t), |MR(Λ(p))| <= k }
//
// The RLC index answers membership (L ∈ Sk(s,t)?) in microseconds; this
// utility *enumerates* the whole set with one forward kernel-based search
// from s (Theorem 1 guarantees completeness despite the infinite path set).
// It is the per-source building block of the ETC baseline, exposed as a
// library function because applications of Example 1's kind often want all
// recursive patterns connecting two entities, not a yes/no answer.

#pragma once

#include <vector>

#include "rlc/core/label_seq.h"
#include "rlc/graph/digraph.h"

namespace rlc {

/// All k-bounded minimum repeats of label sequences of paths from s to t,
/// sorted lexicographically. O(|L|^k (|V| + |E|) k) like one ETC source.
/// \throws std::invalid_argument for out-of-range vertices or k outside
///         [1, kMaxK].
std::vector<LabelSeq> ComputeConciseSet(const DiGraph& g, VertexId s, VertexId t,
                                        uint32_t k);

/// Single-source form: for every target u reachable from s, the sorted set
/// Sk(s,u). Index into the returned vector by target vertex id (empty for
/// unreachable targets).
std::vector<std::vector<LabelSeq>> ComputeConciseSetsFrom(const DiGraph& g,
                                                          VertexId s, uint32_t k);

}  // namespace rlc
