// ETC — the extended transitive closure baseline (paper §VI-a).
//
// ETC materializes, for every reachable pair (u,v), the concise set of
// k-bounded minimum repeats Sk(u,v) in a hash map. It is built with a
// forward kernel-based search from every vertex and *no pruning rules*
// (paper: "(1) only forward KBS is used ... and (2) none of the pruning
// rules is applied"). ETC answers queries with a single hash lookup but its
// size is quadratic in the number of reachable pairs, which is exactly the
// trade-off Table IV demonstrates.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rlc/core/label_seq.h"
#include "rlc/core/mr_table.h"
#include "rlc/graph/digraph.h"

namespace rlc {

/// Build statistics for ETC (mirrors IndexerStats where meaningful).
struct EtcStats {
  uint64_t entries = 0;          ///< total recorded (u,v,MR) triples
  uint64_t reachable_pairs = 0;  ///< distinct (u,v) keys
  double build_seconds = 0.0;
};

/// The extended transitive closure.
class EtcIndex {
 public:
  /// Builds ETC for `g` with recursion bound `k`.
  static EtcIndex Build(const DiGraph& g, uint32_t k, EtcStats* stats = nullptr);

  uint32_t k() const { return k_; }
  VertexId num_vertices() const { return num_vertices_; }

  /// Answers (s,t,L+). Same argument contract as RlcIndex::Query.
  bool Query(VertexId s, VertexId t, const LabelSeq& constraint) const;

  /// Hash-map size metric for Table IV (buckets + nodes + MR vectors).
  uint64_t MemoryBytes() const;

  uint64_t NumEntries() const;
  uint64_t NumPairs() const { return pairs_.size(); }

 private:
  EtcIndex(VertexId n, uint32_t k) : num_vertices_(n), k_(k) {}

  static uint64_t Key(VertexId u, VertexId v) {
    return (static_cast<uint64_t>(u) << 32) | v;
  }

  /// Adds mr to Sk(u,v) unless present; returns true when newly added.
  bool Add(VertexId u, VertexId v, MrId mr);

  VertexId num_vertices_;
  uint32_t k_;
  MrTable mrs_;
  std::unordered_map<uint64_t, std::vector<MrId>> pairs_;
};

}  // namespace rlc
