// Plain (label-oblivious) reachability index using pruned 2-hop labeling.
//
// The RLC index instantiates "the canonical 2-hop labeling framework for
// plain reachability queries [5]" (paper §V-A); this module provides that
// canonical substrate itself — a pruned-landmark-labeling reachability
// index in the style of Cohen et al. [5] / Yano et al. [21]:
//
//   Lout(v) = { landmarks w : v ⇝ w },  Lin(v) = { landmarks w : w ⇝ v }
//   s ⇝ t  iff  s == t  or  Lout(s) ∩ Lin(t) ≠ ∅
//
// Landmarks are processed in IN-OUT order (same ordering heuristic the RLC
// index uses); each landmark runs a pruned forward and backward BFS that
// skips every vertex already answerable from the current snapshot.
//
// Besides being the historical foundation the paper builds on, the plain
// index is useful as a *prefilter* for RLC queries: if s cannot reach t at
// all, no label constraint can hold, and the (often larger) RLC merge join
// can be skipped. RlcHybridEngine accepts an optional prefilter instance.

#pragma once

#include <cstdint>
#include <vector>

#include "rlc/graph/digraph.h"

namespace rlc {

/// Build statistics for the plain 2-hop index.
struct PlainReachStats {
  uint64_t entries = 0;
  uint64_t pruned = 0;  ///< BFS visits skipped by the 2-hop prune
  double build_seconds = 0.0;
};

/// Pruned 2-hop labeling for plain reachability.
class PlainReachIndex {
 public:
  /// Builds the index for `g` (IN-OUT landmark order, pruned BFS).
  static PlainReachIndex Build(const DiGraph& g,
                               PlainReachStats* stats = nullptr);

  /// True iff a (possibly empty) path s ⇝ t exists.
  /// \throws std::invalid_argument when s or t is out of range.
  bool Reachable(VertexId s, VertexId t) const;

  VertexId num_vertices() const { return static_cast<VertexId>(out_.size()); }
  uint64_t NumEntries() const;
  uint64_t MemoryBytes() const;

  /// Hub lists (sorted landmark ranks), exposed for tests.
  const std::vector<uint32_t>& Lout(VertexId v) const { return out_[v]; }
  const std::vector<uint32_t>& Lin(VertexId v) const { return in_[v]; }

 private:
  explicit PlainReachIndex(VertexId n) : out_(n), in_(n) {}

  static bool Intersect(const std::vector<uint32_t>& a,
                        const std::vector<uint32_t>& b);

  std::vector<std::vector<uint32_t>> out_;  // sorted landmark ranks
  std::vector<std::vector<uint32_t>> in_;
};

}  // namespace rlc
