#include "rlc/plain/plain_reach_index.h"

#include "rlc/core/indexer.h"
#include "rlc/util/common.h"
#include "rlc/util/timer.h"

namespace rlc {

bool PlainReachIndex::Intersect(const std::vector<uint32_t>& a,
                                const std::vector<uint32_t>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

bool PlainReachIndex::Reachable(VertexId s, VertexId t) const {
  RLC_REQUIRE(s < num_vertices() && t < num_vertices(),
              "PlainReachIndex::Reachable: vertex out of range");
  if (s == t) return true;
  return Intersect(out_[s], in_[t]);
}

uint64_t PlainReachIndex::NumEntries() const {
  uint64_t total = 0;
  for (const auto& l : out_) total += l.size();
  for (const auto& l : in_) total += l.size();
  return total;
}

uint64_t PlainReachIndex::MemoryBytes() const {
  uint64_t bytes = (out_.size() + in_.size()) * sizeof(std::vector<uint32_t>);
  for (const auto& l : out_) bytes += l.size() * sizeof(uint32_t);
  for (const auto& l : in_) bytes += l.size() * sizeof(uint32_t);
  return bytes;
}

PlainReachIndex PlainReachIndex::Build(const DiGraph& g, PlainReachStats* stats) {
  Timer timer;
  PlainReachIndex index(g.num_vertices());
  uint64_t pruned = 0;

  // Same IN-OUT landmark ordering the RLC index uses.
  const std::vector<VertexId> order =
      RlcIndexBuilder::ComputeOrder(g, VertexOrdering::kInOut, 0);

  std::vector<uint64_t> visited(g.num_vertices(), 0);
  uint64_t epoch = 0;
  std::vector<VertexId> queue;

  for (uint32_t rank = 0; rank < order.size(); ++rank) {
    const VertexId v = order[rank];
    // The landmark covers itself: rank goes into both of its own lists, so
    // direct landmark endpoints resolve through the same intersection.
    index.out_[v].push_back(rank);
    index.in_[v].push_back(rank);

    // Pruned forward BFS: v reaches u  ->  rank ∈ Lin(u).
    for (const bool forward : {true, false}) {
      ++epoch;
      queue.clear();
      queue.push_back(v);
      visited[v] = epoch;
      for (size_t head = 0; head < queue.size(); ++head) {
        const VertexId x = queue[head];
        const auto edges = forward ? g.OutEdges(x) : g.InEdges(x);
        for (const LabeledNeighbor& nb : edges) {
          if (visited[nb.v] == epoch) continue;
          visited[nb.v] = epoch;
          // Prune: if the current snapshot already proves reachability
          // between v and nb.v, everything beyond nb.v is covered too.
          const bool covered = forward
                                   ? Intersect(index.out_[v], index.in_[nb.v])
                                   : Intersect(index.out_[nb.v], index.in_[v]);
          if (covered) {
            ++pruned;
            continue;
          }
          if (forward) {
            index.in_[nb.v].push_back(rank);
          } else {
            index.out_[nb.v].push_back(rank);
          }
          queue.push_back(nb.v);
        }
      }
    }
  }

  if (stats != nullptr) {
    stats->entries = index.NumEntries();
    stats->pruned = pruned;
    stats->build_seconds = timer.ElapsedSeconds();
  }
  return index;
}

}  // namespace rlc
