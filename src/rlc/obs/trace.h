// Scoped trace spans: an RAII timer that records its duration into a
// Histogram and appends a (name, start, duration, tid) event to a global
// lock-free ring of recent spans for post-mortem dumps.
//
//   static obs::Histogram& h =
//       obs::Registry::Global().GetHistogram("wal.append_ns");
//   obs::ScopedSpan span(h, "wal.append");
//
// Spans are disarmed (no clock read, no record) when obs::Enabled() is
// false, so they are safe on warm paths; still, keep them at batch/job/IO
// granularity — a span costs two clock reads (~40ns), which would dwarf a
// 30ns probe.
//
// Ring-buffer consistency: slots are claimed by a fetch_add ticket, and
// each field is an independent relaxed atomic. After the ring wraps, a
// reader racing a writer can observe a torn event (fields from two
// different spans). That is acceptable for a diagnostics ring — events
// are never used for accounting — and keeps the writer wait-free and
// TSan-clean. Span names must be string literals (the ring stores the
// pointer).

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "rlc/obs/metrics.h"

namespace rlc::obs {

struct SpanEvent {
  const char* name = nullptr;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t tid = 0;
};

/// Fixed-capacity ring of the most recent span events.
class SpanRing {
 public:
  static constexpr size_t kCapacity = 1024;

  static SpanRing& Global() {
    static SpanRing* ring = new SpanRing();  // leaked: outlive all users
    return *ring;
  }

  void Record(const char* name, uint64_t start_ns, uint64_t dur_ns) {
    const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[ticket % kCapacity];
    s.name.store(name, std::memory_order_relaxed);
    s.start.store(start_ns, std::memory_order_relaxed);
    s.dur.store(dur_ns, std::memory_order_relaxed);
    s.tid.store(detail::ThreadId(), std::memory_order_relaxed);
  }

  /// Best-effort oldest-to-newest view of up to `max_events` recent spans.
  std::vector<SpanEvent> Recent(size_t max_events = kCapacity) const {
    const uint64_t end = next_.load(std::memory_order_relaxed);
    uint64_t n = end < kCapacity ? end : kCapacity;
    if (n > max_events) n = max_events;
    std::vector<SpanEvent> out;
    out.reserve(n);
    for (uint64_t t = end - n; t < end; ++t) {
      const Slot& s = slots_[t % kCapacity];
      SpanEvent e;
      e.name = s.name.load(std::memory_order_relaxed);
      e.start_ns = s.start.load(std::memory_order_relaxed);
      e.dur_ns = s.dur.load(std::memory_order_relaxed);
      e.tid = s.tid.load(std::memory_order_relaxed);
      if (e.name != nullptr) out.push_back(e);
    }
    return out;
  }

  uint64_t total_recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<uint64_t> start{0};
    std::atomic<uint64_t> dur{0};
    std::atomic<uint32_t> tid{0};
  };
  std::atomic<uint64_t> next_{0};
  Slot slots_[kCapacity];
};

/// RAII span: times its scope, records into `hist`, appends to the global
/// ring. No-op (no clock read) when metrics are disabled at construction.
class ScopedSpan {
 public:
  ScopedSpan(Histogram& hist, const char* name)
      : hist_(&hist), name_(name), start_(Enabled() ? NowNanos() : 0) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (start_ == 0) return;
    const uint64_t dur = NowNanos() - start_;
    hist_->Record(dur);
    SpanRing::Global().Record(name_, start_, dur);
  }

 private:
  Histogram* hist_;
  const char* name_;
  uint64_t start_;
};

/// Renders recent span events, one per line, newest last:
///   <start_ns> <dur_ns>ns tid=<tid> <name>
inline std::string DumpRecentSpans(size_t max_events = SpanRing::kCapacity) {
  std::string out;
  for (const SpanEvent& e : SpanRing::Global().Recent(max_events)) {
    out += std::to_string(e.start_ns) + " " + std::to_string(e.dur_ns) +
           "ns tid=" + std::to_string(e.tid) + " " + e.name + "\n";
  }
  return out;
}

}  // namespace rlc::obs
