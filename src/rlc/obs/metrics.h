// Lock-free metrics primitives + named registry for the serving stack.
//
// Three primitives, all safe for concurrent writers and concurrent
// snapshot readers:
//
//   Counter    monotonic u64, sharded across cache lines so parallel
//              kernel jobs never contend on one atomic.
//   Gauge      instantaneous i64 (queue depth, busy workers).
//   Histogram  fixed-bucket log-linear latency histogram (8 sub-buckets
//              per octave => <= 12.5% relative bucket width), sharded
//              per-thread, merged on read into p50/p95/p99/max.
//
// A Registry names metrics and hands out stable references; callers cache
// the reference once (a function-local static at the instrumentation site
// is the idiom) so the hot path never touches the registry mutex:
//
//   static obs::Counter& c = obs::Registry::Global().GetCounter("wal.fsyncs");
//   c.Inc();
//
// Registry::Global() serves cross-cutting library metrics (WAL, reseal,
// recovery, pools, failpoints). Objects that exist many times per process
// (ShardedRlcService) own a private Registry instead so instances don't
// aggregate into one blob.
//
// Kill switches: the primitives themselves are always-on relaxed atomics —
// cheap enough for functional accounting (ServiceStats) that tests assert
// on. Instrumentation that costs real time (clock reads, spans, the
// counted query kernel) must guard on obs::Enabled(), which is runtime
// (RLC_METRICS env / SetEnabled) and compile-time (-DRLC_METRICS_DISABLED
// folds Enabled() to a constant false and dead-codes the sites).

#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rlc::obs {

#ifdef RLC_METRICS_DISABLED
inline constexpr bool kMetricsCompiledIn = false;
#else
inline constexpr bool kMetricsCompiledIn = true;
#endif

namespace detail {

std::atomic<bool>& EnabledFlag();

/// Small dense per-thread id (0, 1, 2, ...), assigned on first use; shard
/// selectors mask it down. Also doubles as the tid recorded in span events.
uint32_t ThreadId();

}  // namespace detail

/// True when instrumentation should record. Relaxed load on a process
/// global; constant false when compiled out.
inline bool Enabled() {
  if constexpr (!kMetricsCompiledIn) {
    return false;
  } else {
    return detail::EnabledFlag().load(std::memory_order_relaxed);
  }
}

/// Runtime toggle (benches measure enabled-vs-disabled in one process).
/// Initial value comes from the RLC_METRICS env var (default on; "0",
/// "off", "false" disable).
void SetEnabled(bool on);

/// Monotonic clock in nanoseconds (steady_clock).
uint64_t NowNanos();

/// Monotonic counter, sharded across cache lines. Add/Inc are wait-free
/// relaxed RMWs; Value() is a relaxed sum, exact once writers quiesce.
class Counter {
 public:
  static constexpr uint32_t kShards = 8;

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n) {
    shards_[detail::ThreadId() & (kShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Inc() { Add(1); }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  /// Zeroes the counter. Only meaningful while no writer is active
  /// (bench phase boundaries, tests).
  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// Instantaneous signed value (queue depth, busy workers, index size).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void Sub(int64_t d) { v_.fetch_sub(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Merged read-side view of one Histogram (see Histogram below for the
/// bucket scheme). Percentile() answers from bucket midpoints, so its
/// error is bounded by half a bucket width (<= 6.25% relative).
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::vector<uint64_t> buckets;  ///< dense per-bucket counts

  double Mean() const { return count == 0 ? 0.0 : double(sum) / double(count); }
  /// q in (0, 1]; value at that quantile, from the containing bucket's
  /// midpoint. Returns 0 on an empty histogram.
  uint64_t Percentile(double q) const;
};

/// Fixed-bucket log-linear histogram of non-negative values (latencies in
/// nanoseconds by convention). Buckets: values 0..7 are exact; above that
/// each power-of-two octave splits into 8 linear sub-buckets, so bucket
/// width is <= 12.5% of the value. Values are clamped at 2^41 - 1 (~36
/// minutes in ns), 312 buckets total.
///
/// Record() is two relaxed fetch_adds plus a CAS max on a per-thread-group
/// shard; Snapshot() merges shards with relaxed loads. Counts are
/// conserved: every Record lands in exactly one bucket, so the bucket sum
/// equals the number of records once writers quiesce.
class Histogram {
 public:
  static constexpr uint32_t kSubBits = 3;
  static constexpr uint32_t kSub = 1u << kSubBits;  // sub-buckets per octave
  static constexpr uint32_t kMaxExp = 40;
  static constexpr uint32_t kNumBuckets = kSub + (kMaxExp - kSubBits + 1) * kSub;
  static constexpr uint32_t kShards = 4;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  static uint32_t BucketOf(uint64_t v) {
    constexpr uint64_t kClamp = (uint64_t{1} << (kMaxExp + 1)) - 1;
    if (v < kSub) return static_cast<uint32_t>(v);
    if (v > kClamp) v = kClamp;
    const uint32_t h = 63u - static_cast<uint32_t>(std::countl_zero(v));
    const uint32_t sub =
        static_cast<uint32_t>((v >> (h - kSubBits)) & (kSub - 1));
    return kSub + (h - kSubBits) * kSub + sub;
  }
  /// Smallest value mapping to bucket b.
  static uint64_t BucketLower(uint32_t b) {
    if (b < kSub) return b;
    const uint32_t h = kSubBits + (b - kSub) / kSub;
    const uint64_t sub = (b - kSub) % kSub;
    return (uint64_t{1} << h) + (sub << (h - kSubBits));
  }
  /// Largest value mapping to bucket b (inclusive).
  static uint64_t BucketUpper(uint32_t b) {
    if (b < kSub) return b;
    const uint32_t h = kSubBits + (b - kSub) / kSub;
    const uint64_t sub = (b - kSub) % kSub;
    return (uint64_t{1} << h) + ((sub + 1) << (h - kSubBits)) - 1;
  }

  void Record(uint64_t v) {
    Shard& s = shards_[detail::ThreadId() & (kShards - 1)];
    s.counts[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    uint64_t m = s.max.load(std::memory_order_relaxed);
    while (v > m && !s.max.compare_exchange_weak(m, v,
                                                 std::memory_order_relaxed)) {
    }
  }

  /// Merge-on-read view. Exact once writers quiesce; during concurrent
  /// recording it is a consistent-enough sample (count/sum may straddle an
  /// in-flight Record).
  HistogramSnapshot Snapshot() const;

  /// Zeroes all shards. Only meaningful while no writer is active.
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> counts[kNumBuckets]{};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
  };
  Shard shards_[kShards];
};

struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  int64_t value = 0;
};

/// Point-in-time view of a Registry, sorted by metric name (deterministic:
/// two snapshots of the same quiesced registry render identically).
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  const CounterSnapshot* FindCounter(std::string_view name) const;
  const GaugeSnapshot* FindGauge(std::string_view name) const;
  const HistogramSnapshot* FindHistogram(std::string_view name) const;

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,mean,
  /// max,p50,p90,p95,p99}}} — keys sorted, stable across runs.
  std::string ToJson() const;
  /// Prometheus text exposition: counters/gauges as-is, histograms as
  /// summaries with quantile labels. Metric names are prefixed and
  /// sanitized ('.' and other invalid chars become '_').
  std::string ToPrometheusText(std::string_view prefix = "rlc") const;
};

/// Named metric directory. GetX interns by name under a mutex and returns
/// a stable reference — cache it; lookups are not for hot paths. A name
/// registered as one kind cannot be re-registered as another
/// (std::invalid_argument).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (names stay registered). Writers must
  /// be quiescent; meant for bench phase boundaries and tests.
  void ResetValues();

  /// Process-global registry for cross-cutting library metrics.
  static Registry& Global();

 private:
  template <typename T>
  using NameMap = std::map<std::string, std::unique_ptr<T>, std::less<>>;

  void CheckNameFree(std::string_view name, const char* kind) const;

  mutable std::mutex mu_;
  NameMap<Counter> counters_;
  NameMap<Gauge> gauges_;
  NameMap<Histogram> histograms_;
};

}  // namespace rlc::obs
