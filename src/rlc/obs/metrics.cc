#include "rlc/obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace rlc::obs {

namespace detail {

namespace {

bool EnabledFromEnv() {
  const char* v = std::getenv("RLC_METRICS");
  if (v == nullptr) return true;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
           std::strcmp(v, "OFF") == 0 || std::strcmp(v, "false") == 0 ||
           std::strcmp(v, "FALSE") == 0);
}

}  // namespace

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag{EnabledFromEnv()};
  return flag;
}

uint32_t ThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace detail

void SetEnabled(bool on) {
  detail::EnabledFlag().store(on, std::memory_order_relaxed);
}

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * double(count)));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (uint32_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      const uint64_t lo = Histogram::BucketLower(b);
      const uint64_t hi = Histogram::BucketUpper(b);
      uint64_t mid = lo + (hi - lo) / 2;
      // The top bucket's upper bound is the clamp, not an observation;
      // the tracked max is tighter there.
      if (max != 0 && mid > max) mid = max;
      return mid;
    }
  }
  return max;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.assign(kNumBuckets, 0);
  for (const Shard& s : shards_) {
    for (uint32_t b = 0; b < kNumBuckets; ++b) {
      snap.buckets[b] += s.counts[b].load(std::memory_order_relaxed);
    }
    snap.sum += s.sum.load(std::memory_order_relaxed);
    snap.max = std::max(snap.max, s.max.load(std::memory_order_relaxed));
  }
  for (const uint64_t c : snap.buckets) snap.count += c;
  return snap;
}

void Histogram::Reset() {
  for (Shard& s : shards_) {
    for (uint32_t b = 0; b < kNumBuckets; ++b) {
      s.counts[b].store(0, std::memory_order_relaxed);
    }
    s.sum.store(0, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
  }
}

namespace {

// Metric names are dotted lowercase identifiers, but escape defensively so
// an odd name cannot produce invalid JSON.
void AppendJsonString(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string FormatDouble(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

std::string PrometheusName(std::string_view prefix, std::string_view name) {
  std::string out;
  out.reserve(prefix.size() + 1 + name.size());
  out.append(prefix);
  if (!prefix.empty()) out.push_back('_');
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

const CounterSnapshot* MetricsSnapshot::FindCounter(
    std::string_view name) const {
  for (const CounterSnapshot& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSnapshot* MetricsSnapshot::FindGauge(std::string_view name) const {
  for (const GaugeSnapshot& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out;
  out += "{\"counters\":{";
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i) out.push_back(',');
    AppendJsonString(out, counters[i].name);
    out.push_back(':');
    out += std::to_string(counters[i].value);
  }
  out += "},\"gauges\":{";
  for (size_t i = 0; i < gauges.size(); ++i) {
    if (i) out.push_back(',');
    AppendJsonString(out, gauges[i].name);
    out.push_back(':');
    out += std::to_string(gauges[i].value);
  }
  out += "},\"histograms\":{";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    if (i) out.push_back(',');
    AppendJsonString(out, h.name);
    out += ":{\"count\":" + std::to_string(h.count);
    out += ",\"sum\":" + std::to_string(h.sum);
    out += ",\"mean\":" + FormatDouble(h.Mean());
    out += ",\"max\":" + std::to_string(h.max);
    out += ",\"p50\":" + std::to_string(h.Percentile(0.50));
    out += ",\"p90\":" + std::to_string(h.Percentile(0.90));
    out += ",\"p95\":" + std::to_string(h.Percentile(0.95));
    out += ",\"p99\":" + std::to_string(h.Percentile(0.99));
    out.push_back('}');
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::ToPrometheusText(std::string_view prefix) const {
  std::string out;
  for (const CounterSnapshot& c : counters) {
    const std::string n = PrometheusName(prefix, c.name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(c.value) + "\n";
  }
  for (const GaugeSnapshot& g : gauges) {
    const std::string n = PrometheusName(prefix, g.name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + std::to_string(g.value) + "\n";
  }
  for (const HistogramSnapshot& h : histograms) {
    const std::string n = PrometheusName(prefix, h.name);
    out += "# TYPE " + n + " summary\n";
    for (const auto& [label, q] :
         {std::pair<const char*, double>{"0.5", 0.50},
          {"0.9", 0.90},
          {"0.95", 0.95},
          {"0.99", 0.99}}) {
      out += n + "{quantile=\"" + label + "\"} " +
             std::to_string(h.Percentile(q)) + "\n";
    }
    out += n + "_sum " + std::to_string(h.sum) + "\n";
    out += n + "_count " + std::to_string(h.count) + "\n";
    out += n + "_max " + std::to_string(h.max) + "\n";
  }
  return out;
}

void Registry::CheckNameFree(std::string_view name, const char* kind) const {
  const bool taken = counters_.find(name) != counters_.end() ||
                     gauges_.find(name) != gauges_.end() ||
                     histograms_.find(name) != histograms_.end();
  if (taken) {
    throw std::invalid_argument("obs::Registry: metric name '" +
                                std::string(name) +
                                "' already registered as a different kind "
                                "(requested " + kind + ")");
  }
}

Counter& Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = counters_.find(name); it != counters_.end()) {
    return *it->second;
  }
  CheckNameFree(name, "counter");
  auto [it, _] =
      counters_.emplace(std::string(name), std::make_unique<Counter>());
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = gauges_.find(name); it != gauges_.end()) {
    return *it->second;
  }
  CheckNameFree(name, "gauge");
  auto [it, _] = gauges_.emplace(std::string(name), std::make_unique<Gauge>());
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = histograms_.find(name); it != histograms_.end()) {
    return *it->second;
  }
  CheckNameFree(name, "histogram");
  auto [it, _] =
      histograms_.emplace(std::string(name), std::make_unique<Histogram>());
  return *it->second;
}

MetricsSnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs = h->Snapshot();
    hs.name = name;
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void Registry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

Registry& Registry::Global() {
  static Registry* global = new Registry();  // leaked: outlive all users
  return *global;
}

}  // namespace rlc::obs
