#include "rlc/engines/rlc_hybrid_engine.h"

#include <vector>

#include "rlc/automaton/dense_nfa.h"
#include "rlc/util/common.h"

namespace rlc {

bool RlcHybridEngine::Evaluate(VertexId s, VertexId t,
                               const PathConstraint& constraint) {
  RLC_REQUIRE(s < g_.num_vertices() && t < g_.num_vertices(),
              "RlcHybridEngine: vertex out of range");
  const auto& atoms = constraint.atoms();
  RLC_REQUIRE(!atoms.empty(), "RlcHybridEngine: empty constraint");

  const ConstraintAtom& last = atoms.back();
  RLC_REQUIRE(last.plus, "RlcHybridEngine: final atom must be recursive (L+)");
  RLC_REQUIRE(!last.alternation,
              "RlcHybridEngine: the final atom must be a concatenation (RLC);"
              " alternation atoms are only supported in the prefix");
  RLC_REQUIRE(last.seq.size() <= index_.k(),
              "RlcHybridEngine: final atom longer than the index's k");

  // Unreachability prefilter: no plain path means no constrained path.
  if (prefilter_ != nullptr && !prefilter_->Reachable(s, t)) return false;

  // Fast path: a pure RLC constraint is one index lookup, with the MR id
  // memoized across Evaluate calls (replays repeat a few templates). The
  // label-signature check runs before even hashing the sequence
  // (mr_cache_.Get/FindMr): when neither Lout(s) nor Lin(t) can hold an
  // entry over these labels the answer is false without a table lookup.
  if (atoms.size() == 1) {
    RLC_REQUIRE(IsPrimitive(last.seq.labels()),
                "RlcHybridEngine: constraint " << last.seq.ToString()
                    << " is not a minimum repeat (L != MR(L))");
    if (index_.RefutedBySignature(s, t, last.seq.labels())) return false;
    return index_.QueryInterned(s, t, mr_cache_.Get(last.seq));
  }

  // Hybrid path: traverse the prefix online, probe the index at every
  // prefix-accepting vertex. An MR the index never recorded cannot satisfy
  // the final atom anywhere — skip the whole prefix traversal.
  const MrId last_mr = mr_cache_.Get(last.seq);
  if (last_mr == kInvalidMrId) return false;

  PathConstraint prefix(
      std::vector<ConstraintAtom>(atoms.begin(), atoms.end() - 1));
  const Nfa nfa = Nfa::FromConstraint(prefix);
  const DenseNfa dense(nfa, g_.num_labels());

  const uint32_t nq = dense.num_states();
  std::vector<bool> visited(static_cast<uint64_t>(g_.num_vertices()) * nq, false);
  std::vector<std::pair<VertexId, uint32_t>> queue;
  auto visit = [&](VertexId v, uint32_t q) -> bool {
    const uint64_t slot = static_cast<uint64_t>(v) * nq + q;
    if (visited[slot]) return false;
    visited[slot] = true;
    return true;
  };

  for (uint32_t q : dense.starts()) {
    if (visit(s, q)) queue.push_back({s, q});
  }
  for (size_t head = 0; head < queue.size(); ++head) {
    const auto [v, q] = queue[head];
    for (const LabeledNeighbor& nb : g_.OutEdges(v)) {
      for (uint32_t q2 : dense.Next(q, nb.label)) {
        if (!visit(nb.v, q2)) continue;
        if (dense.IsAccept(q2) &&
            index_.QueryInterned(nb.v, t, last_mr)) {
          return true;
        }
        queue.push_back({nb.v, q2});
      }
    }
  }
  return false;
}

}  // namespace rlc
