// Tuple-at-a-time iterator engine (the "Sys2" archetype of Table V).
//
// Evaluates the product of the graph and the constraint NFA through a
// Volcano-style operator pipeline: every binding (vertex, nfa state) flows
// through virtual Next() calls one tuple at a time, with hash-table visited
// deduplication — the classic interpreted-engine overheads (virtual
// dispatch, per-tuple hashing, no batching) that make commercial engines
// orders of magnitude slower than a dedicated index on recursive paths.

#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "rlc/engines/engine.h"

namespace rlc {

class VolcanoEngine : public Engine {
 public:
  explicit VolcanoEngine(const DiGraph& g) : g_(g) {}

  std::string name() const override { return "VolcanoIterator(Sys2-like)"; }

  bool Evaluate(VertexId s, VertexId t, const PathConstraint& constraint) override;

 private:
  const DiGraph& g_;
};

}  // namespace rlc
