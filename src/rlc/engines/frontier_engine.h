// Set-at-a-time frontier engine (the "Virtuoso" archetype of Table V).
//
// Evaluates recursive property paths the way Virtuoso's SPARQL engine does:
// breadth-first expansion where each step materializes the entire next
// binding set into fresh vectors, deduplicated through a hash set that
// persists for the query. The target probe runs once per completed level
// (set-at-a-time semantics), not per tuple.

#pragma once

#include <unordered_set>
#include <vector>

#include "rlc/engines/engine.h"

namespace rlc {

class FrontierEngine : public Engine {
 public:
  explicit FrontierEngine(const DiGraph& g) : g_(g) {}

  std::string name() const override { return "FrontierSPARQL(Virtuoso-like)"; }

  bool Evaluate(VertexId s, VertexId t, const PathConstraint& constraint) override;

 private:
  const DiGraph& g_;
};

}  // namespace rlc
