// The paper's approach wrapped in the Engine interface.
//
// Pure RLC constraints (one L+ atom with |L| <= k) are answered by a single
// index lookup. Extended constraints such as Q4 = a+ ∘ b+ combine the index
// with an online traversal (paper §VI-C: "we use the RLC index in
// combination with an online traversal to continuously check whether
// intermediately visited vertices can satisfy the path constraint"): the
// prefix atoms (all but the last) are evaluated by an NFA-guided BFS, and
// every vertex reached at a prefix-accepting state issues an index lookup
// for the final atom.

#pragma once

#include <memory>

#include "rlc/core/mr_cache.h"
#include "rlc/core/rlc_index.h"
#include "rlc/engines/engine.h"
#include "rlc/plain/plain_reach_index.h"

namespace rlc {

/// Not thread-safe: Evaluate memoizes MR lookups in a per-engine cache, so
/// run one engine instance per thread (they can share the graph and index).
class RlcHybridEngine : public Engine {
 public:
  /// `index` must be built on `g` (same vertex space); its recursive k must
  /// cover the atoms of every constraint passed to Evaluate.
  ///
  /// `prefilter` (optional, may be nullptr, not owned) is a plain
  /// 2-hop reachability index on the same graph: when s cannot reach t at
  /// all, no label constraint can hold and the query short-circuits to
  /// false before touching the (larger) RLC entry lists.
  RlcHybridEngine(const DiGraph& g, const RlcIndex& index,
                  const PlainReachIndex* prefilter = nullptr)
      : g_(g), index_(index), prefilter_(prefilter), mr_cache_(index) {}

  std::string name() const override { return "RlcIndex(paper)"; }

  bool Evaluate(VertexId s, VertexId t, const PathConstraint& constraint) override;

  /// Telemetry of the final-atom MR memo (lookups/hits/evictions); the
  /// eviction counters bound the damage of adversarial template streams.
  MrCacheStats mr_cache_stats() const { return mr_cache_.stats(); }

 private:
  const DiGraph& g_;
  const RlcIndex& index_;
  const PlainReachIndex* prefilter_;
  /// Final-atom MR ids, memoized per distinct sequence: workload replays
  /// evaluate thousands of queries over a handful of templates.
  MrCache mr_cache_;
};

}  // namespace rlc
