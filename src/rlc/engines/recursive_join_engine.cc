#include "rlc/engines/recursive_join_engine.h"

#include "rlc/util/common.h"

namespace rlc {

std::unordered_set<VertexId> RecursiveJoinEngine::ComposeAtom(
    const ConstraintAtom& atom, const std::unordered_set<VertexId>& sources) const {
  if (atom.alternation) {
    // One step over any label of the set: union of per-label scans.
    std::unordered_set<VertexId> next;
    next.reserve(sources.size());
    for (VertexId u : sources) {
      for (uint32_t i = 0; i < atom.seq.size(); ++i) {
        for (const LabeledNeighbor& nb : g_.OutEdgesWithLabel(u, atom.seq[i])) {
          next.insert(nb.v);
        }
      }
    }
    return next;
  }

  // Chain of hash joins: bindings_i = { v : u in bindings_{i-1},
  // u -seq[i]-> v }. Each step fully materializes its bindings, as a
  // relational plan would.
  std::unordered_set<VertexId> bindings = sources;
  for (uint32_t i = 0; i < atom.seq.size(); ++i) {
    std::unordered_set<VertexId> next;
    next.reserve(bindings.size());
    for (VertexId u : bindings) {
      for (const LabeledNeighbor& nb : g_.OutEdgesWithLabel(u, atom.seq[i])) {
        next.insert(nb.v);
      }
    }
    bindings = std::move(next);
    if (bindings.empty()) break;
  }
  return bindings;
}

std::unordered_set<VertexId> RecursiveJoinEngine::AtomFixpoint(
    const ConstraintAtom& atom, const std::unordered_set<VertexId>& sources) const {
  std::unordered_set<VertexId> reached;   // >= 1 applications
  std::unordered_set<VertexId> delta = ComposeAtom(atom, sources);
  while (!delta.empty()) {
    std::unordered_set<VertexId> fresh;
    for (VertexId v : delta) {
      if (reached.insert(v).second) fresh.insert(v);
    }
    if (fresh.empty()) break;
    delta = ComposeAtom(atom, fresh);
  }
  return reached;
}

bool RecursiveJoinEngine::Evaluate(VertexId s, VertexId t,
                                   const PathConstraint& constraint) {
  RLC_REQUIRE(s < g_.num_vertices() && t < g_.num_vertices(),
              "RecursiveJoinEngine: vertex out of range");
  std::unordered_set<VertexId> bindings{s};
  for (const ConstraintAtom& atom : constraint.atoms()) {
    bindings = atom.plus ? AtomFixpoint(atom, bindings)
                         : ComposeAtom(atom, bindings);
    if (bindings.empty()) return false;
  }
  return bindings.contains(t);
}

}  // namespace rlc
