#include "rlc/engines/volcano_engine.h"

#include "rlc/automaton/dense_nfa.h"
#include "rlc/util/common.h"

namespace rlc {

namespace {

/// One binding flowing through the pipeline.
struct Binding {
  VertexId v;
  uint32_t q;
};

/// Volcano operator interface: pull-based, one tuple per Next() call.
class Operator {
 public:
  virtual ~Operator() = default;
  /// Produces the next binding; returns false at end of stream.
  virtual bool Next(Binding* out) = 0;
};

/// Leaf: emits the start bindings (s, q0) for every NFA start state.
class StartScan : public Operator {
 public:
  StartScan(VertexId s, const DenseNfa& nfa) : s_(s), nfa_(nfa) {}

  bool Next(Binding* out) override {
    if (pos_ >= nfa_.starts().size()) return false;
    *out = {s_, nfa_.starts()[pos_++]};
    return true;
  }

 private:
  VertexId s_;
  const DenseNfa& nfa_;
  size_t pos_ = 0;
};

/// Recursive expand-distinct: the work queue IS the operator state; each
/// Next() pulls one deduplicated product binding, expanding lazily, exactly
/// like an interpreted transitive-closure operator with a spool.
class ExpandDistinct : public Operator {
 public:
  ExpandDistinct(const DiGraph& g, const DenseNfa& nfa,
                 std::unique_ptr<Operator> child)
      : g_(g), nfa_(nfa), child_(std::move(child)) {}

  bool Next(Binding* out) override {
    while (true) {
      // Prefer pending expansions (depth-first spool).
      if (!pending_.empty()) {
        const Binding b = pending_.back();
        pending_.pop_back();
        if (!MarkVisited(b)) continue;
        Expand(b);
        *out = b;
        return true;
      }
      // Pull the next seed from the child.
      Binding seed;
      if (!child_->Next(&seed)) return false;
      if (!MarkVisited(seed)) continue;
      Expand(seed);
      *out = seed;
      return true;
    }
  }

 private:
  bool MarkVisited(const Binding& b) {
    return visited_.insert((static_cast<uint64_t>(b.v) << 8) | b.q).second;
  }

  void Expand(const Binding& b) {
    for (const LabeledNeighbor& nb : g_.OutEdges(b.v)) {
      for (uint32_t q2 : nfa_.Next(b.q, nb.label)) {
        pending_.push_back({nb.v, q2});
      }
    }
  }

  const DiGraph& g_;
  const DenseNfa& nfa_;
  std::unique_ptr<Operator> child_;
  std::vector<Binding> pending_;
  std::unordered_set<uint64_t> visited_;
};

/// Filter on (v == t && accept); the root of the plan.
class TargetFilter : public Operator {
 public:
  TargetFilter(VertexId t, const DenseNfa& nfa, std::unique_ptr<Operator> child)
      : t_(t), nfa_(nfa), child_(std::move(child)) {}

  bool Next(Binding* out) override {
    Binding b;
    while (child_->Next(&b)) {
      if (b.v == t_ && nfa_.IsAccept(b.q)) {
        *out = b;
        return true;
      }
    }
    return false;
  }

 private:
  VertexId t_;
  const DenseNfa& nfa_;
  std::unique_ptr<Operator> child_;
};

}  // namespace

bool VolcanoEngine::Evaluate(VertexId s, VertexId t,
                             const PathConstraint& constraint) {
  RLC_REQUIRE(s < g_.num_vertices() && t < g_.num_vertices(),
              "VolcanoEngine: vertex out of range");
  const Nfa nfa = Nfa::FromConstraint(constraint);
  RLC_CHECK_MSG(nfa.num_states() < 256,
                "VolcanoEngine: NFA too large for the packed visited key");
  const DenseNfa dense(nfa, g_.num_labels());

  // Plan: TargetFilter <- ExpandDistinct <- StartScan.   The seed binding
  // (s, start) itself is never accepting (start states accept nothing in
  // RLC-class constraints), but it flows through the filter uniformly.
  auto plan = std::make_unique<TargetFilter>(
      t, dense,
      std::make_unique<ExpandDistinct>(g_, dense,
                                       std::make_unique<StartScan>(s, dense)));
  Binding result;
  return plan->Next(&result);
}

}  // namespace rlc
