// Relational fixpoint engine (the "Sys1" archetype of Table V).
//
// Evaluates each atom L+ the way a SQL recursive CTE or a SPARQL
// transitive-closure operator does: materialize the base relation
// R1 = { (u,v) : some path u->v is labeled exactly L } by composing the
// per-label edge relations (hash joins over materialized binding vectors),
// then iterate Delta_{i+1} = Delta_i ⋈ R1 semi-naively to fixpoint. The
// (s,t) probe only runs after the full per-atom fixpoint, like a SQL engine
// that computes the CTE before applying the outer WHERE. Multi-atom
// constraints chain the per-atom fixpoints. The heavy materialization is
// the point: this archetype reproduces the behaviour of the weakest engine
// in Table V.

#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rlc/engines/engine.h"

namespace rlc {

class RecursiveJoinEngine : public Engine {
 public:
  explicit RecursiveJoinEngine(const DiGraph& g) : g_(g) {}

  std::string name() const override { return "RecursiveJoin(Sys1-like)"; }

  bool Evaluate(VertexId s, VertexId t, const PathConstraint& constraint) override;

 private:
  /// Targets v reachable from `sources` by ONE application of `atom`'s body
  /// (the |seq|-step concatenation, or a single any-of-the-set step for
  /// alternation atoms); chained hash joins with full intermediate
  /// materialization.
  std::unordered_set<VertexId> ComposeAtom(
      const ConstraintAtom& atom, const std::unordered_set<VertexId>& sources) const;

  /// Vertices reachable from `sources` by >= 1 applications of `atom`'s
  /// body (semi-naive fixpoint of the + operator).
  std::unordered_set<VertexId> AtomFixpoint(
      const ConstraintAtom& atom, const std::unordered_set<VertexId>& sources) const;

  const DiGraph& g_;
};

}  // namespace rlc
