#include "rlc/engines/frontier_engine.h"

#include "rlc/automaton/dense_nfa.h"
#include "rlc/util/common.h"

namespace rlc {

bool FrontierEngine::Evaluate(VertexId s, VertexId t,
                              const PathConstraint& constraint) {
  RLC_REQUIRE(s < g_.num_vertices() && t < g_.num_vertices(),
              "FrontierEngine: vertex out of range");
  const Nfa nfa = Nfa::FromConstraint(constraint);
  RLC_CHECK_MSG(nfa.num_states() < 256,
                "FrontierEngine: NFA too large for the packed visited key");
  const DenseNfa dense(nfa, g_.num_labels());

  auto key = [](VertexId v, uint32_t q) {
    return (static_cast<uint64_t>(v) << 8) | q;
  };

  std::unordered_set<uint64_t> visited;
  std::vector<std::pair<VertexId, uint32_t>> frontier;
  for (uint32_t q : dense.starts()) {
    if (visited.insert(key(s, q)).second) frontier.push_back({s, q});
  }

  while (!frontier.empty()) {
    // Materialize the full next level before probing (set-at-a-time).
    std::vector<std::pair<VertexId, uint32_t>> next_level;
    for (const auto& [v, q] : frontier) {
      for (const LabeledNeighbor& nb : g_.OutEdges(v)) {
        for (uint32_t q2 : dense.Next(q, nb.label)) {
          if (visited.insert(key(nb.v, q2)).second) {
            next_level.push_back({nb.v, q2});
          }
        }
      }
    }
    for (const auto& [v, q] : next_level) {
      if (v == t && dense.IsAccept(q)) return true;
    }
    frontier = std::move(next_level);
  }
  return false;
}

}  // namespace rlc
