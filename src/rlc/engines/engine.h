// Engine abstraction for the Table V comparison.
//
// The paper compares the RLC index against three graph engines (two
// anonymized commercial systems and Virtuoso). Those systems are not
// runnable offline, so this module provides three engine *archetypes* that
// bracket how real engines evaluate recursive property paths (see DESIGN.md
// §2 for the substitution rationale):
//
//   RecursiveJoinEngine   relational semi-naive fixpoint (recursive CTE /
//                         SPARQL transitive-closure style): computes the
//                         reachable relation globally, then probes (s,t).
//   VolcanoEngine         tuple-at-a-time iterator pipeline with per-tuple
//                         virtual dispatch over the product automaton.
//   FrontierEngine        set-at-a-time frontier materialization with
//                         hash-set deduplication (Virtuoso-style property
//                         path evaluation).
//   RlcHybridEngine       the paper's approach: a single index lookup for
//                         RLC constraints; index + online traversal for
//                         extended constraints such as Q4 = a+ ∘ b+ (§VI-C).
//
// All engines answer the same PathConstraint queries, so the bench can
// report the paper's SU (speed-up) and BEP (break-even point) metrics.

#pragma once

#include <memory>
#include <string>

#include "rlc/automaton/path_constraint.h"
#include "rlc/graph/digraph.h"

namespace rlc {

/// A query engine bound to one graph.
class Engine {
 public:
  virtual ~Engine() = default;

  /// Human-readable engine name for benchmark tables.
  virtual std::string name() const = 0;

  /// Evaluates the boolean reachability query (s, t, constraint).
  virtual bool Evaluate(VertexId s, VertexId t, const PathConstraint& constraint) = 0;
};

}  // namespace rlc
