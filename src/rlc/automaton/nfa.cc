#include "rlc/automaton/nfa.h"

#include <algorithm>

#include "rlc/util/common.h"

namespace rlc {

namespace {

// Intermediate automaton with epsilon moves, produced by the Thompson-style
// chain construction and then eliminated.
struct EpsNfa {
  std::vector<std::vector<NfaTransition>> labeled;
  std::vector<std::vector<uint32_t>> eps;
  uint32_t start = 0;
  std::vector<bool> accept;

  uint32_t AddState() {
    labeled.emplace_back();
    eps.emplace_back();
    accept.push_back(false);
    return static_cast<uint32_t>(labeled.size() - 1);
  }
};

// Epsilon closure of `state` (including itself), depth-first.
void Closure(const EpsNfa& a, uint32_t state, std::vector<bool>* seen,
             std::vector<uint32_t>* out) {
  if ((*seen)[state]) return;
  (*seen)[state] = true;
  out->push_back(state);
  for (uint32_t nxt : a.eps[state]) Closure(a, nxt, seen, out);
}

}  // namespace

Nfa Nfa::FromConstraint(const PathConstraint& constraint) {
  RLC_REQUIRE(!constraint.atoms().empty(), "Nfa: empty constraint");

  EpsNfa a;
  const uint32_t start = a.AddState();
  a.start = start;

  uint32_t prev_end = start;  // state reached after completing previous atoms
  for (const ConstraintAtom& atom : constraint.atoms()) {
    const uint32_t atom_start = a.AddState();
    a.eps[prev_end].push_back(atom_start);
    uint32_t cur = atom_start;
    if (atom.alternation) {
      // One step consuming any label of the set: (l1|...|lj).
      const uint32_t nxt = a.AddState();
      for (uint32_t i = 0; i < atom.seq.size(); ++i) {
        a.labeled[cur].push_back({atom.seq[i], nxt});
      }
      cur = nxt;
    } else {
      // The concatenation l1 ∘ ... ∘ lj.
      for (uint32_t i = 0; i < atom.seq.size(); ++i) {
        const uint32_t nxt = a.AddState();
        a.labeled[cur].push_back({atom.seq[i], nxt});
        cur = nxt;
      }
    }
    if (atom.plus) {
      a.eps[cur].push_back(atom_start);  // allow another repetition
    }
    prev_end = cur;
  }
  a.accept[prev_end] = true;

  // Eliminate epsilon transitions.
  const uint32_t n = static_cast<uint32_t>(a.labeled.size());
  std::vector<std::vector<uint32_t>> closures(n);
  for (uint32_t s = 0; s < n; ++s) {
    std::vector<bool> seen(n, false);
    Closure(a, s, &seen, &closures[s]);
  }

  Nfa out;
  out.transitions_.resize(n);
  out.accept_.assign(n, false);
  for (uint32_t s = 0; s < n; ++s) {
    for (uint32_t c : closures[s]) {
      out.accept_[s] = out.accept_[s] || a.accept[c];
      for (const NfaTransition& t : a.labeled[c]) {
        out.transitions_[s].push_back(t);
      }
    }
    auto& ts = out.transitions_[s];
    std::sort(ts.begin(), ts.end(), [](const NfaTransition& x, const NfaTransition& y) {
      return std::tie(x.label, x.to) < std::tie(y.label, y.to);
    });
    ts.erase(std::unique(ts.begin(), ts.end()), ts.end());
  }
  out.start_states_ = {a.start};
  return out;
}

Nfa Nfa::Reversed() const {
  Nfa rev;
  const uint32_t n = num_states();
  rev.transitions_.resize(n);
  rev.accept_.assign(n, false);
  for (uint32_t s = 0; s < n; ++s) {
    for (const NfaTransition& t : transitions_[s]) {
      rev.transitions_[t.to].push_back({t.label, s});
    }
    if (accept_[s]) rev.start_states_.push_back(s);
  }
  for (uint32_t s : start_states_) rev.accept_[s] = true;
  for (auto& ts : rev.transitions_) {
    std::sort(ts.begin(), ts.end(),
              [](const NfaTransition& x, const NfaTransition& y) {
                return std::tie(x.label, x.to) < std::tie(y.label, y.to);
              });
    ts.erase(std::unique(ts.begin(), ts.end()), ts.end());
  }
  return rev;
}

bool Nfa::Accepts(std::span<const Label> word) const {
  std::vector<bool> current(num_states(), false);
  for (uint32_t s : start_states_) current[s] = true;
  for (Label l : word) {
    std::vector<bool> next(num_states(), false);
    for (uint32_t s = 0; s < num_states(); ++s) {
      if (!current[s]) continue;
      for (const NfaTransition& t : transitions_[s]) {
        if (t.label == l) next[t.to] = true;
      }
    }
    current.swap(next);
  }
  for (uint32_t s = 0; s < num_states(); ++s) {
    if (current[s] && accept_[s]) return true;
  }
  return false;
}

uint64_t Nfa::num_transitions() const {
  uint64_t total = 0;
  for (const auto& ts : transitions_) total += ts.size();
  return total;
}

}  // namespace rlc
