#include "rlc/automaton/path_constraint.h"

#include <cctype>
#include <sstream>

namespace rlc {

namespace {

Label ResolveLabel(const std::string& token, const DiGraph& g) {
  if (g.has_label_names()) {
    if (auto l = g.FindLabel(token)) return *l;
  }
  // Fall back to numeric ids.
  Label value = 0;
  bool numeric = !token.empty();
  for (char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      numeric = false;
      break;
    }
    value = value * 10 + static_cast<Label>(c - '0');
  }
  RLC_REQUIRE(numeric && (g.num_labels() == 0 || value < g.num_labels()),
              "PathConstraint: unknown label '" << token << "'");
  return value;
}

}  // namespace

PathConstraint PathConstraint::Parse(const std::string& text, const DiGraph& g) {
  std::vector<ConstraintAtom> atoms;
  size_t i = 0;
  const size_t n = text.size();
  auto skip_ws = [&] {
    while (i < n && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  };
  auto read_token = [&]() -> std::string {
    std::string tok;
    while (i < n && !std::isspace(static_cast<unsigned char>(text[i])) &&
           text[i] != '(' && text[i] != ')' && text[i] != '+' &&
           text[i] != '|') {
      tok += text[i++];
    }
    return tok;
  };

  skip_ws();
  while (i < n) {
    ConstraintAtom atom;
    if (text[i] == '(') {
      ++i;
      skip_ws();
      bool saw_pipe = false;
      bool expect_more = false;
      while (i < n && text[i] != ')') {
        if (text[i] == '|') {
          saw_pipe = true;
          expect_more = true;
          ++i;
          skip_ws();
          continue;
        }
        const std::string tok = read_token();
        RLC_REQUIRE(!tok.empty(), "PathConstraint: empty token in '" << text << "'");
        atom.seq.PushBack(ResolveLabel(tok, g));
        expect_more = false;
        skip_ws();
      }
      RLC_REQUIRE(i < n, "PathConstraint: unmatched '(' in '" << text << "'");
      RLC_REQUIRE(!expect_more, "PathConstraint: dangling '|' in '" << text << "'");
      RLC_REQUIRE(!saw_pipe || atom.seq.size() >= 2,
                  "PathConstraint: alternation needs >= 2 labels in '" << text
                                                                       << "'");
      atom.alternation = saw_pipe;
      ++i;  // consume ')'
    } else {
      const std::string tok = read_token();
      RLC_REQUIRE(!tok.empty(), "PathConstraint: unexpected character at position "
                                    << i << " in '" << text << "'");
      atom.seq.PushBack(ResolveLabel(tok, g));
    }
    if (i < n && text[i] == '+') {
      atom.plus = true;
      ++i;
    }
    RLC_REQUIRE(!atom.seq.empty(), "PathConstraint: empty atom in '" << text << "'");
    atoms.push_back(atom);
    skip_ws();
  }
  RLC_REQUIRE(!atoms.empty(), "PathConstraint: empty constraint '" << text << "'");
  return PathConstraint(std::move(atoms));
}

std::string PathConstraint::ToString(const DiGraph& g) const {
  std::ostringstream oss;
  bool first = true;
  for (const ConstraintAtom& a : atoms_) {
    if (!first) oss << ' ';
    first = false;
    const bool parens = a.seq.size() > 1;
    if (parens) oss << '(';
    for (uint32_t j = 0; j < a.seq.size(); ++j) {
      if (j > 0) oss << (a.alternation ? "|" : " ");
      if (g.has_label_names()) {
        oss << g.LabelName(a.seq[j]);
      } else {
        oss << a.seq[j];
      }
    }
    if (parens) oss << ')';
    if (a.plus) oss << '+';
  }
  return oss.str();
}

std::string PathConstraint::ToString() const {
  return ToString(DiGraph());
}

}  // namespace rlc
