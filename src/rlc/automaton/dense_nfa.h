// Dense transition-table form of an NFA, for product-graph searches.
//
// The NFAs of RLC-class constraints have a handful of states, so a dense
// (state, label) -> [next states] table is tiny and removes per-step binary
// searches from the baselines' hot loops.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rlc/automaton/nfa.h"

namespace rlc {

/// Dense transition table over a fixed label alphabet.
class DenseNfa {
 public:
  /// \param nfa         source automaton
  /// \param num_labels  alphabet size; transitions on labels >= num_labels
  ///                    are dropped (they cannot occur in the graph).
  DenseNfa(const Nfa& nfa, Label num_labels)
      : num_states_(nfa.num_states()),
        num_labels_(num_labels),
        table_(static_cast<size_t>(num_states_) * num_labels),
        accept_(num_states_, false),
        starts_(nfa.start_states()) {
    for (uint32_t s = 0; s < num_states_; ++s) {
      accept_[s] = nfa.IsAccept(s);
      for (const NfaTransition& t : nfa.Transitions(s)) {
        if (t.label < num_labels) {
          table_[static_cast<size_t>(s) * num_labels_ + t.label].push_back(t.to);
        }
      }
    }
  }

  uint32_t num_states() const { return num_states_; }
  const std::vector<uint32_t>& starts() const { return starts_; }
  bool IsAccept(uint32_t state) const { return accept_[state]; }

  /// States reachable from `state` on `label`.
  std::span<const uint32_t> Next(uint32_t state, Label label) const {
    return table_[static_cast<size_t>(state) * num_labels_ + label];
  }

 private:
  uint32_t num_states_;
  Label num_labels_;
  std::vector<std::vector<uint32_t>> table_;
  std::vector<bool> accept_;
  std::vector<uint32_t> starts_;
};

}  // namespace rlc
