// Epsilon-free NFA for path constraints.
//
// The paper's first baseline evaluates RLC queries "by online graph
// traversals, e.g., BFS, guided by a minimized NFA constructed according to
// the regular expression" (§III-B). Constraints here are concatenations of
// (sequence, plus) atoms, so the Thompson construction is a chain of label
// transitions with back-loops; epsilon transitions are eliminated at build
// time, which keeps the product-graph searches (baselines/) free of closure
// bookkeeping.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rlc/automaton/path_constraint.h"
#include "rlc/graph/types.h"

namespace rlc {

/// One labeled NFA transition.
struct NfaTransition {
  Label label;
  uint32_t to;

  friend bool operator==(const NfaTransition&, const NfaTransition&) = default;
};

/// Epsilon-free NFA with a set of start states and a set of accept states.
class Nfa {
 public:
  /// Builds the NFA recognizing `constraint` (language over edge labels).
  static Nfa FromConstraint(const PathConstraint& constraint);

  uint32_t num_states() const { return static_cast<uint32_t>(transitions_.size()); }

  const std::vector<uint32_t>& start_states() const { return start_states_; }

  bool IsAccept(uint32_t state) const { return accept_[state]; }

  /// All labeled transitions out of `state`.
  std::span<const NfaTransition> Transitions(uint32_t state) const {
    return transitions_[state];
  }

  /// The reversed automaton: recognizes the reversal of the language.
  /// Used by the backward frontier of the bidirectional baseline.
  Nfa Reversed() const;

  /// Language membership test by subset simulation; O(|word| * states^2).
  /// Intended for unit tests, not the query path.
  bool Accepts(std::span<const Label> word) const;

  /// Total transition count (for tests / diagnostics).
  uint64_t num_transitions() const;

 private:
  std::vector<std::vector<NfaTransition>> transitions_;
  std::vector<uint32_t> start_states_;
  std::vector<bool> accept_;
};

}  // namespace rlc
