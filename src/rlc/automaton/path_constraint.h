// Path-constraint AST for the query classes the paper evaluates.
//
// A constraint is a concatenation of *atoms*; each atom is a fixed label
// sequence, optionally under the Kleene plus:
//
//   RLC query  (s,t,(l1..lj)+)        -> one atom, plus=true    (Def. 1)
//   Kleene-star variant (l1..lj)*     -> same atom; star is handled at the
//                                        query layer (s==t shortcut, §III-B)
//   extended query Q4 = a+ ∘ b+       -> two atoms, both plus=true (§VI-C)
//   bounded concatenation l1 ∘ l2     -> one atom, plus=false
//
// This covers every query shape in the paper's evaluation while staying a
// strict subset of regular expressions, so the NFA construction (nfa.h)
// stays small and obviously correct.

#pragma once

#include <string>
#include <vector>

#include "rlc/core/label_seq.h"
#include "rlc/graph/digraph.h"

namespace rlc {

/// One atom. Two interpretations of `seq`:
///  * concatenation (default): the labels in order, optionally under '+'
///    — the paper's RLC building block, e.g. (a b)+;
///  * alternation (`alternation = true`): any ONE label of the set per
///    step, optionally under '+' — the LCR-style constraints of the
///    paper's §II related work, e.g. (a|b)+.
struct ConstraintAtom {
  LabelSeq seq;
  bool plus = false;
  bool alternation = false;

  friend bool operator==(const ConstraintAtom&, const ConstraintAtom&) = default;
};

/// A concatenation of atoms (never empty, atoms never have empty sequences).
class PathConstraint {
 public:
  PathConstraint() = default;

  explicit PathConstraint(std::vector<ConstraintAtom> atoms)
      : atoms_(std::move(atoms)) {
    for (const ConstraintAtom& a : atoms_) {
      RLC_REQUIRE(!a.seq.empty(), "PathConstraint: empty atom sequence");
    }
  }

  /// The RLC constraint L+ (paper Definition 1).
  static PathConstraint RlcPlus(const LabelSeq& seq) {
    return PathConstraint({ConstraintAtom{seq, true}});
  }

  /// A fixed (non-recursive) concatenation L.
  static PathConstraint Fixed(const LabelSeq& seq) {
    return PathConstraint({ConstraintAtom{seq, false}});
  }

  /// The LCR-style alternation constraint (l1|...|lj)+ (§II related work).
  static PathConstraint LcrPlus(const LabelSeq& labels) {
    return PathConstraint({ConstraintAtom{labels, true, true}});
  }

  /// Parses a textual constraint, e.g. "(a b)+", "a+ b+", "a b c",
  /// "(knows worksFor)+", "(a|b)+". Atoms are whitespace-separated;
  /// parentheses group a multi-label sequence (concatenation when space-
  /// separated, alternation when '|'-separated); a trailing '+' marks
  /// recursion. Label names are resolved through `g` when it has a label
  /// dictionary, otherwise tokens must be numeric label ids.
  /// \throws std::invalid_argument on syntax errors or unknown labels.
  static PathConstraint Parse(const std::string& text, const DiGraph& g);

  const std::vector<ConstraintAtom>& atoms() const { return atoms_; }

  /// True when the constraint is a single `L+` atom (an RLC constraint).
  bool IsRlc() const { return atoms_.size() == 1 && atoms_[0].plus; }

  /// The single atom's sequence; only valid for 1-atom constraints.
  const LabelSeq& seq() const {
    RLC_CHECK(atoms_.size() == 1);
    return atoms_[0].seq;
  }

  /// Renders the constraint, using `g`'s label names when available.
  std::string ToString(const DiGraph& g) const;
  std::string ToString() const;

 private:
  std::vector<ConstraintAtom> atoms_;
};

}  // namespace rlc
