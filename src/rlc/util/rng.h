// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (graph generators, label
// assignment, workload generation) take an explicit seed and use this
// engine, so every experiment in the repository is bit-reproducible across
// runs and platforms. The engine is splitmix64-seeded xoshiro256**, which is
// fast, high quality, and has a trivially portable implementation (unlike
// std::mt19937 whose distributions are not specified portably).

#pragma once

#include <cstdint>
#include <limits>

#include "rlc/util/common.h"

namespace rlc {

/// Deterministic 64-bit PRNG (xoshiro256**), seedable from a single value.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed via splitmix64 expansion.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    uint64_t x = seed;
    for (auto& s : state_) {
      // splitmix64 step.
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  /// Returns the next 64 uniformly random bits.
  uint64_t Next64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Returns a uniform integer in [0, bound). `bound` must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t Below(uint64_t bound) {
    RLC_DCHECK(bound > 0);
    while (true) {
      const uint64_t x = Next64();
      const __uint128_t m = static_cast<__uint128_t>(x) * bound;
      const uint64_t low = static_cast<uint64_t>(m);
      if (low >= bound || low >= (-bound) % bound) {
        return static_cast<uint64_t>(m >> 64);
      }
    }
  }

  /// Returns a uniform integer in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    RLC_DCHECK(lo <= hi);
    return lo + Below(hi - lo + 1);
  }

  /// Returns a uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability `p`.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace rlc
