// Common macros and small helpers shared across the RLC library.
//
// Style note: following the conventions used by production database code
// (Arrow, RocksDB), invariant violations inside the library abort with a
// message rather than throwing; recoverable user-facing errors (bad files,
// malformed queries) throw std::runtime_error / std::invalid_argument and
// are documented on the API surface that can raise them.

#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace rlc {

namespace internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::fprintf(stderr, "RLC_CHECK failed: %s at %s:%d %s\n", expr, file, line,
               msg.c_str());
  std::abort();
}

}  // namespace internal

/// Aborts with a diagnostic when `cond` is false. Active in all build types:
/// index correctness bugs must never be silently ignored in release builds.
#define RLC_CHECK(cond)                                                \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::rlc::internal::CheckFailed(#cond, __FILE__, __LINE__, "");     \
    }                                                                  \
  } while (0)

#define RLC_CHECK_MSG(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream rlc_check_oss_;                                  \
      rlc_check_oss_ << msg;                                              \
      ::rlc::internal::CheckFailed(#cond, __FILE__, __LINE__,             \
                                   rlc_check_oss_.str());                 \
    }                                                                     \
  } while (0)

/// Debug-only check; compiled out in NDEBUG builds (hot paths).
#ifdef NDEBUG
#define RLC_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define RLC_DCHECK(cond) RLC_CHECK(cond)
#endif

/// Best-effort hint to pull the cache line containing `addr` into the data
/// cache ahead of a dependent load. Used by the batched query executors,
/// which know several probes ahead which entry lists they will touch. A
/// no-op on compilers without __builtin_prefetch.
inline void PrefetchRead(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/1);
#else
  (void)addr;
#endif
}

/// Throws std::invalid_argument with a streamed message when `cond` is false.
/// Used to validate user-supplied arguments on public entry points.
#define RLC_REQUIRE(cond, msg)                 \
  do {                                         \
    if (!(cond)) {                             \
      std::ostringstream rlc_req_oss_;         \
      rlc_req_oss_ << msg;                     \
      throw std::invalid_argument(rlc_req_oss_.str()); \
    }                                          \
  } while (0)

}  // namespace rlc
