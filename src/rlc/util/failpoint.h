// Failpoint fault injection for the durability persist path and the
// serving query path.
//
// A failpoint is a named site in the code (WAL append, snapshot save,
// manifest commit, raw file I/O, kernel-job execution, composed probes)
// where a test — or an operator chasing a bug — can inject a fault without
// recompiling:
//
//   RLC_FAILPOINTS="wal.append.after_write=crash" ./crash_recovery_test
//   RLC_FAILPOINTS="index_io.save.before_rename=error;io=short_write" ...
//   RLC_FAILPOINTS="serve.shard.execute=error@p0.25;serve.compose.probe=delay(5)@p0.1" ...
//
// Spec grammar: `name=action[@N|@pF]` entries separated by `;` or `,`.
// Actions:
//
//   crash        _exit(kFailpointCrashStatus) immediately — no destructors,
//                no stream flush, no atexit: the closest user-space
//                approximation of SIGKILL / power loss at that instruction.
//   error        throw std::runtime_error from the failpoint. Callers must
//                surface it as a clean, recoverable failure.
//   short_write  only meaningful for the I/O shim (FailpointWrite): the
//                write persists roughly half its bytes, then fails like a
//                disk that ran out of space mid-write — the torn-file case
//                atomic rename + checksums must absorb. At a non-I/O
//                failpoint it degrades to `error`.
//   delay(MS)    sleep MS milliseconds at the failpoint, then continue — a
//                slow disk / scheduling hiccup / GC pause stand-in for the
//                deadline and circuit-breaker machinery to absorb.
//
// Triggers:
//
//   @N   (default 1) arms the fault for the Nth time the site is hit from
//        now, one-shot: a test can crash the third checkpoint rather than
//        the first.
//   @pF  fires independently with probability F in (0, 1] on *every* hit
//        and stays armed — the chaos-schedule shape. Draws come from a
//        seeded generator (RLC_FAILPOINTS_SEED env or Seed()), so a chaos
//        run is reproducible given a deterministic evaluation order.
//
// The registry is process-global and thread-safe; evaluation is a mutex +
// hash lookup. Persist-path sites sit next to an fsync, where that cost is
// noise. Query-path sites must instead use FailpointHitFast(), which exits
// on one relaxed atomic load while nothing is armed — the no-fault serving
// overhead budget is measured with failpoints compiled in.
//
// tests/crash_recovery_test.cc forks a child per name in
// failpoints::kPersistPath, arms it with `crash`, and proves recovery loses
// no acknowledged update — keep that list in sync when adding a site (the
// test also fails if an armed persist-path failpoint is never hit).
// tests/chaos_test.cc drives the query-path sites with seeded probabilistic
// schedules.

#pragma once

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "rlc/obs/metrics.h"

namespace rlc {

/// Exit status of a `crash` failpoint; waitpid-visible so the fork harness
/// can tell an injected crash from an ordinary failure.
inline constexpr int kFailpointCrashStatus = 0x5A;

enum class FailpointAction : uint8_t {
  kOff,
  kCrash,
  kError,
  kShortWrite,
  kDelay,
};

class Failpoints {
 public:
  static Failpoints& Instance() {
    static Failpoints instance;
    return instance;
  }

  /// Arms `name`: `action` fires on the `trigger_hit`-th evaluation
  /// (1-based) counted from now. For kDelay, `delay_ms` is the sleep.
  void Set(const std::string& name, FailpointAction action,
           uint64_t trigger_hit = 1, uint32_t delay_ms = 0) {
    std::lock_guard<std::mutex> lock(mu_);
    EnsureEnvLoadedLocked();
    State& s = map_[name];
    s.action = action;
    s.remaining = trigger_hit == 0 ? 1 : trigger_hit;
    s.probability = 0.0;
    s.delay_ms = delay_ms;
    RecountLocked();
  }

  /// Arms `name` probabilistically: `action` fires with probability `p` on
  /// every evaluation and stays armed.
  void SetProbabilistic(const std::string& name, FailpointAction action,
                        double p, uint32_t delay_ms = 0) {
    if (!(p > 0.0 && p <= 1.0)) {
      throw std::invalid_argument("failpoint probability must be in (0,1]");
    }
    std::lock_guard<std::mutex> lock(mu_);
    EnsureEnvLoadedLocked();
    State& s = map_[name];
    s.action = action;
    s.remaining = 1;
    s.probability = p;
    s.delay_ms = delay_ms;
    RecountLocked();
  }

  /// Disarms everything and forgets hit counts (env spec is not re-read).
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    EnsureEnvLoadedLocked();
    map_.clear();
    RecountLocked();
  }

  /// Reseeds the probabilistic-trigger generator (chaos schedules re-seed
  /// per schedule so every run is reproducible).
  void Seed(uint64_t seed) {
    std::lock_guard<std::mutex> lock(mu_);
    rng_state_ = seed != 0 ? seed : 0x9E3779B97F4A7C15ULL;
  }

  /// Parses an RLC_FAILPOINTS-style spec and arms every entry.
  /// \throws std::invalid_argument on a malformed spec.
  void Parse(const std::string& spec) {
    std::lock_guard<std::mutex> lock(mu_);
    EnsureEnvLoadedLocked();
    ParseLocked(spec);
    RecountLocked();
  }

  /// Evaluates the failpoint: counts the hit and returns the armed action
  /// when this hit triggers, kOff otherwise. `delay_ms_out` (optional)
  /// receives the sleep for kDelay.
  FailpointAction Hit(const std::string& name,
                      uint32_t* delay_ms_out = nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    EnsureEnvLoadedLocked();
    hits_[name]++;
    const auto it = map_.find(name);
    if (it == map_.end() || it->second.action == FailpointAction::kOff) {
      return FailpointAction::kOff;
    }
    State& s = it->second;
    if (s.probability > 0.0) {
      if (NextDoubleLocked() >= s.probability) return FailpointAction::kOff;
      if (delay_ms_out != nullptr) *delay_ms_out = s.delay_ms;
      return s.action;  // probabilistic entries stay armed
    }
    if (--s.remaining > 0) return FailpointAction::kOff;
    const FailpointAction action = s.action;
    if (delay_ms_out != nullptr) *delay_ms_out = s.delay_ms;
    s.action = FailpointAction::kOff;  // one-shot
    RecountLocked();
    return action;
  }

  /// How often `name` has been evaluated (armed or not) since process start
  /// (or the last Clear — hit counts survive Clear, they are diagnostics).
  /// FailpointHitFast sites only count while something is armed.
  uint64_t HitCount(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = hits_.find(name);
    return it == hits_.end() ? 0 : it->second;
  }

  /// True when any failpoint might fire — the one-load fast path that keeps
  /// disarmed query-path sites free. Loads the env spec on first use.
  bool MaybeArmed() {
    if (!env_checked_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(mu_);
      EnsureEnvLoadedLocked();
    }
    return armed_.load(std::memory_order_relaxed) > 0;
  }

 private:
  struct State {
    FailpointAction action = FailpointAction::kOff;
    uint64_t remaining = 1;
    double probability = 0.0;  ///< 0 = deterministic @N trigger
    uint32_t delay_ms = 0;
  };

  Failpoints() = default;

  void EnsureEnvLoadedLocked() {
    if (env_loaded_) return;
    env_loaded_ = true;
    if (const char* seed = std::getenv("RLC_FAILPOINTS_SEED")) {
      const uint64_t s = std::strtoull(seed, nullptr, 10);
      rng_state_ = s != 0 ? s : 0x9E3779B97F4A7C15ULL;
    }
    if (const char* spec = std::getenv("RLC_FAILPOINTS")) ParseLocked(spec);
    RecountLocked();
    env_checked_.store(true, std::memory_order_release);
  }

  void RecountLocked() {
    size_t armed = 0;
    for (const auto& [name, s] : map_) {
      armed += s.action != FailpointAction::kOff;
    }
    armed_.store(armed, std::memory_order_relaxed);
    env_checked_.store(true, std::memory_order_release);
  }

  /// xorshift64* in [0, 1); under mu_, so draws are totally ordered.
  double NextDoubleLocked() {
    uint64_t x = rng_state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    rng_state_ = x;
    return static_cast<double>((x * 0x2545F4914F6CDD1DULL) >> 11) /
           static_cast<double>(uint64_t{1} << 53);
  }

  void ParseLocked(const std::string& spec) {
    size_t pos = 0;
    while (pos < spec.size()) {
      size_t end = spec.find_first_of(";,", pos);
      if (end == std::string::npos) end = spec.size();
      const std::string entry = spec.substr(pos, end - pos);
      pos = end + 1;
      if (entry.empty()) continue;
      const size_t eq = entry.find('=');
      if (eq == std::string::npos || eq == 0) {
        throw std::invalid_argument("failpoint spec entry '" + entry +
                                    "' is not name=action[@N|@pF]");
      }
      const std::string name = entry.substr(0, eq);
      std::string action_str = entry.substr(eq + 1);
      uint64_t trigger = 1;
      double probability = 0.0;
      if (const size_t at = action_str.find('@'); at != std::string::npos) {
        const std::string count = action_str.substr(at + 1);
        char* parse_end = nullptr;
        if (!count.empty() && count[0] == 'p') {
          probability = std::strtod(count.c_str() + 1, &parse_end);
          if (count.size() < 2 || *parse_end != '\0' || !(probability > 0.0) ||
              probability > 1.0) {
            throw std::invalid_argument("failpoint spec entry '" + entry +
                                        "' has a bad @pF probability");
          }
        } else {
          trigger = std::strtoull(count.c_str(), &parse_end, 10);
          if (count.empty() || *parse_end != '\0' || trigger == 0) {
            throw std::invalid_argument("failpoint spec entry '" + entry +
                                        "' has a bad @N hit count");
          }
        }
        action_str.resize(at);
      }
      uint32_t delay_ms = 0;
      FailpointAction action;
      if (action_str == "crash") {
        action = FailpointAction::kCrash;
      } else if (action_str == "error") {
        action = FailpointAction::kError;
      } else if (action_str == "short_write") {
        action = FailpointAction::kShortWrite;
      } else if (action_str == "off") {
        action = FailpointAction::kOff;
      } else if (action_str.rfind("delay(", 0) == 0 &&
                 action_str.back() == ')') {
        const std::string ms = action_str.substr(6, action_str.size() - 7);
        char* parse_end = nullptr;
        const uint64_t v = std::strtoull(ms.c_str(), &parse_end, 10);
        if (ms.empty() || *parse_end != '\0' || v > 60'000) {
          throw std::invalid_argument("failpoint spec entry '" + entry +
                                      "' has a bad delay(MS) — want MS in "
                                      "[0, 60000]");
        }
        action = FailpointAction::kDelay;
        delay_ms = static_cast<uint32_t>(v);
      } else {
        throw std::invalid_argument(
            "failpoint spec entry '" + entry +
            "' has unknown action (want crash|error|short_write|delay(MS)|off)");
      }
      State& s = map_[name];
      s.action = action;
      s.remaining = trigger;
      s.probability = probability;
      s.delay_ms = delay_ms;
    }
  }

  std::mutex mu_;
  std::unordered_map<std::string, State> map_;
  std::unordered_map<std::string, uint64_t> hits_;
  bool env_loaded_ = false;
  std::atomic<bool> env_checked_{false};
  std::atomic<size_t> armed_{0};
  uint64_t rng_state_ = 0x9E3779B97F4A7C15ULL;
};

/// Evaluates failpoint `name` and acts on it: `crash` exits the process
/// immediately (simulated power loss), `error` / `short_write` throw,
/// `delay(MS)` sleeps and continues. Each evaluation also bumps the metrics
/// counter "failpoint.<name>", so a metrics dump shows which sites a run
/// exercised (the registry lookup is a mutex + map probe — noise next to
/// the fsync every armed persist-path site sits beside).
inline void FailpointHit(const std::string& name) {
  if (obs::Enabled()) {
    obs::Registry::Global().GetCounter("failpoint." + name).Inc();
  }
  uint32_t delay_ms = 0;
  switch (Failpoints::Instance().Hit(name, &delay_ms)) {
    case FailpointAction::kOff:
      return;
    case FailpointAction::kCrash:
      _exit(kFailpointCrashStatus);
    case FailpointAction::kDelay:
      if (delay_ms > 0) ::usleep(delay_ms * 1000u);
      return;
    case FailpointAction::kError:
    case FailpointAction::kShortWrite:
      throw std::runtime_error("injected failpoint error at " + name);
  }
}

/// FailpointHit for hot paths (kernel jobs, composed probes): one relaxed
/// atomic load while nothing is armed anywhere — no mutex, no metrics
/// counter, no hit-count diagnostics. Armed behavior matches FailpointHit.
inline void FailpointHitFast(const char* name) {
  if (!Failpoints::Instance().MaybeArmed()) return;
  FailpointHit(name);
}

/// Writes `n` bytes to `fd`, retrying short writes and EINTR. Consults the
/// `io` failpoint first: `short_write` persists the first half of the
/// buffer and then fails (a disk filling up mid-write), `error` fails
/// without writing, `crash` exits, `delay` stalls and then writes normally.
/// \throws std::runtime_error on any failure, including injected ones.
inline void FailpointWrite(int fd, const void* data, size_t n,
                           const char* what = "write") {
  const char* p = static_cast<const char*>(data);
  size_t left = n;
  uint32_t delay_ms = 0;
  switch (Failpoints::Instance().Hit("io", &delay_ms)) {
    case FailpointAction::kOff:
      break;
    case FailpointAction::kCrash:
      _exit(kFailpointCrashStatus);
    case FailpointAction::kDelay:
      if (delay_ms > 0) ::usleep(delay_ms * 1000u);
      break;
    case FailpointAction::kError:
      throw std::runtime_error(std::string(what) +
                               ": injected ENOSPC (failpoint io=error)");
    case FailpointAction::kShortWrite: {
      size_t half = n / 2;
      while (half > 0) {
        const ssize_t wrote = ::write(fd, p, half);
        if (wrote < 0) {
          if (errno == EINTR) continue;
          break;
        }
        p += wrote;
        half -= static_cast<size_t>(wrote);
      }
      throw std::runtime_error(
          std::string(what) +
          ": injected short write + ENOSPC (failpoint io=short_write)");
    }
  }
  while (left > 0) {
    const ssize_t wrote = ::write(fd, p, left);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string(what) + " failed: " +
                               std::strerror(errno));
    }
    p += wrote;
    left -= static_cast<size_t>(wrote);
  }
}

/// fsync(fd) with error -> exception. There is deliberately no failpoint
/// here: the sites around a sync (after_write / after_sync) are the
/// interesting crash instants, and a failed fsync has the same caller-
/// visible shape as a failed write. (The WAL appender is the exception: it
/// types its sync failures via the `wal.fsync` failpoint — see wal.h.)
inline void FailpointSync(int fd, const char* what = "fsync") {
  if (::fsync(fd) != 0) {
    throw std::runtime_error(std::string(what) + " failed: " +
                             std::strerror(errno));
  }
}

namespace failpoints {

// Persist-path failpoint names, in the order a mutation flows through them.
// wal.append.* bracket the write+fsync of one WAL record (wal.fsync is the
// sync itself — see WalSyncError in wal.h);
// index_io.save.* bracket every atomic snapshot/index file save (tmp write,
// fsync, rename); manifest.commit.* bracket the manifest rename that makes
// a new snapshot generation durable; checkpoint.after_commit sits between
// the manifest commit and the WAL rotation + old-generation cleanup.
inline constexpr const char* kWalAppendBeforeWrite = "wal.append.before_write";
inline constexpr const char* kWalAppendAfterWrite = "wal.append.after_write";
inline constexpr const char* kWalFsync = "wal.fsync";
inline constexpr const char* kWalAppendAfterSync = "wal.append.after_sync";
inline constexpr const char* kIndexSaveBeforeWrite = "index_io.save.before_write";
inline constexpr const char* kIndexSaveAfterWrite = "index_io.save.after_write";
inline constexpr const char* kIndexSaveBeforeRename = "index_io.save.before_rename";
inline constexpr const char* kIndexSaveAfterRename = "index_io.save.after_rename";
inline constexpr const char* kManifestCommitBeforeWrite = "manifest.commit.before_write";
inline constexpr const char* kManifestCommitAfterWrite = "manifest.commit.after_write";
inline constexpr const char* kManifestCommitBeforeRename = "manifest.commit.before_rename";
inline constexpr const char* kManifestCommitAfterRename = "manifest.commit.after_rename";
inline constexpr const char* kCheckpointAfterCommit = "checkpoint.after_commit";

// Query-path failpoint names (serving). All are evaluated through
// FailpointHitFast at job/probe granularity, never per kernel probe:
// serve.shard.execute fires in the sharded executor's shard-phase jobs,
// serve.kernel.job in the single-index ExecuteBatch jobs,
// serve.compose.execute once per cross-shard composition job,
// serve.compose.probe per composed probe (batched and scalar).
inline constexpr const char* kServeShardExecute = "serve.shard.execute";
inline constexpr const char* kServeKernelJob = "serve.kernel.job";
inline constexpr const char* kServeComposeExecute = "serve.compose.execute";
inline constexpr const char* kServeComposeProbe = "serve.compose.probe";

/// Every registered failpoint on the persist path.
/// tests/crash_recovery_test.cc kills a child at each of these.
inline constexpr const char* kPersistPath[] = {
    kWalAppendBeforeWrite,      kWalAppendAfterWrite,
    kWalFsync,                  kWalAppendAfterSync,
    kIndexSaveBeforeWrite,      kIndexSaveAfterWrite,
    kIndexSaveBeforeRename,     kIndexSaveAfterRename,
    kManifestCommitBeforeWrite, kManifestCommitAfterWrite,
    kManifestCommitBeforeRename, kManifestCommitAfterRename,
    kCheckpointAfterCommit,
};

}  // namespace failpoints

}  // namespace rlc
