// Failpoint fault injection for the durability persist path.
//
// A failpoint is a named site in the code (WAL append, snapshot save,
// manifest commit, raw file I/O) where a test — or an operator chasing a
// bug — can inject a fault without recompiling:
//
//   RLC_FAILPOINTS="wal.append.after_write=crash" ./crash_recovery_test
//   RLC_FAILPOINTS="index_io.save.before_rename=error;io=short_write" ...
//
// Spec grammar: `name=action[@N]` entries separated by `;` or `,`. Actions:
//
//   crash        _exit(kFailpointCrashStatus) immediately — no destructors,
//                no stream flush, no atexit: the closest user-space
//                approximation of SIGKILL / power loss at that instruction.
//   error        throw std::runtime_error from the failpoint. Callers must
//                surface it as a clean, recoverable failure.
//   short_write  only meaningful for the I/O shim (FailpointWrite): the
//                write persists roughly half its bytes, then fails like a
//                disk that ran out of space mid-write — the torn-file case
//                atomic rename + checksums must absorb. At a non-I/O
//                failpoint it degrades to `error`.
//
// `@N` (default 1) arms the fault for the Nth time the site is hit, so a
// test can crash the third checkpoint rather than the first.
//
// The registry is process-global and thread-safe; evaluation is a mutex +
// hash lookup, which is noise next to the fsync every armed site sits
// beside (no failpoint is evaluated on the query path). Tests drive it
// programmatically via Failpoints::Instance().Set/Clear; the environment
// variable is parsed once on first use.
//
// tests/crash_recovery_test.cc forks a child per name in
// failpoints::kPersistPath, arms it with `crash`, and proves recovery loses
// no acknowledged update — keep that list in sync when adding a site (the
// test also fails if an armed persist-path failpoint is never hit).

#pragma once

#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "rlc/obs/metrics.h"

namespace rlc {

/// Exit status of a `crash` failpoint; waitpid-visible so the fork harness
/// can tell an injected crash from an ordinary failure.
inline constexpr int kFailpointCrashStatus = 0x5A;

enum class FailpointAction : uint8_t {
  kOff,
  kCrash,
  kError,
  kShortWrite,
};

class Failpoints {
 public:
  static Failpoints& Instance() {
    static Failpoints instance;
    return instance;
  }

  /// Arms `name`: `action` fires on the `trigger_hit`-th evaluation
  /// (1-based) counted from now.
  void Set(const std::string& name, FailpointAction action,
           uint64_t trigger_hit = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    EnsureEnvLoadedLocked();
    State& s = map_[name];
    s.action = action;
    s.remaining = trigger_hit == 0 ? 1 : trigger_hit;
  }

  /// Disarms everything and forgets hit counts (env spec is not re-read).
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    EnsureEnvLoadedLocked();
    map_.clear();
  }

  /// Parses an RLC_FAILPOINTS-style spec and arms every entry.
  /// \throws std::invalid_argument on a malformed spec.
  void Parse(const std::string& spec) {
    std::lock_guard<std::mutex> lock(mu_);
    EnsureEnvLoadedLocked();
    ParseLocked(spec);
  }

  /// Evaluates the failpoint: counts the hit and returns the armed action
  /// when this hit is the trigger, kOff otherwise.
  FailpointAction Hit(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    EnsureEnvLoadedLocked();
    hits_[name]++;
    const auto it = map_.find(name);
    if (it == map_.end() || it->second.action == FailpointAction::kOff) {
      return FailpointAction::kOff;
    }
    if (--it->second.remaining > 0) return FailpointAction::kOff;
    const FailpointAction action = it->second.action;
    it->second.action = FailpointAction::kOff;  // one-shot
    return action;
  }

  /// How often `name` has been evaluated (armed or not) since process start
  /// (or the last Clear — hit counts survive Clear, they are diagnostics).
  uint64_t HitCount(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = hits_.find(name);
    return it == hits_.end() ? 0 : it->second;
  }

 private:
  struct State {
    FailpointAction action = FailpointAction::kOff;
    uint64_t remaining = 1;
  };

  Failpoints() = default;

  void EnsureEnvLoadedLocked() {
    if (env_loaded_) return;
    env_loaded_ = true;
    if (const char* spec = std::getenv("RLC_FAILPOINTS")) ParseLocked(spec);
  }

  void ParseLocked(const std::string& spec) {
    size_t pos = 0;
    while (pos < spec.size()) {
      size_t end = spec.find_first_of(";,", pos);
      if (end == std::string::npos) end = spec.size();
      const std::string entry = spec.substr(pos, end - pos);
      pos = end + 1;
      if (entry.empty()) continue;
      const size_t eq = entry.find('=');
      if (eq == std::string::npos || eq == 0) {
        throw std::invalid_argument("failpoint spec entry '" + entry +
                                    "' is not name=action[@N]");
      }
      const std::string name = entry.substr(0, eq);
      std::string action_str = entry.substr(eq + 1);
      uint64_t trigger = 1;
      if (const size_t at = action_str.find('@'); at != std::string::npos) {
        const std::string count = action_str.substr(at + 1);
        char* parse_end = nullptr;
        trigger = std::strtoull(count.c_str(), &parse_end, 10);
        if (count.empty() || *parse_end != '\0' || trigger == 0) {
          throw std::invalid_argument("failpoint spec entry '" + entry +
                                      "' has a bad @N hit count");
        }
        action_str.resize(at);
      }
      FailpointAction action;
      if (action_str == "crash") {
        action = FailpointAction::kCrash;
      } else if (action_str == "error") {
        action = FailpointAction::kError;
      } else if (action_str == "short_write") {
        action = FailpointAction::kShortWrite;
      } else if (action_str == "off") {
        action = FailpointAction::kOff;
      } else {
        throw std::invalid_argument(
            "failpoint spec entry '" + entry +
            "' has unknown action (want crash|error|short_write|off)");
      }
      State& s = map_[name];
      s.action = action;
      s.remaining = trigger;
    }
  }

  std::mutex mu_;
  std::unordered_map<std::string, State> map_;
  std::unordered_map<std::string, uint64_t> hits_;
  bool env_loaded_ = false;
};

/// Evaluates failpoint `name` and acts on it: `crash` exits the process
/// immediately (simulated power loss), `error` / `short_write` throw.
/// Each evaluation also bumps the metrics counter "failpoint.<name>", so a
/// metrics dump shows which persist-path sites a run exercised (the
/// registry lookup is a mutex + map probe — noise next to the fsync every
/// armed site sits beside, and never on the query path).
inline void FailpointHit(const std::string& name) {
  if (obs::Enabled()) {
    obs::Registry::Global().GetCounter("failpoint." + name).Inc();
  }
  switch (Failpoints::Instance().Hit(name)) {
    case FailpointAction::kOff:
      return;
    case FailpointAction::kCrash:
      _exit(kFailpointCrashStatus);
    case FailpointAction::kError:
    case FailpointAction::kShortWrite:
      throw std::runtime_error("injected failpoint error at " + name);
  }
}

/// Writes `n` bytes to `fd`, retrying short writes and EINTR. Consults the
/// `io` failpoint first: `short_write` persists the first half of the
/// buffer and then fails (a disk filling up mid-write), `error` fails
/// without writing, `crash` exits. \throws std::runtime_error on any
/// failure, including injected ones.
inline void FailpointWrite(int fd, const void* data, size_t n,
                           const char* what = "write") {
  const char* p = static_cast<const char*>(data);
  size_t left = n;
  switch (Failpoints::Instance().Hit("io")) {
    case FailpointAction::kOff:
      break;
    case FailpointAction::kCrash:
      _exit(kFailpointCrashStatus);
    case FailpointAction::kError:
      throw std::runtime_error(std::string(what) +
                               ": injected ENOSPC (failpoint io=error)");
    case FailpointAction::kShortWrite: {
      size_t half = n / 2;
      while (half > 0) {
        const ssize_t wrote = ::write(fd, p, half);
        if (wrote < 0) {
          if (errno == EINTR) continue;
          break;
        }
        p += wrote;
        half -= static_cast<size_t>(wrote);
      }
      throw std::runtime_error(
          std::string(what) +
          ": injected short write + ENOSPC (failpoint io=short_write)");
    }
  }
  while (left > 0) {
    const ssize_t wrote = ::write(fd, p, left);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string(what) + " failed: " +
                               std::strerror(errno));
    }
    p += wrote;
    left -= static_cast<size_t>(wrote);
  }
}

/// fsync(fd) with error -> exception. There is deliberately no failpoint
/// here: the sites around a sync (after_write / after_sync) are the
/// interesting crash instants, and a failed fsync has the same caller-
/// visible shape as a failed write.
inline void FailpointSync(int fd, const char* what = "fsync") {
  if (::fsync(fd) != 0) {
    throw std::runtime_error(std::string(what) + " failed: " +
                             std::strerror(errno));
  }
}

namespace failpoints {

// Persist-path failpoint names, in the order a mutation flows through them.
// wal.append.* bracket the write+fsync of one WAL record;
// index_io.save.* bracket every atomic snapshot/index file save (tmp write,
// fsync, rename); manifest.commit.* bracket the manifest rename that makes
// a new snapshot generation durable; checkpoint.after_commit sits between
// the manifest commit and the WAL rotation + old-generation cleanup.
inline constexpr const char* kWalAppendBeforeWrite = "wal.append.before_write";
inline constexpr const char* kWalAppendAfterWrite = "wal.append.after_write";
inline constexpr const char* kWalAppendAfterSync = "wal.append.after_sync";
inline constexpr const char* kIndexSaveBeforeWrite = "index_io.save.before_write";
inline constexpr const char* kIndexSaveAfterWrite = "index_io.save.after_write";
inline constexpr const char* kIndexSaveBeforeRename = "index_io.save.before_rename";
inline constexpr const char* kIndexSaveAfterRename = "index_io.save.after_rename";
inline constexpr const char* kManifestCommitBeforeWrite = "manifest.commit.before_write";
inline constexpr const char* kManifestCommitAfterWrite = "manifest.commit.after_write";
inline constexpr const char* kManifestCommitBeforeRename = "manifest.commit.before_rename";
inline constexpr const char* kManifestCommitAfterRename = "manifest.commit.after_rename";
inline constexpr const char* kCheckpointAfterCommit = "checkpoint.after_commit";

/// Every registered failpoint on the persist path.
/// tests/crash_recovery_test.cc kills a child at each of these.
inline constexpr const char* kPersistPath[] = {
    kWalAppendBeforeWrite,      kWalAppendAfterWrite,
    kWalAppendAfterSync,        kIndexSaveBeforeWrite,
    kIndexSaveAfterWrite,       kIndexSaveBeforeRename,
    kIndexSaveAfterRename,      kManifestCommitBeforeWrite,
    kManifestCommitAfterWrite,  kManifestCommitBeforeRename,
    kManifestCommitAfterRename, kCheckpointAfterCommit,
};

}  // namespace failpoints

}  // namespace rlc
