// Portable SIMD kernels for the query path's set operations.
//
// The RLC query's Case-1 join reduces to two primitives over flat u32
// arrays:
//
//   FilterFirstBySecond  — left-pack the first lane of interleaved
//                          (key, tag) pairs whose tag equals a target.
//                          This turns an IndexEntry list into the sorted
//                          array of hub access ids that carry one MR.
//   HasCommonElement     — existence-only intersection of two sorted u32
//                          arrays, with the kernel selected by length
//                          ratio: branch-free unrolled merge for
//                          near-equal lengths, shuffle-based block
//                          compare (SSE2/AVX2) for moderate skew, and
//                          galloping for extreme skew.
//
// Every kernel has a scalar fallback with identical results; the SIMD
// variants are compiled in when the target supports them (__SSE2__ /
// __AVX2__, e.g. via -march=native or the RLC_NATIVE CMake option; note
// x86-64 implies SSE2). All kernels are pure functions of their inputs —
// no scratch state — so they are safe to call from concurrent query
// threads.

#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__AVX2__)
#define RLC_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define RLC_SIMD_SSE2 1
#include <emmintrin.h>
#endif

namespace rlc::simd {

/// Human-readable name of the instruction set the kernels compiled to
/// (recorded into benchmark provenance).
inline const char* KernelIsa() {
#if defined(RLC_SIMD_AVX2)
  return "avx2";
#elif defined(RLC_SIMD_SSE2)
  return "sse2";
#else
  return "scalar";
#endif
}

/// Length-ratio thresholds of the kernel selector: pairs within kMergeRatio
/// use the branch-free merge, beyond kGallopRatio they gallop, in between
/// the block kernel runs. Exposed for the kernel benchmark's sweeps.
inline constexpr size_t kMergeRatio = 2;
inline constexpr size_t kGallopRatio = 64;

/// Blocks shorter than this skip the SIMD setup entirely.
inline constexpr size_t kMinBlockLen = 8;

namespace detail {

/// Scalar reference for FilterFirstBySecond: branch-free left-packing.
inline size_t FilterScalar(const uint32_t* pairs, size_t n, uint32_t target,
                           uint32_t* out) {
  size_t m = 0;
  for (size_t i = 0; i < n; ++i) {
    out[m] = pairs[2 * i];
    m += (pairs[2 * i + 1] == target) ? 1 : 0;
  }
  return m;
}

}  // namespace detail

/// Left-packs pairs[2i] for every i in [0,n) with pairs[2i+1] == target into
/// `out` (which must have room for n values), preserving order; returns the
/// number of values written. `out` may be written beyond the returned count
/// (up to n slots) with garbage — callers size the buffer to n.
inline size_t FilterFirstBySecond(const uint32_t* pairs, size_t n,
                                  uint32_t target, uint32_t* out) {
#if defined(RLC_SIMD_AVX2)
  // Per 256-bit register: 4 (key, tag) pairs, tags in the odd u32 lanes.
  // Compare tags, collapse the lane mask to 4 bits, and left-pack the
  // matching key lanes with a looked-up cross-lane permutation.
  alignas(32) static constexpr uint32_t kPack[16][8] = {
      {0, 0, 0, 0, 0, 0, 0, 0}, {0, 0, 0, 0, 0, 0, 0, 0},
      {2, 0, 0, 0, 0, 0, 0, 0}, {0, 2, 0, 0, 0, 0, 0, 0},
      {4, 0, 0, 0, 0, 0, 0, 0}, {0, 4, 0, 0, 0, 0, 0, 0},
      {2, 4, 0, 0, 0, 0, 0, 0}, {0, 2, 4, 0, 0, 0, 0, 0},
      {6, 0, 0, 0, 0, 0, 0, 0}, {0, 6, 0, 0, 0, 0, 0, 0},
      {2, 6, 0, 0, 0, 0, 0, 0}, {0, 2, 6, 0, 0, 0, 0, 0},
      {4, 6, 0, 0, 0, 0, 0, 0}, {0, 4, 6, 0, 0, 0, 0, 0},
      {2, 4, 6, 0, 0, 0, 0, 0}, {0, 2, 4, 6, 0, 0, 0, 0}};
  const __m256i vt = _mm256_set1_epi32(static_cast<int>(target));
  size_t m = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(pairs + 2 * i));
    const __m256i eq = _mm256_cmpeq_epi32(v, vt);
    const uint32_t lanes = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(eq)));
    // Tag lanes are bits 1, 3, 5, 7.
    const uint32_t k = ((lanes >> 1) & 1) | ((lanes >> 2) & 2) |
                       ((lanes >> 3) & 4) | ((lanes >> 4) & 8);
    const __m256i packed = _mm256_permutevar8x32_epi32(
        v, _mm256_load_si256(reinterpret_cast<const __m256i*>(kPack[k])));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + m),
                     _mm256_castsi256_si128(packed));
    m += static_cast<size_t>(__builtin_popcount(k));
  }
  return m + detail::FilterScalar(pairs + 2 * i, n - i, target, out + m);
#else
  return detail::FilterScalar(pairs, n, target, out);
#endif
}

/// Branch-free merge intersection (existence only) of two sorted u32
/// arrays, unrolled 4 steps per bounds check. Duplicates are permitted;
/// the arrays only need to be non-decreasing.
inline bool MergeHasCommon(const uint32_t* a, size_t na, const uint32_t* b,
                           size_t nb) {
  size_t i = 0;
  size_t j = 0;
  // Each step advances exactly one cursor, so 4 steps stay in bounds as
  // long as both cursors have 4 slots of headroom.
  while (i + 4 <= na && j + 4 <= nb) {
#define RLC_MERGE_STEP()          \
  do {                            \
    const uint32_t x = a[i];      \
    const uint32_t y = b[j];      \
    if (x == y) return true;      \
    i += (x < y) ? 1 : 0;         \
    j += (y < x) ? 1 : 0;         \
  } while (0)
    RLC_MERGE_STEP();
    RLC_MERGE_STEP();
    RLC_MERGE_STEP();
    RLC_MERGE_STEP();
#undef RLC_MERGE_STEP
  }
  while (i < na && j < nb) {
    const uint32_t x = a[i];
    const uint32_t y = b[j];
    if (x == y) return true;
    i += (x < y) ? 1 : 0;
    j += (y < x) ? 1 : 0;
  }
  return false;
}

/// First position in [lo, n) with a[pos] >= key, by exponential probing
/// then binary search. O(log distance from lo).
inline size_t GallopLowerBound(const uint32_t* a, size_t n, size_t lo,
                               uint32_t key) {
  size_t step = 1;
  size_t hi = lo;
  while (hi < n && a[hi] < key) {
    lo = hi + 1;
    hi += step;
    step *= 2;
  }
  if (hi > n) hi = n;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (a[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Existence intersection for extreme skew: gallops over the long array
/// (`b`, nb >> na) once per element of the short one.
inline bool GallopHasCommon(const uint32_t* a, size_t na, const uint32_t* b,
                            size_t nb) {
  size_t lo = 0;
  for (size_t i = 0; i < na; ++i) {
    lo = GallopLowerBound(b, nb, lo, a[i]);
    if (lo == nb) return false;
    if (b[lo] == a[i]) return true;
  }
  return false;
}

/// Existence intersection via all-pairs block compares: one vector of each
/// side is compared against every rotation of the other, then the block
/// whose maximum is smaller advances. Falls back to the merge for tails.
inline bool BlockHasCommon(const uint32_t* a, size_t na, const uint32_t* b,
                           size_t nb) {
#if defined(RLC_SIMD_AVX2)
  size_t i = 0;
  size_t j = 0;
  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    // Rotate b by one lane seven times: every (a-lane, b-lane) pair is
    // compared exactly once.
    const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
    __m256i any = _mm256_cmpeq_epi32(va, vb);
    for (int r = 1; r < 8; ++r) {
      vb = _mm256_permutevar8x32_epi32(vb, rot1);
      any = _mm256_or_si256(any, _mm256_cmpeq_epi32(va, vb));
    }
    if (!_mm256_testz_si256(any, any)) return true;
    const uint32_t amax = a[i + 7];
    const uint32_t bmax = b[j + 7];
    i += (amax <= bmax) ? 8 : 0;
    j += (bmax <= amax) ? 8 : 0;
  }
  return MergeHasCommon(a + i, na - i, b + j, nb - j);
#elif defined(RLC_SIMD_SSE2)
  size_t i = 0;
  size_t j = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    __m128i any = _mm_cmpeq_epi32(va, vb);
    any = _mm_or_si128(
        any, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
    any = _mm_or_si128(
        any, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
    any = _mm_or_si128(
        any, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
    if (_mm_movemask_epi8(any) != 0) return true;
    const uint32_t amax = a[i + 3];
    const uint32_t bmax = b[j + 3];
    i += (amax <= bmax) ? 4 : 0;
    j += (bmax <= amax) ? 4 : 0;
  }
  return MergeHasCommon(a + i, na - i, b + j, nb - j);
#else
  return MergeHasCommon(a, na, b, nb);
#endif
}

/// Existence intersection of two sorted u32 arrays with the kernel chosen
/// by length ratio (see the ratio constants above). Equivalent to asking
/// whether std::set_intersection would produce a non-empty result.
inline bool HasCommonElement(const uint32_t* a, size_t na, const uint32_t* b,
                             size_t nb) {
  if (na == 0 || nb == 0) return false;
  if (na > nb) {
    const uint32_t* ta = a;
    const size_t tna = na;
    a = b;
    na = nb;
    b = ta;
    nb = tna;
  }
  // Disjoint ranges never intersect; the endpoint compare is free relative
  // to any kernel below.
  if (a[na - 1] < b[0] || b[nb - 1] < a[0]) return false;
  if (nb >= na * kGallopRatio) return GallopHasCommon(a, na, b, nb);
  if (nb <= na * kMergeRatio || na < kMinBlockLen) {
    return MergeHasCommon(a, na, b, nb);
  }
  return BlockHasCommon(a, na, b, nb);
}

}  // namespace rlc::simd
