// Wall-clock timing helper used by the benchmark harnesses.

#pragma once

#include <chrono>
#include <cstdint>

namespace rlc {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction/Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rlc
