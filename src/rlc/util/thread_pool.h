// A small reusable worker pool for batch-parallel phases.
//
// The RLC index builder alternates short parallel phases (speculative
// kernel-based searches over a batch of hubs) with sequential commit phases;
// spawning threads per batch would dominate at small batch sizes, so the
// pool keeps its workers alive across Run() calls. Run() is a barrier: it
// executes fn(worker_index) on every worker concurrently and returns when
// all of them have finished. Work distribution inside fn is the caller's
// business (the builder uses a shared atomic cursor).

#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "rlc/obs/metrics.h"
#include "rlc/util/common.h"

namespace rlc {

class ThreadPool {
 public:
  /// More workers than this is always a caller bug (e.g. a negative count
  /// cast to unsigned), not a real machine.
  static constexpr uint32_t kMaxThreads = 4096;

  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(uint32_t num_threads) {
    RLC_REQUIRE(num_threads >= 1 && num_threads <= kMaxThreads,
                "ThreadPool: thread count " << num_threads
                    << " out of range [1," << kMaxThreads << "]");
    workers_.reserve(num_threads);
    for (uint32_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stop_ = true;
    }
    wake_.notify_all();
    for (auto& w : workers_) w.join();
  }

  uint32_t size() const { return static_cast<uint32_t>(workers_.size()); }

  /// Runs fn(worker_index) on every worker and blocks until all return.
  /// fn must not throw (the library's invariant failures abort instead).
  void Run(const std::function<void(uint32_t)>& fn) {
    const bool metrics_on = obs::Enabled();
    if (metrics_on) {
      BusyGauge().Add(static_cast<int64_t>(size()));
      RunsCounter().Inc();
    }
    std::unique_lock<std::mutex> lock(mu_);
    job_ = &fn;
    remaining_ = size();
    ++generation_;
    wake_.notify_all();
    done_.wait(lock, [this] { return remaining_ == 0; });
    job_ = nullptr;
    if (metrics_on) BusyGauge().Sub(static_cast<int64_t>(size()));
  }

  /// Resolves a thread-count option: 0 means "all hardware threads".
  static uint32_t ResolveThreads(uint32_t requested) {
    if (requested != 0) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<uint32_t>(hw);
  }

 private:
  // Process-wide (all pools aggregate): "are the workers saturated" is a
  // host-level question. Cached refs keep the registry lock off Run().
  static obs::Gauge& BusyGauge() {
    static obs::Gauge& g = obs::Registry::Global().GetGauge("pool.busy_workers");
    return g;
  }
  static obs::Counter& RunsCounter() {
    static obs::Counter& c = obs::Registry::Global().GetCounter("pool.runs");
    return c;
  }

  void WorkerLoop(uint32_t index) {
    uint64_t seen_generation = 0;
    for (;;) {
      const std::function<void(uint32_t)>* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
        if (stop_) return;
        seen_generation = generation_;
        job = job_;
      }
      (*job)(index);
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (--remaining_ == 0) done_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::vector<std::thread> workers_;
  const std::function<void(uint32_t)>* job_ = nullptr;
  uint64_t generation_ = 0;
  uint32_t remaining_ = 0;
  bool stop_ = false;
};

}  // namespace rlc
