// A small reusable worker pool for batch-parallel phases.
//
// The RLC index builder alternates short parallel phases (speculative
// kernel-based searches over a batch of hubs) with sequential commit phases;
// spawning threads per batch would dominate at small batch sizes, so the
// pool keeps its workers alive across Run() calls. Run() is a barrier: it
// executes fn(worker_index) on every worker concurrently and returns when
// all of them have finished. Work distribution inside fn is the caller's
// business (the builder uses a shared atomic cursor).
//
// The pool also carries a *bounded* fire-and-forget task queue for the
// serving path's admission control: Submit() blocks while the queue is at
// capacity (backpressure), TrySubmit() refuses instead (load shedding —
// the caller sheds with a typed error rather than queueing into a latency
// collapse). Tasks interleave with Run() barriers on the same workers;
// queued tasks are drained before the workers exit.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "rlc/obs/metrics.h"
#include "rlc/util/common.h"

namespace rlc {

class ThreadPool {
 public:
  /// More workers than this is always a caller bug (e.g. a negative count
  /// cast to unsigned), not a real machine.
  static constexpr uint32_t kMaxThreads = 4096;

  /// Spawns `num_threads` workers (>= 1). `queue_capacity` bounds the
  /// fire-and-forget task queue (0 = unbounded); it does not affect Run().
  explicit ThreadPool(uint32_t num_threads, size_t queue_capacity = 0)
      : queue_capacity_(queue_capacity) {
    RLC_REQUIRE(num_threads >= 1 && num_threads <= kMaxThreads,
                "ThreadPool: thread count " << num_threads
                    << " out of range [1," << kMaxThreads << "]");
    workers_.reserve(num_threads);
    for (uint32_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stop_ = true;
    }
    wake_.notify_all();
    space_.notify_all();
    for (auto& w : workers_) w.join();
  }

  uint32_t size() const { return static_cast<uint32_t>(workers_.size()); }

  /// Runs fn(worker_index) on every worker and blocks until all return.
  /// fn must not throw (the library's invariant failures abort instead).
  void Run(const std::function<void(uint32_t)>& fn) {
    const bool metrics_on = obs::Enabled();
    if (metrics_on) {
      BusyGauge().Add(static_cast<int64_t>(size()));
      RunsCounter().Inc();
    }
    std::unique_lock<std::mutex> lock(mu_);
    job_ = &fn;
    remaining_ = size();
    ++generation_;
    wake_.notify_all();
    done_.wait(lock, [this] { return remaining_ == 0; });
    job_ = nullptr;
    if (metrics_on) BusyGauge().Sub(static_cast<int64_t>(size()));
  }

  /// Enqueues a fire-and-forget task, blocking while the queue is at
  /// capacity (backpressure). The task must not throw.
  void Submit(std::function<void()> task) {
    RLC_REQUIRE(task != nullptr, "ThreadPool::Submit: null task");
    {
      std::unique_lock<std::mutex> lock(mu_);
      space_.wait(lock, [this] {
        return stop_ || queue_capacity_ == 0 ||
               tasks_.size() < queue_capacity_;
      });
      if (stop_) return;  // shutting down: the task is dropped
      tasks_.push_back(std::move(task));
    }
    wake_.notify_one();
  }

  /// Enqueues a fire-and-forget task unless the queue is at capacity;
  /// returns false (without blocking) when it is — the load-shedding
  /// primitive: the caller turns `false` into a typed OverloadedError
  /// instead of waiting.
  bool TrySubmit(std::function<void()> task) {
    RLC_REQUIRE(task != nullptr, "ThreadPool::TrySubmit: null task");
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (stop_) return false;
      if (queue_capacity_ != 0 && tasks_.size() >= queue_capacity_) {
        return false;
      }
      tasks_.push_back(std::move(task));
    }
    wake_.notify_one();
    return true;
  }

  /// Blocks until every task submitted so far has finished.
  void Drain() {
    std::unique_lock<std::mutex> lock(mu_);
    drained_.wait(lock,
                  [this] { return tasks_.empty() && active_tasks_ == 0; });
  }

  /// Tasks queued but not yet claimed by a worker.
  size_t queue_depth() const {
    std::unique_lock<std::mutex> lock(mu_);
    return tasks_.size();
  }

  size_t queue_capacity() const { return queue_capacity_; }

  /// Resolves a thread-count option: 0 means "all hardware threads".
  static uint32_t ResolveThreads(uint32_t requested) {
    if (requested != 0) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<uint32_t>(hw);
  }

 private:
  // Process-wide (all pools aggregate): "are the workers saturated" is a
  // host-level question. Cached refs keep the registry lock off Run().
  static obs::Gauge& BusyGauge() {
    static obs::Gauge& g = obs::Registry::Global().GetGauge("pool.busy_workers");
    return g;
  }
  static obs::Counter& RunsCounter() {
    static obs::Counter& c = obs::Registry::Global().GetCounter("pool.runs");
    return c;
  }

  void WorkerLoop(uint32_t index) {
    uint64_t seen_generation = 0;
    for (;;) {
      std::function<void()> task;
      const std::function<void(uint32_t)>* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_.wait(lock, [&] {
          return stop_ || generation_ != seen_generation || !tasks_.empty();
        });
        if (!tasks_.empty()) {
          // Queued tasks drain even during shutdown: a Submit() that
          // returned must eventually run.
          task = std::move(tasks_.front());
          tasks_.pop_front();
          ++active_tasks_;
        } else if (stop_) {
          return;
        } else {
          seen_generation = generation_;
          job = job_;
        }
      }
      if (task) {
        task();
        std::unique_lock<std::mutex> lock(mu_);
        --active_tasks_;
        space_.notify_one();
        if (tasks_.empty() && active_tasks_ == 0) drained_.notify_all();
      } else {
        (*job)(index);
        std::unique_lock<std::mutex> lock(mu_);
        if (--remaining_ == 0) done_.notify_all();
      }
    }
  }

  mutable std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::condition_variable space_;    ///< queue dropped below capacity
  std::condition_variable drained_;  ///< queue empty and no task running
  std::vector<std::thread> workers_;
  const std::function<void(uint32_t)>* job_ = nullptr;
  std::deque<std::function<void()>> tasks_;
  const size_t queue_capacity_;
  uint32_t active_tasks_ = 0;
  uint64_t generation_ = 0;
  uint32_t remaining_ = 0;
  bool stop_ = false;
};

}  // namespace rlc
