// Zipfian sampling over a finite domain.
//
// The paper assigns synthetic edge labels "according to the Zipfian
// distribution with exponent 2" (Section VI-b, following the gMark
// benchmark). This sampler draws rank r in {0..n-1} with probability
// proportional to 1/(r+1)^s using an inverse-CDF table, which is exact and
// O(log n) per draw.

#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "rlc/util/common.h"
#include "rlc/util/rng.h"

namespace rlc {

/// Samples ranks {0..n-1} with P(r) ∝ 1/(r+1)^s.
class ZipfSampler {
 public:
  /// \param n     domain size (> 0)
  /// \param s     exponent (paper uses 2.0)
  ZipfSampler(uint64_t n, double s) : cdf_(n) {
    RLC_REQUIRE(n > 0, "ZipfSampler: domain size must be positive");
    double acc = 0.0;
    for (uint64_t r = 0; r < n; ++r) {
      acc += 1.0 / std::pow(static_cast<double>(r + 1), s);
      cdf_[r] = acc;
    }
    const double total = cdf_.back();
    for (auto& c : cdf_) c /= total;
  }

  /// Draws one rank using `rng`.
  uint64_t Sample(Rng& rng) const {
    const double u = rng.NextDouble();
    // Binary search for the first cdf entry >= u.
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Probability mass of rank r (for tests).
  double Pmf(uint64_t r) const {
    RLC_DCHECK(r < cdf_.size());
    return r == 0 ? cdf_[0] : cdf_[r] - cdf_[r - 1];
  }

  uint64_t domain_size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace rlc
