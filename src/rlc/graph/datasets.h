// Surrogate registry for the 13 real-world datasets of the paper's
// Table III.
//
// The paper evaluates on SNAP/KONECT graphs downloaded from the internet;
// this repository must build and run offline, so for each dataset we record
// its published characteristics (|V|, |E|, |L|, loop count, degree skew) and
// generate a synthetic surrogate that matches them: BA topology for the
// skewed social/web graphs, ER for near-uniform ones, Zipfian(2) labels —
// the same label generator the paper itself applies to 11 of the 13 graphs —
// and injected self-loops for datasets whose Table III loop count is
// nonzero. A global scale factor (env RLC_SCALE, default bench-specific)
// shrinks |V| and |E| proportionally so every benchmark binary completes in
// seconds on a laptop; pass scale=1.0 to reproduce at full published size.
//
// If you have the real SNAP files, LoadEdgeListText() accepts them directly
// and every bench accepts a directory of real datasets via RLC_DATA_DIR.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "rlc/graph/digraph.h"

namespace rlc {

/// Topology family of a surrogate.
enum class TopologyModel {
  kErdosRenyi,       ///< near-uniform degree distribution
  kBarabasiAlbert,   ///< skewed degrees, complete seed sub-graph
};

/// Published characteristics of one Table III dataset.
struct DatasetSpec {
  std::string name;        ///< paper's abbreviation, e.g. "AD"
  std::string full_name;   ///< e.g. "Advogato"
  uint64_t num_vertices;   ///< published |V|
  uint64_t num_edges;      ///< published |E|
  uint32_t num_labels;     ///< published |L|
  uint64_t loop_count;     ///< published self-loop count
  bool synthetic_labels;   ///< paper assigned Zipf(2) labels itself
  TopologyModel model;     ///< surrogate topology family
};

/// All 13 Table III datasets, in the paper's order (sorted by |E|).
const std::vector<DatasetSpec>& TableIIIDatasets();

/// Looks up a dataset spec by its abbreviation (e.g. "WN").
/// \returns std::nullopt when the name is unknown.
std::optional<DatasetSpec> FindDataset(const std::string& name);

/// Generates the surrogate graph for `spec`, scaled by `scale` in (0, 1]:
/// |V| and |E| (and the injected loop count) are multiplied by `scale`.
/// Deterministic in `seed`.
DiGraph MakeSurrogate(const DatasetSpec& spec, double scale, uint64_t seed);

/// Reads the scale factor from env var RLC_SCALE, falling back to
/// `default_scale`. Values are clamped to (0, 1].
double ScaleFromEnv(double default_scale);

}  // namespace rlc
