// Zipfian edge-label assignment (paper Section VI-b: "The edge labels have
// been generated according to the Zipfian distribution with exponent 2").

#pragma once

#include <vector>

#include "rlc/graph/types.h"
#include "rlc/util/rng.h"

namespace rlc {

/// Overwrites every edge's label with a draw from Zipf(exponent) over
/// {0..num_labels-1}. Label 0 is the most frequent, matching gMark's setup.
void AssignZipfLabels(std::vector<Edge>* edges, Label num_labels, double exponent,
                      Rng& rng);

/// Overwrites every edge's label with a uniform draw over {0..num_labels-1}.
void AssignUniformLabels(std::vector<Edge>* edges, Label num_labels, Rng& rng);

}  // namespace rlc
