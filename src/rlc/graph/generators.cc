#include "rlc/graph/generators.h"

#include <unordered_set>

#include "rlc/util/common.h"

namespace rlc {

namespace {

// Packs an ordered pair into one 64-bit key for dedup.
uint64_t PairKey(VertexId u, VertexId v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

}  // namespace

std::vector<Edge> ErdosRenyiEdges(VertexId num_vertices, uint64_t num_edges,
                                  Rng& rng) {
  const uint64_t n = num_vertices;
  RLC_REQUIRE(num_edges <= n * (n - 1),
              "ErdosRenyiEdges: too many edges requested (" << num_edges
                  << " > " << n * (n - 1) << ")");
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  while (edges.size() < num_edges) {
    const auto u = static_cast<VertexId>(rng.Below(n));
    const auto v = static_cast<VertexId>(rng.Below(n));
    if (u == v) continue;
    if (!seen.insert(PairKey(u, v)).second) continue;
    edges.push_back({u, v, 0});
  }
  return edges;
}

std::vector<Edge> BarabasiAlbertEdges(VertexId num_vertices,
                                      uint32_t edges_per_vertex, Rng& rng) {
  const uint32_t m = edges_per_vertex;
  const VertexId m0 = m + 1;  // complete seed graph size
  RLC_REQUIRE(m >= 1, "BarabasiAlbertEdges: edges_per_vertex must be >= 1");
  RLC_REQUIRE(num_vertices > m0, "BarabasiAlbertEdges: num_vertices must exceed "
                                     << m0 << " (seed size)");

  std::vector<Edge> edges;
  edges.reserve(static_cast<uint64_t>(m0) * (m0 - 1) +
                static_cast<uint64_t>(num_vertices - m0) * m);

  // `targets` holds one entry per edge endpoint, so sampling a uniform
  // element of it realizes preferential attachment by (total) degree.
  std::vector<VertexId> targets;
  targets.reserve(edges.capacity() * 2);

  // Complete directed seed: all ordered pairs among {0..m0-1}.
  for (VertexId u = 0; u < m0; ++u) {
    for (VertexId v = 0; v < m0; ++v) {
      if (u == v) continue;
      edges.push_back({u, v, 0});
      targets.push_back(u);
      targets.push_back(v);
    }
  }

  std::vector<VertexId> picked;
  picked.reserve(m);
  for (VertexId v = m0; v < num_vertices; ++v) {
    picked.clear();
    // Choose m distinct existing endpoints preferentially by degree.
    while (picked.size() < m) {
      const VertexId t = targets[rng.Below(targets.size())];
      bool duplicate = false;
      for (VertexId p : picked) duplicate |= (p == t);
      if (!duplicate) picked.push_back(t);
    }
    for (VertexId t : picked) {
      edges.push_back({v, t, 0});
      targets.push_back(v);
      targets.push_back(t);
    }
  }
  return edges;
}

std::vector<Edge> PlantedPartitionEdges(VertexId num_vertices,
                                        uint64_t num_edges,
                                        uint32_t num_communities,
                                        double intra_fraction, Rng& rng,
                                        std::vector<uint32_t>* out_community) {
  const uint64_t n = num_vertices;
  RLC_REQUIRE(num_communities >= 1,
              "PlantedPartitionEdges: need at least one community");
  RLC_REQUIRE(intra_fraction >= 0.0 && intra_fraction <= 1.0,
              "PlantedPartitionEdges: intra_fraction must be in [0, 1]");
  RLC_REQUIRE(num_edges <= n * (n - 1),
              "PlantedPartitionEdges: too many edges requested");

  // Balanced blocks over a shuffled vertex permutation: member_of[v] is
  // deliberately scrambled across the id space so id-contiguous range
  // partitioning cuts every community.
  std::vector<VertexId> perm(num_vertices);
  for (VertexId v = 0; v < num_vertices; ++v) perm[v] = v;
  for (size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.Below(i)]);
  }
  std::vector<uint32_t> member_of(num_vertices);
  std::vector<std::vector<VertexId>> members(num_communities);
  for (VertexId rank = 0; rank < num_vertices; ++rank) {
    const uint32_t c = static_cast<uint32_t>(
        (static_cast<uint64_t>(rank) * num_communities) / n);
    member_of[perm[rank]] = c;
    members[c].push_back(perm[rank]);
  }

  std::vector<Edge> edges;
  edges.reserve(num_edges);
  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  while (edges.size() < num_edges) {
    VertexId u, v;
    if (intra_fraction >= 1.0 || rng.Bernoulli(intra_fraction)) {
      const auto& block = members[rng.Below(num_communities)];
      if (block.size() < 2) continue;
      u = block[rng.Below(block.size())];
      v = block[rng.Below(block.size())];
    } else {
      u = static_cast<VertexId>(rng.Below(n));
      v = static_cast<VertexId>(rng.Below(n));
    }
    if (u == v) continue;
    if (!seen.insert(PairKey(u, v)).second) continue;
    edges.push_back({u, v, 0});
  }
  if (out_community != nullptr) *out_community = std::move(member_of);
  return edges;
}

void AddRandomSelfLoops(std::vector<Edge>* edges, VertexId num_vertices,
                        uint64_t count, Rng& rng) {
  RLC_REQUIRE(count <= num_vertices,
              "AddRandomSelfLoops: more loops than vertices");
  std::unordered_set<VertexId> chosen;
  chosen.reserve(count * 2);
  while (chosen.size() < count) {
    const auto v = static_cast<VertexId>(rng.Below(num_vertices));
    if (chosen.insert(v).second) {
      edges->push_back({v, v, 0});
    }
  }
}

}  // namespace rlc
