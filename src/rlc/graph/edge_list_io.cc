#include "rlc/graph/edge_list_io.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>
#include <vector>

#include "rlc/graph/graph_builder.h"
#include "rlc/util/common.h"

namespace rlc {

namespace {

// Attempts to parse `tok` as an unsigned integer; returns false when the
// token is not fully numeric (then it is treated as a name).
bool ParseUint(const std::string& tok, uint64_t* out) {
  if (tok.empty()) return false;
  const char* first = tok.data();
  const char* last = tok.data() + tok.size();
  auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

constexpr uint64_t kBinaryMagic = 0x524C43475250'01ULL;  // "RLCGRP" v1

template <typename T>
void PutRaw(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T GetRaw(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("ReadGraphBinary: truncated stream");
  return value;
}

}  // namespace

DiGraph ReadEdgeListText(std::istream& in) {
  GraphBuilder named;
  std::vector<Edge> numeric_edges;
  uint64_t max_vertex = 0;
  bool any_named = false;
  bool any_numeric = false;

  std::string line;
  uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::string a, b, c;
    if (!(ls >> a >> b)) {
      throw std::runtime_error("edge list line " + std::to_string(line_no) +
                               ": expected at least two columns");
    }
    const bool has_label = static_cast<bool>(ls >> c);

    uint64_t ua = 0, ub = 0, uc = 0;
    const bool numeric = ParseUint(a, &ua) && ParseUint(b, &ub) &&
                         (!has_label || ParseUint(c, &uc));
    if (numeric && !any_named) {
      any_numeric = true;
      RLC_REQUIRE(ua <= kInvalidVertex - 1 && ub <= kInvalidVertex - 1,
                  "edge list line " << line_no << ": vertex id too large");
      numeric_edges.push_back({static_cast<VertexId>(ua),
                               static_cast<VertexId>(ub),
                               static_cast<Label>(uc)});
      max_vertex = std::max({max_vertex, ua, ub});
    } else {
      if (any_numeric) {
        throw std::runtime_error(
            "edge list line " + std::to_string(line_no) +
            ": cannot mix numeric-id and named edges in one file");
      }
      any_named = true;
      named.AddEdge(a, b, has_label ? c : std::string("label_0"));
    }
  }

  if (any_named) return named.Build();
  const VertexId n = numeric_edges.empty() ? 0 : static_cast<VertexId>(max_vertex + 1);
  return DiGraph(n, std::move(numeric_edges));
}

DiGraph LoadEdgeListText(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open edge list file: " + path);
  return ReadEdgeListText(in);
}

void WriteEdgeListText(const DiGraph& g, std::ostream& out) {
  out << "# rlc-index edge list |V|=" << g.num_vertices()
      << " |E|=" << g.num_edges() << " |L|=" << g.num_labels() << "\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const LabeledNeighbor& nb : g.OutEdges(v)) {
      if (g.has_vertex_names() && g.has_label_names()) {
        out << g.VertexName(v) << ' ' << g.VertexName(nb.v) << ' '
            << g.LabelName(nb.label) << "\n";
      } else {
        out << v << ' ' << nb.v << ' ' << nb.label << "\n";
      }
    }
  }
}

void SaveEdgeListText(const DiGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open file for writing: " + path);
  WriteEdgeListText(g, out);
}

void WriteGraphBinary(const DiGraph& g, std::ostream& out) {
  PutRaw(out, kBinaryMagic);
  PutRaw<uint64_t>(out, g.num_vertices());
  PutRaw<uint64_t>(out, g.num_edges());
  PutRaw<uint64_t>(out, g.num_labels());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const LabeledNeighbor& nb : g.OutEdges(v)) {
      PutRaw<uint32_t>(out, v);
      PutRaw<uint32_t>(out, nb.v);
      PutRaw<uint32_t>(out, nb.label);
    }
  }
}

DiGraph ReadGraphBinary(std::istream& in) {
  const auto magic = GetRaw<uint64_t>(in);
  if (magic != kBinaryMagic) {
    throw std::runtime_error("ReadGraphBinary: bad magic (not an rlc graph file)");
  }
  const auto nv = GetRaw<uint64_t>(in);
  const auto ne = GetRaw<uint64_t>(in);
  const auto nl = GetRaw<uint64_t>(in);
  std::vector<Edge> edges;
  edges.reserve(ne);
  for (uint64_t i = 0; i < ne; ++i) {
    const auto s = GetRaw<uint32_t>(in);
    const auto d = GetRaw<uint32_t>(in);
    const auto l = GetRaw<uint32_t>(in);
    edges.push_back({s, d, l});
  }
  return DiGraph(static_cast<VertexId>(nv), std::move(edges),
                 static_cast<Label>(nl), /*dedup_parallel=*/false);
}

void SaveGraphBinary(const DiGraph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open file for writing: " + path);
  WriteGraphBinary(g, out);
}

DiGraph LoadGraphBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open graph file: " + path);
  return ReadGraphBinary(in);
}

}  // namespace rlc
