#include "rlc/graph/stats.h"

#include <algorithm>
#include <vector>

namespace rlc {

uint64_t CountSelfLoops(const DiGraph& g) {
  uint64_t loops = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const LabeledNeighbor& nb : g.OutEdges(v)) {
      loops += (nb.v == v);
    }
  }
  return loops;
}

uint64_t CountTriangles(const DiGraph& g) {
  const VertexId n = g.num_vertices();

  // Build the undirected simple adjacency (neighbours deduped, no loops).
  std::vector<std::vector<VertexId>> adj(n);
  for (VertexId v = 0; v < n; ++v) {
    for (const LabeledNeighbor& nb : g.OutEdges(v)) {
      if (nb.v == v) continue;
      adj[v].push_back(nb.v);
      adj[nb.v].push_back(v);
    }
  }
  for (auto& a : adj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }

  // Orient each undirected edge from lower "rank" (degree, id) to higher, so
  // every triangle is counted exactly once at its lowest-rank corner.
  auto rank_less = [&](VertexId a, VertexId b) {
    return std::make_pair(adj[a].size(), a) < std::make_pair(adj[b].size(), b);
  };
  std::vector<std::vector<VertexId>> fwd(n);
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : adj[v]) {
      if (rank_less(v, u)) fwd[v].push_back(u);
    }
  }
  for (auto& f : fwd) std::sort(f.begin(), f.end());

  uint64_t triangles = 0;
  for (VertexId v = 0; v < n; ++v) {
    const auto& fv = fwd[v];
    for (VertexId u : fv) {
      const auto& fu = fwd[u];
      // |fv ∩ fu| via sorted intersection.
      auto it1 = fv.begin();
      auto it2 = fu.begin();
      while (it1 != fv.end() && it2 != fu.end()) {
        if (*it1 < *it2) {
          ++it1;
        } else if (*it2 < *it1) {
          ++it2;
        } else {
          ++triangles;
          ++it1;
          ++it2;
        }
      }
    }
  }
  return triangles;
}

GraphStats ComputeStats(const DiGraph& g, bool with_triangles) {
  GraphStats s;
  s.num_vertices = g.num_vertices();
  s.num_edges = g.num_edges();
  s.num_labels = g.num_labels();
  s.loop_count = CountSelfLoops(g);
  s.triangle_count = with_triangles ? CountTriangles(g) : 0;
  s.avg_degree =
      s.num_vertices == 0
          ? 0.0
          : static_cast<double>(s.num_edges) / static_cast<double>(s.num_vertices);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    s.max_out_degree = std::max(s.max_out_degree, g.OutDegree(v));
    s.max_in_degree = std::max(s.max_in_degree, g.InDegree(v));
  }
  return s;
}

}  // namespace rlc
