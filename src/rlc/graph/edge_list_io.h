// Text and binary graph I/O.
//
// The text format is SNAP-compatible: one edge per line, whitespace
// separated, `#`-prefixed comment lines ignored. Two- and three-column
// variants are accepted:
//
//   src dst          (label 0 assigned to every edge)
//   src dst label
//
// Tokens may be integers (dense ids) or arbitrary strings (interned in
// order of first appearance), so the real SNAP/KONECT datasets used in the
// paper's Table III can be dropped in unchanged.
//
// The binary format is a little-endian dump of the edge list with a magic
// header, used to cache generated graphs between benchmark runs.

#pragma once

#include <iosfwd>
#include <string>

#include "rlc/graph/digraph.h"

namespace rlc {

/// Parses a text edge list from `in`.
/// \throws std::runtime_error on malformed lines.
DiGraph ReadEdgeListText(std::istream& in);

/// Loads a text edge list from `path`.
/// \throws std::runtime_error when the file cannot be opened or parsed.
DiGraph LoadEdgeListText(const std::string& path);

/// Writes the graph as a three-column text edge list (names used when
/// available, dense ids otherwise).
void WriteEdgeListText(const DiGraph& g, std::ostream& out);

/// Saves the graph to `path` in text form.
void SaveEdgeListText(const DiGraph& g, const std::string& path);

/// Writes the graph in the binary cache format.
void WriteGraphBinary(const DiGraph& g, std::ostream& out);

/// Reads a graph from the binary cache format.
/// \throws std::runtime_error on magic/size mismatch or truncation.
DiGraph ReadGraphBinary(std::istream& in);

/// Saves/loads the binary format to/from a file path.
void SaveGraphBinary(const DiGraph& g, const std::string& path);
DiGraph LoadGraphBinary(const std::string& path);

}  // namespace rlc
