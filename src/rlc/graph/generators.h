// Synthetic graph generators (Erdős–Rényi and Barabási–Albert).
//
// The paper generates its synthetic graphs with JGraphT (Section VI-b):
// ER graphs with an (almost) uniform degree distribution and BA graphs with
// a degree skew and a complete seed sub-graph. These generators reproduce
// those topologies natively:
//
//  * ErdosRenyi produces the G(n, m) variant: m distinct directed edges
//    sampled uniformly (no self-loops), matching JGraphT's
//    GnmRandomGraphGenerator used with directed graphs.
//  * BarabasiAlbert starts from a complete directed seed graph on m0
//    vertices and attaches every new vertex with `m` edges whose endpoints
//    are chosen preferentially by current degree, matching JGraphT's
//    BarabasiAlbertGraphGenerator (each attachment edge is oriented from
//    the new vertex, as JGraphT does for directed targets).
//
// Labels are assigned separately (see label_assign.h) so topology and label
// distribution can be controlled independently, exactly as in the paper.

#pragma once

#include <vector>

#include "rlc/graph/types.h"
#include "rlc/util/rng.h"

namespace rlc {

/// Generates the edge set of a directed G(n, m) Erdős–Rényi graph:
/// `num_edges` distinct ordered pairs without self-loops. All labels are 0.
/// \throws std::invalid_argument when num_edges exceeds n*(n-1).
std::vector<Edge> ErdosRenyiEdges(VertexId num_vertices, uint64_t num_edges,
                                  Rng& rng);

/// Generates the edge set of a directed Barabási–Albert graph: complete
/// directed seed on `edges_per_vertex + 1` vertices, then preferential
/// attachment with `edges_per_vertex` out-edges per new vertex. All labels 0.
/// \throws std::invalid_argument when num_vertices <= edges_per_vertex.
std::vector<Edge> BarabasiAlbertEdges(VertexId num_vertices,
                                      uint32_t edges_per_vertex, Rng& rng);

/// Adds `count` self-loop edges on distinct uniformly chosen vertices
/// (labels 0). Used by the dataset surrogates to match the paper's Table III
/// loop counts.
void AddRandomSelfLoops(std::vector<Edge>* edges, VertexId num_vertices,
                        uint64_t count, Rng& rng);

/// Planted-partition (stochastic block model, G(n, m) style) community
/// graph: vertices are split into `num_communities` groups and each of the
/// `num_edges` distinct directed edges is intra-community with probability
/// `intra_fraction`, uniform across communities and endpoints otherwise.
/// Community membership is *shuffled* across vertex ids (a seeded
/// permutation), so contiguous-id range partitioning sees no locality
/// unless a vertex ordering recovers it — exactly the setting the
/// locality-aware partition policies are tested against. All labels are 0.
/// `out_community`, when non-null, receives the community id per vertex.
/// \throws std::invalid_argument on num_communities == 0, intra_fraction
///         outside [0, 1], or more edges than distinct pairs.
std::vector<Edge> PlantedPartitionEdges(VertexId num_vertices,
                                        uint64_t num_edges,
                                        uint32_t num_communities,
                                        double intra_fraction, Rng& rng,
                                        std::vector<uint32_t>* out_community =
                                            nullptr);

}  // namespace rlc
