#include "rlc/graph/digraph.h"

#include <algorithm>

#include "rlc/util/common.h"

namespace rlc {

DiGraph::DiGraph(VertexId num_vertices, std::vector<Edge> edges, Label num_labels,
                 bool dedup_parallel)
    : num_vertices_(num_vertices) {
  Label max_label = 0;
  for (const Edge& e : edges) {
    RLC_REQUIRE(e.src < num_vertices && e.dst < num_vertices,
                "DiGraph: edge (" << e.src << "," << e.dst
                                  << ") out of range for num_vertices="
                                  << num_vertices);
    max_label = std::max(max_label, e.label);
  }
  num_labels_ = edges.empty() ? num_labels : std::max(num_labels, max_label + 1);

  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return std::tie(a.src, a.label, a.dst) < std::tie(b.src, b.label, b.dst);
  });
  if (dedup_parallel) {
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }

  // Out CSR. Edges are already sorted by (src, label, dst).
  out_off_.assign(num_vertices_ + 1, 0);
  for (const Edge& e : edges) ++out_off_[e.src + 1];
  for (VertexId v = 0; v < num_vertices_; ++v) out_off_[v + 1] += out_off_[v];
  out_adj_.reserve(edges.size());
  for (const Edge& e : edges) out_adj_.push_back({e.dst, e.label});

  // In CSR: counting sort by dst, then per-vertex sort by (label, src).
  in_off_.assign(num_vertices_ + 1, 0);
  for (const Edge& e : edges) ++in_off_[e.dst + 1];
  for (VertexId v = 0; v < num_vertices_; ++v) in_off_[v + 1] += in_off_[v];
  in_adj_.resize(edges.size());
  std::vector<uint64_t> cursor(in_off_.begin(), in_off_.end() - 1);
  for (const Edge& e : edges) in_adj_[cursor[e.dst]++] = {e.src, e.label};
  for (VertexId v = 0; v < num_vertices_; ++v) {
    std::sort(in_adj_.begin() + static_cast<int64_t>(in_off_[v]),
              in_adj_.begin() + static_cast<int64_t>(in_off_[v + 1]),
              [](const LabeledNeighbor& a, const LabeledNeighbor& b) {
                return std::tie(a.label, a.v) < std::tie(b.label, b.v);
              });
  }
}

std::span<const LabeledNeighbor> DiGraph::LabelRange(
    std::span<const LabeledNeighbor> adj, Label l) {
  auto lo = std::lower_bound(adj.begin(), adj.end(), l,
                             [](const LabeledNeighbor& nb, Label lbl) {
                               return nb.label < lbl;
                             });
  auto hi = std::upper_bound(lo, adj.end(), l,
                             [](Label lbl, const LabeledNeighbor& nb) {
                               return lbl < nb.label;
                             });
  return {lo, hi};
}

bool DiGraph::HasEdge(VertexId src, VertexId dst, Label label) const {
  RLC_REQUIRE(src < num_vertices_ && dst < num_vertices_,
              "HasEdge: vertex out of range");
  const auto out = OutEdges(src);
  const LabeledNeighbor key{dst, label};
  return std::binary_search(out.begin(), out.end(), key,
                            [](const LabeledNeighbor& a, const LabeledNeighbor& b) {
                              return std::tie(a.label, a.v) < std::tie(b.label, b.v);
                            });
}

std::vector<Edge> DiGraph::ToEdgeList() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges());
  for (VertexId v = 0; v < num_vertices_; ++v) {
    for (const LabeledNeighbor& nb : OutEdges(v)) {
      edges.push_back({v, nb.v, nb.label});
    }
  }
  return edges;
}

void DiGraph::SetVertexNames(std::vector<std::string> names) {
  RLC_REQUIRE(names.size() == num_vertices_,
              "SetVertexNames: expected " << num_vertices_ << " names, got "
                                          << names.size());
  vertex_names_ = std::move(names);
  vertex_by_name_.clear();
  for (VertexId v = 0; v < num_vertices_; ++v) {
    vertex_by_name_.emplace(vertex_names_[v], v);
  }
}

void DiGraph::SetLabelNames(std::vector<std::string> names) {
  RLC_REQUIRE(names.size() == num_labels_,
              "SetLabelNames: expected " << num_labels_ << " names, got "
                                         << names.size());
  label_names_ = std::move(names);
  label_by_name_.clear();
  for (Label l = 0; l < num_labels_; ++l) {
    label_by_name_.emplace(label_names_[l], l);
  }
}

const std::string& DiGraph::VertexName(VertexId v) const {
  RLC_REQUIRE(has_vertex_names() && v < num_vertices_,
              "VertexName: no names or vertex out of range");
  return vertex_names_[v];
}

const std::string& DiGraph::LabelName(Label l) const {
  RLC_REQUIRE(has_label_names() && l < num_labels_,
              "LabelName: no names or label out of range");
  return label_names_[l];
}

std::optional<VertexId> DiGraph::FindVertex(const std::string& name) const {
  auto it = vertex_by_name_.find(name);
  if (it == vertex_by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<Label> DiGraph::FindLabel(const std::string& name) const {
  auto it = label_by_name_.find(name);
  if (it == label_by_name_.end()) return std::nullopt;
  return it->second;
}

uint64_t DiGraph::MemoryBytes() const {
  return (out_off_.capacity() + in_off_.capacity()) * sizeof(uint64_t) +
         (out_adj_.capacity() + in_adj_.capacity()) * sizeof(LabeledNeighbor);
}

}  // namespace rlc
