// Graph statistics matching the columns of the paper's Table III:
// |V|, |E|, |L|, loop count (cycles of length 1) and triangle count
// (cycles of length 3, counted on the underlying undirected simple graph,
// as SNAP reports them), plus degree statistics used by the analysis
// sections.

#pragma once

#include <cstdint>

#include "rlc/graph/digraph.h"

namespace rlc {

/// Aggregate statistics for one graph.
struct GraphStats {
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  uint64_t num_labels = 0;
  uint64_t loop_count = 0;      ///< self-loop edges (length-1 cycles)
  uint64_t triangle_count = 0;  ///< undirected triangles
  double avg_degree = 0.0;      ///< |E| / |V|
  uint64_t max_out_degree = 0;
  uint64_t max_in_degree = 0;
};

/// Number of self-loop edges in `g` (parallel self-loops all counted).
uint64_t CountSelfLoops(const DiGraph& g);

/// Number of triangles in the undirected simple graph underlying `g`
/// (direction, labels and multiplicity ignored). Node-iterator algorithm
/// with degree ordering: O(|E|^1.5) worst case.
uint64_t CountTriangles(const DiGraph& g);

/// Computes all statistics. Triangle counting can dominate on dense graphs;
/// pass `with_triangles=false` to skip it.
GraphStats ComputeStats(const DiGraph& g, bool with_triangles = true);

}  // namespace rlc
