#include "rlc/graph/graph_builder.h"

#include <algorithm>

#include "rlc/util/common.h"

namespace rlc {

VertexId GraphBuilder::Vertex(const std::string& name) {
  auto [it, inserted] = vertex_by_name_.emplace(name, num_vertices_);
  if (inserted) {
    RLC_CHECK_MSG(vertex_names_.size() == num_vertices_,
                  "named and anonymous vertices cannot be mixed");
    vertex_names_.push_back(name);
    ++num_vertices_;
  }
  return it->second;
}

Label GraphBuilder::LabelId(const std::string& name) {
  auto [it, inserted] = label_by_name_.emplace(name, num_labels_);
  if (inserted) {
    label_names_.push_back(name);
    ++num_labels_;
  }
  return it->second;
}

GraphBuilder& GraphBuilder::AddEdge(VertexId src, VertexId dst, Label label) {
  num_vertices_ = std::max(num_vertices_, std::max(src, dst) + 1);
  num_labels_ = std::max(num_labels_, label + 1);
  edges_.push_back({src, dst, label});
  return *this;
}

GraphBuilder& GraphBuilder::AddEdge(const std::string& src, const std::string& dst,
                                    const std::string& label) {
  const VertexId s = Vertex(src);
  const VertexId d = Vertex(dst);
  return AddEdge(s, d, LabelId(label));
}

DiGraph GraphBuilder::Build(bool dedup_parallel) {
  DiGraph g(num_vertices_, edges_, num_labels_, dedup_parallel);
  if (!vertex_names_.empty()) {
    g.SetVertexNames(vertex_names_);
  }
  if (!label_names_.empty()) {
    std::vector<std::string> names = label_names_;
    names.resize(g.num_labels());  // pad unnamed labels, if ids were mixed in
    for (Label l = static_cast<Label>(label_names_.size()); l < g.num_labels();
         ++l) {
      names[l] = "label_" + std::to_string(l);
    }
    g.SetLabelNames(names);
  }
  return g;
}

void GraphBuilder::Clear() {
  num_vertices_ = 0;
  num_labels_ = 0;
  edges_.clear();
  vertex_names_.clear();
  label_names_.clear();
  vertex_by_name_.clear();
  label_by_name_.clear();
}

}  // namespace rlc
