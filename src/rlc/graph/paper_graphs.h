// The two worked-example graphs of the paper, reconstructed edge-by-edge
// from its text. They serve as golden fixtures for the unit tests (every
// Example 1–6 claim and the full Table II index content are asserted against
// them) and as the data for the quickstart example program.

#pragma once

#include "rlc/graph/digraph.h"

namespace rlc {

/// Paper Fig. 1: the interleaved social/professional/financial property
/// graph. Vertices P10,P11,P12,P13,P16 (persons), A14,A17,A19 (accounts),
/// E15,E18 (intermediary entities); labels knows, worksFor, holds, debits,
/// credits.
///
/// The figure's exact geometry is not machine-readable; this reconstruction
/// is derived from the paper's worked examples and satisfies every claim the
/// text makes about the graph:
///  * Q1(A14,A19,(debits,credits)+) = true via the path
///    (A14,debits,E15,credits,A17,debits,E18,credits,A19)   [Example 1]
///  * Q2(P10,P13,(knows,knows,worksFor)+) = false            [Example 1]
///  * S2(P11,P13) first adds (knows) and (worksFor,knows); the depth-4
///    frontier at P12 carries exactly the four sequences L1..L4 of Example 2
///  * the eager kernel candidates at P12 from P10 are (knows) and
///    (knows,worksFor), and (knows,worksFor)+ cannot reach P13  [Example 3]
///  * two paths P10 -> P16 have label sequences (knows,knows,knows) and
///    (knows,knows,knows,knows), sharing MR (knows)           [Sec. III-C]
///  * S2(P12,P16) = {(knows),(knows,worksFor)}                [Sec. III-C]
///  * label multiset: knows x6, worksFor x2, holds x2, debits x2, credits x2
DiGraph BuildFig1Graph();

/// Paper Fig. 2: the 6-vertex running example for the RLC index (Table II).
/// Vertices are named v1..v6; labels l1,l2,l3. The edge set is uniquely
/// determined by Examples 4–6 and Table II:
///   v1-l1->v2, v1-l2->v3, v2-l1->v5, v2-l2->v5 (parallel edges),
///   v3-l1->v2, v3-l1->v6, v3-l2->v1, v3-l2->v4,
///   v4-l1->v1, v4-l3->v6, v5-l1->v1
/// With the paper's IN-OUT ordering this yields access order
/// (v1,v3,v2,v4,v5,v6), matching the superscripts in Fig. 2.
DiGraph BuildFig2Graph();

}  // namespace rlc
