#include "rlc/graph/datasets.h"

#include <algorithm>
#include <cstdlib>

#include "rlc/graph/generators.h"
#include "rlc/graph/label_assign.h"
#include "rlc/util/common.h"
#include "rlc/util/rng.h"

namespace rlc {

const std::vector<DatasetSpec>& TableIIIDatasets() {
  // Values transcribed from Table III of the paper. "K"/"M" rounding in the
  // table is kept as written (6K -> 6'000 etc.).
  static const std::vector<DatasetSpec> kSpecs = {
      {"AD", "Advogato", 6'000, 51'000, 3, 4'000, false, TopologyModel::kBarabasiAlbert},
      {"EP", "Soc-Epinions", 75'000, 508'000, 8, 0, true, TopologyModel::kBarabasiAlbert},
      {"TW", "Twitter-ICWSM", 465'000, 834'000, 8, 0, true, TopologyModel::kBarabasiAlbert},
      {"WN", "Web-NotreDame", 325'000, 1'400'000, 8, 27'000, true, TopologyModel::kBarabasiAlbert},
      {"WS", "Web-Stanford", 281'000, 2'000'000, 8, 0, true, TopologyModel::kBarabasiAlbert},
      {"WG", "Web-Google", 875'000, 5'000'000, 8, 0, true, TopologyModel::kBarabasiAlbert},
      {"WT", "Wiki-Talk", 2'300'000, 5'000'000, 8, 0, true, TopologyModel::kBarabasiAlbert},
      {"WB", "Web-BerkStan", 685'000, 7'000'000, 8, 0, true, TopologyModel::kBarabasiAlbert},
      {"WH", "Wiki-hyperlink", 1'700'000, 28'500'000, 8, 4'000, true, TopologyModel::kBarabasiAlbert},
      {"PR", "Pokec", 1'600'000, 30'600'000, 8, 0, true, TopologyModel::kBarabasiAlbert},
      {"SO", "StackOverflow", 2'600'000, 63'400'000, 3, 15'000'000, false, TopologyModel::kBarabasiAlbert},
      {"LJ", "LiveJournal", 4'800'000, 68'900'000, 50, 0, true, TopologyModel::kBarabasiAlbert},
      {"WF", "Wiki-link-fr", 3'300'000, 123'700'000, 25, 19'000, true, TopologyModel::kBarabasiAlbert},
  };
  return kSpecs;
}

std::optional<DatasetSpec> FindDataset(const std::string& name) {
  for (const DatasetSpec& s : TableIIIDatasets()) {
    if (s.name == name || s.full_name == name) return s;
  }
  return std::nullopt;
}

DiGraph MakeSurrogate(const DatasetSpec& spec, double scale, uint64_t seed) {
  RLC_REQUIRE(scale > 0.0 && scale <= 1.0, "MakeSurrogate: scale must be in (0,1]");
  Rng rng(seed ^ 0xD0C5ULL);

  const auto scaled = [&](uint64_t x, uint64_t min_value) {
    return std::max<uint64_t>(min_value, static_cast<uint64_t>(x * scale));
  };
  const VertexId n = static_cast<VertexId>(scaled(spec.num_vertices, 16));
  uint64_t m = scaled(spec.num_edges, 32);

  std::vector<Edge> edges;
  if (spec.model == TopologyModel::kErdosRenyi) {
    m = std::min<uint64_t>(m, static_cast<uint64_t>(n) * (n - 1));
    edges = ErdosRenyiEdges(n, m, rng);
  } else {
    // BA's edge count is n*d + seed edges; pick d to approximate m.
    const uint32_t d = static_cast<uint32_t>(
        std::clamp<uint64_t>(m / std::max<uint64_t>(1, n), 1, n > 2 ? n - 2 : 1));
    edges = BarabasiAlbertEdges(n, d, rng);
  }

  const uint64_t loops = std::min<uint64_t>(scaled(spec.loop_count, spec.loop_count ? 1 : 0),
                                            n);
  if (loops > 0) AddRandomSelfLoops(&edges, n, loops, rng);

  AssignZipfLabels(&edges, spec.num_labels, /*exponent=*/2.0, rng);
  return DiGraph(n, std::move(edges), spec.num_labels);
}

double ScaleFromEnv(double default_scale) {
  const char* env = std::getenv("RLC_SCALE");
  double s = default_scale;
  if (env != nullptr) {
    char* end = nullptr;
    const double parsed = std::strtod(env, &end);
    if (end != env && parsed > 0.0) s = parsed;
  }
  return std::clamp(s, 1e-6, 1.0);
}

}  // namespace rlc
