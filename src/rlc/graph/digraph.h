// Immutable edge-labeled directed multigraph in CSR form.
//
// The graph is the substrate for every component in this repository: the RLC
// index, the online-traversal baselines, the extended transitive closure and
// the simulated engines all walk it. Both out- and in-adjacency are
// materialized because the RLC indexing algorithm performs forward *and*
// backward kernel-based searches (paper, Algorithm 2).
//
// Parallel edges (same endpoints, different or equal labels) and self-loops
// are supported: Table III of the paper reports datasets with up to 15M
// self-loops, and the Fig. 2 running example itself contains the parallel
// edges v2 -l1-> v5 and v2 -l2-> v5.

#pragma once

#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "rlc/graph/types.h"

namespace rlc {

/// Immutable CSR representation of an edge-labeled directed multigraph.
///
/// Construction is done through GraphBuilder or the convenience constructor
/// taking an edge list. Adjacency lists are sorted by (label, neighbour id),
/// which gives deterministic traversal order and allows label-range scans.
class DiGraph {
 public:
  /// Builds a graph with `num_vertices` vertices from `edges`.
  ///
  /// \param num_vertices  vertex ids in `edges` must be < num_vertices.
  /// \param edges         labeled edges; duplicates are kept unless
  ///                      `dedup_parallel` is true (exact (src,dst,label)
  ///                      duplicates are then collapsed).
  /// \param num_labels    number of distinct labels; pass 0 to infer
  ///                      (max label + 1).
  /// \throws std::invalid_argument on out-of-range vertex ids.
  DiGraph(VertexId num_vertices, std::vector<Edge> edges, Label num_labels = 0,
          bool dedup_parallel = true);

  /// Empty graph.
  DiGraph() : DiGraph(0, {}) {}

  VertexId num_vertices() const { return num_vertices_; }
  uint64_t num_edges() const { return out_adj_.size(); }
  Label num_labels() const { return num_labels_; }

  /// Out-neighbours of `v` with their edge labels, sorted by (label, dst).
  std::span<const LabeledNeighbor> OutEdges(VertexId v) const {
    return {out_adj_.data() + out_off_[v], out_adj_.data() + out_off_[v + 1]};
  }

  /// In-neighbours of `v` with their edge labels, sorted by (label, src).
  std::span<const LabeledNeighbor> InEdges(VertexId v) const {
    return {in_adj_.data() + in_off_[v], in_adj_.data() + in_off_[v + 1]};
  }

  uint64_t OutDegree(VertexId v) const { return out_off_[v + 1] - out_off_[v]; }
  uint64_t InDegree(VertexId v) const { return in_off_[v + 1] - in_off_[v]; }

  /// Out-neighbours of `v` reachable over an edge labeled `l` (binary search
  /// into the label-sorted adjacency; O(log deg + result)).
  std::span<const LabeledNeighbor> OutEdgesWithLabel(VertexId v, Label l) const {
    return LabelRange(OutEdges(v), l);
  }

  /// In-neighbours of `v` over an edge labeled `l`.
  std::span<const LabeledNeighbor> InEdgesWithLabel(VertexId v, Label l) const {
    return LabelRange(InEdges(v), l);
  }

  /// True if an edge src --label--> dst exists (binary search, O(log deg)).
  bool HasEdge(VertexId src, VertexId dst, Label label) const;

  /// Reconstructs the (sorted) edge list. O(|E|); used by IO and tests.
  std::vector<Edge> ToEdgeList() const;

  /// \name Optional human-readable names
  /// Names are carried along when the graph is built from text data (e.g.
  /// the paper's Fig. 1 property graph) and used by examples/tools; the
  /// algorithms never look at them.
  ///@{
  void SetVertexNames(std::vector<std::string> names);
  void SetLabelNames(std::vector<std::string> names);
  bool has_vertex_names() const { return !vertex_names_.empty(); }
  bool has_label_names() const { return !label_names_.empty(); }
  const std::string& VertexName(VertexId v) const;
  const std::string& LabelName(Label l) const;
  /// Looks up a vertex by name; returns std::nullopt if unknown.
  std::optional<VertexId> FindVertex(const std::string& name) const;
  /// Looks up a label by name; returns std::nullopt if unknown.
  std::optional<Label> FindLabel(const std::string& name) const;
  ///@}

  /// Estimated heap footprint of the CSR arrays in bytes.
  uint64_t MemoryBytes() const;

 private:
  static std::span<const LabeledNeighbor> LabelRange(
      std::span<const LabeledNeighbor> adj, Label l);

  VertexId num_vertices_ = 0;
  Label num_labels_ = 0;
  std::vector<uint64_t> out_off_;
  std::vector<LabeledNeighbor> out_adj_;
  std::vector<uint64_t> in_off_;
  std::vector<LabeledNeighbor> in_adj_;
  std::vector<std::string> vertex_names_;
  std::vector<std::string> label_names_;
  std::unordered_map<std::string, VertexId> vertex_by_name_;
  std::unordered_map<std::string, Label> label_by_name_;
};

}  // namespace rlc
