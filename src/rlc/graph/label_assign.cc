#include "rlc/graph/label_assign.h"

#include "rlc/util/common.h"
#include "rlc/util/zipf.h"

namespace rlc {

void AssignZipfLabels(std::vector<Edge>* edges, Label num_labels, double exponent,
                      Rng& rng) {
  RLC_REQUIRE(num_labels > 0, "AssignZipfLabels: num_labels must be positive");
  ZipfSampler zipf(num_labels, exponent);
  for (Edge& e : *edges) {
    e.label = static_cast<Label>(zipf.Sample(rng));
  }
}

void AssignUniformLabels(std::vector<Edge>* edges, Label num_labels, Rng& rng) {
  RLC_REQUIRE(num_labels > 0, "AssignUniformLabels: num_labels must be positive");
  for (Edge& e : *edges) {
    e.label = static_cast<Label>(rng.Below(num_labels));
  }
}

}  // namespace rlc
