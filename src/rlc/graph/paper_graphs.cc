#include "rlc/graph/paper_graphs.h"

#include "rlc/graph/graph_builder.h"

namespace rlc {

DiGraph BuildFig1Graph() {
  GraphBuilder b;
  // Fix the id order of vertices and labels for readable test output.
  for (const char* v :
       {"P10", "P11", "P12", "P13", "A14", "E15", "P16", "A17", "E18", "A19"}) {
    b.Vertex(v);
  }
  for (const char* l : {"knows", "worksFor", "holds", "debits", "credits"}) {
    b.LabelId(l);
  }

  // Social / professional layer.
  b.AddEdge("P10", "P11", "knows");
  b.AddEdge("P11", "P12", "knows");
  b.AddEdge("P11", "P12", "worksFor");
  b.AddEdge("P12", "P13", "knows");
  b.AddEdge("P13", "P11", "knows");   // closes the P11-P12-P13 cycle
  b.AddEdge("P12", "P16", "knows");
  b.AddEdge("P13", "P16", "knows");
  b.AddEdge("P13", "P16", "worksFor");

  // Account-holding layer.
  b.AddEdge("P11", "A14", "holds");
  b.AddEdge("P16", "A19", "holds");

  // Financial-transaction layer (the fraud pattern of Example 1).
  b.AddEdge("A14", "E15", "debits");
  b.AddEdge("E15", "A17", "credits");
  b.AddEdge("A17", "E18", "debits");
  b.AddEdge("E18", "A19", "credits");

  return b.Build();
}

DiGraph BuildFig2Graph() {
  GraphBuilder b;
  for (const char* v : {"v1", "v2", "v3", "v4", "v5", "v6"}) b.Vertex(v);
  for (const char* l : {"l1", "l2", "l3"}) b.LabelId(l);

  b.AddEdge("v1", "v2", "l1");
  b.AddEdge("v1", "v3", "l2");
  b.AddEdge("v2", "v5", "l1");
  b.AddEdge("v2", "v5", "l2");  // parallel edge with a different label
  b.AddEdge("v3", "v2", "l1");
  b.AddEdge("v3", "v6", "l1");
  b.AddEdge("v3", "v1", "l2");
  b.AddEdge("v3", "v4", "l2");
  b.AddEdge("v4", "v1", "l1");
  b.AddEdge("v4", "v6", "l3");
  b.AddEdge("v5", "v1", "l1");

  return b.Build();
}

}  // namespace rlc
